(** Tests for the language instantiations: CImp, mini-Clight, the IRs and
    x86 — semantics unit tests, determinism, the operator algebra, the
    parsers, and the executable Def. 1 well-definedness checks that the
    paper discharges in Coq for each concrete language ("We have proved in
    Coq that some real languages satisfy wd, including Clight, Cminor, and
    x86 assembly"). *)

open Cas_base
open Cas_langs

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Harness: run one module as a single thread                          *)
(* ------------------------------------------------------------------ *)

type outcome = {
  events : Event.t list;
  ret : Value.t option;
  aborted : bool;
  steps : int;
}

(** Deterministically run [entry] of a single module, following the first
    successor at every step (all our languages are deterministic), with
    built-in [print]. *)
let run_module (type code core) (lang : (code, core) Lang.t) (code : code)
    ~entry ?(args = []) ?(max_steps = 100_000) () : outcome =
  match Genv.link [ lang.Lang.globals_of code ] with
  | Error _ -> { events = []; ret = None; aborted = true; steps = 0 }
  | Ok genv -> (
    let mem = Genv.init_memory genv in
    let fl = Flist.make ~offset:(Genv.block_count genv) ~stride:1 in
    match lang.Lang.init_core ~genv code ~entry ~args with
    | None -> { events = []; ret = None; aborted = true; steps = 0 }
    | Some core ->
      let events = ref [] in
      let finish ?ret ?(aborted = false) steps =
        { events = List.rev !events; ret; aborted; steps }
      in
      (* stack of frames; head is running *)
      let rec go stack mem steps =
        if steps > max_steps then finish steps
        else
          match stack with
          | [] -> finish steps
          | core :: callers -> (
            match lang.Lang.step fl core mem with
            | [] | Lang.Stuck_abort :: _ -> finish ~aborted:true steps
            | Lang.Next (msg, _, core', mem') :: _ -> (
              match msg with
              | Msg.Ret v -> (
                match callers with
                | [] -> finish ~ret:v steps
                | caller :: rest -> (
                  match lang.Lang.after_external caller (Some v) with
                  | Some caller' -> go (caller' :: rest) mem' (steps + 1)
                  | None -> finish ~aborted:true steps))
              | Msg.Evt e ->
                events := e :: !events;
                go (core' :: callers) mem' (steps + 1)
              | Msg.Call ("print", [ Value.Vint n ]) -> (
                events := Event.Print n :: !events;
                match lang.Lang.after_external core' None with
                | Some core'' -> go (core'' :: callers) mem' (steps + 1)
                | None -> finish ~aborted:true steps)
              | Msg.TailCall ("print", [ Value.Vint n ]) -> (
                events := Event.Print n :: !events;
                match callers with
                | [] -> finish ~ret:(Value.Vint 0) steps
                | caller :: rest -> (
                  match lang.Lang.after_external caller (Some (Value.Vint 0)) with
                  | Some caller' -> go (caller' :: rest) mem' (steps + 1)
                  | None -> finish ~aborted:true steps))
              | Msg.Call (f, args) -> (
                match lang.Lang.init_core ~genv code ~entry:f ~args with
                | Some callee -> go (callee :: core' :: callers) mem' (steps + 1)
                | None -> finish ~aborted:true steps)
              | Msg.TailCall (f, args) -> (
                match lang.Lang.init_core ~genv code ~entry:f ~args with
                | Some callee -> go (callee :: callers) mem' (steps + 1)
                | None -> finish ~aborted:true steps)
              | Msg.Tau | Msg.EntAtom | Msg.ExtAtom ->
                go (core' :: callers) mem' (steps + 1)))
      in
      go [ core ] mem 0)

let ret_int o =
  match o.ret with Some (Value.Vint n) -> Some n | _ -> None

(* ------------------------------------------------------------------ *)
(* Ops                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ops_arith () =
  let i n = Value.Vint n in
  check tbool "add" true (Value.equal (Ops.eval_binop Ops.Oadd (i 2) (i 3)) (i 5));
  check tbool "div by zero undef" true
    (Value.equal (Ops.eval_binop Ops.Odiv (i 1) (i 0)) Value.Vundef);
  check tbool "cmp" true (Value.equal (Ops.eval_binop Ops.Olt (i 1) (i 2)) (i 1));
  check tbool "undef propagates" true
    (Value.equal (Ops.eval_binop Ops.Oadd Value.Vundef (i 1)) Value.Vundef)

let test_ops_pointers () =
  let p = Value.Vptr (Addr.make 3 1) in
  (match Ops.eval_binop Ops.Oadd p (Value.Vint 2) with
  | Value.Vptr a -> check tint "ptr+int" 3 a.Addr.ofs
  | _ -> Alcotest.fail "pointer arithmetic broken");
  check tbool "ptr eq" true
    (Value.equal (Ops.eval_binop Ops.Oeq p p) (Value.Vint 1));
  check tbool "ptr - ptr same block" true
    (Value.equal
       (Ops.eval_binop Ops.Osub (Value.Vptr (Addr.make 3 4)) p)
       (Value.Vint 3));
  check tbool "ptr * int undef" true
    (Value.equal (Ops.eval_binop Ops.Omul p (Value.Vint 2)) Value.Vundef)

let prop_ops_total =
  let gen_v =
    QCheck.Gen.(
      oneof
        [
          return Value.Vundef;
          map (fun n -> Value.Vint n) small_signed_int;
          map2 (fun b o -> Value.Vptr (Addr.make b o)) (int_bound 3) (int_bound 3);
        ])
  in
  let ops =
    Ops.
      [ Oadd; Osub; Omul; Odiv; Omod; Oand; Oor; Oxor; Oshl; Oshr; Oeq; One;
        Olt; Ole; Ogt; Oge ]
  in
  QCheck.Test.make ~name:"operator evaluation is total" ~count:1000
    (QCheck.make QCheck.Gen.(triple (oneofl ops) gen_v gen_v))
    (fun (op, a, b) ->
      match Ops.eval_binop op a b with
      | Value.Vundef | Value.Vint _ | Value.Vptr _ -> true)

let prop_const_binop_agrees =
  let ops = Ops.[ Oadd; Osub; Omul; Oand; Oor; Oxor; Oeq; One; Olt; Ole ] in
  QCheck.Test.make ~name:"const_binop agrees with eval_binop" ~count:1000
    (QCheck.make QCheck.Gen.(triple (oneofl ops) small_signed_int small_signed_int))
    (fun (op, x, y) ->
      match Ops.const_binop op x y with
      | Some n ->
        Value.equal (Ops.eval_binop op (Value.Vint x) (Value.Vint y)) (Value.Vint n)
      | None -> false)

(* ------------------------------------------------------------------ *)
(* CImp                                                                *)
(* ------------------------------------------------------------------ *)

let cimp_prog body : Cimp.program =
  {
    Cimp.globals = [ Genv.gvar ~perm:Perm.Object ~init:[ Genv.Iint 1 ] "L" 1 ];
    funcs = [ { Cimp.fname = "f"; fparams = []; fbody = body } ];
  }

let test_cimp_load_store () =
  let open Cimp in
  let p =
    cimp_prog
      (Sseq
         ( Sload ("r", Eglob "L"),
           Sseq
             ( Sstore (Eglob "L", Ebinop (Ops.Oadd, Evar "r", Eint 10)),
               Sseq (Sload ("s", Eglob "L"), Sreturn (Some (Evar "s"))) ) ))
  in
  check (Alcotest.option tint) "L := L+10" (Some 11)
    (ret_int (run_module Cimp.lang p ~entry:"f" ()))

let test_cimp_assert_abort () =
  let open Cimp in
  let p = cimp_prog (Sassert (Eint 0)) in
  check tbool "assert false aborts" true
    (run_module Cimp.lang p ~entry:"f" ()).aborted

let test_cimp_atomic_msgs () =
  let open Cimp in
  let p = cimp_prog (Satomic (Sassign ("r", Eint 1))) in
  match Genv.link [ p.globals ] with
  | Error _ -> Alcotest.fail "link"
  | Ok genv -> (
    let mem = Genv.init_memory genv in
    let fl = Flist.make ~offset:1 ~stride:1 in
    match Cimp.init_core ~genv p ~entry:"f" ~args:[] with
    | None -> Alcotest.fail "init"
    | Some c -> (
      match Cimp.step fl c mem with
      | [ Lang.Next (Msg.EntAtom, fp, c1, _) ] -> (
        check tbool "EntAtom footprint empty" true (Footprint.is_empty fp);
        let rec to_ext c n =
          if n > 10 then Alcotest.fail "no ExtAtom"
          else
            match Cimp.step fl c mem with
            | [ Lang.Next (Msg.ExtAtom, _, c', _) ] -> c'
            | [ Lang.Next (_, _, c', _) ] -> to_ext c' (n + 1)
            | _ -> Alcotest.fail "unexpected step in atomic block"
        in
        let c' = to_ext c1 0 in
        match Cimp.step fl c' mem with
        | [ Lang.Next (Msg.Ret _, _, _, _) ] -> ()
        | _ -> Alcotest.fail "expected return after atomic block")
      | _ -> Alcotest.fail "expected EntAtom"))

let test_cimp_return_inside_atomic_aborts () =
  let open Cimp in
  let p = cimp_prog (Satomic (Sreturn None)) in
  check tbool "return inside atomic aborts" true
    (run_module Cimp.lang p ~entry:"f" ()).aborted

let test_cimp_perm_confinement () =
  let open Cimp in
  let p =
    {
      Cimp.globals = [ Genv.gvar ~init:[ Genv.Iint 0 ] "n" 1 ];
      funcs =
        [ { Cimp.fname = "f"; fparams = []; fbody = Sload ("r", Eglob "n") } ];
    }
  in
  check tbool "CImp load of client data aborts" true
    (run_module Cimp.lang p ~entry:"f" ()).aborted

(* ------------------------------------------------------------------ *)
(* Clight                                                              *)
(* ------------------------------------------------------------------ *)

let tevents = Alcotest.list (Alcotest.testable Event.pp Event.equal)

let test_clight_locals_and_addrof () =
  let o = run_module Clight.lang (Corpus.array_sum ()) ~entry:"main" () in
  check tevents "array sum prints 30" [ Event.Print 30 ] o.events

let test_clight_param_passing () =
  let p = Parse.clight {| int add3(int a, int b, int c) { return a + b + c; } |} in
  let o =
    run_module Clight.lang p ~entry:"add3"
      ~args:[ Value.Vint 1; Value.Vint 2; Value.Vint 3 ]
      ()
  in
  check (Alcotest.option tint) "1+2+3" (Some 6) (ret_int o)

let test_clight_deref_fault_aborts () =
  let p =
    {
      Clight.globals = [];
      funcs =
        [
          {
            Clight.fname = "f";
            fparams = [];
            fvars = [];
            fbody = Clight.Sset ("x", Clight.Ederef (Clight.Econst 0));
          };
        ];
    }
  in
  check tbool "null deref aborts" true
    (run_module Clight.lang p ~entry:"f" ()).aborted

let test_clight_if_while () =
  let p =
    Parse.clight
      {|
      int collatz(int n) {
        int steps;
        steps = 0;
        while (n != 1) {
          if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
          steps = steps + 1;
        }
        return steps;
      }
    |}
  in
  check (Alcotest.option tint) "collatz 6" (Some 8)
    (ret_int (run_module Clight.lang p ~entry:"collatz" ~args:[ Value.Vint 6 ] ()))

let test_clight_alloc_footprint_in_flist () =
  let p = Corpus.array_sum () in
  match Genv.link [ Clight.lang.Lang.globals_of p ] with
  | Error _ -> Alcotest.fail "link"
  | Ok genv -> (
    let mem = Genv.init_memory genv in
    let fl = Flist.make ~offset:(Genv.block_count genv) ~stride:3 in
    match Clight.init_core ~genv p ~entry:"main" ~args:[] with
    | None -> Alcotest.fail "init"
    | Some c -> (
      match Clight.step fl c mem with
      | [ Lang.Next (Msg.Tau, fp, _, mem') ] ->
        check tbool "allocation footprint inside freelist" true
          (Addr.Set.for_all (Flist.owns_addr fl) (Footprint.ws_set fp));
        check tbool "memory grew" true
          (List.length (Memory.dom_blocks mem')
          > List.length (Memory.dom_blocks mem))
      | _ -> Alcotest.fail "expected allocation step"))

(* ------------------------------------------------------------------ *)
(* Compiled pipeline end-to-end per language                           *)
(* ------------------------------------------------------------------ *)

let test_pipeline_stage_agreement () =
  List.iter
    (fun (name, client, entries) ->
      let a = Cas_compiler.Driver.compile_artifacts client in
      List.iter
        (fun entry ->
          let arity =
            match
              List.find_opt (fun f -> f.Clight.fname = entry) client.Clight.funcs
            with
            | Some f -> List.length f.Clight.fparams
            | None -> 0
          in
          if arity = 0 then begin
            let reference = run_module Clight.lang client ~entry () in
            let open Cas_compiler.Driver in
            let stages =
              [
                ("clight_simpl", (fun () -> run_module Clight.lang a.clight_simpl ~entry ()));
                ("csharpminor", (fun () -> run_module Csharpminor.lang a.csharpminor ~entry ()));
                ("cminor", (fun () -> run_module Cminor.lang a.cminor ~entry ()));
                ("cminorsel", (fun () -> run_module Cminor.sel_lang a.cminorsel ~entry ()));
                ("rtl", (fun () -> run_module Rtl.lang a.rtl ~entry ()));
                ("rtl_opt", (fun () -> run_module Rtl.lang a.rtl_cse ~entry ()));
                ("ltl", (fun () -> run_module Ltl.lang a.ltl_tunneled ~entry ()));
                ("linear", (fun () -> run_module Linearl.lang a.linear_clean ~entry ()));
                ("mach", (fun () -> run_module Machl.lang a.mach ~entry ()));
                ("asm", (fun () -> run_module Asm.lang a.asm ~entry ()));
              ]
            in
            List.iter
              (fun (stage, run) ->
                let o = run () in
                check tbool
                  (Fmt.str "%s/%s %s: no abort" name entry stage)
                  false o.aborted;
                check tevents
                  (Fmt.str "%s/%s %s: events" name entry stage)
                  reference.events o.events)
              stages
          end)
        entries)
    (List.filter
       (fun (n, _, _) ->
         List.mem n
           [ "fib"; "array_sum"; "mutual_tailcall"; "const_cse"; "spill" ])
       (Corpus.sequential_clients ()))

(* ------------------------------------------------------------------ *)
(* Determinism of the languages — det(tl)                              *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  List.iter
    (fun (name, client, entries) ->
      let a = Cas_compiler.Driver.compile_artifacts client in
      List.iter
        (fun entry ->
          match Genv.link [ a.Cas_compiler.Driver.asm.Asm.globals ] with
          | Error _ -> ()
          | Ok genv -> (
            let mem = Genv.init_memory genv in
            let fl = Flist.make ~offset:(Genv.block_count genv) ~stride:1 in
            match
              Asm.init_core ~genv a.Cas_compiler.Driver.asm ~entry ~args:[]
            with
            | None -> ()
            | Some core ->
              check tbool (Fmt.str "%s/%s deterministic" name entry) true
                (Cascompcert.Simulation.det_on_run Asm.lang fl core mem
                   ~bound:5000)))
        entries)
    (List.filter
       (fun (n, _, _) -> List.mem n [ "fib"; "array_sum"; "const_cse" ])
       (Corpus.sequential_clients ()))

(* ------------------------------------------------------------------ *)
(* wd(tl): Def. 1 checks along executions                              *)
(* ------------------------------------------------------------------ *)

let wd_along_run (type code core) (lang : (code, core) Lang.t) (code : code)
    ~entry ?(max_steps = 300) () : Wd.violation list =
  match Genv.link [ lang.Lang.globals_of code ] with
  | Error _ -> []
  | Ok genv -> (
    let mem = Genv.init_memory genv in
    let fl = Flist.make ~offset:(Genv.block_count genv) ~stride:2 in
    match lang.Lang.init_core ~genv code ~entry ~args:[] with
    | None -> []
    | Some core ->
      let violations = ref [] in
      let rec go core mem steps =
        if steps > max_steps then ()
        else begin
          violations := Wd.check_all lang fl core mem @ !violations;
          match lang.Lang.step fl core mem with
          | Lang.Next (Msg.Ret _, _, _, _) :: _ -> ()
          | Lang.Next (Msg.Call _, _, core', mem') :: _ -> (
            match lang.Lang.after_external core' (Some (Value.Vint 0)) with
            | Some core'' -> go core'' mem' (steps + 1)
            | None -> ())
          | Lang.Next (_, _, core', mem') :: _ -> go core' mem' (steps + 1)
          | _ -> ()
        end
      in
      go core mem 0;
      !violations)

let test_wd_clight () =
  let vs = wd_along_run Clight.lang (Corpus.array_sum ()) ~entry:"main" () in
  check tint "Clight wd violations" 0 (List.length vs)

let test_wd_cimp () =
  let vs = wd_along_run Cimp.lang (Corpus.gamma_lock ()) ~entry:"unlock" () in
  check tint "CImp wd violations" 0 (List.length vs)

let test_wd_pipeline () =
  let client = Corpus.const_cse () in
  let a = Cas_compiler.Driver.compile_artifacts client in
  let open Cas_compiler.Driver in
  check tint "Cminor wd" 0
    (List.length (wd_along_run Cminor.lang a.cminor ~entry:"main" ()));
  check tint "RTL wd" 0
    (List.length (wd_along_run Rtl.lang a.rtl_cse ~entry:"main" ()));
  check tint "LTL wd" 0
    (List.length (wd_along_run Ltl.lang a.ltl_tunneled ~entry:"main" ()));
  check tint "Linear wd" 0
    (List.length (wd_along_run Linearl.lang a.linear_clean ~entry:"main" ()));
  check tint "Mach wd" 0
    (List.length (wd_along_run Machl.lang a.mach ~entry:"main" ()));
  check tint "x86 wd" 0
    (List.length (wd_along_run Asm.lang a.asm ~entry:"main" ()))

(* The Wd checker must itself catch ill-behaved languages: one whose
   step under-reports its write set (Def. 1 item 2), and one whose
   behaviour depends on memory it does not declare reading (item 3). *)

type evil_core = { epc : int; egenv : Genv.t }

let evil_lang ~(mode : [ `Hidden_write | `Hidden_read ]) :
    (unit, evil_core) Lang.t =
  let cell genv = Addr.make (Option.get (Genv.find_block genv "e")) 0 in
  {
    Lang.name = "Evil";
    init_core = (fun ~genv () ~entry ~args:_ ->
      if entry = "f" then Some { epc = 0; egenv = genv } else None);
    step =
      (fun _fl c m ->
        if c.epc > 0 then [ Lang.Next (Msg.Ret Value.Vundef, Footprint.empty, c, m) ]
        else
          let a = cell c.egenv in
          match mode with
          | `Hidden_write -> (
            (* writes the cell but reports an empty footprint *)
            match Memory.store m a (Value.Vint 42) with
            | Ok m' -> [ Lang.Next (Msg.Tau, Footprint.empty, { c with epc = 1 }, m') ]
            | Error _ -> [ Lang.Stuck_abort ])
          | `Hidden_read -> (
            (* branches on the cell but reports an empty read set *)
            match Memory.load m a with
            | Ok (Value.Vint n) when n > 100 ->
              [ Lang.Next (Msg.Evt (Event.Print 1), Footprint.empty, { c with epc = 1 }, m) ]
            | Ok _ ->
              [ Lang.Next (Msg.Tau, Footprint.empty, { c with epc = 1 }, m) ]
            | Error _ -> [ Lang.Stuck_abort ]));
    after_external = (fun _ _ -> None);
    fingerprint_core = (fun c -> string_of_int c.epc);
    hash_core = (fun st c -> Hashx.int st c.epc);
    hash_fundef = (fun _ () _ -> ());
    pp_core = (fun ppf c -> Fmt.pf ppf "evil@%d" c.epc);
    globals_of = (fun () -> [ Genv.gvar ~init:[ Genv.Iint 0 ] "e" 1 ]);
    defs_of = (fun () -> [ ("f", 0) ]);
  }

let run_wd_on_evil mode =
  let lang = evil_lang ~mode in
  match Genv.link [ lang.Lang.globals_of () ] with
  | Error _ -> Alcotest.fail "link"
  | Ok genv -> (
    let mem = Genv.init_memory genv in
    let fl = Flist.make ~offset:1 ~stride:1 in
    match lang.Lang.init_core ~genv () ~entry:"f" ~args:[] with
    | None -> Alcotest.fail "init"
    | Some core -> Wd.check_all lang fl core mem)

let test_wd_catches_hidden_write () =
  let vs = run_wd_on_evil `Hidden_write in
  check tbool "hidden write caught" true
    (List.exists (fun v -> v.Wd.item = 2) vs)

let test_wd_catches_hidden_read () =
  let vs = run_wd_on_evil `Hidden_read in
  check tbool "hidden read caught" true
    (List.exists (fun v -> v.Wd.item = 3 || v.Wd.item = 4) vs)

(* ------------------------------------------------------------------ *)
(* Parsers                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_precedence () =
  let p = Parse.clight {| int f() { return 1 + 2 * 3; } |} in
  check (Alcotest.option tint) "precedence" (Some 7)
    (ret_int (run_module Clight.lang p ~entry:"f" ()));
  let p = Parse.clight {| int f() { return (1 + 2) * 3; } |} in
  check (Alcotest.option tint) "parens" (Some 9)
    (ret_int (run_module Clight.lang p ~entry:"f" ()))

let test_parse_unary_and_comparison () =
  let p = Parse.clight {| int f() { return 0 - 3 + 5 >= 2; } |} in
  check (Alcotest.option tint) "minus and cmp" (Some 1)
    (ret_int (run_module Clight.lang p ~entry:"f" ()))

let test_parse_comments () =
  let p =
    Parse.clight
      {| // leading comment
         int f() { /* inline */ return 4; } |}
  in
  check (Alcotest.option tint) "comments ignored" (Some 4)
    (ret_int (run_module Clight.lang p ~entry:"f" ()))

let test_parse_errors () =
  let bad = [ "int f() { return + ; }"; "int f( { }"; "void f() { x = ; }" ] in
  List.iter
    (fun src ->
      match Parse.clight src with
      | exception Lexer.Error _ -> ()
      | _ -> Alcotest.failf "expected syntax error on %S" src)
    bad

let test_parse_cimp_roundtrip () =
  let g = Corpus.gamma_lock () in
  check tint "two functions" 2 (List.length g.Cimp.funcs);
  check tint "one object global" 1 (List.length g.Cimp.globals);
  let builtin = Cimp.gamma_lock () in
  let o1 = run_module Cimp.lang g ~entry:"unlock" () in
  let o2 = run_module Cimp.lang builtin ~entry:"unlock" () in
  check tbool "parsed unlock aborts like builtin" o2.aborted o1.aborted

(* ------------------------------------------------------------------ *)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_ops_total; prop_const_binop_agrees ]

let () =
  Alcotest.run "langs"
    [
      ( "ops",
        [
          Alcotest.test_case "arith" `Quick test_ops_arith;
          Alcotest.test_case "pointers" `Quick test_ops_pointers;
        ] );
      ( "cimp",
        [
          Alcotest.test_case "load/store" `Quick test_cimp_load_store;
          Alcotest.test_case "assert abort" `Quick test_cimp_assert_abort;
          Alcotest.test_case "atomic messages" `Quick test_cimp_atomic_msgs;
          Alcotest.test_case "return in atomic aborts" `Quick
            test_cimp_return_inside_atomic_aborts;
          Alcotest.test_case "permission confinement" `Quick
            test_cimp_perm_confinement;
        ] );
      ( "clight",
        [
          Alcotest.test_case "locals and arrays" `Quick
            test_clight_locals_and_addrof;
          Alcotest.test_case "parameters" `Quick test_clight_param_passing;
          Alcotest.test_case "null deref aborts" `Quick
            test_clight_deref_fault_aborts;
          Alcotest.test_case "if/while" `Quick test_clight_if_while;
          Alcotest.test_case "alloc from freelist" `Quick
            test_clight_alloc_footprint_in_flist;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "stage agreement" `Slow
            test_pipeline_stage_agreement;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "wd (Def. 1)",
        [
          Alcotest.test_case "Clight" `Slow test_wd_clight;
          Alcotest.test_case "CImp" `Quick test_wd_cimp;
          Alcotest.test_case "IRs and x86" `Slow test_wd_pipeline;
          Alcotest.test_case "catches hidden writes" `Quick
            test_wd_catches_hidden_write;
          Alcotest.test_case "catches hidden reads" `Quick
            test_wd_catches_hidden_read;
        ] );
      ( "parse",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "unary/cmp" `Quick test_parse_unary_and_comparison;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "cimp roundtrip" `Quick test_parse_cimp_roundtrip;
        ] );
      ("properties", qsuite);
    ]
