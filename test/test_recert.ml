(** Function-granular recertification: the certificate stack is keyed by
    per-function body digests, so editing one function of a unit re-runs
    the checker only for that function's path through the pipeline, an
    identically-named function in another unit can never satisfy a stale
    key, and the cached/steps counters have a single source of truth
    (cached ⟺ zero checker steps in this run). *)

open Cas_base
open Cas_langs
open Cascompcert

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* every test starts from an empty in-memory certificate cache *)
let fresh () =
  Cas_compiler.Cache.set_default_dir None;
  Cas_compiler.Cache.clear_memory ()

let sq_unit_v1 =
  Parse.clight
    {|
    int sq(int n) { return n * n; }
    void main() {
      int r;
      r = sq(4);
      print(r);
    }
|}

(* same unit with only [sq]'s body respelled — [main] is byte-identical *)
let sq_unit_v2 =
  Parse.clight
    {|
    int sq(int n) { int t; t = n * n; return t; }
    void main() {
      int r;
      r = sq(4);
      print(r);
    }
|}

(* the counters' single source of truth: a verdict came from the cache
   iff the checker executed no steps for it in this run (holds for every
   corpus function here — none certifies in zero steps when actually run) *)
let assert_stats_consistent reports =
  List.iter
    (fun (r : Framework.pass_sim_report) ->
      check tbool
        (Fmt.str "%s/%s: cached iff zero checker steps" r.Framework.pass
           r.Framework.entry)
        true
        (r.Framework.cached = (r.Framework.checker_steps = 0)))
    reports

let assert_all_ok reports =
  List.iter
    (fun (r : Framework.pass_sim_report) ->
      check tbool
        (Fmt.str "%s/%s verdict ok" r.Framework.pass r.Framework.entry)
        true
        (Framework.sim_ok r.Framework.outcome))
    reports

let by_entry entry reports =
  List.filter (fun (r : Framework.pass_sim_report) -> r.Framework.entry = entry)
    reports

(* Editing one function of the unit re-runs the checker only for that
   function: the untouched [main] is a pure cache hit on every pass. *)
let test_edit_one_function () =
  fresh ();
  let cold = Framework.check_passes sq_unit_v1 in
  assert_all_ok cold;
  assert_stats_consistent cold;
  List.iter
    (fun (r : Framework.pass_sim_report) ->
      check tbool
        (Fmt.str "cold %s/%s not cached" r.Framework.pass r.Framework.entry)
        false r.Framework.cached)
    cold;
  let recert = Framework.check_passes sq_unit_v2 in
  assert_all_ok recert;
  assert_stats_consistent recert;
  check tbool "recert has verdicts for both functions" true
    (by_entry "sq" recert <> [] && by_entry "main" recert <> []);
  List.iter
    (fun (r : Framework.pass_sim_report) ->
      check tbool
        (Fmt.str "edited sq: %s re-verified" r.Framework.pass)
        false r.Framework.cached)
    (by_entry "sq" recert);
  List.iter
    (fun (r : Framework.pass_sim_report) ->
      check tbool
        (Fmt.str "untouched main: %s cached" r.Framework.pass)
        true r.Framework.cached;
      check tint
        (Fmt.str "untouched main: %s zero steps" r.Framework.pass)
        0 r.Framework.checker_steps)
    (by_entry "main" recert)

(* An unchanged unit re-certifies entirely from the cache. *)
let test_unchanged_all_cached () =
  fresh ();
  let cold = Framework.check_passes sq_unit_v1 in
  let warm = Framework.check_passes sq_unit_v1 in
  assert_stats_consistent warm;
  check tint "same verdict count" (List.length cold) (List.length warm);
  List.iter
    (fun (r : Framework.pass_sim_report) ->
      check tbool
        (Fmt.str "warm %s/%s cached" r.Framework.pass r.Framework.entry)
        true r.Framework.cached;
      check tint
        (Fmt.str "warm %s/%s zero steps" r.Framework.pass r.Framework.entry)
        0 r.Framework.checker_steps)
    warm;
  (* outcomes are bit-identical to the cold run's *)
  List.iter2
    (fun (a : Framework.pass_sim_report) (b : Framework.pass_sim_report) ->
      check tbool
        (Fmt.str "%s/%s outcome unchanged" a.Framework.pass a.Framework.entry)
        true
        (a.Framework.pass = b.Framework.pass
        && a.Framework.entry = b.Framework.entry
        && a.Framework.outcome = b.Framework.outcome))
    cold warm

(* A same-named function with a different body in another unit can never
   satisfy a stale key: content addressing keys the verdict by the body
   digest, not the name. *)
let test_same_name_two_units () =
  fresh ();
  let unit_a =
    Parse.clight
      {|
      int f(int n) { return n + 1; }
      void main() {
        int r;
        r = f(1);
        print(r);
      }
|}
  in
  let unit_b =
    Parse.clight
      {|
      int f(int n) { return n + 2; }
      void main() {
        int r;
        r = f(1);
        print(r);
      }
|}
  in
  let ra = Framework.check_passes unit_a in
  assert_all_ok ra;
  let rb = Framework.check_passes unit_b in
  assert_all_ok rb;
  assert_stats_consistent rb;
  (* b's [f] has a different body — a's verdicts must not leak to it *)
  List.iter
    (fun (r : Framework.pass_sim_report) ->
      check tbool
        (Fmt.str "other unit's f: %s not cached" r.Framework.pass)
        false r.Framework.cached)
    (by_entry "f" rb);
  (* and re-certifying a is still pure hits: b did not evict or corrupt *)
  let ra' = Framework.check_passes unit_a in
  List.iter
    (fun (r : Framework.pass_sim_report) ->
      check tbool
        (Fmt.str "recheck a: %s/%s cached" r.Framework.pass r.Framework.entry)
        true r.Framework.cached)
    ra'

(* Per-function body digests: deterministic, sensitive to the body,
   distinct across pipeline stages, and unambiguous on absent names. *)
let test_fundef_digests () =
  let m1 = Lang.Mod (Clight.lang, sq_unit_v1) in
  let m2 = Lang.Mod (Clight.lang, sq_unit_v2) in
  check tbool "digest is deterministic" true
    (Lang.digest_fundef m1 "sq" = Lang.digest_fundef m1 "sq");
  check tbool "edited body changes the digest" false
    (Lang.digest_fundef m1 "sq" = Lang.digest_fundef m2 "sq");
  check tbool "sibling function's digest is unchanged" true
    (Lang.digest_fundef m1 "main" = Lang.digest_fundef m2 "main");
  check tbool "absent name digests differently from a defined one" false
    (Lang.digest_fundef m1 "nope" = Lang.digest_fundef m1 "sq");
  check tbool "two absent names digest differently" false
    (Lang.digest_fundef m1 "nope" = Lang.digest_fundef m1 "also_nope")

(* Across the whole compile trace (all ten IRs): the source-level edit is
   visible at the Clight stage, and the untouched [main]'s digest is
   stable at *every* stage — per-function compilation independence, the
   property that makes cross-pass function-granular caching sound. *)
let test_fundef_digests_along_trace () =
  let trace p =
    (Cas_compiler.Driver.compile_unit ~cache:false p)
      .Cas_compiler.Driver.c_trace
  in
  let t1 = trace sq_unit_v1 and t2 = trace sq_unit_v2 in
  check tint "same pipeline length" (List.length t1) (List.length t2);
  List.iter2
    (fun (stage1, m1) (stage2, m2) ->
      check tbool (Fmt.str "same stage (%s)" stage1) true (stage1 = stage2);
      check tbool
        (Fmt.str "%s: main's digest stable under sq's edit" stage1)
        true
        (Lang.digest_fundef m1 "main" = Lang.digest_fundef m2 "main"))
    t1 t2;
  let (stage0, first1), (_, first2) = (List.hd t1, List.hd t2) in
  check tbool
    (Fmt.str "%s: sq's digest changes with its body" stage0)
    false
    (Lang.digest_fundef first1 "sq" = Lang.digest_fundef first2 "sq")

(* Deterministic companion of the random paranoid sweep: a full
   check_passes run under --paranoid-fp observes no hash collision on any
   core of any IR the checker visits. *)
let test_paranoid_no_collisions () =
  fresh ();
  Lang.audit_reset ();
  Fpmode.set_paranoid true;
  Fun.protect
    ~finally:(fun () -> Fpmode.set_paranoid false)
    (fun () -> ignore (Framework.check_passes ~cache:false sq_unit_v1));
  check tint "no collisions" 0 (List.length (Lang.audit_collisions ()))

let () =
  Alcotest.run "recert"
    [
      ( "function-granular",
        [
          Alcotest.test_case "edit one function of N" `Quick
            test_edit_one_function;
          Alcotest.test_case "unchanged unit is pure hits" `Quick
            test_unchanged_all_cached;
          Alcotest.test_case "same name, two units, no stale hit" `Quick
            test_same_name_two_units;
        ] );
      ( "digests",
        [
          Alcotest.test_case "fundef digest basics" `Quick test_fundef_digests;
          Alcotest.test_case "digests along the compile trace" `Quick
            test_fundef_digests_along_trace;
        ] );
      ( "paranoid",
        [
          Alcotest.test_case "no collisions on a full pass sweep" `Quick
            test_paranoid_no_collisions;
        ] );
    ]
