(** Unit and property tests for the base layer: addresses, values,
    footprints, freelists, permissions, memory, global environments, and
    the §7.2 layout conversion. *)

open Cas_base

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let a b o = Addr.make b o

(* ------------------------------------------------------------------ *)
(* Addr                                                                *)
(* ------------------------------------------------------------------ *)

let test_addr_compare () =
  check tbool "equal addrs" true (Addr.equal (a 1 2) (a 1 2));
  check tbool "block dominates" true (Addr.compare (a 1 9) (a 2 0) < 0);
  check tbool "offset breaks ties" true (Addr.compare (a 1 1) (a 1 2) < 0);
  check tbool "reflexive" true (Addr.compare (a 3 4) (a 3 4) = 0)

let test_addr_set () =
  let s = Addr.Set.of_list [ a 0 0; a 0 1; a 0 0 ] in
  check tint "dedup" 2 (Addr.Set.cardinal s);
  check tbool "mem" true (Addr.Set.mem (a 0 1) s)

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_truth () =
  check tbool "int 0 false" false (Value.is_true (Value.Vint 0));
  check tbool "int 1 true" true (Value.is_true (Value.Vint 1));
  check tbool "pointer true" true (Value.is_true (Value.Vptr (a 1 0)));
  check tbool "undef false" false (Value.is_true Value.Vundef)

let test_value_addrs () =
  check tint "ptr has addr" 1 (List.length (Value.addrs (Value.Vptr (a 1 0))));
  check tint "int no addr" 0 (List.length (Value.addrs (Value.Vint 3)))

(* ------------------------------------------------------------------ *)
(* Footprint                                                           *)
(* ------------------------------------------------------------------ *)

let fp_r l = Footprint.reads l
let fp_w l = Footprint.writes l

let test_fp_conflict () =
  let open Footprint in
  check tbool "r/r no conflict" false (conflict (fp_r [ a 0 0 ]) (fp_r [ a 0 0 ]));
  check tbool "w/r conflict" true (conflict (fp_w [ a 0 0 ]) (fp_r [ a 0 0 ]));
  check tbool "w/w conflict" true (conflict (fp_w [ a 0 0 ]) (fp_w [ a 0 0 ]));
  check tbool "disjoint" false (conflict (fp_w [ a 0 0 ]) (fp_w [ a 0 1 ]))

let test_fp_conflict_bits () =
  let open Footprint in
  let w = fp_w [ a 0 0 ] in
  check tbool "both atomic: no race" false (conflict_bits (w, true) (w, true));
  check tbool "one atomic: race" true (conflict_bits (w, true) (w, false));
  check tbool "none atomic: race" true (conflict_bits (w, false) (w, false))

let test_fp_subset_union () =
  let open Footprint in
  let f1 = fp_r [ a 0 0 ] and f2 = union (fp_r [ a 0 0 ]) (fp_w [ a 0 1 ]) in
  check tbool "subset" true (subset f1 f2);
  check tbool "not subset" false (subset f2 f1);
  check tbool "union idempotent" true (equal (union f1 f1) f1)

(* qcheck generators *)
let gen_addr =
  QCheck.Gen.(map2 (fun b o -> Addr.make b o) (int_bound 5) (int_bound 5))

let gen_fp =
  QCheck.Gen.(
    map2
      (fun rs ws ->
        Footprint.make ~rs:(Addr.Set.of_list rs) ~ws:(Addr.Set.of_list ws))
      (list_size (int_bound 6) gen_addr)
      (list_size (int_bound 6) gen_addr))

let arb_fp = QCheck.make ~print:(Fmt.str "%a" Footprint.pp) gen_fp

let prop_conflict_symmetric =
  QCheck.Test.make ~name:"footprint conflict is symmetric" ~count:500
    (QCheck.pair arb_fp arb_fp) (fun (f1, f2) ->
      Footprint.conflict f1 f2 = Footprint.conflict f2 f1)

let prop_union_monotone =
  QCheck.Test.make ~name:"union is an upper bound" ~count:500
    (QCheck.pair arb_fp arb_fp) (fun (f1, f2) ->
      let u = Footprint.union f1 f2 in
      Footprint.subset f1 u && Footprint.subset f2 u)

let prop_conflict_monotone =
  QCheck.Test.make ~name:"conflict is monotone in footprints" ~count:500
    (QCheck.triple arb_fp arb_fp arb_fp) (fun (f1, f2, f3) ->
      (* if f1 conflicts with f2 then f1 conflicts with f2 ∪ f3 *)
      (not (Footprint.conflict f1 f2))
      || Footprint.conflict f1 (Footprint.union f2 f3))

(* ------------------------------------------------------------------ *)
(* Bitset footprints vs. the reference Addr.Set implementation         *)
(* ------------------------------------------------------------------ *)

(* The pre-interning footprint representation over plain address sets,
   kept verbatim as an executable oracle for the word-level bitsets. *)
module Fpref = struct
  type t = { rs : Addr.Set.t; ws : Addr.Set.t }

  let locs d = Addr.Set.union d.rs d.ws

  let conflict d1 d2 =
    (not (Addr.Set.is_empty (Addr.Set.inter d1.ws (locs d2))))
    || not (Addr.Set.is_empty (Addr.Set.inter d2.ws (locs d1)))

  let subset a b = Addr.Set.subset a.rs b.rs && Addr.Set.subset a.ws b.ws

  let inter_locs d s =
    { rs = Addr.Set.inter d.rs s; ws = Addr.Set.inter d.ws s }
end

(* wide enough that interner ids cross the 63-bit word boundary *)
let gen_addr_wide =
  QCheck.Gen.(map2 (fun b o -> Addr.make b o) (int_bound 11) (int_bound 11))

let gen_fp_pair =
  QCheck.Gen.(
    map2
      (fun rs ws ->
        let rs = Addr.Set.of_list rs and ws = Addr.Set.of_list ws in
        (Footprint.make ~rs ~ws, { Fpref.rs; ws }))
      (list_size (int_bound 10) gen_addr_wide)
      (list_size (int_bound 10) gen_addr_wide))

let arb_fp_pair =
  QCheck.make ~print:(fun (fp, _) -> Fmt.str "%a" Footprint.pp fp) gen_fp_pair

let prop_fp_views_roundtrip =
  QCheck.Test.make ~name:"bitset rs/ws views reproduce the input sets"
    ~count:500 arb_fp_pair (fun (fp, r) ->
      Addr.Set.equal (Footprint.rs_set fp) r.Fpref.rs
      && Addr.Set.equal (Footprint.ws_set fp) r.Fpref.ws)

let prop_fp_conflict_matches_oracle =
  QCheck.Test.make ~name:"bitset conflict matches the Addr.Set oracle"
    ~count:1000
    (QCheck.pair arb_fp_pair arb_fp_pair)
    (fun ((f1, r1), (f2, r2)) ->
      Footprint.conflict f1 f2 = Fpref.conflict r1 r2)

let prop_fp_subset_matches_oracle =
  QCheck.Test.make ~name:"bitset subset matches the Addr.Set oracle"
    ~count:1000
    (QCheck.pair arb_fp_pair arb_fp_pair)
    (fun ((f1, r1), (f2, r2)) -> Footprint.subset f1 f2 = Fpref.subset r1 r2)

let prop_fp_locs_matches_oracle =
  QCheck.Test.make ~name:"bitset locs matches the Addr.Set oracle" ~count:500
    arb_fp_pair (fun (fp, r) ->
      Addr.Set.equal (Footprint.locs fp) (Fpref.locs r))

let prop_fp_inter_locs_matches_oracle =
  QCheck.Test.make ~name:"bitset inter_locs matches the Addr.Set oracle"
    ~count:500
    (QCheck.pair arb_fp_pair QCheck.(make Gen.(list_size (int_bound 10) gen_addr_wide)))
    (fun ((fp, r), s) ->
      let s = Addr.Set.of_list s in
      let fi = Footprint.inter_locs fp s and ri = Fpref.inter_locs r s in
      Addr.Set.equal (Footprint.rs_set fi) ri.Fpref.rs
      && Addr.Set.equal (Footprint.ws_set fi) ri.Fpref.ws)

(* ------------------------------------------------------------------ *)
(* Flist                                                               *)
(* ------------------------------------------------------------------ *)

let test_flist_partition_disjoint () =
  let fls = Flist.partition ~globals:3 4 in
  check tint "four freelists" 4 (List.length fls);
  List.iteri
    (fun i f1 ->
      List.iteri
        (fun j f2 ->
          if i <> j then
            check tbool (Fmt.str "disjoint %d %d" i j) true (Flist.disjoint f1 f2))
        fls)
    fls

let test_flist_no_globals () =
  let fls = Flist.partition ~globals:3 2 in
  List.iter
    (fun fl ->
      check tbool "globals not owned" false
        (Flist.mem fl 0 || Flist.mem fl 1 || Flist.mem fl 2))
    fls

let test_flist_nth_mem () =
  let fl = Flist.make ~offset:5 ~stride:3 in
  check tbool "nth in flist" true (Flist.mem fl (Flist.nth fl 7));
  check tbool "off stride" false (Flist.mem fl 6)

let prop_flist_nth_mem =
  QCheck.Test.make ~name:"flist nth is a member" ~count:300
    QCheck.(triple (int_bound 10) (int_range 1 8) (int_bound 50))
    (fun (off, stride, i) ->
      let fl = Flist.make ~offset:off ~stride in
      Flist.mem fl (Flist.nth fl i))

let prop_flist_partition_disjoint =
  QCheck.Test.make ~name:"partitioned freelists are pairwise disjoint"
    ~count:100
    QCheck.(pair (int_bound 5) (int_range 2 6))
    (fun (globals, n) ->
      let fls = Flist.partition ~globals n in
      List.for_all
        (fun f1 ->
          List.for_all
            (fun f2 -> f1 = f2 || Flist.disjoint f1 f2)
            fls)
        fls)

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let mem_with_block ?(perm = Perm.Normal) ?(size = 4) b =
  Memory.alloc_block Memory.empty ~block:b ~size ~perm

let test_mem_load_store () =
  let m = mem_with_block 0 in
  (match Memory.store m (a 0 2) (Value.Vint 42) with
  | Ok m' -> (
    match Memory.load m' (a 0 2) with
    | Ok v -> check tbool "roundtrip" true (Value.equal v (Value.Vint 42))
    | Error _ -> Alcotest.fail "load failed")
  | Error _ -> Alcotest.fail "store failed");
  (match Memory.load m (a 0 0) with
  | Ok v -> check tbool "fresh reads undef" true (Value.equal v Value.Vundef)
  | Error _ -> Alcotest.fail "load of fresh failed")

let test_mem_faults () =
  let m = mem_with_block 0 in
  check tbool "unmapped" true
    (match Memory.load m (a 9 0) with Error (Memory.Unmapped _) -> true | _ -> false);
  check tbool "oob" true
    (match Memory.load m (a 0 99) with
    | Error (Memory.Out_of_bounds _) -> true
    | _ -> false);
  let mo = mem_with_block ~perm:Perm.Object 1 in
  check tbool "perm mismatch on normal access" true
    (match Memory.load mo (a 1 0) with
    | Error (Memory.Perm_mismatch _) -> true
    | _ -> false);
  check tbool "object access ok" true
    (match Memory.load ~perm:Perm.Object mo (a 1 0) with Ok _ -> true | _ -> false)

let test_mem_alloc_least_free () =
  let fl = Flist.make ~offset:2 ~stride:2 in
  let m = mem_with_block 0 in
  let m1, b1, fp = Memory.alloc m fl ~size:1 ~perm:Perm.Normal in
  check tint "first block" 2 b1;
  check tbool "alloc fp is write" true
    (Footprint.mem_ws fp (a 2 0));
  let _, b2, _ = Memory.alloc m1 fl ~size:1 ~perm:Perm.Normal in
  check tint "second block skips" 4 b2

let test_mem_forward_leffect () =
  let fl = Flist.make ~offset:1 ~stride:1 in
  let m = mem_with_block 0 in
  let m', _, fp = Memory.alloc m fl ~size:2 ~perm:Perm.Normal in
  check tbool "forward" true (Memory.forward m m');
  check tbool "not backward" false (Memory.forward m' m);
  check tbool "leffect of alloc" true (Memory.leffect m m' fp fl);
  (* a write outside the declared footprint violates LEffect *)
  match Memory.store m' (a 0 0) (Value.Vint 7) with
  | Ok m'' ->
    check tbool "leffect catches stray write" false
      (Memory.leffect m m'' fp fl)
  | Error _ -> Alcotest.fail "store failed"

let test_mem_eq_on () =
  let m1 = mem_with_block 0 in
  let m2 =
    match Memory.store m1 (a 0 0) (Value.Vint 1) with Ok m -> m | Error _ -> m1
  in
  check tbool "differ on written cell" false
    (Memory.eq_on (Addr.Set.singleton (a 0 0)) m1 m2);
  check tbool "agree elsewhere" true
    (Memory.eq_on (Addr.Set.singleton (a 0 1)) m1 m2)

let test_mem_closed () =
  let m = mem_with_block 0 in
  let m =
    match Memory.store m (a 0 0) (Value.Vptr (a 0 3)) with
    | Ok m -> m
    | Error _ -> m
  in
  check tbool "self-contained pointer" true (Memory.closed m);
  let m2 =
    match Memory.store m (a 0 1) (Value.Vptr (a 7 0)) with
    | Ok m -> m
    | Error _ -> m
  in
  check tbool "wild pointer detected" false (Memory.closed m2)

let test_mem_fingerprint () =
  let m1 = mem_with_block 0 in
  let m2 = mem_with_block 0 in
  check tbool "equal memories, equal fingerprints" true
    (Memory.fingerprint m1 = Memory.fingerprint m2);
  let m3 =
    match Memory.store m1 (a 0 0) (Value.Vint 5) with Ok m -> m | Error _ -> m1
  in
  check tbool "store changes fingerprint" false
    (Memory.fingerprint m1 = Memory.fingerprint m3)

(* ------------------------------------------------------------------ *)
(* Memory properties: equal / fingerprint / hash / leffect             *)
(* ------------------------------------------------------------------ *)

type mem_op = Oalloc of int * int | Ostore of int * int * Value.t

let gen_value =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Value.Vint n) (int_bound 3));
        (2, return Value.Vundef);
        (1, map2 (fun b o -> Value.Vptr (Addr.make b o)) (int_bound 3) (int_bound 3));
      ])

let gen_mem_op =
  QCheck.Gen.(
    frequency
      [
        (1, map2 (fun b s -> Oalloc (b, s + 1)) (int_bound 3) (int_bound 4));
        ( 4,
          map3
            (fun b o v -> Ostore (b, o, v))
            (int_bound 3) (int_bound 4) gen_value );
      ])

let apply_mem_ops ops =
  List.fold_left
    (fun m op ->
      match op with
      | Oalloc (b, s) ->
        if Memory.block_defined m b then m
        else Memory.alloc_block m ~block:b ~size:s ~perm:Perm.Normal
      | Ostore (b, o, v) -> (
        match Memory.store m (Addr.make b o) v with
        | Ok m' -> m'
        | Error _ -> m))
    Memory.empty ops

let print_mem_ops ops =
  String.concat ";"
    (List.map
       (function
         | Oalloc (b, s) -> Fmt.str "alloc %d/%d" b s
         | Ostore (b, o, v) -> Fmt.str "[%d,%d]:=%a" b o Value.pp v)
       ops)

(* two memories built from a shared prefix and divergent suffixes: the
   small op space makes both the equal and the unequal case frequent,
   and Vundef stores exercise the explicit-binding-vs-absent class *)
let gen_mem_pair =
  QCheck.Gen.(
    map3
      (fun base s1 s2 ->
        (base, s1, s2, apply_mem_ops (base @ s1), apply_mem_ops (base @ s2)))
      (list_size (int_bound 10) gen_mem_op)
      (list_size (int_bound 4) gen_mem_op)
      (list_size (int_bound 4) gen_mem_op))

let arb_mem_pair =
  QCheck.make
    ~print:(fun (b, s1, s2, _, _) ->
      Fmt.str "base=%s suf1=%s suf2=%s" (print_mem_ops b) (print_mem_ops s1)
        (print_mem_ops s2))
    gen_mem_pair

let prop_mem_equal_iff_fingerprint =
  QCheck.Test.make
    ~name:"Memory.equal m1 m2 iff fingerprint m1 = fingerprint m2"
    ~count:1000 arb_mem_pair (fun (_, _, _, m1, m2) ->
      let eq = Memory.equal m1 m2 in
      eq = (Memory.fingerprint m1 = Memory.fingerprint m2)
      && ((not eq) || Memory.hash m1 = Memory.hash m2))

(* the seed's address-set leffect, as the oracle for the block-restricted
   scan ([ws] passed as a set; the new one reads the bitset directly) *)
let leffect_ref m m' ws f =
  let outside_ws_unchanged =
    Addr.Set.for_all
      (fun a ->
        Addr.Set.mem a ws
        ||
        match (Memory.peek m a, Memory.peek m' a) with
        | Some v, Some v' -> Value.equal v v'
        | _ -> false)
      (Memory.dom m)
  in
  let new_cells = Addr.Set.diff (Memory.dom m') (Memory.dom m) in
  outside_ws_unchanged
  && Addr.Set.for_all
       (fun a -> Addr.Set.mem a ws && Flist.owns_addr f a)
       new_cells

let prop_leffect_matches_oracle =
  QCheck.Test.make
    ~name:"block-restricted leffect matches the address-set oracle"
    ~count:1000
    (QCheck.pair arb_mem_pair
       QCheck.(make Gen.(list_size (int_bound 6) gen_addr_wide)))
    (fun ((_, _, _, m, m'), ws_l) ->
      let fl = Flist.make ~offset:1 ~stride:2 in
      let ws = Addr.Set.of_list ws_l in
      let d = Footprint.make ~rs:Addr.Set.empty ~ws in
      Memory.leffect m m' d fl = leffect_ref m m' ws fl)

let prop_leffect_covers_stores =
  QCheck.Test.make
    ~name:"leffect holds when ws covers exactly the stores" ~count:500
    (QCheck.make
       ~print:(fun (b, s) ->
         Fmt.str "base=%s suf=%s" (print_mem_ops b) (print_mem_ops s))
       QCheck.Gen.(
         pair
           (list_size (int_bound 8) gen_mem_op)
           (list_size (int_bound 4) gen_mem_op)))
    (fun (base, suf) ->
      let m = apply_mem_ops base in
      (* suffix of pure stores into already-allocated blocks *)
      let stores =
        List.filter_map
          (function
            | Oalloc _ -> None
            | Ostore (b, o, v) -> (
              match Memory.store m (Addr.make b o) v with
              | Ok _ -> Some (Addr.make b o, v)
              | Error _ -> None))
          suf
      in
      let m' =
        List.fold_left
          (fun m (a, v) -> Result.get_ok (Memory.store m a v))
          m stores
      in
      let ws = Addr.Set.of_list (List.map fst stores) in
      let d = Footprint.make ~rs:Addr.Set.empty ~ws in
      let fl = Flist.make ~offset:0 ~stride:1 in
      Memory.leffect m m' d fl
      = leffect_ref m m' ws fl
      && Memory.leffect m m' d fl)

(* ------------------------------------------------------------------ *)
(* Genv                                                                *)
(* ------------------------------------------------------------------ *)

let test_genv_link () =
  let g1 = [ Genv.gvar ~init:[ Genv.Iint 1 ] "x" 1 ] in
  let g2 = [ Genv.gvar "y" 2 ] in
  match Genv.link [ g1; g2 ] with
  | Error _ -> Alcotest.fail "link failed"
  | Ok ge ->
    check tint "two globals" 2 (Genv.block_count ge);
    check tbool "x resolvable" true (Genv.find_block ge "x" <> None);
    check tbool "z not resolvable" true (Genv.find_block ge "z" = None)

let test_genv_link_compatible_dup () =
  let g = [ Genv.gvar ~init:[ Genv.Iint 1 ] "x" 1 ] in
  match Genv.link [ g; g ] with
  | Ok ge -> check tint "deduplicated" 1 (Genv.block_count ge)
  | Error _ -> Alcotest.fail "compatible duplicates must link"

let test_genv_link_incompatible () =
  let g1 = [ Genv.gvar ~init:[ Genv.Iint 1 ] "x" 1 ] in
  let g2 = [ Genv.gvar ~init:[ Genv.Iint 2 ] "x" 1 ] in
  match Genv.link [ g1; g2 ] with
  | Error "x" -> ()
  | Error n -> Alcotest.failf "wrong culprit %s" n
  | Ok _ -> Alcotest.fail "incompatible duplicates must not link"

let test_genv_init_memory () =
  let g =
    [
      Genv.gvar ~init:[ Genv.Iint 7 ] "x" 1;
      Genv.gvar ~init:[ Genv.Iaddr "x" ] "p" 1;
    ]
  in
  match Genv.link [ g ] with
  | Error _ -> Alcotest.fail "link failed"
  | Ok ge -> (
    let m = Genv.init_memory ge in
    check tbool "closed" true (Memory.closed m);
    let bx = Option.get (Genv.find_block ge "x") in
    let bp = Option.get (Genv.find_block ge "p") in
    match (Memory.peek m (a bx 0), Memory.peek m (a bp 0)) with
    | Some (Value.Vint 7), Some (Value.Vptr pa) ->
      check tbool "pointer init resolves" true (Addr.equal pa (a bx 0))
    | _ -> Alcotest.fail "bad initialization")

(* ------------------------------------------------------------------ *)
(* Layout (§7.2)                                                       *)
(* ------------------------------------------------------------------ *)

let test_layout_roundtrip () =
  let fl = Flist.make ~offset:2 ~stride:3 in
  let t = Layout.build ~globals:2 fl ~depth:8 in
  let m = mem_with_block ~size:2 0 in
  let m = Memory.alloc_block m ~block:1 ~size:1 ~perm:Perm.Object in
  let m, b, _ = Memory.alloc m fl ~size:2 ~perm:Perm.Normal in
  let m =
    match Memory.store m (a b 1) (Value.Vptr (a b 0)) with
    | Ok m -> m
    | Error _ -> m
  in
  let cc = Layout.to_compcert t m in
  let back = Layout.of_compcert t cc in
  check tbool "roundtrip preserves memory" true (Memory.equal m back)

let test_layout_consecutive () =
  let fl = Flist.make ~offset:5 ~stride:4 in
  let t = Layout.build ~globals:3 fl ~depth:8 in
  check tbool "first freelist block maps to nextblock" true
    (Layout.to_compcert_block t (Flist.nth fl 0) = Some 3);
  check tbool "second maps consecutively" true
    (Layout.to_compcert_block t (Flist.nth fl 1) = Some 4);
  check tbool "globals fixed" true (Layout.to_compcert_block t 1 = Some 1)

let test_layout_alloc_commutes () =
  let fl = Flist.make ~offset:2 ~stride:2 in
  let t = Layout.build ~globals:2 fl ~depth:16 in
  let m = mem_with_block ~size:1 0 in
  let m = Memory.alloc_block m ~block:1 ~size:1 ~perm:Perm.Normal in
  check tbool "alloc commutes with conversion" true
    (Layout.alloc_commutes t m ~size:3);
  (* also after a prior allocation *)
  let m', _, _ = Memory.alloc m fl ~size:1 ~perm:Perm.Normal in
  check tbool "second alloc commutes" true (Layout.alloc_commutes t m' ~size:2)

let prop_layout_store_commutes =
  QCheck.Test.make ~name:"store commutes with layout conversion" ~count:200
    QCheck.(triple (int_bound 1) (int_bound 2) (int_range (-50) 50))
    (fun (blk_choice, ofs, v) ->
      let fl = Flist.make ~offset:1 ~stride:2 in
      let t = Layout.build ~globals:1 fl ~depth:8 in
      let m = mem_with_block ~size:3 0 in
      let m, b, _ = Memory.alloc m fl ~size:3 ~perm:Perm.Normal in
      let target = if blk_choice = 0 then 0 else b in
      match Memory.store m (a target ofs) (Value.Vint v) with
      | Error _ -> true
      | Ok m' -> (
        let cc_then = Layout.to_compcert t m' in
        let cc = Layout.to_compcert t m in
        let target_cc = Option.get (Layout.to_compcert_block t target) in
        match Memory.store cc (a target_cc ofs) (Value.Vint v) with
        | Ok then_cc -> Memory.equal cc_then then_cc
        | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Deque (Chase–Lev work-stealing)                                     *)
(* ------------------------------------------------------------------ *)

let test_deque_lifo_fifo () =
  let d = Deque.create ~capacity:4 () in
  check tbool "empty pop" true (Deque.pop d = None);
  check tbool "empty steal" true (Deque.steal d = None);
  List.iter (fun i -> Deque.push d i) [ 1; 2; 3 ];
  check tint "size" 3 (Deque.size d);
  check tbool "owner pops newest" true (Deque.pop d = Some 3);
  check tbool "thief steals oldest" true (Deque.steal d = Some 1);
  check tbool "owner pops the rest" true (Deque.pop d = Some 2);
  check tbool "drained" true (Deque.pop d = None && Deque.steal d = None)

let test_deque_growth () =
  let d = Deque.create ~capacity:2 () in
  let n = 1000 in
  for i = 1 to n do
    Deque.push d i
  done;
  check tint "all retained across growth" n (Deque.size d);
  for i = n downto 1 do
    check tbool (Fmt.str "pop %d" i) true (Deque.pop d = Some i)
  done

(* Sequential oracle: the same abstract deque as a list, newest-first.
   Owner push/pop act on the head, thieves steal from the tail. *)
type deque_op = Dpush | Dpop | Dsteal

let gen_deque_ops =
  QCheck.Gen.(
    list_size (int_bound 60)
      (frequency [ (3, return Dpush); (2, return Dpop); (2, return Dsteal) ]))

let arb_deque_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ""
        (List.map
           (function Dpush -> "u" | Dpop -> "o" | Dsteal -> "s")
           ops))
    gen_deque_ops

let prop_deque_matches_oracle =
  QCheck.Test.make ~name:"deque matches the list oracle sequentially"
    ~count:1000 arb_deque_ops (fun ops ->
      let d = Deque.create ~capacity:2 () in
      let model = ref [] in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Dpush ->
            incr next;
            Deque.push d !next;
            model := !next :: !model;
            true
          | Dpop -> (
            let got = Deque.pop d in
            match !model with
            | [] -> got = None
            | x :: rest ->
              model := rest;
              got = Some x)
          | Dsteal -> (
            let got = Deque.steal d in
            match List.rev !model with
            | [] -> got = None
            | x :: rest ->
              model := List.rev rest;
              got = Some x))
        ops
      && Deque.size d = List.length !model)

(* Multi-domain hammer: one owner pushes and pops while thieves steal
   concurrently; every pushed element must be taken exactly once, and
   stolen elements must arrive oldest-first per thief (top is
   monotonic, so any one thief's steals are increasing). *)
let test_deque_hammer () =
  let thieves = 3 in
  let n = 20_000 in
  for _round = 1 to 3 do
    let d = Deque.create ~capacity:8 () in
    let taken = Array.make (n + 1) 0 in
    let owner_done = Atomic.make false in
    let thief () =
      let mine = ref [] in
      let rec loop () =
        match Deque.steal d with
        | Some v ->
          mine := v :: !mine;
          loop ()
        | None -> if not (Atomic.get owner_done) then loop ()
      in
      loop ();
      !mine
    in
    let doms = List.init thieves (fun _ -> Domain.spawn thief) in
    (* owner: push everything, popping a batch every so often *)
    let popped = ref [] in
    for i = 1 to n do
      Deque.push d i;
      if i mod 3 = 0 then
        match Deque.pop d with
        | Some v -> popped := v :: !popped
        | None -> ()
    done;
    let rec drain () =
      match Deque.pop d with
      | Some v ->
        popped := v :: !popped;
        drain ()
      | None -> ()
    in
    drain ();
    Atomic.set owner_done true;
    let stolen = List.map Domain.join doms in
    List.iter (fun v -> taken.(v) <- taken.(v) + 1) !popped;
    List.iter
      (fun mine ->
        (* collected newest-first, so per-thief order must be decreasing *)
        check tbool "per-thief steals oldest-first" true
          (let rec sorted = function
             | a :: (b :: _ as rest) -> a > b && sorted rest
             | _ -> true
           in
           sorted mine);
        List.iter (fun v -> taken.(v) <- taken.(v) + 1) mine)
      stolen;
    for i = 1 to n do
      if taken.(i) <> 1 then
        Alcotest.failf "element %d taken %d times" i taken.(i)
    done
  done

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [
    prop_conflict_symmetric;
    prop_union_monotone;
    prop_conflict_monotone;
    prop_fp_views_roundtrip;
    prop_fp_conflict_matches_oracle;
    prop_fp_subset_matches_oracle;
    prop_fp_locs_matches_oracle;
    prop_fp_inter_locs_matches_oracle;
    prop_flist_nth_mem;
    prop_flist_partition_disjoint;
    prop_mem_equal_iff_fingerprint;
    prop_leffect_matches_oracle;
    prop_leffect_covers_stores;
    prop_layout_store_commutes;
    prop_deque_matches_oracle;
  ]

let () =
  Alcotest.run "base"
    [
      ( "addr",
        [
          Alcotest.test_case "compare" `Quick test_addr_compare;
          Alcotest.test_case "set" `Quick test_addr_set;
        ] );
      ( "value",
        [
          Alcotest.test_case "truth" `Quick test_value_truth;
          Alcotest.test_case "addrs" `Quick test_value_addrs;
        ] );
      ( "footprint",
        [
          Alcotest.test_case "conflict" `Quick test_fp_conflict;
          Alcotest.test_case "conflict bits" `Quick test_fp_conflict_bits;
          Alcotest.test_case "subset/union" `Quick test_fp_subset_union;
        ] );
      ( "flist",
        [
          Alcotest.test_case "partition disjoint" `Quick
            test_flist_partition_disjoint;
          Alcotest.test_case "avoids globals" `Quick test_flist_no_globals;
          Alcotest.test_case "nth/mem" `Quick test_flist_nth_mem;
        ] );
      ( "memory",
        [
          Alcotest.test_case "load/store" `Quick test_mem_load_store;
          Alcotest.test_case "faults" `Quick test_mem_faults;
          Alcotest.test_case "alloc least free" `Quick test_mem_alloc_least_free;
          Alcotest.test_case "forward/LEffect" `Quick test_mem_forward_leffect;
          Alcotest.test_case "eq_on" `Quick test_mem_eq_on;
          Alcotest.test_case "closed" `Quick test_mem_closed;
          Alcotest.test_case "fingerprint" `Quick test_mem_fingerprint;
        ] );
      ( "genv",
        [
          Alcotest.test_case "link" `Quick test_genv_link;
          Alcotest.test_case "compatible duplicates" `Quick
            test_genv_link_compatible_dup;
          Alcotest.test_case "incompatible duplicates" `Quick
            test_genv_link_incompatible;
          Alcotest.test_case "init memory" `Quick test_genv_init_memory;
        ] );
      ( "deque",
        [
          Alcotest.test_case "lifo/fifo ends" `Quick test_deque_lifo_fifo;
          Alcotest.test_case "growth" `Quick test_deque_growth;
          Alcotest.test_case "multi-domain hammer" `Slow test_deque_hammer;
        ] );
      ( "layout",
        [
          Alcotest.test_case "roundtrip" `Quick test_layout_roundtrip;
          Alcotest.test_case "consecutive numbering" `Quick
            test_layout_consecutive;
          Alcotest.test_case "alloc commutes" `Quick test_layout_alloc_commutes;
        ] );
      ("properties", qsuite);
    ]
