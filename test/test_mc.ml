(** Differential tests for the [Cas_mc] exploration engines.

    The naive engine is the oracle: it exhaustively enumerates the
    scheduler-explicit preemptive graph exactly as earlier revisions did.
    The DPOR engines must agree with it on every engine-invariant
    observable — DRF verdicts, abort reachability, and the sets of
    completed/aborted event traces — while exploring strictly fewer
    worlds. [SCut] entries are compared only between runs of the *same*
    transition system: a cycle cut records the events seen up to the
    cut, and the naive scheduler-explicit view and the DPOR selection
    view cut cyclic executions at different granularities. *)

open Cas_base
open Cas_langs
open Cas_conc

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let load p =
  match World.load p ~args:[] with
  | Error e -> Alcotest.failf "load: %a" World.pp_load_error e
  | Ok w -> w

let engines = [ Engine.Naive; Engine.Dpor; Engine.Dpor_par ]

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let prints_prog n =
  Lang.prog
    [
      Lang.Mod
        (Clight.lang, Parse.clight {| void f() { print(1); print(2); } |});
    ]
    (List.init n (fun _ -> "f"))

let producer_consumer_prog () =
  Lang.prog
    [
      Lang.Mod (Clight.lang, Corpus.producer_consumer ());
      Lang.Mod (Cimp.lang, Corpus.gamma_lock ());
    ]
    [ "producer"; "consumer" ]

let lock_counter_3_prog () =
  Lang.prog
    [
      Lang.Mod (Clight.lang, Corpus.counter ());
      Lang.Mod (Cimp.lang, Corpus.gamma_lock ());
    ]
    [ "inc"; "inc"; "inc" ]

(* unlock() on a free lock aborts (Fig. 10(a) asserts L == 1), so abort
   reachability is exercised on a program where it is actually reachable *)
let double_unlock_prog () =
  Lang.prog
    [ Lang.Mod (Cimp.lang, Corpus.gamma_lock ()) ]
    [ "unlock"; "unlock" ]

let drf_corpus () =
  [
    ("lock-counter", Corpus.lock_counter_prog ());
    ("racy", Corpus.racy_prog ());
    ("observer", Corpus.observer_prog ());
    ("producer-consumer", producer_consumer_prog ());
    ("prints-2", prints_prog 2);
    ("double-unlock", double_unlock_prog ());
  ]

let trace_corpus () =
  [
    ("lock-counter", Corpus.lock_counter_prog ());
    ("racy", Corpus.racy_prog ());
    ("observer", Corpus.observer_prog ());
    ("prints-2", prints_prog 2);
    ("double-unlock", double_unlock_prog ());
  ]

(* ------------------------------------------------------------------ *)
(* Store unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_store_accounting () =
  let s = Cas_mc.Store.create ~shards:4 ~capacity:3 () in
  check tbool "a is new" true (Cas_mc.Store.add s "a" = `New);
  check tbool "a again is seen" true (Cas_mc.Store.add s "a" = `Seen);
  check tbool "b is new" true (Cas_mc.Store.add s "b" = `New);
  check tbool "c is new" true (Cas_mc.Store.add s "c" = `New);
  check tbool "d hits capacity" true (Cas_mc.Store.add s "d" = `Full);
  check tbool "a still seen at capacity" true (Cas_mc.Store.add s "a" = `Seen);
  check tint "distinct" 3 (Cas_mc.Store.distinct s);
  check tint "hits" 2 (Cas_mc.Store.hits s);
  check tbool "truncated" true (Cas_mc.Store.truncated s);
  check tbool "mem a" true (Cas_mc.Store.mem s "a");
  check tbool "not mem d" false (Cas_mc.Store.mem s "d")

(* The capacity cap is approximate under parallel insertion by at most
   D - 1 keys for D racing domains (see [Store]), and the [full] flag is
   set-only: hammer a full store from several domains and check both. *)
let test_store_full_parallel () =
  let jobs = 4 in
  let capacity = 500 in
  for round = 1 to 3 do
    let s = Cas_mc.Store.create ~capacity () in
    let tasks =
      List.init jobs (fun d () ->
          for i = 0 to 1999 do
            ignore (Cas_mc.Store.add s (Fmt.str "%d-%d-%d" round d i))
          done)
    in
    ignore (Pool.run ~jobs tasks);
    check tbool
      (Fmt.str "round %d: full store is truncated" round)
      true
      (Cas_mc.Store.truncated s);
    check tbool
      (Fmt.str "round %d: at least capacity admitted" round)
      true
      (Cas_mc.Store.distinct s >= capacity);
    check tbool
      (Fmt.str "round %d: over-admission < %d domains" round jobs)
      true
      (Cas_mc.Store.distinct s <= capacity + jobs - 1);
    (* late arrivals after saturation cannot clear the flag *)
    ignore (Cas_mc.Store.add s "straggler");
    check tbool
      (Fmt.str "round %d: still truncated after straggler" round)
      true
      (Cas_mc.Store.truncated s)
  done

let test_engine_names () =
  List.iter
    (fun e ->
      check tbool
        (Fmt.str "%s roundtrips" (Engine.to_string e))
        true
        (Engine.of_string (Engine.to_string e) = Ok e))
    Engine.all;
  check tbool "unknown engine rejected" true
    (Result.is_error (Engine.of_string "bfs"))

(* ------------------------------------------------------------------ *)
(* Differential: DRF verdicts                                          *)
(* ------------------------------------------------------------------ *)

let test_drf_verdicts_agree () =
  List.iter
    (fun (name, p) ->
      let w = load p in
      let verdicts =
        List.map (fun e -> (Race.drf ~engine:e ~jobs:2 w).Race.drf) engines
      in
      match verdicts with
      | [ naive; dpor; dpor_par ] ->
        check tbool (Fmt.str "%s: dpor agrees with naive" name) naive dpor;
        check tbool
          (Fmt.str "%s: dpor-par agrees with naive" name)
          naive dpor_par
      | _ -> assert false)
    (drf_corpus ())

(* ------------------------------------------------------------------ *)
(* Differential: trace sets and abort reachability                     *)
(* ------------------------------------------------------------------ *)

let completed (r : Explore.trace_result) =
  Explore.TraceSet.filter (fun (_, st) -> st <> Explore.SCut) r.Explore.traces

let has_abort (r : Explore.trace_result) =
  Explore.TraceSet.elements r.Explore.traces
  |> List.exists (fun (_, st) -> st = Explore.SAbort)

(* The naive oracle enumerates *paths* of the scheduler-explicit graph,
   so its budget can truncate where DPOR completes (every switch
   placement multiplies the path count; a spin lock alone exhausts it).
   Every completed naive trace is a real execution, hence always a
   subset of DPOR's set; equality is asserted whenever the oracle
   finished. On this corpus the DPOR engines must always finish. *)
let test_trace_sets_agree () =
  List.iter
    (fun (name, p) ->
      let w = load p in
      let naive = fst (Engine.traces ~engine:Engine.Naive w) in
      let dpor = fst (Engine.traces ~engine:Engine.Dpor w) in
      let dpor_par = fst (Engine.traces ~engine:Engine.Dpor_par ~jobs:2 w) in
      check tbool
        (Fmt.str "%s: dpor completes" name)
        true
        (dpor.Explore.complete && dpor_par.Explore.complete);
      check tbool
        (Fmt.str "%s: dpor-par done+abort traces = dpor" name)
        true
        (Explore.TraceSet.equal (completed dpor) (completed dpor_par));
      check tbool
        (Fmt.str "%s: naive done+abort traces within dpor's" name)
        true
        (Explore.TraceSet.subset (completed naive) (completed dpor));
      if naive.Explore.complete then begin
        check tbool
          (Fmt.str "%s: dpor done+abort traces = naive" name)
          true
          (Explore.TraceSet.equal (completed naive) (completed dpor));
        check tbool
          (Fmt.str "%s: abort reachability agrees" name)
          (has_abort naive) (has_abort dpor)
      end)
    (trace_corpus ())

let test_double_unlock_aborts () =
  let w = load (double_unlock_prog ()) in
  List.iter
    (fun e ->
      let r, st = Engine.traces ~engine:e w in
      check tbool
        (Fmt.str "[%s] abort trace found" (Engine.to_string e))
        true (has_abort r);
      check tbool
        (Fmt.str "[%s] stats flag abort" (Engine.to_string e))
        true st.Cas_mc.Stats.abort_reachable)
    engines

(* Within one transition system the DPOR trace set must equal the full
   naive enumeration *including* SCut entries; run the naive engine on
   the same selection view DPOR explores (acyclic programs, so SCut can
   only come from budgets, which these programs never hit). *)
let test_full_sets_on_selection_view () =
  List.iter
    (fun (name, p) ->
      let w = load p in
      let naive_sel, _ =
        Cas_mc.Engine.traces Engine.selection_system [ w ]
      in
      let dpor, _ = Cas_mc.Engine.traces ~engine:Cas_mc.Engine.Dpor
          Engine.selection_system [ w ]
      in
      check tbool
        (Fmt.str "%s: full trace sets equal on the selection view" name)
        true
        (Explore.TraceSet.equal naive_sel.Explore.traces dpor.Explore.traces))
    [
      ("racy", Corpus.racy_prog ());
      ("prints-2", prints_prog 2);
      ("observer", Corpus.observer_prog ());
    ]

let test_jobs_insensitive () =
  let w = load (Corpus.lock_counter_prog ()) in
  let base = fst (Engine.traces ~engine:Engine.Dpor w) in
  List.iter
    (fun jobs ->
      let r = fst (Engine.traces ~engine:Engine.Dpor_par ~jobs w) in
      check tbool
        (Fmt.str "jobs=%d traces = sequential dpor" jobs)
        true
        (Explore.TraceSet.equal base.Explore.traces r.Explore.traces))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Reduction: the acceptance criterion                                 *)
(* ------------------------------------------------------------------ *)

let test_dpor_reduction () =
  let corpus =
    [
      ("lock-counter", Corpus.lock_counter_prog (), true);
      ("lock-counter-3", lock_counter_3_prog (), true);
      ("producer-consumer", producer_consumer_prog (), true);
      ("prints-2", prints_prog 2, false);
      ("prints-3", prints_prog 3, true);
    ]
  in
  let total_naive = ref 0 and total_dpor = ref 0 in
  List.iter
    (fun (name, p, expect_5x) ->
      let w = load p in
      let worlds e =
        (Engine.explore ~engine:e w ~visit:(fun _ -> ())).Cas_mc.Stats.worlds
      in
      let n = worlds Engine.Naive and d = worlds Engine.Dpor in
      total_naive := !total_naive + n;
      total_dpor := !total_dpor + d;
      check tbool (Fmt.str "%s: dpor explores fewer worlds" name) true (d < n);
      (* prints-2 is exempt: its observable prints are mutually
         dependent by construction, so DPOR can only prune ~3x there *)
      if expect_5x then
        check tbool (Fmt.str "%s: >=5x fewer worlds" name) true (5 * d <= n))
    corpus;
  check tbool "corpus aggregate >=5x reduction" true
    (5 * !total_dpor <= !total_naive)

(* Distinct-world counts pinned per engine. The naive values predate the
   interning/hashing overhaul (the fixed-width keys must induce exactly
   the same state partition); the dpor values were re-pinned when the
   engine moved from persistent/sleep sets to source-DPOR with wakeup
   sequences — every value strictly dropped or held (259→161,
   2328→362, 118→94; the rescue coverage filter prunes redundant
   spin-retry subtrees), and dpor-par must reproduce them exactly: the
   visited-world set may not depend on steal interleaving. *)
let test_world_counts_pinned () =
  let corpus =
    [
      ("lock-counter", Corpus.lock_counter_prog (), 1620, 161);
      ("lock-counter-3", lock_counter_3_prog (), 51162, 362);
      ("prints-2", prints_prog 2, 72, 23);
      ("prints-3", prints_prog 3, 648, 94);
    ]
  in
  List.iter
    (fun (name, p, exp_naive, exp_dpor) ->
      let w = load p in
      let worlds e =
        (Engine.explore ~engine:e w ~visit:(fun _ -> ())).Cas_mc.Stats.worlds
      in
      check tint (name ^ ": naive worlds") exp_naive (worlds Engine.Naive);
      check tint (name ^ ": dpor worlds") exp_dpor (worlds Engine.Dpor);
      check tint
        (name ^ ": dpor-par worlds")
        exp_dpor
        (worlds Engine.Dpor_par))
    corpus

(* Source-set-filtered wakeup insertion must never steer exploration
   into a sleep-set wall: on the whole corpus, sleep-set-blocked
   explorations (the old engine's pure waste, [Stats.sleep_prunings])
   must be exactly 0 — for the sequential engine and under stealing at
   every domain count. This is the optimality acceptance gate; the
   bench-regress gate enforces the same invariant on the bench corpus. *)
let test_no_sleep_blocked () =
  let corpus =
    [
      ("lock-counter", Corpus.lock_counter_prog ());
      ("lock-counter-3", lock_counter_3_prog ());
      ("producer-consumer", producer_consumer_prog ());
      ("prints-2", prints_prog 2);
      ("prints-3", prints_prog 3);
      ("racy", Corpus.racy_prog ());
      ("observer", Corpus.observer_prog ());
    ]
  in
  List.iter
    (fun (name, p) ->
      let w = load p in
      let stats engine jobs =
        Engine.explore ~engine ~jobs w ~visit:(fun _ -> ())
      in
      let seq = stats Engine.Dpor 1 in
      check tint
        (name ^ ": no sleep-set-blocked exploration (dpor)")
        0 seq.Cas_mc.Stats.sleep_prunings;
      List.iter
        (fun jobs ->
          let par = stats Engine.Dpor_par jobs in
          check tint
            (Fmt.str "%s: no sleep-set-blocked exploration (jobs=%d)" name
               jobs)
            0 par.Cas_mc.Stats.sleep_prunings;
          check tint
            (Fmt.str "%s: world count steal-invariant (jobs=%d)" name jobs)
            seq.Cas_mc.Stats.worlds par.Cas_mc.Stats.worlds)
        [ 2; 4 ])
    corpus

(* A root with ≤1 enabled thread has nothing to reorder: dpor-par must
   short-circuit to the sequential engine (no pool, engine string
   reports "dpor") instead of spinning up idle domains. *)
let test_par_short_circuit () =
  let w = load (prints_prog 1) in
  let st = Engine.explore ~engine:Engine.Dpor_par ~jobs:4 w ~visit:(fun _ -> ()) in
  check Alcotest.string "1-thread root runs sequential dpor" "dpor"
    st.Cas_mc.Stats.engine;
  let w2 = load (prints_prog 2) in
  let st2 =
    Engine.explore ~engine:Engine.Dpor_par ~jobs:4 w2 ~visit:(fun _ -> ())
  in
  check Alcotest.string "2-thread root keeps the pool" "dpor-par(4)"
    st2.Cas_mc.Stats.engine

(* ------------------------------------------------------------------ *)
(* Random concurrent programs: engines always agree                    *)
(* ------------------------------------------------------------------ *)

(* Two threads of tiny straight-line code over two shared globals, with
   observable prints: small enough for the naive oracle, shaped so both
   racy and race-free (disjoint-variable) schedules are generated. *)

open QCheck.Gen

let gen_expr = oneof [ map (fun c -> Clight.Econst c) (int_range 0 5);
                       map (fun g -> Clight.Eglob g) (oneofl [ "g0"; "g1" ]) ]

let gen_stmt =
  oneof
    [
      map2
        (fun g e -> Clight.Sassign (Clight.Lglob g, e))
        (oneofl [ "g0"; "g1" ])
        gen_expr;
      map (fun e -> Clight.Scall (None, "print", [ e ])) gen_expr;
    ]

let gen_body =
  let* n = int_range 1 3 in
  let* stmts = list_repeat n gen_stmt in
  return
    (List.fold_right (fun s acc -> Clight.Sseq (s, acc)) stmts Clight.Sskip)

let gen_threads : Clight.program QCheck.Gen.t =
  let* b1 = gen_body in
  let* b2 = gen_body in
  let func name body =
    { Clight.fname = name; fparams = []; fvars = []; fbody = body }
  in
  return
    {
      Clight.globals =
        [ Genv.gvar ~init:[ Genv.Iint 0 ] "g0" 1;
          Genv.gvar ~init:[ Genv.Iint 0 ] "g1" 1 ];
      funcs = [ func "t0" b1; func "t1" b2 ];
    }

let print_threads (p : Clight.program) =
  Fmt.str "%a"
    Fmt.(
      list ~sep:cut (fun ppf f ->
          Fmt.pf ppf "%s() { %a }" f.Clight.fname Clight.pp_stmt f.Clight.fbody))
    p.Clight.funcs

let arb_threads = QCheck.make ~print:print_threads gen_threads

let prop_engines_agree =
  QCheck.Test.make ~name:"engines agree on random 2-thread programs"
    ~count:100 arb_threads (fun p ->
      let prog = Lang.prog [ Lang.Mod (Clight.lang, p) ] [ "t0"; "t1" ] in
      match World.load prog ~args:[] with
      | Error _ -> QCheck.assume_fail ()
      | Ok w ->
        let drf e = (Race.drf ~engine:e ~jobs:2 w).Race.drf in
        let traces e = fst (Engine.traces ~engine:e ~jobs:2 w) in
        let n = traces Engine.Naive in
        let d = traces Engine.Dpor in
        let dp = traces Engine.Dpor_par in
        (* DRF verdicts are world-based, immune to the oracle's path
           budget; trace sets are compared as in [test_trace_sets_agree]:
           the bounded oracle under-approximates, so subset always,
           equality when it completed. *)
        drf Engine.Naive = drf Engine.Dpor
        && drf Engine.Naive = drf Engine.Dpor_par
        && d.Explore.complete && dp.Explore.complete
        && Explore.TraceSet.equal (completed d) (completed dp)
        && Explore.TraceSet.subset (completed n) (completed d)
        && (not n.Explore.complete
           || Explore.TraceSet.equal (completed n) (completed d)
              && has_abort n = has_abort d))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mc"
    [
      ( "units",
        [
          Alcotest.test_case "store accounting" `Quick test_store_accounting;
          Alcotest.test_case "store full flag under parallel hammering"
            `Quick test_store_full_parallel;
          Alcotest.test_case "engine names" `Quick test_engine_names;
        ] );
      ( "differential",
        [
          Alcotest.test_case "DRF verdicts agree" `Slow test_drf_verdicts_agree;
          Alcotest.test_case "trace sets agree" `Slow test_trace_sets_agree;
          Alcotest.test_case "double unlock aborts" `Quick
            test_double_unlock_aborts;
          Alcotest.test_case "full sets on selection view" `Quick
            test_full_sets_on_selection_view;
          Alcotest.test_case "jobs-insensitive" `Quick test_jobs_insensitive;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "dpor >=5x on corpus" `Slow test_dpor_reduction;
          Alcotest.test_case "world counts pinned across key change" `Slow
            test_world_counts_pinned;
          Alcotest.test_case "no sleep-set-blocked exploration" `Slow
            test_no_sleep_blocked;
          Alcotest.test_case "dpor-par short-circuits 1-thread roots" `Quick
            test_par_short_circuit;
        ] );
      ( "random",
        [
          (* pinned seed for reproducibility; QCHECK_SEED=n overrides *)
          (let seed =
             match Sys.getenv_opt "QCHECK_SEED" with
             | Some s -> (try int_of_string s with _ -> 0x5ca1ab1e)
             | None -> 0x5ca1ab1e
           in
           QCheck_alcotest.to_alcotest
             ~rand:(Random.State.make [| seed |])
             prop_engines_agree);
        ] );
    ]
