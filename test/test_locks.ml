(** Direct unit tests for the TTAS lock module ([Cas_tso.Locks], Fig. 10):
    the acquire and release footprints as seen by the TSO machine, the
    store-buffer behaviour of the plain-store release, and the
    permission-system confinement that makes the lock's races benign
    (§7.3: the racy accesses all target the [Object]-permission lock
    word, which client code cannot reach). *)

open Cas_base
open Cas_langs
open Cas_tso

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let load_lock entries =
  match Tso.load [ Locks.pi_lock ] entries with
  | Ok w -> w
  | Error e -> Alcotest.failf "load: %a" Cas_conc.World.pp_load_error e

let lock_addr (w : Tso.world) : Addr.t =
  match Genv.find_addr w.Tso.genv "L" with
  | Some a -> a
  | None -> Alcotest.fail "lock word L not linked"

(** Run thread [tid] deterministically (first transition) until a step
    with a non-empty footprint appears; return that footprint and the
    world before/after the step. Fails if the thread gets stuck first. *)
let rec step_to_touch ?(bound = 50) (w : Tso.world) tid :
    Footprint.t * Tso.world * Tso.world =
  if bound = 0 then Alcotest.fail "no memory-touching step found"
  else
    match Tso.local_trans w tid with
    | { Cas_mc.Mcsys.fp; target = Cas_mc.Mcsys.Next w'; _ } :: _ ->
      if Footprint.is_empty fp then step_to_touch ~bound:(bound - 1) w' tid
      else (fp, w, w')
    | _ -> Alcotest.fail "thread stuck or aborted before touching memory"

let tfp = Alcotest.testable Footprint.pp Footprint.equal

(* ------------------------------------------------------------------ *)
(* Footprints                                                          *)
(* ------------------------------------------------------------------ *)

let test_acquire_footprint () =
  (* the first memory-touching step of [lock] on a free lock is the
     [lock cmpxchg]: an atomic read-modify-write of L *)
  let w = load_lock [ "lock" ] in
  let l = lock_addr w in
  let fp, _, w' = step_to_touch w 1 in
  check tfp "cmpxchg reads and writes exactly L"
    (Footprint.union (Footprint.read1 l) (Footprint.write1 l))
    fp;
  (* locked instructions bypass the buffer: nothing left to drain *)
  check tint "no buffered store after acquire" 0 (Tso.buffer_len w' 1)

let test_release_footprint_and_buffer () =
  (* [unlock] is a plain store: write footprint on L, but the value goes
     to the store buffer, not memory *)
  let w = load_lock [ "unlock" ] in
  let l = lock_addr w in
  let fp, before, after = step_to_touch w 1 in
  check tfp "release writes exactly L" (Footprint.write1 l) fp;
  check tint "store is buffered, not committed" 1 (Tso.buffer_len after 1);
  check tbool "buffering is not a drain" false (Tso.is_drain before after 1);
  (* memory still holds the initial value until the drain *)
  (match Memory.load ~perm:Perm.Object after.Tso.mem l with
  | Ok v -> check tbool "L untouched in memory" true (Value.equal v (Value.Vint 1))
  | Error _ -> Alcotest.fail "cannot read L");
  (* drain: the buffered release reaches memory *)
  match Tso.unbuffer after 1 with
  | None -> Alcotest.fail "nothing to drain"
  | Some drained -> (
    check tbool "unbuffer is a drain" true (Tso.is_drain after drained 1);
    check tint "buffer empty after drain" 0 (Tso.buffer_len drained 1);
    match Memory.load ~perm:Perm.Object drained.Tso.mem l with
    | Ok v -> check tbool "release visible" true (Value.equal v (Value.Vint 1))
    | Error _ -> Alcotest.fail "cannot read L after drain")

let test_spin_load_footprint () =
  (* on a *held* lock the cmpxchg fails and the TTAS loop falls into the
     plain-load spin: its footprint is a read of L — one side of the
     benign race against a releasing thread's store *)
  let w = load_lock [ "lock"; "lock" ] in
  let l = lock_addr w in
  let rec acquire w bound =
    if bound = 0 then w
    else
      match Tso.local_trans w 1 with
      | { Cas_mc.Mcsys.target = Cas_mc.Mcsys.Next w'; _ } :: _ ->
        acquire w' (bound - 1)
      | _ -> w
  in
  let w_held = acquire w 50 in
  (* thread 1 is done (lock held, returned); thread 2 now spins *)
  let fp1, _, w_after_cmpxchg = step_to_touch w_held 2 in
  check tfp "loser's cmpxchg still reads+writes L"
    (Footprint.union (Footprint.read1 l) (Footprint.write1 l))
    fp1;
  let fp2, _, _ = step_to_touch w_after_cmpxchg 2 in
  check tfp "spin loop reads L with a plain load" (Footprint.read1 l) fp2

(* ------------------------------------------------------------------ *)
(* Confinement                                                         *)
(* ------------------------------------------------------------------ *)

let client_reader : Asm.program =
  (* a *client* (is_object = false) function that loads the lock word *)
  {
    Asm.funcs =
      [
        {
          Asm.fname = "snoop";
          arity = 0;
          framesize = 0;
          is_object = false;
          code =
            [
              Asm.Plea_global (Mreg.CX, "L");
              Asm.Pload (Mreg.AX, Mreg.CX, 0);
              Asm.Pret false;
            ];
        };
      ];
    globals = [];
  }

let test_confinement_client_load_aborts () =
  match Tso.load [ client_reader; Locks.pi_lock ] [ "snoop" ] with
  | Error e -> Alcotest.failf "load: %a" Cas_conc.World.pp_load_error e
  | Ok w ->
    let rec run w bound =
      if bound = 0 then Alcotest.fail "client never reached the load"
      else
        match Tso.local_trans w 1 with
        | [ { Cas_mc.Mcsys.target = Cas_mc.Mcsys.Abort; _ } ] -> ()
        | { Cas_mc.Mcsys.target = Cas_mc.Mcsys.Next w'; _ } :: _ ->
          run w' (bound - 1)
        | _ -> Alcotest.fail "client stuck without aborting"
    in
    run w 50

let test_object_code_may_touch_lock_word () =
  (* the same load inside object code is exactly the TTAS spin read *)
  let w = load_lock [ "unlock" ] in
  let l = lock_addr w in
  let fp, _, _ = step_to_touch w 1 in
  check tbool "object code reaches L" true
    (Footprint.mem_ws fp l)

(* ------------------------------------------------------------------ *)
(* The fence variant                                                   *)
(* ------------------------------------------------------------------ *)

let test_fenced_release_blocks_until_drained () =
  match Tso.load [ Locks.pi_lock_fenced ] [ "unlock" ] with
  | Error e -> Alcotest.failf "load: %a" Cas_conc.World.pp_load_error e
  | Ok w ->
    let fp, _, buffered = step_to_touch w 1 in
    check tbool "fenced release still stores to L" true
      (not (Footprint.is_empty fp));
    (* advance to the fence: with a non-empty buffer the thread has no
       instruction step — only the drain can proceed *)
    let rec to_fence w bound =
      if bound = 0 then Alcotest.fail "never reached the fence"
      else
        match Tso.local_trans w 1 with
        | [] -> w (* blocked: the mfence refuses a non-empty buffer *)
        | { Cas_mc.Mcsys.target = Cas_mc.Mcsys.Next w'; _ } :: _ ->
          to_fence w' (bound - 1)
        | _ -> Alcotest.fail "unexpected abort before the fence"
    in
    let blocked = to_fence buffered 10 in
    check tint "store still buffered at the fence" 1
      (Tso.buffer_len blocked 1);
    (match Tso.unbuffer blocked 1 with
    | None -> Alcotest.fail "nothing to drain at the fence"
    | Some drained ->
      check tbool "fence passable once drained" true
        (Tso.local_trans drained 1 <> []))

(* ------------------------------------------------------------------ *)
(* The benign race is real: lock-word accesses do conflict              *)
(* ------------------------------------------------------------------ *)

let test_release_conflicts_with_spin () =
  (* the footprints of the plain-store release and the plain-load spin
     conflict — the race §7.3 calls benign exists; what makes it benign
     is confinement (above) plus the object simulation (test_tso) *)
  let w = load_lock [ "unlock" ] in
  let l = lock_addr w in
  check tbool "store/load footprints on L conflict" true
    (Footprint.conflict (Footprint.write1 l) (Footprint.read1 l))

let () =
  Alcotest.run "locks"
    [
      ( "footprints",
        [
          Alcotest.test_case "acquire (cmpxchg)" `Quick test_acquire_footprint;
          Alcotest.test_case "release (buffered store)" `Quick
            test_release_footprint_and_buffer;
          Alcotest.test_case "spin load" `Quick test_spin_load_footprint;
        ] );
      ( "confinement",
        [
          Alcotest.test_case "client load aborts" `Quick
            test_confinement_client_load_aborts;
          Alcotest.test_case "object code allowed" `Quick
            test_object_code_may_touch_lock_word;
          Alcotest.test_case "conflicting accesses exist" `Quick
            test_release_conflicts_with_spin;
        ] );
      ( "fence",
        [
          Alcotest.test_case "fenced release drains first" `Quick
            test_fenced_release_blocks_until_drained;
        ] );
    ]
