(** Tests for the race predictor and DRF/NPDRF (Fig. 9, §5). *)

open Cas_base
open Cas_langs
open Cas_conc

let check = Alcotest.check
let tbool = Alcotest.bool

let load p =
  match World.load p ~args:[] with
  | Error e -> Alcotest.failf "load: %a" World.pp_load_error e
  | Ok w -> w

(* ------------------------------------------------------------------ *)

let test_racy_counter_detected () =
  let r = Race.drf (load (Corpus.racy_prog ())) in
  check tbool "racy counter detected" false r.Race.drf;
  match r.Race.witness with
  | Some (t1, _, t2, _) -> check tbool "distinct threads" true (t1 <> t2)
  | None -> Alcotest.fail "expected witness"

let test_locked_counter_drf () =
  let r = Race.drf (load (Corpus.lock_counter_prog ())) in
  check tbool "locked counter is DRF" true r.Race.drf

let test_write_write_race () =
  let p =
    Lang.prog
      [ Lang.Mod (Clight.lang, Parse.clight {| int x = 0; void f() { x = 1; } |}) ]
      [ "f"; "f" ]
  in
  let r = Race.drf (load p) in
  check tbool "write/write race" false r.Race.drf

let test_read_read_no_race () =
  let p =
    Lang.prog
      [ Lang.Mod (Clight.lang, Parse.clight {| int x = 0; void f() { print(x); } |}) ]
      [ "f"; "f" ]
  in
  let r = Race.drf (load p) in
  check tbool "read/read is no race" true r.Race.drf

let test_disjoint_writes_no_race () =
  let m1 = Parse.clight {| int x = 0; int y = 0; void f() { x = 1; } |} in
  let m2 = Parse.clight {| int x = 0; int y = 0; void g() { y = 1; } |} in
  let p = Lang.prog [ Lang.Mod (Clight.lang, m1); Lang.Mod (Clight.lang, m2) ] [ "f"; "g" ] in
  let r = Race.drf (load p) in
  check tbool "disjoint writes" true r.Race.drf

let test_atomic_blocks_no_race () =
  (* two CImp threads updating the same cell inside atomic blocks *)
  let g =
    Parse.cimp
      {| object int C = 0;
         void bump() { atomic { r := [C]; [C] := r + 1; } } |}
  in
  let p = Lang.prog [ Lang.Mod (Cimp.lang, g) ] [ "bump"; "bump" ] in
  let r = Race.drf (load p) in
  check tbool "atomic updates race-free" true r.Race.drf

let test_atomic_vs_plain_races () =
  (* same cell: one thread atomic, one plain — still a race (d2 = 0) *)
  let g =
    Parse.cimp
      {| object int C = 0;
         void bump() { atomic { r := [C]; [C] := r + 1; } }
         void plain() { r := [C]; [C] := r + 1; } |}
  in
  let p = Lang.prog [ Lang.Mod (Cimp.lang, g) ] [ "bump"; "plain" ] in
  let r = Race.drf (load p) in
  check tbool "atomic vs plain races" false r.Race.drf

let test_predict_atomic_footprint () =
  (* Predict-1 accumulates the whole atomic block's footprint *)
  let g =
    Parse.cimp
      {| object int C = 0;
         void bump() { atomic { r := [C]; [C] := r + 1; } } |}
  in
  let p = Lang.prog [ Lang.Mod (Cimp.lang, g) ] [ "bump" ] in
  let w = load p in
  match Race.predict w 1 with
  | [ (fp, true) ] ->
    check tbool "reads C" true (not (Addr.Set.is_empty (Footprint.rs_set fp)));
    check tbool "writes C" true
      (not (Addr.Set.is_empty (Footprint.ws_set fp)))
  | _ -> Alcotest.fail "expected one atomic prediction"

let test_local_accesses_never_race () =
  (* threads hammer their own stack locals: freelists are disjoint *)
  let p =
    Lang.prog
      [
        Lang.Mod
          ( Clight.lang,
            Parse.clight
              {| void f() { int a; int i; i = 0; while (i < 3) { a = i; g(&a); i = i + 1; } }
                 void g(int p) { *p = *p + 1; } |} );
      ]
      [ "f"; "f" ]
  in
  let r = Race.drf (load p) in
  check tbool "stack-local traffic is race-free" true r.Race.drf

(* ------------------------------------------------------------------ *)
(* DRF ⇔ NPDRF (steps 6 and 8 of Fig. 2)                               *)
(* ------------------------------------------------------------------ *)

let test_drf_iff_npdrf () =
  let programs =
    [
      ("locked", Corpus.lock_counter_prog ());
      ("racy", Corpus.racy_prog ());
      ("observer", Corpus.observer_prog ());
    ]
  in
  List.iter
    (fun (name, p) ->
      let w = load p in
      let d = (Race.drf w).Race.drf in
      let npd = (Race.npdrf w).Race.drf in
      check tbool (Fmt.str "%s: DRF iff NPDRF" name) d npd)
    programs

(* ------------------------------------------------------------------ *)
(* DRF preservation by compilation (step 7)                            *)
(* ------------------------------------------------------------------ *)

let test_drf_preserved_by_compilation () =
  List.iter
    (fun input ->
      let src = Cascompcert.Framework.source_prog input in
      let tgt = Cascompcert.Framework.target_prog input in
      let d_src = (Race.drf (load src)).Race.drf in
      let d_tgt = (Race.drf (load tgt)).Race.drf in
      if d_src then
        check tbool
          (Fmt.str "%s: target stays DRF" input.Cascompcert.Framework.name)
          true d_tgt)
    (List.filter
       (fun i ->
         i.Cascompcert.Framework.name <> "producer-consumer"
         (* excluded here only for test runtime; covered in the bench *))
       (Corpus.framework_inputs ()))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "race"
    [
      ( "predictor",
        [
          Alcotest.test_case "racy counter" `Quick test_racy_counter_detected;
          Alcotest.test_case "locked counter DRF" `Quick test_locked_counter_drf;
          Alcotest.test_case "write/write" `Quick test_write_write_race;
          Alcotest.test_case "read/read" `Quick test_read_read_no_race;
          Alcotest.test_case "disjoint writes" `Quick test_disjoint_writes_no_race;
          Alcotest.test_case "atomic blocks" `Quick test_atomic_blocks_no_race;
          Alcotest.test_case "atomic vs plain" `Quick test_atomic_vs_plain_races;
          Alcotest.test_case "predict-1 footprint" `Quick
            test_predict_atomic_footprint;
          Alcotest.test_case "locals never race" `Quick
            test_local_accesses_never_race;
        ] );
      ( "equivalences",
        [
          Alcotest.test_case "DRF iff NPDRF" `Slow test_drf_iff_npdrf;
          Alcotest.test_case "compilation preserves DRF" `Slow
            test_drf_preserved_by_compilation;
        ] );
    ]
