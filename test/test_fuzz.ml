(** Tests for [Cas_fuzz] (ISSUE 9): generator determinism and
    well-formedness, witness back-translation round-trips (unit and
    qcheck-shaped over synthetic schedules), the injected-miscompile
    pipeline (inject → compiler oracle → shrink → back-translate →
    replay), the checked-in repro corpus, and campaign determinism. *)

open Cas_base
module Gen = Cas_fuzz.Gen
module Backtrans = Cas_fuzz.Backtrans
module Driver = Cas_fuzz.Driver
module Witness = Cas_diag.Witness

(* ------------------------------------------------------------------ *)
(* Generator: determinism + well-formedness                            *)
(* ------------------------------------------------------------------ *)

let seeds = [ 1; 2; 7; 42; 1337; 20260807 ]

(* (seed, size) fully determines the program: regenerating from a fresh
   [Rng.make] of the same seed is byte-identical *)
let test_gen_deterministic () =
  List.iter
    (fun lang ->
      List.iter
        (fun seed ->
          let gen () = Gen.program ~lang (Rng.make ~seed) ~size:8 in
          let g1 = gen () and g2 = gen () in
          Alcotest.(check string)
            (Fmt.str "%s seed %d source" (Gen.lang_to_string lang) seed)
            g1.Gen.g_source g2.Gen.g_source;
          Alcotest.(check (list string))
            (Fmt.str "%s seed %d entries" (Gen.lang_to_string lang) seed)
            g1.Gen.g_entries g2.Gen.g_entries;
          Alcotest.(check bool)
            (Fmt.str "%s seed %d with_lock" (Gen.lang_to_string lang) seed)
            g1.Gen.g_with_lock g2.Gen.g_with_lock)
        seeds)
    [ Gen.Clight; Gen.Cimp ]

(* different seeds actually explore the space (no stream aliasing) *)
let test_gen_distinct () =
  List.iter
    (fun lang ->
      let sources =
        List.map
          (fun seed ->
            (Gen.program ~lang (Rng.make ~seed) ~size:8).Gen.g_source)
          seeds
      in
      Alcotest.(check int)
        (Fmt.str "%s distinct sources" (Gen.lang_to_string lang))
        (List.length seeds)
        (List.length (List.sort_uniq compare sources)))
    [ Gen.Clight; Gen.Cimp ]

(* every generated program parses and loads: well-formedness by
   construction *)
let test_gen_wellformed () =
  for seed = 1 to 40 do
    let gc = Gen.program ~lang:Gen.Clight (Rng.make ~seed) ~size:8 in
    let client = Cas_langs.Parse.clight gc.Gen.g_source in
    let mods =
      if gc.Gen.g_with_lock then
        [
          Lang.Mod (Cas_langs.Clight.lang, client);
          Lang.Mod (Cas_langs.Cimp.lang, Cas_langs.Cimp.gamma_lock ());
        ]
      else [ Lang.Mod (Cas_langs.Clight.lang, client) ]
    in
    (match
       Cas_conc.World.load (Lang.prog mods gc.Gen.g_entries) ~args:[]
     with
    | Ok _ -> ()
    | Error e ->
      Alcotest.failf "clight seed %d: load: %a" seed
        Cas_conc.World.pp_load_error e);
    let gi = Gen.program ~lang:Gen.Cimp (Rng.make ~seed) ~size:8 in
    let obj = Cas_langs.Parse.cimp gi.Gen.g_source in
    match
      Cas_conc.World.load
        (Lang.prog [ Lang.Mod (Cas_langs.Cimp.lang, obj) ] gi.Gen.g_entries)
        ~args:[]
    with
    | Ok _ -> ()
    | Error e ->
      Alcotest.failf "cimp seed %d: load: %a" seed
        Cas_conc.World.pp_load_error e
  done

(* ------------------------------------------------------------------ *)
(* Back-translation: unit round-trips                                  *)
(* ------------------------------------------------------------------ *)

let mk_step ?event tid =
  {
    Witness.s_tid = tid;
    s_event = event;
    s_reads = [];
    s_writes = [];
    s_flush = false;
    s_dst = "";
  }

let mk_witness ?(semantics = Witness.Sc) ~n ~verdict steps =
  Witness.make ~program:"(synthetic)"
    ~entries:(List.init n (fun i -> Fmt.str "t%d" (i + 1)))
    ~with_lock:false ~semantics ~engine:"naive" ~seed:0 ~verdict steps

let roundtrip ?budget name wit =
  match Backtrans.of_witness wit with
  | Error e -> Alcotest.failf "%s: back-translation: %s" name e
  | Ok repro -> (
    (* the emitted source parses back to the same entries + verdict *)
    (match Backtrans.of_string repro.Backtrans.r_source with
    | Error e -> Alcotest.failf "%s: of_string: %s" name e
    | Ok r' ->
      Alcotest.(check (list string))
        (name ^ " entries survive the file round-trip")
        repro.Backtrans.r_entries r'.Backtrans.r_entries;
      Alcotest.(check bool)
        (name ^ " verdict survives the file round-trip")
        true
        (repro.Backtrans.r_verdict = r'.Backtrans.r_verdict));
    match Backtrans.replay ?budget repro with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: replay: %s" name e)

let test_roundtrip_refine () =
  let steps =
    [
      mk_step 1 ~event:(Event.Print 3);
      mk_step 2 ~event:(Event.Print (-1));
      mk_step 1 ~event:(Event.Print 7);
    ]
  in
  roundtrip "refine"
    (mk_witness ~n:2
       ~verdict:
         (Witness.Vrefine [ Event.Print 3; Event.Print (-1); Event.Print 7 ])
       steps)

let test_roundtrip_abort () =
  (* the abort is attributed to the tid of the last schedule step *)
  let steps = [ mk_step 1 ~event:(Event.Print 5); mk_step 2 ] in
  roundtrip "abort" (mk_witness ~n:2 ~verdict:Witness.Vabort steps)

let test_roundtrip_race () =
  let steps = [ mk_step 2 ~event:(Event.Print 9) ] in
  roundtrip "race" (mk_witness ~n:2 ~verdict:(Witness.Vrace (1, 2)) steps)

let test_backtrans_rejects () =
  (* TSO witnesses and Out events have no CImp image *)
  (match
     Backtrans.of_witness
       (mk_witness ~semantics:Witness.Tso ~n:1 ~verdict:Witness.Vabort [])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "TSO witness must be rejected");
  (match
     Backtrans.of_witness
       (mk_witness ~n:1
          ~verdict:(Witness.Vrefine [ Event.Out "x" ])
          [ mk_step 1 ~event:(Event.Out "x") ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Out event must be rejected");
  match
    Backtrans.of_witness
      (mk_witness ~n:2 ~verdict:(Witness.Vrace (1, 1)) [ mk_step 1 ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "degenerate race pair must be rejected"

(* ------------------------------------------------------------------ *)
(* Back-translation: qcheck over synthetic schedules                   *)
(* ------------------------------------------------------------------ *)

(* a random schedule: up to 2 threads, up to 4 prints, one of the three
   verdict shapes — the back-translated program must replay to exactly
   the recorded verdict under a fresh exploration *)
let arb_schedule =
  let open QCheck.Gen in
  let gen =
    int_range 1 2 >>= fun n ->
    list_size (int_bound 4)
      (pair (int_range 1 n) (int_range (-9) 20))
    >>= fun prints ->
    (if n = 2 then oneofl [ `Refine; `Abort; `Race ]
     else oneofl [ `Refine; `Abort ])
    >>= fun kind -> return (n, prints, kind)
  in
  let print_schedule (n, prints, kind) =
    Fmt.str "n=%d prints=[%s] kind=%s" n
      (String.concat ";"
         (List.map (fun (t, v) -> Fmt.str "t%d!%d" t v) prints))
      (match kind with
      | `Refine -> "refine"
      | `Abort -> "abort"
      | `Race -> "race")
  in
  QCheck.make ~print:print_schedule gen

let witness_of_schedule (n, prints, kind) =
  let steps = List.map (fun (t, v) -> mk_step t ~event:(Event.Print v)) prints in
  match kind with
  | `Refine ->
    mk_witness ~n
      ~verdict:(Witness.Vrefine (List.map (fun (_, v) -> Event.Print v) prints))
      steps
  | `Abort ->
    (* pin the aborting thread by appending an event-free step *)
    mk_witness ~n ~verdict:Witness.Vabort (steps @ [ mk_step n ])
  | `Race -> mk_witness ~n ~verdict:(Witness.Vrace (1, 2)) steps

let prop_backtrans_roundtrip =
  QCheck.Test.make
    ~name:"back-translated witness replays to the recorded verdict" ~count:40
    arb_schedule (fun sched ->
      match Backtrans.of_witness (witness_of_schedule sched) with
      | Error e -> QCheck.Test.fail_reportf "back-translation: %s" e
      | Ok repro -> (
        match Backtrans.replay repro with
        | Ok () -> true
        | Error e -> QCheck.Test.fail_reportf "replay: %s" e))

(* ------------------------------------------------------------------ *)
(* Engine agreement: qcheck over generated programs                    *)
(* ------------------------------------------------------------------ *)

let world_of_gen (g : Gen.t) =
  match g.Gen.g_lang with
  | Gen.Clight ->
    let client = Cas_langs.Parse.clight g.Gen.g_source in
    let mods =
      if g.Gen.g_with_lock then
        [
          Lang.Mod (Cas_langs.Clight.lang, client);
          Lang.Mod (Cas_langs.Cimp.lang, Cas_langs.Cimp.gamma_lock ());
        ]
      else [ Lang.Mod (Cas_langs.Clight.lang, client) ]
    in
    Cas_conc.World.load (Lang.prog mods g.Gen.g_entries) ~args:[]
  | Gen.Cimp ->
    let obj = Cas_langs.Parse.cimp g.Gen.g_source in
    Cas_conc.World.load
      (Lang.prog [ Lang.Mod (Cas_langs.Cimp.lang, obj) ] g.Gen.g_entries)
      ~args:[]

let arb_engine_prog =
  let open QCheck.Gen in
  let gen = pair (oneofl [ Gen.Clight; Gen.Cimp ]) (int_range 1 1000) in
  QCheck.make
    ~print:(fun (lang, seed) ->
      Fmt.str "%s seed %d" (Gen.lang_to_string lang) seed)
    gen

(* the full engine lattice on random programs: naive and dpor agree on
   the verdict with dpor visiting no more worlds, and dpor-par at 2 and
   4 domains reproduces dpor's verdict, world count, and captured
   witness (the minimal-key reduction makes the witness itself
   steal-invariant, not just the verdict) *)
let prop_engines_agree_par =
  let module Race = Cas_conc.Race in
  let budget = 8_000 in
  QCheck.Test.make
    ~name:"naive/dpor/dpor-par(2,4) agree on generated programs" ~count:25
    arb_engine_prog (fun (lang, seed) ->
      let g = Gen.program ~lang (Rng.make ~seed) ~size:6 in
      match world_of_gen g with
      | Error e ->
        QCheck.Test.fail_reportf "load: %a" Cas_conc.World.pp_load_error e
      | Ok w ->
        let naive =
          Race.drf ~engine:Cas_conc.Engine.Naive ~max_worlds:budget w
        in
        let dpor =
          Race.drf ~engine:Cas_conc.Engine.Dpor ~max_worlds:budget w
        in
        let truncated (r : Race.drf_report) =
          r.Race.stats.Cas_conc.Explore.truncated
        in
        QCheck.assume (not (truncated naive || truncated dpor));
        if naive.Race.drf <> dpor.Race.drf then
          QCheck.Test.fail_reportf "dpor verdict %b, naive %b" dpor.Race.drf
            naive.Race.drf;
        if
          dpor.Race.stats.Cas_conc.Explore.visited
          > naive.Race.stats.Cas_conc.Explore.visited
        then
          QCheck.Test.fail_reportf "dpor visited %d worlds, naive only %d"
            dpor.Race.stats.Cas_conc.Explore.visited
            naive.Race.stats.Cas_conc.Explore.visited;
        let key (r : Race.drf_report) =
          match (r.Race.witness_world, r.Race.witness) with
          | Some ww, Some wt -> Some (Race.witness_key ww wt)
          | _ -> None
        in
        List.for_all
          (fun jobs ->
            let par =
              Race.drf ~engine:Cas_conc.Engine.Dpor_par ~jobs
                ~max_worlds:budget w
            in
            if par.Race.drf <> dpor.Race.drf then
              QCheck.Test.fail_reportf "dpor-par(%d) verdict %b, dpor %b" jobs
                par.Race.drf dpor.Race.drf;
            if
              par.Race.stats.Cas_conc.Explore.visited
              <> dpor.Race.stats.Cas_conc.Explore.visited
            then
              QCheck.Test.fail_reportf
                "dpor-par(%d) visited %d worlds, dpor %d (steal-variant \
                 world set)"
                jobs par.Race.stats.Cas_conc.Explore.visited
                dpor.Race.stats.Cas_conc.Explore.visited;
            if key par <> key dpor then
              QCheck.Test.fail_reportf
                "dpor-par(%d) captured a different witness" jobs;
            true)
          [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Injected miscompile end to end                                      *)
(* ------------------------------------------------------------------ *)

let inject_src =
  {|
  int g = 0;
  void main() {
    int r;
    r = 3;
    g = r + 4;
    print(g);
  }
|}

(* the deliberately broken pass must be caught by the compiler oracle,
   and the divergence must shrink + back-translate to a standalone repro
   that replays to the same verdict *)
let test_injected_divergence () =
  let client = Cas_langs.Parse.clight inject_src in
  let g =
    {
      Gen.g_lang = Gen.Clight;
      g_source = inject_src;
      g_entries = [ "main" ];
      g_with_lock = false;
    }
  in
  let load m =
    match
      Cas_conc.World.load (Lang.prog [ m ] [ "main" ]) ~args:[]
    with
    | Ok w -> w
    | Error e -> Alcotest.failf "load: %a" Cas_conc.World.pp_load_error e
  in
  let src_w0 = load (Lang.Mod (Cas_langs.Clight.lang, client)) in
  let tgt_w0 =
    load
      (Lang.Mod
         ( Cas_langs.Asm.lang,
           Cas_compiler.Driver.compile (Driver.inject_print client) ))
  in
  let o = Driver.compiler_oracle ~budget:20_000 ~g ~src_w0 ~tgt_w0 in
  Alcotest.(check string)
    "bucket" "verdict-divergence"
    (Driver.bucket_name o.Driver.o_bucket);
  match o.Driver.o_witness with
  | None -> Alcotest.fail "divergence carries no witness"
  | Some (wit, s0) -> (
    let sh = Cas_diag.Shrink.shrink ~max_attempts:500 s0 wit in
    match Backtrans.of_witness sh.Cas_diag.Shrink.sh_witness with
    | Error e -> Alcotest.failf "back-translation: %s" e
    | Ok repro -> (
      Alcotest.(check bool)
        "repro records the witness verdict" true
        (repro.Backtrans.r_verdict = wit.Witness.verdict);
      match Backtrans.replay repro with
      | Ok () -> ()
      | Error e -> Alcotest.failf "repro replay: %s" e))

(* the unperturbed program must pass the same oracle *)
let test_uninjected_agrees () =
  let client = Cas_langs.Parse.clight inject_src in
  let g =
    {
      Gen.g_lang = Gen.Clight;
      g_source = inject_src;
      g_entries = [ "main" ];
      g_with_lock = false;
    }
  in
  let load m =
    match
      Cas_conc.World.load (Lang.prog [ m ] [ "main" ]) ~args:[]
    with
    | Ok w -> w
    | Error e -> Alcotest.failf "load: %a" Cas_conc.World.pp_load_error e
  in
  let src_w0 = load (Lang.Mod (Cas_langs.Clight.lang, client)) in
  let tgt_w0 =
    load
      (Lang.Mod (Cas_langs.Asm.lang, Cas_compiler.Driver.compile client))
  in
  let o = Driver.compiler_oracle ~budget:20_000 ~g ~src_w0 ~tgt_w0 in
  Alcotest.(check string)
    "bucket" "agree"
    (Driver.bucket_name o.Driver.o_bucket)

(* ------------------------------------------------------------------ *)
(* Checked-in repro corpus                                             *)
(* ------------------------------------------------------------------ *)

(* [dune runtest] runs in the test directory, [dune exec] from the
   project root — accept either *)
let corpus_dir =
  let local = Filename.concat "corpus" "fuzz" in
  if Sys.file_exists local then local else Filename.concat "test" local

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cimp")
  |> List.sort compare

(* every checked-in minimized repro still replays to its recorded
   verdict — the regression gate for past divergences *)
let test_corpus_replays () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let path = Filename.concat corpus_dir f in
      let ic = open_in_bin path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Backtrans.of_string src with
      | Error e -> Alcotest.failf "%s: %s" f e
      | Ok repro -> (
        match Backtrans.replay repro with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: replay: %s" f e))
    files

(* ------------------------------------------------------------------ *)
(* Campaign determinism                                                *)
(* ------------------------------------------------------------------ *)

(* the whole triage report is a pure function of the campaign
   parameters: two runs emit byte-identical JSON *)
let test_campaign_deterministic () =
  let run () =
    Cas_diag.Json.to_string
      (Driver.report_to_json
         (Driver.run ~size:6 ~budget:5_000 ~seed:11 ~count:4 Gen.Clight))
  in
  Alcotest.(check string) "identical reports" (run ()) (run ())

(* ------------------------------------------------------------------ *)

let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (try int_of_string s with _ -> 0x5ca1ab1e)
  | None -> 0x5ca1ab1e

let () =
  let rand = Random.State.make [| qcheck_seed |] in
  Alcotest.run "fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "same seed, same program" `Quick
            test_gen_deterministic;
          Alcotest.test_case "distinct seeds, distinct programs" `Quick
            test_gen_distinct;
          Alcotest.test_case "generated programs parse and load" `Quick
            test_gen_wellformed;
        ] );
      ( "backtrans",
        [
          Alcotest.test_case "refine round-trip" `Quick test_roundtrip_refine;
          Alcotest.test_case "abort round-trip" `Quick test_roundtrip_abort;
          Alcotest.test_case "race round-trip" `Quick test_roundtrip_race;
          Alcotest.test_case "rejects TSO / Out / degenerate race" `Quick
            test_backtrans_rejects;
          QCheck_alcotest.to_alcotest ~rand prop_backtrans_roundtrip;
        ] );
      ( "engines",
        [ QCheck_alcotest.to_alcotest ~rand prop_engines_agree_par ] );
      ( "inject",
        [
          Alcotest.test_case "injected miscompile shrinks to a repro" `Slow
            test_injected_divergence;
          Alcotest.test_case "unperturbed compile agrees" `Slow
            test_uninjected_agrees;
        ] );
      ( "corpus",
        [ Alcotest.test_case "checked-in repros replay" `Slow
            test_corpus_replays ] );
      ( "campaign",
        [
          Alcotest.test_case "report is deterministic" `Slow
            test_campaign_deterministic;
        ] );
    ]
