(** Pass-manager and certificate-cache tests: registry consistency,
    hit/miss behaviour of the content-addressed cache (including the
    memoized simulation verdicts), per-module invalidation, determinism
    across [--jobs], and the disk tier. *)

open Cas_langs
open Cas_compiler

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* hit/miss counts of one compiled unit, from its per-pass stats *)
let cache_counts (c : Driver.compiled) =
  List.fold_left
    (fun (h, m) st ->
      match st.Driver.st_cache with
      | `Hit -> (h + 1, m)
      | `Miss -> (h, m + 1)
      | `Off -> (h, m))
    (0, 0) c.Driver.c_stats

let fresh_cache () =
  Cache.set_default_dir None;
  Cache.clear_memory ();
  Cache.reset_stats ()

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_consistent () =
  check tint "pipeline length" 16 (Pipeline.length ());
  check tbool "driver exposes the registered pipeline" true
    (Driver.pass_names = Pipeline.names ());
  let names = Pipeline.names () in
  check tint "pass names are unique (cache keys collide otherwise)"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  check tbool "trace = source stage + one per pass" true
    (let c = Driver.compile_unit ~cache:false (Corpus.fib ()) in
     List.length c.Driver.c_trace = Pipeline.length () + 1)

let test_pipeline_version_stable () =
  (* the version hash depends only on the registered pass structure *)
  check tstr "version is deterministic" Pipeline.version Pipeline.version;
  check tint "version is an MD5 hex" 32 (String.length Pipeline.version)

(* ------------------------------------------------------------------ *)
(* Hit/miss behaviour                                                  *)
(* ------------------------------------------------------------------ *)

let test_second_compile_hits () =
  fresh_cache ();
  let p = Corpus.fib () in
  let c1 = Driver.compile_unit p in
  let c2 = Driver.compile_unit p in
  let h1, m1 = cache_counts c1 and h2, m2 = cache_counts c2 in
  check tint "cold run misses every pass" (Pipeline.length ()) m1;
  check tint "cold run has no hits" 0 h1;
  check tint "warm run hits every pass" (Pipeline.length ()) h2;
  check tint "warm run has no misses" 0 m2;
  (* byte-identical output *)
  check tstr "identical asm digest" c1.Driver.c_asm_digest
    c2.Driver.c_asm_digest;
  check tbool "identical asm program" true (c1.Driver.c_asm = c2.Driver.c_asm);
  check tstr "identical context hash" c1.Driver.c_context c2.Driver.c_context

let test_cache_off_is_off () =
  fresh_cache ();
  let p = Corpus.fib () in
  let c = Driver.compile_unit ~cache:false p in
  check tbool "no cache interaction when disabled" true
    (List.for_all (fun st -> st.Driver.st_cache = `Off) c.Driver.c_stats);
  let c' = Driver.compile_unit ~cache:false p in
  check tstr "still deterministic" c.Driver.c_asm_digest c'.Driver.c_asm_digest

let test_options_are_part_of_key () =
  fresh_cache ();
  let p = Corpus.const_cse () in
  let c_opt = Driver.compile_unit p in
  let c_noopt =
    Driver.compile_unit ~options:{ Driver.optimize = false } p
  in
  check tbool "different options, different context" true
    (c_opt.Driver.c_context <> c_noopt.Driver.c_context);
  let _, m = cache_counts c_noopt in
  check tint "no-opt run cannot reuse optimized artifacts"
    (Pipeline.length ()) m

(* ------------------------------------------------------------------ *)
(* Verdict memoization                                                 *)
(* ------------------------------------------------------------------ *)

let test_verdicts_memoized () =
  fresh_cache ();
  let p = Corpus.fib () in
  let r1 = Cascompcert.Framework.check_passes p in
  let r2 = Cascompcert.Framework.check_passes p in
  check tbool "first certification executes the checker" true
    (List.exists
       (fun r -> r.Cascompcert.Framework.checker_steps > 0)
       r1);
  check tbool "second certification is fully cached" true
    (List.for_all (fun r -> r.Cascompcert.Framework.cached) r2);
  check tint "second certification executes zero checker steps" 0
    (List.fold_left
       (fun acc r -> acc + r.Cascompcert.Framework.checker_steps)
       0 r2);
  (* verdicts are identical *)
  check tbool "same outcomes" true
    (List.for_all2
       (fun a b ->
         a.Cascompcert.Framework.outcome = b.Cascompcert.Framework.outcome)
       r1 r2)

(* ------------------------------------------------------------------ *)
(* Per-module invalidation                                             *)
(* ------------------------------------------------------------------ *)

let test_touch_one_module () =
  fresh_cache ();
  let m_f =
    Parse.clight {| void f() { int b; b = 0; g(&b); print(b); } |}
  in
  let m_g = Parse.clight {| void g(int p) { *p = 3; } |} in
  let m_g' = Parse.clight {| void g(int p) { *p = 4; } |} in
  (* cold build of the two-module program *)
  (match Driver.compile_all [ m_f; m_g ] with
  | [ cf; cg ] ->
    check tint "f cold misses" (Pipeline.length ()) (snd (cache_counts cf));
    check tint "g cold misses" (Pipeline.length ()) (snd (cache_counts cg))
  | _ -> Alcotest.fail "expected two units");
  (* touch g only: f must be pure hits, g' pure misses *)
  match Driver.compile_all [ m_f; m_g' ] with
  | [ cf; cg' ] ->
    let hf, mf = cache_counts cf and hg, mg = cache_counts cg' in
    check tint "unchanged f is all hits" (Pipeline.length ()) hf;
    check tint "unchanged f recompiles nothing" 0 mf;
    check tint "edited g reuses nothing" 0 hg;
    check tint "edited g recompiles every pass" (Pipeline.length ()) mg
  | _ -> Alcotest.fail "expected two units"

(* ------------------------------------------------------------------ *)
(* Parallel determinism                                                *)
(* ------------------------------------------------------------------ *)

let test_jobs_deterministic () =
  fresh_cache ();
  let units = List.map (fun (_, p, _) -> p) (Corpus.sequential_clients ()) in
  let digests jobs =
    List.map
      (fun c -> c.Driver.c_asm_digest)
      (Driver.compile_all ~cache:false ~jobs units)
  in
  check tbool "jobs=2 produces identical outputs to jobs=1" true
    (digests 1 = digests 2);
  (* and a warm parallel build is all hits *)
  ignore (Driver.compile_all ~jobs:1 units);
  let warm = Driver.compile_all ~jobs:2 units in
  check tbool "parallel warm build is all hits" true
    (List.for_all
       (fun c -> snd (cache_counts c) = 0 && fst (cache_counts c) > 0)
       warm)

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)
(* ------------------------------------------------------------------ *)

let test_disk_tier_survives_memory_clear () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "casc-test-cache-%d" (Unix.getpid ()))
  in
  Cache.clear_memory ();
  Cache.reset_stats ();
  Cache.set_default_dir (Some dir);
  let p = Corpus.fib () in
  let c1 = Driver.compile_unit p in
  check tint "cold run misses" (Pipeline.length ()) (snd (cache_counts c1));
  (* wipe the memory tier: a second process would start like this *)
  Cache.clear_memory ();
  let c2 = Driver.compile_unit p in
  Cache.set_default_dir None;
  check tint "disk tier serves every pass" (Pipeline.length ())
    (fst (cache_counts c2));
  check tstr "identical output from disk" c1.Driver.c_asm_digest
    c2.Driver.c_asm_digest

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "driver"
    [
      ( "registry",
        [
          Alcotest.test_case "pipeline consistent" `Quick
            test_registry_consistent;
          Alcotest.test_case "version stable" `Quick
            test_pipeline_version_stable;
        ] );
      ( "certificate cache",
        [
          Alcotest.test_case "second compile hits" `Quick
            test_second_compile_hits;
          Alcotest.test_case "cache off" `Quick test_cache_off_is_off;
          Alcotest.test_case "options in key" `Quick
            test_options_are_part_of_key;
          Alcotest.test_case "verdicts memoized" `Quick test_verdicts_memoized;
          Alcotest.test_case "touch one module" `Quick test_touch_one_module;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "jobs deterministic" `Quick
            test_jobs_deterministic;
        ] );
      ( "disk tier",
        [
          Alcotest.test_case "survives memory clear" `Quick
            test_disk_tier_survives_memory_clear;
        ] );
    ]
