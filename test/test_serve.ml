(** Tests for the certification service ([Cas_serve]): frame codec
    round-trips and adversarial inputs, protocol encode/decode, the
    persistent worker pool's drain semantics under a multi-domain
    hammer, in-flight dedup (N identical requests → one execution, N
    responses), admission control, graceful drain, metrics consistency,
    cross-process disk-cache safety, and an in-process end-to-end
    daemon whose verdict texts must be byte-identical to the one-shot
    CLI rendering. *)

open Cas_serve

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let socket_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Fmt.str "%s/cascd-test-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !n

(* ------------------------------------------------------------------ *)
(* Cross-process disk-cache safety                                     *)
(* ------------------------------------------------------------------ *)

(* Two forked processes hammer the same disk cache directory with the
   same and different modules; a torn or corrupted entry would fail a
   later [check_passes] or poison the parent's warm run. Must run
   before anything spawns domains (fork + domains don't mix). *)
let test_cross_process_cache () =
  let dir =
    Fmt.str "%s/cascd-cache-%d" (Filename.get_temp_dir_name ()) (Unix.getpid ())
  in
  let worker (srcs : string list) : unit =
    Cas_compiler.Cache.set_default_dir (Some dir);
    try
      for _ = 1 to 3 do
        List.iter
          (fun src ->
            let reports =
              Cascompcert.Framework.check_passes (Cas_langs.Parse.clight src)
            in
            if
              not
                (List.for_all
                   (fun r ->
                     Cascompcert.Framework.sim_ok
                       r.Cascompcert.Framework.outcome)
                   reports)
            then Unix._exit 3)
          srcs
      done;
      Unix._exit 0
    with _ -> Unix._exit 4
  in
  let spawn srcs =
    match Unix.fork () with
    | 0 ->
      worker srcs;
      Unix._exit 0
    | pid -> pid
  in
  let pid1 = spawn [ Corpus.counter_src; Corpus.fib_src ] in
  let pid2 = spawn [ Corpus.fib_src; Corpus.counter_src ] in
  let wait pid =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED n -> n
    | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> 128 + n
  in
  check tint "first process clean" 0 (wait pid1);
  check tint "second process clean" 0 (wait pid2);
  (* the survivor's entries must serve a warm, correct third run *)
  Cas_compiler.Cache.set_default_dir (Some dir);
  let reports =
    Cascompcert.Framework.check_passes (Cas_langs.Parse.clight Corpus.fib_src)
  in
  check tbool "warm reread verdicts ok" true
    (List.for_all
       (fun r -> Cascompcert.Framework.sim_ok r.Cascompcert.Framework.outcome)
       reports);
  Cas_compiler.Cache.set_default_dir None

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let r = try Ok (f a b) with e -> Error e in
  (try Unix.close a with Unix.Unix_error _ -> ());
  (try Unix.close b with Unix.Unix_error _ -> ());
  match r with Ok v -> v | Error e -> raise e

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let docs =
        [
          Cas_diag.Json.Null;
          Cas_diag.Json.Int (-7);
          Cas_diag.Json.Str "line\nbreak\ttab\001ctl";
          Cas_diag.Json.Obj
            [
              ("k", Cas_diag.Json.List [ Cas_diag.Json.Bool true ]);
              ("empty", Cas_diag.Json.Obj []);
            ];
        ]
      in
      List.iter
        (fun d ->
          check tbool "write ok" true (Frame.write a d = Ok ());
          check tbool "read back equal" true (Frame.read b = Ok d))
        docs)

let test_frame_oversized () =
  with_socketpair (fun a b ->
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 (Int32.of_int (Frame.max_payload + 1));
      check tbool "header sent" true (Unix.write a header 0 4 = 4);
      match Frame.read b with
      | Error (Frame.Oversized { size; limit }) ->
        check tint "reported size" (Frame.max_payload + 1) size;
        check tint "reported limit" Frame.max_payload limit
      | _ -> Alcotest.fail "expected Oversized")

let test_frame_bad_length () =
  with_socketpair (fun a b ->
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 (-5l);
      ignore (Unix.write a header 0 4);
      match Frame.read b with
      | Error (Frame.Bad_length n) -> check tint "negative length" (-5) n
      | _ -> Alcotest.fail "expected Bad_length")

let test_frame_malformed () =
  with_socketpair (fun a b ->
      let payload = Bytes.of_string "{\"unterminated\": " in
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 (Int32.of_int (Bytes.length payload));
      ignore (Unix.write a header 0 4);
      ignore (Unix.write a payload 0 (Bytes.length payload));
      (match Frame.read b with
      | Error (Frame.Malformed _) -> ()
      | _ -> Alcotest.fail "expected Malformed");
      (* the stream stays in sync: a good frame after the bad one *)
      check tbool "next frame fine" true
        (Frame.write a (Cas_diag.Json.Int 1) = Ok ()
        && Frame.read b = Ok (Cas_diag.Json.Int 1)))

let test_frame_closed_and_stopped () =
  with_socketpair (fun a b ->
      Unix.close a;
      check tbool "eof is Closed" true (Frame.read b = Error Frame.Closed));
  with_socketpair (fun _a b ->
      check tbool "stop flag wins while idle" true
        (Frame.read ~should_stop:(fun () -> true) b = Error Frame.Stopped))

(* random documents survive the framed round trip *)
let gen_json =
  let open QCheck.Gen in
  sized_size (int_bound 3) (fun n ->
      fix
        (fun self n ->
          if n = 0 then
            oneof
              [
                return Cas_diag.Json.Null;
                map (fun b -> Cas_diag.Json.Bool b) bool;
                map (fun i -> Cas_diag.Json.Int i) small_signed_int;
                map (fun s -> Cas_diag.Json.Str s) string_printable;
              ]
          else
            oneof
              [
                map
                  (fun l -> Cas_diag.Json.List l)
                  (list_size (int_bound 3) (self (n - 1)));
                map
                  (fun kvs -> Cas_diag.Json.Obj kvs)
                  (list_size (int_bound 3)
                     (pair string_printable (self (n - 1))));
              ])
        n)

let prop_frame_roundtrip =
  QCheck.Test.make ~count:100 ~name:"framed json round trip"
    (QCheck.make gen_json ~print:Cas_diag.Json.to_string)
    (fun d ->
      with_socketpair (fun a b ->
          Frame.write a d = Ok () && Frame.read b = Ok d))

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let roundtrip_request k =
  let r = { Protocol.id = 42; kind = k } in
  match Protocol.decode_request (Protocol.encode_request r) with
  | Ok r' -> r' = r
  | Error _ -> false

let test_protocol_roundtrip () =
  List.iter
    (fun k -> check tbool (Protocol.kind_name k) true (roundtrip_request k))
    [
      Protocol.Ping;
      Protocol.Compile { source = "int x = 0;" };
      Protocol.Certify { source = Corpus.counter_src };
      Protocol.Link
        { objects = [ "{}"; "{}" ]; entries = [ "f"; "g" ]; certify = true };
      Protocol.Drf
        { source = "s"; entries = [ "inc"; "inc" ]; with_lock = true };
      Protocol.Tso { source = "s"; entries = [ "main" ] };
      Protocol.Metrics;
      Protocol.Shutdown;
    ];
  let resp =
    {
      Protocol.rid = 7;
      status = Protocol.Soverloaded;
      payload = Protocol.error_payload "queue full";
    }
  in
  check tbool "response round trip" true
    (Protocol.decode_response (Protocol.encode_response resp) = Ok resp)

let test_protocol_version_gate () =
  let j = Protocol.encode_request { Protocol.id = 1; kind = Protocol.Ping } in
  let j' =
    match j with
    | Cas_diag.Json.Obj kvs ->
      Cas_diag.Json.Obj
        (List.map
           (function
             | "v", _ -> ("v", Cas_diag.Json.Str "0.0.1") | kv -> kv)
           kvs)
    | _ -> assert false
  in
  (match Protocol.decode_request j' with
  | Error e -> check tbool "names both versions" true (contains ~sub:"0.0.1" e)
  | Ok _ -> Alcotest.fail "version mismatch accepted");
  check tint "id still recoverable for the error response" 1
    (Protocol.peek_id j')

let test_request_key () =
  let key src =
    Protocol.request_key
      { Protocol.id = Random.int 1000; kind = Protocol.Certify { source = src } }
  in
  check tstr "same source, same key (ids differ)" (key "s") (key "s");
  check tbool "different source, different key" true (key "s1" <> key "s2");
  let certify =
    Protocol.request_key
      { Protocol.id = 0; kind = Protocol.Certify { source = "s" } }
  and compile =
    Protocol.request_key
      { Protocol.id = 0; kind = Protocol.Compile { source = "s" } }
  in
  check tbool "kind is part of the key" true (certify <> compile)

(* ------------------------------------------------------------------ *)
(* Pool.Persistent: drain semantics under a multi-domain hammer        *)
(* ------------------------------------------------------------------ *)

let test_pool_hammer_drain () =
  let open Cas_base.Pool.Persistent in
  let p = create ~jobs:4 () in
  let hits = Atomic.make 0 in
  let n = 500 in
  let submitters =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to n / 4 do
              match submit p (fun () -> Atomic.incr hits) with
              | Ok () -> ()
              | Error `Draining -> Alcotest.fail "refused before drain"
            done)
          ())
  in
  List.iter Thread.join submitters;
  drain p;
  check tint "every job ran exactly once" n (Atomic.get hits);
  check tint "executed counter agrees" n (executed p);
  check tint "no failures" 0 (failed p);
  check tbool "post-drain submission refused" true
    (submit p (fun () -> ()) = Error `Draining);
  (* idempotent *)
  drain p;
  check tint "drain is idempotent" n (Atomic.get hits)

let test_pool_job_exception_survival () =
  let open Cas_base.Pool.Persistent in
  let p = create ~jobs:2 () in
  let ok = Atomic.make 0 in
  for i = 1 to 100 do
    match
      submit p (fun () ->
          if i mod 3 = 0 then failwith "boom" else Atomic.incr ok)
    with
    | Ok () -> ()
    | Error `Draining -> Alcotest.fail "refused while running"
  done;
  drain p;
  check tint "survivors all ran" 67 (Atomic.get ok);
  check tint "failures counted, not fatal" 33 (failed p)

(* ------------------------------------------------------------------ *)
(* Scheduler: dedup, admission, drain                                  *)
(* ------------------------------------------------------------------ *)

(* Block the worker inside the leader's job until we've observed the
   coalesced submissions — the dedup assertion is deterministic, not a
   race we hope to win. *)
let test_scheduler_dedup () =
  let s = Scheduler.create ~jobs:2 ~queue_cap:8 () in
  let gate = Mutex.create () in
  let executions = Atomic.make 0 in
  let results = Atomic.make 0 in
  Mutex.lock gate;
  let submit_one () =
    Scheduler.submit s ~key:"K"
      ~run:(fun () ->
        Atomic.incr executions;
        Mutex.lock gate;
        Mutex.unlock gate;
        Ok "null")
      ~callback:(fun r ->
        if r = Ok "null" then Atomic.incr results)
  in
  let n = 8 in
  check tbool "first is a leader" true (submit_one () = Scheduler.Admitted);
  (* wait until the leader is actually inside [run] *)
  while Atomic.get executions = 0 do
    Thread.yield ()
  done;
  for _ = 2 to n do
    check tbool "identical in-flight request coalesces" true
      (submit_one () = Scheduler.Coalesced)
  done;
  Mutex.unlock gate;
  Scheduler.drain s;
  check tint "one execution" 1 (Atomic.get executions);
  check tint "N responses" n (Atomic.get results);
  check tint "coalesce count is N-1" (n - 1) (Scheduler.coalesced_total s);
  check tint "executed count is 1" 1 (Scheduler.executed_total s)

let test_scheduler_admission () =
  let s = Scheduler.create ~jobs:1 ~queue_cap:1 () in
  let gate = Mutex.create () in
  let started = Atomic.make 0 in
  Mutex.lock gate;
  let blocked key =
    Scheduler.submit s ~key
      ~run:(fun () ->
        Atomic.incr started;
        Mutex.lock gate;
        Mutex.unlock gate;
        Ok "null")
      ~callback:(fun _ -> ())
  in
  check tbool "leader admitted" true (blocked "A" = Scheduler.Admitted);
  while Atomic.get started = 0 do
    Thread.yield ()
  done;
  check tbool "distinct job over the cap rejected" true
    (blocked "B" = Scheduler.Overloaded);
  check tbool "identical job still coalesces at the cap" true
    (blocked "A" = Scheduler.Coalesced);
  check tint "rejection counted" 1 (Scheduler.overloaded_total s);
  Mutex.unlock gate;
  Scheduler.drain s;
  check tbool "post-drain submission refused" true
    (blocked "C" = Scheduler.Draining)

(* the response memo: a completed key answers later identical requests
   synchronously (callback runs inside [submit]), without re-executing —
   and error results are never memoized *)
let test_scheduler_memo () =
  let s = Scheduler.create ~jobs:1 ~queue_cap:4 () in
  let runs = Atomic.make 0 in
  let answered = Atomic.make 0 in
  let submit_ok () =
    Scheduler.submit s ~key:"K"
      ~run:(fun () ->
        Atomic.incr runs;
        Ok "v")
      ~callback:(fun r ->
        if r = Ok "v" then Atomic.incr answered)
  in
  check tbool "first is a leader" true (submit_ok () = Scheduler.Admitted);
  while Atomic.get answered < 1 do
    Thread.yield ()
  done;
  check tbool "completed key served from the memo" true
    (submit_ok () = Scheduler.Hit);
  check tint "memo callback ran synchronously" 2 (Atomic.get answered);
  check tint "no second execution" 1 (Atomic.get runs);
  check tint "memo hit counted" 1 (Scheduler.memo_hits_total s);
  check tint "executed count unchanged" 1 (Scheduler.executed_total s);
  check tint "one entry held" 1 (Scheduler.memo_entries s);
  (* errors may be transient: they are not memoized *)
  let failures = Atomic.make 0 in
  let err_answered = Atomic.make 0 in
  let submit_err () =
    Scheduler.submit s ~key:"E"
      ~run:(fun () ->
        Atomic.incr failures;
        Error "boom")
      ~callback:(fun _ -> Atomic.incr err_answered)
  in
  check tbool "error leader admitted" true (submit_err () = Scheduler.Admitted);
  while Atomic.get err_answered < 1 do
    Thread.yield ()
  done;
  check tbool "failed key re-executes, no memo" true
    (submit_err () = Scheduler.Admitted);
  Scheduler.drain s;
  check tint "error job ran twice" 2 (Atomic.get failures)

let test_scheduler_drain_completes_queued () =
  let s = Scheduler.create ~jobs:1 ~queue_cap:16 () in
  let done_ = Atomic.make 0 in
  for i = 1 to 8 do
    match
      Scheduler.submit s
        ~key:(string_of_int i)
        ~run:(fun () ->
          Unix.sleepf 0.01;
          Ok "null")
        ~callback:(fun _ -> Atomic.incr done_)
    with
    | Scheduler.Admitted -> ()
    | _ -> Alcotest.fail "submission refused"
  done;
  Scheduler.drain s;
  check tint "every admitted job answered before drain returned" 8
    (Atomic.get done_)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_consistency () =
  let m = Metrics.create () in
  Metrics.record_request m ~kind:"certify";
  Metrics.record_request m ~kind:"certify";
  Metrics.record_request m ~kind:"ping";
  let ms = 1_000_000 in
  for _ = 1 to 50 do
    Metrics.record_result m Metrics.Ok_ ~latency_ns:ms
  done;
  for _ = 1 to 50 do
    Metrics.record_result m Metrics.Ok_ ~latency_ns:(100 * ms)
  done;
  Metrics.record_result m Metrics.Error_ ~latency_ns:(2 * ms);
  Metrics.record_result m Metrics.Overloaded ~latency_ns:ms;
  let s = Metrics.snapshot m in
  check tint "total = ok + error + overloaded + draining" 102
    s.Metrics.requests_total;
  check tint "ok" 100 s.Metrics.requests_ok;
  check tint "error" 1 s.Metrics.requests_error;
  check tint "overloaded" 1 s.Metrics.requests_overloaded;
  check tbool "kind counters kept" true
    (s.Metrics.by_kind = [ ("certify", 2); ("ping", 1) ]);
  check tbool "quantiles are monotone" true
    (s.Metrics.p50_ns <= s.Metrics.p95_ns
    && s.Metrics.p95_ns <= s.Metrics.p99_ns
    && s.Metrics.p99_ns <= s.Metrics.max_ns);
  check tbool "p50 in the 1ms bucket (≤2x overestimate)" true
    (s.Metrics.p50_ns >= ms && s.Metrics.p50_ns <= 3 * ms);
  check tbool "p95 reaches the 100ms population" true
    (s.Metrics.p95_ns >= 50 * ms);
  check tint "max exact" (100 * ms) s.Metrics.max_ns

(* ------------------------------------------------------------------ *)
(* End-to-end: in-process daemon                                       *)
(* ------------------------------------------------------------------ *)

let start_daemon cfg =
  match Daemon.create cfg with
  | Error e -> Alcotest.failf "daemon: %s" e
  | Ok d ->
    let final = ref Cas_diag.Json.Null in
    let th = Thread.create (fun () -> final := Daemon.run d) () in
    (match Client.wait_ready ~socket:cfg.Daemon.socket () with
    | Ok () -> ()
    | Error e -> Alcotest.failf "daemon never ready: %s" e);
    (d, th, final)

let certify_req src = Protocol.Certify { source = src }

let request_ok ~socket kind =
  match Client.with_connection ~socket (fun c -> Client.request c kind) with
  | Ok (Ok r) -> r
  | Ok (Error e) | Error e -> Alcotest.failf "request failed: %s" e

let int_at path j =
  let rec go j = function
    | [] -> Cas_diag.Json.to_int_exn j
    | k :: rest -> go (Cas_diag.Json.member k j) rest
  in
  go j path

(* N identical certify requests against a daemon whose jobs sleep long
   enough that 1..N-1 arrive while the leader runs: exactly one
   execution, N identical responses, coalesce count N-1 — and the
   verdict text byte-identical to the one-shot CLI rendering. *)
let test_daemon_dedup_and_identical_text () =
  let socket = socket_path () in
  let cfg = { Daemon.socket; jobs = 2; queue_cap = 32; delay = 0.4 } in
  let _d, th, _final = start_daemon cfg in
  let src = Corpus.counter_src in
  (* warm the (process-global, daemon-shared) certificate cache first so
     the daemon's rendering and the local expected rendering agree on
     the "(cached)" markers *)
  ignore (Cascompcert.Framework.check_passes (Cas_langs.Parse.clight src));
  let n = 8 in
  let responses = Array.make n None in
  let fire i = responses.(i) <- Some (request_ok ~socket (certify_req src)) in
  let leader = Thread.create fire 0 in
  Unix.sleepf 0.15 (* leader is inside its 0.4s job; the rest coalesce *);
  let rest = List.init (n - 1) (fun i -> Thread.create fire (i + 1)) in
  Thread.join leader;
  List.iter Thread.join rest;
  let texts =
    Array.to_list responses
    |> List.map (function
         | Some { Protocol.status = Protocol.Sok; payload; _ } ->
           Protocol.payload_text payload
         | Some _ -> Alcotest.fail "non-ok response"
         | None -> Alcotest.fail "missing response")
  in
  let expected =
    String.concat ""
      (List.map
         (fun r -> Fmt.str "%a@." Cascompcert.Framework.pp_pass_sim r)
         (Cascompcert.Framework.check_passes (Cas_langs.Parse.clight src)))
  in
  List.iteri
    (fun i t -> check tstr (Fmt.str "response %d text = CLI text" i) expected t)
    texts;
  let m = (request_ok ~socket Protocol.Metrics).Protocol.payload in
  check tint "one execution" 1 (int_at [ "scheduler"; "executed" ] m);
  check tint "coalesced N-1" (n - 1) (int_at [ "scheduler"; "coalesced" ] m);
  check tint "all ok (certifies + ready pings)" 0
    (int_at [ "requests"; "error" ] m);
  (* the job is done: one more identical request is a memo hit — same
     bytes, no execution, and it skips the daemon's 0.4s job delay *)
  let r9 = request_ok ~socket (certify_req src) in
  check tstr "memo-served response text = CLI text" expected
    (Protocol.payload_text r9.Protocol.payload);
  let m2 = (request_ok ~socket Protocol.Metrics).Protocol.payload in
  check tint "memo hit recorded" 1 (int_at [ "scheduler"; "memo_hits" ] m2);
  check tint "still one execution" 1 (int_at [ "scheduler"; "executed" ] m2);
  ignore (request_ok ~socket Protocol.Shutdown);
  Thread.join th

let test_daemon_overload_and_drain () =
  let socket = socket_path () in
  let cfg = { Daemon.socket; jobs = 1; queue_cap = 1; delay = 0.4 } in
  let _d, th, final = start_daemon cfg in
  let slow = ref None in
  let slow_th =
    Thread.create
      (fun () -> slow := Some (request_ok ~socket (certify_req Corpus.fib_src)))
      ()
  in
  Unix.sleepf 0.15;
  (* distinct second job: over the cap → overloaded, immediately *)
  let r2 = request_ok ~socket (certify_req Corpus.counter_src) in
  check tbool "distinct job rejected as overloaded" true
    (r2.Protocol.status = Protocol.Soverloaded);
  (* identical job: coalesces even at the cap *)
  let twin = ref None in
  let twin_th =
    Thread.create
      (fun () -> twin := Some (request_ok ~socket (certify_req Corpus.fib_src)))
      ()
  in
  Unix.sleepf 0.1;
  (* shutdown mid-flight: the in-flight job must still answer *)
  ignore (request_ok ~socket Protocol.Shutdown);
  Thread.join slow_th;
  Thread.join twin_th;
  Thread.join th;
  (match (!slow, !twin) with
  | Some a, Some b ->
    check tbool "in-flight job answered across the drain" true
      (a.Protocol.status = Protocol.Sok && b.Protocol.status = Protocol.Sok);
    check tstr "leader and coalesced twin got the same text"
      (Protocol.payload_text a.Protocol.payload)
      (Protocol.payload_text b.Protocol.payload)
  | _ -> Alcotest.fail "missing responses");
  (* final metrics document from [Daemon.run]'s return *)
  check tint "final stats: one overload" 1
    (int_at [ "requests"; "overloaded" ] !final);
  check tint "final stats: coalesce recorded" 1
    (int_at [ "scheduler"; "coalesced" ] !final);
  check tbool "socket removed on exit" true (not (Sys.file_exists socket))

let test_daemon_rejects_garbage () =
  let socket = socket_path () in
  let cfg = { Daemon.socket; jobs = 1; queue_cap = 4; delay = 0. } in
  let _d, th, _final = start_daemon cfg in
  (* raw malformed frame: served a structured error, connection survives *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let payload = Bytes.of_string "][" in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Bytes.length payload));
  ignore (Unix.write fd header 0 4);
  ignore (Unix.write fd payload 0 (Bytes.length payload));
  (match Frame.read fd with
  | Ok j -> (
    match Protocol.decode_response j with
    | Ok r ->
      check tbool "structured error, id -1" true
        (r.Protocol.status = Protocol.Serror && r.Protocol.rid = -1)
    | Error e -> Alcotest.failf "undecodable error response: %s" e)
  | Error _ -> Alcotest.fail "no response to malformed frame");
  (* same connection still serves *)
  (match Frame.write fd
           (Protocol.encode_request { Protocol.id = 9; kind = Protocol.Ping })
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write after malformed frame");
  (match Frame.read fd with
  | Ok j ->
    check tbool "ping after garbage still answered" true
      (match Protocol.decode_response j with
      | Ok r -> r.Protocol.rid = 9 && r.Protocol.status = Protocol.Sok
      | Error _ -> false)
  | Error _ -> Alcotest.fail "connection dead after malformed frame");
  (* well-formed JSON that is not a valid request: structured error with
     whatever id is recoverable, not a crash *)
  (match Frame.write fd Cas_diag.Json.Null with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write of non-request frame");
  (match Frame.read fd with
  | Ok j ->
    check tbool "non-request document answered with an error" true
      (match Protocol.decode_response j with
      | Ok r -> r.Protocol.status = Protocol.Serror && r.Protocol.rid = -1
      | Error _ -> false)
  | Error _ -> Alcotest.fail "connection dead after non-request document");
  Unix.close fd;
  let m = (request_ok ~socket Protocol.Metrics).Protocol.payload in
  check tbool "bad frame counted" true
    (int_at [ "requests"; "bad_frames" ] m >= 1);
  ignore (request_ok ~socket Protocol.Shutdown);
  Thread.join th

let () =
  Alcotest.run "serve"
    [
      ( "cross-process",
        [
          Alcotest.test_case "two processes, one disk cache" `Quick
            test_cross_process_cache;
        ] );
      ( "frame",
        [
          Alcotest.test_case "round trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversized rejected unread" `Quick
            test_frame_oversized;
          Alcotest.test_case "bad length" `Quick test_frame_bad_length;
          Alcotest.test_case "malformed payload" `Quick test_frame_malformed;
          Alcotest.test_case "closed and stopped" `Quick
            test_frame_closed_and_stopped;
          QCheck_alcotest.to_alcotest prop_frame_roundtrip;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request/response round trip" `Quick
            test_protocol_roundtrip;
          Alcotest.test_case "version gate" `Quick test_protocol_version_gate;
          Alcotest.test_case "request keys" `Quick test_request_key;
        ] );
      ( "pool",
        [
          Alcotest.test_case "hammer + drain" `Quick test_pool_hammer_drain;
          Alcotest.test_case "job exceptions survive" `Quick
            test_pool_job_exception_survival;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "in-flight dedup" `Quick test_scheduler_dedup;
          Alcotest.test_case "admission control" `Quick
            test_scheduler_admission;
          Alcotest.test_case "response memo" `Quick test_scheduler_memo;
          Alcotest.test_case "drain completes queued work" `Quick
            test_scheduler_drain_completes_queued;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "consistency" `Quick test_metrics_consistency;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "dedup + identical text" `Quick
            test_daemon_dedup_and_identical_text;
          Alcotest.test_case "overload + graceful drain" `Quick
            test_daemon_overload_and_drain;
          Alcotest.test_case "garbage rejected structurally" `Quick
            test_daemon_rejects_garbage;
        ] );
    ]
