(** Certified linker tests ([Cas_link]): object-file codec round-trips
    (qcheck over random x86 modules), link-order determinism, precise
    resolver errors, incremental relink via the certificate cache, and
    rejection of tampered objects. *)

open Cas_base
open Cas_langs
open Cas_link

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let fresh_cache () =
  Cas_compiler.Cache.set_default_dir None;
  Cas_compiler.Cache.clear_memory ();
  Cas_compiler.Cache.reset_stats ()

(* the paper's §2.1 example, as two separately-built modules *)
let f_src =
  {| void f() { int a; int b; a = 0; b = 0; g(&b); print(a + b); } |}

let g_src = {| void g(int p) { *p = 3; } |}

let build name source =
  match Objfile.build ~name ~source () with
  | Ok o -> o
  | Error e -> Alcotest.failf "build %s: %s" name e

(* ------------------------------------------------------------------ *)
(* Asm JSON codec: random-program round trips                          *)
(* ------------------------------------------------------------------ *)

let gen_reg = QCheck.Gen.oneofl Mreg.all

let gen_binop =
  QCheck.Gen.oneofl
    [
      Ops.Oadd; Osub; Omul; Odiv; Omod; Oand; Oor; Oxor; Oshl; Oshr; Oeq;
      One; Olt; Ole; Ogt; Oge;
    ]

let gen_unop = QCheck.Gen.oneofl [ Ops.Oneg; Onot; Olognot ]
let gen_cond = QCheck.Gen.oneofl [ Asm.Ceq; Cne; Clt; Cle; Cgt; Cge ]

let gen_instr : Asm.instr QCheck.Gen.t =
  let open QCheck.Gen in
  let r = gen_reg and i = int_range (-64) 64 in
  let name = oneofl [ "f"; "g"; "h"; "print" ] in
  oneof
    [
      map2 (fun a b -> Asm.Pmov_ri (a, b)) r i;
      map2 (fun a b -> Asm.Pmov_rr (a, b)) r r;
      map2 (fun a g -> Asm.Plea_global (a, g)) r name;
      map2 (fun a b -> Asm.Plea_stack (a, b)) r i;
      map3 (fun op a b -> Asm.Pbinop_rr (op, a, b)) gen_binop r r;
      map3 (fun op a k -> Asm.Pbinop_ri (op, a, k)) gen_binop r i;
      map3 (fun op a (b, c) -> Asm.Pbinop3 (op, a, b, c)) gen_binop r (pair r r);
      map2 (fun op a -> Asm.Punop_r (op, a)) gen_unop r;
      map3 (fun a b ofs -> Asm.Pload (a, b, ofs)) r r i;
      map3 (fun a ofs b -> Asm.Pstore (a, ofs, b)) r i r;
      map2 (fun a ofs -> Asm.Pload_stack (a, ofs)) r i;
      map2 (fun ofs a -> Asm.Pstore_stack (ofs, a)) i r;
      map2 (fun a b -> Asm.Pcmp_rr (a, b)) r r;
      map2 (fun a k -> Asm.Pcmp_ri (a, k)) r i;
      map2 (fun c l -> Asm.Pjcc (c, l)) gen_cond (int_bound 9);
      map (fun l -> Asm.Pjmp l) (int_bound 9);
      map (fun l -> Asm.Plabel l) (int_bound 9);
      map3 (fun f ar res -> Asm.Pcall (f, ar, res)) name (int_bound 3) bool;
      map2 (fun f ar -> Asm.Ptailjmp (f, ar)) name (int_bound 3);
      map (fun res -> Asm.Pret res) bool;
      map2 (fun a b -> Asm.Plock_cmpxchg (a, b)) r r;
      return Asm.Pmfence;
    ]

let gen_gvar : Genv.gvar QCheck.Gen.t =
  let open QCheck.Gen in
  let* gname = oneofl [ "x"; "y"; "z" ] in
  let* gsize = int_range 1 4 in
  let* gperm = oneofl [ Perm.Normal; Perm.Object ] in
  let* ginit =
    list_size (int_bound gsize)
      (oneof
         [
           map (fun n -> Genv.Iint n) (int_range (-9) 9);
           map (fun g -> Genv.Iaddr g) (oneofl [ "x"; "y" ]);
           return Genv.Iundef;
         ])
  in
  return { Genv.gname; gsize; ginit; gperm }

let gen_asm : Asm.program QCheck.Gen.t =
  let open QCheck.Gen in
  let* nf = int_range 1 3 in
  let* funcs =
    flatten_l
      (List.init nf (fun i ->
           let* arity = int_bound 3 in
           let* framesize = int_bound 4 in
           let* is_object = bool in
           let* code = list_size (int_range 1 8) gen_instr in
           return
             {
               Asm.fname = Fmt.str "fn%d" i;
               arity;
               framesize;
               is_object;
               code;
             }))
  in
  let* globals =
    map
      (fun gs ->
        (* dedupe by name: duplicate declarations are a link concern *)
        List.fold_left
          (fun acc (g : Genv.gvar) ->
            if List.exists (fun (h : Genv.gvar) -> h.gname = g.gname) acc
            then acc
            else g :: acc)
          [] gs)
      (list_size (int_bound 3) gen_gvar)
  in
  return { Asm.funcs; globals }

let arb_asm =
  QCheck.make
    ~print:(fun (p : Asm.program) ->
      Fmt.str "%a" Fmt.(list ~sep:cut Asm.pp_func) p.Asm.funcs)
    gen_asm

let test_asm_roundtrip =
  QCheck.Test.make ~name:"Asm JSON codec round-trips" ~count:500 arb_asm
    (fun p ->
      match
        Cas_diag.Json.parse
          (Cas_diag.Json.to_string (Asmjson.program_to_json p))
      with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok j -> Asmjson.program_of_json j = p)

(* ------------------------------------------------------------------ *)
(* Object files                                                        *)
(* ------------------------------------------------------------------ *)

let test_objfile_roundtrip () =
  fresh_cache ();
  let o = build "f" f_src in
  let file = Filename.temp_file "casc_test" Objfile.extension in
  Objfile.save o ~file;
  (match Objfile.load ~file with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok o' ->
    check tbool "asm survives the round trip" true (o'.o_asm = o.o_asm);
    check tstr "body digest survives" o.o_body_digest o'.o_body_digest;
    check tstr "cert chain survives" o.o_cert.Cert.chain o'.o_cert.Cert.chain;
    check tbool "verifies after reload" true (Objfile.verify o' = Ok ()));
  Sys.remove file

let test_objfile_symbols () =
  fresh_cache ();
  let o_f = build "f" f_src and o_g = build "g" g_src in
  check tbool "f exports f" true (Objfile.defines o_f "f");
  check tbool "f imports g/1" true
    (List.exists
       (fun (s : Objfile.sym) -> s.s_name = "g" && s.s_arity = 1)
       o_f.o_imports);
  check tbool "print is builtin, not an import" true
    (not
       (List.exists (fun (s : Objfile.sym) -> s.s_name = "print") o_f.o_imports));
  check tbool "g has no imports" true (o_g.o_imports = [])

let test_build_deterministic () =
  fresh_cache ();
  let o1 = build "f" f_src in
  let o2 = build "f" f_src in
  check tstr "body digest deterministic" o1.o_body_digest o2.o_body_digest;
  check tstr "cert chain deterministic" o1.o_cert.Cert.chain
    o2.o_cert.Cert.chain

(* ------------------------------------------------------------------ *)
(* Resolver errors, with (file, symbol) attribution                    *)
(* ------------------------------------------------------------------ *)

let test_duplicate_export () =
  fresh_cache ();
  let o_g = build "g1" g_src and o_g' = build "g2" g_src in
  match Resolve.resolve [ o_g; o_g' ] with
  | Ok _ -> Alcotest.fail "duplicate definition not detected"
  | Error es ->
    check tbool "names symbol and both objects" true
      (List.exists
         (function
           | Resolve.Duplicate_export { sym = "g"; obj1 = "g1"; obj2 = "g2" }
             ->
             true
           | _ -> false)
         es)

let test_missing_import () =
  fresh_cache ();
  let o_f = build "f" f_src in
  match Resolve.resolve [ o_f ] with
  | Ok _ -> Alcotest.fail "missing import not detected"
  | Error es ->
    check tbool "names symbol, arity and requiring object" true
      (List.exists
         (function
           | Resolve.Missing_import { sym = "g"; arity = 1; obj = "f" } -> true
           | _ -> false)
         es)

let test_arity_mismatch () =
  fresh_cache ();
  let o_f =
    build "f2" {| void f() { int b; b = 0; g(&b, 1); print(b); } |}
  in
  let o_g = build "g" g_src in
  match Resolve.resolve [ o_f; o_g ] with
  | Ok _ -> Alcotest.fail "arity mismatch not detected"
  | Error es ->
    check tbool "names both arities and both objects" true
      (List.exists
         (function
           | Resolve.Arity_mismatch
               {
                 sym = "g";
                 def_obj = "g";
                 def_arity = 1;
                 use_obj = "f2";
                 use_arity = 2;
               } ->
             true
           | _ -> false)
         es)

let test_missing_entry () =
  fresh_cache ();
  let o_g = build "g" g_src in
  match Resolve.resolve ~entries:[ "main" ] [ o_g ] with
  | Ok _ -> Alcotest.fail "missing entry not detected"
  | Error es ->
    check tbool "entry named" true
      (List.exists
         (function
           | Resolve.Missing_entry { entry = "main" } -> true | _ -> false)
         es)

let test_world_rejects_duplicate_def () =
  let g = Parse.clight g_src in
  let p =
    Lang.prog [ Lang.Mod (Clight.lang, g); Lang.Mod (Clight.lang, g) ] [ "g" ]
  in
  match Cas_conc.World.load p ~args:[ [ Value.Vint 0 ] ] with
  | Error (Cas_conc.World.Duplicate_fundef "g") -> ()
  | Error e ->
    Alcotest.failf "wrong error: %a" Cas_conc.World.pp_load_error e
  | Ok _ -> Alcotest.fail "Load accepted a duplicate definition"

(* ------------------------------------------------------------------ *)
(* Linking: determinism, certification, incrementality, tampering      *)
(* ------------------------------------------------------------------ *)

let link_ok ?(certify = false) objs =
  match Linker.link ~certify ~entries:[ "f" ] objs with
  | Ok o -> o
  | Error e -> Alcotest.failf "link: %a" Linker.pp_error e

let test_link_order_determinism () =
  fresh_cache ();
  let o_f = build "f" f_src and o_g = build "g" g_src in
  let a = link_ok [ o_f; o_g ] and b = link_ok [ o_g; o_f ] in
  check tstr "image digest independent of argument order"
    a.lk_image.Image.i_digest b.lk_image.Image.i_digest;
  check tbool "module order is canonical" true
    (List.map
       (fun (m : Image.linked_module) -> m.lm_name)
       a.lk_image.Image.i_modules
    = List.map
        (fun (m : Image.linked_module) -> m.lm_name)
        b.lk_image.Image.i_modules)

let test_certified_link_and_image () =
  fresh_cache ();
  let o_f = build "f" f_src and o_g = build "g" g_src in
  let out = link_ok ~certify:true [ o_f; o_g ] in
  let img = out.lk_image in
  check tbool "image is certified" true img.Image.i_certified;
  check tbool "composed certificate digest recorded" true
    (img.Image.i_cert_digest <> "");
  (match out.lk_compose with
  | None -> Alcotest.fail "no compose report"
  | Some r ->
    check tbool "composition verdict ok" true
      r.Cascompcert.Framework.comp_ok;
    check tbool "confinement premise holds" true
      r.Cascompcert.Framework.comp_confinement.Cascompcert.Framework.ok;
    check tbool "boundary refinement holds" true
      r.Cascompcert.Framework.comp_boundary.Cascompcert.Framework.ok);
  (* the image runs, and the image file round-trips *)
  (match Cas_conc.World.load (Image.to_prog img) ~args:[] with
  | Error e ->
    Alcotest.failf "image does not load: %a" Cas_conc.World.pp_load_error e
  | Ok w ->
    let tr =
      Cas_conc.Explore.traces Cas_conc.Preemptive.steps
        (Cas_conc.Gsem.initials w)
    in
    check tbool "linked image prints 3" true
      (Cas_conc.Explore.TraceSet.mem
         ([ Event.Print 3 ], Cas_conc.Explore.SDone)
         tr.Cas_conc.Explore.traces));
  let file = Filename.temp_file "casc_test" Image.extension in
  Image.save img ~file;
  (match Image.load ~file with
  | Error e -> Alcotest.failf "image load: %s" e
  | Ok img' -> check tstr "image digest survives" img.Image.i_digest
                 img'.Image.i_digest);
  Sys.remove file

let cached_count (out : Linker.outcome) =
  match out.lk_compose with
  | None -> 0
  | Some r ->
    List.length
      (List.filter
         (fun (m : Cascompcert.Framework.compose_module_report) ->
           m.cm_cached)
         r.Cascompcert.Framework.comp_modules)

let test_incremental_relink () =
  fresh_cache ();
  let o_f = build "f" f_src and o_g = build "g" g_src in
  let cold = link_ok ~certify:true [ o_f; o_g ] in
  check tint "cold link: no cached verdicts" 0 (cached_count cold);
  let warm = link_ok ~certify:true [ o_f; o_g ] in
  check tint "relink: every verdict cached"
    (List.length
       (Option.get warm.lk_compose).Cascompcert.Framework.comp_modules)
    (cached_count warm);
  check tint "relink executes zero checker steps" 0
    warm.lk_stats.Linker.l_checker_steps;
  (* touch one module: only it re-verifies *)
  let o_g' = build "g" {| void g(int p) { *p = 4; } |} in
  let touched = link_ok ~certify:true [ o_f; o_g' ] in
  (match touched.lk_compose with
  | None -> Alcotest.fail "no compose report"
  | Some r ->
    List.iter
      (fun (m : Cascompcert.Framework.compose_module_report) ->
        check tbool
          (Fmt.str "module %s cached=%b as expected" m.cm_module m.cm_cached)
          (m.cm_module = "f") m.cm_cached)
      r.Cascompcert.Framework.comp_modules);
  check tbool "touching g changes the image digest" true
    (touched.lk_image.Image.i_digest <> cold.lk_image.Image.i_digest)

(* Two objects may carry the same module name with disjoint exports
   (Resolve allows it; casc build defaults names to file basenames).
   Verdict caching must key on the object itself, not its name —
   otherwise changing one of them can be answered with the other's
   stale cached verdict on relink. *)
let test_same_name_disjoint_relink () =
  fresh_cache ();
  let o_f = build "m" f_src and o_g = build "m" g_src in
  let cold = link_ok ~certify:true [ o_f; o_g ] in
  check tint "cold link: no cached verdicts" 0 (cached_count cold);
  (* touch only the g-carrying object: its verdict must re-run even
     though an unchanged object with the same module name is linked *)
  let o_g' = build "m" {| void g(int p) { *p = 4; } |} in
  let touched = link_ok ~certify:true [ o_f; o_g' ] in
  match touched.lk_compose with
  | None -> Alcotest.fail "no compose report"
  | Some r ->
    List.iter
      (fun (m : Cascompcert.Framework.compose_module_report) ->
        check tbool
          (Fmt.str "entry %s cached=%b as expected" m.cm_entry m.cm_cached)
          (m.cm_entry = "f") m.cm_cached)
      r.Cascompcert.Framework.comp_modules

let test_tampered_object_rejected () =
  fresh_cache ();
  let o_f = build "f" f_src in
  let text = Objfile.to_string o_f in
  let replace_once ~sub ~by s =
    let ls = String.length s and lsub = String.length sub in
    let rec find i =
      if i + lsub > ls then None
      else if String.sub s i lsub = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> Alcotest.failf "tamper target %S not found" sub
    | Some i ->
      String.sub s 0 i ^ by ^ String.sub s (i + lsub) (ls - i - lsub)
  in
  let mentions sub s =
    let ls = String.length s and lsub = String.length sub in
    let rec go i =
      i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1))
    in
    go 0
  in
  (match Objfile.of_string (replace_once ~sub:"print" ~by:"paint" text) with
  | Ok _ -> Alcotest.fail "body tampering not detected"
  | Error e -> check tbool "body digest named" true (mentions "body digest" e));
  (match
     Objfile.of_string
       (replace_once ~sub:{|"tag": "ok"|} ~by:{|"tag": "no"|} text)
   with
  | Ok _ -> Alcotest.fail "certificate tampering not detected"
  | Error _ -> ());
  (* untampered text still loads *)
  match Objfile.of_string text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pristine object rejected: %s" e

let test_certify_rejects_forged_verdict () =
  fresh_cache ();
  let o_g = build "g" g_src in
  (* forge: flip a verdict tag but recompute nothing — load-time chain
     verification is what stands between this and a certified link *)
  let forged =
    {
      o_g with
      Objfile.o_cert =
        {
          o_g.Objfile.o_cert with
          Cert.verdicts =
            List.map
              (fun (e : Cert.entry) ->
                { e with e_tag = "ok"; e_detail = "forged verdict" })
              o_g.Objfile.o_cert.Cert.verdicts;
        };
    }
  in
  let forged =
    {
      forged with
      Objfile.o_cert =
        { forged.Objfile.o_cert with Cert.chain = "0000deadbeef" };
    }
  in
  match Objfile.of_string (Objfile.to_string forged) with
  | Ok _ -> Alcotest.fail "forged chain not detected"
  | Error _ -> (
    (* and even a self-consistent forgery changes the chain, so the
       linker's digest-keyed verdict cache cannot be poisoned by it *)
    let reforged_chain =
      Cert.chain_of
        ~seed:(Objfile.cert_seed forged)
        forged.Objfile.o_cert.Cert.verdicts
    in
    check tbool "re-chained forgery has a different chain" true
      (reforged_chain <> o_g.Objfile.o_cert.Cert.chain);
    match Objfile.verify o_g with
    | Ok () -> ()
    | Error e -> Alcotest.failf "pristine object fails verify: %s" e)

(* Pinned generator seed for reproducible runs, as in test_random. *)
let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (try int_of_string s with _ -> 0x5ca1ab1e)
  | None -> 0x5ca1ab1e

let () =
  let rand = Random.State.make [| qcheck_seed |] in
  Alcotest.run "link"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest ~rand test_asm_roundtrip;
          Alcotest.test_case "objfile round-trip" `Quick
            test_objfile_roundtrip;
          Alcotest.test_case "symbol tables" `Quick test_objfile_symbols;
          Alcotest.test_case "build is deterministic" `Quick
            test_build_deterministic;
        ] );
      ( "resolve",
        [
          Alcotest.test_case "duplicate export" `Quick test_duplicate_export;
          Alcotest.test_case "missing import" `Quick test_missing_import;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "missing entry" `Quick test_missing_entry;
          Alcotest.test_case "World.load rejects duplicate defs" `Quick
            test_world_rejects_duplicate_def;
        ] );
      ( "link",
        [
          Alcotest.test_case "link-order determinism" `Quick
            test_link_order_determinism;
          Alcotest.test_case "certified link and image" `Slow
            test_certified_link_and_image;
          Alcotest.test_case "incremental relink" `Slow
            test_incremental_relink;
          Alcotest.test_case "same-named objects keyed separately" `Slow
            test_same_name_disjoint_relink;
          Alcotest.test_case "tampered object rejected" `Quick
            test_tampered_object_rejected;
          Alcotest.test_case "forged certificate rejected" `Quick
            test_certify_rejects_forged_verdict;
        ] );
    ]
