(** Differential testing of the whole compiler: generate random mini-C
    functions (straight-line arithmetic, conditionals, bounded loops,
    global and stack-local traffic, address-taken locals), compile them
    through all 16 passes, and require that the x86 target produces
    exactly the source's observable behaviour (events, return value
    modulo Vundef-refinement, abort-for-abort).

    This is the qcheck-shaped face of Lem. 13 (Correct(CompCert)): where
    the paper quantifies over all programs by proof, we sample the
    program space. A shrinking counterexample would print the offending
    source. *)

open Cas_base
open Cas_langs

(* ------------------------------------------------------------------ *)
(* Random program generation                                           *)
(* ------------------------------------------------------------------ *)

(* temps t0..t3, globals g0 g1, one addressable local buf[2] *)
let temps = [ "t0"; "t1"; "t2"; "t3" ]
let globals = [ "g0"; "g1" ]

open QCheck.Gen

let gen_binop =
  oneofl Ops.[ Oadd; Osub; Omul; Oand; Oor; Oxor; Oeq; One; Olt; Ole; Ogt ]

(* expressions are int-valued; pointer expressions appear only in the
   fixed shapes below so that programs stay memory-safe by construction *)
let rec gen_expr n =
  if n <= 0 then
    oneof
      [
        map (fun c -> Clight.Econst c) (int_range (-4) 9);
        map (fun x -> Clight.Etemp x) (oneofl temps);
        map (fun g -> Clight.Eglob g) (oneofl globals);
        map
          (fun i ->
            (* buf[i] for i in {0,1}: safe indexing *)
            Clight.Ederef
              (Clight.Ebinop (Ops.Oadd, Clight.Eaddrof "buf", Clight.Econst i)))
          (int_bound 1);
      ]
  else
    frequency
      [
        (3, gen_expr 0);
        ( 4,
          map2
            (fun op (a, b) -> Clight.Ebinop (op, a, b))
            gen_binop
            (pair (gen_expr (n / 2)) (gen_expr (n / 2))) );
        (1, map (fun a -> Clight.Eunop (Ops.Oneg, a)) (gen_expr (n - 1)));
      ]

let gen_lhs =
  oneof
    [
      map (fun x -> `Temp x) (oneofl temps);
      map (fun g -> `Glob g) (oneofl globals);
      map (fun i -> `Buf i) (int_bound 1);
    ]

let assign lhs e =
  match lhs with
  | `Temp x -> Clight.Sset (x, e)
  | `Glob g -> Clight.Sassign (Clight.Lglob g, e)
  | `Buf i ->
    Clight.Sassign
      ( Clight.Lderef
          (Clight.Ebinop (Ops.Oadd, Clight.Eaddrof "buf", Clight.Econst i)),
        e )

let rec gen_stmt n =
  if n <= 0 then map2 assign gen_lhs (gen_expr 2)
  else
    frequency
      [
        (4, map2 assign gen_lhs (gen_expr 3));
        ( 2,
          map2
            (fun a b -> Clight.Sseq (a, b))
            (gen_stmt (n / 2)) (gen_stmt (n / 2)) );
        ( 2,
          map3
            (fun e a b -> Clight.Sif (e, a, b))
            (gen_expr 2) (gen_stmt (n / 2)) (gen_stmt (n / 2)) );
        ( 1,
          (* bounded loop: while (tL < k) { body; tL = tL + 1 } over a
             dedicated counter temp so termination is structural *)
          map2
            (fun k body ->
              Clight.Sseq
                ( Clight.Sset ("loop", Clight.Econst 0),
                  Clight.Swhile
                    ( Clight.Ebinop (Ops.Olt, Clight.Etemp "loop", Clight.Econst k),
                      Clight.Sseq
                        ( body,
                          Clight.Sset
                            ( "loop",
                              Clight.Ebinop
                                (Ops.Oadd, Clight.Etemp "loop", Clight.Econst 1)
                            ) ) ) ))
            (int_range 1 3) (gen_stmt (n / 2)) );
        ( 1,
          map (fun e -> Clight.Scall (None, "print", [ e ])) (gen_expr 2) );
      ]

let gen_program : Clight.program QCheck.Gen.t =
  let* body = sized_size (int_bound 12) gen_stmt in
  let* ret = gen_expr 2 in
  let init_temps =
    List.fold_right
      (fun t acc -> Clight.Sseq (Clight.Sset (t, Clight.Econst 0), acc))
      temps
      (Clight.Sseq
         ( assign (`Buf 0) (Clight.Econst 0),
           Clight.Sseq (assign (`Buf 1) (Clight.Econst 0), body) ))
  in
  return
    {
      Clight.globals =
        List.map (fun g -> Genv.gvar ~init:[ Genv.Iint 1 ] g 1) globals;
      funcs =
        [
          {
            Clight.fname = "main";
            fparams = [];
            fvars = [ ("buf", 2) ];
            fbody = Clight.Sseq (init_temps, Clight.Sreturn (Some ret));
          };
        ];
    }

let print_program (p : Clight.program) =
  Fmt.str "%a"
    Fmt.(
      list ~sep:cut (fun ppf f ->
          Fmt.pf ppf "%s() { %a }" f.Clight.fname Clight.pp_stmt f.Clight.fbody))
    p.Clight.funcs

let arb_program = QCheck.make ~print:print_program gen_program

(* ------------------------------------------------------------------ *)
(* Behavioural comparison                                              *)
(* ------------------------------------------------------------------ *)

type obs = {
  events : Event.t list;
  ret : Value.t option;
  aborted : bool;
}

let run_one (type code core) (lang : (code, core) Lang.t) (code : code) : obs =
  match Genv.link [ lang.Lang.globals_of code ] with
  | Error _ -> { events = []; ret = None; aborted = true }
  | Ok genv -> (
    let mem = Genv.init_memory genv in
    let fl = Flist.make ~offset:(Genv.block_count genv) ~stride:1 in
    match lang.Lang.init_core ~genv code ~entry:"main" ~args:[] with
    | None -> { events = []; ret = None; aborted = true }
    | Some core ->
      let events = ref [] in
      let rec go core mem steps =
        if steps > 200_000 then { events = List.rev !events; ret = None; aborted = true }
        else
          match lang.Lang.step fl core mem with
          | [] | Lang.Stuck_abort :: _ ->
            { events = List.rev !events; ret = None; aborted = true }
          | Lang.Next (Msg.Ret v, _, _, _) :: _ ->
            { events = List.rev !events; ret = Some v; aborted = false }
          | Lang.Next (Msg.Call ("print", [ Value.Vint n ]), _, core', mem') :: _
            -> (
            events := Event.Print n :: !events;
            match lang.Lang.after_external core' None with
            | Some core'' -> go core'' mem' (steps + 1)
            | None -> { events = List.rev !events; ret = None; aborted = true })
          | Lang.Next (_, _, core', mem') :: _ -> go core' mem' (steps + 1)
      in
      go core mem 0)

let values_refine src tgt =
  match (src, tgt) with
  | Some Value.Vundef, Some _ -> true
  | Some a, Some b -> Value.equal a b
  | None, None -> true
  | _ -> false

let obs_refines (src : obs) (tgt : obs) =
  if src.aborted then true (* UB in the source licenses anything *)
  else
    (not tgt.aborted)
    && List.length src.events = List.length tgt.events
    && List.for_all2 Event.equal src.events tgt.events
    && values_refine src.ret tgt.ret

(* ------------------------------------------------------------------ *)
(* The differential properties                                         *)
(* ------------------------------------------------------------------ *)

let prop_compiler_correct =
  QCheck.Test.make ~name:"compiled x86 refines random source" ~count:300
    arb_program (fun p ->
      let src = run_one Clight.lang p in
      let tgt = run_one Asm.lang (Cas_compiler.Driver.compile p) in
      obs_refines src tgt)

let prop_compiler_correct_noopt =
  QCheck.Test.make ~name:"unoptimized pipeline refines random source"
    ~count:150 arb_program (fun p ->
      let src = run_one Clight.lang p in
      let tgt =
        run_one Asm.lang
          (Cas_compiler.Driver.compile
             ~options:{ Cas_compiler.Driver.optimize = false }
             p)
      in
      obs_refines src tgt)

let prop_every_stage_refines =
  QCheck.Test.make ~name:"every IR stage refines random source" ~count:60
    arb_program (fun p ->
      let src = run_one Clight.lang p in
      let a = Cas_compiler.Driver.compile_artifacts p in
      let open Cas_compiler.Driver in
      List.for_all
        (fun o -> obs_refines src o)
        [
          run_one Clight.lang a.clight_simpl;
          run_one Csharpminor.lang a.csharpminor;
          run_one Cminor.lang a.cminor;
          run_one Cminor.sel_lang a.cminorsel;
          run_one Rtl.lang a.rtl;
          run_one Rtl.lang a.rtl_deadcode;
          run_one Ltl.lang a.ltl_tunneled;
          run_one Linearl.lang a.linear_clean;
          run_one Machl.lang a.mach;
          run_one Asm.lang a.asm;
        ])

(* The streamed per-IR hashes must refine fingerprint equality: under
   --paranoid-fp the checker cross-checks the 16-byte key against the
   canonical fingerprint string on every core it visits, and it
   co-executes every pipeline stage, so one check_passes run sweeps all
   ten IRs' streamers over live states. *)
let prop_hash_refines_fingerprint_on_random =
  QCheck.Test.make
    ~name:"streamed hash refines fingerprint on every IR (paranoid sweep)"
    ~count:40 arb_program (fun p ->
      Lang.audit_reset ();
      Fpmode.set_paranoid true;
      Fun.protect
        ~finally:(fun () -> Fpmode.set_paranoid false)
        (fun () ->
          ignore (Cascompcert.Framework.check_passes ~cache:false p));
      Lang.audit_collisions () = [])

(* Fundef digests are a pure function of the code: recompiling the same
   random program yields bit-identical per-stage digests for every
   defined function — no hidden state leaks into a streamer. *)
let prop_fundef_digest_deterministic =
  QCheck.Test.make
    ~name:"per-stage fundef digests are deterministic on random programs"
    ~count:40 arb_program (fun p ->
      let digests () =
        List.map
          (fun (stage, m) -> (stage, Lang.digest_fundef m "main"))
          (Cas_compiler.Driver.compile_unit ~cache:false p)
            .Cas_compiler.Driver.c_trace
      in
      digests () = digests ())

let prop_module_sim_on_random =
  QCheck.Test.make ~name:"Def.2/3 simulation holds on random programs"
    ~count:100 arb_program (fun p ->
      let asm = Cas_compiler.Driver.compile p in
      match
        Cascompcert.Simulation.check ~src:(Clight.lang, p) ~tgt:(Asm.lang, asm)
          ~entry:"main" ~args:[] ()
      with
      | Cascompcert.Simulation.Sim_fail _ -> false
      | _ -> true)

(* Pinned generator seed for reproducible runs; override with
   QCHECK_SEED=n to explore a different slice of the input space. *)
let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (try int_of_string s with _ -> 0x5ca1ab1e)
  | None -> 0x5ca1ab1e

let () =
  let rand = Random.State.make [| qcheck_seed |] in
  Alcotest.run "random-differential"
    [
      ( "compiler",
        List.map
          (QCheck_alcotest.to_alcotest ~rand)
          [
            prop_compiler_correct;
            prop_compiler_correct_noopt;
            prop_every_stage_refines;
            prop_hash_refines_fingerprint_on_random;
            prop_fundef_digest_deterministic;
            prop_module_sim_on_random;
          ] );
    ]
