(** Tests for the counterexample-engineering library ([Cas_diag]):
    the hand-rolled JSON codec, witness serialization round-trips
    (including a randomized property), capture → serialize → deserialize
    → replay on the racy corpus, deterministic witness selection across
    engines and job counts, schedule shrinking, and the TSO capture path
    (refinement traces and aborts, with flush points). *)

open Cas_base
open Cas_langs
open Cas_diag

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* replace the first occurrence of [sub] in [s] with [by] *)
let replace_once ~sub ~by s =
  let n = String.length sub and m = String.length s in
  let rec go i =
    if i + n > m then s
    else if String.sub s i n = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + n) (m - i - n)
    else go (i + 1)
  in
  go 0

let world_of p =
  match Cas_conc.World.load p ~args:[] with
  | Ok w -> w
  | Error e -> Alcotest.failf "load: %a" Cas_conc.World.pp_load_error e

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_atoms () =
  check tbool "null" true (Json.parse "null" = Ok Json.Null);
  check tbool "true" true (Json.parse "true" = Ok (Json.Bool true));
  check tbool "int" true (Json.parse "-42" = Ok (Json.Int (-42)));
  check tbool "string" true (Json.parse {|"hi"|} = Ok (Json.Str "hi"));
  check tbool "empty list" true (Json.parse "[]" = Ok (Json.List []));
  check tbool "empty obj" true (Json.parse "{}" = Ok (Json.Obj []))

let test_json_nested_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.List [ Json.Int 1; Json.Str "x\"y\\z"; Json.Null ]);
        ("b", Json.Obj [ ("nested", Json.Bool false) ]);
        ("c", Json.Str "line\nbreak\ttab\001ctl");
      ]
  in
  check tbool "print/parse round trip" true
    (Json.parse (Json.to_string doc) = Ok doc)

let test_json_rejects () =
  let bad s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  check tbool "trailing garbage" true (bad "1 2");
  check tbool "unterminated string" true (bad {|"abc|});
  check tbool "bad escape" true (bad {|"\q"|});
  check tbool "missing colon" true (bad {|{"a" 1}|});
  check tbool "bare word" true (bad "flase")

(* the hardened entry point: typed errors, size and depth limits *)
let test_json_parse_result_limits () =
  let deep k = String.make k '[' ^ String.make k ']' in
  (* k brackets recurse to depth k-1, so the limit trips at limit+2 *)
  (match Json.parse_result ~max_depth:16 (deep 18) with
  | Error (Json.Too_deep { limit }) -> check tint "depth limit named" 16 limit
  | _ -> Alcotest.fail "expected Too_deep");
  check tbool "depth just inside the limit parses" true
    (match Json.parse_result ~max_depth:16 (deep 17) with
    | Ok _ -> true
    | Error _ -> false);
  (match Json.parse_result ~max_size:8 "[1,2,3,4,5]" with
  | Error (Json.Too_large { size; limit }) ->
    check tint "size reported" 11 size;
    check tint "limit reported" 8 limit
  | _ -> Alcotest.fail "expected Too_large");
  match Json.parse_result "[1] junk" with
  | Error (Json.Syntax { offset; msg }) ->
    check tbool "offset points past the value" true (offset >= 3);
    check tstr "trailing garbage named" "trailing garbage" msg
  | _ -> Alcotest.fail "expected Syntax"

let test_json_parse_result_adversarial () =
  let syntax s =
    match Json.parse_result s with
    | Error (Json.Syntax _) -> true
    | _ -> false
  in
  check tbool "unterminated string" true (syntax {|"abc|});
  check tbool "truncated unicode escape" true (syntax {|"\u00|});
  check tbool "non-latin1 escape" true (syntax "\"\\u2603\"");
  check tbool "number overflow" true (syntax "99999999999999999999999999");
  check tbool "lone minus" true (syntax "-");
  check tbool "NUL inside literal" true (syntax "nu\000ll");
  check tbool "deep objects also capped" true
    (match
       Json.parse_result ~max_depth:16
         (String.concat ""
            (List.init 40 (fun _ -> {|{"a":|})
            @ [ "1" ]
            @ List.init 40 (fun _ -> "}")))
     with
    | Error (Json.Too_deep _) -> true
    | _ -> false);
  (* errors render without raising *)
  check tbool "pp_parse_error total" true
    (String.length
       (Fmt.str "%a" Json.pp_parse_error
          (Json.Syntax { offset = 3; msg = "x" }))
    > 0)

(* every document we can print parses back through the hardened entry
   point to the same tree *)
let gen_json_doc =
  let open QCheck.Gen in
  sized_size (int_bound 3) (fun n ->
      fix
        (fun self n ->
          if n = 0 then
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) small_signed_int;
                map (fun s -> Json.Str s) (string_size (int_bound 12));
              ]
          else
            oneof
              [
                map
                  (fun l -> Json.List l)
                  (list_size (int_bound 4) (self (n - 1)));
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (int_bound 4)
                     (pair string_printable (self (n - 1))));
              ])
        n)

let prop_json_parse_result_roundtrip =
  QCheck.Test.make ~count:300 ~name:"parse_result/to_string round trip"
    (QCheck.make gen_json_doc ~print:Json.to_string)
    (fun d -> Json.parse_result (Json.to_string d) = Ok d)

(* ------------------------------------------------------------------ *)
(* Witness serialization                                                *)
(* ------------------------------------------------------------------ *)

let sample_witness () =
  Witness.make ~program:"int x = 0;\nvoid inc() { x = x + 1; }"
    ~entries:[ "inc"; "inc" ] ~with_lock:false ~semantics:Witness.Sc
    ~engine:"dpor" ~seed:7
    ~verdict:(Witness.Vrace (1, 2))
    [
      {
        Witness.s_tid = 1;
        s_event = None;
        s_reads = [ Addr.make 0 0 ];
        s_writes = [];
        s_flush = false;
        s_dst = "d1";
      };
      {
        Witness.s_tid = 2;
        s_event = Some (Event.Print 3);
        s_reads = [];
        s_writes = [ Addr.make 0 0; Addr.make 1 4 ];
        s_flush = true;
        s_dst = "";
      };
    ]

let test_witness_roundtrip () =
  let w = sample_witness () in
  check tint "two switches counted" 1 (Witness.switches w);
  check tbool "events extracted" true (Witness.events w = [ Event.Print 3 ]);
  match Witness.of_string (Witness.to_string w) with
  | Error e -> Alcotest.failf "deserialize: %s" e
  | Ok w' ->
    check tbool "round trip is identity" true (w = w');
    check tstr "hash stable" w.Witness.prog_hash w'.Witness.prog_hash

let test_witness_rejects_future_format () =
  let s = Witness.to_string (sample_witness ()) in
  let s' = replace_once ~sub:"\"format\": 1" ~by:"\"format\": 99" s in
  check tbool "format marker present in serialization" true (s <> s');
  match Witness.of_string s' with
  | Ok _ -> Alcotest.fail "format 99 accepted"
  | Error e -> check tbool "error names the format" true (contains ~sub:"99" e)

(* randomized round-trip property *)
let gen_witness =
  let open QCheck.Gen in
  let addr = map2 Addr.make (int_range 0 20) (int_range 0 8) in
  let event =
    oneof
      [
        map (fun n -> Event.Print n) small_nat;
        map (fun s -> Event.Out s) (small_string ~gen:printable);
      ]
  in
  let step =
    map
      (fun (tid, ev, rs, ws, (flush, dst)) ->
        { Witness.s_tid = tid; s_event = ev; s_reads = rs; s_writes = ws;
          s_flush = flush; s_dst = dst })
      (tup5 (int_range 1 4) (option event) (small_list addr)
         (small_list addr)
         (pair bool (small_string ~gen:printable)))
  in
  let verdict =
    oneof
      [
        map2 (fun a b -> Witness.Vrace (a, b)) (int_range 1 4) (int_range 1 4);
        return Witness.Vabort;
        map (fun es -> Witness.Vrefine es) (small_list event);
      ]
  in
  map
    (fun ((prog, entries, with_lock, sem, steps), (engine, seed, v)) ->
      Witness.make ~program:prog ~entries ~with_lock
        ~semantics:(if sem then Witness.Sc else Witness.Tso)
        ~engine ~seed ~verdict:v steps)
    (pair
       (tup5 (small_string ~gen:printable)
          (small_list (small_string ~gen:printable))
          bool bool (small_list step))
       (tup3 (small_string ~gen:printable) small_nat verdict))

let prop_witness_roundtrip =
  QCheck.Test.make ~count:200 ~name:"witness serialize/deserialize identity"
    (QCheck.make gen_witness ~print:Witness.to_string)
    (fun w -> Witness.of_string (Witness.to_string w) = Ok w)

(* ------------------------------------------------------------------ *)
(* Capture → serialize → deserialize → replay (SC)                      *)
(* ------------------------------------------------------------------ *)

let capture_witness ?(engine = Cas_mc.Engine.Dpor) ?jobs ~src ~entries p =
  let rc = Capture.race ~engine ?jobs (world_of p) in
  match rc.Capture.rc_verdict with
  | None -> Alcotest.fail "expected a race capture"
  | Some v ->
    Witness.make ~program:src ~entries ~with_lock:false
      ~semantics:Witness.Sc
      ~engine:(Cas_mc.Engine.to_string engine)
      ~seed:0 ~verdict:v rc.Capture.rc_steps

let roundtrip w =
  match Witness.of_string (Witness.to_string w) with
  | Ok w' -> w'
  | Error e -> Alcotest.failf "round trip: %s" e

let test_capture_replay_racy engine () =
  let wit =
    capture_witness ~engine ~src:Corpus.racy_counter_src
      ~entries:[ "inc"; "inc" ]
      (Corpus.racy_prog ())
  in
  check tbool "schedule nonempty" true (wit.Witness.steps <> []);
  let wit = roundtrip wit in
  let o = Replay.run (Sem.of_world (world_of (Corpus.racy_prog ()))) wit in
  check tbool (Fmt.str "strict replay ok (%s)" o.Replay.detail) true
    o.Replay.ok;
  check tbool "verdict reached" true o.Replay.verdict_reached;
  check tint "all steps matched"
    (List.length wit.Witness.steps)
    o.Replay.steps_matched

let test_capture_replay_observer () =
  let wit =
    capture_witness ~engine:Cas_mc.Engine.Naive
      ~src:Corpus.racy_observer_writer_src
      ~entries:[ "writer"; "reader" ]
      (Corpus.observer_prog ())
  in
  let o =
    Replay.run (Sem.of_world (world_of (Corpus.observer_prog ()))) (roundtrip wit)
  in
  check tbool (Fmt.str "replay ok (%s)" o.Replay.detail) true o.Replay.ok

let test_capture_drf_program () =
  let rc = Capture.race ~engine:Cas_mc.Engine.Dpor (world_of (Corpus.lock_counter_prog ())) in
  check tbool "no verdict on a DRF program" true (rc.Capture.rc_verdict = None);
  check tbool "no schedule either" true (rc.Capture.rc_steps = []);
  check tbool "report says DRF" true rc.Capture.rc_report.Cas_conc.Race.drf

let test_replay_detects_tampering () =
  let wit =
    capture_witness ~src:Corpus.racy_counter_src ~entries:[ "inc"; "inc" ]
      (Corpus.racy_prog ())
  in
  (* flip every scheduled thread to one that cannot reproduce the steps *)
  let tampered =
    {
      wit with
      Witness.steps =
        List.map
          (fun (s : Witness.step) -> { s with Witness.s_tid = 9 })
          wit.Witness.steps;
    }
  in
  let o = Replay.run (Sem.of_world (world_of (Corpus.racy_prog ()))) tampered in
  check tbool "tampered schedule rejected" false o.Replay.ok

(* ------------------------------------------------------------------ *)
(* Deterministic witness selection (satellite 1)                        *)
(* ------------------------------------------------------------------ *)

let test_witness_deterministic_across_engines () =
  let drf e jobs =
    Cas_conc.Race.drf ~engine:e ?jobs (world_of (Corpus.racy_prog ()))
  in
  let r1 = drf Cas_mc.Engine.Dpor None in
  let r2 = drf Cas_mc.Engine.Dpor_par (Some 3) in
  let fp r =
    match r.Cas_conc.Race.witness_world with
    | Some w -> Cas_conc.World.fingerprint_nocur w
    | None -> Alcotest.fail "expected a racy world"
  in
  check tbool "same witness tuple" true
    (r1.Cas_conc.Race.witness = r2.Cas_conc.Race.witness);
  check tstr "same racy world" (fp r1) (fp r2)

let test_capture_deterministic () =
  let cap () =
    (Capture.race ~engine:Cas_mc.Engine.Dpor (world_of (Corpus.racy_prog ())))
      .Capture.rc_steps
  in
  check tbool "identical schedule on re-capture" true (cap () = cap ())

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let test_shrink_preserves_verdict () =
  let wit =
    capture_witness ~src:Corpus.racy_counter_src ~entries:[ "inc"; "inc" ]
      (Corpus.racy_prog ())
  in
  let s0 () = Sem.of_world (world_of (Corpus.racy_prog ())) in
  let r = Shrink.shrink (s0 ()) wit in
  check tbool "switches never increase" true
    (r.Shrink.sh_min_switches <= r.Shrink.sh_orig_switches);
  check tbool "steps never increase" true
    (r.Shrink.sh_min_steps <= r.Shrink.sh_orig_steps);
  check tbool "verdict preserved" true
    (r.Shrink.sh_witness.Witness.verdict = wit.Witness.verdict);
  let o = Replay.run (s0 ()) r.Shrink.sh_witness in
  check tbool
    (Fmt.str "shrunk witness strict-replays (%s)" o.Replay.detail)
    true o.Replay.ok

let test_shrink_drops_padding () =
  (* pad the schedule with a stutter of the first thread's prefix steps
     duplicated as unmatched noise: shrinking must fall back cleanly and
     the result must still replay *)
  let wit =
    capture_witness ~src:Corpus.racy_counter_src ~entries:[ "inc"; "inc" ]
      (Corpus.racy_prog ())
  in
  let padded = { wit with Witness.steps = wit.Witness.steps @ wit.Witness.steps } in
  let s0 () = Sem.of_world (world_of (Corpus.racy_prog ())) in
  let r = Shrink.shrink (s0 ()) padded in
  check tbool "padding removed" true
    (r.Shrink.sh_min_steps <= List.length wit.Witness.steps);
  let o = Replay.run (s0 ()) r.Shrink.sh_witness in
  check tbool "still replays" true o.Replay.ok

(* ------------------------------------------------------------------ *)
(* TSO capture: refinement traces and aborts                            *)
(* ------------------------------------------------------------------ *)

(** The SB litmus test (x=1; r1=y ∥ y=1; r2=x), unfenced: both threads
    printing 0 is TSO-only behaviour — the canonical refinement failure. *)
let sb_module : Asm.program =
  let mk name mine other =
    {
      Asm.fname = name;
      arity = 0;
      framesize = 0;
      is_object = false;
      code =
        [
          Asm.Plea_global (Mreg.CX, mine);
          Asm.Pmov_ri (Mreg.DX, 1);
          Asm.Pstore (Mreg.CX, 0, Mreg.DX);
          Asm.Plea_global (Mreg.CX, other);
          Asm.Pload (Mreg.AX, Mreg.CX, 0);
          Asm.Pcall ("print", 1, false);
          Asm.Pret false;
        ];
    }
  in
  {
    Asm.funcs = [ mk "t1" "x" "y"; mk "t2" "y" "x" ];
    globals =
      [ Genv.gvar ~init:[ Genv.Iint 0 ] "x" 1; Genv.gvar ~init:[ Genv.Iint 0 ] "y" 1 ];
  }

let tso_world modules entries =
  match Cas_tso.Tso.load modules entries with
  | Ok w -> w
  | Error e -> Alcotest.failf "TSO load: %a" Cas_conc.World.pp_load_error e

let test_tso_refine_capture_and_replay () =
  let target = [ Event.Print 0; Event.Print 0 ] in
  let s0 () = Sem.of_tso (tso_world [ sb_module ] [ "t1"; "t2" ]) in
  match Capture.schedule_for_events (s0 ()) ~events:target () with
  | None -> Alcotest.fail "no schedule for the TSO-only trace"
  | Some steps ->
    check tbool "schedule crosses a flush" true
      (List.exists (fun (s : Witness.step) -> s.Witness.s_flush) steps);
    let wit =
      Witness.make ~program:"(hand-written sb litmus)" ~entries:[ "t1"; "t2" ]
        ~with_lock:false ~semantics:Witness.Tso ~engine:"search" ~seed:0
        ~verdict:(Witness.Vrefine target) steps
    in
    let o = Replay.run (s0 ()) (roundtrip wit) in
    check tbool (Fmt.str "TSO replay ok (%s)" o.Replay.detail) true o.Replay.ok;
    check tbool "exact event trace" true (o.Replay.events = target)

let snoop_client : Asm.program =
  {
    Asm.funcs =
      [
        {
          Asm.fname = "snoop";
          arity = 0;
          framesize = 0;
          is_object = false;
          code =
            [
              Asm.Plea_global (Mreg.CX, "L");
              Asm.Pload (Mreg.AX, Mreg.CX, 0);
              Asm.Pret false;
            ];
        };
      ];
    globals = [];
  }

let test_tso_abort_capture_and_replay () =
  let s0 () =
    Sem.of_tso (tso_world [ snoop_client; Cas_tso.Locks.pi_lock ] [ "snoop" ])
  in
  match Capture.schedule_to_abort (s0 ()) () with
  | None -> Alcotest.fail "confinement abort not found"
  | Some steps ->
    let wit =
      Witness.make ~program:"(snoop client)" ~entries:[ "snoop" ]
        ~with_lock:false ~semantics:Witness.Tso ~engine:"search" ~seed:0
        ~verdict:Witness.Vabort steps
    in
    let o = Replay.run (s0 ()) (roundtrip wit) in
    check tbool (Fmt.str "abort replay ok (%s)" o.Replay.detail) true
      o.Replay.ok

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let test_chrome_export_wellformed () =
  let wit =
    capture_witness ~src:Corpus.racy_counter_src ~entries:[ "inc"; "inc" ]
      (Corpus.racy_prog ())
  in
  let doc = Export.chrome wit in
  (* the export itself must be valid JSON for our own parser *)
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "chrome trace does not reparse: %s" e
  | Ok j ->
    let events = Json.to_list_exn (Json.member "traceEvents" j) in
    let count ph =
      List.length
        (List.filter
           (fun e -> Json.to_str_exn (Json.member "ph" e) = ph)
           events)
    in
    check tint "one duration event per step"
      (List.length wit.Witness.steps)
      (count "X");
    check tint "one verdict marker" 1 (count "i");
    check tbool "thread lanes named" true (count "M" >= 2)

let test_explain_renders () =
  let wit =
    capture_witness ~src:Corpus.racy_counter_src ~entries:[ "inc"; "inc" ]
      (Corpus.racy_prog ())
  in
  let s = Fmt.str "%a" Export.explain wit in
  check tbool "mentions the verdict" true (contains ~sub:"race between" s);
  check tbool "marks a context switch" true (contains ~sub:">>" s)

let () =
  Alcotest.run "diag"
    [
      ( "json",
        [
          Alcotest.test_case "atoms" `Quick test_json_atoms;
          Alcotest.test_case "nested round trip" `Quick
            test_json_nested_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
          Alcotest.test_case "parse_result limits" `Quick
            test_json_parse_result_limits;
          Alcotest.test_case "parse_result adversarial" `Quick
            test_json_parse_result_adversarial;
          QCheck_alcotest.to_alcotest prop_json_parse_result_roundtrip;
        ] );
      ( "witness",
        [
          Alcotest.test_case "round trip" `Quick test_witness_roundtrip;
          Alcotest.test_case "future format rejected" `Quick
            test_witness_rejects_future_format;
          QCheck_alcotest.to_alcotest prop_witness_roundtrip;
        ] );
      ( "capture-replay",
        [
          Alcotest.test_case "racy counter (dpor)" `Quick
            (test_capture_replay_racy Cas_mc.Engine.Dpor);
          Alcotest.test_case "racy counter (naive)" `Quick
            (test_capture_replay_racy Cas_mc.Engine.Naive);
          Alcotest.test_case "observer (naive)" `Quick
            test_capture_replay_observer;
          Alcotest.test_case "DRF program captures nothing" `Quick
            test_capture_drf_program;
          Alcotest.test_case "tampered witness rejected" `Quick
            test_replay_detects_tampering;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "dpor vs dpor-par witness" `Quick
            test_witness_deterministic_across_engines;
          Alcotest.test_case "re-capture identical" `Quick
            test_capture_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "verdict preserved" `Quick
            test_shrink_preserves_verdict;
          Alcotest.test_case "padding dropped" `Quick test_shrink_drops_padding;
        ] );
      ( "tso",
        [
          Alcotest.test_case "refinement schedule" `Quick
            test_tso_refine_capture_and_replay;
          Alcotest.test_case "abort schedule" `Quick
            test_tso_abort_capture_and_replay;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace" `Quick
            test_chrome_export_wellformed;
          Alcotest.test_case "explain" `Quick test_explain_renders;
        ] );
    ]
