(** casc — the CASCompCert command-line driver.

    Subcommands:
    - [compile FILE]: compile a mini-C module, print requested IRs;
    - [run FILE --entry f [--entry g] [--lock]]: run a program under the
      preemptive SC semantics (entries become threads; [--lock] links the
      γ_lock object so clients can call lock/unlock);
    - [drf FILE ...]: run the race predictor;
    - [check FILE ...]: execute the full Fig. 2 framework pipeline;
    - [sim FILE --entry f]: per-pass footprint-preserving simulation;
    - [tso FILE ...]: compile and run against the TTAS spin lock on the
      x86-TSO machine, and check the strengthened DRF-guarantee. *)

open Cmdliner
open Cas_base
open Cas_langs
open Cas_conc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_client path =
  try Ok (Parse.clight (read_file path)) with
  | Lexer.Error (msg, pos) ->
    Error (Fmt.str "%s: %s at %a" path msg Lexer.pp_pos pos)
  | Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Arguments                                                            *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"mini-C source file")

let entries_arg =
  Arg.(
    value
    & opt_all string [ "main" ]
    & info [ "e"; "entry" ] ~docv:"FUNC"
        ~doc:"entry function; repeat to spawn several threads")

let with_lock_arg =
  Arg.(
    value & flag
    & info [ "lock" ] ~doc:"link the CImp lock object (lock/unlock callable)")

let engine_arg =
  let engine_conv =
    Arg.enum (List.map (fun e -> (Engine.to_string e, e)) Engine.all)
  in
  Arg.(
    value
    & opt engine_conv Engine.Naive
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "exploration engine: $(b,naive) (exhaustive BFS/DFS, the oracle), \
           $(b,dpor) (footprint-guided dynamic partial-order reduction), or \
           $(b,dpor-par) (DPOR with root branches on parallel domains)")

(* shared by [drf]/[tso] (dpor-par workers) and [compile] (parallel
   per-module builds): a jobs count below 1 is a hard error, not a
   silent fallback *)
let jobs_conv : int Arg.conv =
  let parse s =
    match int_of_string_opt s with
    | None ->
      Error (`Msg (Fmt.str "invalid jobs count %S (expected an integer)" s))
    | Some n when n < 1 ->
      Error (`Msg (Fmt.str "jobs count must be at least 1, got %d" n))
    | Some n -> Ok n
  in
  Arg.conv (parse, Fmt.int)

let jobs_arg =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "worker domains: for $(b,dpor-par) exploration (default: cores - \
           1) and for $(b,compile) per-module builds (default: 1); must be \
           at least 1")

let ir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ir" ] ~docv:"STAGE"
        ~doc:"print this IR: clight, csharpminor, cminor, rtl, ltl, linear, \
              mach, asm (default: asm)")

(* ------------------------------------------------------------------ *)
(* compile                                                              *)
(* ------------------------------------------------------------------ *)

let print_ir (a : Cas_compiler.Driver.artifacts) ir =
  let open Cas_compiler.Driver in
  match Option.value ~default:"asm" ir with
      | "clight" ->
        List.iter
          (fun f -> Fmt.pr "%s:@.  %a@." f.Clight.fname Clight.pp_stmt f.Clight.fbody)
          a.clight_simpl.Clight.funcs
      | "csharpminor" ->
        List.iter
          (fun f ->
            Fmt.pr "%s:@.  %a@." f.Csharpminor.fname Csharpminor.pp_stmt
              f.Csharpminor.fbody)
          a.csharpminor.Csharpminor.funcs
      | "cminor" ->
        List.iter
          (fun f ->
            Fmt.pr "%s (stack %d):@.  %a@." f.Cminor.fname f.Cminor.stacksize
              Cminor.pp_stmt f.Cminor.fbody)
          a.cminorsel.Cminor.funcs
      | "rtl" -> Fmt.pr "%a@." Fmt.(list ~sep:cut Rtl.pp_func) a.rtl_cse.Rtl.funcs
      | "ltl" ->
        Fmt.pr "%a@." Fmt.(list ~sep:cut Ltl.pp_func) a.ltl_tunneled.Ltl.funcs
      | "linear" ->
        Fmt.pr "%a@."
          Fmt.(list ~sep:cut Linearl.pp_func)
          a.linear_clean.Linearl.funcs
      | "mach" ->
        Fmt.pr "%a@." Fmt.(list ~sep:cut Machl.pp_func) a.mach.Machl.funcs
      | "asm" | _ ->
    Fmt.pr "%a@." Fmt.(list ~sep:cut Asm.pp_func) a.asm.Asm.funcs

let compile_cmd =
  let run files ir stats jobs certify cache_dir no_cache =
    let jobs = Option.value ~default:1 jobs in
    let use_cache = not no_cache in
    if use_cache then Cas_compiler.Cache.set_default_dir (Some cache_dir);
    let parsed = List.map (fun f -> (f, parse_client f)) files in
    match
      List.filter_map
        (function f, Error e -> Some (f, e) | _, Ok _ -> None)
        parsed
    with
    | (_, e) :: _ ->
      Fmt.epr "error: %s@." e;
      1
    | [] ->
      let units =
        List.filter_map
          (function f, Ok c -> Some (f, c) | _, Error _ -> None)
          parsed
      in
      let results =
        Cas_compiler.Driver.compile_all ~cache:use_cache ~jobs
          (List.map snd units)
      in
      let all_sim_ok = ref true in
      List.iter2
        (fun (file, client) (c : Cas_compiler.Driver.compiled) ->
          if stats then begin
            Fmt.pr "@[<v>unit %s:@,  source unit context %s@,  asm output    \
                    hash %s@]@."
              file c.Cas_compiler.Driver.c_context
              c.Cas_compiler.Driver.c_asm_digest;
            List.iter
              (fun st ->
                Fmt.pr "  %a@." Cas_compiler.Driver.pp_pass_stat st)
              c.Cas_compiler.Driver.c_stats
          end;
          if certify then begin
            let reports = Cascompcert.Framework.check_passes client in
            let steps =
              List.fold_left
                (fun acc r -> acc + r.Cascompcert.Framework.checker_steps)
                0 reports
            in
            let cached =
              List.length
                (List.filter (fun r -> r.Cascompcert.Framework.cached) reports)
            in
            List.iter
              (fun r ->
                if not (Cascompcert.Framework.sim_ok
                          r.Cascompcert.Framework.outcome)
                then all_sim_ok := false;
                Fmt.pr "  %a@." Cascompcert.Framework.pp_pass_sim r)
              reports;
            Fmt.pr
              "  certificates: %d/%d verdicts from cache, %d checker steps \
               executed@."
              cached (List.length reports) steps
          end;
          if ir <> None || not (stats || certify) then
            print_ir
              (Cas_compiler.Driver.compile_artifacts ~cache:use_cache client)
              ir)
        units results;
      if stats then begin
        let hits, misses =
          List.fold_left
            (fun (h, m) (s : Cas_compiler.Cache.stats) ->
              (h + s.Cas_compiler.Cache.hits, m + s.Cas_compiler.Cache.misses))
            (0, 0)
            (Cas_compiler.Driver.cache_stats ())
        in
        Fmt.pr "certificate cache: %d hits, %d misses%s@." hits misses
          (if use_cache then " (dir: " ^ cache_dir ^ ")" else " (disabled)")
      end;
      if !all_sim_ok then 0 else 2
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:"mini-C source files (one compilation unit each)")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "print per-pass wall-clock timings, cache hit/miss outcomes and \
             content hashes instead of the IR")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "also run (or fetch from the certificate cache) the per-pass \
             footprint-preserving simulation verdicts")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string ".casc-cache"
      & info [ "cache" ] ~docv:"DIR"
          ~doc:"certificate-cache directory (persists across invocations)")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"disable the certificate cache entirely")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "compile mini-C modules separately (content-addressed cache, \
          parallel with --jobs) and print an IR or --stats")
    Term.(
      const run $ files_arg $ ir_arg $ stats_arg $ jobs_arg $ certify_arg
      $ cache_dir_arg $ no_cache_arg)

(* ------------------------------------------------------------------ *)
(* run / drf                                                            *)
(* ------------------------------------------------------------------ *)

let build_prog client ~with_lock ~entries ~compiled =
  let client_mod =
    if compiled then Lang.Mod (Asm.lang, Cas_compiler.Driver.compile client)
    else Lang.Mod (Clight.lang, client)
  in
  let mods =
    if with_lock then [ client_mod; Lang.Mod (Cimp.lang, Cimp.gamma_lock ()) ]
    else [ client_mod ]
  in
  Lang.prog mods entries

let run_cmd =
  let run file entries with_lock compiled =
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client -> (
      let p = build_prog client ~with_lock ~entries ~compiled in
      match World.load p ~args:[] with
      | Error e ->
        Fmt.epr "load error: %a@." World.pp_load_error e;
        1
      | Ok w ->
        let tr = Explore.traces Preemptive.steps (Gsem.initials w) in
        Fmt.pr "observable traces (%s):@.%a@."
          (if tr.Explore.complete then "complete" else "bounded")
          Explore.TraceSet.pp tr.Explore.traces;
        0)
  in
  let compiled_arg =
    Arg.(value & flag & info [ "compiled" ] ~doc:"run the compiled x86 instead")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"run threads under the preemptive SC semantics")
    Term.(const run $ file_arg $ entries_arg $ with_lock_arg $ compiled_arg)

let drf_cmd =
  let run file entries with_lock engine jobs =
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client -> (
      let p = build_prog client ~with_lock ~entries ~compiled:false in
      match World.load p ~args:[] with
      | Error e ->
        Fmt.epr "load error: %a@." World.pp_load_error e;
        1
      | Ok w ->
        let r = Race.drf ~engine ?jobs w in
        Fmt.pr "%a@." Race.pp_drf_report r;
        Option.iter
          (fun st -> Fmt.pr "engine: %a@." Cas_mc.Stats.pp st)
          r.Race.engine_stats;
        if r.Race.drf then 0 else 2)
  in
  Cmd.v
    (Cmd.info "drf" ~doc:"exhaustive data-race detection (Fig. 9)")
    Term.(const run $ file_arg $ entries_arg $ with_lock_arg $ engine_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* check / sim / tso                                                    *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let run file entries with_lock =
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client ->
      let input =
        {
          Cascompcert.Framework.name = Filename.basename file;
          clients = [ client ];
          objects = (if with_lock then [ Cimp.gamma_lock () ] else []);
          entries;
        }
      in
      let r = Cascompcert.Framework.check_fig2 input in
      Fmt.pr "%a@." Cascompcert.Framework.pp_run r;
      if r.Cascompcert.Framework.all_ok then 0 else 2
  in
  Cmd.v
    (Cmd.info "check" ~doc:"run the full Fig. 2 framework pipeline")
    Term.(const run $ file_arg $ entries_arg $ with_lock_arg)

let sim_cmd =
  let run file =
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client ->
      let reports = Cascompcert.Framework.check_passes client in
      List.iter (fun r -> Fmt.pr "%a@." Cascompcert.Framework.pp_pass_sim r) reports;
      if List.for_all (fun r -> Cascompcert.Framework.sim_ok r.Cascompcert.Framework.outcome) reports
      then 0
      else 2
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"check the footprint-preserving simulation for every pass")
    Term.(const run $ file_arg)

let tso_cmd =
  let run file entries engine jobs =
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client -> (
      let asm = Cas_compiler.Driver.compile client in
      match Cas_tso.Tso.load [ asm; Cas_tso.Locks.pi_lock ] entries with
      | Error e ->
        Fmt.epr "load error: %a@." World.pp_load_error e;
        1
      | Ok w ->
        let tr, st = Cas_tso.Tso.mc_traces ~engine ?jobs w in
        Fmt.pr "x86-TSO traces (with the TTAS spin lock):@.%a@."
          Explore.TraceSet.pp tr.Explore.traces;
        if engine <> Engine.Naive then Fmt.pr "engine: %a@." Cas_mc.Stats.pp st;
        let g =
          Cas_tso.Objsim.check_drf_guarantee ~engine ?jobs ~clients:[ asm ]
            ~pi:Cas_tso.Locks.pi_lock ~gamma:(Cimp.gamma_lock ()) ~entries ()
        in
        Fmt.pr "Lemma 16: %a@." Cas_tso.Objsim.pp_guarantee g;
        if g.Cas_tso.Objsim.holds then 0 else 2)
  in
  Cmd.v
    (Cmd.info "tso"
       ~doc:"run compiled code against the TTAS lock on the x86-TSO machine")
    Term.(const run $ file_arg $ entries_arg $ engine_arg $ jobs_arg)

let () =
  let doc = "certified-separate-compilation playground (CASCompCert reproduction)" in
  let info = Cmd.info "casc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ compile_cmd; run_cmd; drf_cmd; check_cmd; sim_cmd; tso_cmd ]))
