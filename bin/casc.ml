(** casc — the CASCompCert command-line driver.

    Subcommands:
    - [compile FILE]: compile a mini-C module, print requested IRs;
    - [build FILE -o M.cao]: compile one module into a certified object
      file — code, symbol tables, and the digest-chained certificate of
      its per-pass simulations ([Cas_link.Objfile]);
    - [link M.cao N.cao -o prog.cai [--certify] [--jobs N]]: resolve
      symbols and link certified objects into an image, composing the
      per-module certificates by checking the linking lemma's premises
      (Lem. 6); incremental — unchanged objects re-certify from cache;
    - [run FILE --entry f [--entry g] [--lock]]: run a program under the
      preemptive SC semantics (entries become threads; [--lock] links the
      γ_lock object so clients can call lock/unlock);
    - [drf FILE ...]: run the race predictor (FILE may be a linked
      [.cai] image);
    - [check FILE ...]: execute the full Fig. 2 framework pipeline;
    - [sim FILE --entry f]: per-pass footprint-preserving simulation;
    - [tso FILE ...]: compile and run against the TTAS spin lock on the
      x86-TSO machine, and check the strengthened DRF-guarantee;
    - [repro FILE --out W.json]: capture a counterexample schedule as a
      self-contained witness file ([Cas_diag]);
    - [replay W.json [--shrink] [--trace T.json]]: deterministically
      re-execute a witness, optionally minimizing it and exporting a
      Chrome/Perfetto trace;
    - [fuzz --seed S --count N]: generate random programs and run them
      through the differential oracles, bucketing outcomes into a triage
      report and back-translating divergences into minimal CImp repros;
    - [explain W.json]: render a witness interleaving for humans.

    [drf] and [tso] also take [--witness FILE] to capture on failure. *)

open Cmdliner
open Cas_base
open Cas_langs
open Cas_conc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_client path =
  try Ok (Parse.clight (read_file path)) with
  | Lexer.Error (msg, pos) ->
    Error (Fmt.str "%s: %s at %a" path msg Lexer.pp_pos pos)
  | Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Arguments                                                            *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"mini-C source file")

let entries_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "e"; "entry" ] ~docv:"FUNC"
        ~doc:
          "entry function; repeat to spawn several threads (default: main, \
           or the recorded entry points when FILE is a linked .cai image)")

(* [] means --entry was not given; plain source files default to main.
   Linked images instead fall back to their recorded entries
   ([image_entries] below) — an explicit --entry main must override
   those, so the default cannot live in the Arg. *)
let default_entries = function [] -> [ "main" ] | es -> es

let with_lock_arg =
  Arg.(
    value & flag
    & info [ "lock" ] ~doc:"link the CImp lock object (lock/unlock callable)")

let engine_arg =
  let engine_conv =
    Arg.enum (List.map (fun e -> (Engine.to_string e, e)) Engine.all)
  in
  Arg.(
    value
    & opt engine_conv Engine.Naive
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "exploration engine: $(b,naive) (exhaustive BFS/DFS, the oracle), \
           $(b,dpor) (footprint-guided dynamic partial-order reduction), or \
           $(b,dpor-par) (DPOR with root branches on parallel domains)")

(* shared by [drf]/[tso] (dpor-par workers) and [compile] (parallel
   per-module builds): a jobs count below 1 is a hard error, not a
   silent fallback *)
let jobs_conv : int Arg.conv =
  let parse s =
    match int_of_string_opt s with
    | None ->
      Error (`Msg (Fmt.str "invalid jobs count %S (expected an integer)" s))
    | Some n when n < 1 ->
      Error (`Msg (Fmt.str "jobs count must be at least 1, got %d" n))
    | Some n -> Ok n
  in
  Arg.conv (parse, Fmt.int)

let jobs_arg =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "worker domains: for $(b,dpor-par) exploration (default: cores - \
           1) and for $(b,compile) per-module builds (default: 1); must be \
           at least 1")

(* oversubscribing --jobs is never an error (the schedulers are
   correct at any count) but it is never what the user wants either:
   extra domains contend on the deques and the canonical store instead
   of exploring.  Warn once, on stderr, and keep the requested count. *)
let validate_jobs (jobs : int option) : int option =
  Option.iter
    (fun j ->
      let cores = Domain.recommended_domain_count () in
      if j > cores then
        Fmt.epr
          "warning: --jobs %d exceeds the %d core%s available; extra domains \
           contend rather than explore@."
          j cores
          (if cores = 1 then "" else "s"))
    jobs;
  jobs

let paranoid_arg =
  Arg.(
    value & flag
    & info [ "paranoid-fp" ]
        ~doc:
          "key explored states by their full fingerprint strings instead of \
           the fixed-width hash keys (slower; empirically rules out hash \
           collisions — verdicts and world counts must not change); with \
           $(b,compile --certify) or $(b,sim), additionally audit every \
           core the simulation checker visits, at every pipeline stage, by \
           cross-checking its streamed hash against its fingerprint string")

let witness_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "witness" ] ~docv:"FILE"
        ~doc:"on a negative verdict, write a replayable witness here")

let ir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ir" ] ~docv:"STAGE"
        ~doc:"print this IR: clight, csharpminor, cminor, rtl, ltl, linear, \
              mach, asm (default: asm)")

(* ------------------------------------------------------------------ *)
(* compile                                                              *)
(* ------------------------------------------------------------------ *)

let print_ir (a : Cas_compiler.Driver.artifacts) ir =
  let open Cas_compiler.Driver in
  match Option.value ~default:"asm" ir with
      | "clight" ->
        List.iter
          (fun f -> Fmt.pr "%s:@.  %a@." f.Clight.fname Clight.pp_stmt f.Clight.fbody)
          a.clight_simpl.Clight.funcs
      | "csharpminor" ->
        List.iter
          (fun f ->
            Fmt.pr "%s:@.  %a@." f.Csharpminor.fname Csharpminor.pp_stmt
              f.Csharpminor.fbody)
          a.csharpminor.Csharpminor.funcs
      | "cminor" ->
        List.iter
          (fun f ->
            Fmt.pr "%s (stack %d):@.  %a@." f.Cminor.fname f.Cminor.stacksize
              Cminor.pp_stmt f.Cminor.fbody)
          a.cminorsel.Cminor.funcs
      | "rtl" -> Fmt.pr "%a@." Fmt.(list ~sep:cut Rtl.pp_func) a.rtl_cse.Rtl.funcs
      | "ltl" ->
        Fmt.pr "%a@." Fmt.(list ~sep:cut Ltl.pp_func) a.ltl_tunneled.Ltl.funcs
      | "linear" ->
        Fmt.pr "%a@."
          Fmt.(list ~sep:cut Linearl.pp_func)
          a.linear_clean.Linearl.funcs
      | "mach" ->
        Fmt.pr "%a@." Fmt.(list ~sep:cut Machl.pp_func) a.mach.Machl.funcs
      | "asm" | _ ->
    Fmt.pr "%a@." Fmt.(list ~sep:cut Asm.pp_func) a.asm.Asm.funcs

let per_function_counts = Cascompcert.Framework.per_function_counts

let compile_cmd =
  let run files ir stats json jobs certify cache_dir no_cache paranoid =
    Fpmode.set_paranoid paranoid;
    let jobs = Option.value ~default:1 jobs in
    let use_cache = not no_cache in
    if use_cache then Cas_compiler.Cache.set_default_dir (Some cache_dir);
    let parsed = List.map (fun f -> (f, parse_client f)) files in
    match
      List.filter_map
        (function f, Error e -> Some (f, e) | _, Ok _ -> None)
        parsed
    with
    | (_, e) :: _ ->
      Fmt.epr "error: %s@." e;
      1
    | [] ->
      let units =
        List.filter_map
          (function f, Ok c -> Some (f, c) | _, Error _ -> None)
          parsed
      in
      (* linking the units later would shadow one definition silently, so
         a cross-unit duplicate is a hard error here, with both files
         named (the same check the linker does on .cao exports) *)
      let duplicate =
        let seen = Hashtbl.create 16 in
        List.fold_left
          (fun acc (file, c) ->
            List.fold_left
              (fun acc (name, _) ->
                match Hashtbl.find_opt seen name with
                | Some first -> (
                  match acc with
                  | None -> Some (name, first, file)
                  | some -> some)
                | None ->
                  Hashtbl.add seen name file;
                  acc)
              acc
              (Lang.defs (Lang.Mod (Clight.lang, c))))
          None units
      in
      match duplicate with
      | Some (sym, file1, file2) ->
        Fmt.epr "error: duplicate definition of %s: defined by both %s and %s@."
          sym file1 file2;
        1
      | None ->
      let results =
        Cas_compiler.Driver.compile_all ~cache:use_cache ~jobs
          (List.map snd units)
      in
      let all_sim_ok = ref true in
      let json_units = ref [] in
      List.iter2
        (fun (file, client) (c : Cas_compiler.Driver.compiled) ->
          if stats then begin
            Fmt.pr "@[<v>unit %s:@,  source unit context %s@,  asm output    \
                    hash %s@]@."
              file c.Cas_compiler.Driver.c_context
              c.Cas_compiler.Driver.c_asm_digest;
            List.iter
              (fun st ->
                Fmt.pr "  %a@." Cas_compiler.Driver.pp_pass_stat st)
              c.Cas_compiler.Driver.c_stats
          end;
          if certify then begin
            let reports = Cascompcert.Framework.check_passes client in
            let steps =
              List.fold_left
                (fun acc r -> acc + r.Cascompcert.Framework.checker_steps)
                0 reports
            in
            let cached =
              List.length
                (List.filter (fun r -> r.Cascompcert.Framework.cached) reports)
            in
            List.iter
              (fun r ->
                if not (Cascompcert.Framework.sim_ok
                          r.Cascompcert.Framework.outcome)
                then all_sim_ok := false;
                Fmt.pr "  %a@." Cascompcert.Framework.pp_pass_sim r)
              reports;
            let fns = per_function_counts reports in
            if stats then
              List.iter
                (fun (fn, (v, hits, s)) ->
                  Fmt.pr "  function %-12s %d/%d verdicts cached, %d checker \
                          steps@."
                    fn hits v s)
                fns;
            if json then
              json_units :=
                Fmt.str {|{"file":%S,"functions":[%s]}|} file
                  (String.concat ","
                     (List.map
                        (fun (fn, (v, hits, s)) ->
                          Fmt.str
                            {|{"name":%S,"verdicts":%d,"cached":%d,"steps":%d}|}
                            fn v hits s)
                        fns))
                :: !json_units;
            Fmt.pr
              "  certificates: %d/%d verdicts from cache, %d checker steps \
               executed@."
              cached (List.length reports) steps
          end;
          if ir <> None || not (stats || certify || json) then
            print_ir
              (Cas_compiler.Driver.compile_artifacts ~cache:use_cache client)
              ir)
        units results;
      if json then
        Fmt.pr {|{"units":[%s]}|} (String.concat "," (List.rev !json_units));
      if json then Fmt.pr "@.";
      if paranoid then begin
        match Lang.audit_collisions () with
        | [] -> Fmt.pr "paranoid-fp: no hash collisions observed@."
        | (a, b) :: _ as l ->
          Fmt.epr
            "paranoid-fp: %d hash collision%s detected, e.g. %S vs %S@."
            (List.length l)
            (if List.length l = 1 then "" else "s")
            a b;
          all_sim_ok := false
      end;
      if stats then begin
        let hits, misses =
          List.fold_left
            (fun (h, m) (s : Cas_compiler.Cache.stats) ->
              (h + s.Cas_compiler.Cache.hits, m + s.Cas_compiler.Cache.misses))
            (0, 0)
            (Cas_compiler.Driver.cache_stats ())
        in
        Fmt.pr "certificate cache: %d hits, %d misses%s@." hits misses
          (if use_cache then " (dir: " ^ cache_dir ^ ")" else " (disabled)")
      end;
      if !all_sim_ok then 0 else 2
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:"mini-C source files (one compilation unit each)")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "print per-pass wall-clock timings, cache hit/miss outcomes and \
             content hashes instead of the IR")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "also run (or fetch from the certificate cache) the per-pass \
             footprint-preserving simulation verdicts")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string ".casc-cache"
      & info [ "cache" ] ~docv:"DIR"
          ~doc:"certificate-cache directory (persists across invocations)")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"disable the certificate cache entirely")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "with --certify, also emit one machine-readable JSON line with \
             per-function verdict/cache-hit/checker-step counts")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "compile mini-C modules separately (content-addressed cache, \
          parallel with --jobs) and print an IR or --stats")
    Term.(
      const run $ files_arg $ ir_arg $ stats_arg $ json_arg $ jobs_arg
      $ certify_arg $ cache_dir_arg $ no_cache_arg $ paranoid_arg)

(* ------------------------------------------------------------------ *)
(* build / link (certified object files, Cas_link)                      *)
(* ------------------------------------------------------------------ *)

let cache_dir_arg =
  Arg.(
    value
    & opt string ".casc-cache"
    & info [ "cache" ] ~docv:"DIR"
        ~doc:"certificate-cache directory (persists across invocations)")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"disable the certificate cache entirely")

let build_cmd =
  let run file out name no_opt cache_dir no_cache =
    let use_cache = not no_cache in
    if use_cache then Cas_compiler.Cache.set_default_dir (Some cache_dir);
    let name =
      match name with
      | Some n -> n
      | None -> Filename.remove_extension (Filename.basename file)
    in
    let out =
      Option.value ~default:(name ^ Cas_link.Objfile.extension) out
    in
    match read_file file with
    | exception Sys_error e ->
      Fmt.epr "error: %s@." e;
      1
    | source -> (
      let options = { Cas_compiler.Pass.optimize = not no_opt } in
      match
        Cas_link.Objfile.build ~options ~cache:use_cache ~name ~source ()
      with
      | Error e ->
        Fmt.epr "error: %a@." Fmt.lines e;
        2
      | Ok o ->
        Cas_link.Objfile.save o ~file:out;
        Fmt.pr "%s: %d export%s, %d import%s, %d verdicts, body %s@." out
          (List.length o.Cas_link.Objfile.o_exports)
          (if List.length o.Cas_link.Objfile.o_exports = 1 then "" else "s")
          (List.length o.Cas_link.Objfile.o_imports)
          (if List.length o.Cas_link.Objfile.o_imports = 1 then "" else "s")
          (List.length o.Cas_link.Objfile.o_cert.Cas_link.Cert.verdicts)
          o.Cas_link.Objfile.o_body_digest;
        0)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"output object file (default: $(i,MODULE).cao)")
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"MODULE"
          ~doc:"module name recorded in the object (default: FILE basename)")
  in
  let no_opt_arg =
    Arg.(
      value & flag
      & info [ "no-opt" ] ~doc:"disable the optional optimization passes")
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "compile one mini-C module into a certified object file (.cao): \
          code, symbol tables, and the digest-chained certificate of its \
          per-pass footprint-preserving simulations")
    Term.(
      const run $ file_arg $ out_arg $ name_arg $ no_opt_arg $ cache_dir_arg
      $ no_cache_arg)

let link_cmd =
  let run objs out entries certify jobs stats cache_dir no_cache =
    let entries = default_entries entries in
    let use_cache = not no_cache in
    if use_cache then Cas_compiler.Cache.set_default_dir (Some cache_dir);
    let jobs = Option.value ~default:1 jobs in
    match Cas_link.Linker.link_files ~jobs ~certify ~entries objs with
    | Error (Cas_link.Linker.Certify_failed _ as e) ->
      Fmt.epr "error: %a@." Cas_link.Linker.pp_error e;
      2
    | Error e ->
      Fmt.epr "error: %a@." Cas_link.Linker.pp_error e;
      1
    | Ok o ->
      Cas_link.Image.save o.Cas_link.Linker.lk_image ~file:out;
      Option.iter
        (fun r -> Fmt.pr "%a@." Cascompcert.Framework.pp_compose r)
        o.Cas_link.Linker.lk_compose;
      if stats then begin
        Fmt.pr "link: %a@." Cas_link.Linker.pp_stats
          o.Cas_link.Linker.lk_stats;
        Option.iter
          (fun (r : Cascompcert.Framework.compose_report) ->
            List.iter
              (fun (m : Cascompcert.Framework.compose_module_report) ->
                Fmt.pr "  function %s.%-12s %s, %d checker steps@."
                  m.Cascompcert.Framework.cm_module
                  m.Cascompcert.Framework.cm_entry
                  (if m.Cascompcert.Framework.cm_cached then "hit" else "miss")
                  m.Cascompcert.Framework.cm_steps)
              r.Cascompcert.Framework.comp_modules)
          o.Cas_link.Linker.lk_compose;
        List.iter
          (fun s -> Fmt.pr "  %a@." Cas_compiler.Cache.pp_stats s)
          (Cas_compiler.Cache.global_stats ())
      end;
      Fmt.pr "wrote %s (image %s%s)@." out
        o.Cas_link.Linker.lk_image.Cas_link.Image.i_digest
        (if o.Cas_link.Linker.lk_image.Cas_link.Image.i_certified then
           ", certified"
         else "");
      0
  in
  let objs_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"OBJ" ~doc:"certified object files (.cao)")
  in
  let out_arg =
    Arg.(
      value
      & opt string ("prog" ^ Cas_link.Image.extension)
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"output image file")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "compose the per-module certificates into a whole-program \
             certificate: re-validate each module's simulation (cached by \
             object digest), check footprint confinement to freelists, and \
             co-execute the linked source and target at the boundary \
             (Lem. 6)")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"print linker and certificate-cache statistics")
  in
  Cmd.v
    (Cmd.info "link"
       ~doc:
         "resolve symbols across certified objects and link them into an \
          image (.cai), optionally composing their certificates")
    Term.(
      const run $ objs_arg $ out_arg $ entries_arg $ certify_arg $ jobs_arg
      $ stats_arg $ cache_dir_arg $ no_cache_arg)

(* A file argument that may be a linked image instead of source. *)
let is_image file = Filename.check_suffix file Cas_link.Image.extension

(** Entry points for a linked image: the user's explicit [--entry]s win
    (even an explicit [--entry main]); with none given, the entries
    recorded at link time, then ["main"]. *)
let image_entries (img : Cas_link.Image.t) = function
  | [] ->
    if img.Cas_link.Image.i_entries <> [] then img.Cas_link.Image.i_entries
    else [ "main" ]
  | es -> es

(** The program of a linked image, with [entries] defaulting as
    [image_entries] does. *)
let image_prog (img : Cas_link.Image.t) ~entries ~with_lock =
  let entries = image_entries img entries in
  let mods =
    List.map
      (fun (m : Cas_link.Image.linked_module) ->
        Lang.Mod (Asm.lang, m.Cas_link.Image.lm_asm))
      img.Cas_link.Image.i_modules
  in
  let mods =
    if with_lock then mods @ [ Lang.Mod (Cimp.lang, Cimp.gamma_lock ()) ]
    else mods
  in
  (Lang.prog mods entries, entries)

(* ------------------------------------------------------------------ *)
(* run / drf                                                            *)
(* ------------------------------------------------------------------ *)

let build_prog client ~with_lock ~entries ~compiled =
  let client_mod =
    if compiled then Lang.Mod (Asm.lang, Cas_compiler.Driver.compile client)
    else Lang.Mod (Clight.lang, client)
  in
  let mods =
    if with_lock then [ client_mod; Lang.Mod (Cimp.lang, Cimp.gamma_lock ()) ]
    else [ client_mod ]
  in
  Lang.prog mods entries

(* ------------------------------------------------------------------ *)
(* Witness plumbing (Cas_diag)                                          *)
(* ------------------------------------------------------------------ *)

let parse_source src =
  try Ok (Parse.clight src) with
  | Lexer.Error (msg, pos) ->
    Error (Fmt.str "embedded program: %s at %a" msg Lexer.pp_pos pos)

(** Rebuild the replayable semantics a witness was captured against,
    entirely from the witness (the program source is embedded). *)
let sem_of_witness (w : Cas_diag.Witness.t) :
    (Cas_diag.Sem.state, string) result =
  match parse_source w.Cas_diag.Witness.program with
  | Error e -> Error e
  | Ok client -> (
    match w.Cas_diag.Witness.semantics with
    | Cas_diag.Witness.Sc -> (
      let p =
        build_prog client ~with_lock:w.Cas_diag.Witness.with_lock
          ~entries:w.Cas_diag.Witness.entries ~compiled:false
      in
      match World.load p ~args:[] with
      | Error e -> Error (Fmt.str "load: %a" World.pp_load_error e)
      | Ok w0 -> Ok (Cas_diag.Sem.of_world w0))
    | Cas_diag.Witness.Tso -> (
      let asm = Cas_compiler.Driver.compile client in
      match
        Cas_tso.Tso.load
          [ asm; Cas_tso.Locks.pi_lock ]
          w.Cas_diag.Witness.entries
      with
      | Error e -> Error (Fmt.str "TSO load: %a" World.pp_load_error e)
      | Ok w0 -> Ok (Cas_diag.Sem.of_tso w0)))

let save_witness (w : Cas_diag.Witness.t) ~file =
  Cas_diag.Witness.save w ~file;
  Fmt.pr "witness written to %s (%a)@." file Cas_diag.Witness.pp w

(** Capture a TSO counterexample on the loaded machine [w0]: a schedule
    realizing an unmatched completed trace of the failed guarantee check,
    falling back to a schedule reaching an abort. *)
let capture_tso_failure w0 (g : Cas_tso.Objsim.guarantee_report) :
    (Cas_diag.Witness.verdict * Cas_diag.Witness.step list) option =
  let s0 = Cas_diag.Sem.of_tso w0 in
  let missing_done =
    List.filter (fun (_, st) -> st = Explore.SDone) g.Cas_tso.Objsim.missing
  in
  match
    List.find_map
      (fun (es, _) ->
        Option.map
          (fun steps -> (Cas_diag.Witness.Vrefine es, steps))
          (Cas_diag.Capture.schedule_for_events s0 ~events:es ()))
      missing_done
  with
  | Some r -> Some r
  | None ->
    Option.map
      (fun steps -> (Cas_diag.Witness.Vabort, steps))
      (Cas_diag.Capture.schedule_to_abort s0 ())

let run_cmd =
  let run file entries with_lock compiled =
    let entries = default_entries entries in
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client -> (
      let p = build_prog client ~with_lock ~entries ~compiled in
      match World.load p ~args:[] with
      | Error e ->
        Fmt.epr "load error: %a@." World.pp_load_error e;
        1
      | Ok w ->
        let tr = Explore.traces Preemptive.steps (Gsem.initials w) in
        Fmt.pr "observable traces (%s):@.%a@."
          (if tr.Explore.complete then "complete" else "bounded")
          Explore.TraceSet.pp tr.Explore.traces;
        0)
  in
  let compiled_arg =
    Arg.(value & flag & info [ "compiled" ] ~doc:"run the compiled x86 instead")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"run threads under the preemptive SC semantics")
    Term.(const run $ file_arg $ entries_arg $ with_lock_arg $ compiled_arg)

let drf_cmd =
  (* --json emits only the steal-invariant facts of a run: verdict,
     engine, distinct-world count, and the canonical (minimal-key)
     witness.  Steal counts and wall time are deliberately absent —
     three runs of [casc drf --json] at any jobs count must be
     byte-identical, and CI holds us to that. *)
  let drf_json ~engine (r : Race.drf_report) : Cas_diag.Json.t =
    let open Cas_diag.Json in
    let worlds, engine_s =
      match r.Race.engine_stats with
      | Some st -> (st.Cas_mc.Stats.worlds, st.Cas_mc.Stats.engine)
      | None -> (r.Race.stats.Explore.visited, Engine.to_string engine)
    in
    let witness =
      match (r.Race.witness_world, r.Race.witness) with
      | Some w, Some wt -> Str (Race.witness_key w wt)
      | _ -> Null
    in
    Obj
      [
        ("drf", Bool r.Race.drf);
        ("engine", Str engine_s);
        ("worlds", Int worlds);
        ("witness", witness);
      ]
  in
  let drf_json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "print the verdict as a JSON object of steal-invariant fields \
             (drf, engine, worlds, witness key) instead of the human \
             report; byte-identical across runs at any $(b,--jobs) count")
  in
  let run file entries with_lock engine jobs json witness paranoid =
    Fpmode.set_paranoid paranoid;
    let jobs = validate_jobs jobs in
    let emit r =
      if json then
        Fmt.pr "%s@." (Cas_diag.Json.to_string (drf_json ~engine r))
      else begin
        Fmt.pr "%a@." Race.pp_drf_report r;
        Option.iter
          (fun st -> Fmt.pr "engine: %a@." Cas_mc.Stats.pp st)
          r.Race.engine_stats
      end;
      if r.Race.drf then 0 else 2
    in
    if is_image file then
      match Cas_link.Image.load ~file with
      | Error e ->
        Fmt.epr "error: %s: %s@." file e;
        1
      | Ok img -> (
        if witness <> None then
          Fmt.epr
            "warning: witness capture needs the source program and is not \
             supported for linked images@.";
        let p, _ = image_prog img ~entries ~with_lock in
        match World.load p ~args:[] with
        | Error e ->
          Fmt.epr "load error: %a@." World.pp_load_error e;
          1
        | Ok w -> emit (Race.drf ~engine ?jobs w))
    else
    let entries = default_entries entries in
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client -> (
      let p = build_prog client ~with_lock ~entries ~compiled:false in
      match World.load p ~args:[] with
      | Error e ->
        Fmt.epr "load error: %a@." World.pp_load_error e;
        1
      | Ok w ->
        let r =
          match witness with
          | None -> Race.drf ~engine ?jobs w
          | Some wfile ->
            (* capture mode: recorder-threaded exploration, then save the
               reconstructed schedule next to the verdict *)
            let rc = Cas_diag.Capture.race ~engine ?jobs w in
            (match rc.Cas_diag.Capture.rc_verdict with
            | None -> Fmt.pr "DRF: no witness written@."
            | Some v ->
              save_witness ~file:wfile
                (Cas_diag.Witness.make ~program:(read_file file)
                   ~entries ~with_lock ~semantics:Cas_diag.Witness.Sc
                   ~engine:(Engine.to_string engine) ~seed:0 ~verdict:v
                   rc.Cas_diag.Capture.rc_steps));
            rc.Cas_diag.Capture.rc_report
        in
        emit r)
  in
  Cmd.v
    (Cmd.info "drf" ~doc:"exhaustive data-race detection (Fig. 9)")
    Term.(
      const run $ file_arg $ entries_arg $ with_lock_arg $ engine_arg
      $ jobs_arg $ drf_json_arg $ witness_out_arg $ paranoid_arg)

(* ------------------------------------------------------------------ *)
(* check / sim / tso                                                    *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let run file entries with_lock =
    let entries = default_entries entries in
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client ->
      let input =
        {
          Cascompcert.Framework.name = Filename.basename file;
          clients = [ client ];
          objects = (if with_lock then [ Cimp.gamma_lock () ] else []);
          entries;
        }
      in
      let r = Cascompcert.Framework.check_fig2 input in
      Fmt.pr "%a@." Cascompcert.Framework.pp_run r;
      if r.Cascompcert.Framework.all_ok then 0 else 2
  in
  Cmd.v
    (Cmd.info "check" ~doc:"run the full Fig. 2 framework pipeline")
    Term.(const run $ file_arg $ entries_arg $ with_lock_arg)

let sim_cmd =
  let run file paranoid =
    Fpmode.set_paranoid paranoid;
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client ->
      let reports = Cascompcert.Framework.check_passes client in
      List.iter (fun r -> Fmt.pr "%a@." Cascompcert.Framework.pp_pass_sim r) reports;
      let collisions = if paranoid then Lang.audit_collisions () else [] in
      (match collisions with
      | [] -> if paranoid then Fmt.pr "paranoid-fp: no hash collisions observed@."
      | (a, b) :: _ ->
        Fmt.epr "paranoid-fp: hash collision detected: %S vs %S@." a b);
      if
        collisions = []
        && List.for_all (fun r -> Cascompcert.Framework.sim_ok r.Cascompcert.Framework.outcome) reports
      then 0
      else 2
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"check the footprint-preserving simulation for every pass")
    Term.(const run $ file_arg $ paranoid_arg)

let tso_run_machine ~clients ~entries ~engine ~jobs : int =
  match Cas_tso.Tso.load (clients @ [ Cas_tso.Locks.pi_lock ]) entries with
  | Error e ->
    Fmt.epr "load error: %a@." World.pp_load_error e;
    1
  | Ok w ->
    let tr, st = Cas_tso.Tso.mc_traces ~engine ?jobs w in
    Fmt.pr "x86-TSO traces (with the TTAS spin lock):@.%a@."
      Explore.TraceSet.pp tr.Explore.traces;
    if engine <> Engine.Naive then Fmt.pr "engine: %a@." Cas_mc.Stats.pp st;
    let g =
      Cas_tso.Objsim.check_drf_guarantee ~engine ?jobs ~clients
        ~pi:Cas_tso.Locks.pi_lock ~gamma:(Cimp.gamma_lock ()) ~entries ()
    in
    Fmt.pr "Lemma 16: %a@." Cas_tso.Objsim.pp_guarantee g;
    if g.Cas_tso.Objsim.holds then 0 else 2

let tso_cmd =
  let run file entries engine jobs witness paranoid =
    Fpmode.set_paranoid paranoid;
    let jobs = validate_jobs jobs in
    if is_image file then
      match Cas_link.Image.load ~file with
      | Error e ->
        Fmt.epr "error: %s: %s@." file e;
        1
      | Ok img ->
        if witness <> None then
          Fmt.epr
            "warning: witness capture needs the source program and is not \
             supported for linked images@.";
        let entries = image_entries img entries in
        tso_run_machine ~clients:(Cas_link.Image.asm_modules img) ~entries
          ~engine ~jobs
    else
    let entries = default_entries entries in
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client -> (
      let asm = Cas_compiler.Driver.compile client in
      match Cas_tso.Tso.load [ asm; Cas_tso.Locks.pi_lock ] entries with
      | Error e ->
        Fmt.epr "load error: %a@." World.pp_load_error e;
        1
      | Ok w ->
        let tr, st = Cas_tso.Tso.mc_traces ~engine ?jobs w in
        Fmt.pr "x86-TSO traces (with the TTAS spin lock):@.%a@."
          Explore.TraceSet.pp tr.Explore.traces;
        if engine <> Engine.Naive then Fmt.pr "engine: %a@." Cas_mc.Stats.pp st;
        let g =
          Cas_tso.Objsim.check_drf_guarantee ~engine ?jobs ~clients:[ asm ]
            ~pi:Cas_tso.Locks.pi_lock ~gamma:(Cimp.gamma_lock ()) ~entries ()
        in
        Fmt.pr "Lemma 16: %a@." Cas_tso.Objsim.pp_guarantee g;
        (match witness with
        | Some wfile when not g.Cas_tso.Objsim.holds -> (
          match capture_tso_failure w g with
          | Some (verdict, steps) ->
            save_witness ~file:wfile
              (Cas_diag.Witness.make ~program:(read_file file) ~entries
                 ~with_lock:false ~semantics:Cas_diag.Witness.Tso
                 ~engine:(Engine.to_string engine) ~seed:0 ~verdict steps)
          | None ->
            Fmt.epr "no schedule found for the failure: no witness written@.")
        | _ -> ());
        if g.Cas_tso.Objsim.holds then 0 else 2)
  in
  Cmd.v
    (Cmd.info "tso"
       ~doc:"run compiled code against the TTAS lock on the x86-TSO machine")
    Term.(
      const run $ file_arg $ entries_arg $ engine_arg $ jobs_arg
      $ witness_out_arg $ paranoid_arg)

(* ------------------------------------------------------------------ *)
(* repro / replay / explain                                             *)
(* ------------------------------------------------------------------ *)

let out_arg =
  Arg.(
    value
    & opt string "witness.json"
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"output witness file")

let shrink_arg =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:"minimize the schedule (ddmin + run merging) before writing")

let shrink_budget_arg =
  Arg.(
    value
    & opt int Cas_diag.Shrink.default_max_attempts
    & info [ "shrink-budget" ] ~docv:"N"
        ~doc:
          "candidate-execution budget for ddmin schedule shrinking \
           (default 2000)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"export a Chrome trace-event JSON (open in Perfetto)")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N" ~doc:"seed recorded in the witness header")

let tso_flag_arg =
  Arg.(
    value & flag
    & info [ "tso" ]
        ~doc:
          "capture against the x86-TSO machine (compiled client + TTAS \
           lock) instead of the SC race predictor")

let shrink_and_save wit ~do_shrink ~shrink_budget ~out ~trace =
  let wit =
    if not do_shrink then wit
    else
      match sem_of_witness wit with
      | Error e ->
        Fmt.epr "shrink: cannot rebuild the semantics: %s@." e;
        wit
      | Ok s0 ->
        let r = Cas_diag.Shrink.shrink ~max_attempts:shrink_budget s0 wit in
        Fmt.pr "%a@." Cas_diag.Shrink.pp_report r;
        r.Cas_diag.Shrink.sh_witness
  in
  save_witness wit ~file:out;
  Option.iter
    (fun tfile ->
      Cas_diag.Export.save_chrome wit ~file:tfile;
      Fmt.pr "trace written to %s@." tfile)
    trace

let repro_cmd =
  let run file entries with_lock tso engine jobs seed out do_shrink
      shrink_budget trace =
    let entries = default_entries entries in
    match parse_client file with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok client -> (
      let src = read_file file in
      let witness =
        if tso then begin
          let asm = Cas_compiler.Driver.compile client in
          match Cas_tso.Tso.load [ asm; Cas_tso.Locks.pi_lock ] entries with
          | Error e -> Error (Fmt.str "TSO load: %a" World.pp_load_error e)
          | Ok w0 ->
            let g =
              Cas_tso.Objsim.check_drf_guarantee ~engine ?jobs
                ~clients:[ asm ] ~pi:Cas_tso.Locks.pi_lock
                ~gamma:(Cimp.gamma_lock ()) ~entries ()
            in
            Fmt.pr "Lemma 16: %a@." Cas_tso.Objsim.pp_guarantee g;
            if g.Cas_tso.Objsim.holds then Ok None
            else
              Ok
                (Option.map
                   (fun (verdict, steps) ->
                     Cas_diag.Witness.make ~program:src ~entries
                       ~with_lock:false ~semantics:Cas_diag.Witness.Tso
                       ~engine:(Engine.to_string engine) ~seed ~verdict steps)
                   (capture_tso_failure w0 g))
        end
        else
          let p = build_prog client ~with_lock ~entries ~compiled:false in
          match World.load p ~args:[] with
          | Error e -> Error (Fmt.str "load: %a" World.pp_load_error e)
          | Ok w0 -> (
            let rc = Cas_diag.Capture.race ~engine ?jobs w0 in
            Fmt.pr "%a@." Race.pp_drf_report rc.Cas_diag.Capture.rc_report;
            match rc.Cas_diag.Capture.rc_verdict with
            | Some v ->
              Ok
                (Some
                   (Cas_diag.Witness.make ~program:src ~entries ~with_lock
                      ~semantics:Cas_diag.Witness.Sc
                      ~engine:(Engine.to_string engine) ~seed ~verdict:v
                      rc.Cas_diag.Capture.rc_steps))
            | None ->
              (* DRF: an abort schedule is still a counterexample *)
              Ok
                (Option.map
                   (fun steps ->
                     Cas_diag.Witness.make ~program:src ~entries ~with_lock
                       ~semantics:Cas_diag.Witness.Sc
                       ~engine:(Engine.to_string engine) ~seed
                       ~verdict:Cas_diag.Witness.Vabort steps)
                   (Cas_diag.Capture.schedule_to_abort
                      (Cas_diag.Sem.of_world w0) ())))
      in
      match witness with
      | Error e ->
        Fmt.epr "error: %s@." e;
        1
      | Ok None ->
        Fmt.pr "no counterexample found: nothing to capture@.";
        1
      | Ok (Some wit) ->
        shrink_and_save wit ~do_shrink ~shrink_budget ~out ~trace;
        0)
  in
  Cmd.v
    (Cmd.info "repro"
       ~doc:
         "capture a counterexample (race, abort, or TSO refinement \
          failure) as a self-contained replayable witness")
    Term.(
      const run $ file_arg $ entries_arg $ with_lock_arg $ tso_flag_arg
      $ engine_arg $ jobs_arg $ seed_arg $ out_arg $ shrink_arg
      $ shrink_budget_arg $ trace_arg)

let witness_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"WITNESS" ~doc:"witness JSON file")

let replay_cmd =
  let run file do_shrink shrink_budget trace out =
    match Cas_diag.Witness.load ~file with
    | Error e ->
      Fmt.epr "error: %s: %s@." file e;
      1
    | Ok wit -> (
      if wit.Cas_diag.Witness.version <> Cas_base.Version.v then
        Fmt.epr
          "warning: witness captured by version %s, this is %s — a \
           mismatch below may just mean the tool changed@."
          wit.Cas_diag.Witness.version Cas_base.Version.v;
      if
        Cas_diag.Witness.hash_program wit.Cas_diag.Witness.program
        <> wit.Cas_diag.Witness.prog_hash
      then begin
        Fmt.epr "error: embedded program does not match its recorded hash@.";
        1
      end
      else
        match sem_of_witness wit with
        | Error e ->
          Fmt.epr "error: %s@." e;
          1
        | Ok s0 ->
          let o = Cas_diag.Replay.run s0 wit in
          Fmt.pr "replay %s: %s (%d/%d steps, events [%a])@." file
            o.Cas_diag.Replay.detail o.Cas_diag.Replay.steps_matched
            (List.length wit.Cas_diag.Witness.steps)
            Fmt.(list ~sep:comma Event.pp)
            o.Cas_diag.Replay.events;
          if not o.Cas_diag.Replay.ok then 2
          else begin
            (if do_shrink || trace <> None || out <> None then
               let out = Option.value ~default:file out in
               shrink_and_save wit ~do_shrink ~shrink_budget ~out ~trace);
            0
          end)
  in
  let out_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"write the (possibly shrunk) witness here (default: in place)")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "re-execute a witness schedule step by step, verifying events, \
          footprints and target worlds against the recording")
    Term.(
      const run $ witness_file_arg $ shrink_arg $ shrink_budget_arg
      $ trace_arg $ out_opt_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run seed count size budget lang json out_dir shrink_budget
      paranoid_every inject engine_par =
    let engine_par = validate_jobs engine_par in
    match Cas_fuzz.Gen.lang_of_string lang with
    | Error e ->
      Fmt.epr "error: %s@." e;
      2
    | Ok lang ->
      let progress ~index bucket =
        if bucket <> Cas_fuzz.Driver.Agree then
          Fmt.epr "[%04d] %s@." index (Cas_fuzz.Driver.bucket_name bucket)
      in
      let rep =
        Cas_fuzz.Driver.run ~size ~budget ~shrink_budget ~paranoid_every
          ~inject ?engine_par ?out_dir ~progress ~seed ~count lang
      in
      Fmt.pr "%a@." Cas_fuzz.Driver.pp_report rep;
      List.iter
        (fun (c : Cas_fuzz.Driver.case) ->
          Fmt.pr "  case %04d [%s]: %s%a%a@." c.Cas_fuzz.Driver.c_index
            (Cas_fuzz.Driver.bucket_name c.Cas_fuzz.Driver.c_bucket)
            c.Cas_fuzz.Driver.c_detail
            Fmt.(option (fmt " — repro %s"))
            c.Cas_fuzz.Driver.c_repro
            Fmt.(option (fmt " (replay: %s)"))
            c.Cas_fuzz.Driver.c_replay)
        rep.Cas_fuzz.Driver.r_cases;
      (match json with
      | Some file ->
        let oc = open_out file in
        output_string oc
          (Cas_diag.Json.to_string (Cas_fuzz.Driver.report_to_json rep));
        output_char oc '\n';
        close_out oc;
        Fmt.pr "triage report written to %s@." file
      | None -> ());
      (* an [--inject] campaign is *expected* to diverge — its exit code
         reports whether the pipeline handled the divergences *)
      if Cas_fuzz.Driver.clean rep || inject then 0 else 1
  in
  let fseed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"campaign seed (determines everything)")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"number of programs to generate")
  in
  let size_arg =
    Arg.(
      value & opt int 8
      & info [ "size" ] ~docv:"N" ~doc:"program size budget (statements)")
  in
  let budget_arg =
    Arg.(
      value & opt int 20_000
      & info [ "budget" ] ~docv:"T"
          ~doc:
            "per-oracle exploration budget (worlds for the race search, \
             paths for trace enumeration); exhausting it buckets the \
             program as a timeout")
  in
  let lang_arg =
    Arg.(
      value & opt string "clight"
      & info [ "lang" ] ~docv:"LANG"
          ~doc:
            "generated language: $(b,clight) (full differential pipeline) \
             or $(b,cimp) (engine + fingerprint oracles only)")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"write the deterministic triage report as JSON")
  in
  let out_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:
            "write offending programs and back-translated minimal repros \
             here")
  in
  let paranoid_every_arg =
    Arg.(
      value & opt int 50
      & info [ "paranoid-every" ] ~docv:"N"
          ~doc:
            "run the paranoid fingerprint spot-check on every Nth program \
             (0 disables)")
  in
  let engine_par_arg =
    Arg.(
      value
      & opt (some jobs_conv) None
      & info [ "engine-par" ] ~docv:"N"
          ~doc:
            "add a fourth oracle lane: re-run every program under \
             $(b,dpor-par) on $(i,N) domains and require the same verdict \
             and the same world count as sequential dpor (the visited \
             world set is steal-invariant)")
  in
  let inject_arg =
    Arg.(
      value & flag
      & info [ "inject" ]
          ~doc:
            "deliberately miscompile (bump the first print argument fed to \
             the compiler) to exercise the divergence → shrink → \
             back-translate → replay pipeline")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "generate random programs and run them through the differential \
          oracles (source vs compiled traces, naive vs DPOR verdicts and \
          world counts, paranoid fingerprint spot-checks), bucketing \
          outcomes into a triage report and back-translating every \
          divergence into a minimal CImp repro")
    Term.(
      const run $ fseed_arg $ count_arg $ size_arg $ budget_arg $ lang_arg
      $ json_arg $ out_dir_arg $ shrink_budget_arg $ paranoid_every_arg
      $ inject_arg $ engine_par_arg)

let explain_cmd =
  let run file =
    match Cas_diag.Witness.load ~file with
    | Error e ->
      Fmt.epr "error: %s: %s@." file e;
      1
    | Ok wit ->
      Fmt.pr "%a" Cas_diag.Export.explain wit;
      0
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"render a witness interleaving as a human-readable timeline")
    Term.(const run $ witness_file_arg)

(* ------------------------------------------------------------------ *)
(* serve / client (cascd, Cas_serve)                                    *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string "casc.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on")

let serve_cmd =
  let run socket jobs queue_cap cache_dir no_cache delay_ms stats =
    let use_cache = not no_cache in
    if use_cache then Cas_compiler.Cache.set_default_dir (Some cache_dir);
    let jobs = Option.value ~default:2 jobs in
    let cfg =
      {
        Cas_serve.Daemon.socket;
        jobs;
        queue_cap;
        delay = float_of_int delay_ms /. 1000.;
      }
    in
    match Cas_serve.Daemon.create cfg with
    | Error e ->
      Fmt.epr "error: %s@." e;
      1
    | Ok d ->
      Fmt.pr "cascd listening on %s (%d worker%s, queue cap %d)@." socket jobs
        (if jobs = 1 then "" else "s")
        queue_cap;
      let final = Cas_serve.Daemon.run d in
      if stats then Fmt.pr "%s@." (Cas_diag.Json.to_string final);
      0
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "admission control: max distinct jobs outstanding before new \
             work is rejected as overloaded")
  in
  let delay_ms_arg =
    Arg.(
      value & opt int 0
      & info [ "delay-ms" ] ~docv:"MS"
          ~doc:
            "add an artificial delay to every job (testing: widens the \
             in-flight window so coalescing is observable)")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"print the final metrics document (JSON) on exit")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "run cascd, the certification daemon: batches, dedups and caches \
          compile/certify/link/drf/tso requests over a Unix-domain socket \
          until SIGTERM or a shutdown request")
    Term.(
      const run $ socket_arg $ jobs_arg $ queue_cap_arg $ cache_dir_arg
      $ no_cache_arg $ delay_ms_arg $ stats_arg)

let client_cmd =
  let run socket kind files entries with_lock certify out =
    let source_of f =
      match read_file f with
      | s -> Ok s
      | exception Sys_error e -> Error e
    in
    let kind_of () : (Cas_serve.Protocol.kind, string) result =
      let open Cas_serve.Protocol in
      match (kind, files) with
      | "ping", [] -> Ok Ping
      | "metrics", [] -> Ok Metrics
      | "shutdown", [] -> Ok Shutdown
      | "compile", [ f ] ->
        Result.map (fun source -> Compile { source }) (source_of f)
      | "certify", [ f ] ->
        Result.map (fun source -> Certify { source }) (source_of f)
      | "drf", [ f ] ->
        Result.map
          (fun source -> Drf { source; entries; with_lock })
          (source_of f)
      | "tso", [ f ] ->
        Result.map (fun source -> Tso { source; entries }) (source_of f)
      | "link", (_ :: _ as objs) ->
        let rec read acc = function
          | [] -> Ok (Link { objects = List.rev acc; entries; certify })
          | o :: rest -> (
            match source_of o with
            | Error e -> Error e
            | Ok s -> read (s :: acc) rest)
        in
        read [] objs
      | ("ping" | "metrics" | "shutdown"), _ :: _ ->
        Error (Fmt.str "%s takes no FILE argument" kind)
      | ("compile" | "certify" | "drf" | "tso"), _ ->
        Error (Fmt.str "%s takes exactly one FILE argument" kind)
      | "link", [] -> Error "link needs at least one .cao FILE"
      | k, _ ->
        Error
          (Fmt.str
             "unknown request %S (expected ping, compile, certify, link, \
              drf, tso, metrics or shutdown)"
             k)
    in
    let fail msg =
      Fmt.epr "error: %s@." msg;
      1
    in
    match kind_of () with
    | Error e -> fail e
    | Ok k -> (
      match
        Cas_serve.Client.with_connection ~socket (fun c ->
            Cas_serve.Client.request c k)
      with
      | Error e | Ok (Error e) -> fail e
      | Ok (Ok resp) -> (
        let open Cas_serve.Protocol in
        match resp.status with
        | Serror -> fail (payload_message resp.payload)
        | Soverloaded | Sdraining ->
          Fmt.epr "error: %s@." (payload_message resp.payload);
          3
        | Sok -> (
          match k with
          | Metrics ->
            Fmt.pr "%s@." (Cas_diag.Json.to_string resp.payload);
            0
          | Ping | Shutdown ->
            Fmt.pr "%s@." (payload_text resp.payload);
            0
          | Compile _ ->
            print_string (payload_text resp.payload);
            0
          | Certify _ ->
            print_string (payload_text resp.payload);
            if payload_bool "sim_ok" resp.payload then 0 else 2
          | Drf _ ->
            print_string (payload_text resp.payload);
            if payload_bool "drf" resp.payload then 0 else 2
          | Tso _ ->
            print_string (payload_text resp.payload);
            if payload_bool "holds" resp.payload then 0 else 2
          | Link _ ->
            print_string (payload_text resp.payload);
            (match Cas_diag.Json.member_opt "image" resp.payload with
            | Some (Cas_diag.Json.Str img) ->
              (* re-encode through [Image.save] so the written file is
                 byte-identical to one-shot [casc link]'s (atomic, same
                 trailing layout) *)
              (match Cas_link.Image.of_string img with
              | Ok i -> Cas_link.Image.save i ~file:out
              | Error _ ->
                let oc = open_out_bin out in
                output_string oc img;
                close_out oc);
              let digest =
                match Cas_diag.Json.member_opt "digest" resp.payload with
                | Some (Cas_diag.Json.Str d) -> d
                | _ -> "?"
              in
              Fmt.pr "wrote %s (image %s%s)@." out digest
                (if payload_bool "certified" resp.payload then ", certified"
                 else "")
            | _ -> ());
            0)))
  in
  let kind_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUEST"
          ~doc:
            "one of: ping, compile, certify, link, drf, tso, metrics, \
             shutdown")
  in
  let files_arg =
    Arg.(
      value & pos_right 0 file []
      & info [] ~docv:"FILE"
          ~doc:
            "mini-C source (compile/certify/drf/tso) or .cao objects (link); \
             contents are sent to the daemon, which never reads the \
             filesystem")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:"with link: compose the per-module certificates (Lem. 6)")
  in
  let out_arg =
    Arg.(
      value
      & opt string ("prog" ^ Cas_link.Image.extension)
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"with link: where to write the returned image")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "send one request to a running casc serve daemon and print the \
          response (verdict text is byte-identical to the corresponding \
          one-shot casc command)")
    Term.(
      const run $ socket_arg $ kind_arg $ files_arg $ entries_arg
      $ with_lock_arg $ certify_arg $ out_arg)

let () =
  let doc = "certified-separate-compilation playground (CASCompCert reproduction)" in
  let info = Cmd.info "casc" ~version:Cas_base.Version.v ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            compile_cmd;
            build_cmd;
            link_cmd;
            run_cmd;
            drf_cmd;
            check_cmd;
            sim_cmd;
            tso_cmd;
            repro_cmd;
            replay_cmd;
            fuzz_cmd;
            explain_cmd;
            serve_cmd;
            client_cmd;
          ]))
