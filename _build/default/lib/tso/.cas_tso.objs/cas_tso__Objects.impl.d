lib/tso/objects.ml: Asm Cas_base Cas_langs Cimp Clight Genv Mreg Ops Perm
