lib/tso/locks.ml: Asm Cas_base Cas_langs Cimp Genv Mreg Perm
