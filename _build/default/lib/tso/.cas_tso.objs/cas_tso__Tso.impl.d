lib/tso/tso.ml: Addr Array Asm Buffer Cas_base Cas_conc Cas_langs Event Flist Genv Int Lang List Map Memory Mreg Msg Value
