lib/tso/objsim.ml: Addr Asm Cas_base Cas_conc Cas_langs Cimp Explore Fmt Genv Gsem Hashtbl Lang List Memory Perm Preemptive Refine Tso Value World
