(** The x86-TSO machine (§7.3, following Sewell et al.'s x86-TSO model):
    each hardware thread owns a FIFO store buffer. Stores are buffered;
    loads read the youngest buffered write to the same address, falling
    back to memory; lock-prefixed instructions and fences require an empty
    buffer; buffered writes drain to memory at nondeterministic points.

    The machine runs whole programs of x86 modules (the P^rmm of Fig. 3).
    Frame allocations and frame-private accesses bypass the buffer: they
    are thread-local, so buffering them is unobservable (documented
    simplification). *)

open Cas_base
open Cas_langs

module IMap = Map.Make (Int)

type buffer = (Addr.t * Value.t) list  (** oldest first *)

type thread = {
  tid : int;
  flist : Flist.t;
  stack : Asm.core list;
  buf : buffer;
}

type world = {
  threads : thread IMap.t;
  cur : int;
  mem : Memory.t;
  genv : Genv.t;
  modules : Asm.program list;
}

type load_error = Cas_conc.World.load_error

let load (modules : Asm.program list) (entries : string list) :
    (world, load_error) result =
  match Genv.link (List.map (fun (p : Asm.program) -> p.Asm.globals) modules) with
  | Error n -> Error (Cas_conc.World.Incompatible_globals n)
  | Ok genv ->
    let mem = Genv.init_memory genv in
    if not (Memory.closed mem) then Error Cas_conc.World.Not_closed
    else
      let n = List.length entries in
      let flists = Flist.partition ~globals:(Genv.block_count genv) n in
      let resolve entry =
        List.find_map
          (fun p -> Asm.init_core ~genv p ~entry ~args:[])
          modules
      in
      let rec build tid entries flists acc =
        match (entries, flists) with
        | [], _ -> Ok acc
        | e :: es, fl :: fls -> (
          match resolve e with
          | None -> Error (Cas_conc.World.Unresolved_entry e)
          | Some core ->
            build (tid + 1) es fls
              (IMap.add tid { tid; flist = fl; stack = [ core ]; buf = [] } acc))
        | _ -> assert false
      in
      (match build 1 entries flists IMap.empty with
      | Error e -> Error e
      | Ok threads -> Ok { threads; cur = 1; mem; genv; modules })

let thread_done t = t.stack = [] && t.buf = []

let live_tids w =
  IMap.fold
    (fun tid t acc -> if t.stack = [] then acc else tid :: acc)
    w.threads []
  |> List.rev

let all_done w = IMap.for_all (fun _ t -> thread_done t) w.threads

let fingerprint w =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int w.cur);
  IMap.iter
    (fun tid t ->
      Buffer.add_string buf (string_of_int tid);
      Buffer.add_char buf ':';
      List.iter
        (fun c ->
          Buffer.add_string buf (Asm.fingerprint_core c);
          Buffer.add_char buf '/')
        t.stack;
      Buffer.add_char buf '[';
      List.iter
        (fun (a, v) ->
          Buffer.add_string buf (Addr.to_string a);
          Buffer.add_char buf '=';
          Buffer.add_string buf (Value.to_string v);
          Buffer.add_char buf ',')
        t.buf;
      Buffer.add_char buf ']')
    w.threads;
  Buffer.add_string buf (Memory.fingerprint w.mem);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* TSO-visible memory                                                  *)
(* ------------------------------------------------------------------ *)

(** Read through the thread's own store buffer (youngest entry wins),
    falling back to memory. *)
let read_buffered (buf : buffer) mem ~perm a =
  let rec newest = function
    | [] -> None
    | (a', v) :: rest -> (
      match newest rest with
      | Some v -> Some v
      | None -> if Addr.equal a a' then Some v else None)
  in
  match newest buf with
  | Some v -> Ok v
  | None -> Memory.load ~perm mem a

(* ------------------------------------------------------------------ *)
(* Steps                                                               *)
(* ------------------------------------------------------------------ *)

type succ = world Cas_conc.Explore.gsucc

let set_thread w t = { w with threads = IMap.add t.tid t w.threads }

let set_top w t core =
  match t.stack with
  | [] -> invalid_arg "Tso.set_top"
  | _ :: rest -> set_thread w { t with stack = core :: rest }

let pop_frame w (t : thread) (v : Value.t) : world option =
  match t.stack with
  | [] -> None
  | _ :: [] -> Some (set_thread w { t with stack = [] })
  | _ :: caller :: rest -> (
    match Asm.after_external caller (Some v) with
    | None -> None
    | Some caller' -> Some (set_thread w { t with stack = caller' :: rest }))

let resolve_call w f args =
  List.find_map (fun p -> Asm.init_core ~genv:w.genv p ~entry:f ~args) w.modules

(** One instruction of thread [tid] under TSO. *)
let local_steps (w : world) (tid : int) : succ list =
  match IMap.find_opt tid w.threads with
  | None -> []
  | Some t -> (
    match t.stack with
    | [] -> []
    | (c : Asm.core) :: _ ->
      let gtau w' = Cas_conc.Explore.GNext (Cas_conc.World.Gtau, w') in
      if c.Asm.waiting <> None then []
      else if c.Asm.need_frame then
        (* frame allocation: direct, private *)
        (match Asm.step t.flist c w.mem with
        | [ Lang.Next (Msg.Tau, _, c', m') ] ->
          [ gtau (set_top { w with mem = m' } t c') ]
        | _ -> [ Cas_conc.Explore.GAbort ])
      else if c.Asm.pc < 0 || c.Asm.pc >= Array.length c.Asm.code then
        [ Cas_conc.Explore.GAbort ]
      else
        let perm = Asm.data_perm c in
        let advance ?(regs = c.Asm.regs) ?(flags = c.Asm.flags) () =
          { c with Asm.pc = c.Asm.pc + 1; regs; flags }
        in
        let i = c.Asm.code.(c.Asm.pc) in
        match i with
        | Asm.Pstore (d, ofs, s) -> (
          (* buffered store; permission checked eagerly *)
          match Asm.addr_plus (Asm.reg_val c d) ofs with
          | Some a -> (
            match Memory.load ~perm w.mem a with
            | Error (Memory.Unmapped _) -> [ Cas_conc.Explore.GAbort ]
            | Error (Memory.Out_of_bounds _) -> [ Cas_conc.Explore.GAbort ]
            | Error (Memory.Perm_mismatch _) -> [ Cas_conc.Explore.GAbort ]
            | Ok _ ->
              let t' = { t with buf = t.buf @ [ (a, Asm.reg_val c s) ] } in
              [ gtau (set_top (set_thread w t') t' (advance ())) ])
          | None -> [ Cas_conc.Explore.GAbort ])
        | Asm.Pload (d, s, ofs) -> (
          match Asm.addr_plus (Asm.reg_val c s) ofs with
          | Some a -> (
            match read_buffered t.buf w.mem ~perm a with
            | Ok v ->
              [ gtau (set_top w t (advance ~regs:(Mreg.Map.add d v c.Asm.regs) ())) ]
            | Error _ -> [ Cas_conc.Explore.GAbort ])
          | None -> [ Cas_conc.Explore.GAbort ])
        | Asm.Plock_cmpxchg (ra, rs) -> (
          (* locked instruction: fence semantics — buffer must be empty *)
          if t.buf <> [] then []
          else
            match Asm.reg_val c ra with
            | Value.Vptr a -> (
              match Memory.load ~perm w.mem a with
              | Error _ -> [ Cas_conc.Explore.GAbort ]
              | Ok old ->
                let ax = Asm.reg_val c Mreg.AX in
                let flags = Some (ax, old) in
                if Value.equal ax old then (
                  match Memory.store ~perm w.mem a (Asm.reg_val c rs) with
                  | Ok m' -> [ gtau (set_top { w with mem = m' } t (advance ~flags ())) ]
                  | Error _ -> [ Cas_conc.Explore.GAbort ])
                else
                  [ gtau
                      (set_top w t
                         (advance ~flags
                            ~regs:(Mreg.Map.add Mreg.AX old c.Asm.regs)
                            ())) ])
            | _ -> [ Cas_conc.Explore.GAbort ])
        | Asm.Pmfence -> if t.buf <> [] then [] else [ gtau (set_top w t (advance ())) ]
        | _ -> (
          (* all other instructions do not touch shared memory: delegate
             to the SC interpreter *)
          match Asm.step t.flist c w.mem with
          | [] | [ Lang.Stuck_abort ] -> [ Cas_conc.Explore.GAbort ]
          | [ Lang.Next (msg, _, c', m') ] -> (
            let w = { w with mem = m' } in
            match msg with
            | Msg.Tau -> [ gtau (set_top w t c') ]
            | Msg.EntAtom | Msg.ExtAtom ->
              (* only lock-prefixed instructions generate these under the
                 SC interpreter; they are handled above *)
              [ Cas_conc.Explore.GAbort ]
            | Msg.Evt e -> [ Cas_conc.Explore.GNext (Cas_conc.World.Gevt e, set_top w t c') ]
            | Msg.Ret v -> (
              let w' = set_top w t c' in
              let t' = IMap.find tid w'.threads in
              match pop_frame w' t' v with
              | Some w'' -> [ gtau w'' ]
              | None -> [ Cas_conc.Explore.GAbort ])
            | Msg.Call ("print", [ Value.Vint n ]) -> (
              match Asm.after_external c' None with
              | Some c'' ->
                [ Cas_conc.Explore.GNext
                    (Cas_conc.World.Gevt (Event.Print n), set_top w t c'') ]
              | None -> [ Cas_conc.Explore.GAbort ])
            | Msg.TailCall ("print", [ Value.Vint n ]) -> (
              let w' = set_top w t c' in
              let t' = IMap.find tid w'.threads in
              match pop_frame w' t' (Value.Vint 0) with
              | Some w'' ->
                [ Cas_conc.Explore.GNext
                    (Cas_conc.World.Gevt (Event.Print n), w'') ]
              | None -> [ Cas_conc.Explore.GAbort ])
            | Msg.Call (f, args) -> (
              match resolve_call w f args with
              | Some callee ->
                let w' = set_top w t c' in
                let t' = IMap.find tid w'.threads in
                [ gtau (set_thread w' { t' with stack = callee :: t'.stack }) ]
              | None -> [ Cas_conc.Explore.GAbort ])
            | Msg.TailCall (f, args) -> (
              match resolve_call w f args with
              | Some callee ->
                let rest = match t.stack with [] -> [] | _ :: r -> r in
                [ gtau (set_thread w { t with stack = callee :: rest }) ]
              | None -> [ Cas_conc.Explore.GAbort ]))
          | _ -> [ Cas_conc.Explore.GAbort ]))

(** Commit the oldest buffered write of thread [tid] to memory. *)
let unbuffer (w : world) (tid : int) : world option =
  match IMap.find_opt tid w.threads with
  | None | Some { buf = []; _ } -> None
  | Some ({ buf = (a, v) :: rest; _ } as t) -> (
    match Memory.perm_of_block w.mem a.Addr.block with
    | None -> None
    | Some perm -> (
      match Memory.store ~perm w.mem a v with
      | Ok m' -> Some (set_thread { w with mem = m' } { t with buf = rest })
      | Error _ -> None))

(** The full TSO transition relation: current-thread instruction steps,
    nondeterministic buffer drains of every thread, and free preemption. *)
let steps (w : world) : succ list =
  let local = local_steps w w.cur in
  let drains =
    IMap.fold
      (fun tid _ acc ->
        match unbuffer w tid with
        | Some w' -> Cas_conc.Explore.GNext (Cas_conc.World.Gtau, w') :: acc
        | None -> acc)
      w.threads []
  in
  let switches =
    live_tids w
    |> List.filter (fun t -> t <> w.cur)
    |> List.map (fun t ->
           Cas_conc.Explore.GNext (Cas_conc.World.Gsw, { w with cur = t }))
  in
  local @ drains @ switches

let system : world Cas_conc.Explore.system =
  { fingerprint; all_done; steps }

let initials (w : world) : world list =
  match live_tids w with
  | [] -> [ w ]
  | ts -> List.map (fun t -> { w with cur = t }) ts

let traces ?max_steps ?max_paths (w : world) : Cas_conc.Explore.trace_result =
  Cas_conc.Explore.traces_gen ?max_steps ?max_paths system (initials w)
