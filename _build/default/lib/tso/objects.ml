(** Concurrent objects beyond locks (§2.4: "the approach ... also applies
    in more general cases when π_o is a racy implementation of a general
    concurrent object"). Here: an atomic fetch-and-add counter.

    - [gamma_counter]: the CImp specification — an atomic block reads and
      bumps the counter; the old value is returned.
    - [pi_counter]: the x86-TSO implementation — an optimistic
      compare-exchange retry loop whose initial plain load races benignly
      with other threads' lock-prefixed updates. *)

open Cas_base
open Cas_langs

let counter_globals =
  [ Genv.gvar ~perm:Perm.Object ~init:[ Genv.Iint 0 ] "CNT" 1 ]

(** γ_counter: atomic abstract fetch-and-add. *)
let gamma_counter : Cimp.program =
  {
    Cimp.globals = counter_globals;
    funcs =
      [
        {
          Cimp.fname = "fetch_add";
          fparams = [];
          fbody =
            Cimp.Sseq
              ( Cimp.Satomic
                  (Cimp.Sseq
                     ( Cimp.Sload ("r", Cimp.Eglob "CNT"),
                       Cimp.Sstore
                         ( Cimp.Eglob "CNT",
                           Cimp.Ebinop (Ops.Oadd, Cimp.Evar "r", Cimp.Eint 1) )
                     )),
                Cimp.Sreturn (Some (Cimp.Evar "r")) );
        };
      ];
  }

let l_retry = 0

(** π_counter: cmpxchg retry loop. The entry load is plain — a benign
    race; the lock-prefixed cmpxchg both validates and commits. Returns
    the pre-increment value in AX. *)
let pi_counter : Asm.program =
  {
    Asm.globals = counter_globals;
    funcs =
      [
        {
          Asm.fname = "fetch_add";
          arity = 0;
          framesize = 0;
          is_object = true;
          code =
            [
              Asm.Plea_global (Mreg.CX, "CNT");
              Asm.Plabel l_retry;
              Asm.Pload (Mreg.AX, Mreg.CX, 0);  (* plain read: benign race *)
              Asm.Pmov_rr (Mreg.DX, Mreg.AX);
              Asm.Pbinop_ri (Ops.Oadd, Mreg.DX, 1);
              Asm.Plock_cmpxchg (Mreg.CX, Mreg.DX);
              Asm.Pjcc (Asm.Cne, l_retry);
              Asm.Pret true;
            ];
        };
      ];
  }

(** A Clight driver that calls [entry] and prints the result — turns the
    object's return value into an observable event so whole-program
    refinement can compare it. *)
let driver_client ?(entry = "fetch_add") () : Clight.program =
  {
    Clight.globals = [];
    funcs =
      [
        {
          Clight.fname = "drv";
          fparams = [];
          fvars = [];
          fbody =
            Clight.Sseq
              ( Clight.Scall (Some "t", entry, []),
                Clight.Sseq
                  ( Clight.Scall (None, "print", [ Clight.Etemp "t" ]),
                    Clight.Sreturn None ) );
        };
      ];
  }
