(** Lock implementations (Fig. 10).

    - [gamma_lock] — the CImp abstract specification (re-exported from
      [Cas_langs.Cimp]);
    - [pi_lock] — the efficient x86-TSO implementation: TTAS acquire via
      [lock cmpxchg] with a plain-load spin loop, and a *plain store*
      release. The plain load and store race with other threads'
      lock-prefixed accesses: the confined benign races of §7.3.
    - [pi_lock_fenced] — a conservative variant whose release is fenced;
      used by the benchmarks to quantify what the benign race buys.

    The lock word [L] lives in [Object]-permission memory: client code
    cannot touch it, which is the confinement the extended framework
    (Fig. 3) requires. L = 1 means free, 0 means held. *)

open Cas_base
open Cas_langs

let gamma_lock = Cimp.gamma_lock

let l_acq = 0
let l_spin = 1
let l_enter = 2

let lock_func : Asm.func =
  {
    Asm.fname = "lock";
    arity = 0;
    framesize = 0;
    is_object = true;
    code =
      [
        Asm.Plea_global (Mreg.CX, "L");
        Asm.Pmov_ri (Mreg.DX, 0);
        Asm.Plabel l_acq;
        Asm.Pmov_ri (Mreg.AX, 1);
        Asm.Plock_cmpxchg (Mreg.CX, Mreg.DX);
        Asm.Pjcc (Asm.Ceq, l_enter);
        Asm.Plabel l_spin;
        Asm.Pload (Mreg.BX, Mreg.CX, 0);  (* plain load: benign race *)
        Asm.Pcmp_ri (Mreg.BX, 0);
        Asm.Pjcc (Asm.Ceq, l_spin);
        Asm.Pjmp l_acq;
        Asm.Plabel l_enter;
        Asm.Pret false;
      ];
  }

let unlock_func : Asm.func =
  {
    Asm.fname = "unlock";
    arity = 0;
    framesize = 0;
    is_object = true;
    code =
      [
        Asm.Plea_global (Mreg.AX, "L");
        Asm.Pmov_ri (Mreg.BX, 1);
        Asm.Pstore (Mreg.AX, 0, Mreg.BX);  (* plain store: benign race *)
        Asm.Pret false;
      ];
  }

let unlock_fenced_func : Asm.func =
  {
    unlock_func with
    Asm.code =
      [
        Asm.Plea_global (Mreg.AX, "L");
        Asm.Pmov_ri (Mreg.BX, 1);
        Asm.Pstore (Mreg.AX, 0, Mreg.BX);
        Asm.Pmfence;
        Asm.Pret false;
      ];
  }

let lock_globals ?(lock_var = "L") () =
  [ Genv.gvar ~perm:Perm.Object ~init:[ Genv.Iint 1 ] lock_var 1 ]

(** π_lock: the x86-TSO lock module of Fig. 10(b). *)
let pi_lock : Asm.program =
  { Asm.funcs = [ lock_func; unlock_func ]; globals = lock_globals () }

(** Same acquire, but the release is followed by a full fence. *)
let pi_lock_fenced : Asm.program =
  { Asm.funcs = [ lock_func; unlock_fenced_func ]; globals = lock_globals () }
