(** Backward liveness dataflow on RTL, used by the Allocation pass. *)

open Cas_langs
module IMap = Rtl.IMap
module ISet = Set.Make (Int)

type t = { live_in : ISet.t IMap.t; live_out : ISet.t IMap.t }

let get m n = Option.value ~default:ISet.empty (IMap.find_opt n m)

let analyze (f : Rtl.func) : t =
  let live_in = ref IMap.empty in
  let live_out = ref IMap.empty in
  let preds =
    IMap.fold
      (fun n i acc ->
        List.fold_left
          (fun acc s ->
            IMap.update s
              (fun l -> Some (n :: Option.value ~default:[] l))
              acc)
          acc (Rtl.successors i))
      f.Rtl.code IMap.empty
  in
  let worklist = Queue.create () in
  IMap.iter (fun n _ -> Queue.add n worklist) f.Rtl.code;
  while not (Queue.is_empty worklist) do
    let n = Queue.pop worklist in
    match IMap.find_opt n f.Rtl.code with
    | None -> ()
    | Some i ->
      let out =
        List.fold_left
          (fun acc s -> ISet.union acc (get !live_in s))
          ISet.empty (Rtl.successors i)
      in
      let ins =
        let minus_def =
          match Rtl.defs i with Some d -> ISet.remove d out | None -> out
        in
        List.fold_left (fun acc u -> ISet.add u acc) minus_def (Rtl.uses i)
      in
      live_out := IMap.add n out !live_out;
      if not (ISet.equal ins (get !live_in n)) then begin
        live_in := IMap.add n ins !live_in;
        List.iter
          (fun p -> Queue.add p worklist)
          (Option.value ~default:[] (IMap.find_opt n preds))
      end
  done;
  { live_in = !live_in; live_out = !live_out }

(** Dead registers at a program point enable dead-code diagnostics and the
    allocator's interference construction. *)
let live_out t n = get t.live_out n
let live_in t n = get t.live_in n
