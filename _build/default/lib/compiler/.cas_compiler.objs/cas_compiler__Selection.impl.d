lib/compiler/selection.ml: Cas_base Cas_langs Cminor List Ops
