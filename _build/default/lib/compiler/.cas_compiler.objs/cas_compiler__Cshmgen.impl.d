lib/compiler/cshmgen.ml: Cas_langs Clight Csharpminor List
