lib/compiler/linearize.ml: Cas_langs Hashtbl Linearl List Ltl
