lib/compiler/renumber.ml: Cas_langs Hashtbl List Rtl
