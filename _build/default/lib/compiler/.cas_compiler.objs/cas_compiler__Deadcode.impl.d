lib/compiler/deadcode.ml: Cas_langs List Liveness Rtl
