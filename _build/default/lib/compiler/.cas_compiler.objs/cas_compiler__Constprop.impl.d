lib/compiler/constprop.ml: Cas_base Cas_langs Int List Map Ops Option Queue Rtl
