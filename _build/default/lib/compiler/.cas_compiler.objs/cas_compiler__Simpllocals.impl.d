lib/compiler/simpllocals.ml: Cas_langs Clight List Set String
