lib/compiler/allocation.ml: Cas_langs Hashtbl Int List Liveness Ltl Mreg Option Rtl Set
