lib/compiler/liveness.ml: Cas_langs Int List Option Queue Rtl Set
