lib/compiler/rtlgen.ml: Cas_langs Cminor List Option Rtl
