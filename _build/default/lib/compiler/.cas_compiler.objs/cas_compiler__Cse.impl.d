lib/compiler/cse.ml: Cas_langs Hashtbl List Option Rtl
