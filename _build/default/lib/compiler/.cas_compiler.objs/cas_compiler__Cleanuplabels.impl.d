lib/compiler/cleanuplabels.ml: Cas_langs Hashtbl Linearl List
