lib/compiler/stacking.ml: Cas_langs Fmt Linearl List Machl Mreg Option
