lib/compiler/asmgen.ml: Asm Cas_langs List Machl Mreg Selection
