lib/compiler/tailcall.ml: Cas_langs List Rtl
