lib/compiler/tunneling.ml: Cas_langs List Ltl
