lib/compiler/cminorgen.ml: Cas_langs Cminor Csharpminor List
