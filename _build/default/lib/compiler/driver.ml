(** The CASCompCert compilation driver: composes the passes of Fig. 11
    (plus the ConstProp/CSE extensions) from Clight down to x86 assembly,
    recording every intermediate program so tests and examples can run
    the per-pass footprint-preserving simulation between each consecutive
    pair. *)

open Cas_langs

(** Intermediate snapshots of one compilation unit. *)
type artifacts = {
  clight : Clight.program;
  clight_simpl : Clight.program;
  csharpminor : Csharpminor.program;
  cminor : Cminor.program;
  cminorsel : Cminor.program;
  rtl : Rtl.program;
  rtl_tailcall : Rtl.program;
  rtl_renumber : Rtl.program;
  rtl_constprop : Rtl.program;
  rtl_cse : Rtl.program;
  rtl_deadcode : Rtl.program;
  ltl : Ltl.program;
  ltl_tunneled : Ltl.program;
  linear : Linearl.program;
  linear_clean : Linearl.program;
  mach : Machl.program;
  asm : Asm.program;
}

type options = { optimize : bool  (** run Tailcall/ConstProp/CSE *) }

let default_options = { optimize = true }

let compile_artifacts ?(options = default_options) (p : Clight.program) :
    artifacts =
  let clight = p in
  let clight_simpl = Simpllocals.compile clight in
  let csharpminor = Cshmgen.compile clight_simpl in
  let cminor = Cminorgen.compile csharpminor in
  let cminorsel = Selection.compile cminor in
  let rtl = Rtlgen.compile cminorsel in
  let rtl_tailcall = if options.optimize then Tailcall.compile rtl else rtl in
  let rtl_renumber = Renumber.compile rtl_tailcall in
  let rtl_constprop =
    if options.optimize then Constprop.compile rtl_renumber else rtl_renumber
  in
  let rtl_cse = if options.optimize then Cse.compile rtl_constprop else rtl_constprop in
  let rtl_deadcode =
    if options.optimize then Deadcode.compile rtl_cse else rtl_cse
  in
  let ltl = Allocation.compile rtl_deadcode in
  let ltl_tunneled = Tunneling.compile ltl in
  let linear = Linearize.compile ltl_tunneled in
  let linear_clean = Cleanuplabels.compile linear in
  let mach = Stacking.compile linear_clean in
  let asm = Asmgen.compile mach in
  {
    clight;
    clight_simpl;
    csharpminor;
    cminor;
    cminorsel;
    rtl;
    rtl_tailcall;
    rtl_renumber;
    rtl_constprop;
    rtl_cse;
    rtl_deadcode;
    ltl;
    ltl_tunneled;
    linear;
    linear_clean;
    mach;
    asm;
  }

(** The whole compiler: Clight module in, x86 module out. *)
let compile ?options (p : Clight.program) : Asm.program =
  (compile_artifacts ?options p).asm

(** Names and order of the pipeline stages, for reports (Fig. 11). *)
let pass_names =
  [
    "SimplLocals";
    "Cshmgen";
    "Cminorgen";
    "Selection";
    "RTLgen";
    "Tailcall";
    "Renumber";
    "ConstProp";
    "CSE";
    "Deadcode";
    "Allocation";
    "Tunneling";
    "Linearize";
    "CleanupLabels";
    "Stacking";
    "Asmgen";
  ]
