(** Memory addresses, CompCert-style: a block identifier paired with an
    integer offset within the block (paper §3.1, footnote 2). *)

type t = { block : int; ofs : int }

let make block ofs = { block; ofs }

let compare a b =
  let c = Int.compare a.block b.block in
  if c <> 0 then c else Int.compare a.ofs b.ofs

let equal a b = a.block = b.block && a.ofs = b.ofs
let hash a = (a.block * 65599) + a.ofs
let pp ppf a = Fmt.pf ppf "%d.%d" a.block a.ofs
let to_string a = Fmt.str "%a" pp a

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Set.Make (Ord)

  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp) (elements s)

  let of_seq_list l = of_list l
end

module Map = Map.Make (Ord)
