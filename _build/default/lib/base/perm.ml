(** Block permissions implementing the client/object data partition of
    §7.1: object (synchronization-library) data carries permission
    [Object]; client code may only touch [Normal] blocks and the CImp
    object language may only touch [Object] blocks. This is how the
    framework confines benign races to the object's memory region. *)

type t = Normal | Object

let equal a b =
  match (a, b) with
  | Normal, Normal | Object, Object -> true
  | _ -> false

let pp ppf = function
  | Normal -> Fmt.string ppf "normal"
  | Object -> Fmt.string ppf "object"
