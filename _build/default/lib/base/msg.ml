(** Messages ι labelling module-local steps (Fig. 4). They define the
    protocol between a module and the global semantics:

    - [Tau]: silent internal step.
    - [Evt e]: externally observable event.
    - [Ret v]: termination of the current core, returning [v] to the
      caller frame (or ending the thread if this is the bottom frame).
    - [EntAtom]/[ExtAtom]: boundaries of atomic blocks.
    - [Call (f, args)]: external function call, resolved by the global
      linker as in Compositional CompCert's interaction semantics.
    - [TailCall (f, args)]: like [Call] but replaces the current frame;
      produced by the Tailcall optimization pass. *)

type t =
  | Tau
  | Evt of Event.t
  | Ret of Value.t
  | EntAtom
  | ExtAtom
  | Call of string * Value.t list
  | TailCall of string * Value.t list

let is_tau = function Tau -> true | _ -> false

(** Switch points of the non-preemptive semantics: every non-silent
    message yields control (§3.3: context switch occurs only at
    synchronization points). *)
let is_switch_point m = not (is_tau m)

let equal a b =
  match (a, b) with
  | Tau, Tau | EntAtom, EntAtom | ExtAtom, ExtAtom -> true
  | Evt x, Evt y -> Event.equal x y
  | Ret x, Ret y -> Value.equal x y
  | Call (f, xs), Call (g, ys) | TailCall (f, xs), TailCall (g, ys) ->
    String.equal f g && List.length xs = List.length ys
    && List.for_all2 Value.equal xs ys
  | _ -> false

let pp ppf = function
  | Tau -> Fmt.string ppf "tau"
  | Evt e -> Event.pp ppf e
  | Ret v -> Fmt.pf ppf "ret(%a)" Value.pp v
  | EntAtom -> Fmt.string ppf "EntAtom"
  | ExtAtom -> Fmt.string ppf "ExtAtom"
  | Call (f, args) ->
    Fmt.pf ppf "call %s(%a)" f Fmt.(list ~sep:comma Value.pp) args
  | TailCall (f, args) ->
    Fmt.pf ppf "tailcall %s(%a)" f Fmt.(list ~sep:comma Value.pp) args
