(** Freelists F: each thread owns an infinite set of block identifiers
    reserved for its stack allocations (Fig. 5). Freelists of distinct
    threads must be disjoint (Load rule, Fig. 7).

    We realize F as the arithmetic progression
    [{ offset + k * stride | k ≥ 0 }]. With [stride = n] (the number of
    threads) and per-thread offsets, disjointness is by construction, and
    allocations of different threads commute — the key property §2.3 needs
    for the preemptive/non-preemptive equivalence proof, which CompCert's
    single shared nextblock breaks. *)

type t = { offset : int; stride : int }

let make ~offset ~stride =
  if stride <= 0 then invalid_arg "Flist.make: stride must be positive";
  if offset < 0 then invalid_arg "Flist.make: offset must be non-negative";
  { offset; stride }

(** The [i]-th block of the freelist (the b_i of §7.1). *)
let nth f i = f.offset + (i * f.stride)

let mem f b = b >= f.offset && (b - f.offset) mod f.stride = 0

let disjoint f g =
  (* Two progressions a+ks, b+kt are disjoint iff no common element; we
     only ever build same-stride families, but answer the general question
     by bounded search over one period. *)
  if f.stride = g.stride then (f.offset - g.offset) mod f.stride <> 0
  else
    let lcm =
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      f.stride * g.stride / gcd f.stride g.stride
    in
    let limit = max f.offset g.offset + lcm in
    let rec probe b = b > limit || ((not (mem f b)) || not (mem g b)) && probe (b + 1)
    in
    probe (min f.offset g.offset)

(** Partition block space above [base] (blocks < base hold globals) into
    [n] pairwise-disjoint freelists, one per thread. *)
let partition ~globals:base n =
  List.init n (fun i -> make ~offset:(base + i) ~stride:n)

let pp ppf f = Fmt.pf ppf "{%d + k*%d}" f.offset f.stride

(** Addresses belonging to the freelist's blocks. *)
let owns_addr f (a : Addr.t) = mem f a.block
