(** Externally observable events (the [e] of Fig. 4). Event traces built
    from these are the objects compared by refinement ⊑ and equivalence ≈. *)

type t =
  | Print of int  (** output of an integer, e.g. the [print] call in Fig. 10(c) *)
  | Out of string  (** labelled output, used by examples and tests *)

let equal a b =
  match (a, b) with
  | Print x, Print y -> x = y
  | Out x, Out y -> String.equal x y
  | _ -> false

let compare a b =
  match (a, b) with
  | Print x, Print y -> Int.compare x y
  | Print _, _ -> -1
  | _, Print _ -> 1
  | Out x, Out y -> String.compare x y

let pp ppf = function
  | Print n -> Fmt.pf ppf "print(%d)" n
  | Out s -> Fmt.pf ppf "out(%s)" s

let to_string e = Fmt.str "%a" pp e
