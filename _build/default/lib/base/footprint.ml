(** Footprints δ = (rs, ws): the sets of memory locations read and written
    by a step (Fig. 4). The paper folds permission-observing operations
    into rs/ws (footnote 4); we do the same. *)

type t = { rs : Addr.Set.t; ws : Addr.Set.t }

let empty = { rs = Addr.Set.empty; ws = Addr.Set.empty }
let is_empty d = Addr.Set.is_empty d.rs && Addr.Set.is_empty d.ws
let reads addrs = { rs = Addr.Set.of_list addrs; ws = Addr.Set.empty }
let writes addrs = { rs = Addr.Set.empty; ws = Addr.Set.of_list addrs }
let read1 a = reads [ a ]
let write1 a = writes [ a ]

let union a b =
  { rs = Addr.Set.union a.rs b.rs; ws = Addr.Set.union a.ws b.ws }

let union_all l = List.fold_left union empty l

(** δ ⊆ δ' pointwise (the [FP.subset] of Fig. 12). *)
let subset a b = Addr.Set.subset a.rs b.rs && Addr.Set.subset a.ws b.ws

(** When used as a set, δ denotes rs ∪ ws (§5). *)
let locs d = Addr.Set.union d.rs d.ws

(** δ1 ⌢ δ2: conflict, i.e. one's write set meets the other's locations
    (§5). This is the heart of the race predictor. *)
let conflict d1 d2 =
  (not (Addr.Set.is_empty (Addr.Set.inter d1.ws (locs d2))))
  || not (Addr.Set.is_empty (Addr.Set.inter d2.ws (locs d1)))

(** Instrumented conflict (δ1,d1) ⌢ (δ2,d2): racy only if at least one of
    the two accesses is outside an atomic block (§5). *)
let conflict_bits (d1, b1) (d2, b2) = conflict d1 d2 && ((not b1) || not b2)

(** Restrict a footprint to a region of interest. *)
let inter_locs d s =
  { rs = Addr.Set.inter d.rs s; ws = Addr.Set.inter d.ws s }

(** Is the footprint confined to [region]? Used for the "in scope"
    premises δ ⊆ (F ∪ µ.S) of Def. 3. *)
let within d ~mem:region = Addr.Set.subset (locs d) region

let equal a b = Addr.Set.equal a.rs b.rs && Addr.Set.equal a.ws b.ws

let pp ppf d =
  Fmt.pf ppf "(rs=%a, ws=%a)" Addr.Set.pp d.rs Addr.Set.pp d.ws
