lib/base/flist.ml: Addr Fmt List
