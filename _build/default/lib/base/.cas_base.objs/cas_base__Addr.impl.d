lib/base/addr.ml: Fmt Int Map Set
