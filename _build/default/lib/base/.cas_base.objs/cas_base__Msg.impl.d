lib/base/msg.ml: Event Fmt List String Value
