lib/base/value.ml: Addr Fmt Int
