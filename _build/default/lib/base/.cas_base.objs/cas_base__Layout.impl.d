lib/base/layout.ml: Addr Flist Footprint Int List Map Memory Option Perm Value
