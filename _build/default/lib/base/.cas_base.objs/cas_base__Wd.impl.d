lib/base/wd.ml: Addr Flist Fmt Footprint Lang List Memory Msg Value
