lib/base/lang.ml: Flist Fmt Footprint Format Genv List Memory Msg Value
