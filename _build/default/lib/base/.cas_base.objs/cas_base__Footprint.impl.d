lib/base/footprint.ml: Addr Fmt List
