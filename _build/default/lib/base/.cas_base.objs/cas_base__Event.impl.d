lib/base/event.ml: Fmt Int String
