lib/base/memory.ml: Addr Buffer Flist Fmt Footprint Int List Map Option Perm String Value
