lib/base/genv.ml: Addr List Map Memory Option Perm String Value
