lib/base/perm.ml: Fmt
