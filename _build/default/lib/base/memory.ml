(** The global memory state σ: a finite partial map from addresses to
    values (Fig. 4), organized CompCert-style as a finite map from block
    identifiers to fixed-size arrays of abstract values. Cells are
    word-indexed; we do not model byte splitting (documented simplification
    in DESIGN.md).

    Each block carries a permission tag implementing the client/object
    partition of §7.1. *)

module IntMap = Map.Make (Int)

type block_info = {
  size : int;  (** number of word cells, offsets 0..size-1 *)
  data : Value.t IntMap.t;  (** missing offsets read as [Vundef] *)
  perm : Perm.t;
}

type t = { blocks : block_info IntMap.t }

type fault =
  | Unmapped of Addr.t
  | Out_of_bounds of Addr.t
  | Perm_mismatch of Addr.t * Perm.t

let pp_fault ppf = function
  | Unmapped a -> Fmt.pf ppf "unmapped %a" Addr.pp a
  | Out_of_bounds a -> Fmt.pf ppf "out-of-bounds %a" Addr.pp a
  | Perm_mismatch (a, p) ->
    Fmt.pf ppf "permission mismatch at %a (block is %a)" Addr.pp a Perm.pp p

let empty = { blocks = IntMap.empty }

let block_defined m b = IntMap.mem b m.blocks

(** Allocate block [b] with [size] cells; fails if already defined. Used
    both for globals at load time and for stack allocation. *)
let alloc_block m ~block ~size ~perm =
  if block_defined m block then
    invalid_arg (Fmt.str "Memory.alloc_block: block %d already allocated" block)
  else
    { blocks = IntMap.add block { size; data = IntMap.empty; perm } m.blocks }

(** Least block of freelist [f] not yet in the memory domain. Because
    memory domains only grow ([forward]), this is deterministic and
    collision-free across the frames of one thread. *)
let fresh_block m f =
  let rec go i =
    let b = Flist.nth f i in
    if block_defined m b then go (i + 1) else b
  in
  go 0

(** Allocate a fresh block from freelist [f]. Returns the new memory, the
    block id, and the allocation footprint (the fresh cells appear in the
    write set, as required by LEffect item (2) of Def. 1). *)
let alloc m f ~size ~perm =
  let b = fresh_block m f in
  let m' = alloc_block m ~block:b ~size ~perm in
  let ws = List.init size (fun i -> Addr.make b i) in
  (m', b, Footprint.writes ws)

let load ?(perm = Perm.Normal) m (a : Addr.t) =
  match IntMap.find_opt a.block m.blocks with
  | None -> Error (Unmapped a)
  | Some bi ->
    if a.ofs < 0 || a.ofs >= bi.size then Error (Out_of_bounds a)
    else if not (Perm.equal bi.perm perm) then Error (Perm_mismatch (a, bi.perm))
    else Ok (Option.value ~default:Value.Vundef (IntMap.find_opt a.ofs bi.data))

let store ?(perm = Perm.Normal) m (a : Addr.t) v =
  match IntMap.find_opt a.block m.blocks with
  | None -> Error (Unmapped a)
  | Some bi ->
    if a.ofs < 0 || a.ofs >= bi.size then Error (Out_of_bounds a)
    else if not (Perm.equal bi.perm perm) then Error (Perm_mismatch (a, bi.perm))
    else
      let bi' = { bi with data = IntMap.add a.ofs v bi.data } in
      Ok { blocks = IntMap.add a.block bi' m.blocks }

(** Load ignoring permissions; used by meta-level checkers only, never by
    language semantics. *)
let peek m (a : Addr.t) =
  match IntMap.find_opt a.block m.blocks with
  | None -> None
  | Some bi ->
    if a.ofs < 0 || a.ofs >= bi.size then None
    else Some (Option.value ~default:Value.Vundef (IntMap.find_opt a.ofs bi.data))

let perm_of_block m b =
  Option.map (fun bi -> bi.perm) (IntMap.find_opt b m.blocks)

let block_size m b = Option.map (fun bi -> bi.size) (IntMap.find_opt b m.blocks)

(** dom(σ) as an address set (finite: blocks × sizes). *)
let dom m =
  IntMap.fold
    (fun b bi acc ->
      let rec add ofs acc =
        if ofs >= bi.size then acc else add (ofs + 1) (Addr.Set.add (Addr.make b ofs) acc)
      in
      add 0 acc)
    m.blocks Addr.Set.empty

let dom_blocks m = IntMap.fold (fun b _ acc -> b :: acc) m.blocks [] |> List.rev

(** σ₁ =S= σ₂ (Fig. 6): agree on every address of [s] — either undefined in
    both or defined in both with equal contents. *)
let eq_on s m1 m2 =
  Addr.Set.for_all
    (fun a ->
      match (peek m1 a, peek m2 a) with
      | None, None -> true
      | Some v1, Some v2 -> Value.equal v1 v2
      | _ -> false)
    s

(** forward(σ, σ'): the domain only grows (Def. 1 item 1). *)
let forward m m' =
  IntMap.for_all
    (fun b bi ->
      match IntMap.find_opt b m'.blocks with
      | Some bi' -> bi'.size >= bi.size
      | None -> false)
    m.blocks

(** LEffect(σ, σ', δ, F) (Fig. 6): cells outside δ.ws are unchanged, and
    newly-allocated cells lie in δ.ws ∩ F. *)
let leffect m m' (d : Footprint.t) f =
  let outside_ws_unchanged =
    Addr.Set.for_all
      (fun a ->
        Addr.Set.mem a d.ws
        ||
        match (peek m a, peek m' a) with
        | Some v, Some v' -> Value.equal v v'
        | _ -> false)
      (dom m)
  in
  let new_cells = Addr.Set.diff (dom m') (dom m) in
  outside_ws_unchanged
  && Addr.Set.for_all (fun a -> Addr.Set.mem a d.ws && Flist.owns_addr f a) new_cells

(** closed(S, σ) (Fig. 7): pointers stored at addresses in S point into S. *)
let closed_on s m =
  Addr.Set.for_all
    (fun a ->
      match peek m a with
      | Some (Value.Vptr p) -> Addr.Set.mem p s
      | _ -> true)
    s

let closed m = closed_on (dom m) m

(** Canonical fingerprint for state-space memoization. *)
let fingerprint m =
  let buf = Buffer.create 256 in
  IntMap.iter
    (fun b bi ->
      Buffer.add_string buf (string_of_int b);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int bi.size);
      Buffer.add_char buf '[';
      IntMap.iter
        (fun ofs v ->
          match v with
          | Value.Vundef -> ()
          | v ->
            Buffer.add_string buf (string_of_int ofs);
            Buffer.add_char buf '=';
            Buffer.add_string buf (Value.to_string v);
            Buffer.add_char buf ';')
        bi.data;
      Buffer.add_char buf ']')
    m.blocks;
  Buffer.contents buf

let equal m1 m2 = String.equal (fingerprint m1) (fingerprint m2)

let pp ppf m =
  IntMap.iter
    (fun b bi ->
      Fmt.pf ppf "@[block %d (%a, %d cells):" b Perm.pp bi.perm bi.size;
      IntMap.iter (fun ofs v -> Fmt.pf ppf " [%d]=%a" ofs Value.pp v) bi.data;
      Fmt.pf ppf "@]@.")
    m.blocks
