lib/core/simulation.ml: Addr Cas_base Event Flist Fmt Footprint Genv Hashtbl Lang List Memory Msg Perm String Value
