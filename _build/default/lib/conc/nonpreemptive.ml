(** The global non-preemptive semantics (§3.3): the current thread runs
    without interruption; context switches happen only at synchronization
    points — atomic block boundaries (the EntAtnp/ExtAtnp rules of
    Fig. 7), observable events, and thread termination. Each switch-point
    step is immediately followed by a nondeterministic choice of the next
    thread, producing the sw-labelled combined steps of the paper. *)

open Cas_base

let is_switch_msg = function
  | Msg.EntAtom | Msg.ExtAtom | Msg.Evt _ -> true
  | Msg.Ret _ -> true (* only thread termination reaches the global level *)
  | Msg.Tau | Msg.Call _ | Msg.TailCall _ -> false

let gmsg_of_local : Msg.t -> World.gmsg = function
  | Msg.Evt e -> World.Gevt e
  | _ -> World.Gtau

(** Was this Ret the termination of the whole thread (rather than an
    internal frame pop)? We detect it on the successor world. *)
let thread_terminated (w' : World.t) tid =
  match World.IMap.find_opt tid w'.threads with
  | Some t -> World.thread_done t
  | None -> true

let steps (w : World.t) : Gsem.succ list =
  let cur_live = List.mem w.cur (World.live_tids w) in
  if not cur_live then
    (* The current thread just terminated elsewhere; in well-formed
       executions the terminating step already switched. Allow recovery
       switches so exploration never wedges. *)
    World.live_tids w
    |> List.map (fun t ->
           Gsem.Next (World.Gsw, Footprint.empty, { w with cur = t }))
  else
    List.concat_map
      (function
        | World.LAbort -> [ Gsem.Abort ]
        | World.LNext (msg, fp, w') ->
          let switching =
            match msg with
            | Msg.Ret _ -> thread_terminated w' w.cur
            | m -> is_switch_msg m
          in
          if not switching then [ Gsem.Next (gmsg_of_local msg, fp, w') ]
          else
            (* the step and the switch are one combined transition *)
            let targets =
              match World.live_tids w' with
              | [] -> [ w'.cur ] (* everyone done; stay *)
              | ts -> ts
            in
            List.map
              (fun t -> Gsem.Next (gmsg_of_local msg, fp, { w' with cur = t }))
              targets)
      (World.local_steps w w.cur)
