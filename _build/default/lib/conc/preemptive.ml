(** The global preemptive semantics (Fig. 7): the current thread takes
    local steps; the Switch rule allows a context switch to any live
    thread at any point where the current thread is outside atomic
    blocks. *)

open Cas_base

let gmsg_of_local : Msg.t -> World.gmsg = function
  | Msg.Evt e -> World.Gevt e
  | Msg.Tau | Msg.Ret _ | Msg.EntAtom | Msg.ExtAtom | Msg.Call _
  | Msg.TailCall _ ->
    World.Gtau

let steps (w : World.t) : Gsem.succ list =
  let cur_live =
    match World.live_tids w with tids -> List.mem w.cur tids
  in
  let local =
    if cur_live then
      List.map
        (function
          | World.LAbort -> Gsem.Abort
          | World.LNext (msg, fp, w') -> Gsem.Next (gmsg_of_local msg, fp, w'))
        (World.local_steps w w.cur)
    else []
  in
  let switches =
    (* Switch: only outside atomic blocks (d = 0). *)
    if World.dbit w w.cur then []
    else
      World.live_tids w
      |> List.filter (fun t -> t <> w.cur)
      |> List.map (fun t ->
             Gsem.Next (World.Gsw, Footprint.empty, { w with cur = t }))
  in
  local @ switches
