(** Bounded-exhaustive state-space exploration: the engine behind every
    empirical check in this reproduction (DRF, trace refinement, the
    preemptive/non-preemptive equivalence, and the TSO machine of §7.3).
    It is generic in the world type; [Cas_tso] instantiates it with
    store-buffer worlds. Worlds are memoized by canonical fingerprint. *)

open Cas_base

(** A transition system over worlds of type ['w]. *)
type 'w gsucc = GNext of World.gmsg * 'w | GAbort

type 'w system = {
  fingerprint : 'w -> string;
  all_done : 'w -> bool;
  steps : 'w -> 'w gsucc list;
}

type stats = {
  visited : int;  (** distinct worlds reached *)
  transitions : int;
  truncated : bool;  (** hit the world cap — results are partial *)
  abort_reachable : bool;
}

let pp_stats ppf s =
  Fmt.pf ppf "%d worlds, %d transitions%s%s" s.visited s.transitions
    (if s.truncated then " (truncated)" else "")
    (if s.abort_reachable then " (abort reachable)" else "")

(** Breadth-first reachability. [visit] is called once per distinct world. *)
let reachable_gen ?(max_worlds = 200_000) (sys : 'w system)
    (initials : 'w list) ~(visit : 'w -> unit) : stats =
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let transitions = ref 0 in
  let truncated = ref false in
  let abort = ref false in
  let push w =
    let fp = sys.fingerprint w in
    if not (Hashtbl.mem seen fp) then
      if Hashtbl.length seen >= max_worlds then truncated := true
      else begin
        Hashtbl.add seen fp ();
        Queue.add w queue
      end
  in
  List.iter push initials;
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    visit w;
    List.iter
      (fun s ->
        incr transitions;
        match s with
        | GAbort -> abort := true
        | GNext (_, w') -> push w')
      (sys.steps w)
  done;
  {
    visited = Hashtbl.length seen;
    transitions = !transitions;
    truncated = !truncated;
    abort_reachable = !abort;
  }

(* ------------------------------------------------------------------ *)
(* Trace enumeration                                                   *)
(* ------------------------------------------------------------------ *)

(** Termination status of an enumerated execution: [SDone] — all threads
    finished; [SAbort] — some thread aborted; [SCut] — the execution was
    cut at a cycle or at the step budget (a divergent or unfinished
    schedule). *)
type status = SDone | SAbort | SCut

type trace = Event.t list * status

let pp_status ppf = function
  | SDone -> Fmt.string ppf "done"
  | SAbort -> Fmt.string ppf "abort"
  | SCut -> Fmt.string ppf "..."

let pp_trace ppf (es, st) =
  Fmt.pf ppf "[%a]%a" Fmt.(list ~sep:comma Event.pp) es pp_status st

let trace_key (es, st) =
  String.concat ","
    (List.map Event.to_string es
    @ [ (match st with SDone -> "$D" | SAbort -> "$A" | SCut -> "$C") ])

module TraceSet = struct
  module M = Map.Make (String)

  type t = trace M.t

  let empty : t = M.empty
  let add tr s = M.add (trace_key tr) tr s
  let mem tr s = M.mem (trace_key tr) s
  let elements (s : t) = List.map snd (M.bindings s)
  let cardinal = M.cardinal
  let union a b = M.union (fun _ x _ -> Some x) a b
  let subset a b = M.for_all (fun k _ -> M.mem k b) a
  let equal a b = subset a b && subset b a
  let filter f (s : t) = M.filter (fun _ tr -> f tr) s

  let pp ppf s =
    Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_trace) (elements s)
end

type trace_result = {
  traces : TraceSet.t;
  complete : bool;
      (** false if the path/step budget was exhausted anywhere *)
}

(** Enumerate event traces along cycle-free schedule paths (depth-first,
    cutting when a world repeats on the current path — the continuation
    is a divergent schedule — or when budgets are exhausted). *)
let traces_gen ?(max_steps = 4000) ?(max_paths = 200_000) (sys : 'w system)
    (initials : 'w list) : trace_result =
  let module SSet = Set.Make (String) in
  let acc = ref TraceSet.empty in
  let paths = ref 0 in
  let complete = ref true in
  let emit tr = acc := TraceSet.add tr !acc in
  let rec go w on_path events budget =
    if !paths > max_paths then complete := false
    else if budget = 0 then begin
      complete := false;
      emit (List.rev events, SCut)
    end
    else if sys.all_done w then emit (List.rev events, SDone)
    else
      let fp = sys.fingerprint w in
      if SSet.mem fp on_path then emit (List.rev events, SCut)
      else begin
        let succs = sys.steps w in
        if succs = [] then emit (List.rev events, SCut)
        else
          List.iter
            (fun s ->
              incr paths;
              match s with
              | GAbort -> emit (List.rev events, SAbort)
              | GNext (gmsg, w') ->
                let events' =
                  match gmsg with
                  | World.Gevt e -> e :: events
                  | World.Gtau | World.Gsw -> events
                in
                go w' (SSet.add fp on_path) events' (budget - 1))
            succs
      end
  in
  List.iter (fun w -> go w SSet.empty [] max_steps) initials;
  { traces = !acc; complete = !complete }

(* ------------------------------------------------------------------ *)
(* Instantiation for the interleaving worlds of [World]                *)
(* ------------------------------------------------------------------ *)

let world_system (step : Gsem.stepf) : World.t system =
  {
    fingerprint = World.fingerprint;
    all_done = World.all_done;
    steps =
      (fun w ->
        List.map
          (function
            | Gsem.Abort -> GAbort
            | Gsem.Next (g, _, w') -> GNext (g, w'))
          (step w));
  }

let reachable ?max_worlds (step : Gsem.stepf) (initials : World.t list)
    ~(visit : World.t -> unit) : stats =
  reachable_gen ?max_worlds (world_system step) initials ~visit

let traces ?max_steps ?max_paths (step : Gsem.stepf) (initials : World.t list)
    : trace_result =
  traces_gen ?max_steps ?max_paths (world_system step) initials

(* ------------------------------------------------------------------ *)
(* Product search: event-property reachability                         *)
(* ------------------------------------------------------------------ *)

(** Breadth-first search over the product of the world graph with a
    user-supplied event automaton: [step_state] folds observable events
    into a monitor state, and the search reports whether a world with an
    [accept]ing monitor state is reachable. Unlike [traces_gen], this is
    memoized over (world, monitor-state) pairs, so properties of the
    event *language* (e.g. "two critical-section entries overlap") can be
    decided on graphs whose path trees are astronomically large. *)
let search (sys : 'w system) (initials : 'w list) ~(init : 's)
    ~(step_state : 's -> Event.t -> 's) ~(accept : 's -> bool)
    ~(state_fp : 's -> string) ?(max_worlds = 500_000) () : bool =
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let found = ref false in
  let push w st =
    let fp = sys.fingerprint w ^ "#" ^ state_fp st in
    if (not (Hashtbl.mem seen fp)) && Hashtbl.length seen < max_worlds then begin
      Hashtbl.add seen fp ();
      Queue.add (w, st) queue
    end
  in
  List.iter (fun w -> push w init) initials;
  while (not !found) && not (Queue.is_empty queue) do
    let w, st = Queue.pop queue in
    if accept st then found := true
    else
      List.iter
        (function
          | GAbort -> ()
          | GNext (gmsg, w') ->
            let st' =
              match gmsg with
              | World.Gevt e -> step_state st e
              | World.Gtau | World.Gsw -> st
            in
            if accept st' then found := true else push w' st')
        (sys.steps w)
  done;
  !found
