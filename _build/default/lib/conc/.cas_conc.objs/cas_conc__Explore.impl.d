lib/conc/explore.ml: Cas_base Event Fmt Gsem Hashtbl List Map Queue Set String World
