lib/conc/race.ml: Cas_base Explore Fmt Footprint Gsem List Msg Nonpreemptive Option Preemptive World
