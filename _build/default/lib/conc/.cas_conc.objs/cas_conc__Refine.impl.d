lib/conc/refine.ml: Cas_base Event Explore Fmt Gsem Lang List World
