lib/conc/gsem.ml: Cas_base Footprint List World
