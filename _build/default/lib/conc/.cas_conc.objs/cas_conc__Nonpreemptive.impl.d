lib/conc/nonpreemptive.ml: Cas_base Footprint Gsem List Msg World
