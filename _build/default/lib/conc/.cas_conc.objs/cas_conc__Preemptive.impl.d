lib/conc/preemptive.ml: Cas_base Footprint Gsem List Msg World
