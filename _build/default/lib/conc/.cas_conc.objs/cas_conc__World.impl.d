lib/conc/world.ml: Buffer Cas_base Event Flist Fmt Footprint Genv Int Lang List Map Memory Msg Option Value
