(** Global transition interface shared by the preemptive and
    non-preemptive semantics: a world steps to a set of successors, each
    labelled with a global message o ::= τ | e | sw and a footprint. *)

open Cas_base

type succ =
  | Next of World.gmsg * Footprint.t * World.t
  | Abort

(** A global semantics is a successor function. *)
type stepf = World.t -> succ list

(** Both semantics choose the initial thread nondeterministically
    (t ∈ dom(T) in the Load rule), so exploration starts from one world
    per choice of initial thread. *)
let initials (w : World.t) : World.t list =
  match World.live_tids w with
  | [] -> [ w ]
  | tids -> List.map (fun t -> { w with cur = t }) tids
