(** Hand-written lexer shared by the mini-C (Clight) and CImp parsers. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** keywords: int void if else while return object atomic assert reg *)
  | PUNCT of string
  | EOF

type pos = { pline : int; pcol : int }

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
  mutable peeked : (token * pos) option;
}

exception Error of string * pos

let keywords =
  [ "int"; "void"; "if"; "else"; "while"; "return"; "object"; "atomic";
    "assert"; "reg" ]

let create src = { src; off = 0; line = 1; bol = 0; peeked = None }

let pos_of lx = { pline = lx.line; pcol = lx.off - lx.bol + 1 }

let error lx fmt = Fmt.kstr (fun s -> raise (Error (s, pos_of lx))) fmt

let pp_pos ppf p = Fmt.pf ppf "line %d, column %d" p.pline p.pcol

let pp_token ppf = function
  | INT n -> Fmt.pf ppf "integer %d" n
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | KW s -> Fmt.pf ppf "keyword %s" s
  | PUNCT s -> Fmt.pf ppf "'%s'" s
  | EOF -> Fmt.string ppf "end of input"

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws lx =
  if lx.off >= String.length lx.src then ()
  else
    match lx.src.[lx.off] with
    | ' ' | '\t' | '\r' ->
      lx.off <- lx.off + 1;
      skip_ws lx
    | '\n' ->
      lx.off <- lx.off + 1;
      lx.line <- lx.line + 1;
      lx.bol <- lx.off;
      skip_ws lx
    | '/'
      when lx.off + 1 < String.length lx.src && lx.src.[lx.off + 1] = '/' ->
      while lx.off < String.length lx.src && lx.src.[lx.off] <> '\n' do
        lx.off <- lx.off + 1
      done;
      skip_ws lx
    | '/'
      when lx.off + 1 < String.length lx.src && lx.src.[lx.off + 1] = '*' ->
      lx.off <- lx.off + 2;
      let rec close () =
        if lx.off + 1 >= String.length lx.src then error lx "unterminated comment"
        else if lx.src.[lx.off] = '*' && lx.src.[lx.off + 1] = '/' then
          lx.off <- lx.off + 2
        else begin
          if lx.src.[lx.off] = '\n' then begin
            lx.line <- lx.line + 1;
            lx.bol <- lx.off + 1
          end;
          lx.off <- lx.off + 1;
          close ()
        end
      in
      close ();
      skip_ws lx
    | _ -> ()

(* multi-character punctuation, longest first *)
let puncts =
  [ ":="; "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "="; "+"; "-"; "*"; "/"; "%";
    "<"; ">"; "!"; "&"; "|"; "^"; "~" ]

let lex_one lx : token * pos =
  skip_ws lx;
  let p = pos_of lx in
  if lx.off >= String.length lx.src then (EOF, p)
  else
    let c = lx.src.[lx.off] in
    if is_digit c then begin
      let start = lx.off in
      while lx.off < String.length lx.src && is_digit lx.src.[lx.off] do
        lx.off <- lx.off + 1
      done;
      (INT (int_of_string (String.sub lx.src start (lx.off - start))), p)
    end
    else if is_alpha c then begin
      let start = lx.off in
      while lx.off < String.length lx.src && is_alnum lx.src.[lx.off] do
        lx.off <- lx.off + 1
      done;
      let s = String.sub lx.src start (lx.off - start) in
      ((if List.mem s keywords then KW s else IDENT s), p)
    end
    else
      match
        List.find_opt
          (fun pct ->
            let n = String.length pct in
            lx.off + n <= String.length lx.src
            && String.sub lx.src lx.off n = pct)
          puncts
      with
      | Some pct ->
        lx.off <- lx.off + String.length pct;
        (PUNCT pct, p)
      | None -> error lx "unexpected character %C" c

let peek lx : token * pos =
  match lx.peeked with
  | Some tp -> tp
  | None ->
    let tp = lex_one lx in
    lx.peeked <- Some tp;
    tp

let next lx : token * pos =
  match lx.peeked with
  | Some tp ->
    lx.peeked <- None;
    tp
  | None -> lex_one lx

let expect lx (t : token) =
  let got, p = next lx in
  if got <> t then
    raise (Error (Fmt.str "expected %a, got %a" pp_token t pp_token got, p))

let expect_punct lx s = expect lx (PUNCT s)

let accept_punct lx s =
  match peek lx with
  | PUNCT s', _ when s = s' ->
    ignore (next lx);
    true
  | _ -> false

let expect_ident lx : string =
  match next lx with
  | IDENT s, _ -> s
  | t, p -> raise (Error (Fmt.str "expected identifier, got %a" pp_token t, p))
