(** Operators shared by the source and intermediate languages, with total
    CompCert-style evaluation: ill-typed applications produce [Vundef]. *)

open Cas_base

type binop =
  | Oadd
  | Osub
  | Omul
  | Odiv
  | Omod
  | Oand
  | Oor
  | Oxor
  | Oshl
  | Oshr
  | Oeq
  | One
  | Olt
  | Ole
  | Ogt
  | Oge

type unop = Oneg | Onot | Olognot

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Oadd -> "+"
    | Osub -> "-"
    | Omul -> "*"
    | Odiv -> "/"
    | Omod -> "%"
    | Oand -> "&"
    | Oor -> "|"
    | Oxor -> "^"
    | Oshl -> "<<"
    | Oshr -> ">>"
    | Oeq -> "=="
    | One -> "!="
    | Olt -> "<"
    | Ole -> "<="
    | Ogt -> ">"
    | Oge -> ">=")

let pp_unop ppf op =
  Fmt.string ppf (match op with Oneg -> "-" | Onot -> "~" | Olognot -> "!")

let bool b = Value.Vint (if b then 1 else 0)

let eval_binop op (v1 : Value.t) (v2 : Value.t) : Value.t =
  match (op, v1, v2) with
  | Oadd, Vint a, Vint b -> Vint (a + b)
  | Oadd, Vptr p, Vint b -> Vptr (Addr.make p.block (p.ofs + b))
  | Oadd, Vint a, Vptr p -> Vptr (Addr.make p.block (p.ofs + a))
  | Osub, Vint a, Vint b -> Vint (a - b)
  | Osub, Vptr p, Vint b -> Vptr (Addr.make p.block (p.ofs - b))
  | Osub, Vptr p, Vptr q when p.block = q.block -> Vint (p.ofs - q.ofs)
  | Omul, Vint a, Vint b -> Vint (a * b)
  | Odiv, Vint a, Vint b when b <> 0 -> Vint (a / b)
  | Omod, Vint a, Vint b when b <> 0 -> Vint (a mod b)
  | Oand, Vint a, Vint b -> Vint (a land b)
  | Oor, Vint a, Vint b -> Vint (a lor b)
  | Oxor, Vint a, Vint b -> Vint (a lxor b)
  | Oshl, Vint a, Vint b when b >= 0 && b < 63 -> Vint (a lsl b)
  | Oshr, Vint a, Vint b when b >= 0 && b < 63 -> Vint (a asr b)
  | Oeq, Vint a, Vint b -> bool (a = b)
  | Oeq, Vptr p, Vptr q -> bool (Addr.equal p q)
  | Oeq, Vptr _, Vint 0 | Oeq, Vint 0, Vptr _ -> bool false
  | One, Vint a, Vint b -> bool (a <> b)
  | One, Vptr p, Vptr q -> bool (not (Addr.equal p q))
  | One, Vptr _, Vint 0 | One, Vint 0, Vptr _ -> bool true
  | Olt, Vint a, Vint b -> bool (a < b)
  | Ole, Vint a, Vint b -> bool (a <= b)
  | Ogt, Vint a, Vint b -> bool (a > b)
  | Oge, Vint a, Vint b -> bool (a >= b)
  | _ -> Vundef

let eval_unop op (v : Value.t) : Value.t =
  match (op, v) with
  | Oneg, Vint a -> Vint (-a)
  | Onot, Vint a -> Vint (lnot a)
  | Olognot, Vint a -> bool (a = 0)
  | Olognot, Vptr _ -> bool false
  | _ -> Vundef

(** Constant-evaluation helper for the ConstProp pass: [Some] only when the
    result is a known integer. *)
let const_binop op a b =
  match eval_binop op (Vint a) (Vint b) with Vint n -> Some n | _ -> None
