lib/langs/rtl.ml: Addr Cas_base Flist Fmt Footprint Genv Int Lang List Map Memory Msg Ops Option Perm String Value
