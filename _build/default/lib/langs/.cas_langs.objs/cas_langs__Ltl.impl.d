lib/langs/ltl.ml: Addr Cas_base Flist Fmt Footprint Genv Int Lang List Map Memory Mreg Msg Option Perm String Value
