lib/langs/ops.ml: Addr Cas_base Fmt Value
