lib/langs/cminor.ml: Addr Cas_base Flist Fmt Footprint Genv Lang List Map Memory Msg Ops Option Perm String Value
