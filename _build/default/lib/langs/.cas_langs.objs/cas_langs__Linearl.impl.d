lib/langs/linearl.ml: Addr Array Cas_base Flist Fmt Footprint Genv Lang List Memory Mreg Msg Option Perm String Value
