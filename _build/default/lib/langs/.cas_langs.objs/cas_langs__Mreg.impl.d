lib/langs/mreg.ml: Cas_base Fmt Map Ops Stdlib Value
