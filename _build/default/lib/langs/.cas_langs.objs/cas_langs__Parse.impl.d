lib/langs/parse.ml: Cas_base Cimp Clight Fmt Genv Lexer List Ops Perm
