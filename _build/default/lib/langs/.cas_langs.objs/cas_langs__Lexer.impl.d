lib/langs/lexer.ml: Fmt List String
