lib/langs/asm.ml: Addr Array Cas_base Flist Fmt Footprint Genv Lang List Memory Mreg Msg Ops Option Perm String Value
