(** Peterson's mutual-exclusion algorithm — the cautionary tale.

    Peterson's algorithm is correct under sequential consistency but its
    flag/turn accesses are *data races* by the paper's definition, so
    none of the framework's guarantees apply — and indeed x86-TSO breaks
    it: both threads' flag stores can sit in their store buffers while
    each reads the other's stale flag, letting both enter the critical
    section. An mfence after the stores restores mutual exclusion.

    The demo shows all three facets:
    1. the race predictor flags the source-level races;
    2. under SC the mutual-exclusion invariant holds;
    3. under x86-TSO it fails — and the fence repairs it.

    This is the boundary of the paper's result: benign races must be
    confined to objects with race-free abstractions; Peterson's races are
    load-bearing and not confined.

    Run with: dune exec examples/peterson.exe *)

open Cas_base
open Cas_langs
open Cas_conc

(* ------------------------------------------------------------------ *)
(* Hand-written x86: thread i of Peterson with a violation detector    *)
(* ------------------------------------------------------------------ *)

(* globals: flag0 flag1 turn. Each thread announces critical-section
   entry with print(100+i) and exit with print(200+i); the global trace
   serializes events, so an overlap (two entries without an intervening
   exit) is detectable in the trace regardless of store buffering. *)
let peterson ~fence : Asm.program =
  let spin = 0 and enter = 1 in
  let mk name my_flag other_flag my_id other_id =
    {
      Asm.fname = name;
      arity = 0;
      framesize = 0;
      is_object = false;
      code =
        [
          (* flag[i] := 1 *)
          Asm.Plea_global (Mreg.CX, my_flag);
          Asm.Pmov_ri (Mreg.DX, 1);
          Asm.Pstore (Mreg.CX, 0, Mreg.DX);
          (* turn := other *)
          Asm.Plea_global (Mreg.CX, "turn");
          Asm.Pmov_ri (Mreg.DX, other_id);
          Asm.Pstore (Mreg.CX, 0, Mreg.DX);
        ]
        @ (if fence then [ Asm.Pmfence ] else [])
        @ [
            (* single Peterson check (a bounded attempt keeps the state
               space finite: if the check fails we give up rather than
               spin; the mutual-exclusion argument for entering is
               unchanged): enter iff flag[other]=0 or turn != other *)
            Asm.Plabel spin;
            Asm.Plea_global (Mreg.CX, other_flag);
            Asm.Pload (Mreg.AX, Mreg.CX, 0);
            Asm.Pcmp_ri (Mreg.AX, 0);
            Asm.Pjcc (Asm.Ceq, enter);
            Asm.Plea_global (Mreg.CX, "turn");
            Asm.Pload (Mreg.AX, Mreg.CX, 0);
            Asm.Pcmp_ri (Mreg.AX, other_id);
            Asm.Pjcc (Asm.Cne, enter);
            (* give up: busy elsewhere *)
            Asm.Pmov_ri (Mreg.AX, 300 + my_id);
            Asm.Pcall ("print", 1, false);
            Asm.Pret false;
            (* critical section bracketed by observable events *)
            Asm.Plabel enter;
            Asm.Pmov_ri (Mreg.AX, 100 + my_id);
            Asm.Pcall ("print", 1, false);  (* entering CS *)
            Asm.Pmov_ri (Mreg.AX, 200 + my_id);
            Asm.Pcall ("print", 1, false);  (* leaving CS *)
            (* flag[i] := 0 *)
            Asm.Plea_global (Mreg.CX, my_flag);
            Asm.Pmov_ri (Mreg.DX, 0);
            Asm.Pstore (Mreg.CX, 0, Mreg.DX);
            Asm.Pret false;
          ];
    }
  in
  {
    Asm.funcs =
      [ mk "p0" "flag0" "flag1" 0 1; mk "p1" "flag1" "flag0" 1 0 ];
    globals =
      [
        Genv.gvar ~init:[ Genv.Iint 0 ] "flag0" 1;
        Genv.gvar ~init:[ Genv.Iint 0 ] "flag1" 1;
        Genv.gvar ~init:[ Genv.Iint 0 ] "turn" 1;
      ];
  }

(* Mutual-exclusion monitor: count threads in the critical section;
   accepting (violating) state = 2. Run as a product search over the
   world graph — path enumeration would drown in schedule interleavings,
   the memoized product search decides it exactly. *)
let cs_monitor =
  ( 0,
    (fun in_cs e ->
      match e with
      | Event.Print n when n >= 100 && n < 200 -> in_cs + 1
      | Event.Print n when n >= 200 && n < 300 -> max 0 (in_cs - 1)
      | _ -> in_cs),
    (fun in_cs -> in_cs >= 2) )

let violated_sys sys initials =
  let init, step_state, accept = cs_monitor in
  Explore.search sys initials ~init ~step_state ~accept
    ~state_fp:string_of_int ()

(* ------------------------------------------------------------------ *)

let () =
  Fmt.pr "== 1. Peterson's flag/turn accesses are data races ==@.";
  let clight_version =
    Parse.clight
      {|
      int flag0 = 0;
      int flag1 = 0;
      int turn = 0;
      void p0() {
        flag0 = 1;
        turn = 1;
        while (flag1 && turn == 1) { }
        flag0 = 0;
      }
      void p1() {
        flag1 = 1;
        turn = 0;
        while (flag0 && turn == 0) { }
        flag1 = 0;
      }
    |}
  in
  let p = Lang.prog [ Lang.Mod (Clight.lang, clight_version) ] [ "p0"; "p1" ] in
  (match World.load p ~args:[] with
  | Error e -> Fmt.pr "load: %a@." World.pp_load_error e
  | Ok w ->
    Fmt.pr "race predictor on the Clight source: %a@.@." Race.pp_drf_report
      (Race.drf ~max_worlds:60_000 w));

  Fmt.pr "== 2. Under SC, mutual exclusion holds ==@.";
  let sc_prog fence =
    Lang.prog [ Lang.Mod (Asm.lang, peterson ~fence) ] [ "p0"; "p1" ]
  in
  (match World.load (sc_prog false) ~args:[] with
  | Error e -> Fmt.pr "load: %a@." World.pp_load_error e
  | Ok w ->
    Fmt.pr "SC, no fence: violation observable? %b@.@."
      (violated_sys (Explore.world_system Preemptive.steps) (Gsem.initials w)));

  Fmt.pr "== 3. Under x86-TSO, the buffered flags break it ==@.";
  (match Cas_tso.Tso.load [ peterson ~fence:false ] [ "p0"; "p1" ] with
  | Error e -> Fmt.pr "load: %a@." World.pp_load_error e
  | Ok w ->
    Fmt.pr "TSO, no fence: violation observable? %b  <- BROKEN@.@."
      (violated_sys Cas_tso.Tso.system (Cas_tso.Tso.initials w)));

  Fmt.pr "== 4. An mfence after the stores repairs it ==@.";
  match Cas_tso.Tso.load [ peterson ~fence:true ] [ "p0"; "p1" ] with
  | Error e -> Fmt.pr "load: %a@." World.pp_load_error e
  | Ok w ->
    Fmt.pr "TSO + mfence: violation observable? %b@."
      (violated_sys Cas_tso.Tso.system (Cas_tso.Tso.initials w));
    Fmt.pr
      "@.(moral: Peterson's races are not 'confined benign races' — no \
       race-free@. abstraction exists for them, so the paper's Lemma 16 does \
       not apply,@. and TSO really does break the algorithm.)@."
