(** Quickstart: parse a mini-C module, compile it through the full
    CASCompCert pipeline (Fig. 11), show the assembly, run source and
    target, and check the footprint-preserving simulation between them.

    Run with: dune exec examples/quickstart.exe *)

open Cas_base
open Cas_langs
open Cas_conc

let source =
  {|
  int counter = 0;

  int step(int n) {
    counter = counter + n;
    return counter;
  }

  void main() {
    int i;
    int r;
    i = 1;
    while (i <= 5) {
      r = step(i);
      i = i + 1;
    }
    print(r);
  }
|}

let () =
  Fmt.pr "== 1. Parse the mini-C module ==@.%s@." source;
  let client = Parse.clight source in

  Fmt.pr "== 2. Compile through all passes ==@.";
  let arts = Cas_compiler.Driver.compile_artifacts client in
  Fmt.pr "pipeline: %a@.@."
    Fmt.(list ~sep:(any " -> ") string)
    Cas_compiler.Driver.pass_names;
  Fmt.pr "RTL after optimizations:@.%a@.@."
    Fmt.(list ~sep:cut Rtl.pp_func)
    arts.Cas_compiler.Driver.rtl_cse.Rtl.funcs;
  Fmt.pr "x86 assembly:@.%a@.@."
    Fmt.(list ~sep:cut Asm.pp_func)
    arts.Cas_compiler.Driver.asm.Asm.funcs;

  Fmt.pr "== 3. Run source and target as whole programs ==@.";
  let run name prog =
    match World.load prog ~args:[] with
    | Error e -> Fmt.pr "%s: load error %a@." name World.pp_load_error e
    | Ok w ->
      let tr = Explore.traces Preemptive.steps (Gsem.initials w) in
      Fmt.pr "%s traces: @[<v>%a@]@." name Explore.TraceSet.pp
        tr.Explore.traces
  in
  run "source" (Lang.prog [ Lang.Mod (Clight.lang, client) ] [ "main" ]);
  run "target"
    (Lang.prog [ Lang.Mod (Asm.lang, arts.Cas_compiler.Driver.asm) ] [ "main" ]);

  Fmt.pr "@.== 4. Check the footprint-preserving simulation (Def. 2/3) ==@.";
  List.iter
    (fun (entry, args) ->
      let o =
        Cascompcert.Simulation.check ~src:(Clight.lang, client)
          ~tgt:(Asm.lang, arts.Cas_compiler.Driver.asm) ~entry ~args ()
      in
      Fmt.pr "  %-6s: %a@." entry Cascompcert.Simulation.pp_outcome o)
    [ ("main", []); ("step", [ Value.Vint 4 ]) ]
