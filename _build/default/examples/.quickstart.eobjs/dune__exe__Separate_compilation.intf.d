examples/separate_compilation.mli:
