examples/tso_litmus.mli:
