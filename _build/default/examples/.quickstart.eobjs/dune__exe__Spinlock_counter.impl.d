examples/spinlock_counter.ml: Asm Cas_compiler Cas_conc Cas_langs Cas_tso Cascompcert Explore Fmt List Locks Objsim Parse Tso World
