examples/separate_compilation.ml: Asm Cas_base Cas_compiler Cas_conc Cas_langs Cascompcert Clight Explore Fmt Lang Parse Preemptive Refine Value World
