examples/race_detective.ml: Cas_base Cas_conc Cas_langs Cimp Clight Explore Fmt Gsem Lang Nonpreemptive Parse Preemptive Race Refine World
