examples/peterson.ml: Asm Cas_base Cas_conc Cas_langs Cas_tso Clight Event Explore Fmt Genv Gsem Lang Mreg Parse Preemptive Race World
