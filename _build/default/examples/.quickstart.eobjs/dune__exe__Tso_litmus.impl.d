examples/tso_litmus.ml: Asm Cas_base Cas_compiler Cas_conc Cas_langs Cas_tso Cimp Explore Fmt Genv Gsem Lang List Locks Mreg Objsim Parse Preemptive Tso World
