examples/race_detective.mli:
