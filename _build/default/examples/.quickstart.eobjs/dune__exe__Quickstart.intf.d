examples/quickstart.mli:
