examples/peterson.mli:
