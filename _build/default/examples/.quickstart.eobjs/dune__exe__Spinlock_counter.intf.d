examples/spinlock_counter.mli:
