examples/quickstart.ml: Asm Cas_base Cas_compiler Cas_conc Cas_langs Cascompcert Clight Explore Fmt Gsem Lang List Parse Preemptive Rtl Value World
