(** x86-TSO litmus tests on the store-buffer machine (§7.3): the classic
    SB (store buffering) shape, the effect of mfence, and the TTAS lock
    vs. its fenced variant.

    Run with: dune exec examples/tso_litmus.exe *)

open Cas_base
open Cas_langs
open Cas_conc
open Cas_tso

(* SB: t1: x:=1; print(y)   t2: y:=1; print(x) *)
let sb ~fence : Asm.program =
  let mk name mine other =
    {
      Asm.fname = name;
      arity = 0;
      framesize = 0;
      is_object = false;
      code =
        [
          Asm.Plea_global (Mreg.CX, mine);
          Asm.Pmov_ri (Mreg.DX, 1);
          Asm.Pstore (Mreg.CX, 0, Mreg.DX);
        ]
        @ (if fence then [ Asm.Pmfence ] else [])
        @ [
            Asm.Plea_global (Mreg.CX, other);
            Asm.Pload (Mreg.AX, Mreg.CX, 0);
            Asm.Pcall ("print", 1, false);
            Asm.Pret false;
          ];
    }
  in
  {
    Asm.funcs = [ mk "t1" "x" "y"; mk "t2" "y" "x" ];
    globals =
      [
        Genv.gvar ~init:[ Genv.Iint 0 ] "x" 1;
        Genv.gvar ~init:[ Genv.Iint 0 ] "y" 1;
      ];
  }

let show_done ts =
  Explore.TraceSet.filter (fun (_, st) -> st = Explore.SDone) ts

let () =
  Fmt.pr "== SB litmus: x:=1; r1:=y ∥ y:=1; r2:=x ==@.";
  Fmt.pr "%a@.@." Fmt.(list ~sep:cut Asm.pp_func) (sb ~fence:false).Asm.funcs;

  (match Tso.load [ sb ~fence:false ] [ "t1"; "t2" ] with
  | Error e -> Fmt.pr "load: %a@." World.pp_load_error e
  | Ok w ->
    let tr = Tso.traces w in
    Fmt.pr "under x86-TSO: %a@." Explore.TraceSet.pp (show_done tr.Explore.traces);
    Fmt.pr "  -> r1 = r2 = 0 is observable: both stores were buffered.@.@.");

  (let p = Lang.prog [ Lang.Mod (Asm.lang, sb ~fence:false) ] [ "t1"; "t2" ] in
   match World.load p ~args:[] with
   | Error e -> Fmt.pr "load: %a@." World.pp_load_error e
   | Ok w ->
     let tr = Explore.traces Preemptive.steps (Gsem.initials w) in
     Fmt.pr "under SC:      %a@." Explore.TraceSet.pp (show_done tr.Explore.traces);
     Fmt.pr "  -> at least one thread sees the other's store.@.@.");

  (match Tso.load [ sb ~fence:true ] [ "t1"; "t2" ] with
  | Error e -> Fmt.pr "load: %a@." World.pp_load_error e
  | Ok w ->
    let tr = Tso.traces w in
    Fmt.pr "TSO + mfence:  %a@." Explore.TraceSet.pp (show_done tr.Explore.traces);
    Fmt.pr "  -> the fence drains the buffer; SC behaviour is restored.@.@.");

  Fmt.pr "== The TTAS lock's benign race is confined ==@.";
  let client = Cas_compiler.Driver.compile (Parse.clight
    {| int x = 0;
       void inc() { int t; lock(); t = x; x = x + 1; unlock(); print(t); } |})
  in
  List.iter
    (fun (name, pi) ->
      let g =
        Objsim.check_drf_guarantee ~clients:[ client ] ~pi
          ~gamma:(Cimp.gamma_lock ()) ~entries:[ "inc"; "inc" ] ()
      in
      Fmt.pr "  %-12s: %a@." name Objsim.pp_guarantee g)
    [ ("TTAS", Locks.pi_lock); ("TTAS+fence", Locks.pi_lock_fenced) ]
