(** Lemma 9: preemptive ≈ non-preemptive for DRF programs — and its
    failure on racy programs, showing the DRF hypothesis is necessary. *)

open Cas_base
open Cas_conc

let check = Alcotest.check
let tbool = Alcotest.bool

let traces_of step p =
  match Refine.traces_of ~max_steps:3000 step p with
  | Ok t -> t
  | Error e -> Alcotest.failf "load: %a" World.pp_load_error e

let test_equiv_on_drf_suite () =
  List.iter
    (fun input ->
      let p = Cascompcert.Framework.source_prog input in
      let pre = traces_of Preemptive.steps p in
      let np = traces_of Nonpreemptive.steps p in
      let r = Refine.equiv pre np in
      check tbool (Fmt.str "%s preemptive ≈ NP" input.Cascompcert.Framework.name)
        true r.Refine.holds)
    (List.filter
       (fun i -> i.Cascompcert.Framework.name <> "producer-consumer")
       (Corpus.framework_inputs ()))

let test_racy_program_differs () =
  (* writer: x=1; x=2 ∥ reader: print(x). Under preemption the reader can
     observe the intermediate 1; non-preemptively it cannot. *)
  let p = Corpus.observer_prog () in
  let pre = traces_of Preemptive.steps p in
  let np = traces_of Nonpreemptive.steps p in
  check tbool "preemptive sees x=1" true
    (Explore.TraceSet.mem ([ Event.Print 1 ], Explore.SDone) pre.Explore.traces);
  check tbool "non-preemptive cannot" false
    (Explore.TraceSet.mem ([ Event.Print 1 ], Explore.SDone) np.Explore.traces);
  let r = Refine.equiv pre np in
  check tbool "equivalence fails without DRF" false r.Refine.holds

let test_np_refines_preemptive_always () =
  (* even for racy programs, every NP behaviour is a preemptive one *)
  List.iter
    (fun (name, p) ->
      let pre = traces_of Preemptive.steps p in
      let np = traces_of Nonpreemptive.steps p in
      let r = Refine.refines ~lhs:np ~rhs:pre in
      check tbool (Fmt.str "%s NP ⊑ preemptive" name) true r.Refine.holds)
    [
      ("locked", Corpus.lock_counter_prog ());
      ("observer", Corpus.observer_prog ());
      ("racy", Corpus.racy_prog ());
    ]

let test_refine_report_prefixes () =
  let es = [ Event.Print 1; Event.Print 2 ] in
  let ps = Refine.prefixes es in
  check Alcotest.int "three prefixes incl. empty" 3 (List.length ps);
  check tbool "empty prefix" true (List.mem [] ps);
  check tbool "full prefix" true (List.mem es ps)

let test_trace_set_ops () =
  let t1 = ([ Event.Print 1 ], Explore.SDone) in
  let t2 = ([ Event.Print 2 ], Explore.SDone) in
  let s1 = Explore.TraceSet.add t1 Explore.TraceSet.empty in
  let s12 = Explore.TraceSet.add t2 s1 in
  check tbool "subset" true (Explore.TraceSet.subset s1 s12);
  check tbool "not subset" false (Explore.TraceSet.subset s12 s1);
  check tbool "status distinguishes" false
    (Explore.TraceSet.mem ([ Event.Print 1 ], Explore.SCut) s1)

let () =
  Alcotest.run "equiv"
    [
      ( "lemma 9",
        [
          Alcotest.test_case "DRF suite" `Slow test_equiv_on_drf_suite;
          Alcotest.test_case "racy counterexample" `Quick
            test_racy_program_differs;
          Alcotest.test_case "NP always refines" `Quick
            test_np_refines_preemptive_always;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "prefixes" `Quick test_refine_report_prefixes;
          Alcotest.test_case "trace sets" `Quick test_trace_set_ops;
        ] );
    ]
