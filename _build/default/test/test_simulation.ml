(** Tests for the footprint-preserving module-local simulation checker
    (Def. 2/3): it must accept correct compilations and — crucially —
    reject miscompilations of every flavour the definition guards
    against: wrong events, extra shared writes (FPmatch), optimizations
    that cache shared state across switch points (the §2.2 example), and
    nondeterministic targets (det(tl)). *)

open Cas_base
open Cas_langs
open Cascompcert

let check = Alcotest.check
let tbool = Alcotest.bool

let is_ok = function Simulation.Sim_ok _ -> true | _ -> false
let is_fail = function Simulation.Sim_fail _ -> true | _ -> false

let clight_sim src ~entry ~tweak =
  let p = Parse.clight src in
  let bad = tweak p in
  Simulation.check ~src:(Clight.lang, p) ~tgt:(Clight.lang, bad) ~entry
    ~args:[] ()

(* ------------------------------------------------------------------ *)
(* Positive cases                                                      *)
(* ------------------------------------------------------------------ *)

let test_identity_sim () =
  let p = Corpus.counter () in
  let o =
    Simulation.check ~src:(Clight.lang, p) ~tgt:(Clight.lang, p) ~entry:"inc"
      ~args:[] ()
  in
  check tbool "identity simulates" true (is_ok o)

let test_full_pipeline_sim () =
  List.iter
    (fun (name, client, entries) ->
      let asm = Cas_compiler.Driver.compile client in
      List.iter
        (fun entry ->
          let arity =
            match
              List.find_opt (fun f -> f.Clight.fname = entry) client.Clight.funcs
            with
            | Some f -> List.length f.Clight.fparams
            | None -> 0
          in
          let args = List.init arity (fun i -> Value.Vint (3 + i)) in
          let o =
            Simulation.check ~src:(Clight.lang, client) ~tgt:(Asm.lang, asm)
              ~entry ~args ()
          in
          check tbool (Fmt.str "%s/%s compiles correctly" name entry) false
            (is_fail o))
        entries)
    (Corpus.sequential_clients ())

let test_sim_with_rely_perturbation () =
  (* environment writes to the shared global between switch points; the
     compiled code must still simulate (it cannot cache x across calls) *)
  let p = Corpus.counter () in
  let asm = Cas_compiler.Driver.compile p in
  let env i =
    { Simulation.ret = Value.Vint 0; perturb = Some ("x", 0, 40 + i) }
  in
  let o =
    Simulation.check ~src:(Clight.lang, p) ~tgt:(Asm.lang, asm) ~entry:"inc"
      ~args:[] ~env ()
  in
  check tbool "simulation robust to Rely writes" false (is_fail o)

(* ------------------------------------------------------------------ *)
(* Negative cases: the checker must catch miscompilations              *)
(* ------------------------------------------------------------------ *)

let test_detects_wrong_event () =
  let src = {| void f() { print(1); } |} in
  let o =
    clight_sim src ~entry:"f" ~tweak:(fun _ -> Parse.clight {| void f() { print(2); } |})
  in
  check tbool "wrong print detected" true (is_fail o)

let test_detects_extra_shared_write () =
  (* target writes a shared global the source never touches: FPmatch *)
  let src = {| int x = 0; void f() { print(0); } |} in
  let o =
    clight_sim src ~entry:"f"
      ~tweak:(fun _ -> Parse.clight {| int x = 0; void f() { x = 1; print(0); } |})
  in
  check tbool "extra shared write detected" true (is_fail o)

let test_detects_extra_shared_read () =
  (* a read of shared memory the source never performs: δ.rs ⊄ φ{∆} *)
  let src = {| int x = 0; void f() { print(7); } |} in
  let o =
    clight_sim src ~entry:"f"
      ~tweak:(fun _ ->
        Parse.clight {| int x = 0; void f() { int t; t = x; print(7); } |})
  in
  check tbool "extra shared read detected" true (is_fail o)

let test_allows_write_to_read_weakening () =
  (* FPmatch allows target reads where the source wrote *)
  let src = {| int x = 0; void f() { x = 5; print(1); } |} in
  let o =
    clight_sim src ~entry:"f"
      ~tweak:(fun _ ->
        Parse.clight {| int x = 0; void f() { int t; x = 5; t = x; print(1); } |})
  in
  check tbool "read-after-write within source ws allowed" false (is_fail o)

let test_detects_caching_across_switch_points () =
  (* the §2.2 example: the compiler may not assume a shared global is
     unchanged across an external call. Source re-reads x after the
     call; a 'bad optimizer' caches the first read. *)
  let src =
    {| int x = 0;
       void f() { int a; int b; a = x; g(); b = x; print(a + b); } |}
  in
  let cached =
    {| int x = 0;
       void f() { int a; int b; a = x; g(); b = a; print(a + b); } |}
  in
  let env i =
    (* the environment (callee) writes x := 9 during the call *)
    { Simulation.ret = Value.Vint 0; perturb = Some ("x", 0, 9 + i) }
  in
  let p = Parse.clight src in
  let bad = Parse.clight cached in
  let o =
    Simulation.check ~src:(Clight.lang, p) ~tgt:(Clight.lang, bad) ~entry:"f"
      ~args:[] ~env ()
  in
  check tbool "caching across call detected" true (is_fail o)

let test_detects_wrong_return () =
  let src = {| int f() { return 3; } |} in
  let o =
    clight_sim src ~entry:"f" ~tweak:(fun _ -> Parse.clight {| int f() { return 4; } |})
  in
  check tbool "wrong return value detected" true (is_fail o)

let test_detects_target_abort () =
  let src = {| void f() { print(1); } |} in
  let o =
    clight_sim src ~entry:"f"
      ~tweak:(fun _ -> Parse.clight {| void f() { int t; t = *0; print(1); } |})
  in
  check tbool "target abort detected" true (is_fail o)

let test_detects_event_reorder () =
  let src = {| void f() { print(1); print(2); } |} in
  let o =
    clight_sim src ~entry:"f"
      ~tweak:(fun _ -> Parse.clight {| void f() { print(2); print(1); } |})
  in
  check tbool "event reordering detected" true (is_fail o)

(* ------------------------------------------------------------------ *)
(* A deliberately broken compiler pass caught by the per-pass check    *)
(* ------------------------------------------------------------------ *)

let test_broken_constprop_detected () =
  (* miscompile: pretend reads of globals yield 0 and fold them *)
  let p = Parse.clight {| int x = 5; int f() { return x + 1; } |} in
  let a = Cas_compiler.Driver.compile_artifacts p in
  let break_fn (f : Rtl.func) =
    {
      f with
      Rtl.code =
        Rtl.IMap.map
          (function
            | Rtl.Iload (d, _, _, n) -> Rtl.Iop (Rtl.Oconst 0, d, n)
            | i -> i)
          f.Rtl.code;
    }
  in
  let bad =
    { a.Cas_compiler.Driver.rtl with Rtl.funcs = List.map break_fn a.Cas_compiler.Driver.rtl.Rtl.funcs }
  in
  let o =
    Simulation.check
      ~src:(Rtl.lang, a.Cas_compiler.Driver.rtl)
      ~tgt:(Rtl.lang, bad) ~entry:"f" ~args:[] ()
  in
  check tbool "folding a global load is caught" true (is_fail o)

(* ------------------------------------------------------------------ *)
(* det(tl)                                                             *)
(* ------------------------------------------------------------------ *)

let test_det_on_run () =
  let p = Cas_compiler.Driver.compile (Corpus.const_cse ()) in
  match Genv.link [ p.Asm.globals ] with
  | Error _ -> Alcotest.fail "link"
  | Ok genv -> (
    let mem = Genv.init_memory genv in
    let fl = Flist.make ~offset:(Genv.block_count genv) ~stride:1 in
    match Asm.init_core ~genv p ~entry:"main" ~args:[] with
    | None -> Alcotest.fail "init"
    | Some core ->
      check tbool "compiled x86 deterministic" true
        (Simulation.det_on_run Asm.lang fl core mem ~bound:10_000))

(* ------------------------------------------------------------------ *)
(* β injectivity                                                       *)
(* ------------------------------------------------------------------ *)

let test_beta_injective () =
  let b = Simulation.beta_create () in
  let a1 = Addr.make 1 0 and a2 = Addr.make 2 0 and a3 = Addr.make 3 0 in
  check tbool "fresh pair" true (Simulation.beta_match b a1 a2);
  check tbool "consistent repeat" true (Simulation.beta_match b a1 a2);
  check tbool "source remap rejected" false (Simulation.beta_match b a1 a3);
  check tbool "target remap rejected" false (Simulation.beta_match b a3 a2)

(* ------------------------------------------------------------------ *)
(* ReachClose (Def. 4)                                                 *)
(* ------------------------------------------------------------------ *)

let test_reach_close_corpus () =
  List.iter
    (fun (name, client, entries) ->
      List.iter
        (fun entry ->
          let arity =
            match
              List.find_opt (fun f -> f.Clight.fname = entry) client.Clight.funcs
            with
            | Some f -> List.length f.Clight.fparams
            | None -> 0
          in
          let args = List.init arity (fun i -> Value.Vint (2 + i)) in
          let vs =
            Simulation.check_reach_close Clight.lang client ~entry ~args ()
          in
          Alcotest.(check int)
            (Fmt.str "%s/%s reach-closed" name entry)
            0 (List.length vs))
        entries)
    (Corpus.sequential_clients ())

let test_reach_close_object () =
  let vs =
    Simulation.check_reach_close Cimp.lang (Corpus.gamma_lock ())
      ~entry:"unlock" ~args:[] ()
  in
  Alcotest.(check int) "gamma_lock unlock reach-closed" 0 (List.length vs)

let test_reach_close_catches_escape () =
  (* storing the address of a stack local into a shared global breaks
     closed(S, Σ): a pointer from S into the freelist *)
  let escaping =
    Parse.clight {| int p = 0; void f() { int b; b = 0; p = &b; print(1); } |}
  in
  let vs = Simulation.check_reach_close Clight.lang escaping ~entry:"f" ~args:[] () in
  check tbool "stack-pointer escape detected" true (List.length vs > 0)

let () =
  Alcotest.run "simulation"
    [
      ( "accepts",
        [
          Alcotest.test_case "identity" `Quick test_identity_sim;
          Alcotest.test_case "full pipeline on corpus" `Slow
            test_full_pipeline_sim;
          Alcotest.test_case "robust to Rely writes" `Quick
            test_sim_with_rely_perturbation;
          Alcotest.test_case "write-to-read weakening" `Quick
            test_allows_write_to_read_weakening;
        ] );
      ( "rejects",
        [
          Alcotest.test_case "wrong event" `Quick test_detects_wrong_event;
          Alcotest.test_case "extra shared write" `Quick
            test_detects_extra_shared_write;
          Alcotest.test_case "extra shared read" `Quick
            test_detects_extra_shared_read;
          Alcotest.test_case "caching across switch points (§2.2)" `Quick
            test_detects_caching_across_switch_points;
          Alcotest.test_case "wrong return" `Quick test_detects_wrong_return;
          Alcotest.test_case "target abort" `Quick test_detects_target_abort;
          Alcotest.test_case "event reorder" `Quick test_detects_event_reorder;
          Alcotest.test_case "broken pass" `Quick test_broken_constprop_detected;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "det on run" `Quick test_det_on_run;
          Alcotest.test_case "beta injective" `Quick test_beta_injective;
        ] );
      ( "reach-close (Def. 4)",
        [
          Alcotest.test_case "corpus clients" `Quick test_reach_close_corpus;
          Alcotest.test_case "lock object" `Quick test_reach_close_object;
          Alcotest.test_case "escape caught" `Quick
            test_reach_close_catches_escape;
        ] );
    ]
