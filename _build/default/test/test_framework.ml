(** End-to-end framework tests: the Fig. 2 pipeline on the corpus of
    concurrent programs, and per-pass simulations across the whole
    compiler for every corpus client (the executable analogue of
    Lem. 13 and Thm. 12/14). *)

open Cas_base
open Cascompcert

let check = Alcotest.check
let tbool = Alcotest.bool

let small_bounds =
  { Framework.max_steps = 2500; max_paths = 100_000; max_worlds = 100_000 }

let test_fig2_suite () =
  List.iter
    (fun input ->
      let run = Framework.check_fig2 ~bounds:small_bounds input in
      List.iter
        (fun r ->
          check tbool
            (Fmt.str "%s [%s] %s" input.Framework.name r.Framework.id
               r.Framework.label)
            true r.Framework.ok)
        run.Framework.reports)
    (List.filter
       (fun i -> i.Framework.name <> "producer-consumer")
       (Corpus.framework_inputs ()))

let test_fig2_detects_racy_source () =
  (* the DRF premise must fail on the racy counter *)
  let input =
    {
      Framework.name = "racy";
      clients = [ Corpus.racy_counter () ];
      objects = [];
      entries = [ "inc"; "inc" ];
    }
  in
  let run = Framework.check_fig2 ~bounds:small_bounds input in
  let pre = List.find (fun r -> r.Framework.id = "pre") run.Framework.reports in
  check tbool "DRF premise fails on racy program" false pre.Framework.ok

let test_passes_on_corpus () =
  List.iter
    (fun (name, client, _) ->
      let reports = Framework.check_passes client in
      List.iter
        (fun r ->
          check tbool
            (Fmt.str "%s %s/%s" name r.Framework.pass r.Framework.entry)
            true
            (Framework.sim_ok r.Framework.outcome))
        reports)
    (Corpus.sequential_clients ())

let test_passes_with_arguments () =
  (* drive parameterized entries with several argument vectors *)
  let p = Corpus.fib () in
  let asm = Cas_compiler.Driver.compile p in
  List.iter
    (fun n ->
      let o =
        Simulation.check ~src:(Cas_langs.Clight.lang, p)
          ~tgt:(Cas_langs.Asm.lang, asm) ~entry:"fib"
          ~args:[ Value.Vint n ] ()
      in
      check tbool (Fmt.str "fib(%d) simulates" n) true
        (match o with Simulation.Sim_fail _ -> false | _ -> true))
    [ 0; 1; 5; 9 ]

let test_unoptimized_pipeline_also_correct () =
  let options = { Cas_compiler.Driver.optimize = false } in
  List.iter
    (fun input ->
      let run = Framework.check_fig2 ~bounds:small_bounds ~options input in
      check tbool
        (Fmt.str "%s without optimizations" input.Framework.name)
        true run.Framework.all_ok)
    [ List.hd (Corpus.framework_inputs ()) ]

let () =
  Alcotest.run "framework"
    [
      ( "fig2",
        [
          Alcotest.test_case "DRF suite" `Slow test_fig2_suite;
          Alcotest.test_case "racy premise fails" `Quick
            test_fig2_detects_racy_source;
          Alcotest.test_case "unoptimized pipeline" `Slow
            test_unoptimized_pipeline_also_correct;
        ] );
      ( "passes",
        [
          Alcotest.test_case "corpus sweep" `Slow test_passes_on_corpus;
          Alcotest.test_case "parameterized entries" `Quick
            test_passes_with_arguments;
        ] );
    ]
