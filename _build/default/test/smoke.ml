(* Quick manual smoke test of the semantics stack (not an alcotest suite). *)
open Cas_base
open Cas_langs
open Cas_conc

let client : Clight.program =
  {
    globals = [ Genv.gvar ~init:[ Genv.Iint 0 ] "x" 1 ];
    funcs =
      [
        {
          fname = "inc";
          fparams = [];
          fvars = [];
          fbody =
            Clight.(
              Sseq
                ( Scall (None, "lock", []),
                  Sseq
                    ( Sset ("tmp", Eglob "x"),
                      Sseq
                        ( Sassign (Lglob "x", Ebinop (Ops.Oadd, Eglob "x", Econst 1)),
                          Sseq
                            ( Scall (None, "unlock", []),
                              Sseq
                                ( Scall (None, "print", [ Etemp "tmp" ]),
                                  Sreturn None ) ) ) ) ));
        };
      ];
  }

let prog : Lang.prog =
  Lang.prog
    [ Lang.Mod (Clight.lang, client); Lang.Mod (Cimp.lang, Cimp.gamma_lock ()) ]
    [ "inc"; "inc" ]

let () =
  match World.load prog ~args:[] with
  | Error e -> Fmt.epr "load error: %a@." World.pp_load_error e
  | Ok w0 ->
    let t0 = Unix.gettimeofday () in
    let pre = Explore.traces ~max_steps:3000 Preemptive.steps (Gsem.initials w0) in
    Fmt.pr "preemptive traces (%.2fs): %a@."
      (Unix.gettimeofday () -. t0)
      Explore.TraceSet.pp pre.traces;
    let np = Explore.traces Nonpreemptive.steps (Gsem.initials w0) in
    Fmt.pr "non-preemptive traces: %a@." Explore.TraceSet.pp np.traces;
    let eq = Refine.equiv pre np in
    Fmt.pr "equiv: %a@." Refine.pp_report eq;
    let drf = Race.drf w0 in
    Fmt.pr "drf: %a@." Race.pp_drf_report drf

(* Compile the client through the full pipeline and re-run. *)
let () =
  let open Cas_compiler in
  let arts = Driver.compile_artifacts client in
  Fmt.pr "@.== compiled inc ==@.%a@."
    Fmt.(list ~sep:cut Asm.pp_func)
    arts.Driver.asm.Asm.funcs;
  let tprog : Lang.prog =
    Lang.prog
      [ Lang.Mod (Asm.lang, arts.Driver.asm);
        Lang.Mod (Cimp.lang, Cimp.gamma_lock ()) ]
      [ "inc"; "inc" ]
  in
  match World.load tprog ~args:[] with
  | Error e -> Fmt.epr "target load error: %a@." World.pp_load_error e
  | Ok w0 ->
    let np = Explore.traces Nonpreemptive.steps (Gsem.initials w0) in
    Fmt.pr "target NP traces: %a@." Explore.TraceSet.pp np.traces;
    let drf = Race.drf ~max_worlds:100_000 w0 in
    Fmt.pr "target drf: %a@." Race.pp_drf_report drf

(* Framework: Fig. 2 pipeline. *)
let () =
  let open Cascompcert in
  let input =
    {
      Framework.name = "lock-counter";
      clients = [ client ];
      objects = [ Cimp.gamma_lock () ];
      entries = [ "inc"; "inc" ];
    }
  in
  let t0 = Unix.gettimeofday () in
  let run = Framework.check_fig2 input in
  Fmt.pr "@.%a@.(fig2 took %.2fs)@." Framework.pp_run run
    (Unix.gettimeofday () -. t0);
  let sims = Framework.check_passes client in
  Fmt.pr "@.per-pass simulations:@.%a@."
    Fmt.(list ~sep:cut Framework.pp_pass_sim)
    sims

(* TSO: Fig. 3 / Lemma 16. *)
let () =
  let open Cas_tso in
  let open Cas_compiler in
  let asm_client = Driver.compile client in
  let t0 = Unix.gettimeofday () in
  let g =
    Objsim.check_drf_guarantee ~max_steps:2000 ~clients:[ asm_client ]
      ~pi:Locks.pi_lock ~gamma:(Locks.gamma_lock ()) ~entries:[ "inc"; "inc" ]
      ()
  in
  Fmt.pr "@.Lemma 16 (TSO+pi ⊑ SC+gamma): %a (%.2fs)@." Objsim.pp_guarantee g
    (Unix.gettimeofday () -. t0);
  let sims =
    Objsim.check_object_sim ~pi:Locks.pi_lock ~gamma:(Locks.gamma_lock ())
      ~entries:[ ("lock", [ 0; 1 ]); ("unlock", [ 0 ]) ]
      ()
  in
  Fmt.pr "object sim: %a@." Fmt.(list ~sep:cut Objsim.pp_obj_sim) sims

(* Parser round-trip: Fig. 10 from concrete syntax. *)
let () =
  let client_src = {|
    int x = 0;
    void inc() {
      int tmp;
      lock();
      tmp = x;
      x = x + 1;
      unlock();
      print(tmp);
    }
  |} in
  let lock_src = {|
    object int L = 1;
    void lock() {
      r := 0;
      while (r == 0) { atomic { r := [L]; [L] := 0; } }
    }
    void unlock() {
      atomic { r := [L]; assert(r == 0); [L] := 1; }
    }
  |} in
  let client = Parse.clight client_src in
  let gamma = Parse.cimp lock_src in
  let prog =
    Lang.prog
      [ Lang.Mod (Clight.lang, client); Lang.Mod (Cimp.lang, gamma) ]
      [ "inc"; "inc" ]
  in
  (match World.load prog ~args:[] with
  | Error e -> Fmt.epr "parsed load error: %a@." World.pp_load_error e
  | Ok w0 ->
    let np = Explore.traces Nonpreemptive.steps (Gsem.initials w0) in
    Fmt.pr "@.parsed-source NP traces: %a@." Explore.TraceSet.pp np.traces);
  let open Cascompcert in
  let sims = Framework.check_passes client in
  let fails = List.filter (fun r -> not (Framework.sim_ok r.Framework.outcome)) sims in
  Fmt.pr "parsed client pass sims: %d checks, %d failures@." (List.length sims)
    (List.length fails);
  List.iter (fun r -> Fmt.pr "  %a@." Framework.pp_pass_sim r) fails
