test/test_simulation.mli:
