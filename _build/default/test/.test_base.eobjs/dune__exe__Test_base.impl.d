test/test_base.ml: Addr Alcotest Cas_base Flist Fmt Footprint Genv Layout List Memory Option Perm QCheck QCheck_alcotest Value
