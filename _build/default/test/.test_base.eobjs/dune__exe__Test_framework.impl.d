test/test_framework.ml: Alcotest Cas_base Cas_compiler Cas_langs Cascompcert Corpus Fmt Framework List Simulation Value
