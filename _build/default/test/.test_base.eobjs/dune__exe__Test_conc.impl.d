test/test_conc.ml: Alcotest Cas_base Cas_conc Cas_langs Cimp Clight Corpus Event Explore Flist Fmt Gsem Lang List Nonpreemptive Parse Preemptive World
