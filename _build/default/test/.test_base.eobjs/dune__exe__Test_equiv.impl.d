test/test_equiv.ml: Alcotest Cas_base Cas_conc Cascompcert Corpus Event Explore Fmt List Nonpreemptive Preemptive Refine World
