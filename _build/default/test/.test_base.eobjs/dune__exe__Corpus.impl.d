test/corpus.ml: Cas_base Cas_langs Cascompcert Cimp Clight Parse
