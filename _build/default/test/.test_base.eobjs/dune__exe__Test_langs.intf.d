test/test_langs.mli:
