test/test_race.ml: Addr Alcotest Cas_base Cas_conc Cas_langs Cascompcert Cimp Clight Corpus Fmt Footprint Lang List Parse Race World
