test/test_random.ml: Alcotest Asm Cas_base Cas_compiler Cas_langs Cascompcert Clight Cminor Csharpminor Event Flist Fmt Genv Lang Linearl List Ltl Machl Msg Ops QCheck QCheck_alcotest Rtl Value
