test/test_tso.ml: Alcotest Asm Cas_base Cas_compiler Cas_conc Cas_langs Cas_tso Cimp Clight Corpus Event Fmt Genv Lang List Locks Mreg Objects Objsim Parse Tso
