test/test_conc.mli:
