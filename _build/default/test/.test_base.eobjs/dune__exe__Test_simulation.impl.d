test/test_simulation.ml: Addr Alcotest Asm Cas_base Cas_compiler Cas_langs Cascompcert Cimp Clight Corpus Flist Fmt Genv List Parse Rtl Simulation Value
