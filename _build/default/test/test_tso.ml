(** Tests for the x86-TSO machine and the extended framework (Fig. 3):
    store-buffer litmus tests, the TTAS lock of Fig. 10, the object
    simulation π_o ≼ᵒ γ_o, and the strengthened DRF-guarantee
    (Lem. 16). *)

open Cas_base
open Cas_langs
open Cas_tso

let check = Alcotest.check
let tbool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* The SB litmus test: x=1; r1=y ∥ y=1; r2=x                           *)
(* ------------------------------------------------------------------ *)

(** Hand-written x86: thread k stores 1 to its variable, then loads the
    other and prints it. Under SC at least one thread must print 1;
    under TSO both may print 0 — the canonical store-buffering
    relaxation. *)
let sb_module ~fence : Asm.program =
  let mk name mine other =
    {
      Asm.fname = name;
      arity = 0;
      framesize = 0;
      is_object = false;
      code =
        [
          Asm.Plea_global (Mreg.CX, mine);
          Asm.Pmov_ri (Mreg.DX, 1);
          Asm.Pstore (Mreg.CX, 0, Mreg.DX);
        ]
        @ (if fence then [ Asm.Pmfence ] else [])
        @ [
            Asm.Plea_global (Mreg.CX, other);
            Asm.Pload (Mreg.AX, Mreg.CX, 0);
            Asm.Pcall ("print", 1, false);
            Asm.Pret false;
          ];
    }
  in
  {
    Asm.funcs = [ mk "t1" "x" "y"; mk "t2" "y" "x" ];
    globals = [ Genv.gvar ~init:[ Genv.Iint 0 ] "x" 1; Genv.gvar ~init:[ Genv.Iint 0 ] "y" 1 ];
  }

let trace_mem events ts =
  Cas_conc.Explore.TraceSet.mem (events, Cas_conc.Explore.SDone) ts

let test_sb_tso_relaxation () =
  match Tso.load [ sb_module ~fence:false ] [ "t1"; "t2" ] with
  | Error e -> Alcotest.failf "load: %a" Cas_conc.World.pp_load_error e
  | Ok w ->
    let tr = Tso.traces w in
    check tbool "both-zero observable under TSO" true
      (trace_mem [ Event.Print 0; Event.Print 0 ] tr.Cas_conc.Explore.traces)

let test_sb_sc_forbids () =
  let p =
    Lang.prog [ Lang.Mod (Asm.lang, sb_module ~fence:false) ] [ "t1"; "t2" ]
  in
  match Cas_conc.World.load p ~args:[] with
  | Error e -> Alcotest.failf "load: %a" Cas_conc.World.pp_load_error e
  | Ok w ->
    let tr =
      Cas_conc.Explore.traces Cas_conc.Preemptive.steps
        (Cas_conc.Gsem.initials w)
    in
    check tbool "both-zero forbidden under SC" false
      (trace_mem [ Event.Print 0; Event.Print 0 ] tr.Cas_conc.Explore.traces)

let test_sb_fenced_restores_sc () =
  match Tso.load [ sb_module ~fence:true ] [ "t1"; "t2" ] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let tr = Tso.traces w in
    check tbool "mfence kills the relaxation" false
      (trace_mem [ Event.Print 0; Event.Print 0 ] tr.Cas_conc.Explore.traces)

(* ------------------------------------------------------------------ *)
(* Buffer mechanics                                                    *)
(* ------------------------------------------------------------------ *)

let test_buffer_fifo () =
  (* store 1 then 2 to the same cell; drains must apply in order *)
  let m : Asm.program =
    {
      Asm.funcs =
        [
          {
            Asm.fname = "w";
            arity = 0;
            framesize = 0;
            is_object = false;
            code =
              [
                Asm.Plea_global (Mreg.CX, "x");
                Asm.Pmov_ri (Mreg.DX, 1);
                Asm.Pstore (Mreg.CX, 0, Mreg.DX);
                Asm.Pmov_ri (Mreg.DX, 2);
                Asm.Pstore (Mreg.CX, 0, Mreg.DX);
                Asm.Pload (Mreg.AX, Mreg.CX, 0);
                Asm.Pcall ("print", 1, false);
                Asm.Pret false;
              ];
          };
        ];
      globals = [ Genv.gvar ~init:[ Genv.Iint 0 ] "x" 1 ];
    }
  in
  match Tso.load [ m ] [ "w" ] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let tr = Tso.traces w in
    (* own stores are visible through the buffer: always prints 2 *)
    check tbool "reads own buffer (newest)" true
      (trace_mem [ Event.Print 2 ] tr.Cas_conc.Explore.traces);
    check tbool "never stale" false
      (trace_mem [ Event.Print 1 ] tr.Cas_conc.Explore.traces)

let test_locked_instr_needs_flush () =
  (* a lock cmpxchg after a buffered store: the machine must drain
     before executing it — no interleaving shows the store unflushed
     after the cmpxchg retires *)
  let m : Asm.program =
    {
      Asm.funcs =
        [
          {
            Asm.fname = "w";
            arity = 0;
            framesize = 0;
            is_object = false;
            code =
              [
                Asm.Plea_global (Mreg.CX, "x");
                Asm.Pmov_ri (Mreg.DX, 5);
                Asm.Pstore (Mreg.CX, 0, Mreg.DX);
                (* cmpxchg on y *)
                Asm.Plea_global (Mreg.BX, "y");
                Asm.Pmov_ri (Mreg.AX, 0);
                Asm.Pmov_ri (Mreg.DX, 1);
                Asm.Plock_cmpxchg (Mreg.BX, Mreg.DX);
                Asm.Pload (Mreg.AX, Mreg.CX, 0);
                Asm.Pcall ("print", 1, false);
                Asm.Pret false;
              ];
          };
        ];
      globals =
        [ Genv.gvar ~init:[ Genv.Iint 0 ] "x" 1; Genv.gvar ~init:[ Genv.Iint 0 ] "y" 1 ];
    }
  in
  match Tso.load [ m ] [ "w" ] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let tr = Tso.traces w in
    check tbool "always prints flushed value" true
      (trace_mem [ Event.Print 5 ] tr.Cas_conc.Explore.traces);
    check Alcotest.int "single deterministic outcome" 1
      (Cas_conc.Explore.TraceSet.cardinal tr.Cas_conc.Explore.traces)

(* ------------------------------------------------------------------ *)
(* Locks (Fig. 10)                                                     *)
(* ------------------------------------------------------------------ *)

let compiled_counter () = Cas_compiler.Driver.compile (Corpus.counter ())

let test_lemma16_ttas_lock () =
  let g =
    Objsim.check_drf_guarantee ~max_steps:2200 ~clients:[ compiled_counter () ]
      ~pi:Locks.pi_lock ~gamma:(Corpus.gamma_lock ()) ~entries:[ "inc"; "inc" ]
      ()
  in
  check tbool "TSO+pi_lock refines SC+gamma_lock" true g.Objsim.holds

let test_lemma16_fenced_lock () =
  let g =
    Objsim.check_drf_guarantee ~max_steps:2200 ~clients:[ compiled_counter () ]
      ~pi:Locks.pi_lock_fenced ~gamma:(Corpus.gamma_lock ())
      ~entries:[ "inc"; "inc" ] ()
  in
  check tbool "fenced lock refines too" true g.Objsim.holds

let test_mutual_exclusion_under_tso () =
  (* both increments land: the done traces are exactly {01, 10} *)
  match Tso.load [ compiled_counter (); Locks.pi_lock ] [ "inc"; "inc" ] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let tr = Tso.traces ~max_steps:2200 w in
    let dones =
      Cas_conc.Explore.TraceSet.filter
        (fun (_, st) -> st = Cas_conc.Explore.SDone)
        tr.Cas_conc.Explore.traces
    in
    check tbool "0,1 order" true
      (trace_mem [ Event.Print 0; Event.Print 1 ] dones);
    check tbool "1,0 order" true
      (trace_mem [ Event.Print 1; Event.Print 0 ] dones);
    check Alcotest.int "no torn counts" 2
      (Cas_conc.Explore.TraceSet.cardinal dones)

let test_object_sim_lock () =
  let reports =
    Objsim.check_object_sim ~pi:Locks.pi_lock ~gamma:(Corpus.gamma_lock ())
      ~entries:[ ("lock", [ 0; 1 ]); ("unlock", [ 0 ]) ]
      ()
  in
  List.iter
    (fun r ->
      check tbool
        (Fmt.str "pi_lock %s from L=%d" r.Objsim.entry r.Objsim.init_state)
        true r.Objsim.ok)
    reports

let test_object_sim_detects_broken_lock () =
  (* a 'lock' that skips the cmpxchg entirely cannot simulate the spec *)
  let broken : Asm.program =
    {
      Locks.pi_lock with
      Asm.funcs =
        [
          { Locks.lock_func with Asm.code = [ Asm.Pret false ] };
          Locks.unlock_func;
        ];
    }
  in
  let reports =
    Objsim.check_object_sim ~pi:broken ~gamma:(Corpus.gamma_lock ())
      ~entries:[ ("lock", [ 0 ]) ] ()
  in
  (* from L=0 (held), real lock blocks; broken one returns — mismatch *)
  check tbool "broken lock rejected" true
    (List.exists (fun r -> not r.Objsim.ok) reports)

let test_client_cannot_touch_lock_word () =
  (* client code accessing L faults on the permission system *)
  let evil =
    Cas_compiler.Driver.compile
      (Parse.clight {| void evil() { int t; t = L; print(t); } |})
  in
  match Tso.load [ evil; Locks.pi_lock ] [ "evil" ] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let tr = Tso.traces w in
    check tbool "client access to object data aborts" true
      (Cas_conc.Explore.TraceSet.mem ([], Cas_conc.Explore.SAbort)
         tr.Cas_conc.Explore.traces)

(* ------------------------------------------------------------------ *)
(* A second object: the fetch-and-add counter (§2.4 generality)        *)
(* ------------------------------------------------------------------ *)

let test_counter_object_tso () =
  (* two drivers fetch_add concurrently: return values are {0,1} in
     either order, never duplicated — even with the racy plain read *)
  let drv = Cas_compiler.Driver.compile (Objects.driver_client ()) in
  match Tso.load [ drv; Objects.pi_counter ] [ "drv"; "drv" ] with
  | Error e -> Alcotest.failf "load: %a" Cas_conc.World.pp_load_error e
  | Ok w ->
    let tr = Tso.traces ~max_steps:2500 w in
    let dones =
      Cas_conc.Explore.TraceSet.filter
        (fun (_, st) -> st = Cas_conc.Explore.SDone)
        tr.Cas_conc.Explore.traces
    in
    check tbool "0,1" true (trace_mem [ Event.Print 0; Event.Print 1 ] dones);
    check tbool "1,0" true (trace_mem [ Event.Print 1; Event.Print 0 ] dones);
    check Alcotest.int "exactly the two linearizations" 2
      (Cas_conc.Explore.TraceSet.cardinal dones)

let test_counter_object_lemma16 () =
  let drv = Cas_compiler.Driver.compile (Objects.driver_client ()) in
  let g =
    Objsim.check_drf_guarantee ~max_steps:2500 ~clients:[ drv ]
      ~pi:Objects.pi_counter ~gamma:Objects.gamma_counter
      ~entries:[ "drv"; "drv" ] ()
  in
  check tbool "TSO+pi_counter refines SC+gamma_counter" true g.Objsim.holds

let test_counter_spec_sc () =
  (* the CImp spec itself: atomic fetch_add never loses updates *)
  let p =
    Lang.prog
      [
        Lang.Mod (Clight.lang, Objects.driver_client ());
        Lang.Mod (Cimp.lang, Objects.gamma_counter);
      ]
      [ "drv"; "drv" ]
  in
  match Cas_conc.World.load p ~args:[] with
  | Error e -> Alcotest.failf "load: %a" Cas_conc.World.pp_load_error e
  | Ok w ->
    let tr =
      Cas_conc.Explore.traces Cas_conc.Preemptive.steps
        (Cas_conc.Gsem.initials w)
    in
    check tbool "no duplicated tickets" false
      (trace_mem [ Event.Print 0; Event.Print 0 ] tr.Cas_conc.Explore.traces)

let () =
  Alcotest.run "tso"
    [
      ( "litmus",
        [
          Alcotest.test_case "SB relaxation" `Quick test_sb_tso_relaxation;
          Alcotest.test_case "SB forbidden under SC" `Quick test_sb_sc_forbids;
          Alcotest.test_case "mfence restores SC" `Quick
            test_sb_fenced_restores_sc;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "fifo + own reads" `Quick test_buffer_fifo;
          Alcotest.test_case "locked instr flushes" `Quick
            test_locked_instr_needs_flush;
        ] );
      ( "locks",
        [
          Alcotest.test_case "Lemma 16 (TTAS)" `Slow test_lemma16_ttas_lock;
          Alcotest.test_case "Lemma 16 (fenced)" `Slow test_lemma16_fenced_lock;
          Alcotest.test_case "mutual exclusion" `Slow
            test_mutual_exclusion_under_tso;
          Alcotest.test_case "object simulation" `Quick test_object_sim_lock;
          Alcotest.test_case "broken lock rejected" `Quick
            test_object_sim_detects_broken_lock;
          Alcotest.test_case "confinement" `Quick
            test_client_cannot_touch_lock_word;
        ] );
      ( "counter object",
        [
          Alcotest.test_case "linearizable under TSO" `Slow
            test_counter_object_tso;
          Alcotest.test_case "Lemma 16" `Slow test_counter_object_lemma16;
          Alcotest.test_case "spec under SC" `Quick test_counter_spec_sc;
        ] );
    ]
