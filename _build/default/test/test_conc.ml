(** Tests for the global semantics layer: the Load rule, preemptive and
    non-preemptive transitions, world bookkeeping, and the exploration
    engine. *)

open Cas_base
open Cas_langs
open Cas_conc

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let single_client src entries =
  Lang.prog [ Lang.Mod (Clight.lang, Parse.clight src) ] entries

(* ------------------------------------------------------------------ *)
(* Load rule                                                           *)
(* ------------------------------------------------------------------ *)

let test_load_ok () =
  match World.load (Corpus.lock_counter_prog ()) ~args:[] with
  | Error e -> Alcotest.failf "load: %a" World.pp_load_error e
  | Ok w ->
    check tint "two threads" 2 (List.length (World.live_tids w));
    check tbool "not done" false (World.all_done w);
    (* freelists disjoint *)
    let fls =
      World.IMap.bindings w.World.threads |> List.map (fun (_, t) -> t.World.flist)
    in
    List.iteri
      (fun i f1 ->
        List.iteri
          (fun j f2 ->
            if i <> j then check tbool "disjoint flists" true (Flist.disjoint f1 f2))
          fls)
      fls

let test_load_unresolved_entry () =
  match World.load (single_client {| void f() { } |} [ "nonexistent" ]) ~args:[] with
  | Error (World.Unresolved_entry "nonexistent") -> ()
  | _ -> Alcotest.fail "expected unresolved entry"

let test_load_incompatible_globals () =
  let m1 = Parse.clight {| int x = 1; void f() { } |} in
  let m2 = Parse.clight {| int x = 2; void g() { } |} in
  let p = Lang.prog [ Lang.Mod (Clight.lang, m1); Lang.Mod (Clight.lang, m2) ] [ "f" ] in
  match World.load p ~args:[] with
  | Error (World.Incompatible_globals "x") -> ()
  | _ -> Alcotest.fail "expected incompatible globals"

let test_load_compatible_globals_shared () =
  let m1 = Parse.clight {| int x = 1; void f() { x = 2; } |} in
  let m2 = Parse.clight {| int x = 1; void g() { print(x); } |} in
  let p = Lang.prog [ Lang.Mod (Clight.lang, m1); Lang.Mod (Clight.lang, m2) ] [ "f"; "g" ] in
  match World.load p ~args:[] with
  | Error e -> Alcotest.failf "load: %a" World.pp_load_error e
  | Ok _ -> ()

(* ------------------------------------------------------------------ *)
(* Preemptive semantics                                                *)
(* ------------------------------------------------------------------ *)

let test_switch_any_time () =
  let p = single_client {| void f() { int a; a = 1; a = a + 1; } |} [ "f"; "f" ] in
  match World.load p ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let succs = Preemptive.steps w in
    let has_sw =
      List.exists
        (function Gsem.Next (World.Gsw, _, _) -> true | _ -> false)
        succs
    in
    check tbool "switch available" true has_sw

let test_atomic_blocks_preemption () =
  (* inside a CImp atomic block no switch is offered *)
  let gamma = Corpus.gamma_lock () in
  let p =
    Lang.prog [ Lang.Mod (Cimp.lang, gamma) ] [ "unlock"; "unlock" ]
  in
  match World.load p ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    (* step thread 1 to EntAtom *)
    let rec to_atomic w n =
      if n > 20 then Alcotest.fail "never entered atomic block"
      else if World.dbit w w.World.cur then w
      else
        match
          List.find_map
            (function
              | Gsem.Next (g, _, w') when g <> World.Gsw -> Some w'
              | _ -> None)
            (Preemptive.steps w)
        with
        | Some w' -> to_atomic w' (n + 1)
        | None -> Alcotest.fail "stuck"
    in
    let w_atomic = to_atomic w 0 in
    let sw_offered =
      List.exists
        (function Gsem.Next (World.Gsw, _, _) -> true | _ -> false)
        (Preemptive.steps w_atomic)
    in
    check tbool "no switch inside atomic block" false sw_offered

let test_threads_terminate () =
  let p = single_client {| void f() { print(1); } |} [ "f" ] in
  match World.load p ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let tr = Explore.traces Preemptive.steps [ w ] in
    check tbool "done trace exists" true
      (Explore.TraceSet.mem ([ Event.Print 1 ], Explore.SDone) tr.Explore.traces)

let test_abort_reported () =
  let p = single_client {| void f() { int x; x = *0; } |} [ "f" ] in
  (* *0 → deref of int constant → abort *)
  match World.load p ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let tr = Explore.traces Preemptive.steps [ w ] in
    check tbool "abort trace" true
      (Explore.TraceSet.mem ([], Explore.SAbort) tr.Explore.traces)

(* ------------------------------------------------------------------ *)
(* Non-preemptive semantics                                            *)
(* ------------------------------------------------------------------ *)

let test_np_no_midstream_switch () =
  (* two threads of pure computation: NP gives exactly the two serial
     orders, so each world has at most one local successor *)
  let p =
    single_client {| int x = 0; void f() { x = x + 1; print(x); } |} [ "f"; "f" ]
  in
  match World.load p ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let tr = Explore.traces Nonpreemptive.steps (Gsem.initials w) in
    (* racy program: but under NP each thread runs to its print *)
    check tbool "np traces exist" true
      (Explore.TraceSet.cardinal tr.Explore.traces > 0)

let test_np_switch_at_print () =
  let p =
    single_client {| void f() { print(1); print(2); } |} [ "f"; "f" ]
  in
  match World.load p ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let tr = Explore.traces Nonpreemptive.steps (Gsem.initials w) in
    (* events interleave at event boundaries: 1 1 2 2 must be reachable *)
    check tbool "interleaving across events" true
      (Explore.TraceSet.mem
         ( [ Event.Print 1; Event.Print 1; Event.Print 2; Event.Print 2 ],
           Explore.SDone )
         tr.Explore.traces)

let test_np_fewer_worlds_than_preemptive () =
  match World.load (Corpus.lock_counter_prog ()) ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let count step =
      let n = ref 0 in
      let stats =
        Explore.reachable step (Gsem.initials w) ~visit:(fun _ -> incr n)
      in
      stats.Explore.visited
    in
    let pre = count Preemptive.steps in
    let np = count Nonpreemptive.steps in
    check tbool
      (Fmt.str "NP explores fewer worlds (%d < %d)" np pre)
      true (np < pre)

(* ------------------------------------------------------------------ *)
(* World fingerprints                                                  *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_distinguishes () =
  match World.load (Corpus.lock_counter_prog ()) ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w -> (
    let fp0 = World.fingerprint w in
    check tbool "same world same fp" true (fp0 = World.fingerprint w);
    match Preemptive.steps w with
    | Gsem.Next (_, _, w') :: _ ->
      check tbool "stepped world differs" false (fp0 = World.fingerprint w')
    | _ -> Alcotest.fail "no steps")

(* ------------------------------------------------------------------ *)
(* Cross-module interaction (example 2.1)                              *)
(* ------------------------------------------------------------------ *)

let test_cross_module_call () =
  let p =
    Lang.prog
      [
        Lang.Mod (Clight.lang, Corpus.cross_module_f ());
        Lang.Mod (Clight.lang, Corpus.cross_module_g ());
      ]
      [ "f" ]
  in
  match World.load p ~args:[] with
  | Error e -> Alcotest.failf "load: %a" World.pp_load_error e
  | Ok w ->
    let tr = Explore.traces Preemptive.steps [ w ] in
    (* g writes 3 through the pointer; f prints a + b = 0 + 3 *)
    check tbool "pointer passed across modules" true
      (Explore.TraceSet.mem ([ Event.Print 3 ], Explore.SDone) tr.Explore.traces)

let test_cross_module_unresolved_call_aborts () =
  let p = Lang.prog [ Lang.Mod (Clight.lang, Corpus.cross_module_f ()) ] [ "f" ] in
  match World.load p ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let tr = Explore.traces Preemptive.steps [ w ] in
    check tbool "missing callee aborts" true
      (Explore.TraceSet.mem ([], Explore.SAbort) tr.Explore.traces)

(* ------------------------------------------------------------------ *)
(* Product search                                                      *)
(* ------------------------------------------------------------------ *)

let test_search_finds_event_pattern () =
  (* is a trace with two print(1) before any print(2) reachable? *)
  let p = single_client {| void f() { print(1); print(2); } |} [ "f"; "f" ] in
  match World.load p ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let sys = Explore.world_system Preemptive.steps in
    let found =
      Explore.search sys (Gsem.initials w) ~init:(0, false)
        ~step_state:(fun (ones, seen2) e ->
          match e with
          | Event.Print 1 when not seen2 -> (ones + 1, seen2)
          | Event.Print 2 -> (ones, true)
          | _ -> (ones, seen2))
        ~accept:(fun (ones, seen2) -> ones >= 2 && not seen2)
        ~state_fp:(fun (a, b) -> Fmt.str "%d%b" a b)
        ()
    in
    check tbool "1,1 before any 2 reachable" true found;
    let impossible =
      Explore.search sys (Gsem.initials w) ~init:0
        ~step_state:(fun n e ->
          match e with Event.Print 1 -> n + 1 | _ -> n)
        ~accept:(fun n -> n >= 3)
        ~state_fp:string_of_int ()
    in
    check tbool "three print(1)s impossible" false impossible

let test_search_agrees_with_traces () =
  (* on a small graph, search and trace enumeration agree *)
  let p = single_client {| void f() { print(7); } |} [ "f" ] in
  match World.load p ~args:[] with
  | Error _ -> Alcotest.fail "load"
  | Ok w ->
    let sys = Explore.world_system Preemptive.steps in
    let found =
      Explore.search sys [ w ] ~init:false
        ~step_state:(fun _ e -> e = Event.Print 7)
        ~accept:(fun b -> b)
        ~state_fp:string_of_bool ()
    in
    let tr = Explore.traces Preemptive.steps [ w ] in
    check tbool "agreement" found
      (Explore.TraceSet.mem ([ Event.Print 7 ], Explore.SDone) tr.Explore.traces)

let () =
  Alcotest.run "conc"
    [
      ( "load",
        [
          Alcotest.test_case "ok" `Quick test_load_ok;
          Alcotest.test_case "unresolved entry" `Quick test_load_unresolved_entry;
          Alcotest.test_case "incompatible globals" `Quick
            test_load_incompatible_globals;
          Alcotest.test_case "compatible shared globals" `Quick
            test_load_compatible_globals_shared;
        ] );
      ( "preemptive",
        [
          Alcotest.test_case "switch anytime" `Quick test_switch_any_time;
          Alcotest.test_case "atomic blocks preemption" `Quick
            test_atomic_blocks_preemption;
          Alcotest.test_case "termination" `Quick test_threads_terminate;
          Alcotest.test_case "abort" `Quick test_abort_reported;
        ] );
      ( "non-preemptive",
        [
          Alcotest.test_case "local progress" `Quick test_np_no_midstream_switch;
          Alcotest.test_case "switch at events" `Quick test_np_switch_at_print;
          Alcotest.test_case "smaller state space" `Quick
            test_np_fewer_worlds_than_preemptive;
        ] );
      ( "worlds",
        [ Alcotest.test_case "fingerprints" `Quick test_fingerprint_distinguishes ]
      );
      ( "search",
        [
          Alcotest.test_case "event pattern" `Quick
            test_search_finds_event_pattern;
          Alcotest.test_case "agrees with traces" `Quick
            test_search_agrees_with_traces;
        ] );
      ( "interaction",
        [
          Alcotest.test_case "cross-module pointer (ex. 2.1)" `Quick
            test_cross_module_call;
          Alcotest.test_case "unresolved call aborts" `Quick
            test_cross_module_unresolved_call_aborts;
        ] );
    ]
