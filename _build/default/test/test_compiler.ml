(** Per-pass tests for the compiler: transformation-shape unit tests,
    dataflow analyses, and the Fig. 12 property for Selection — the
    selected expression evaluates to the same value with a footprint
    included in the source's — as a qcheck property over random
    expressions. *)

open Cas_base
open Cas_langs
open Cas_compiler

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* ------------------------------------------------------------------ *)
(* SimplLocals                                                         *)
(* ------------------------------------------------------------------ *)

let test_simpllocals_promotes () =
  let p =
    Parse.clight
      {| void f() { int a; int b; a = 1; b = 2; g(&b); print(a + b); } |}
  in
  let p' = Simpllocals.compile p in
  let f = List.hd p'.Clight.funcs in
  check tint "only the addressed local stays" 1 (List.length f.Clight.fvars);
  check tbool "b stays" true (List.mem_assoc "b" f.Clight.fvars)

let test_simpllocals_keeps_arrays () =
  let p = Corpus.array_sum () in
  let p' = Simpllocals.compile p in
  let f = List.hd p'.Clight.funcs in
  (* the array a is indexed via &a, so it must stay in memory *)
  check tbool "array stays" true (List.mem_assoc "a" f.Clight.fvars)

(* ------------------------------------------------------------------ *)
(* Cminorgen layout                                                    *)
(* ------------------------------------------------------------------ *)

let test_cminorgen_layout () =
  let p =
    Parse.clight {| void f() { int a[2]; int b; a[0] = 1; b = 0; g(&b); } |}
  in
  let cm = Cminorgen.compile (Cshmgen.compile (Simpllocals.compile p)) in
  let f = List.hd cm.Cminor.funcs in
  check tint "frame size = 2 (array) + 1 (addressed b)" 3 f.Cminor.stacksize

(* ------------------------------------------------------------------ *)
(* Selection — Fig. 12                                                  *)
(* ------------------------------------------------------------------ *)

(* random Cminor expressions over one global, one temp and the frame *)
let gen_expr : Cminor.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
    if n <= 0 then
      oneof
        [
          map (fun c -> Cminor.Econst c) (int_range (-8) 8);
          return (Cminor.Etemp "t");
          return (Cminor.Eaddr_global "g");
          return (Cminor.Eaddr_stack 0);
        ]
    else
      oneof
        [
          map (fun c -> Cminor.Econst c) (int_range (-8) 8);
          map2
            (fun op (a, b) -> Cminor.Ebinop (op, a, b))
            (oneofl Ops.[ Oadd; Osub; Omul; Oand; Oor; Oxor; Oeq; Olt ])
            (pair (self (n / 2)) (self (n / 2)));
          map (fun a -> Cminor.Eunop (Ops.Oneg, a)) (self (n - 1));
          map (fun a -> Cminor.Eload a) (self (n - 1));
        ])

let arb_expr = QCheck.make ~print:(Fmt.str "%a" Cminor.pp_expr) gen_expr

(* a fixed evaluation context: one global g=5, a frame, and temp t=3 *)
let eval_ctx () =
  let globals = [ Genv.gvar ~init:[ Genv.Iint 5 ] "g" 1 ] in
  match Genv.link [ globals ] with
  | Error _ -> assert false
  | Ok genv ->
    let mem = Genv.init_memory genv in
    let fl = Flist.make ~offset:1 ~stride:1 in
    let mem, b, _ = Memory.alloc mem fl ~size:1 ~perm:Perm.Normal in
    let core : Cminor.core =
      {
        Cminor.fn =
          { Cminor.fname = "f"; fparams = []; stacksize = 1; fbody = Cminor.Sskip };
        sp = Some b;
        temps = Cminor.SMap.singleton "t" (Value.Vint 3);
        need_frame = false;
        cur = Cminor.Sskip;
        k = Cminor.Kstop;
        waiting = None;
        genv;
      }
    in
    (core, mem)

let prop_selection_fig12 =
  QCheck.Test.make ~name:"sel_expr_correct: value equal, footprint subset"
    ~count:2000 arb_expr (fun e ->
      let core, mem = eval_ctx () in
      let sel = Selection.sel_expr e in
      match (Cminor.eval core mem e, Cminor.eval core mem sel) with
      | (v1, fp1), (v2, fp2) ->
        Value.equal v1 v2 && Footprint.subset fp2 fp1
      | exception Cminor.Fault -> (
        (* if the source faults, selection may fault too *)
        match Cminor.eval core mem sel with
        | exception Cminor.Fault -> true
        | _ -> true))

let test_selection_immediates () =
  let e = Cminor.Ebinop (Ops.Oadd, Cminor.Etemp "t", Cminor.Econst 4) in
  (match Selection.sel_expr e with
  | Cminor.Ebinop_imm (Ops.Oadd, Cminor.Etemp "t", 4) -> ()
  | _ -> Alcotest.fail "expected selected immediate form");
  (* commuted constant *)
  let e = Cminor.Ebinop (Ops.Omul, Cminor.Econst 2, Cminor.Etemp "t") in
  (match Selection.sel_expr e with
  | Cminor.Ebinop_imm (Ops.Omul, Cminor.Etemp "t", 2) -> ()
  | _ -> Alcotest.fail "expected commuted immediate form");
  (* constants folded *)
  match Selection.sel_expr (Cminor.Ebinop (Ops.Oadd, Cminor.Econst 2, Cminor.Econst 3)) with
  | Cminor.Econst 5 -> ()
  | _ -> Alcotest.fail "expected folded constant"

(* ------------------------------------------------------------------ *)
(* RTL-level passes                                                    *)
(* ------------------------------------------------------------------ *)

let rtl_of src entry =
  let a = Driver.compile_artifacts (Parse.clight src) in
  ignore entry;
  a

let count_instrs p f =
  let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = f) p.Rtl.funcs in
  Rtl.IMap.cardinal fn.Rtl.code

let test_tailcall_fires () =
  let a = rtl_of Corpus.mutual_tailcall_src "even" in
  let has_tailcall p name =
    let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = name) p.Rtl.funcs in
    Rtl.IMap.exists (fun _ i -> match i with Rtl.Itailcall _ -> true | _ -> false)
      fn.Rtl.code
  in
  check tbool "no tailcall before" false (has_tailcall a.Driver.rtl "even");
  check tbool "tailcall after" true (has_tailcall a.Driver.rtl_tailcall "even");
  check tbool "odd too" true (has_tailcall a.Driver.rtl_tailcall "odd")

let test_tailcall_needs_empty_frame () =
  (* a function with stack data must not tail-call *)
  let src = {| int f(int n) { int a; a = 0; g(&a); return h(n); } |} in
  let a = rtl_of src "f" in
  let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = "f") a.Driver.rtl_tailcall.Rtl.funcs in
  check tbool "stackful function keeps calls" false
    (Rtl.IMap.exists (fun _ i -> match i with Rtl.Itailcall _ -> true | _ -> false)
       fn.Rtl.code)

let test_renumber_compact () =
  let a = rtl_of Corpus.fib_src "fib" in
  let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = "fib") a.Driver.rtl_renumber.Rtl.funcs in
  let nodes = List.map fst (Rtl.IMap.bindings fn.Rtl.code) in
  let n = List.length nodes in
  check tbool "nodes are 1..n" true
    (List.sort compare nodes = List.init n (fun i -> i + 1));
  check tint "entry is 1" 1 fn.Rtl.entry

let test_constprop_folds () =
  let src = {| int g = 0; void main() { int a; a = 3 * 4; g = a + 1; print(g); } |} in
  let a = rtl_of src "main" in
  let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = "main") a.Driver.rtl_constprop.Rtl.funcs in
  (* after constprop, some Iop must be Oconst 13 *)
  check tbool "13 materialized" true
    (Rtl.IMap.exists
       (fun _ i -> match i with Rtl.Iop (Rtl.Oconst 13, _, _) -> true | _ -> false)
       fn.Rtl.code)

let test_constprop_kills_branches () =
  let src = {| void main() { if (1 < 2) { print(1); } else { print(2); } } |} in
  let a = rtl_of src "main" in
  let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = "main") a.Driver.rtl_constprop.Rtl.funcs in
  check tbool "constant branch removed" false
    (Rtl.IMap.exists
       (fun _ i -> match i with Rtl.Icond _ -> true | _ -> false)
       fn.Rtl.code)

let test_cse_dedups () =
  (* b = (t*t) + (t*t): the second t*t should become a move after CSE *)
  (* t comes from a memory load, so ConstProp cannot fold it first *)
  let src = {| int g = 7; int r = 0; void main(){ int t; t = g; r = t * t + t * t; print(r); } |} in
  let a = rtl_of src "main" in
  let count_muls p =
    let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = "main") p.Rtl.funcs in
    Rtl.IMap.fold
      (fun _ i acc ->
        match i with
        | Rtl.Iop (Rtl.Obinop (Ops.Omul, _, _), _, _) -> acc + 1
        | _ -> acc)
      fn.Rtl.code 0
  in
  check tbool "cse reduces multiplications" true
    (count_muls a.Driver.rtl_cse < count_muls a.Driver.rtl_constprop)

let test_deadcode_removes_dead_load () =
  (* t = g; t never used afterwards: the load must disappear *)
  let src = {| int g = 7; void main() { int t; t = g; print(3); } |} in
  let a = rtl_of src "main" in
  let count_loads p =
    let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = "main") p.Rtl.funcs in
    Rtl.IMap.fold
      (fun _ i acc -> match i with Rtl.Iload _ -> acc + 1 | _ -> acc)
      fn.Rtl.code 0
  in
  check tbool "dead load removed" true
    (count_loads a.Driver.rtl_deadcode < count_loads a.Driver.rtl_cse)

let test_deadcode_keeps_stores_and_calls () =
  let src = {| int g = 0; void main() { g = 5; print(1); } |} in
  let a = rtl_of src "main" in
  let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = "main") a.Driver.rtl_deadcode.Rtl.funcs in
  check tbool "store survives" true
    (Rtl.IMap.exists (fun _ i -> match i with Rtl.Istore _ -> true | _ -> false)
       fn.Rtl.code);
  check tbool "call survives" true
    (Rtl.IMap.exists
       (fun _ i ->
         match i with Rtl.Icall _ | Rtl.Itailcall _ -> true | _ -> false)
       fn.Rtl.code)

let test_deadcode_keeps_live_ops () =
  let src = {| int f(int n) { return n + 1; } |} in
  let a = rtl_of src "f" in
  let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = "f") a.Driver.rtl_deadcode.Rtl.funcs in
  check tbool "live op survives" true
    (Rtl.IMap.exists
       (fun _ i ->
         match i with Rtl.Iop (Rtl.Obinop_imm (Ops.Oadd, _, 1), _, _) -> true | _ -> false)
       fn.Rtl.code)

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let test_liveness_params_live_at_entry () =
  let a = rtl_of Corpus.fib_src "fib" in
  let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = "fib") a.Driver.rtl.Rtl.funcs in
  let live = Liveness.analyze fn in
  let entry_live = Liveness.live_in live fn.Rtl.entry in
  check tbool "parameter live at entry" true
    (List.exists (fun p -> Liveness.ISet.mem p entry_live) fn.Rtl.fparams)

let test_liveness_dead_after_return () =
  let a = rtl_of {| int f() { return 1; } |} "f" in
  let fn = List.find (fun (x : Rtl.func) -> x.Rtl.fname = "f") a.Driver.rtl.Rtl.funcs in
  let live = Liveness.analyze fn in
  Rtl.IMap.iter
    (fun n i ->
      match i with
      | Rtl.Ireturn _ ->
        check tint "nothing live after return" 0
          (Liveness.ISet.cardinal (Liveness.live_out live n))
      | _ -> ())
    fn.Rtl.code

(* ------------------------------------------------------------------ *)
(* Allocation discipline and Stacking                                  *)
(* ------------------------------------------------------------------ *)

let all_clients () = Corpus.sequential_clients ()

let test_allocation_slot_discipline () =
  (* Stacking accepts every allocator output: slots only in moves *)
  List.iter
    (fun (name, client, _) ->
      let a = Driver.compile_artifacts client in
      match Stacking.compile a.Driver.linear_clean with
      | _ -> check tbool (Fmt.str "%s obeys slot discipline" name) true true
      | exception Stacking.Bad_linear msg ->
        Alcotest.failf "%s violates slot discipline: %s" name msg)
    (all_clients ())

let test_allocation_conventional_calls () =
  List.iter
    (fun (name, client, _) ->
      let a = Driver.compile_artifacts client in
      List.iter
        (fun (f : Machl.func) ->
          List.iter
            (function
              | Machl.Mcall (_, arity, _) | Machl.Mtailcall (_, arity) ->
                check tbool
                  (Fmt.str "%s/%s arity within convention" name f.Machl.fname)
                  true
                  (arity <= List.length Mreg.arg_regs)
              | _ -> ())
            f.Machl.code)
        a.Driver.mach.Machl.funcs)
    (all_clients ())

let test_spill_program_uses_slots () =
  let a = Driver.compile_artifacts (Corpus.spill ()) in
  let f = List.find (fun (x : Machl.func) -> x.Machl.fname = "main") a.Driver.mach.Machl.funcs in
  check tbool "spill code has slots" true (f.Machl.nslots > 0)

(* ------------------------------------------------------------------ *)
(* Tunneling / Linearize / CleanupLabels                               *)
(* ------------------------------------------------------------------ *)

let count_ltl_nop_targets (p : Ltl.program) =
  (* number of branch edges that land on an Lnop *)
  List.fold_left
    (fun acc (f : Ltl.func) ->
      Ltl.IMap.fold
        (fun _ i acc ->
          List.fold_left
            (fun acc s ->
              match Ltl.IMap.find_opt s f.Ltl.code with
              | Some (Ltl.Lnop _) -> acc + 1
              | _ -> acc)
            acc (Ltl.successors i))
        f.Ltl.code acc)
    0 p.Ltl.funcs

let test_tunneling_shortens () =
  let a = Driver.compile_artifacts (Corpus.fib ()) in
  check tbool "tunneling reduces nop targets" true
    (count_ltl_nop_targets a.Driver.ltl_tunneled
    <= count_ltl_nop_targets a.Driver.ltl);
  (* resolve never loops, even on pathological self-loops *)
  let code = Ltl.IMap.singleton 1 (Ltl.Lnop 1) in
  check tint "self-loop nop resolves" 1 (Tunneling.resolve code 1)

let test_cleanuplabels_removes () =
  let a = Driver.compile_artifacts (Corpus.fib ()) in
  let labels p =
    List.fold_left
      (fun acc (f : Linearl.func) ->
        List.fold_left
          (fun acc i -> match i with Linearl.Llabel _ -> acc + 1 | _ -> acc)
          acc f.Linearl.code)
      0 p.Linearl.funcs
  in
  check tbool "labels strictly reduced" true
    (labels a.Driver.linear_clean < labels a.Driver.linear);
  (* remaining labels are all referenced *)
  List.iter
    (fun (f : Linearl.func) ->
      let used = Cleanuplabels.referenced f.Linearl.code in
      List.iter
        (function
          | Linearl.Llabel l ->
            check tbool "label referenced" true (Hashtbl.mem used l)
          | _ -> ())
        f.Linearl.code)
    a.Driver.linear_clean.Linearl.funcs

(* ------------------------------------------------------------------ *)
(* Asmgen                                                              *)
(* ------------------------------------------------------------------ *)

let test_asmgen_two_address () =
  (* d := d op s stays a single two-address instruction *)
  let i = Asmgen.tr_op (Mreg.Gbinop (Ops.Oadd, Mreg.AX, Mreg.BX)) Mreg.AX in
  check tint "in-place binop is one instruction" 1 (List.length i);
  (* commutative with d = second operand swaps *)
  (match Asmgen.tr_op (Mreg.Gbinop (Ops.Oadd, Mreg.BX, Mreg.AX)) Mreg.AX with
  | [ Asm.Pbinop_rr (Ops.Oadd, Mreg.AX, Mreg.BX) ] -> ()
  | _ -> Alcotest.fail "expected swapped operands");
  (* non-commutative with clash falls back to the 3-address pseudo *)
  match Asmgen.tr_op (Mreg.Gbinop (Ops.Osub, Mreg.BX, Mreg.AX)) Mreg.AX with
  | [ Asm.Pbinop3 (Ops.Osub, Mreg.AX, Mreg.BX, Mreg.AX) ] -> ()
  | _ -> Alcotest.fail "expected 3-address fallback"

let test_asmgen_frame_offsets () =
  let a = Driver.compile_artifacts (Corpus.spill ()) in
  let mf = List.find (fun (x : Machl.func) -> x.Machl.fname = "main") a.Driver.mach.Machl.funcs in
  let af = List.find (fun (x : Asm.func) -> x.Asm.fname = "main") a.Driver.asm.Asm.funcs in
  check tint "asm frame covers mach frame" (Machl.frame_size mf) af.Asm.framesize;
  (* every stack access stays in frame *)
  List.iter
    (function
      | Asm.Pload_stack (_, ofs) | Asm.Pstore_stack (ofs, _) ->
        check tbool "stack offset in frame" true (ofs >= 0 && ofs < af.Asm.framesize)
      | _ -> ())
    af.Asm.code

(* ------------------------------------------------------------------ *)
(* Whole-pipeline sizes sanity                                         *)
(* ------------------------------------------------------------------ *)

let test_driver_pass_count () =
  check tint "Fig. 11 + SimplLocals + extensions" 16
    (List.length Driver.pass_names)

let test_optimize_flag () =
  let a_opt = Driver.compile_artifacts (Corpus.const_cse ()) in
  let a_noopt =
    Driver.compile_artifacts ~options:{ Driver.optimize = false }
      (Corpus.const_cse ())
  in
  ignore (count_instrs a_opt.Driver.rtl_cse "main");
  check tbool "no-opt keeps rtl unchanged" true
    (a_noopt.Driver.rtl_cse == a_noopt.Driver.rtl_renumber
    || a_noopt.Driver.rtl_cse = a_noopt.Driver.rtl_renumber)

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_selection_fig12 ]

let () =
  Alcotest.run "compiler"
    [
      ( "simpllocals",
        [
          Alcotest.test_case "promotes" `Quick test_simpllocals_promotes;
          Alcotest.test_case "keeps arrays" `Quick test_simpllocals_keeps_arrays;
        ] );
      ("cminorgen", [ Alcotest.test_case "layout" `Quick test_cminorgen_layout ]);
      ( "selection",
        [ Alcotest.test_case "immediates" `Quick test_selection_immediates ] );
      ( "rtl passes",
        [
          Alcotest.test_case "tailcall fires" `Quick test_tailcall_fires;
          Alcotest.test_case "tailcall frame condition" `Quick
            test_tailcall_needs_empty_frame;
          Alcotest.test_case "renumber compact" `Quick test_renumber_compact;
          Alcotest.test_case "constprop folds" `Quick test_constprop_folds;
          Alcotest.test_case "constprop kills branches" `Quick
            test_constprop_kills_branches;
          Alcotest.test_case "cse dedups" `Quick test_cse_dedups;
          Alcotest.test_case "deadcode removes dead load" `Quick
            test_deadcode_removes_dead_load;
          Alcotest.test_case "deadcode keeps effects" `Quick
            test_deadcode_keeps_stores_and_calls;
          Alcotest.test_case "deadcode keeps live ops" `Quick
            test_deadcode_keeps_live_ops;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "params live at entry" `Quick
            test_liveness_params_live_at_entry;
          Alcotest.test_case "dead after return" `Quick
            test_liveness_dead_after_return;
        ] );
      ( "allocation/stacking",
        [
          Alcotest.test_case "slot discipline" `Quick
            test_allocation_slot_discipline;
          Alcotest.test_case "conventional calls" `Quick
            test_allocation_conventional_calls;
          Alcotest.test_case "spill uses slots" `Quick
            test_spill_program_uses_slots;
        ] );
      ( "tunneling/linearize",
        [
          Alcotest.test_case "tunneling" `Quick test_tunneling_shortens;
          Alcotest.test_case "cleanuplabels" `Quick test_cleanuplabels_removes;
        ] );
      ( "asmgen",
        [
          Alcotest.test_case "two-address lowering" `Quick
            test_asmgen_two_address;
          Alcotest.test_case "frame offsets" `Quick test_asmgen_frame_offsets;
        ] );
      ( "driver",
        [
          Alcotest.test_case "pass count" `Quick test_driver_pass_count;
          Alcotest.test_case "optimize flag" `Quick test_optimize_flag;
        ] );
      ("properties", qsuite);
    ]
