bench/bench_corpus.ml: Cas_base Cas_langs Cascompcert Cimp Clight Parse
