bench/main.mli:
