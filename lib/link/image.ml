(** Linked images (`.cai`): the output of [casc link] — every module's
    compiled code in canonical link order, the thread entry points, and
    the composed whole-program certificate digest when the link was
    certified. Like object files, the body is digest-sealed: [load]
    recomputes the digest and rejects modified images (corruption
    evidence, with the same scope and caveats as [Objfile]). *)

open Cas_base
open Cas_langs
module Json = Cas_diag.Json

let extension = ".cai"
let format_version = 1

type linked_module = {
  lm_name : string;
  lm_obj_digest : string;  (** body digest of the object it came from *)
  lm_asm : Asm.program;
}

type t = {
  i_version : string;
  i_format : int;
  i_entries : string list;
  i_modules : linked_module list;  (** canonical link order *)
  i_certified : bool;
      (** the composed certificate (Lem. 6 premises) verified at link
          time *)
  i_cert_digest : string;  (** digest of the composed certificate, or "" *)
  i_digest : string;  (** digest of the canonical body *)
}

(** The image as a runnable program (all modules under x86-SC). *)
let to_prog ?entries (img : t) : Lang.prog =
  Lang.prog
    (List.map (fun m -> Lang.Mod (Asm.lang, m.lm_asm)) img.i_modules)
    (Option.value ~default:img.i_entries entries)

let asm_modules (img : t) : Asm.program list =
  List.map (fun m -> m.lm_asm) img.i_modules

(* ------------------------------------------------------------------ *)
(* JSON and digests                                                    *)
(* ------------------------------------------------------------------ *)

let module_to_json (m : linked_module) : Json.t =
  Json.Obj
    [
      ("name", Json.Str m.lm_name);
      ("obj_digest", Json.Str m.lm_obj_digest);
      ("asm", Asmjson.program_to_json m.lm_asm);
    ]

let module_of_json (j : Json.t) : linked_module =
  {
    lm_name = Json.to_str_exn (Json.member "name" j);
    lm_obj_digest = Json.to_str_exn (Json.member "obj_digest" j);
    lm_asm = Asmjson.program_of_json (Json.member "asm" j);
  }

let body_json (img : t) : Json.t =
  Json.Obj
    [
      ("entries", Json.List (List.map (fun e -> Json.Str e) img.i_entries));
      ("modules", Json.List (List.map module_to_json img.i_modules));
      ("certified", Json.Bool img.i_certified);
      ("cert_digest", Json.Str img.i_cert_digest);
    ]

let digest_of (img : t) : string =
  Digest.to_hex
    (Digest.string
       (Fmt.str "%s|%d|%s" img.i_version img.i_format
          (Json.to_string (body_json img))))

(** Assemble an image, computing its digest. *)
let make ~entries ~modules ~certified ~cert_digest : t =
  let img =
    {
      i_version = Version.v;
      i_format = format_version;
      i_entries = entries;
      i_modules = modules;
      i_certified = certified;
      i_cert_digest = cert_digest;
      i_digest = "";
    }
  in
  { img with i_digest = digest_of img }

let to_json (img : t) : Json.t =
  Json.Obj
    [
      ("magic", Json.Str "cai");
      ("version", Json.Str img.i_version);
      ("format", Json.Int img.i_format);
      ("body", body_json img);
      ("digest", Json.Str img.i_digest);
    ]

let to_string (img : t) : string = Json.to_string (to_json img)

let of_json (j : Json.t) : (t, string) result =
  Json.decode
    (fun j ->
      (match Json.member_opt "magic" j with
      | Some (Json.Str "cai") -> ()
      | _ -> Json.decode_fail "not a linked image (bad magic)");
      let format = Json.to_int_exn (Json.member "format" j) in
      if format <> format_version then
        Json.decode_fail "unsupported image format %d (expected %d)" format
          format_version;
      let body = Json.member "body" j in
      {
        i_version = Json.to_str_exn (Json.member "version" j);
        i_format = format;
        i_entries =
          List.map Json.to_str_exn
            (Json.to_list_exn (Json.member "entries" body));
        i_modules =
          List.map module_of_json
            (Json.to_list_exn (Json.member "modules" body));
        i_certified = Json.to_bool_exn (Json.member "certified" body);
        i_cert_digest = Json.to_str_exn (Json.member "cert_digest" body);
        i_digest = Json.to_str_exn (Json.member "digest" j);
      })
    j

let of_string (s : string) : (t, string) result =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
    match of_json j with
    | Error e -> Error e
    | Ok img ->
      let recomputed = digest_of img in
      if String.equal recomputed img.i_digest then Ok img
      else
        Error
          (Fmt.str
             "image digest mismatch: recorded %s, recomputed %s (image \
              tampered or corrupted)"
             img.i_digest recomputed))

(** Written atomically (temp file + [Sys.rename]), like [Objfile.save]:
    a crash mid-write must not leave a truncated image behind. *)
let save (img : t) ~(file : string) : unit =
  let tmp =
    Fmt.str "%s.tmp.%d.%d" file (Unix.getpid ()) (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  output_string oc (to_string img);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp file

let load ~(file : string) : (t, string) result =
  match
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s -> of_string s

let pp ppf (img : t) =
  Fmt.pf ppf "@[<v>image %s (%d module%s)%s@ entries: %a@ %a@]" img.i_digest
    (List.length img.i_modules)
    (if List.length img.i_modules = 1 then "" else "s")
    (if img.i_certified then " [certified]" else "")
    Fmt.(list ~sep:comma string)
    img.i_entries
    Fmt.(
      list ~sep:cut (fun ppf m ->
          Fmt.pf ppf "%-16s %s" m.lm_name m.lm_obj_digest))
    img.i_modules
