(** The certified linker: loads `.cao` object files, resolves symbols,
    and composes the per-module certificates into a whole-program
    certificate by empirically checking the premises of the paper's
    linking lemma (Lem. 6) on the linked program
    ([Cascompcert.Framework.compose_certificates]).

    Relinking is incremental: each module's link-time simulation verdict
    is memoized in the certificate cache under a key derived from the
    object's content digests, so an unchanged object re-certifies with
    zero checker steps — across processes too, when a cache directory is
    set ([Cas_compiler.Cache.set_default_dir]). [jobs > 1] fans the
    per-module checks out over OCaml 5 domains. *)

open Cas_base
open Cas_langs

type stats = {
  l_objects : int;
  l_verdicts : int;  (** module-entry simulation verdicts consulted *)
  l_cached : int;  (** of which were certificate-cache hits *)
  l_checker_steps : int;  (** checker steps actually executed *)
  l_wall_ns : float;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "%d object%s, %d verdict%s (%d cached), %d checker steps, %.2f ms"
    s.l_objects
    (if s.l_objects = 1 then "" else "s")
    s.l_verdicts
    (if s.l_verdicts = 1 then "" else "s")
    s.l_cached s.l_checker_steps (s.l_wall_ns /. 1e6)

type outcome = {
  lk_image : Image.t;
  lk_compose : Cascompcert.Framework.compose_report option;
      (** present when the link was certified *)
  lk_stats : stats;
}

type error =
  | Load_error of string * string  (** file, message *)
  | Resolve_errors of Resolve.error list
  | Source_error of string * string
      (** module, error re-parsing its recorded source *)
  | Certify_failed of Cascompcert.Framework.compose_report

let pp_error ppf = function
  | Load_error (file, msg) -> Fmt.pf ppf "%s: %s" file msg
  | Resolve_errors es ->
    Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Resolve.pp_error) es
  | Source_error (m, msg) -> Fmt.pf ppf "%s: %s" m msg
  | Certify_failed r ->
    Fmt.pf ppf
      "@[<v>certificate composition failed:@ %a@]"
      Cascompcert.Framework.pp_compose r

(** Digest of the composed certificate: commits to every module's body
    digest and certificate chain plus the entry points — the content
    address of "these exact certified objects, linked". *)
let compose_digest ~(entries : string list) (objs : Objfile.t list) : string =
  Cas_compiler.Cache.digest
    ( "cai-cert",
      Version.v,
      entries,
      List.map
        (fun (o : Objfile.t) ->
          (o.o_name, o.o_body_digest, o.o_cert.Cert.chain))
        objs )

(** Link already-loaded (and integrity-verified) objects. [label] names
    objects in resolver errors (defaults to the module name; [link_files]
    passes the on-disk file name). *)
let link ?bounds ?max_switches ?tau_bound ?(jobs = 1) ?(certify = false)
    ?label ~(entries : string list) (objs : Objfile.t list) :
    (outcome, error) result =
  let t0 = Unix.gettimeofday () in
  match Resolve.resolve ~entries ?label objs with
  | Error es -> Error (Resolve_errors es)
  | Ok res -> (
    let objs = res.Resolve.r_objects in
    let modules_of_image () =
      List.map
        (fun (o : Objfile.t) ->
          {
            Image.lm_name = o.o_name;
            lm_obj_digest = o.o_body_digest;
            lm_asm = o.o_asm;
          })
        objs
    in
    let finish ?compose ~certified ~cert_digest () =
      let img =
        Image.make ~entries ~modules:(modules_of_image ()) ~certified
          ~cert_digest
      in
      let l_verdicts, l_cached, l_checker_steps =
        match compose with
        | None -> (0, 0, 0)
        | Some (r : Cascompcert.Framework.compose_report) ->
          List.fold_left
            (fun (n, c, s) (m : Cascompcert.Framework.compose_module_report)
               ->
              (n + 1, (c + if m.cm_cached then 1 else 0), s + m.cm_steps))
            (0, 0, 0) r.comp_modules
      in
      Ok
        {
          lk_image = img;
          lk_compose = compose;
          lk_stats =
            {
              l_objects = List.length objs;
              l_verdicts;
              l_cached;
              l_checker_steps;
              l_wall_ns = (Unix.gettimeofday () -. t0) *. 1e9;
            };
        }
    in
    if not certify then finish ~certified:false ~cert_digest:"" ()
    else
      (* re-parse each object's recorded source: the src side of the
         link-time module-local simulations *)
      let rec sources acc = function
        | [] -> Ok (List.rev acc)
        | (o : Objfile.t) :: rest -> (
          match Parse.clight o.o_source with
          | exception Parse.Error (msg, _) ->
            Error
              (Source_error
                 (o.o_name, Fmt.str "recorded source no longer parses: %s" msg))
          | p ->
            sources
              ((o.o_name, Lang.Mod (Clight.lang, p), Lang.Mod (Asm.lang, o.o_asm))
              :: acc)
              rest)
      in
      match sources [] objs with
      | Error e -> Error e
      | Ok modules ->
        (* Key each verdict by the *function body digests* of the entry
           on both sides of the link-time simulation, plus both sides'
           global declarations. Content addressing makes stale-verdict
           collisions impossible by construction: two same-named objects
           with disjoint exports digest their entries to different keys
           (an absent function digests to the bare language prefix), and
           editing one function of an object invalidates exactly that
           function's verdict — relinking revalidates only it. *)
        let mod_at = Array.of_list modules in
        let verdict_key ~mod_index ~mod_name:_ ~entry =
          if mod_index < 0 || mod_index >= Array.length mod_at then None
          else
            let _, src_mod, tgt_mod = mod_at.(mod_index) in
            let (Lang.Mod (sl, sc)) = src_mod in
            let (Lang.Mod (tl, tc)) = tgt_mod in
            Some
              (Cas_compiler.Cache.digest
                 ( "link-verdict",
                   Version.v,
                   Lang.digest_fundef src_mod entry,
                   Lang.digest_fundef tgt_mod entry,
                   (sl.Lang.globals_of sc, tl.Lang.globals_of tc),
                   max_switches,
                   tau_bound ))
        in
        let compose =
          Cascompcert.Framework.compose_certificates ?bounds ?max_switches
            ?tau_bound ~jobs ~verdict_key ~modules ~entries ()
        in
        if not compose.Cascompcert.Framework.comp_ok then
          Error (Certify_failed compose)
        else
          finish ~compose ~certified:true
            ~cert_digest:(compose_digest ~entries objs) ())

(** Load, verify and link object files from disk. *)
let link_files ?bounds ?max_switches ?tau_bound ?jobs ?certify ~entries
    (files : string list) : (outcome, error) result =
  let rec load acc = function
    | [] -> Ok (List.rev acc)
    | file :: rest -> (
      match Objfile.load ~file with
      | Error msg -> Error (Load_error (file, msg))
      | Ok o -> load (o :: acc) rest)
  in
  match load [] files with
  | Error e -> Error e
  | Ok objs ->
    (* attribute resolver errors to file names: two files may well carry
       the same module name, and "defined by both g and g" helps nobody *)
    let labels = List.combine objs files in
    let label o =
      match List.assq_opt o labels with Some f -> f | None -> o.Objfile.o_name
    in
    link ?bounds ?max_switches ?tau_bound ?jobs ?certify ~label ~entries objs
