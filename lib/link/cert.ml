(** Module certificates: the digest-chained record of the per-pass
    footprint-preserving simulation verdicts established when the module
    was compiled ([Cascompcert.Framework.check_passes]).

    The chain is seeded from the object format version and the body
    digest, and each verdict folds its (pass, entry, outcome) triple into
    the running hash. Verification recomputes the chain from the stored
    entries: flipping any byte of a verdict — or of the body the seed
    commits to — breaks the chain, so a tampered object file cannot pass
    [casc link --certify]. Outcomes embed the deterministic checker
    counters (switch points, steps per side), never run-dependent data
    like cache hits, so recompiling an unchanged unit reproduces the
    identical chain. *)

module Json = Cas_diag.Json

type entry = {
  e_pass : string;  (** pipeline stage, or "Compiler" for end-to-end *)
  e_entry : string;  (** function the co-execution started from *)
  e_tag : string;  (** "ok" | "inconclusive" | "fail" *)
  e_detail : string;  (** printed [Simulation.outcome], incl. counters *)
}

type t = {
  verdicts : entry list;
  chain : string;  (** final value of the digest chain *)
}

let outcome_tag : Cascompcert.Simulation.outcome -> string = function
  | Sim_ok _ -> "ok"
  | Sim_inconclusive _ -> "inconclusive"
  | Sim_fail _ -> "fail"

(** A certificate is passing when no recorded verdict is a failure
    (inconclusive verdicts are bounded non-counterexamples, as in
    [Framework.sim_ok]). *)
let ok (c : t) = List.for_all (fun e -> e.e_tag <> "fail") c.verdicts

let failures (c : t) = List.filter (fun e -> e.e_tag = "fail") c.verdicts

(** Chain seed: commits to the format and to the body the certificate
    certifies. *)
let seed ~version ~format ~body_digest : string =
  Cas_compiler.Cache.digest ("cao-cert", version, format, body_digest)

let fold_entry (h : string) (e : entry) : string =
  Cas_compiler.Cache.digest (h, e.e_pass, e.e_entry, e.e_tag, e.e_detail)

let chain_of ~seed (verdicts : entry list) : string =
  List.fold_left fold_entry seed verdicts

let of_reports ~seed (reports : Cascompcert.Framework.pass_sim_report list) :
    t =
  let verdicts =
    List.map
      (fun (r : Cascompcert.Framework.pass_sim_report) ->
        {
          e_pass = r.pass;
          e_entry = r.entry;
          e_tag = outcome_tag r.outcome;
          e_detail = Fmt.str "%a" Cascompcert.Simulation.pp_outcome r.outcome;
        })
      reports
  in
  { verdicts; chain = chain_of ~seed verdicts }

(** Recompute the digest chain from the entries; [Error] explains the
    first mismatch. *)
let verify ~seed (c : t) : (unit, string) result =
  let recomputed = chain_of ~seed c.verdicts in
  if String.equal recomputed c.chain then Ok ()
  else
    Error
      (Fmt.str
         "certificate chain mismatch: recorded %s, recomputed %s (object \
          tampered or truncated)"
         c.chain recomputed)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let entry_to_json (e : entry) : Json.t =
  Json.Obj
    [
      ("pass", Json.Str e.e_pass);
      ("entry", Json.Str e.e_entry);
      ("tag", Json.Str e.e_tag);
      ("detail", Json.Str e.e_detail);
    ]

let entry_of_json (j : Json.t) : entry =
  {
    e_pass = Json.to_str_exn (Json.member "pass" j);
    e_entry = Json.to_str_exn (Json.member "entry" j);
    e_tag = Json.to_str_exn (Json.member "tag" j);
    e_detail = Json.to_str_exn (Json.member "detail" j);
  }

let to_json (c : t) : Json.t =
  Json.Obj
    [
      ("verdicts", Json.List (List.map entry_to_json c.verdicts));
      ("chain", Json.Str c.chain);
    ]

let of_json (j : Json.t) : t =
  {
    verdicts =
      List.map entry_of_json (Json.to_list_exn (Json.member "verdicts" j));
    chain = Json.to_str_exn (Json.member "chain" j);
  }

let pp ppf (c : t) =
  Fmt.pf ppf "@[<v>%a@ chain %s@]"
    Fmt.(
      list ~sep:cut (fun ppf e ->
          Fmt.pf ppf "%-14s %-12s %s" e.e_pass e.e_entry e.e_detail))
    c.verdicts c.chain
