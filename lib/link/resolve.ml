(** The symbol resolver: checks that a set of certified object files
    links into a closed program, with precise (file, symbol) attribution
    for every failure.

    Resolution works over interned symbol ids ([Genv.Sym]) — names from
    the object files are re-interned on load, so the hot membership and
    equality checks compare dense integers. Objects are first put into
    canonical link order (sorted by module name, ties broken by body
    digest), which makes the linked image — and its digest — independent
    of the order the files were given on the command line. *)

open Cas_base

type error =
  | Duplicate_export of { sym : string; obj1 : string; obj2 : string }
      (** two objects define the same function — resolution would
          silently shadow one of them, so linking refuses (the
          [World.Duplicate_fundef] check, moved to link time) *)
  | Missing_import of { sym : string; arity : int; obj : string }
  | Arity_mismatch of {
      sym : string;
      def_obj : string;
      def_arity : int;
      use_obj : string;
      use_arity : int;
    }
  | Incompatible_global of { name : string; obj1 : string; obj2 : string }
  | Missing_entry of { entry : string }

let pp_error ppf = function
  | Duplicate_export { sym; obj1; obj2 } ->
    Fmt.pf ppf "duplicate definition of %s: defined by both %s and %s" sym
      obj1 obj2
  | Missing_import { sym; arity; obj } ->
    Fmt.pf ppf "undefined symbol %s/%d, required by %s" sym arity obj
  | Arity_mismatch { sym; def_obj; def_arity; use_obj; use_arity } ->
    Fmt.pf ppf "%s calls %s with arity %d, but %s defines it with arity %d"
      use_obj sym use_arity def_obj def_arity
  | Incompatible_global { name; obj1; obj2 } ->
    Fmt.pf ppf "incompatible declarations of global %s in %s and %s" name
      obj1 obj2
  | Missing_entry { entry } ->
    Fmt.pf ppf "entry point %s is not defined by any object" entry

type resolution = {
  r_objects : Objfile.t list;  (** canonical link order *)
  r_defs : (string * string) list;  (** symbol name -> defining object *)
}

let canonical_order (objs : Objfile.t list) : Objfile.t list =
  List.sort
    (fun (a : Objfile.t) b ->
      match String.compare a.o_name b.o_name with
      | 0 -> String.compare a.o_body_digest b.o_body_digest
      | c -> c)
    objs

(** Resolve [objs] against [entries]; either a complete, conflict-free
    resolution or the full list of errors (not just the first).

    [label] names an object in error messages — it defaults to the
    module name, and [Linker.link_files] passes the on-disk file name so
    two files carrying the same module attribute precisely. *)
let resolve ?(entries = []) ?(label = fun (o : Objfile.t) -> o.o_name)
    (objs : Objfile.t list) : (resolution, error list) result =
  let objs = canonical_order objs in
  let errors = ref [] in
  let err e = errors := e :: !errors in
  (* export table over interned ids *)
  let defs : (int, string * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (o : Objfile.t) ->
      List.iter
        (fun (s : Objfile.sym) ->
          let id = Genv.Sym.intern s.s_name in
          match Hashtbl.find_opt defs id with
          | Some (first, _) ->
            err
              (Duplicate_export
                 { sym = s.s_name; obj1 = first; obj2 = label o })
          | None -> Hashtbl.add defs id (label o, s.s_arity))
        o.o_exports)
    objs;
  (* every import must resolve, at the right arity *)
  let builtin_ids = List.map Genv.Sym.intern Objfile.builtins in
  List.iter
    (fun (o : Objfile.t) ->
      List.iter
        (fun (s : Objfile.sym) ->
          let id = Genv.Sym.intern s.s_name in
          if not (List.exists (Genv.Sym.equal id) builtin_ids) then
            match Hashtbl.find_opt defs id with
            | None ->
              err
                (Missing_import
                   { sym = s.s_name; arity = s.s_arity; obj = label o })
            | Some (def_obj, def_arity) ->
              if def_arity <> s.s_arity then
                err
                  (Arity_mismatch
                     {
                       sym = s.s_name;
                       def_obj;
                       def_arity;
                       use_obj = label o;
                       use_arity = s.s_arity;
                     }))
        o.o_imports)
    objs;
  (* global variables must agree across objects *)
  let globals : (string, string * Genv.gvar) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (o : Objfile.t) ->
      List.iter
        (fun (g : Genv.gvar) ->
          match Hashtbl.find_opt globals g.gname with
          | None -> Hashtbl.add globals g.gname (label o, g)
          | Some (first, g') ->
            if not (Genv.compatible_gvar g g') then
              err
                (Incompatible_global
                   { name = g.gname; obj1 = first; obj2 = label o }))
        o.o_asm.globals)
    objs;
  (* thread entry points must be defined somewhere *)
  List.iter
    (fun entry ->
      let id = Genv.Sym.intern entry in
      if not (Hashtbl.mem defs id) then err (Missing_entry { entry }))
    entries;
  match List.rev !errors with
  | [] ->
    let r_defs =
      Hashtbl.fold
        (fun id (obj, _) acc -> (Genv.Sym.name id, obj) :: acc)
        defs []
      |> List.sort compare
    in
    Ok { r_objects = objs; r_defs }
  | es -> Error es
