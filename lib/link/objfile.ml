(** Certified object files (`.cao`): one compiled module together with
    everything a linker needs to compose it into a certified program —
    the x86 code, the exported and imported symbol tables, the source it
    was compiled from, and the certificate of the per-pass
    footprint-preserving simulations established at compile time.

    The on-disk format is versioned JSON ([Cas_diag.Json]); the *body*
    (everything except the digests) is serialized canonically and hashed,
    and the certificate's digest chain is seeded from that body digest
    ([Cert.seed]), so body and certificate seal each other: flip a byte
    of either and [load] rejects the file.

    The seal is *corruption-evident*, not forgery-proof: it is unkeyed
    content hashing over data the file itself carries, so whoever can
    rewrite the body can recompute the digests and re-fold the chain.
    Trusting a [.cao] means trusting the tree that built it; against a
    forged file the defense is [casc link --certify], which re-runs
    every check from the recorded source instead of believing the chain.

    Symbols are stored by name and re-interned ([Genv.Sym]) by the
    resolver on load. *)

open Cas_langs
module Json = Cas_diag.Json

let extension = ".cao"
let format_version = 1

(** Externals resolved by the runtime, never by the linker (cf. the
    [print] case of [Cas_conc.World.local_steps]). *)
let builtins = [ "print" ]

(** An exported or imported function symbol, by name and arity. *)
type sym = { s_name : string; s_arity : int }

let pp_sym ppf s = Fmt.pf ppf "%s/%d" s.s_name s.s_arity

type t = {
  o_name : string;  (** module name, e.g. the source file's basename *)
  o_version : string;  (** toolchain version that produced the file *)
  o_format : int;
  o_source : string;  (** the mini-C source text, for re-certification *)
  o_options : Cas_compiler.Pass.options;
  o_context : string;  (** [Driver.context_hash] of the unit *)
  o_asm : Asm.program;
  o_exports : sym list;  (** functions this module defines, name-sorted *)
  o_imports : sym list;  (** functions it calls but does not define *)
  o_cert : Cert.t;
  o_body_digest : string;  (** digest of the canonical body JSON *)
}

let defines (o : t) (name : string) =
  List.exists (fun s -> String.equal s.s_name name) o.o_exports

(* ------------------------------------------------------------------ *)
(* Symbol tables from the compiled code                                *)
(* ------------------------------------------------------------------ *)

let exports_of_asm (p : Asm.program) : sym list =
  List.map (fun (f : Asm.func) -> { s_name = f.fname; s_arity = f.arity })
    p.funcs
  |> List.sort (fun a b -> String.compare a.s_name b.s_name)

(** Call targets not defined in the module and not built in — what the
    linker must find in some other object. *)
let imports_of_asm (p : Asm.program) : sym list =
  let defined = List.map (fun (f : Asm.func) -> f.fname) p.funcs in
  let is_external f =
    (not (List.mem f defined)) && not (List.mem f builtins)
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Asm.func) ->
      List.iter
        (function
          | Asm.Pcall (g, ar, _) | Asm.Ptailjmp (g, ar) ->
            if is_external g then Hashtbl.replace tbl (g, ar) ()
          | _ -> ())
        f.code)
    p.funcs;
  Hashtbl.fold (fun (g, ar) () acc -> { s_name = g; s_arity = ar } :: acc) tbl
    []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* JSON and digests                                                    *)
(* ------------------------------------------------------------------ *)

let sym_to_json s =
  Json.Obj [ ("name", Json.Str s.s_name); ("arity", Json.Int s.s_arity) ]

let sym_of_json j =
  {
    s_name = Json.to_str_exn (Json.member "name" j);
    s_arity = Json.to_int_exn (Json.member "arity" j);
  }

(** The canonical body: every field the digest commits to, in fixed
    order. *)
let body_json (o : t) : Json.t =
  Json.Obj
    [
      ("name", Json.Str o.o_name);
      ("source", Json.Str o.o_source);
      ("options", Asmjson.options_to_json o.o_options);
      ("context", Json.Str o.o_context);
      ("asm", Asmjson.program_to_json o.o_asm);
      ("exports", Json.List (List.map sym_to_json o.o_exports));
      ("imports", Json.List (List.map sym_to_json o.o_imports));
    ]

let body_digest_of (o : t) : string =
  Digest.to_hex
    (Digest.string
       (Fmt.str "%s|%d|%s" o.o_version o.o_format
          (Json.to_string (body_json o))))

let cert_seed (o : t) : string =
  Cert.seed ~version:o.o_version ~format:o.o_format
    ~body_digest:o.o_body_digest

let to_json (o : t) : Json.t =
  Json.Obj
    [
      ("magic", Json.Str "cao");
      ("version", Json.Str o.o_version);
      ("format", Json.Int o.o_format);
      ("body", body_json o);
      ("body_digest", Json.Str o.o_body_digest);
      ("cert", Cert.to_json o.o_cert);
    ]

let to_string (o : t) : string = Json.to_string (to_json o)

(* ------------------------------------------------------------------ *)
(* Building                                                            *)
(* ------------------------------------------------------------------ *)

(** Compile [source] and certify every pipeline pass, producing the
    object. [Error] reports parse failures or a certificate with failing
    verdicts (a pass that does not simulate must not produce an object
    file). *)
let build ?(options = Cas_compiler.Driver.default_options) ?max_switches
    ?tau_bound ?(cache = true) ~name ~(source : string) () :
    (t, string) result =
  match Parse.clight source with
  | exception Parse.Error (msg, pos) ->
    Error (Fmt.str "%s: parse error: %s at %a" name msg Lexer.pp_pos pos)
  | p ->
    let c = Cas_compiler.Driver.compile_unit ~options ~cache p in
    let reports =
      Cascompcert.Framework.check_passes ?max_switches ?tau_bound ~cache
        ~options p
    in
    let o =
      {
        o_name = name;
        o_version = Cas_base.Version.v;
        o_format = format_version;
        o_source = source;
        o_options = options;
        o_context = c.Cas_compiler.Driver.c_context;
        o_asm = c.Cas_compiler.Driver.c_asm;
        o_exports = exports_of_asm c.Cas_compiler.Driver.c_asm;
        o_imports = imports_of_asm c.Cas_compiler.Driver.c_asm;
        o_cert = { verdicts = []; chain = "" };
        o_body_digest = "";
      }
    in
    let o = { o with o_body_digest = body_digest_of o } in
    let cert = Cert.of_reports ~seed:(cert_seed o) reports in
    let o = { o with o_cert = cert } in
    if Cert.ok cert then Ok o
    else
      Error
        (Fmt.str "%s: compilation produced failing verdicts:@ %a" name
           Fmt.(list ~sep:cut (fun ppf e -> Fmt.string ppf e.Cert.e_detail))
           (Cert.failures cert))

(* ------------------------------------------------------------------ *)
(* Load / save, with verification                                      *)
(* ------------------------------------------------------------------ *)

let of_json (j : Json.t) : (t, string) result =
  Json.decode
    (fun j ->
      (match Json.member_opt "magic" j with
      | Some (Json.Str "cao") -> ()
      | _ -> Json.decode_fail "not a certified object file (bad magic)");
      let format = Json.to_int_exn (Json.member "format" j) in
      if format <> format_version then
        Json.decode_fail "unsupported object format %d (expected %d)" format
          format_version;
      let body = Json.member "body" j in
      {
        o_name = Json.to_str_exn (Json.member "name" body);
        o_version = Json.to_str_exn (Json.member "version" j);
        o_format = format;
        o_source = Json.to_str_exn (Json.member "source" body);
        o_options = Asmjson.options_of_json (Json.member "options" body);
        o_context = Json.to_str_exn (Json.member "context" body);
        o_asm = Asmjson.program_of_json (Json.member "asm" body);
        o_exports =
          List.map sym_of_json
            (Json.to_list_exn (Json.member "exports" body));
        o_imports =
          List.map sym_of_json
            (Json.to_list_exn (Json.member "imports" body));
        o_cert = Cert.of_json (Json.member "cert" j);
        o_body_digest = Json.to_str_exn (Json.member "body_digest" j);
      })
    j

(** Integrity of a decoded object: the recorded body digest matches the
    body, and the certificate chain replays from its seed. *)
let verify (o : t) : (unit, string) result =
  let recomputed = body_digest_of o in
  if not (String.equal recomputed o.o_body_digest) then
    Error
      (Fmt.str
         "body digest mismatch: recorded %s, recomputed %s (object tampered \
          or corrupted)"
         o.o_body_digest recomputed)
  else Cert.verify ~seed:(cert_seed o) o.o_cert

let of_string (s : string) : (t, string) result =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
    match of_json j with
    | Error e -> Error e
    | Ok o -> ( match verify o with Ok () -> Ok o | Error e -> Error e))

(** Written atomically (temp file in the target directory, then
    [Sys.rename], as [Cas_compiler.Cache] does): a crash mid-write must
    not leave a truncated object at the destination. *)
let save (o : t) ~(file : string) : unit =
  let tmp =
    Fmt.str "%s.tmp.%d.%d" file (Unix.getpid ()) (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  output_string oc (to_string o);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp file

let load ~(file : string) : (t, string) result =
  match
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s -> of_string s

let pp ppf (o : t) =
  Fmt.pf ppf "@[<v>%s (%s, format %d)@ exports: %a@ imports: %a@ body %s@]"
    o.o_name o.o_version o.o_format
    Fmt.(list ~sep:comma pp_sym)
    o.o_exports
    Fmt.(list ~sep:comma pp_sym)
    o.o_imports o.o_body_digest
