(** JSON codec for compiled x86 modules ([Cas_langs.Asm]) and the global
    declarations they carry — the code section of a certified object file.

    The encoding is canonical: a given program has exactly one JSON tree
    (field order fixed, instructions as tagged arrays), so the object
    file's content digest can be taken over the serialized body and any
    byte flip that changes the decoded program also changes the digest.
    Symbols are stored by *name*; interned ids ([Genv.Sym]) are
    process-local and never serialized. *)

open Cas_base
open Cas_langs
module Json = Cas_diag.Json

let fail = Json.decode_fail

(* ------------------------------------------------------------------ *)
(* Registers, operators, conditions                                    *)
(* ------------------------------------------------------------------ *)

let reg_to_json (r : Mreg.t) = Json.Str (Mreg.to_string r)

let reg_of_json j =
  let s = Json.to_str_exn j in
  match List.find_opt (fun r -> String.equal (Mreg.to_string r) s) Mreg.all with
  | Some r -> r
  | None -> fail "unknown register %S" s

let binop_tags : (Ops.binop * string) list =
  [
    (Oadd, "add"); (Osub, "sub"); (Omul, "mul"); (Odiv, "div"); (Omod, "mod");
    (Oand, "and"); (Oor, "or"); (Oxor, "xor"); (Oshl, "shl"); (Oshr, "shr");
    (Oeq, "eq"); (One, "ne"); (Olt, "lt"); (Ole, "le"); (Ogt, "gt");
    (Oge, "ge");
  ]

let unop_tags : (Ops.unop * string) list =
  [ (Oneg, "neg"); (Onot, "not"); (Olognot, "lognot") ]

let cond_tags : (Asm.cond * string) list =
  [ (Ceq, "e"); (Cne, "ne"); (Clt, "l"); (Cle, "le"); (Cgt, "g"); (Cge, "ge") ]

let tag_of tags what x =
  match List.assoc_opt x tags with
  | Some t -> Json.Str t
  | None -> fail "unprintable %s" what

let of_tag tags what j =
  let s = Json.to_str_exn j in
  match List.find_opt (fun (_, t) -> String.equal t s) tags with
  | Some (x, _) -> x
  | None -> fail "unknown %s %S" what s

let binop_to_json = tag_of binop_tags "binop"
let binop_of_json = of_tag binop_tags "binop"
let unop_to_json = tag_of unop_tags "unop"
let unop_of_json = of_tag unop_tags "unop"
let cond_to_json = tag_of cond_tags "condition"
let cond_of_json = of_tag cond_tags "condition"

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

let instr_to_json (i : Asm.instr) : Json.t =
  let l xs = Json.List xs in
  let s x = Json.Str x in
  let n x = Json.Int x in
  let r = reg_to_json in
  match i with
  | Pmov_ri (d, k) -> l [ s "mov_ri"; r d; n k ]
  | Pmov_rr (d, sr) -> l [ s "mov_rr"; r d; r sr ]
  | Plea_global (d, g) -> l [ s "lea_global"; r d; s g ]
  | Plea_stack (d, ofs) -> l [ s "lea_stack"; r d; n ofs ]
  | Pbinop_rr (op, d, sr) -> l [ s "binop_rr"; binop_to_json op; r d; r sr ]
  | Pbinop_ri (op, d, k) -> l [ s "binop_ri"; binop_to_json op; r d; n k ]
  | Pbinop3 (op, d, s1, s2) ->
    l [ s "binop3"; binop_to_json op; r d; r s1; r s2 ]
  | Punop_r (op, d) -> l [ s "unop_r"; unop_to_json op; r d ]
  | Pload (d, sr, ofs) -> l [ s "load"; r d; r sr; n ofs ]
  | Pstore (d, ofs, sr) -> l [ s "store"; r d; n ofs; r sr ]
  | Pload_stack (d, ofs) -> l [ s "load_stack"; r d; n ofs ]
  | Pstore_stack (ofs, sr) -> l [ s "store_stack"; n ofs; r sr ]
  | Pcmp_rr (a, b) -> l [ s "cmp_rr"; r a; r b ]
  | Pcmp_ri (a, k) -> l [ s "cmp_ri"; r a; n k ]
  | Pjcc (c, lbl) -> l [ s "jcc"; cond_to_json c; n lbl ]
  | Pjmp lbl -> l [ s "jmp"; n lbl ]
  | Plabel lbl -> l [ s "label"; n lbl ]
  | Pcall (f, ar, res) -> l [ s "call"; s f; n ar; Json.Bool res ]
  | Ptailjmp (f, ar) -> l [ s "tailjmp"; s f; n ar ]
  | Pret res -> l [ s "ret"; Json.Bool res ]
  | Plock_cmpxchg (a, sr) -> l [ s "lock_cmpxchg"; r a; r sr ]
  | Pmfence -> l [ s "mfence" ]

let instr_of_json (j : Json.t) : Asm.instr =
  let args = Json.to_list_exn j in
  let int = Json.to_int_exn and str = Json.to_str_exn in
  let bool = Json.to_bool_exn and r = reg_of_json in
  match args with
  | Json.Str tag :: rest -> (
    match (tag, rest) with
    | "mov_ri", [ d; k ] -> Pmov_ri (r d, int k)
    | "mov_rr", [ d; s ] -> Pmov_rr (r d, r s)
    | "lea_global", [ d; g ] -> Plea_global (r d, str g)
    | "lea_stack", [ d; ofs ] -> Plea_stack (r d, int ofs)
    | "binop_rr", [ op; d; s ] -> Pbinop_rr (binop_of_json op, r d, r s)
    | "binop_ri", [ op; d; k ] -> Pbinop_ri (binop_of_json op, r d, int k)
    | "binop3", [ op; d; s1; s2 ] ->
      Pbinop3 (binop_of_json op, r d, r s1, r s2)
    | "unop_r", [ op; d ] -> Punop_r (unop_of_json op, r d)
    | "load", [ d; s; ofs ] -> Pload (r d, r s, int ofs)
    | "store", [ d; ofs; s ] -> Pstore (r d, int ofs, r s)
    | "load_stack", [ d; ofs ] -> Pload_stack (r d, int ofs)
    | "store_stack", [ ofs; s ] -> Pstore_stack (int ofs, r s)
    | "cmp_rr", [ a; b ] -> Pcmp_rr (r a, r b)
    | "cmp_ri", [ a; k ] -> Pcmp_ri (r a, int k)
    | "jcc", [ c; l ] -> Pjcc (cond_of_json c, int l)
    | "jmp", [ l ] -> Pjmp (int l)
    | "label", [ l ] -> Plabel (int l)
    | "call", [ f; ar; res ] -> Pcall (str f, int ar, bool res)
    | "tailjmp", [ f; ar ] -> Ptailjmp (str f, int ar)
    | "ret", [ res ] -> Pret (bool res)
    | "lock_cmpxchg", [ a; s ] -> Plock_cmpxchg (r a, r s)
    | "mfence", [] -> Pmfence
    | _ -> fail "malformed instruction %S" tag)
  | _ -> fail "instruction must be a tagged array"

(* ------------------------------------------------------------------ *)
(* Functions and globals                                               *)
(* ------------------------------------------------------------------ *)

let func_to_json (f : Asm.func) : Json.t =
  Json.Obj
    [
      ("name", Json.Str f.fname);
      ("arity", Json.Int f.arity);
      ("frame", Json.Int f.framesize);
      ("object", Json.Bool f.is_object);
      ("code", Json.List (List.map instr_to_json f.code));
    ]

let func_of_json (j : Json.t) : Asm.func =
  {
    fname = Json.to_str_exn (Json.member "name" j);
    arity = Json.to_int_exn (Json.member "arity" j);
    framesize = Json.to_int_exn (Json.member "frame" j);
    is_object = Json.to_bool_exn (Json.member "object" j);
    code = List.map instr_of_json (Json.to_list_exn (Json.member "code" j));
  }

let init_to_json : Genv.init -> Json.t = function
  | Iint n -> Json.Int n
  | Iaddr s -> Json.Str s
  | Iundef -> Json.Null

let init_of_json : Json.t -> Genv.init = function
  | Json.Int n -> Iint n
  | Json.Str s -> Iaddr s
  | Json.Null -> Iundef
  | _ -> fail "malformed initializer"

let perm_to_json : Perm.t -> Json.t = function
  | Normal -> Json.Str "normal"
  | Object -> Json.Str "object"

let perm_of_json j : Perm.t =
  match Json.to_str_exn j with
  | "normal" -> Normal
  | "object" -> Object
  | s -> fail "unknown permission %S" s

let gvar_to_json (g : Genv.gvar) : Json.t =
  Json.Obj
    [
      ("name", Json.Str g.gname);
      ("size", Json.Int g.gsize);
      ("perm", perm_to_json g.gperm);
      ("init", Json.List (List.map init_to_json g.ginit));
    ]

let gvar_of_json (j : Json.t) : Genv.gvar =
  {
    gname = Json.to_str_exn (Json.member "name" j);
    gsize = Json.to_int_exn (Json.member "size" j);
    gperm = perm_of_json (Json.member "perm" j);
    ginit = List.map init_of_json (Json.to_list_exn (Json.member "init" j));
  }

(* ------------------------------------------------------------------ *)
(* Programs and compiler options                                       *)
(* ------------------------------------------------------------------ *)

let program_to_json (p : Asm.program) : Json.t =
  Json.Obj
    [
      ("funcs", Json.List (List.map func_to_json p.funcs));
      ("globals", Json.List (List.map gvar_to_json p.globals));
    ]

let program_of_json (j : Json.t) : Asm.program =
  {
    funcs = List.map func_of_json (Json.to_list_exn (Json.member "funcs" j));
    globals =
      List.map gvar_of_json (Json.to_list_exn (Json.member "globals" j));
  }

let options_to_json (o : Cas_compiler.Pass.options) : Json.t =
  Json.Obj [ ("optimize", Json.Bool o.optimize) ]

let options_of_json (j : Json.t) : Cas_compiler.Pass.options =
  { optimize = Json.to_bool_exn (Json.member "optimize" j) }
