(** The abstract module language tl = (Module, Core, InitCore, ↦) of
    Fig. 4, realized as a record of operations over an abstract [core]
    type.

    A local step [F ⊢ (κ, σ) -ι->_δ (κ', σ')] is modelled by [step]
    returning the *set* (list) of successors; nondeterminism is the list,
    so the paper's [det(tl)] becomes "every reachable core has at most one
    successor", a property [Cascompcert.Simulation] checks at runtime.
    An empty successor list on a core that has not returned means the
    module is stuck, which the global semantics treats as [abort]. *)

type 'core succ =
  | Next of Msg.t * Footprint.t * 'core * Memory.t
  | Stuck_abort  (** explicit abort, e.g. a failed [assert] in CImp *)

type ('code, 'core) t = {
  name : string;  (** language name, e.g. "Clight", "RTL", "x86" *)
  init_core :
    genv:Genv.t -> 'code -> entry:string -> args:Value.t list -> 'core option;
      (** InitCore: [None] if [entry] is not defined by this module. *)
  step : Flist.t -> 'core -> Memory.t -> 'core succ list;
  after_external : 'core -> Value.t option -> 'core option;
      (** resume a core waiting at a [Call] with the callee's return value *)
  fingerprint_core : 'core -> string;
      (** canonical encoding for state-space memoization *)
  hash_core : Hashx.t -> 'core -> unit;
      (** stream the same state into a hash accumulator, for the cheap
          fixed-width world keys; must refine [fingerprint_core]
          equality. Every IR has a dedicated streamer. *)
  hash_fundef : Hashx.t -> 'code -> string -> unit;
      (** stream the *definition* of one named function — its body,
          parameters and frame layout, nothing else — so a function's
          code is nameable by a 16-byte digest ([digest_fundef]).
          Streams nothing when the module does not define the name. *)
  pp_core : Format.formatter -> 'core -> unit;
  globals_of : 'code -> Genv.gvar list;
      (** the ge declared by a module of this language *)
  defs_of : 'code -> (string * int) list;
      (** the function symbols a module *defines*, with their arities —
          the export table of the module. [Load] uses it to reject
          duplicate definitions across modules, and the linker
          ([Cas_link]) to build symbol tables. *)
}

(** A module of the program: a language paired with code in it — the
    (tl, ge, π) triples of Fig. 4, with ge recoverable via [globals_of]. *)
type modu = Mod : ('code, 'core) t * 'code -> modu

(** A running core with its language, existentially packed so that threads
    in different languages live in one thread pool. *)
type xcore = XCore : ('code, 'core) t * 'core -> xcore

let xcore_fingerprint (XCore (l, c)) = l.name ^ "|" ^ l.fingerprint_core c
let pp_xcore ppf (XCore (l, c)) = Fmt.pf ppf "%s:%a" l.name l.pp_core c

(** Two-lane hash of a packed core, in [xcore_fingerprint]'s classes. *)
let xcore_hash (XCore (l, c)) =
  let st = Hashx.create () in
  Hashx.string st l.name;
  Hashx.char st '|';
  l.hash_core st c;
  Hashx.out st

(** 16-byte content digest of one function's definition in a packed
    module — the unit of certification for function-granular
    recertification. The language name is part of the stream, so the
    same body at two pipeline stages digests differently; absent
    functions digest to the bare [lang:name|] prefix, which no defined
    function can collide with (every definition streams at least its
    own name). *)
let digest_fundef (Mod (l, code)) (name : string) : string =
  let st = Hashx.create () in
  Hashx.string st l.name;
  Hashx.char st ':';
  Hashx.string st name;
  Hashx.char st '|';
  l.hash_fundef st code name;
  Hashx.key_of (Hashx.out st)

(* ------------------------------------------------------------------ *)
(* Paranoid hash audit (--paranoid-fp)                                 *)
(* ------------------------------------------------------------------ *)

(* Empirical collision audit for the dedicated [hash_core] streamers:
   under [Fpmode.paranoid], every core fed to [audit_core] is hashed
   *and* fingerprinted, and a 16-byte hash key observed with two
   distinct canonical fingerprints is recorded as a collision. The
   simulation checker audits every core it visits, so the sweep covers
   all ten IRs, not just the exploration-hot ones. *)

let audit_lock = Mutex.create ()
let audit_tbl : (string, string) Hashtbl.t = Hashtbl.create 4096
let audit_bad : (string * string) list ref = ref []

(* memory bound: past this many distinct keys, new keys are no longer
   remembered (already-seen keys keep being cross-checked) *)
let audit_cap = 200_000

let audit_reset () =
  Mutex.lock audit_lock;
  Hashtbl.reset audit_tbl;
  audit_bad := [];
  Mutex.unlock audit_lock

(** Collisions recorded since the last [audit_reset], as pairs of
    distinct canonical fingerprints that streamed to the same key. *)
let audit_collisions () =
  Mutex.lock audit_lock;
  let l = List.rev !audit_bad in
  Mutex.unlock audit_lock;
  l

let audit_core (type code core) (l : (code, core) t) (c : core) : unit =
  if Fpmode.paranoid () then begin
    let st = Hashx.create () in
    Hashx.string st l.name;
    Hashx.char st '|';
    l.hash_core st c;
    let key = Hashx.key_of (Hashx.out st) in
    let canon = l.name ^ "|" ^ l.fingerprint_core c in
    Mutex.lock audit_lock;
    (match Hashtbl.find_opt audit_tbl key with
    | Some canon' ->
      if not (String.equal canon canon') then
        audit_bad := (canon', canon) :: !audit_bad
    | None ->
      if Hashtbl.length audit_tbl < audit_cap then
        Hashtbl.add audit_tbl key canon);
    Mutex.unlock audit_lock
  end

(** A whole program P = let Π in f1 ∥ ... ∥ fn (Fig. 4). *)
type prog = { modules : modu list; entries : string list }

let prog modules entries = { modules; entries }

(** Link-time resolution: initialize a core for [entry] in the first module
    that defines it. *)
let resolve ~genv (modules : modu list) ~entry ~args : xcore option =
  List.find_map
    (fun (Mod (l, code)) ->
      match l.init_core ~genv code ~entry ~args with
      | Some c -> Some (XCore (l, c))
      | None -> None)
    modules

let link_genv (p : prog) =
  Genv.link (List.map (fun (Mod (l, code)) -> l.globals_of code) p.modules)

(** Function symbols defined by a packed module. *)
let defs (Mod (l, code)) = l.defs_of code

(** First function symbol defined by more than one module, if any. The
    Load rule rejects such programs: a cross-module call would silently
    resolve to whichever module happens to come first. *)
let duplicate_def (modules : modu list) : string option =
  let seen = Hashtbl.create 16 in
  List.find_map
    (fun m ->
      (* a module defining the same name twice is equally a duplicate,
         so walk the defs one by one rather than per-module sets *)
      List.find_map
        (fun (name, _) ->
          if Hashtbl.mem seen name then Some name
          else begin
            Hashtbl.add seen name ();
            None
          end)
        (defs m))
    modules
