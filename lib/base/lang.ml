(** The abstract module language tl = (Module, Core, InitCore, ↦) of
    Fig. 4, realized as a record of operations over an abstract [core]
    type.

    A local step [F ⊢ (κ, σ) -ι->_δ (κ', σ')] is modelled by [step]
    returning the *set* (list) of successors; nondeterminism is the list,
    so the paper's [det(tl)] becomes "every reachable core has at most one
    successor", a property [Cascompcert.Simulation] checks at runtime.
    An empty successor list on a core that has not returned means the
    module is stuck, which the global semantics treats as [abort]. *)

type 'core succ =
  | Next of Msg.t * Footprint.t * 'core * Memory.t
  | Stuck_abort  (** explicit abort, e.g. a failed [assert] in CImp *)

type ('code, 'core) t = {
  name : string;  (** language name, e.g. "Clight", "RTL", "x86" *)
  init_core :
    genv:Genv.t -> 'code -> entry:string -> args:Value.t list -> 'core option;
      (** InitCore: [None] if [entry] is not defined by this module. *)
  step : Flist.t -> 'core -> Memory.t -> 'core succ list;
  after_external : 'core -> Value.t option -> 'core option;
      (** resume a core waiting at a [Call] with the callee's return value *)
  fingerprint_core : 'core -> string;
      (** canonical encoding for state-space memoization *)
  hash_core : Hashx.t -> 'core -> unit;
      (** stream the same state into a hash accumulator, for the cheap
          fixed-width world keys; must refine [fingerprint_core] equality.
          Languages off the exploration hot path use
          [hash_core_of_fingerprint]. *)
  pp_core : Format.formatter -> 'core -> unit;
  globals_of : 'code -> Genv.gvar list;
      (** the ge declared by a module of this language *)
  defs_of : 'code -> (string * int) list;
      (** the function symbols a module *defines*, with their arities —
          the export table of the module. [Load] uses it to reject
          duplicate definitions across modules, and the linker
          ([Cas_link]) to build symbol tables. *)
}

(** A module of the program: a language paired with code in it — the
    (tl, ge, π) triples of Fig. 4, with ge recoverable via [globals_of]. *)
type modu = Mod : ('code, 'core) t * 'code -> modu

(** A running core with its language, existentially packed so that threads
    in different languages live in one thread pool. *)
type xcore = XCore : ('code, 'core) t * 'core -> xcore

let xcore_fingerprint (XCore (l, c)) = l.name ^ "|" ^ l.fingerprint_core c
let pp_xcore ppf (XCore (l, c)) = Fmt.pf ppf "%s:%a" l.name l.pp_core c

(** Default [hash_core]: hash the canonical fingerprint string. Correct
    for every language; the hot ones (CImp, Clight, x86) stream their
    state directly instead, skipping the string build. *)
let hash_core_of_fingerprint fingerprint_core st c =
  Hashx.string st (fingerprint_core c)

(** Two-lane hash of a packed core, in [xcore_fingerprint]'s classes. *)
let xcore_hash (XCore (l, c)) =
  let st = Hashx.create () in
  Hashx.string st l.name;
  Hashx.char st '|';
  l.hash_core st c;
  Hashx.out st

(** A whole program P = let Π in f1 ∥ ... ∥ fn (Fig. 4). *)
type prog = { modules : modu list; entries : string list }

let prog modules entries = { modules; entries }

(** Link-time resolution: initialize a core for [entry] in the first module
    that defines it. *)
let resolve ~genv (modules : modu list) ~entry ~args : xcore option =
  List.find_map
    (fun (Mod (l, code)) ->
      match l.init_core ~genv code ~entry ~args with
      | Some c -> Some (XCore (l, c))
      | None -> None)
    modules

let link_genv (p : prog) =
  Genv.link (List.map (fun (Mod (l, code)) -> l.globals_of code) p.modules)

(** Function symbols defined by a packed module. *)
let defs (Mod (l, code)) = l.defs_of code

(** First function symbol defined by more than one module, if any. The
    Load rule rejects such programs: a cross-module call would silently
    resolve to whichever module happens to come first. *)
let duplicate_def (modules : modu list) : string option =
  let seen = Hashtbl.create 16 in
  List.find_map
    (fun m ->
      (* a module defining the same name twice is equally a duplicate,
         so walk the defs one by one rather than per-module sets *)
      List.find_map
        (fun (name, _) ->
          if Hashtbl.mem seen name then Some name
          else begin
            Hashtbl.add seen name ();
            None
          end)
        (defs m))
    modules
