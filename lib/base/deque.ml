(** Chase–Lev work-stealing deque (Chase & Lev, SPAA'05; memory ordering
    after Lê et al., PPoPP'13), the substrate of the model checker's
    work-stealing frontier ([Cas_mc.Frontier]).

    One domain — the *owner* — pushes and pops at the bottom (LIFO, so
    its own exploration stays depth-first and cache-warm); any other
    domain may [steal] from the top (FIFO, so thieves take the *oldest*
    task — in the DPOR frontier that is the branch closest to the root,
    i.e. the largest stealable subtree).

    Correctness hinges on two orderings, both sequentially consistent
    here because every shared location is an [Atomic]:

    - [pop] publishes the decremented [bottom] *before* reading [top]
      (the owner claims the slot before checking for thieves);
    - [steal] reads [top] *before* [bottom] (a thief that observes a
      fresh [top] must also observe any older [bottom] decrement, so it
      cannot claim a slot the owner already took).

    The last-element race is arbitrated by a CAS on [top]; [top] is
    monotonically increasing, so the CAS is ABA-free. Slots are
    per-index [Atomic]s, so a thief racing a wrap-around overwrite reads
    a well-defined value — and its CAS then fails, discarding it. The
    buffer grows by doubling; thieves still holding the old buffer read
    slots whose values were copied, and the CAS on [top] arbitrates as
    before.

    Verified in [test/test_base.ml] against a locked-deque oracle, both
    sequentially (qcheck op sequences) and under multi-domain
    hammering (no task lost, none duplicated). *)

type 'a t = {
  top : int Atomic.t;  (** next index to steal; only ever incremented *)
  bottom : int Atomic.t;  (** next index to push; owner-written *)
  buf : 'a option Atomic.t array Atomic.t;  (** circular, power-of-2 *)
}

let create ?(capacity = 64) () =
  let cap = max 2 capacity in
  (* round up to a power of two so [land] masks the index *)
  let cap =
    let c = ref 2 in
    while !c < cap do
      c := !c * 2
    done;
    !c
  in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.init cap (fun _ -> Atomic.make None));
  }

let slot buf i = buf.(i land (Array.length buf - 1))

(* Owner-only: double the buffer, copying the live range [t, b). Thieves
   concurrently reading the old buffer see the same values (the copy
   does not clear them); uniqueness is arbitrated by the CAS on [top]. *)
let grow d t b old =
  let fresh = Array.init (2 * Array.length old) (fun _ -> Atomic.make None) in
  for i = t to b - 1 do
    Atomic.set (slot fresh i) (Atomic.get (slot old i))
  done;
  Atomic.set d.buf fresh;
  fresh

(** Owner: push [v] at the bottom. *)
let push d v =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  let buf = Atomic.get d.buf in
  let buf = if b - t >= Array.length buf then grow d t b buf else buf in
  Atomic.set (slot buf b) (Some v);
  Atomic.set d.bottom (b + 1)

(** Owner: pop the most recently pushed element, if any. *)
let pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* empty: canonicalize so [bottom = top] *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let buf = Atomic.get d.buf in
    if b > t then begin
      (* more than one element: thieves cannot reach index [b] *)
      let v = Atomic.get (slot buf b) in
      Atomic.set (slot buf b) None;
      v
    end
    else begin
      (* last element: race thieves for it via [top] *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then begin
        let v = Atomic.get (slot buf b) in
        Atomic.set (slot buf b) None;
        v
      end
      else None
    end
  end

(** Thief: steal the *oldest* element, if any. Returns [None] both when
    the deque looks empty and when the CAS race is lost — callers
    retry or move to the next victim either way. *)
let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get d.buf in
    let v = Atomic.get (slot buf t) in
    if Atomic.compare_and_set d.top t (t + 1) then v else None
  end

(** Approximate size (exact when quiescent). *)
let size d = max 0 (Atomic.get d.bottom - Atomic.get d.top)
