(** Domain pool: a pool of OCaml 5 domains draining a shared task counter
    over an array of independent tasks. Shared by the model-checking
    frontier ([Cas_mc.Frontier]) and the compiler's parallel per-module
    builds ([Cas_compiler.Driver.compile_all]).

    [jobs = 1] is the deterministic fallback: tasks run sequentially, in
    order, on the calling domain — no domain is spawned and results are
    bit-for-bit reproducible. With [jobs > 1] tasks are claimed with an
    atomic fetch-and-add (a degenerate work-stealing deque: one shared
    bottom), which is ample at the tens-of-tasks granularity the callers
    produce (DPOR subtree roots, BFS frontier chunks, compilation units). *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(** Run every task, returning results in task order. *)
let run ~jobs (tasks : (unit -> 'a) list) : 'a list =
  let jobs = max 1 jobs in
  if jobs = 1 then List.map (fun f -> f ()) tasks
  else begin
    let arr = Array.of_list tasks in
    let n = Array.length arr in
    let results : 'a option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (arr.(i) ());
          loop ()
        end
      in
      loop ()
    in
    let helpers = min (jobs - 1) (max 0 (n - 1)) in
    let doms = List.init helpers (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join doms;
    Array.to_list results |> List.filter_map Fun.id
  end

(** Split a list into at most [n] contiguous chunks of near-equal size
    (for level-synchronous sharded BFS). *)
let split n l =
  let len = List.length l in
  if len = 0 then []
  else begin
    let n = max 1 (min n len) in
    let size = (len + n - 1) / n in
    let rec go acc cur k = function
      | [] -> List.rev (List.rev cur :: acc)
      | x :: rest ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
    in
    go [] [] 0 l
  end
