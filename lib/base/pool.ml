(** Domain pool: a pool of OCaml 5 domains draining a shared task counter
    over an array of independent tasks. Shared by the model-checking
    frontier ([Cas_mc.Frontier]) and the compiler's parallel per-module
    builds ([Cas_compiler.Driver.compile_all]).

    [jobs = 1] is the deterministic fallback: tasks run sequentially, in
    order, on the calling domain — no domain is spawned and results are
    bit-for-bit reproducible. With [jobs > 1] tasks are claimed with an
    atomic fetch-and-add (a degenerate work-stealing deque: one shared
    bottom), which is ample at the tens-of-tasks granularity the callers
    produce (DPOR subtree roots, BFS frontier chunks, compilation units). *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(** Run every task, returning results in task order. *)
let run ~jobs (tasks : (unit -> 'a) list) : 'a list =
  let jobs = max 1 jobs in
  if jobs = 1 then List.map (fun f -> f ()) tasks
  else begin
    let arr = Array.of_list tasks in
    let n = Array.length arr in
    let results : 'a option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (arr.(i) ());
          loop ()
        end
      in
      loop ()
    in
    let helpers = min (jobs - 1) (max 0 (n - 1)) in
    let doms = List.init helpers (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join doms;
    Array.to_list results |> List.filter_map Fun.id
  end

(** A persistent worker pool for long-running servers: [jobs] domains
    spawned once at [create] drain a shared FIFO of thunks until
    [drain]ed. Unlike [run] above (batch: spawn, run a known task array,
    join), a persistent pool accepts submissions over its whole lifetime
    and must therefore answer the question [run] never faces: what
    happens to a submission after teardown has begun? Here the contract
    is explicit — [submit] returns [Error `Draining] from the moment
    [drain] is called, while every job accepted before that moment is
    guaranteed to execute before [drain] returns. That rejection path is
    what the certification daemon's admission control builds on. *)
module Persistent = struct
  type state = Running | Draining | Stopped

  type t = {
    lock : Mutex.t;
    nonempty : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable state : state;
    mutable busy : int;  (** workers currently executing a job *)
    n_workers : int;
    mutable doms : unit Domain.t list;
    executed : int Atomic.t;
    failed : int Atomic.t;  (** jobs that raised (exceptions swallowed) *)
  }

  let worker (t : t) () =
    let rec loop () =
      Mutex.lock t.lock;
      while Queue.is_empty t.queue && t.state = Running do
        Condition.wait t.nonempty t.lock
      done;
      if Queue.is_empty t.queue then
        (* draining and nothing left: this worker is done *)
        Mutex.unlock t.lock
      else begin
        let job = Queue.pop t.queue in
        t.busy <- t.busy + 1;
        Mutex.unlock t.lock;
        (try job ()
         with _ -> Atomic.incr t.failed);
        Atomic.incr t.executed;
        Mutex.lock t.lock;
        t.busy <- t.busy - 1;
        Mutex.unlock t.lock;
        loop ()
      end
    in
    loop ()

  let create ~jobs () : t =
    let jobs = max 1 jobs in
    let t =
      {
        lock = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        state = Running;
        busy = 0;
        n_workers = jobs;
        doms = [];
        executed = Atomic.make 0;
        failed = Atomic.make 0;
      }
    in
    t.doms <- List.init jobs (fun _ -> Domain.spawn (worker t));
    t

  (** Enqueue [job] for execution on some worker domain. Refused (and
      never run) once [drain] has started. *)
  let submit (t : t) (job : unit -> unit) : (unit, [ `Draining ]) result =
    Mutex.lock t.lock;
    if t.state <> Running then begin
      Mutex.unlock t.lock;
      Error `Draining
    end
    else begin
      Queue.push job t.queue;
      Condition.signal t.nonempty;
      Mutex.unlock t.lock;
      Ok ()
    end

  (** Jobs accepted but not yet started. *)
  let queued (t : t) : int =
    Mutex.lock t.lock;
    let n = Queue.length t.queue in
    Mutex.unlock t.lock;
    n

  (** Workers currently executing a job. *)
  let busy (t : t) : int =
    Mutex.lock t.lock;
    let n = t.busy in
    Mutex.unlock t.lock;
    n

  let workers (t : t) : int = t.n_workers
  let executed (t : t) : int = Atomic.get t.executed
  let failed (t : t) : int = Atomic.get t.failed

  (** Graceful shutdown: refuse new submissions, finish every queued
      job, join the worker domains. Idempotent; returns only once every
      accepted job has run. *)
  let drain (t : t) : unit =
    Mutex.lock t.lock;
    let first = t.state = Running in
    if first then t.state <- Draining;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    if first then begin
      List.iter Domain.join t.doms;
      Mutex.lock t.lock;
      t.doms <- [];
      t.state <- Stopped;
      Mutex.unlock t.lock
    end
    else
      (* a concurrent drain already owns the join: wait it out *)
      let rec wait () =
        Mutex.lock t.lock;
        let done_ = t.state = Stopped in
        Mutex.unlock t.lock;
        if not done_ then begin
          Domain.cpu_relax ();
          wait ()
        end
      in
      wait ()
end

(** Split a list into at most [n] contiguous chunks of near-equal size
    (for level-synchronous sharded BFS). *)
let split n l =
  let len = List.length l in
  if len = 0 then []
  else begin
    let n = max 1 (min n len) in
    let size = (len + n - 1) / n in
    let rec go acc cur k = function
      | [] -> List.rev (List.rev cur :: acc)
      | x :: rest ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
    in
    go [] [] 0 l
  end
