(** Global fingerprint mode for the exploration engines.

    By default world keys are the cheap fixed-width hashes of [Hashx];
    paranoid mode (the [--paranoid-fp] CLI flag) switches every engine
    back to the full canonical fingerprint strings, which are
    collision-free by construction. Diffing the distinct-world counts of
    the two modes on a workload bounds the hash-collision risk
    empirically; witnesses always digest the string path regardless of
    this flag, so recorded witnesses replay identically in either mode. *)

let flag = Atomic.make false
let set_paranoid b = Atomic.set flag b
let paranoid () = Atomic.get flag
