(** Two-lane 63-bit hashing for the exploration hot path.

    World keys, memory hashes and core hashes all flow through this
    module. Each hash is a pair of independent 63-bit lanes, packed into
    a fixed 16-byte string by [key_of], so the seen-set ([Cas_mc.Store])
    and the DPOR path sets compare short binary keys instead of
    O(state)-sized canonical strings. The lanes are FNV-1a style with
    distinct primes and offset bases; [fin1]/[fin2] are splitmix-style
    finalizers used by the non-streaming combiners in [Memory].

    Collision posture: the effective strength is that of a single good
    63-bit hash (the lanes share their input stream), i.e. a birthday
    bound of ~2^-63 per state pair — negligible at the 10^5..10^6 states
    this repo explores, and checkable at any time by re-running with the
    full canonical strings via [Fpmode.set_paranoid]. *)

(* all constants fit OCaml's 63-bit native int *)
let prime1 = 0x100000001B3 (* FNV-64 prime *)
let prime2 = 0x1000193 (* FNV-32 prime *)
let basis1 = 0x3BF29CE484222325
let basis2 = 0x1B03738712FAD5C9

(** Splitmix-style finalizers: avalanche a 63-bit int. *)
let fin1 x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x1B03738712FAD5C9 in
  x lxor (x lsr 31)

let fin2 x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x3C79AC492BA7B653 in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1C69B3F74AC4AE35 in
  x lxor (x lsr 32)

(** Non-streaming combiners for the incremental memory hash: mix a
    cell/block coordinate with a content hash, per lane. XOR-folding the
    results makes the container hash order-independent and incrementally
    updatable (remove the old term, add the new one). *)
let mix2_1 a b = fin1 (((a * prime1) lxor b) + 0x1E3779B97F4A7C15)
let mix2_2 a b = fin2 (((a * prime2) lxor b) + 0x1851F42D4C957F2D)
let mix3_1 a b c = fin1 ((((a * prime1) lxor b) * prime1) lxor c)
let mix3_2 a b c = fin2 ((((a * prime2) lxor b) * prime2) lxor c)

(** Streaming accumulator. Feed it the same tokens a canonical printer
    would emit; two states hash equal iff their token streams match
    (up to 63-bit collisions). *)
type t = { mutable h1 : int; mutable h2 : int }

let create () = { h1 = basis1; h2 = basis2 }

let int st n =
  st.h1 <- (st.h1 lxor n) * prime1;
  st.h2 <- (st.h2 lxor n) * prime2

let char st c = int st (Char.code c)

let string st s =
  for i = 0 to String.length s - 1 do
    int st (Char.code (String.unsafe_get s i))
  done

let bool st b = int st (if b then 1 else 0)

(** Finalized lane pair. *)
let out st = (fin1 st.h1, fin2 st.h2)

(** Pack a lane pair into a fixed 16-byte binary key. *)
let key_of (h1, h2) =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int h1);
  Bytes.set_int64_le b 8 (Int64.of_int h2);
  Bytes.unsafe_to_string b
