(** Memory addresses, CompCert-style: a block identifier paired with an
    integer offset within the block (paper §3.1, footnote 2). *)

type t = { block : int; ofs : int }

let make block ofs = { block; ofs }

let compare a b =
  let c = Int.compare a.block b.block in
  if c <> 0 then c else Int.compare a.ofs b.ofs

let equal a b = a.block = b.block && a.ofs = b.ofs
let hash a = (a.block * 65599) + a.ofs
let pp ppf a = Fmt.pf ppf "%d.%d" a.block a.ofs
let to_string a = Fmt.str "%a" pp a

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Set.Make (Ord)

  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp) (elements s)

  let of_seq_list l = of_list l
end

module Map = Map.Make (Ord)
module IntMap = Stdlib.Map.Make (Int)

(** Global address interner: a bijection between addresses and dense ids,
    so footprints can be word-level bitsets ([Footprint]). The state is an
    immutable snapshot behind an [Atomic]: reads are lock-free, inserts
    CAS-retry, so the parallel DPOR domains can intern concurrently. Ids
    are assigned in first-interning order — stable within a run (which is
    all bitset comparisons need) but not across runs; anything exported
    (witnesses, pretty-printing) goes through the address view, never
    through raw ids. *)
module Interner = struct
  type state = { next : int; fwd : int Map.t; bwd : t IntMap.t }

  let state = Atomic.make { next = 0; fwd = Map.empty; bwd = IntMap.empty }

  let rec id (a : t) =
    let s = Atomic.get state in
    match Map.find_opt a s.fwd with
    | Some i -> i
    | None ->
      let s' =
        {
          next = s.next + 1;
          fwd = Map.add a s.next s.fwd;
          bwd = IntMap.add s.next a s.bwd;
        }
      in
      if Atomic.compare_and_set state s s' then s.next else id a

  let find_id (a : t) = Map.find_opt a (Atomic.get state).fwd

  let addr i =
    match IntMap.find_opt i (Atomic.get state).bwd with
    | Some a -> a
    | None -> invalid_arg (Fmt.str "Addr.Interner.addr: unknown id %d" i)

  let size () = (Atomic.get state).next
end
