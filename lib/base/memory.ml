(** The global memory state σ: a finite partial map from addresses to
    values (Fig. 4), organized CompCert-style as a finite map from block
    identifiers to fixed-size arrays of abstract values. Cells are
    word-indexed; we do not model byte splitting (documented simplification
    in DESIGN.md).

    Each block carries a permission tag implementing the client/object
    partition of §7.1.

    The memory maintains an incremental two-lane hash ([hash]) mirroring
    exactly the equivalence classes of the canonical [fingerprint] string:
    each block contributes [mix(block, size, bh)] where [bh] XOR-folds the
    non-[Vundef] cells, and the world hash XOR-folds the blocks. [store]
    and [alloc_block] maintain it in O(1) on top of the map update, which
    is what lets [Cas_conc.World] and [Cas_tso.Tso] produce fixed-width
    state keys without rebuilding an O(state) string per step. Like the
    fingerprint, the hash ignores permissions and treats a cell bound to
    [Vundef] as absent. *)

module IntMap = Map.Make (Int)

type block_info = {
  size : int;  (** number of word cells, offsets 0..size-1 *)
  data : Value.t IntMap.t;  (** missing offsets read as [Vundef] *)
  perm : Perm.t;
  bh1 : int;  (** XOR of [Hashx.mix2_1 ofs (Value.hash v)] over cells *)
  bh2 : int;
}

type t = {
  blocks : block_info IntMap.t;
  h1 : int;  (** XOR of [Hashx.mix3_1 b size bh1] over blocks *)
  h2 : int;
}

type fault =
  | Unmapped of Addr.t
  | Out_of_bounds of Addr.t
  | Perm_mismatch of Addr.t * Perm.t

let pp_fault ppf = function
  | Unmapped a -> Fmt.pf ppf "unmapped %a" Addr.pp a
  | Out_of_bounds a -> Fmt.pf ppf "out-of-bounds %a" Addr.pp a
  | Perm_mismatch (a, p) ->
    Fmt.pf ppf "permission mismatch at %a (block is %a)" Addr.pp a Perm.pp p

let empty = { blocks = IntMap.empty; h1 = 0; h2 = 0 }

let block_defined m b = IntMap.mem b m.blocks

(** A cell's term in its block's XOR-fold; [Vundef] contributes nothing,
    matching its absence from the fingerprint. *)
let cell_term1 ofs v = if v = Value.Vundef then 0 else Hashx.mix2_1 ofs (Value.hash v)
let cell_term2 ofs v = if v = Value.Vundef then 0 else Hashx.mix2_2 ofs (Value.hash v)

(** A block's term in the memory's XOR-fold. Permissions are excluded, as
    they are from the fingerprint. *)
let block_term1 b bi = Hashx.mix3_1 b bi.size bi.bh1
let block_term2 b bi = Hashx.mix3_2 b bi.size bi.bh2

let hash m = (m.h1, m.h2)

(** Allocate block [b] with [size] cells; fails if already defined. Used
    both for globals at load time and for stack allocation. *)
let alloc_block m ~block ~size ~perm =
  if block_defined m block then
    invalid_arg (Fmt.str "Memory.alloc_block: block %d already allocated" block)
  else
    let bi = { size; data = IntMap.empty; perm; bh1 = 0; bh2 = 0 } in
    {
      blocks = IntMap.add block bi m.blocks;
      h1 = m.h1 lxor block_term1 block bi;
      h2 = m.h2 lxor block_term2 block bi;
    }

(** Least block of freelist [f] not yet in the memory domain. Because
    memory domains only grow ([forward]), this is deterministic and
    collision-free across the frames of one thread. *)
let fresh_block m f =
  let rec go i =
    let b = Flist.nth f i in
    if block_defined m b then go (i + 1) else b
  in
  go 0

(** Allocate a fresh block from freelist [f]. Returns the new memory, the
    block id, and the allocation footprint (the fresh cells appear in the
    write set, as required by LEffect item (2) of Def. 1). *)
let alloc m f ~size ~perm =
  let b = fresh_block m f in
  let m' = alloc_block m ~block:b ~size ~perm in
  let ws = List.init size (fun i -> Addr.make b i) in
  (m', b, Footprint.writes ws)

let load ?(perm = Perm.Normal) m (a : Addr.t) =
  match IntMap.find_opt a.block m.blocks with
  | None -> Error (Unmapped a)
  | Some bi ->
    if a.ofs < 0 || a.ofs >= bi.size then Error (Out_of_bounds a)
    else if not (Perm.equal bi.perm perm) then Error (Perm_mismatch (a, bi.perm))
    else Ok (Option.value ~default:Value.Vundef (IntMap.find_opt a.ofs bi.data))

let store ?(perm = Perm.Normal) m (a : Addr.t) v =
  match IntMap.find_opt a.block m.blocks with
  | None -> Error (Unmapped a)
  | Some bi ->
    if a.ofs < 0 || a.ofs >= bi.size then Error (Out_of_bounds a)
    else if not (Perm.equal bi.perm perm) then Error (Perm_mismatch (a, bi.perm))
    else
      let old = Option.value ~default:Value.Vundef (IntMap.find_opt a.ofs bi.data) in
      let bi' =
        {
          bi with
          data = IntMap.add a.ofs v bi.data;
          bh1 = bi.bh1 lxor cell_term1 a.ofs old lxor cell_term1 a.ofs v;
          bh2 = bi.bh2 lxor cell_term2 a.ofs old lxor cell_term2 a.ofs v;
        }
      in
      Ok
        {
          blocks = IntMap.add a.block bi' m.blocks;
          h1 = m.h1 lxor block_term1 a.block bi lxor block_term1 a.block bi';
          h2 = m.h2 lxor block_term2 a.block bi lxor block_term2 a.block bi';
        }

(** Load ignoring permissions; used by meta-level checkers only, never by
    language semantics. *)
let peek m (a : Addr.t) =
  match IntMap.find_opt a.block m.blocks with
  | None -> None
  | Some bi ->
    if a.ofs < 0 || a.ofs >= bi.size then None
    else Some (Option.value ~default:Value.Vundef (IntMap.find_opt a.ofs bi.data))

let perm_of_block m b =
  Option.map (fun bi -> bi.perm) (IntMap.find_opt b m.blocks)

let block_size m b = Option.map (fun bi -> bi.size) (IntMap.find_opt b m.blocks)

(** dom(σ) as an address set (finite: blocks × sizes). *)
let dom m =
  IntMap.fold
    (fun b bi acc ->
      let rec add ofs acc =
        if ofs >= bi.size then acc else add (ofs + 1) (Addr.Set.add (Addr.make b ofs) acc)
      in
      add 0 acc)
    m.blocks Addr.Set.empty

let dom_blocks m = IntMap.fold (fun b _ acc -> b :: acc) m.blocks [] |> List.rev

(** σ₁ =S= σ₂ (Fig. 6): agree on every address of [s] — either undefined in
    both or defined in both with equal contents. *)
let eq_on s m1 m2 =
  Addr.Set.for_all
    (fun a ->
      match (peek m1 a, peek m2 a) with
      | None, None -> true
      | Some v1, Some v2 -> Value.equal v1 v2
      | _ -> false)
    s

(** forward(σ, σ'): the domain only grows (Def. 1 item 1). *)
let forward m m' =
  IntMap.for_all
    (fun b bi ->
      match IntMap.find_opt b m'.blocks with
      | Some bi' -> bi'.size >= bi.size
      | None -> false)
    m.blocks

(** LEffect(σ, σ', δ, F) (Fig. 6): cells outside δ.ws are unchanged, and
    newly-allocated cells lie in δ.ws ∩ F.

    Checked per step of every per-pass simulation, so the unchanged-scan
    is restricted to blocks whose [block_info] actually differs between
    [m] and [m'] (one [store] rebuilds exactly one block record; untouched
    blocks stay physically shared and are skipped by the [==] test)
    instead of materializing [dom m] every time. *)
let leffect m m' (d : Footprint.t) f =
  let cell bi ofs = Option.value ~default:Value.Vundef (IntMap.find_opt ofs bi.data) in
  let unchanged_outside_ws =
    IntMap.for_all
      (fun b bi ->
        match IntMap.find_opt b m'.blocks with
        | Some bi' when bi == bi' -> true
        | Some bi' ->
          let rec go ofs =
            ofs >= bi.size
            || (Footprint.mem_ws d (Addr.make b ofs)
               || (ofs < bi'.size && Value.equal (cell bi ofs) (cell bi' ofs)))
               && go (ofs + 1)
          in
          go 0
        | None ->
          (* whole block vanished: tolerable only where ws covers it *)
          let rec go ofs =
            ofs >= bi.size
            || (Footprint.mem_ws d (Addr.make b ofs) && go (ofs + 1))
          in
          go 0)
      m.blocks
  in
  let new_cells_ok =
    IntMap.for_all
      (fun b bi' ->
        let base =
          match IntMap.find_opt b m.blocks with
          | Some bi when bi == bi' -> bi'.size (* nothing new *)
          | Some bi -> bi.size
          | None -> 0
        in
        let rec go ofs =
          ofs >= bi'.size
          || (let a = Addr.make b ofs in
              Footprint.mem_ws d a && Flist.owns_addr f a && go (ofs + 1))
        in
        go base)
      m'.blocks
  in
  unchanged_outside_ws && new_cells_ok

(** closed(S, σ) (Fig. 7): pointers stored at addresses in S point into S. *)
let closed_on s m =
  Addr.Set.for_all
    (fun a ->
      match peek m a with
      | Some (Value.Vptr p) -> Addr.Set.mem p s
      | _ -> true)
    s

let closed m = closed_on (dom m) m

(** Canonical fingerprint for state-space memoization: the collision-free
    string path, used by witness digests and paranoid mode. *)
let fingerprint m =
  let buf = Buffer.create 256 in
  IntMap.iter
    (fun b bi ->
      Buffer.add_string buf (string_of_int b);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int bi.size);
      Buffer.add_char buf '[';
      IntMap.iter
        (fun ofs v ->
          match v with
          | Value.Vundef -> ()
          | v ->
            Buffer.add_string buf (string_of_int ofs);
            Buffer.add_char buf '=';
            Buffer.add_string buf (Value.to_string v);
            Buffer.add_char buf ';')
        bi.data;
      Buffer.add_char buf ']')
    m.blocks;
  Buffer.contents buf

(** Structural equality in the fingerprint's equivalence classes: same
    blocks and sizes, same cell contents with an explicit [Vundef] binding
    equal to an absent one, permissions ignored. The incremental hash
    serves as a fast negative. *)
let equal m1 m2 =
  m1 == m2
  || m1.h1 = m2.h1
     && m1.h2 = m2.h2
     &&
     let data_sub d1 d2 =
       IntMap.for_all
         (fun ofs v ->
           Value.equal v Value.Vundef
           ||
           match IntMap.find_opt ofs d2 with
           | Some v' -> Value.equal v v'
           | None -> false)
         d1
     in
     IntMap.equal
       (fun bi1 bi2 ->
         bi1 == bi2
         || bi1.size = bi2.size
            && data_sub bi1.data bi2.data
            && data_sub bi2.data bi1.data)
       m1.blocks m2.blocks

let pp ppf m =
  IntMap.iter
    (fun b bi ->
      Fmt.pf ppf "@[block %d (%a, %d cells):" b Perm.pp bi.perm bi.size;
      IntMap.iter (fun ofs v -> Fmt.pf ppf " [%d]=%a" ofs Value.pp v) bi.data;
      Fmt.pf ppf "@]@.")
    m.blocks
