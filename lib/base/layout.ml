(** Memory layout conversion (§7.2, "Converting memory layout").

    CompCert's memory model numbers allocations consecutively with a
    single [nextblock]; our concurrent model reserves a strided freelist
    per thread so that threads' allocations commute. The paper bridges
    the two with a bijection between memories under the two models, which
    lets CASCompCert reuse CompCert's libraries and proofs unchanged.

    This module constructs that bijection for a single thread's view —
    global blocks map to themselves, the thread's freelist blocks map, in
    order, to the consecutive numbers that CompCert would have assigned —
    and converts memories and values across it. The test-suite validates
    the semantic-equivalence properties the paper proves: loads, stores
    and allocations commute with the conversion. *)

module IntMap = Map.Make (Int)

type t = {
  fwd : int IntMap.t;  (** our block -> CompCert block *)
  bwd : int IntMap.t;
  globals : int;
  flist : Flist.t;
}

(** Bijection for one thread: globals are fixed, and the [i]-th block of
    the thread's freelist corresponds to CompCert block [globals + i].
    [depth] bounds how many freelist blocks are mapped (extend on
    demand). *)
let build ~globals (fl : Flist.t) ~depth : t =
  let fwd = ref IntMap.empty and bwd = ref IntMap.empty in
  for b = 0 to globals - 1 do
    fwd := IntMap.add b b !fwd;
    bwd := IntMap.add b b !bwd
  done;
  for i = 0 to depth - 1 do
    let ours = Flist.nth fl i in
    let theirs = globals + i in
    fwd := IntMap.add ours theirs !fwd;
    bwd := IntMap.add theirs ours !bwd
  done;
  { fwd = !fwd; bwd = !bwd; globals; flist = fl }

let to_compcert_block t b = IntMap.find_opt b t.fwd
let of_compcert_block t b = IntMap.find_opt b t.bwd

let map_addr dir (a : Addr.t) : Addr.t option =
  Option.map (fun b -> Addr.make b a.Addr.ofs) (dir a.Addr.block)

let map_value dir (v : Value.t) : Value.t option =
  match v with
  | Value.Vundef | Value.Vint _ -> Some v
  | Value.Vptr a -> Option.map (fun a -> Value.Vptr a) (map_addr dir a)

(** Convert a memory across the bijection; blocks outside the bijection
    (other threads' allocations) are dropped — the conversion expresses a
    *thread-local* view, exactly the setting in which CompCert proofs are
    reused. *)
let convert_mem dir (m : Memory.t) : Memory.t =
  List.fold_left
    (fun acc b ->
      match dir b with
      | None -> acc
      | Some b' ->
        let size = Option.value ~default:0 (Memory.block_size m b) in
        let perm =
          Option.value ~default:Perm.Normal (Memory.perm_of_block m b)
        in
        let acc = Memory.alloc_block acc ~block:b' ~size ~perm in
        let rec copy acc ofs =
          if ofs >= size then acc
          else
            let acc =
              match Memory.peek m (Addr.make b ofs) with
              | Some v when not (Value.equal v Value.Vundef) -> (
                let v' =
                  Option.value ~default:Value.Vundef (map_value dir v)
                in
                match Memory.store ~perm acc (Addr.make b' ofs) v' with
                | Ok acc -> acc
                | Error _ -> acc)
              | _ -> acc
            in
            copy acc (ofs + 1)
        in
        copy acc 0)
    Memory.empty (Memory.dom_blocks m)

let to_compcert t m = convert_mem (to_compcert_block t) m
let of_compcert t m = convert_mem (of_compcert_block t) m

(** The footprint image under the bijection, for checking that footprints
    convert consistently too. *)
let convert_fp dir (fp : Footprint.t) : Footprint.t =
  let conv s =
    Addr.Set.fold
      (fun a acc ->
        match map_addr dir a with
        | Some a' -> Addr.Set.add a' acc
        | None -> acc)
      s Addr.Set.empty
  in
  Footprint.make
    ~rs:(conv (Footprint.rs_set fp))
    ~ws:(conv (Footprint.ws_set fp))

(** In the CompCert view, allocation takes the next consecutive block;
    check that converting our freelist allocation yields exactly it. This
    is the per-operation commutation the equivalence proof rests on. *)
let alloc_commutes t (m : Memory.t) ~size : bool =
  let m_ours, b_ours, _ = Memory.alloc m t.flist ~size ~perm:Perm.Normal in
  let cc = to_compcert t m in
  (* CompCert nextblock = number of blocks in the converted view *)
  let nextblock =
    List.fold_left (fun acc b -> max acc (b + 1)) 0 (Memory.dom_blocks cc)
  in
  match to_compcert_block t b_ours with
  | None -> false
  | Some b_cc ->
    b_cc = nextblock
    && Memory.equal (to_compcert t m_ours)
         (Memory.alloc_block cc ~block:nextblock ~size ~perm:Perm.Normal)
