(** The single tool-version constant.

    Everything that stamps an artifact reads it from here: the [casc]
    command line (`casc --version`), the witness JSON header written by
    [Cas_diag.Witness], and the certificate-cache key salt
    ([Cas_compiler.Pipeline.version]). Bumping it therefore both marks
    new witnesses and invalidates stale cached certificates, so an
    artifact produced by an older build is always detectable. *)

let v = "1.1.0"
