(** Abstract word-sized values stored in memory cells and registers.

    The paper's state model maps addresses to values [Val]; values include
    addresses (pointers). We follow CompCert's abstract value discipline:
    integers, pointers and [Vundef] for uninitialized data. Arithmetic on
    [Vundef] or ill-typed operands yields [Vundef] rather than getting
    stuck, matching CompCert's total evaluation of operators. *)

type t =
  | Vundef
  | Vint of int
  | Vptr of Addr.t

let equal a b =
  match (a, b) with
  | Vundef, Vundef -> true
  | Vint x, Vint y -> x = y
  | Vptr x, Vptr y -> Addr.equal x y
  | _ -> false

let compare a b =
  match (a, b) with
  | Vundef, Vundef -> 0
  | Vundef, _ -> -1
  | _, Vundef -> 1
  | Vint x, Vint y -> Int.compare x y
  | Vint _, _ -> -1
  | _, Vint _ -> 1
  | Vptr x, Vptr y -> Addr.compare x y

(** Content hash for the incremental memory hash ([Memory]). Tag bits
    keep the constructors apart; equal values hash equal. *)
let hash = function
  | Vundef -> 0
  | Vint n -> (n lsl 2) lor 1
  | Vptr a -> (Addr.hash a lsl 2) lor 2

let pp ppf = function
  | Vundef -> Fmt.string ppf "undef"
  | Vint n -> Fmt.int ppf n
  | Vptr a -> Fmt.pf ppf "&%a" Addr.pp a

let to_string v = Fmt.str "%a" pp v
let is_true = function Vint n -> n <> 0 | Vptr _ -> true | Vundef -> false
let of_bool b = Vint (if b then 1 else 0)

(** Addresses stored inside a value, for closedness checks ([closed(S,σ)]
    in Fig. 7: every pointer reachable from the shared memory must itself
    point into the shared memory). *)
let addrs = function Vptr a -> [ a ] | Vint _ | Vundef -> []
