(** Executable checks for well-defined languages (Def. 1).

    In the paper, wd(tl) is a proof obligation discharged in Coq for each
    concrete language. Here each item becomes a runtime check on concrete
    configurations; the test suite runs them over many reachable
    configurations of every language we instantiate (Clight, the IRs, x86,
    CImp), which is the empirical analogue of the Coq lemmas. *)

type violation = {
  item : int;  (** which item of Def. 1 *)
  detail : string;
}

let pp_violation ppf v = Fmt.pf ppf "Def.1(%d): %s" v.item v.detail

(* LEqPre(σ1, σ2, δ, F) — Fig. 6. *)
let leqpre m1 m2 (d : Footprint.t) f =
  let ws = Footprint.ws_set d in
  Memory.eq_on (Footprint.rs_set d) m1 m2
  && Addr.Set.equal
       (Addr.Set.filter (fun a -> Addr.Set.mem a ws) (Memory.dom m1))
       (Addr.Set.filter (fun a -> Addr.Set.mem a ws) (Memory.dom m2))
  && Addr.Set.equal
       (Addr.Set.filter (Flist.owns_addr f) (Memory.dom m1))
       (Addr.Set.filter (Flist.owns_addr f) (Memory.dom m2))

(* LEqPost(σ1, σ2, δ, F) — Fig. 6. *)
let leqpost m1 m2 (d : Footprint.t) f =
  Memory.eq_on (Footprint.ws_set d) m1 m2
  && Addr.Set.equal
       (Addr.Set.filter (Flist.owns_addr f) (Memory.dom m1))
       (Addr.Set.filter (Flist.owns_addr f) (Memory.dom m2))

(** Items (1) and (2): forward and LEffect, checked on each successor of a
    configuration. *)
let check_effects (type code core) (lang : (code, core) Lang.t) fl core mem :
    violation list =
  List.concat_map
    (function
      | Lang.Stuck_abort -> []
      | Lang.Next (msg, fp, _, mem') ->
        let v1 =
          if Memory.forward mem mem' then []
          else
            [ { item = 1; detail = Fmt.str "not forward on %a step" Msg.pp msg } ]
        in
        let v2 =
          if Memory.leffect mem mem' fp fl then []
          else
            [ {
                item = 2;
                detail =
                  Fmt.str "LEffect violated on %a step with fp %a" Msg.pp msg
                    Footprint.pp fp;
              } ]
        in
        v1 @ v2)
    (lang.step fl core mem)

(** Item (3): determinacy of effects w.r.t. the read set. For each
    successor with footprint δ and each caller-supplied memory σ1 with
    LEqPre(σ, σ1, δ, F), some step from σ1 must produce the same message
    and footprint and a LEqPost-related result. *)
let check_locality (type code core) (lang : (code, core) Lang.t) fl core mem
    ~(perturbed : Memory.t list) : violation list =
  List.concat_map
    (function
      | Lang.Stuck_abort -> []
      | Lang.Next (msg, fp, _, mem') ->
        List.concat_map
          (fun m1 ->
            if not (leqpre mem m1 fp fl) then []
            else
              let matching =
                List.exists
                  (function
                    | Lang.Stuck_abort -> false
                    | Lang.Next (msg1, fp1, _, m1') ->
                      Msg.equal msg msg1 && Footprint.equal fp fp1
                      && leqpost mem' m1' fp fl)
                  (lang.step fl core m1)
              in
              if matching then []
              else
                [ {
                    item = 3;
                    detail =
                      Fmt.str "no matching step from LEqPre-related memory (%a)"
                        Msg.pp msg;
                  } ])
          perturbed)
    (lang.step fl core mem)

(** Item (4): the *shape* of nondeterminism only depends on memory within
    the union of all silent-step read sets. *)
let check_nondet_stability (type code core) (lang : (code, core) Lang.t) fl core
    mem ~(perturbed : Memory.t list) : violation list =
  let succs = lang.step fl core mem in
  let delta0 =
    Footprint.union_all
      (List.filter_map
         (function
           | Lang.Next (Msg.Tau, fp, _, _) -> Some fp
           | _ -> None)
         succs)
  in
  List.concat_map
    (fun m1 ->
      if not (leqpre mem m1 delta0 fl) then []
      else
        List.concat_map
          (function
            | Lang.Stuck_abort -> []
            | Lang.Next (msg1, fp1, _, _) ->
              let witnessed =
                List.exists
                  (function
                    | Lang.Stuck_abort -> false
                    | Lang.Next (msg, fp, _, _) ->
                      Msg.equal msg msg1 && Footprint.equal fp fp1)
                  succs
              in
              if witnessed then []
              else
                [ {
                    item = 4;
                    detail =
                      Fmt.str
                        "perturbed memory enables a step (%a) absent in the \
                         original"
                        Msg.pp msg1;
                  } ])
          (lang.step fl core m1))
    perturbed

(** Systematic memory perturbations used by the test harness: flip the
    value of each defined cell outside [avoid] (one perturbation per cell,
    capped) — these satisfy LEqPre for any footprint whose read set avoids
    the cell, so they are useful counterexample candidates for items (3)
    and (4). *)
let perturbations ?(cap = 16) mem ~(avoid : Addr.Set.t) : Memory.t list =
  let cells = Addr.Set.diff (Memory.dom mem) avoid in
  let picked = ref [] in
  let count = ref 0 in
  Addr.Set.iter
    (fun a ->
      if !count < cap then begin
        incr count;
        let v' =
          match Memory.peek mem a with
          | Some (Value.Vint n) -> Value.Vint (n + 1031)
          | _ -> Value.Vint 424242
        in
        match
          Memory.store
            ?perm:
              (match Memory.perm_of_block mem a.Addr.block with
              | Some p -> Some p
              | None -> None)
            mem a v'
        with
        | Ok m -> picked := m :: !picked
        | Error _ -> ()
      end)
    cells;
  !picked

(** Run every check of Def. 1 on one configuration. *)
let check_all (type code core) (lang : (code, core) Lang.t) fl core mem :
    violation list =
  let succs = lang.step fl core mem in
  let rs_all =
    Footprint.union_all
      (List.filter_map
         (function Lang.Next (_, fp, _, _) -> Some fp | _ -> None)
         succs)
  in
  let avoid =
    Addr.Set.union (Footprint.locs rs_all)
      (Addr.Set.filter (Flist.owns_addr fl) (Memory.dom mem))
  in
  let perturbed = perturbations mem ~avoid in
  check_effects lang fl core mem
  @ check_locality lang fl core mem ~perturbed
  @ check_nondet_stability lang fl core mem ~perturbed
