(** Splittable deterministic randomness.

    The fuzz generator and the bench load driver both need streams that
    are (a) fully determined by an integer seed, (b) cheap, and (c)
    *splittable*: handing a child generator to a subtree must not
    perturb the parent's stream, so inserting one more draw in one
    corner of the program generator does not reshuffle every later
    program. This is the SplitMix construction (Steele–Lea–Flood) on
    OCaml's 63-bit native ints: a counter advanced by a golden-ratio
    increment, finalized through an avalanche mix; [split] derives an
    independent stream from the next counter value.

    No global state anywhere — every consumer owns its [t]. *)

type t = { mutable state : int; gamma : int }

(* 2^64 / phi, truncated into OCaml's 63-bit int range; must be odd. *)
let golden_gamma = 0x1F61C8864680B583

let mix64 (z : int) : int =
  let z = (z lxor (z lsr 33)) * 0x7F4A7C12F5A77B9 in
  let z = (z lxor (z lsr 29)) * 0x14A6C45A6D4C79B in
  z lxor (z lsr 32)

(* A gamma must be odd; mix the raw value and force the low bit. *)
let mix_gamma (z : int) : int = mix64 z lor 1

let make ~(seed : int) : t =
  { state = mix64 ((seed * 2) lxor 0x2545F4914F6CDD1D); gamma = golden_gamma }

let next (t : t) : int =
  t.state <- t.state + t.gamma;
  mix64 t.state land max_int

(** Independent child stream: consumes one draw from the parent and
    derives a fresh (state, gamma) pair, so sibling splits and the
    parent's subsequent draws are all decorrelated. *)
let split (t : t) : t =
  t.state <- t.state + t.gamma;
  let state = mix64 t.state in
  t.state <- t.state + t.gamma;
  let gamma = mix_gamma t.state in
  { state; gamma }

(** Uniform int in [0, bound). [bound] must be positive. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let bool (t : t) : bool = next t land 1 = 1

(* uniform in [0,1) *)
let uniform (t : t) : float =
  float_of_int (next t land 0x3FFFFFFF) /. 1073741824.

(** Pick an element uniformly. *)
let choose (t : t) (xs : 'a array) : 'a =
  if Array.length xs = 0 then invalid_arg "Rng.choose: empty array";
  xs.(int t (Array.length xs))

(** Weighted pick: [(w, x)] pairs with positive integer weights. *)
let weighted (t : t) (xs : (int * 'a) array) : 'a =
  let total = Array.fold_left (fun acc (w, _) -> acc + w) 0 xs in
  if total <= 0 then invalid_arg "Rng.weighted: weights must be positive";
  let u = int t total in
  let rec go i acc =
    let w, x = xs.(i) in
    if u < acc + w then x else go (i + 1) (acc + w)
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Zipf sampling (hoisted from bench/load.ml)                          *)
(* ------------------------------------------------------------------ *)

(** Cumulative distribution of a Zipf law with exponent [s] over ranks
    [0..n-1]: rank k has weight 1/(k+1)^s. *)
let zipf_cdf ~(n : int) ~(s : float) : float array =
  let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

(** Smallest rank whose cumulative weight covers a uniform draw. *)
let sample (cdf : float array) (t : t) : int =
  let u = uniform t in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo
