(** Global environments ge (Fig. 4): the statically-allocated global
    variables of a module, mapped to their blocks and initial values.

    A module declares its globals symbolically ([gvar]); the Load rule
    (implemented in [Cas_conc.World]) unions the declarations of all
    modules — defined only when compatible — and assigns block numbers,
    yielding a [Genv.t] that languages use to resolve global names. *)

(** Interned function/global symbols. Symbol-heavy code — the linker's
    resolver, image fingerprints — compares dense integer ids instead of
    strings. Ids are process-local (interning order dependent), so they
    never appear in on-disk artifacts: object files store names and
    re-intern on load. *)
module Sym = struct
  let lock = Mutex.create ()
  let ids : (string, int) Hashtbl.t = Hashtbl.create 128
  let names : (int, string) Hashtbl.t = Hashtbl.create 128

  (** Intern a symbol name, returning its dense id. *)
  let intern (s : string) : int =
    Mutex.lock lock;
    let id =
      match Hashtbl.find_opt ids s with
      | Some id -> id
      | None ->
        let id = Hashtbl.length ids in
        Hashtbl.add ids s id;
        Hashtbl.add names id s;
        id
    in
    Mutex.unlock lock;
    id

  (** The name behind an id; raises [Not_found] on an id never returned
      by [intern]. *)
  let name (id : int) : string =
    Mutex.lock lock;
    let n = Hashtbl.find_opt names id in
    Mutex.unlock lock;
    match n with Some s -> s | None -> raise Not_found

  let equal (a : int) (b : int) = Int.equal a b
end

type init = Iint of int | Iaddr of string | Iundef

type gvar = {
  gname : string;
  gsize : int;  (** number of word cells *)
  ginit : init list;  (** padded with [Iundef] up to [gsize] *)
  gperm : Perm.t;
}

let gvar ?(perm = Perm.Normal) ?(init = []) name size =
  { gname = name; gsize = size; ginit = init; gperm = perm }

let compatible_gvar g1 g2 =
  g1.gsize = g2.gsize && g1.ginit = g2.ginit && Perm.equal g1.gperm g2.gperm

module SMap = Map.Make (String)

type t = { table : (int * gvar) SMap.t (* name -> block, decl *) }

let empty = { table = SMap.empty }

(** Union of module global environments, as GE(Π) in Fig. 7. Returns
    [Error name] on incompatible duplicate declarations. *)
let link (decls : gvar list list) : (t, string) result =
  let exception Incompatible of string in
  try
    let all = List.concat decls in
    (* Deduplicate by name, checking compatibility. *)
    let merged =
      List.fold_left
        (fun acc g ->
          match SMap.find_opt g.gname acc with
          | None -> SMap.add g.gname g acc
          | Some g' ->
            if compatible_gvar g g' then acc else raise (Incompatible g.gname))
        SMap.empty all
    in
    (* Assign block numbers deterministically, in name order. *)
    let _, table =
      SMap.fold
        (fun name g (b, tbl) -> (b + 1, SMap.add name (b, g) tbl))
        merged (0, SMap.empty)
    in
    Ok { table }
  with Incompatible n -> Error n

let find_block ge name = Option.map fst (SMap.find_opt name ge.table)
let find_addr ge name = Option.map (fun b -> Addr.make b 0) (find_block ge name)
let block_count ge = SMap.cardinal ge.table

let bindings ge =
  SMap.bindings ge.table |> List.map (fun (n, (b, g)) -> (n, b, g))

(** Initialize memory with the global blocks (the σ = GE(Π) of Load). *)
let init_memory ge =
  List.fold_left
    (fun m (_, b, g) ->
      let m = Memory.alloc_block m ~block:b ~size:g.gsize ~perm:g.gperm in
      let rec fill m ofs = function
        | [] -> m
        | iv :: rest ->
          let v =
            match iv with
            | Iint n -> Value.Vint n
            | Iundef -> Value.Vundef
            | Iaddr name -> (
              match find_addr ge name with
              | Some a -> Value.Vptr a
              | None -> Value.Vundef)
          in
          let m =
            match Memory.store ~perm:g.gperm m (Addr.make b ofs) v with
            | Ok m -> m
            | Error _ -> m
          in
          fill m (ofs + 1) rest
      in
      fill m 0 g.ginit)
    Memory.empty (bindings ge)
