(** Footprints δ = (rs, ws): the sets of memory locations read and written
    by a step (Fig. 4). The paper folds permission-observing operations
    into rs/ws (footnote 4); we do the same.

    Representation: immutable word-level bitsets over [Addr.Interner] ids.
    DPOR's dependence check and the race predictor call [conflict] inside
    an O(transitions²) loop, so conflict/subset/union are O(words) with a
    one-word nonzero summary as the fast path ([summary] bit [i mod 63] is
    set iff word [i] is nonzero, so disjoint summaries prove disjoint
    sets). The [Addr.Set] views ([rs_set]/[ws_set]/[locs]) serve
    pretty-printing and the meta-level checkers ([Memory.eq_on], [Wd]),
    which are off the hot path. *)

module Bits = struct
  type t = { summary : int; words : int array }
  (** invariant: no trailing zero word (so structural equality is set
      equality), and [summary] has bit [i mod 63] set iff [words.(i) <> 0] *)

  let bpw = 63
  let empty = { summary = 0; words = [||] }
  let is_empty b = Array.length b.words = 0

  let summarize words =
    let s = ref 0 in
    Array.iteri
      (fun i w -> if w <> 0 then s := !s lor (1 lsl (i mod bpw)))
      words;
    !s

  (** Take ownership of [words], dropping trailing zeros. *)
  let normalize words =
    let n = ref (Array.length words) in
    while !n > 0 && words.(!n - 1) = 0 do
      decr n
    done;
    let words =
      if !n = Array.length words then words else Array.sub words 0 !n
    in
    { summary = summarize words; words }

  let of_ids = function
    | [] -> empty
    | ids ->
      let top = List.fold_left max 0 ids in
      let words = Array.make ((top / bpw) + 1) 0 in
      List.iter
        (fun id -> words.(id / bpw) <- words.(id / bpw) lor (1 lsl (id mod bpw)))
        ids;
      normalize words

  let mem b id =
    let w = id / bpw in
    w < Array.length b.words && b.words.(w) land (1 lsl (id mod bpw)) <> 0

  let disjoint a b =
    a.summary land b.summary = 0
    ||
    let n = min (Array.length a.words) (Array.length b.words) in
    let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
    go 0

  let subset a b =
    (* normalized: a strictly longer than b has a high set bit outside b *)
    Array.length a.words <= Array.length b.words
    && a.summary land lnot b.summary = 0
    &&
    let rec go i =
      i >= Array.length a.words
      || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
    in
    go 0

  let union a b =
    if is_empty a then b
    else if is_empty b || a == b then a
    else
      let la = Array.length a.words and lb = Array.length b.words in
      let words = Array.make (max la lb) 0 in
      for i = 0 to Array.length words - 1 do
        words.(i) <-
          (if i < la then a.words.(i) else 0)
          lor (if i < lb then b.words.(i) else 0)
      done;
      (* no trailing zero: the top word of the longer input is nonzero *)
      { summary = a.summary lor b.summary; words }

  let inter a b =
    if a.summary land b.summary = 0 then empty
    else
      let n = min (Array.length a.words) (Array.length b.words) in
      normalize (Array.init n (fun i -> a.words.(i) land b.words.(i)))

  let equal a b = a == b || (a.summary = b.summary && a.words = b.words)

  let fold f b acc =
    let acc = ref acc in
    Array.iteri
      (fun i w ->
        if w <> 0 then
          for j = 0 to bpw - 1 do
            if w land (1 lsl j) <> 0 then acc := f ((i * bpw) + j) !acc
          done)
      b.words;
    !acc
end

type t = { rs : Bits.t; ws : Bits.t }

let empty = { rs = Bits.empty; ws = Bits.empty }
let is_empty d = Bits.is_empty d.rs && Bits.is_empty d.ws
let bits_of_addrs addrs = Bits.of_ids (List.map Addr.Interner.id addrs)
let reads addrs = { rs = bits_of_addrs addrs; ws = Bits.empty }
let writes addrs = { rs = Bits.empty; ws = bits_of_addrs addrs }
let read1 a = reads [ a ]
let write1 a = writes [ a ]

let union a b =
  if a == b then a
  else { rs = Bits.union a.rs b.rs; ws = Bits.union a.ws b.ws }

let union_all l = List.fold_left union empty l

(** δ ⊆ δ' pointwise (the [FP.subset] of Fig. 12). *)
let subset a b = Bits.subset a.rs b.rs && Bits.subset a.ws b.ws

(** δ1 ⌢ δ2: conflict, i.e. one's write set meets the other's locations
    (§5). This is the heart of the race predictor: three word-level
    disjointness checks, no allocation. *)
let conflict d1 d2 =
  (not (Bits.disjoint d1.ws d2.ws))
  || (not (Bits.disjoint d1.ws d2.rs))
  || not (Bits.disjoint d2.ws d1.rs)

(** Instrumented conflict (δ1,d1) ⌢ (δ2,d2): racy only if at least one of
    the two accesses is outside an atomic block (§5). *)
let conflict_bits (d1, b1) (d2, b2) = (((not b1) || not b2)) && conflict d1 d2

let equal a b = Bits.equal a.rs b.rs && Bits.equal a.ws b.ws

(* ---- Addr.Set views, for printing and the meta-level checkers ---- *)

let set_of_bits b =
  Bits.fold (fun id acc -> Addr.Set.add (Addr.Interner.addr id) acc) b
    Addr.Set.empty

let rs_set d = set_of_bits d.rs
let ws_set d = set_of_bits d.ws

(** Build from address sets (the meta-checkers' natural currency). *)
let make ~rs ~ws =
  { rs = bits_of_addrs (Addr.Set.elements rs);
    ws = bits_of_addrs (Addr.Set.elements ws) }

(** When used as a set, δ denotes rs ∪ ws (§5). *)
let locs d = set_of_bits (Bits.union d.rs d.ws)

(** Restrict a footprint to a region of interest. *)
let inter_locs d s =
  let sb = bits_of_addrs (Addr.Set.elements s) in
  { rs = Bits.inter d.rs sb; ws = Bits.inter d.ws sb }

(** Is the footprint confined to [region]? Used for the "in scope"
    premises δ ⊆ (F ∪ µ.S) of Def. 3. *)
let within d ~mem:region =
  let rb = bits_of_addrs (Addr.Set.elements region) in
  Bits.subset d.rs rb && Bits.subset d.ws rb

(** Membership in the write set without materializing the view. *)
let mem_ws d a =
  match Addr.Interner.find_id a with
  | None -> false
  | Some id -> Bits.mem d.ws id

let pp ppf d =
  Fmt.pf ppf "(rs=%a, ws=%a)" Addr.Set.pp (rs_set d) Addr.Set.pp (ws_set d)
