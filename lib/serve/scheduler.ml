(** The request scheduler: memo + dedup + admission control + worker
    pool. A request's key is a content digest of its semantic fields, so
    the three dedup tiers compose by construction:

    - the *response memo*: a completed job's successful result, kept by
      key — an identical request arriving any time later is answered
      synchronously, no parse, no render, no worker ([Hit]). Requests
      are content-addressed (the source text is *in* the key), so a
      memoized verdict can never go stale;
    - the *in-flight window*: an identical job currently executing —
      the request *coalesces*, riding the leader's execution ([Dedup]);
    - the *certificate cache* ([Cas_compiler.Cache]): per-function
      verdicts shared across distinct requests (and, on disk, across
      restarts) that happen to contain the same function bodies.

    A miss on all three goes to admission control: at most [queue_cap]
    distinct jobs may be outstanding (queued or executing); past the cap
    the request is rejected [Overloaded] *immediately* — the daemon
    answers with a structured overload error instead of letting an
    unbounded queue eat the latency budget. Admitted jobs go to the
    bounded worker pool ([Cas_base.Pool.Persistent]); on completion the
    result is fanned out to the leader's and every coalesced caller's
    callback, and memoized.

    [drain] is the graceful-shutdown half: new submissions are refused
    [Draining], every admitted job still runs to completion (and its
    waiters get their responses) before [drain] returns. *)

(** [Ok] carries the response payload *already rendered to JSON text*:
    a job's result is encoded exactly once, and every consumer — the
    leader, each coalesced waiter, every later memo hit — blits the same
    bytes into its response frame. [Error] is a human-readable message. *)
type result = (string, string) Stdlib.result

type t = {
  pool : Cas_base.Pool.Persistent.t;
  dedup : result Dedup.t;
  lock : Mutex.t;
  memo : (string, result) Hashtbl.t;  (** completed [Ok] results by key *)
  memo_cap : int;
  mutable memo_hits : int;
  mutable outstanding : int;  (** distinct jobs admitted, not completed *)
  mutable peak_outstanding : int;
  mutable overloaded : int;  (** submissions rejected by the cap *)
  queue_cap : int;
  mutable draining : bool;
}

let create ~(jobs : int) ~(queue_cap : int) ?(memo_cap = 4096) () : t =
  {
    pool = Cas_base.Pool.Persistent.create ~jobs ();
    dedup = Dedup.create ();
    lock = Mutex.create ();
    memo = Hashtbl.create 256;
    memo_cap = max 1 memo_cap;
    memo_hits = 0;
    outstanding = 0;
    peak_outstanding = 0;
    overloaded = 0;
    queue_cap = max 1 queue_cap;
    draining = false;
  }

type outcome =
  | Hit  (** served from the response memo; callback has ALREADY run *)
  | Admitted  (** a fresh execution was queued; callback fires later *)
  | Coalesced  (** rides an identical in-flight job; callback fires later *)
  | Overloaded  (** rejected by the queue cap; callback will NOT fire *)
  | Draining  (** rejected because [drain] has begun; callback will NOT fire *)

(* miss on the memo: dedup, admission control, worker pool. Called with
   [t.lock] held; releases it on every path. *)
let submit_miss (t : t) ~(key : string) ~(run : unit -> result)
    ~(callback : result -> unit) : outcome =
  if
    (* a coalescing request occupies no new queue slot, so the cap check
       applies only to would-be leaders — but leadership is decided by
       [Dedup.join], which must happen under this same decision. Peek
       first: an in-flight key always coalesces, cap or no cap. *)
    t.outstanding >= t.queue_cap
    && not (Dedup.inflight_key t.dedup key)
  then begin
    t.overloaded <- t.overloaded + 1;
    Mutex.unlock t.lock;
    Overloaded
  end
  else begin
    match Dedup.join t.dedup ~key callback with
    | `Coalesced ->
      Mutex.unlock t.lock;
      Coalesced
    | `Leader ->
      t.outstanding <- t.outstanding + 1;
      t.peak_outstanding <- max t.peak_outstanding t.outstanding;
      let job () =
        let r = try run () with e -> Error (Printexc.to_string e) in
        Mutex.lock t.lock;
        t.outstanding <- t.outstanding - 1;
        (match r with
        | Ok _ ->
          (* keys are content digests over the full request, so the
             result can never go stale; errors are not memoized — an
             exception-turned-[Error] may be transient *)
          if Hashtbl.length t.memo >= t.memo_cap then Hashtbl.reset t.memo;
          Hashtbl.replace t.memo key r
        | Error _ -> ());
        Mutex.unlock t.lock;
        ignore (Dedup.complete t.dedup ~key r)
      in
      (match Cas_base.Pool.Persistent.submit t.pool job with
      | Ok () ->
        Mutex.unlock t.lock;
        Admitted
      | Error `Draining ->
        (* raced with drain: undo the admission and tell the caller *)
        t.outstanding <- t.outstanding - 1;
        ignore (Dedup.complete t.dedup ~key (Error "draining"));
        t.draining <- true;
        Mutex.unlock t.lock;
        Draining)
  end

(** Submit the job for [key]. [run] executes on a worker domain (at most
    once per in-flight key, exceptions become [Error]); [callback] runs
    on the worker domain that completed the job — except on a memo
    [Hit], where it has already run, synchronously, when [submit]
    returns. *)
let submit (t : t) ~(key : string) ~(run : unit -> result)
    ~(callback : result -> unit) : outcome =
  Mutex.lock t.lock;
  if t.draining then begin
    Mutex.unlock t.lock;
    Draining
  end
  else
    match Hashtbl.find_opt t.memo key with
    | Some r ->
      t.memo_hits <- t.memo_hits + 1;
      Mutex.unlock t.lock;
      (* outside the lock: the callback writes response frames *)
      callback r;
      Hit
    | None -> submit_miss t ~key ~run ~callback

(** Refuse new submissions and run every admitted job to completion
    (waiters included). Idempotent. *)
let drain (t : t) : unit =
  Mutex.lock t.lock;
  t.draining <- true;
  Mutex.unlock t.lock;
  Cas_base.Pool.Persistent.drain t.pool

let queue_depth (t : t) : int =
  Mutex.lock t.lock;
  let n = t.outstanding in
  Mutex.unlock t.lock;
  n

let overloaded_total (t : t) : int =
  Mutex.lock t.lock;
  let n = t.overloaded in
  Mutex.unlock t.lock;
  n

let coalesced_total (t : t) : int = Dedup.coalesced_total t.dedup
let executed_total (t : t) : int = Dedup.executed_total t.dedup

let memo_hits_total (t : t) : int =
  Mutex.lock t.lock;
  let n = t.memo_hits in
  Mutex.unlock t.lock;
  n

let memo_entries (t : t) : int =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.memo in
  Mutex.unlock t.lock;
  n
let workers (t : t) : int = Cas_base.Pool.Persistent.workers t.pool
let busy (t : t) : int = Cas_base.Pool.Persistent.busy t.pool

(** Scheduler gauges for the metrics document. *)
let to_json (t : t) : Cas_diag.Json.t =
  let open Cas_diag.Json in
  Obj
    [
      ("depth", Int (queue_depth t));
      ("cap", Int t.queue_cap);
      ("peak_depth", Int t.peak_outstanding);
      ("workers", Int (workers t));
      ("busy", Int (busy t));
      ( "utilization_pct",
        Int (100 * busy t / max 1 (workers t)) );
      ("executed", Int (executed_total t));
      ("coalesced", Int (coalesced_total t));
      ("memo_hits", Int (memo_hits_total t));
      ("memo_entries", Int (memo_entries t));
      ("overloaded", Int (overloaded_total t));
    ]
