(** cascd — the certification daemon behind [casc serve].

    One process, three layers of concurrency:

    - the *accept loop* (main thread) multiplexes the listening socket
      with a 0.2 s poll of the stop flag, spawning one handler thread
      per connection;
    - *connection handlers* (systhreads) read frames, decode requests,
      and answer protocol-level traffic (ping, metrics, malformed input)
      inline; compute requests go to the [Scheduler];
    - *worker domains* ([Cas_base.Pool.Persistent], via the scheduler)
      run the actual compiler/checker jobs — warm process-global
      memory+disk certificate caches included — and fan each result out
      to every connection that asked for it (in-flight dedup).

    Responses are written under a per-connection mutex (the leader's
    worker writes for every coalesced follower), so frames never
    interleave. Shutdown — SIGTERM, a [shutdown] request, or [stop] —
    is graceful: stop accepting, refuse new work with [draining],
    finish every admitted job, flush its responses, then exit. Verdict
    texts are rendered with the same pretty-printers the one-shot
    [casc] commands use, so a daemon answer is byte-identical to the
    CLI's stdout for the same input. *)

open Cas_base
open Cas_langs
open Cas_conc
module Json = Cas_diag.Json

type config = {
  socket : string;  (** Unix-domain socket path *)
  jobs : int;  (** worker domains *)
  queue_cap : int;  (** max distinct jobs outstanding before [overloaded] *)
  delay : float;  (** artificial seconds added to every job — a test hook
                      ([--delay-ms]) that widens the in-flight window so
                      smoke tests can provoke coalescing deterministically *)
}

let default_config =
  { socket = "casc.sock"; jobs = 2; queue_cap = 64; delay = 0. }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  sched : Scheduler.t;
  metrics : Metrics.t;
  stopping : bool Atomic.t;
  conns_live : int Atomic.t;
  conns_total : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Request execution (worker domains)                                  *)
(* ------------------------------------------------------------------ *)

let parse_source (src : string) : (Clight.program, string) result =
  try Ok (Parse.clight src) with
  | Lexer.Error (msg, pos) ->
    Error (Fmt.str "parse error: %s at %a" msg Lexer.pp_pos pos)

let default_entries = function [] -> [ "main" ] | es -> es

(* The same program assembly [casc drf]/[casc run] perform. *)
let build_prog client ~with_lock ~entries =
  let mods =
    if with_lock then
      [ Lang.Mod (Clight.lang, client); Lang.Mod (Cimp.lang, Cimp.gamma_lock ()) ]
    else [ Lang.Mod (Clight.lang, client) ]
  in
  Lang.prog mods entries

(* payloads are rendered to JSON text right here, on the worker domain
   that produced them — encode once, fan the bytes out to every waiter *)
let ok_payload fields = Json.to_string (Json.Obj fields)
let err_payload msg = Json.to_string (Protocol.error_payload msg)

let exec_compile source : Scheduler.result =
  match parse_source source with
  | Error e -> Error e
  | Ok client ->
    let a = Cas_compiler.Driver.compile_artifacts ~cache:true client in
    (* identical to [casc compile FILE] (default IR = asm) *)
    let text =
      Fmt.str "%a@."
        Fmt.(list ~sep:cut Asm.pp_func)
        a.Cas_compiler.Driver.asm.Asm.funcs
    in
    Ok
      (ok_payload
         [
           ("text", Json.Str text);
           ("asm_digest", Json.Str (Cas_compiler.Cache.digest text));
         ])

let exec_certify source : Scheduler.result =
  match parse_source source with
  | Error e -> Error e
  | Ok client ->
    let reports = Cascompcert.Framework.check_passes client in
    (* identical to the [casc sim FILE] report lines *)
    let text =
      String.concat ""
        (List.map
           (fun r -> Fmt.str "%a@." Cascompcert.Framework.pp_pass_sim r)
           reports)
    in
    let sim_ok =
      List.for_all
        (fun r -> Cascompcert.Framework.sim_ok r.Cascompcert.Framework.outcome)
        reports
    in
    let cached =
      List.length
        (List.filter (fun r -> r.Cascompcert.Framework.cached) reports)
    in
    let steps =
      List.fold_left
        (fun acc r -> acc + r.Cascompcert.Framework.checker_steps)
        0 reports
    in
    Ok
      (ok_payload
         [
           ("text", Json.Str text);
           ("sim_ok", Json.Bool sim_ok);
           ("verdicts", Json.Int (List.length reports));
           ("cached", Json.Int cached);
           ("checker_steps", Json.Int steps);
         ])

let exec_link ~objects ~entries ~certify : Scheduler.result =
  let entries = default_entries entries in
  let rec decode acc = function
    | [] -> Ok (List.rev acc)
    | o :: rest -> (
      match Cas_link.Objfile.of_string o with
      | Error e -> Error (Fmt.str "object %d: %s" (List.length acc + 1) e)
      | Ok obj -> decode (obj :: acc) rest)
  in
  match decode [] objects with
  | Error e -> Error e
  | Ok objs -> (
    match Cas_link.Linker.link ~certify ~entries objs with
    | Error e -> Error (Fmt.str "%a" Cas_link.Linker.pp_error e)
    | Ok o ->
      let img = o.Cas_link.Linker.lk_image in
      (* identical to the certificate-composition report [casc link] prints *)
      let text =
        match o.Cas_link.Linker.lk_compose with
        | None -> ""
        | Some r -> Fmt.str "%a@." Cascompcert.Framework.pp_compose r
      in
      Ok
        (ok_payload
           [
             ("text", Json.Str text);
             ("image", Json.Str (Cas_link.Image.to_string img));
             ("digest", Json.Str img.Cas_link.Image.i_digest);
             ("certified", Json.Bool img.Cas_link.Image.i_certified);
           ]))

let exec_drf ~source ~entries ~with_lock : Scheduler.result =
  let entries = default_entries entries in
  match parse_source source with
  | Error e -> Error e
  | Ok client -> (
    let p = build_prog client ~with_lock ~entries in
    match World.load p ~args:[] with
    | Error e -> Error (Fmt.str "load error: %a" World.pp_load_error e)
    | Ok w ->
      let r = Race.drf ~engine:Engine.Naive w in
      (* identical to the [casc drf FILE] report *)
      let text = Fmt.str "%a@." Race.pp_drf_report r in
      Ok
        (ok_payload
           [ ("text", Json.Str text); ("drf", Json.Bool r.Race.drf) ]))

let exec_tso ~source ~entries : Scheduler.result =
  let entries = default_entries entries in
  match parse_source source with
  | Error e -> Error e
  | Ok client -> (
    let asm = Cas_compiler.Driver.compile client in
    match Cas_tso.Tso.load [ asm; Cas_tso.Locks.pi_lock ] entries with
    | Error e -> Error (Fmt.str "load error: %a" World.pp_load_error e)
    | Ok w ->
      let tr, _st = Cas_tso.Tso.mc_traces ~engine:Engine.Naive w in
      let g =
        Cas_tso.Objsim.check_drf_guarantee ~engine:Engine.Naive
          ~clients:[ asm ] ~pi:Cas_tso.Locks.pi_lock
          ~gamma:(Cimp.gamma_lock ()) ~entries ()
      in
      (* identical to the [casc tso FILE] output (naive engine) *)
      let text =
        Fmt.str "x86-TSO traces (with the TTAS spin lock):@.%a@."
          Explore.TraceSet.pp tr.Explore.traces
        ^ Fmt.str "Lemma 16: %a@." Cas_tso.Objsim.pp_guarantee g
      in
      Ok
        (ok_payload
           [
             ("text", Json.Str text);
             ("holds", Json.Bool g.Cas_tso.Objsim.holds);
           ]))

let exec (cfg : config) (k : Protocol.kind) : Scheduler.result =
  if cfg.delay > 0. then Unix.sleepf cfg.delay;
  match k with
  | Protocol.Compile { source } -> exec_compile source
  | Protocol.Certify { source } -> exec_certify source
  | Protocol.Link { objects; entries; certify } ->
    exec_link ~objects ~entries ~certify
  | Protocol.Drf { source; entries; with_lock } ->
    exec_drf ~source ~entries ~with_lock
  | Protocol.Tso { source; entries } -> exec_tso ~source ~entries
  | Protocol.Ping | Protocol.Metrics | Protocol.Shutdown ->
    (* handled inline by the connection handler, never scheduled *)
    Error "internal: control request scheduled"

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let create (cfg : config) : (t, string) result =
  (* a peer hanging up mid-write must be an EPIPE result, not a fatal
     signal *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX cfg.socket);
    Unix.listen fd 128;
    fd
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Fmt.str "cannot listen on %s: %s" cfg.socket (Unix.error_message e))
  | listen_fd ->
    let t =
      {
        cfg;
        listen_fd;
        sched = Scheduler.create ~jobs:cfg.jobs ~queue_cap:cfg.queue_cap ();
        metrics = Metrics.create ();
        stopping = Atomic.make false;
        conns_live = Atomic.make 0;
        conns_total = Atomic.make 0;
      }
    in
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Atomic.set t.stopping true));
    Ok t

(** Begin a graceful shutdown (idempotent, signal-safe). *)
let stop (t : t) : unit = Atomic.set t.stopping true

let metrics_json (t : t) : Json.t =
  Metrics.to_json t.metrics
    ~extra:
      [
        ("scheduler", Scheduler.to_json t.sched);
        ( "connections",
          Json.Obj
            [
              ("live", Json.Int (Atomic.get t.conns_live));
              ("total", Json.Int (Atomic.get t.conns_total));
            ] );
      ]

(* One connection: read frames until the peer hangs up or a drain
   begins, answer control requests inline, schedule compute requests.
   Runs on its own systhread; responses for scheduled work are written
   by worker domains under [wlock]. *)
let handle_conn (t : t) (fd : Unix.file_descr) : unit =
  Atomic.incr t.conns_live;
  Atomic.incr t.conns_total;
  let wlock = Mutex.create () in
  let inflight = Atomic.make 0 in
  (* [payload] is JSON text (worker-rendered, or [ok_payload]/
     [err_payload] inline) — the frame is a cheap blit around it *)
  let send ~rid status (payload : string) : unit =
    let frame = Protocol.encode_response_raw ~rid ~status ~payload in
    Mutex.lock wlock;
    let r = Frame.write_string fd frame in
    Mutex.unlock wlock;
    (* a vanished peer is not an error: the job's result still warmed
       the caches, other waiters still got theirs *)
    ignore (r : (unit, Frame.error) result)
  in
  let finish ~t0 ~rid status (payload : string) =
    let latency_ns =
      int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
    in
    let mstatus =
      match status with
      | Protocol.Sok -> Metrics.Ok_
      | Protocol.Serror -> Metrics.Error_
      | Protocol.Soverloaded -> Metrics.Overloaded
      | Protocol.Sdraining -> Metrics.Draining
    in
    send ~rid status payload;
    Metrics.record_result t.metrics mstatus ~latency_ns
  in
  let handle (j : Json.t) : unit =
    let t0 = Unix.gettimeofday () in
    match Protocol.decode_request j with
    | Error msg ->
      Metrics.record_request t.metrics ~kind:"invalid";
      finish ~t0 ~rid:(Protocol.peek_id j) Protocol.Serror (err_payload msg)
    | Ok req -> (
      let rid = req.Protocol.id in
      Metrics.record_request t.metrics ~kind:(Protocol.kind_name req.kind);
      match req.Protocol.kind with
      | Protocol.Ping ->
        finish ~t0 ~rid Protocol.Sok (ok_payload [ ("text", Json.Str "pong") ])
      | Protocol.Metrics ->
        finish ~t0 ~rid Protocol.Sok (Json.to_string (metrics_json t))
      | Protocol.Shutdown ->
        (* acknowledge first: the drain must not race the response *)
        finish ~t0 ~rid Protocol.Sok
          (ok_payload [ ("text", Json.Str "draining") ]);
        Atomic.set t.stopping true
      | kind -> (
        let key = Protocol.request_key req in
        Atomic.incr inflight;
        let callback (r : Scheduler.result) =
          (match r with
          | Ok payload -> finish ~t0 ~rid Protocol.Sok payload
          | Error msg -> finish ~t0 ~rid Protocol.Serror (err_payload msg));
          Atomic.decr inflight
        in
        match
          Scheduler.submit t.sched ~key
            ~run:(fun () -> exec t.cfg kind)
            ~callback
        with
        | Scheduler.Hit (* callback already ran, synchronously *)
        | Scheduler.Admitted | Scheduler.Coalesced ->
          ()
        | Scheduler.Overloaded ->
          Atomic.decr inflight;
          finish ~t0 ~rid Protocol.Soverloaded
            (err_payload "server overloaded: queue full")
        | Scheduler.Draining ->
          Atomic.decr inflight;
          finish ~t0 ~rid Protocol.Sdraining (err_payload "server draining")))
  in
  let should_stop () = Atomic.get t.stopping in
  let rec loop () =
    match Frame.read ~should_stop fd with
    | Error (Frame.Closed | Frame.Stopped) -> ()
    | Error (Frame.Malformed _ as e) ->
      (* the frame itself was sound (payload fully consumed), so the
         stream is still in sync: answer and keep serving *)
      Metrics.record_bad_frame t.metrics;
      send ~rid:(-1) Protocol.Serror
        (err_payload (Fmt.str "%a" Frame.pp_error e));
      loop ()
    | Error ((Frame.Bad_length _ | Frame.Oversized _) as e) ->
      (* framing is lost (payload bytes unread): answer, then hang up *)
      Metrics.record_bad_frame t.metrics;
      send ~rid:(-1) Protocol.Serror
        (err_payload (Fmt.str "%a" Frame.pp_error e))
    | Ok j ->
      handle j;
      loop ()
  in
  loop ();
  (* every scheduled job for this connection still owes a response
     frame; the fd must outlive them *)
  while Atomic.get inflight > 0 do
    Thread.yield ();
    Unix.sleepf 0.005
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Atomic.decr t.conns_live

(** Serve until [stop] (or SIGTERM, or a [shutdown] request), then drain
    and clean up. Returns the final metrics document. *)
let run (t : t) : Json.t =
  let threads = ref [] in
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.listen_fd with
      | fd, _ -> threads := Thread.create (handle_conn t) fd :: !threads
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* graceful: admitted jobs finish and their responses flush before
     the handlers (waiting on their inflight counters) let go *)
  Scheduler.drain t.sched;
  List.iter Thread.join !threads;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ());
  metrics_json t
