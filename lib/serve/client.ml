(** Client side of the certification service: connect to a [casc serve]
    socket, exchange framed requests, correlate responses by id.

    Connections are synchronous (one request in flight at a time) —
    concurrency comes from opening many connections, which is exactly
    what the load driver and the smoke tests do. *)

module Json = Cas_diag.Json

type t = { fd : Unix.file_descr; mutable next_id : int }

let connect ~(socket : string) : (t, string) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd; next_id = 1 }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Fmt.str "cannot connect to %s: %s" socket (Unix.error_message e))

let close (t : t) : unit =
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(** Send [kind] and block for its response. [Error] is a transport or
    protocol failure; a served rejection (overloaded, draining, a
    verdict error) is an [Ok] response with the corresponding status. *)
let request (t : t) (kind : Protocol.kind) :
    (Protocol.response, string) result =
  let id = t.next_id in
  t.next_id <- id + 1;
  match Frame.write t.fd (Protocol.encode_request { Protocol.id; kind }) with
  | Error e -> Error (Fmt.str "send: %a" Frame.pp_error e)
  | Ok () -> (
    (* responses on a synchronous connection come back in order, but a
       server-initiated frame with another id (e.g. a bad-frame notice
       for a previous exchange) is skipped, not fatal *)
    let rec recv () =
      match Frame.read t.fd with
      | Error e -> Error (Fmt.str "receive: %a" Frame.pp_error e)
      | Ok j -> (
        match Protocol.decode_response j with
        | Error e -> Error (Fmt.str "bad response: %s" e)
        | Ok r when r.Protocol.rid = id -> Ok r
        | Ok _ -> recv ())
    in
    recv ())

let with_connection ~(socket : string) (f : t -> 'a) : ('a, string) result =
  match connect ~socket with
  | Error e -> Error e
  | Ok t ->
    let r = try Ok (f t) with e -> Error (Printexc.to_string e) in
    close t;
    r

(** Poll until the daemon accepts connections and answers a ping, or
    [timeout] seconds pass — startup synchronization for tests, CI and
    the bench driver. *)
let wait_ready ~(socket : string) ?(timeout = 10.) () : (unit, string) result =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let ok =
      match connect ~socket with
      | Error _ -> false
      | Ok t ->
        let r =
          match request t Protocol.Ping with
          | Ok { Protocol.status = Protocol.Sok; _ } -> true
          | _ -> false
        in
        close t;
        r
    in
    if ok then Ok ()
    else if Unix.gettimeofday () > deadline then
      Error (Fmt.str "daemon at %s not ready after %gs" socket timeout)
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()
