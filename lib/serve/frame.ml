(** Length-prefixed JSON frames over a file descriptor — the wire format
    of the certification service.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of JSON ([Cas_diag.Json]). The codec is the daemon's first
    line of defense, so every failure mode of a hostile or broken peer
    is a value, never an exception: a length past [max_payload] is
    [Oversized] (rejected before a byte of the payload is read), a
    negative length is [Bad_length], a peer that hangs up mid-frame is
    [Closed], and payload bytes that fail the depth/size-limited
    [Json.parse_result] are [Malformed]. *)

module Json = Cas_diag.Json

(** Frames above this are rejected unread. Far above any request we
    build (sources and .cao contents are the big payloads), far below
    anything that could exhaust memory on a 4-byte say-so. *)
let max_payload = 16 * 1024 * 1024

type error =
  | Closed  (** EOF or connection reset (mid-frame or between frames) *)
  | Stopped  (** the daemon began draining while we waited between frames *)
  | Bad_length of int  (** negative or absurd length prefix *)
  | Oversized of { size : int; limit : int }
  | Malformed of Json.parse_error  (** framed fine, but not valid JSON *)

let pp_error ppf = function
  | Closed -> Fmt.string ppf "connection closed"
  | Stopped -> Fmt.string ppf "server stopping"
  | Bad_length n -> Fmt.pf ppf "bad frame length %d" n
  | Oversized { size; limit } ->
    Fmt.pf ppf "frame too large (%d bytes, limit %d)" size limit
  | Malformed e -> Fmt.pf ppf "malformed frame: %a" Json.pp_parse_error e

(* ------------------------------------------------------------------ *)
(* Raw I/O                                                             *)
(* ------------------------------------------------------------------ *)

(* Read exactly [len] bytes, retrying on short reads and EINTR. [None]
   on EOF or a hard error. *)
let read_exactly fd buf off len : unit option =
  let rec go off len =
    if len = 0 then Some ()
    else
      match Unix.read fd buf off len with
      | 0 -> None
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error (_, _, _) -> None
  in
  go off len

let write_all fd buf : (unit, error) result =
  let rec go off len =
    if len = 0 then Ok ()
    else
      match Unix.write fd buf off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error (_, _, _) -> Error Closed
  in
  go 0 (Bytes.length buf)

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

(** Send one frame whose payload is already JSON text. Header and
    payload go out in a single [write] — one syscall, and no chance of
    another thread's frame landing between them. [Error Closed] if the
    peer is gone (the caller decides whether that matters). *)
let write_string (fd : Unix.file_descr) (payload : string) :
    (unit, error) result =
  let n = String.length payload in
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  write_all fd buf

(** Serialize and send one frame. [Error Closed] if the peer is gone
    (the caller decides whether that matters). *)
let write (fd : Unix.file_descr) (j : Json.t) : (unit, error) result =
  write_string fd (Json.to_string j)

(** Wait (≤0.2 s at a time) until [fd] is readable, re-asking
    [should_stop] between polls so an idle connection notices a drain.
    Once the first byte of a frame has been read the frame is always
    finished: stopping only happens at frame boundaries. *)
let rec wait_readable fd ~(should_stop : unit -> bool) : (unit, error) result =
  if should_stop () then Error Stopped
  else
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> wait_readable fd ~should_stop
    | _ -> Ok ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      wait_readable fd ~should_stop

(** Receive one frame. Blocks until a frame arrives, the peer hangs up,
    or [should_stop] turns true between frames. *)
let read ?(max_payload = max_payload) ?(should_stop = fun () -> false)
    (fd : Unix.file_descr) : (Json.t, error) result =
  match wait_readable fd ~should_stop with
  | Error e -> Error e
  | Ok () -> (
    let header = Bytes.create 4 in
    match read_exactly fd header 0 4 with
    | None -> Error Closed
    | Some () -> (
      let n = Int32.to_int (Bytes.get_int32_be header 0) in
      if n < 0 then Error (Bad_length n)
      else if n > max_payload then
        Error (Oversized { size = n; limit = max_payload })
      else
        let payload = Bytes.create n in
        match read_exactly fd payload 0 n with
        | None -> Error Closed
        | Some () -> (
          match
            Json.parse_result ~max_size:max_payload
              (Bytes.unsafe_to_string payload)
          with
          | Ok j -> Ok j
          | Error e -> Error (Malformed e))))
