(** Live observability for the certification daemon: request counters by
    kind and status, dedup accounting, and request-latency histograms,
    all cheap enough to bump on every request and snapshot on demand
    (the [metrics] protocol request and [casc serve --stats]).

    Latencies go into a log₂-bucketed histogram over microseconds:
    bucket [i] holds latencies in [[2^i, 2^(i+1)) µs], so 48 buckets
    cover nanoseconds to days and a quantile read is a single cumulative
    scan. Quantiles are reported as the upper bound of the bucket they
    land in — a ≤2× overestimate, which is the right bias for a latency
    gate. All counters sit behind one mutex: a request touches it twice
    (admission, completion), which is noise next to even a cache-hit
    certify. *)

let buckets = 48

type t = {
  lock : Mutex.t;
  started_at : float;  (** [Unix.gettimeofday] at creation, for uptime *)
  by_kind : (string, int ref) Hashtbl.t;
  mutable ok : int;
  mutable errors : int;  (** requests answered with a structured error *)
  mutable overloaded : int;  (** rejected by admission control *)
  mutable rejected_draining : int;  (** rejected because shutting down *)
  mutable bad_frames : int;  (** malformed/oversized frames *)
  hist : int array;
  mutable lat_count : int;
  mutable lat_max_ns : int;
}

let create () : t =
  {
    lock = Mutex.create ();
    started_at = Unix.gettimeofday ();
    by_kind = Hashtbl.create 8;
    ok = 0;
    errors = 0;
    overloaded = 0;
    rejected_draining = 0;
    bad_frames = 0;
    hist = Array.make buckets 0;
    lat_count = 0;
    lat_max_ns = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  let r = f () in
  Mutex.unlock t.lock;
  r

(** Count an arriving request of [kind] (before any verdict on it). *)
let record_request (t : t) ~(kind : string) : unit =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.by_kind kind with
      | Some r -> incr r
      | None -> Hashtbl.add t.by_kind kind (ref 1))

type status = Ok_ | Error_ | Overloaded | Draining

let bucket_of_ns ns =
  let us = max 0 ns / 1000 in
  let rec go i v = if v <= 1 || i = buckets - 1 then i else go (i + 1) (v / 2) in
  go 0 us

(** Count a finished (or rejected) request and its wall-clock latency
    from frame arrival to response write. *)
let record_result (t : t) (st : status) ~(latency_ns : int) : unit =
  with_lock t (fun () ->
      (match st with
      | Ok_ -> t.ok <- t.ok + 1
      | Error_ -> t.errors <- t.errors + 1
      | Overloaded -> t.overloaded <- t.overloaded + 1
      | Draining -> t.rejected_draining <- t.rejected_draining + 1);
      t.hist.(bucket_of_ns latency_ns) <- t.hist.(bucket_of_ns latency_ns) + 1;
      t.lat_count <- t.lat_count + 1;
      t.lat_max_ns <- max t.lat_max_ns latency_ns)

let record_bad_frame (t : t) : unit =
  with_lock t (fun () -> t.bad_frames <- t.bad_frames + 1)

(** Latency at quantile [q] ∈ (0,1], in ns (bucket upper bound). *)
let quantile (t : t) (q : float) : int =
  with_lock t (fun () ->
      if t.lat_count = 0 then 0
      else begin
        let target =
          max 1 (int_of_float (ceil (q *. float_of_int t.lat_count)))
        in
        let rec go i acc =
          if i >= buckets then t.lat_max_ns
          else
            let acc = acc + t.hist.(i) in
            if acc >= target then
              (* upper bound of bucket i, capped by the observed max *)
              min t.lat_max_ns ((1 lsl (i + 1)) * 1000)
            else go (i + 1) acc
        in
        go 0 0
      end)

type snapshot = {
  uptime_ns : int;
  requests_total : int;  (** every request that got a response *)
  requests_ok : int;
  requests_error : int;
  requests_overloaded : int;
  requests_draining : int;
  bad_frames : int;
  by_kind : (string * int) list;  (** sorted by kind name *)
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  max_ns : int;
}

let snapshot (t : t) : snapshot =
  let p50 = quantile t 0.50
  and p95 = quantile t 0.95
  and p99 = quantile t 0.99 in
  with_lock t (fun () ->
      {
        uptime_ns =
          int_of_float ((Unix.gettimeofday () -. t.started_at) *. 1e9);
        requests_total = t.ok + t.errors + t.overloaded + t.rejected_draining;
        requests_ok = t.ok;
        requests_error = t.errors;
        requests_overloaded = t.overloaded;
        requests_draining = t.rejected_draining;
        bad_frames = t.bad_frames;
        by_kind =
          Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.by_kind []
          |> List.sort compare;
        p50_ns = p50;
        p95_ns = p95;
        p99_ns = p99;
        max_ns = t.lat_max_ns;
      })

(** The cache tiers' hit/miss/disk-hit counters as JSON rows, with a
    percent hit rate (integer: our JSON is integer-only by design). *)
let cache_rows () : Cas_diag.Json.t =
  let open Cas_diag.Json in
  List
    (List.map
       (fun (s : Cas_compiler.Cache.stats) ->
         let total = s.Cas_compiler.Cache.hits + s.Cas_compiler.Cache.misses in
         Obj
           [
             ("store", Str s.Cas_compiler.Cache.name);
             ("hits", Int s.Cas_compiler.Cache.hits);
             ("disk_hits", Int s.Cas_compiler.Cache.disk_hits);
             ("misses", Int s.Cas_compiler.Cache.misses);
             ( "hit_rate_pct",
               Int
                 (if total = 0 then 0
                  else 100 * s.Cas_compiler.Cache.hits / total) );
           ])
       (Cas_compiler.Cache.global_stats ()))

(** Full metrics document, as served to [metrics] requests and dumped by
    [casc serve --stats]. [extra] lets the daemon append scheduler-level
    gauges (queue depth, worker utilization, dedup counters). *)
let to_json (t : t) ~(extra : (string * Cas_diag.Json.t) list) :
    Cas_diag.Json.t =
  let open Cas_diag.Json in
  let s = snapshot t in
  let lat_count = with_lock t (fun () -> t.lat_count) in
  Obj
    ([
       ("version", Str Cas_base.Version.v);
       ("uptime_ns", Int s.uptime_ns);
       ( "requests",
         Obj
           ([
              ("total", Int s.requests_total);
              ("ok", Int s.requests_ok);
              ("error", Int s.requests_error);
              ("overloaded", Int s.requests_overloaded);
              ("draining", Int s.requests_draining);
              ("bad_frames", Int s.bad_frames);
            ]
           @ List.map (fun (k, n) -> ("kind_" ^ k, Int n)) s.by_kind) );
       ( "latency_ns",
         Obj
           [
             ("count", Int lat_count);
             ("p50", Int s.p50_ns);
             ("p95", Int s.p95_ns);
             ("p99", Int s.p99_ns);
             ("max", Int s.max_ns);
           ] );
       ("cache", cache_rows ());
     ]
    @ extra)
