(** The in-flight dedup table: identical jobs share one execution.

    Keys are content digests of the request (the same content-addressing
    the certificate cache uses — [Cas_compiler.Cache.digest] over the
    request's semantic fields), so "identical" means *semantically
    identical input*, not same client or same connection. The first
    arrival of a key becomes the leader and actually executes; every
    later arrival while the leader is still in flight is *coalesced*: it
    parks a callback and gets the leader's result fanned out to it. This
    is what turns a thundering herd of N identical certify requests into
    one checker run and N responses.

    The table only covers the in-flight window — once a job completes,
    its key leaves the table and the scheduler's *response memo* (whole
    results, same keys) and the *certificate cache* (per-function
    verdicts, cross-restart) take over as the completed-work dedup
    tiers. The layers are keyed compatibly by construction. *)

type 'r t = {
  lock : Mutex.t;
  tbl : (string, ('r -> unit) list ref) Hashtbl.t;
  coalesced : int Atomic.t;  (** total followers that shared a leader *)
  executed : int Atomic.t;  (** total leaders (distinct executions) *)
}

let create () : 'r t =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 64;
    coalesced = Atomic.make 0;
    executed = Atomic.make 0;
  }

(** Join the job for [key]. [`Leader] means the caller must execute the
    job and later call [complete]; [`Coalesced] means [callback] will be
    invoked by the leader's [complete]. *)
let join (t : 'r t) ~(key : string) (callback : 'r -> unit) :
    [ `Leader | `Coalesced ] =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tbl key with
  | Some waiters ->
    waiters := callback :: !waiters;
    Mutex.unlock t.lock;
    Atomic.incr t.coalesced;
    `Coalesced
  | None ->
    Hashtbl.add t.tbl key (ref [ callback ]);
    Mutex.unlock t.lock;
    Atomic.incr t.executed;
    `Leader

(** Deliver the leader's result to every waiter of [key] (in arrival
    order) and retire the key. Returns the fan-out count. Callbacks run
    outside the table lock — they write response frames. *)
let complete (t : 'r t) ~(key : string) (result : 'r) : int =
  Mutex.lock t.lock;
  let waiters =
    match Hashtbl.find_opt t.tbl key with
    | Some w ->
      Hashtbl.remove t.tbl key;
      List.rev !w
    | None -> []
  in
  Mutex.unlock t.lock;
  List.iter (fun cb -> cb result) waiters;
  List.length waiters

(** Is [key] currently in flight? (Advisory: the answer can change the
    moment the lock is released — the scheduler serializes [inflight_key]
    and [join] under its own lock to make the pair atomic.) *)
let inflight_key (t : _ t) (key : string) : bool =
  Mutex.lock t.lock;
  let b = Hashtbl.mem t.tbl key in
  Mutex.unlock t.lock;
  b

(** Keys currently in flight. *)
let inflight (t : _ t) : int =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let coalesced_total (t : _ t) : int = Atomic.get t.coalesced
let executed_total (t : _ t) : int = Atomic.get t.executed
