(** The certification service protocol: versioned request/response
    documents carried in [Frame]s.

    A request is [{ "v": <tool version>, "id": <client-chosen int>,
    "kind": <string>, ...kind-specific fields }]. Sources and object
    files travel *by content*, not by path — the daemon never touches
    the client's filesystem, and content-addressing (dedup, certificate
    cache) falls out for free. A response echoes the id:
    [{ "v", "id", "status": "ok"|"error"|"overloaded"|"draining",
    "payload": {...} }]. Decoding is total: anything malformed comes
    back as [Error], never an exception — the daemon feeds this decoder
    bytes from the network. *)

module Json = Cas_diag.Json

type kind =
  | Ping
  | Compile of { source : string }
      (** compile to x86; payload carries the asm rendering and digest *)
  | Certify of { source : string }
      (** run/fetch the per-pass simulation verdicts *)
  | Link of { objects : string list; entries : string list; certify : bool }
      (** [objects] are .cao file *contents* *)
  | Drf of { source : string; entries : string list; with_lock : bool }
  | Tso of { source : string; entries : string list }
  | Metrics
  | Shutdown

type request = { id : int; kind : kind }

let kind_name = function
  | Ping -> "ping"
  | Compile _ -> "compile"
  | Certify _ -> "certify"
  | Link _ -> "link"
  | Drf _ -> "drf"
  | Tso _ -> "tso"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

(** Content digest of a request's *semantic* fields — the dedup key.
    Deliberately excludes the client-chosen [id]: two clients asking to
    certify the same source are the same job. The digest construction
    matches the certificate cache's ([Cas_compiler.Cache.digest] over
    pure data), so in-flight dedup and cross-request caching agree on
    what "identical" means. *)
let request_key (r : request) : string =
  let tag =
    match r.kind with
    | Ping -> `P
    | Compile { source } -> `C source
    | Certify { source } -> `V source
    | Link { objects; entries; certify } -> `L (objects, entries, certify)
    | Drf { source; entries; with_lock } -> `D (source, entries, with_lock)
    | Tso { source; entries } -> `T (source, entries)
    | Metrics -> `M
    | Shutdown -> `S
  in
  Cas_compiler.Cache.digest tag

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let encode_request (r : request) : Json.t =
  let open Json in
  let base = [ ("v", Str Cas_base.Version.v); ("id", Int r.id) ] in
  let fields =
    match r.kind with
    | Ping | Metrics | Shutdown -> []
    | Compile { source } | Certify { source } -> [ ("source", Str source) ]
    | Link { objects; entries; certify } ->
      [
        ("objects", List (List.map (fun o -> Str o) objects));
        ("entries", List (List.map (fun e -> Str e) entries));
        ("certify", Bool certify);
      ]
    | Drf { source; entries; with_lock } ->
      [
        ("source", Str source);
        ("entries", List (List.map (fun e -> Str e) entries));
        ("with_lock", Bool with_lock);
      ]
    | Tso { source; entries } ->
      [
        ("source", Str source);
        ("entries", List (List.map (fun e -> Str e) entries));
      ]
  in
  Obj (base @ [ ("kind", Str (kind_name r.kind)) ] @ fields)

(** The id of a (possibly malformed) request document, for error
    responses that can still be correlated; [-1] when unrecoverable. *)
let peek_id (j : Json.t) : int =
  match Json.member_opt "id" j with Some (Json.Int n) -> n | _ -> -1

let decode_request (j : Json.t) : (request, string) result =
  let open Json in
  decode
    (fun j ->
      (match member "v" j with
      | Str v when v = Cas_base.Version.v -> ()
      | Str v ->
        decode_fail "version mismatch: request %s, server %s" v
          Cas_base.Version.v
      | _ -> decode_fail "expected string field \"v\"");
      let id = to_int_exn (member "id" j) in
      let str k = to_str_exn (member k j) in
      let strs k = List.map to_str_exn (to_list_exn (member k j)) in
      let kind =
        match to_str_exn (member "kind" j) with
        | "ping" -> Ping
        | "compile" -> Compile { source = str "source" }
        | "certify" -> Certify { source = str "source" }
        | "link" ->
          Link
            {
              objects = strs "objects";
              entries = strs "entries";
              certify = to_bool_exn (member "certify" j);
            }
        | "drf" ->
          Drf
            {
              source = str "source";
              entries = strs "entries";
              with_lock = to_bool_exn (member "with_lock" j);
            }
        | "tso" -> Tso { source = str "source"; entries = strs "entries" }
        | "metrics" -> Metrics
        | "shutdown" -> Shutdown
        | k -> decode_fail "unknown request kind %S" k
      in
      { id; kind })
    j

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type status = Sok | Serror | Soverloaded | Sdraining

let status_name = function
  | Sok -> "ok"
  | Serror -> "error"
  | Soverloaded -> "overloaded"
  | Sdraining -> "draining"

type response = { rid : int; status : status; payload : Json.t }

let encode_response (r : response) : Json.t =
  Json.Obj
    [
      ("v", Json.Str Cas_base.Version.v);
      ("id", Json.Int r.rid);
      ("status", Json.Str (status_name r.status));
      ("payload", r.payload);
    ]

(** Serialize a response whose payload is *already JSON text* — the
    encode-once half of result fan-out: a job's payload is rendered to
    bytes one time and every waiter's response frame just blits it in.
    Produces a document [decode_response] accepts. *)
let encode_response_raw ~(rid : int) ~(status : status) ~(payload : string) :
    string =
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b "{\"v\": \"";
  Buffer.add_string b Cas_base.Version.v;
  Buffer.add_string b "\", \"id\": ";
  Buffer.add_string b (string_of_int rid);
  Buffer.add_string b ", \"status\": \"";
  Buffer.add_string b (status_name status);
  Buffer.add_string b "\", \"payload\": ";
  Buffer.add_string b payload;
  Buffer.add_char b '}';
  Buffer.contents b

let decode_response (j : Json.t) : (response, string) result =
  let open Json in
  decode
    (fun j ->
      let rid = to_int_exn (member "id" j) in
      let status =
        match to_str_exn (member "status" j) with
        | "ok" -> Sok
        | "error" -> Serror
        | "overloaded" -> Soverloaded
        | "draining" -> Sdraining
        | s -> decode_fail "unknown status %S" s
      in
      { rid; status; payload = member "payload" j })
    j

(** A structured error payload ([status <> Sok] responses). *)
let error_payload (msg : string) : Json.t =
  Json.Obj [ ("message", Json.Str msg) ]

let payload_message (p : Json.t) : string =
  match Json.member_opt "message" p with
  | Some (Json.Str m) -> m
  | _ -> "(no message)"

(** The rendered human-readable text of an ok payload — for compile,
    certify, drf and tso this is byte-identical to what the one-shot
    [casc] command prints for the same input. *)
let payload_text (p : Json.t) : string =
  match Json.member_opt "text" p with Some (Json.Str t) -> t | _ -> ""

let payload_bool (key : string) (p : Json.t) : bool =
  match Json.member_opt key p with Some (Json.Bool b) -> b | _ -> false
