(** The extended framework (Fig. 3): object simulation π_o ≼ᵒ γ_o and the
    strengthened DRF-guarantee theorem (Lem. 16 / Thm. 15), as empirical
    checks.

    - [check_object_sim] exercises the x86-TSO object implementation
      against its CImp specification entry by entry: starting from every
      abstract object state, each operation must complete with a related
      return value and leave a related object state once its buffer has
      drained (or both sides must block, as lock() does on a held lock).
      This is the executable face of π_o ≼ᵒ γ_o.
    - [check_drf_guarantee] is Lem. 16: for a whole program, the traces of
      the all-x86 program with the racy object under TSO are included in
      the traces of the program with the abstract object under SC. *)

open Cas_base
open Cas_langs
open Cas_conc

(* ------------------------------------------------------------------ *)
(* Lemma 16: whole-program TSO-vs-SC refinement                        *)
(* ------------------------------------------------------------------ *)

type guarantee_report = {
  holds : bool;
  detail : string;
  tso_traces : Explore.TraceSet.t;
  sc_traces : Explore.TraceSet.t;
  missing : Explore.trace list;
      (** TSO traces unmatched under SC — the refinement counterexamples
          [Cas_diag] renders when the guarantee fails *)
}

let pp_guarantee ppf r =
  Fmt.pf ppf "%s — %s"
    (if r.holds then "holds" else "FAILS")
    r.detail

(** [check_drf_guarantee ~clients ~pi ~gamma ~entries]: the program
    Π^tso = clients + π under x86-TSO refines Π^sc = clients + γ under SC
    (clients are x86 modules, γ is a CImp module). [engine] selects the
    exploration engine on both sides (comparing completed traces and
    abort reachability, which every engine preserves). *)
let check_drf_guarantee ?(max_steps = 3000) ?(max_paths = 150_000) ?engine
    ?jobs ~(clients : Asm.program list) ~(pi : Asm.program)
    ~(gamma : Cimp.program) ~(entries : string list) () : guarantee_report =
  let fail detail =
    {
      holds = false;
      detail;
      tso_traces = Explore.TraceSet.empty;
      sc_traces = Explore.TraceSet.empty;
      missing = [];
    }
  in
  match Tso.load (clients @ [ pi ]) entries with
  | Error e -> fail (Fmt.str "TSO load: %a" World.pp_load_error e)
  | Ok w_tso -> (
    let sc_prog =
      Lang.prog
        (List.map (fun c -> Lang.Mod (Asm.lang, c)) clients
        @ [ Lang.Mod (Cimp.lang, gamma) ])
        entries
    in
    match World.load sc_prog ~args:[] with
    | Error e -> fail (Fmt.str "SC load: %a" World.pp_load_error e)
    | Ok w_sc ->
      let t_tso = Tso.traces ?engine ?jobs ~max_steps ~max_paths w_tso in
      let t_sc =
        fst (Engine.traces ?engine ?jobs ~max_steps ~max_paths w_sc)
      in
      let r = Refine.refines ~lhs:t_tso ~rhs:t_sc in
      {
        holds = r.Refine.holds;
        detail =
          Fmt.str "%a (tso: %d traces%s, sc: %d traces%s)" Refine.pp_report r
            (Explore.TraceSet.cardinal t_tso.Explore.traces)
            (if t_tso.Explore.complete then "" else "*")
            (Explore.TraceSet.cardinal t_sc.Explore.traces)
            (if t_sc.Explore.complete then "" else "*");
        tso_traces = t_tso.Explore.traces;
        sc_traces = t_sc.Explore.traces;
        missing = r.Refine.missing;
      })

(* ------------------------------------------------------------------ *)
(* Module-local object simulation π_o ≼ᵒ γ_o                           *)
(* ------------------------------------------------------------------ *)

type obj_sim_report = {
  entry : string;
  init_state : int;
  ok : bool;
  reason : string;
}

let pp_obj_sim ppf r =
  Fmt.pf ppf "%-8s L=%d: %s%s" r.entry r.init_state
    (if r.ok then "ok" else "FAIL")
    (if r.reason = "" then "" else " — " ^ r.reason)

(** Outcomes of running one object operation as a single thread. *)
type op_result =
  | Completes of Value.t * int list  (** return value, final object cells *)
  | Blocks  (** no terminating execution within bound, e.g. lock() on a
                held lock *)
  | Aborts

let object_cells genv mem =
  (* all Object-permission cells, in address order *)
  Memory.dom mem |> Addr.Set.elements
  |> List.filter_map (fun a ->
         match Memory.perm_of_block mem a.Addr.block with
         | Some Perm.Object -> (
           match Memory.peek mem a with
           | Some (Value.Vint n) -> Some n
           | _ -> Some min_int)
         | _ -> None)
  |> fun cells ->
  ignore genv;
  cells

(** Run [entry] of the TSO object as a single thread from lock state
    [l0], draining buffers at the end. *)
let run_pi (pi : Asm.program) ~entry ~l0 ~bound : op_result list =
  let pi =
    {
      pi with
      Asm.globals =
        List.map
          (fun (g : Genv.gvar) ->
            if g.Genv.gname = "L" then
              { g with Genv.ginit = [ Genv.Iint l0 ] }
            else g)
          pi.Asm.globals;
    }
  in
  match Tso.load [ pi ] [ entry ] with
  | Error _ -> [ Aborts ]
  | Ok w0 ->
    let results = ref [] in
    let seen = Hashtbl.create 64 in
    let rec go w depth =
      let fp = Tso.fingerprint w in
      if Hashtbl.mem seen fp || depth > bound then ()
      else begin
        Hashtbl.add seen fp ();
        if Tso.all_done w then
          results := Completes (Value.Vint 0, object_cells w.Tso.genv w.Tso.mem) :: !results
        else
          List.iter
            (function
              | Explore.GAbort -> results := Aborts :: !results
              | Explore.GNext (_, w') -> go w' (depth + 1))
            (Tso.steps w)
      end
    in
    go w0 0;
    if !results = [] then [ Blocks ] else !results

(** Run [entry] of the CImp specification as a single thread under SC. *)
let run_gamma (gamma : Cimp.program) ~entry ~l0 ~bound : op_result list =
  let gamma =
    {
      gamma with
      Cimp.globals =
        List.map
          (fun (g : Genv.gvar) ->
            if g.Genv.gname = "L" then { g with Genv.ginit = [ Genv.Iint l0 ] }
            else g)
          gamma.Cimp.globals;
    }
  in
  let prog = Lang.prog [ Lang.Mod (Cimp.lang, gamma) ] [ entry ] in
  match World.load prog ~args:[] with
  | Error _ -> [ Aborts ]
  | Ok w0 ->
    let results = ref [] in
    let seen = Hashtbl.create 64 in
    let sys = Explore.world_system Preemptive.steps in
    let rec go w depth =
      let fp = World.fingerprint w in
      if Hashtbl.mem seen fp || depth > bound then ()
      else begin
        Hashtbl.add seen fp ();
        if World.all_done w then
          results :=
            Completes (Value.Vint 0, object_cells w.World.genv w.World.mem)
            :: !results
        else
          List.iter
            (function
              | Explore.GAbort -> results := Aborts :: !results
              | Explore.GNext (_, w') -> go w' (depth + 1))
            (sys.Explore.steps w)
      end
    in
    go w0 0;
    if !results = [] then [ Blocks ] else !results

let results_match (pi_rs : op_result list) (g_rs : op_result list) : bool =
  (* every π outcome must be matched by a γ outcome *)
  List.for_all
    (fun pr ->
      List.exists
        (fun gr ->
          match (pr, gr) with
          | Completes (_, s1), Completes (_, s2) -> s1 = s2
          | Blocks, Blocks -> true
          | Aborts, Aborts -> true
          | _ -> false)
        g_rs)
    pi_rs

(** Check π_o ≼ᵒ γ_o entry by entry from every abstract object state. *)
let check_object_sim ?(bound = 400) ~(pi : Asm.program)
    ~(gamma : Cimp.program) ~(entries : (string * int list) list) () :
    obj_sim_report list =
  List.concat_map
    (fun (entry, states) ->
      List.map
        (fun l0 ->
          let pi_rs = run_pi pi ~entry ~l0 ~bound in
          let g_rs = run_gamma gamma ~entry ~l0 ~bound in
          let ok = results_match pi_rs g_rs in
          {
            entry;
            init_state = l0;
            ok;
            reason =
              (if ok then ""
               else
                 Fmt.str "π outcomes %d vs γ outcomes %d unmatched"
                   (List.length pi_rs) (List.length g_rs));
          })
        states)
    entries
