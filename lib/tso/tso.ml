(** The x86-TSO machine (§7.3, following Sewell et al.'s x86-TSO model):
    each hardware thread owns a FIFO store buffer. Stores are buffered;
    loads read the youngest buffered write to the same address, falling
    back to memory; lock-prefixed instructions and fences require an empty
    buffer; buffered writes drain to memory at nondeterministic points.

    The machine runs whole programs of x86 modules (the P^rmm of Fig. 3).
    Frame allocations and frame-private accesses bypass the buffer: they
    are thread-local, so buffering them is unobservable (documented
    simplification). *)

open Cas_base
open Cas_langs

module IMap = Map.Make (Int)

type buffer = (Addr.t * Value.t) list  (** oldest first *)

type thread = {
  tid : int;
  flist : Flist.t;
  stack : Asm.core list;
  buf : buffer;
  fhashes : (int * int) list;
      (** memoized hash of each stack frame (same order): only the frame a
          step replaces is rehashed; buffers are short and hashed fresh *)
}

type world = {
  threads : thread IMap.t;
  cur : int;
  mem : Memory.t;
  genv : Genv.t;
  modules : Asm.program list;
}

type load_error = Cas_conc.World.load_error

(** Two-lane hash of one frame, in [Asm.fingerprint_core]'s classes. *)
let core_hash (c : Asm.core) =
  let st = Hashx.create () in
  Asm.hash_core st c;
  Hashx.out st

let load (modules : Asm.program list) (entries : string list) :
    (world, load_error) result =
  match
    Lang.duplicate_def (List.map (fun p -> Lang.Mod (Asm.lang, p)) modules)
  with
  | Some f -> Error (Cas_conc.World.Duplicate_fundef f)
  | None ->
  match Genv.link (List.map (fun (p : Asm.program) -> p.Asm.globals) modules) with
  | Error n -> Error (Cas_conc.World.Incompatible_globals n)
  | Ok genv ->
    let mem = Genv.init_memory genv in
    if not (Memory.closed mem) then Error Cas_conc.World.Not_closed
    else
      let n = List.length entries in
      let flists = Flist.partition ~globals:(Genv.block_count genv) n in
      let resolve entry =
        List.find_map
          (fun p -> Asm.init_core ~genv p ~entry ~args:[])
          modules
      in
      let rec build tid entries flists acc =
        match (entries, flists) with
        | [], _ -> Ok acc
        | e :: es, fl :: fls -> (
          match resolve e with
          | None -> Error (Cas_conc.World.Unresolved_entry e)
          | Some core ->
            build (tid + 1) es fls
              (IMap.add tid
                 {
                   tid;
                   flist = fl;
                   stack = [ core ];
                   buf = [];
                   fhashes = [ core_hash core ];
                 }
                 acc))
        | _ -> assert false
      in
      (match build 1 entries flists IMap.empty with
      | Error e -> Error e
      | Ok threads -> Ok { threads; cur = 1; mem; genv; modules })

let thread_done t = t.stack = [] && t.buf = []

let live_tids w =
  IMap.fold
    (fun tid t acc -> if t.stack = [] then acc else tid :: acc)
    w.threads []
  |> List.rev

let all_done w = IMap.for_all (fun _ t -> thread_done t) w.threads

(** Fingerprint without the scheduler choice [cur]: the state key of the
    thread-selection view explored by the DPOR engines ([mc_system]). *)
let fingerprint_nocur w =
  let buf = Buffer.create 256 in
  IMap.iter
    (fun tid t ->
      Buffer.add_string buf (string_of_int tid);
      Buffer.add_char buf ':';
      List.iter
        (fun c ->
          Buffer.add_string buf (Asm.fingerprint_core c);
          Buffer.add_char buf '/')
        t.stack;
      Buffer.add_char buf '[';
      List.iter
        (fun (a, v) ->
          Buffer.add_string buf (Addr.to_string a);
          Buffer.add_char buf '=';
          Buffer.add_string buf (Value.to_string v);
          Buffer.add_char buf ',')
        t.buf;
      Buffer.add_char buf ']')
    w.threads;
  Buffer.add_string buf (Memory.fingerprint w.mem);
  Buffer.contents buf

let fingerprint w = string_of_int w.cur ^ fingerprint_nocur w

(** Cheap fixed-width state keys in the fingerprints' equivalence classes
    (cf. [Cas_conc.World.key]): memoized frame hashes, the store buffers,
    and the memory's incremental hash. [Fpmode.paranoid] falls back to
    the collision-free strings. *)
let key_stream w =
  let st = Hashx.create () in
  IMap.iter
    (fun tid t ->
      Hashx.int st tid;
      List.iter
        (fun (h1, h2) ->
          Hashx.int st h1;
          Hashx.int st h2)
        t.fhashes;
      Hashx.char st '[';
      List.iter
        (fun ((a : Addr.t), v) ->
          Hashx.int st a.Addr.block;
          Hashx.int st a.Addr.ofs;
          Hashx.int st (Value.hash v))
        t.buf;
      Hashx.char st ']')
    w.threads;
  let mh1, mh2 = Memory.hash w.mem in
  Hashx.int st mh1;
  Hashx.int st mh2;
  st

let key_nocur w =
  if Fpmode.paranoid () then fingerprint_nocur w
  else Hashx.key_of (Hashx.out (key_stream w))

let key w =
  if Fpmode.paranoid () then fingerprint w
  else begin
    let st = key_stream w in
    Hashx.int st w.cur;
    Hashx.key_of (Hashx.out st)
  end

(* ------------------------------------------------------------------ *)
(* TSO-visible memory                                                  *)
(* ------------------------------------------------------------------ *)

(** Read through the thread's own store buffer (youngest entry wins),
    falling back to memory. *)
let read_buffered (buf : buffer) mem ~perm a =
  let rec newest = function
    | [] -> None
    | (a', v) :: rest -> (
      match newest rest with
      | Some v -> Some v
      | None -> if Addr.equal a a' then Some v else None)
  in
  match newest buf with
  | Some v -> Ok v
  | None -> Memory.load ~perm mem a

(* ------------------------------------------------------------------ *)
(* Steps                                                               *)
(* ------------------------------------------------------------------ *)

type succ = world Cas_conc.Explore.gsucc

let set_thread w t = { w with threads = IMap.add t.tid t w.threads }

let set_top w t core =
  match (t.stack, t.fhashes) with
  | [], _ | _, [] -> invalid_arg "Tso.set_top"
  | _ :: rest, _ :: hrest ->
    set_thread w
      { t with stack = core :: rest; fhashes = core_hash core :: hrest }

let pop_frame w (t : thread) (v : Value.t) : world option =
  match t.stack with
  | [] -> None
  | _ :: [] -> Some (set_thread w { t with stack = []; fhashes = [] })
  | _ :: caller :: rest -> (
    match Asm.after_external caller (Some v) with
    | None -> None
    | Some caller' ->
      let hrest =
        match t.fhashes with _ :: _ :: hs -> hs | _ -> assert false
      in
      Some
        (set_thread w
           {
             t with
             stack = caller' :: rest;
             fhashes = core_hash caller' :: hrest;
           }))

let resolve_call w f args =
  List.find_map (fun p -> Asm.init_core ~genv:w.genv p ~entry:f ~args) w.modules

(** One instruction of thread [tid] under TSO, with the footprint of the
    step. Buffered stores carry the write footprint of their address even
    though memory is only touched at drain time: ordering the buffering
    against other threads' accesses over-approximates dependence, which
    is the sound direction for the DPOR engines (loads through the own
    buffer likewise keep their read footprint). *)
let local_trans (w : world) (tid : int) : world Cas_mc.Mcsys.trans list =
  let abort =
    {
      Cas_mc.Mcsys.tid;
      label = Cas_mc.Mcsys.Ltau;
      fp = Footprint.empty;
      target = Cas_mc.Mcsys.Abort;
    }
  in
  let next ?(fp = Footprint.empty) ?(label = Cas_mc.Mcsys.Ltau) w' =
    { Cas_mc.Mcsys.tid; label; fp; target = Cas_mc.Mcsys.Next w' }
  in
  match IMap.find_opt tid w.threads with
  | None -> []
  | Some t -> (
    match t.stack with
    | [] -> []
    | (c : Asm.core) :: _ ->
      if c.Asm.waiting <> None then []
      else if c.Asm.need_frame then
        (* frame allocation: direct, private *)
        (match Asm.step t.flist c w.mem with
        | [ Lang.Next (Msg.Tau, fp, c', m') ] ->
          [ next ~fp (set_top { w with mem = m' } t c') ]
        | _ -> [ abort ])
      else if c.Asm.pc < 0 || c.Asm.pc >= Array.length c.Asm.code then
        [ abort ]
      else
        let perm = Asm.data_perm c in
        let advance ?(regs = c.Asm.regs) ?(flags = c.Asm.flags) () =
          { c with Asm.pc = c.Asm.pc + 1; regs; flags }
        in
        let i = c.Asm.code.(c.Asm.pc) in
        match i with
        | Asm.Pstore (d, ofs, s) -> (
          (* buffered store; permission checked eagerly *)
          match Asm.addr_plus (Asm.reg_val c d) ofs with
          | Some a -> (
            match Memory.load ~perm w.mem a with
            | Error (Memory.Unmapped _) -> [ abort ]
            | Error (Memory.Out_of_bounds _) -> [ abort ]
            | Error (Memory.Perm_mismatch _) -> [ abort ]
            | Ok _ ->
              let t' = { t with buf = t.buf @ [ (a, Asm.reg_val c s) ] } in
              [
                next ~fp:(Footprint.write1 a)
                  (set_top (set_thread w t') t' (advance ()));
              ])
          | None -> [ abort ])
        | Asm.Pload (d, s, ofs) -> (
          match Asm.addr_plus (Asm.reg_val c s) ofs with
          | Some a -> (
            match read_buffered t.buf w.mem ~perm a with
            | Ok v ->
              [
                next ~fp:(Footprint.read1 a)
                  (set_top w t (advance ~regs:(Mreg.Map.add d v c.Asm.regs) ()));
              ]
            | Error _ -> [ abort ])
          | None -> [ abort ])
        | Asm.Plock_cmpxchg (ra, rs) -> (
          (* locked instruction: fence semantics — buffer must be empty *)
          if t.buf <> [] then []
          else
            match Asm.reg_val c ra with
            | Value.Vptr a -> (
              match Memory.load ~perm w.mem a with
              | Error _ -> [ abort ]
              | Ok old ->
                let fp =
                  Footprint.union (Footprint.read1 a) (Footprint.write1 a)
                in
                let ax = Asm.reg_val c Mreg.AX in
                let flags = Some (ax, old) in
                if Value.equal ax old then (
                  match Memory.store ~perm w.mem a (Asm.reg_val c rs) with
                  | Ok m' ->
                    [ next ~fp (set_top { w with mem = m' } t (advance ~flags ())) ]
                  | Error _ -> [ abort ])
                else
                  [
                    next ~fp
                      (set_top w t
                         (advance ~flags
                            ~regs:(Mreg.Map.add Mreg.AX old c.Asm.regs)
                            ()));
                  ])
            | _ -> [ abort ])
        | Asm.Pmfence ->
          if t.buf <> [] then [] else [ next (set_top w t (advance ())) ]
        | _ -> (
          (* all other instructions do not touch shared memory: delegate
             to the SC interpreter *)
          match Asm.step t.flist c w.mem with
          | [] | [ Lang.Stuck_abort ] -> [ abort ]
          | [ Lang.Next (msg, fp, c', m') ] -> (
            let w = { w with mem = m' } in
            match msg with
            | Msg.Tau -> [ next ~fp (set_top w t c') ]
            | Msg.EntAtom | Msg.ExtAtom ->
              (* only lock-prefixed instructions generate these under the
                 SC interpreter; they are handled above *)
              [ abort ]
            | Msg.Evt e ->
              [ next ~fp ~label:(Cas_mc.Mcsys.Levt e) (set_top w t c') ]
            | Msg.Ret v -> (
              let w' = set_top w t c' in
              let t' = IMap.find tid w'.threads in
              match pop_frame w' t' v with
              | Some w'' -> [ next ~fp w'' ]
              | None -> [ abort ])
            | Msg.Call ("print", [ Value.Vint n ]) -> (
              match Asm.after_external c' None with
              | Some c'' ->
                [
                  next ~fp
                    ~label:(Cas_mc.Mcsys.Levt (Event.Print n))
                    (set_top w t c'');
                ]
              | None -> [ abort ])
            | Msg.TailCall ("print", [ Value.Vint n ]) -> (
              let w' = set_top w t c' in
              let t' = IMap.find tid w'.threads in
              match pop_frame w' t' (Value.Vint 0) with
              | Some w'' ->
                [ next ~fp ~label:(Cas_mc.Mcsys.Levt (Event.Print n)) w'' ]
              | None -> [ abort ])
            | Msg.Call (f, args) -> (
              match resolve_call w f args with
              | Some callee ->
                let w' = set_top w t c' in
                let t' = IMap.find tid w'.threads in
                [
                  next ~fp
                    (set_thread w'
                       {
                         t' with
                         stack = callee :: t'.stack;
                         fhashes = core_hash callee :: t'.fhashes;
                       });
                ]
              | None -> [ abort ])
            | Msg.TailCall (f, args) -> (
              match resolve_call w f args with
              | Some callee ->
                let rest = match t.stack with [] -> [] | _ :: r -> r in
                let hrest =
                  match t.fhashes with [] -> [] | _ :: r -> r
                in
                [
                  next ~fp
                    (set_thread w
                       {
                         t with
                         stack = callee :: rest;
                         fhashes = core_hash callee :: hrest;
                       });
                ]
              | None -> [ abort ]))
          | _ -> [ abort ]))

(** The footprint-erased view of [local_trans], for the historical
    successor-function interface. *)
let local_steps (w : world) (tid : int) : succ list =
  List.map
    (fun (tr : world Cas_mc.Mcsys.trans) ->
      match tr.Cas_mc.Mcsys.target with
      | Cas_mc.Mcsys.Abort -> Cas_conc.Explore.GAbort
      | Cas_mc.Mcsys.Next w' ->
        let g =
          match tr.Cas_mc.Mcsys.label with
          | Cas_mc.Mcsys.Levt e -> Cas_conc.World.Gevt e
          | Cas_mc.Mcsys.Ltau | Cas_mc.Mcsys.Lsw -> Cas_conc.World.Gtau
        in
        Cas_conc.Explore.GNext (g, w'))
    (local_trans w tid)

(** Store-buffer length of thread [tid] (0 for unknown threads). *)
let buffer_len (w : world) (tid : int) : int =
  match IMap.find_opt tid w.threads with
  | None -> 0
  | Some t -> List.length t.buf

(** Did the step [w] → [w'] attributed to [tid] drain that thread's
    buffer? [unbuffer] is the only transition that shrinks a buffer
    (instruction steps only append or leave it alone), so a strictly
    shorter buffer identifies flush steps — [Cas_diag] uses this to mark
    flush points on captured TSO schedules. *)
let is_drain (w : world) (w' : world) (tid : int) : bool =
  buffer_len w' tid < buffer_len w tid

(** Commit the oldest buffered write of thread [tid] to memory. *)
let unbuffer (w : world) (tid : int) : world option =
  match IMap.find_opt tid w.threads with
  | None | Some { buf = []; _ } -> None
  | Some ({ buf = (a, v) :: rest; _ } as t) -> (
    match Memory.perm_of_block w.mem a.Addr.block with
    | None -> None
    | Some perm -> (
      match Memory.store ~perm w.mem a v with
      | Ok m' -> Some (set_thread { w with mem = m' } { t with buf = rest })
      | Error _ -> None))

(** The full TSO transition relation: current-thread instruction steps,
    nondeterministic buffer drains of every thread, and free preemption. *)
let steps (w : world) : succ list =
  let local = local_steps w w.cur in
  let drains =
    IMap.fold
      (fun tid _ acc ->
        match unbuffer w tid with
        | Some w' -> Cas_conc.Explore.GNext (Cas_conc.World.Gtau, w') :: acc
        | None -> acc)
      w.threads []
  in
  let switches =
    live_tids w
    |> List.filter (fun t -> t <> w.cur)
    |> List.map (fun t ->
           Cas_conc.Explore.GNext (Cas_conc.World.Gsw, { w with cur = t }))
  in
  local @ drains @ switches

let system : world Cas_conc.Explore.system =
  { fingerprint = key; all_done; steps }

(** The TSO machine as a footprint-instrumented selection system for the
    DPOR engines: a transition is "thread [t] executes one instruction"
    or "thread [t]'s oldest buffered write drains" (drains belong to the
    buffer's owner and carry the write footprint of the drained address,
    so cross-thread flushes order correctly against loads and stores).
    Explicit switch transitions disappear; [cur] is cosmetic and excluded
    from the state key. *)
let mc_system : world Cas_mc.Mcsys.t =
  {
    Cas_mc.Mcsys.fingerprint = key_nocur;
    all_done;
    trans =
      (fun w ->
        let locals =
          List.concat_map
            (fun tid ->
              List.map
                (fun (tr : world Cas_mc.Mcsys.trans) ->
                  match tr.Cas_mc.Mcsys.target with
                  | Cas_mc.Mcsys.Next w' ->
                    { tr with Cas_mc.Mcsys.target = Cas_mc.Mcsys.Next { w' with cur = tid } }
                  | Cas_mc.Mcsys.Abort -> tr)
                (local_trans w tid))
            (live_tids w)
        in
        let drains =
          IMap.fold
            (fun tid (t : thread) acc ->
              match t.buf with
              | [] -> acc
              | (a, _) :: _ -> (
                match unbuffer w tid with
                | Some w' ->
                  {
                    Cas_mc.Mcsys.tid;
                    label = Cas_mc.Mcsys.Ltau;
                    fp = Footprint.write1 a;
                    target = Cas_mc.Mcsys.Next w';
                  }
                  :: acc
                | None -> acc))
            w.threads []
        in
        locals @ drains);
  }

let initials (w : world) : world list =
  match live_tids w with
  | [] -> [ w ]
  | ts -> List.map (fun t -> { w with cur = t }) ts

(** Trace enumeration with a selectable engine. [Naive] (the default)
    enumerates the historical scheduler-explicit graph; the DPOR engines
    reduce the selection view, which preserves completed traces and abort
    reachability but may cut cycles at different points (so [SCut]
    entries are only comparable between engines on the same view). *)
let mc_traces ?(engine = Cas_mc.Engine.Naive) ?jobs ?max_steps ?max_paths
    ?recorder (w : world) : Cas_conc.Explore.trace_result * Cas_mc.Stats.t =
  match engine with
  | Cas_mc.Engine.Naive ->
    Cas_mc.Engine.traces ?max_steps ?max_paths ?recorder
      (Cas_conc.Explore.to_mc system)
      (initials w)
  | Cas_mc.Engine.Dpor | Cas_mc.Engine.Dpor_par ->
    Cas_mc.Engine.traces ~engine ?jobs ?max_steps ?max_paths ?recorder
      mc_system [ w ]

let traces ?engine ?jobs ?max_steps ?max_paths (w : world) :
    Cas_conc.Explore.trace_result =
  fst (mc_traces ?engine ?jobs ?max_steps ?max_paths w)

(** Engine-selected reachability over the TSO machine. *)
let explore ?(engine = Cas_mc.Engine.Naive) ?jobs ?max_worlds ?recorder
    (w : world) ~(visit : world -> unit) : Cas_mc.Stats.t =
  match engine with
  | Cas_mc.Engine.Naive ->
    Cas_mc.Engine.reachable ?jobs ?max_worlds ?recorder
      (Cas_conc.Explore.to_mc system)
      (initials w) ~visit
  | Cas_mc.Engine.Dpor | Cas_mc.Engine.Dpor_par ->
    Cas_mc.Engine.reachable ~engine ?jobs ?max_worlds ?recorder mc_system
      [ w ] ~visit
