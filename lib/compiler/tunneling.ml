(** Tunneling: LTL → LTL (Fig. 11). Branches that target chains of no-ops
    are redirected to the end of the chain, removing interior hops. *)

open Cas_langs
module IMap = Ltl.IMap

let resolve (code : Ltl.instr IMap.t) (n : Ltl.node) : Ltl.node =
  let rec go n seen =
    if List.mem n seen then n
    else
      match IMap.find_opt n code with
      | Some (Ltl.Lnop m) -> go m (n :: seen)
      | _ -> n
  in
  go n []

let tr_func (f : Ltl.func) : Ltl.func =
  let t n = resolve f.Ltl.code n in
  let code =
    IMap.map
      (function
        | Ltl.Lnop n -> Ltl.Lnop (t n)
        | Ltl.Lop (op, d, n) -> Ltl.Lop (op, d, t n)
        | Ltl.Lload (d, ofs, r, n) -> Ltl.Lload (d, ofs, r, t n)
        | Ltl.Lstore (r, ofs, s, n) -> Ltl.Lstore (r, ofs, s, t n)
        | Ltl.Lcall (g, args, dst, n) -> Ltl.Lcall (g, args, dst, t n)
        | Ltl.Ltailcall (g, args) -> Ltl.Ltailcall (g, args)
        | Ltl.Lcond (r, n1, n2) -> Ltl.Lcond (r, t n1, t n2)
        | Ltl.Lreturn ro -> Ltl.Lreturn ro)
      f.Ltl.code
  in
  { f with Ltl.entry = t f.Ltl.entry; code }

let compile (p : Ltl.program) : Ltl.program =
  { p with Ltl.funcs = List.map tr_func p.Ltl.funcs }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"Tunneling" ~src:Ltl.lang ~tgt:Ltl.lang compile
