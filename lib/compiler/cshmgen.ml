(** Cshmgen: Clight → C#minor (Fig. 11). Variable accesses become explicit
    loads/stores on the addresses of the per-variable stack blocks or
    globals; temporaries and control structure are preserved. *)

open Cas_langs

let is_local (f : Clight.func) x = List.mem_assoc x f.fvars

let rec tr_expr (f : Clight.func) (e : Clight.expr) : Csharpminor.expr =
  match e with
  | Clight.Econst n -> Csharpminor.Econst n
  | Clight.Etemp x -> Csharpminor.Etemp x
  | Clight.Evar x ->
    if is_local f x then Csharpminor.Eload (Csharpminor.Eaddr_local x)
    else Csharpminor.Eload (Csharpminor.Eaddr_global x)
  | Clight.Eglob x ->
    if is_local f x then Csharpminor.Eload (Csharpminor.Eaddr_local x)
    else Csharpminor.Eload (Csharpminor.Eaddr_global x)
  | Clight.Eaddrof x ->
    if is_local f x then Csharpminor.Eaddr_local x
    else Csharpminor.Eaddr_global x
  | Clight.Ederef e -> Csharpminor.Eload (tr_expr f e)
  | Clight.Ebinop (op, a, b) -> Csharpminor.Ebinop (op, tr_expr f a, tr_expr f b)
  | Clight.Eunop (op, a) -> Csharpminor.Eunop (op, tr_expr f a)

let tr_lhs (f : Clight.func) (l : Clight.lhs) : Csharpminor.expr =
  match l with
  | Clight.Lvar x | Clight.Lglob x ->
    if is_local f x then Csharpminor.Eaddr_local x
    else Csharpminor.Eaddr_global x
  | Clight.Lderef e -> tr_expr f e

let rec tr_stmt (f : Clight.func) (s : Clight.stmt) : Csharpminor.stmt =
  match s with
  | Clight.Sskip -> Csharpminor.Sskip
  | Clight.Sassign (l, e) -> Csharpminor.Sstore (tr_lhs f l, tr_expr f e)
  | Clight.Sset (x, e) -> Csharpminor.Sset (x, tr_expr f e)
  | Clight.Scall (dst, g, args) ->
    Csharpminor.Scall (dst, g, List.map (tr_expr f) args)
  | Clight.Sseq (a, b) -> Csharpminor.Sseq (tr_stmt f a, tr_stmt f b)
  | Clight.Sif (e, a, b) ->
    Csharpminor.Sif (tr_expr f e, tr_stmt f a, tr_stmt f b)
  | Clight.Swhile (e, s) -> Csharpminor.Swhile (tr_expr f e, tr_stmt f s)
  | Clight.Sreturn None -> Csharpminor.Sreturn None
  | Clight.Sreturn (Some e) -> Csharpminor.Sreturn (Some (tr_expr f e))

let tr_func (f : Clight.func) : Csharpminor.func =
  {
    Csharpminor.fname = f.Clight.fname;
    fparams = f.Clight.fparams;
    fvars = f.Clight.fvars;
    fbody = tr_stmt f f.Clight.fbody;
  }

let compile (p : Clight.program) : Csharpminor.program =
  { Csharpminor.funcs = List.map tr_func p.Clight.funcs; globals = p.Clight.globals }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"Cshmgen" ~src:Clight.lang ~tgt:Csharpminor.lang compile
