(** The certificate cache: content-addressed stores backing certified
    separate compilation.

    A ['v store] memoizes values under string keys that are content
    hashes; the compiler keys each pass's output by
    [H(pipeline version, options, source-unit hash, pass name)] and the
    verification layer keys footprint-preserving simulation verdicts by
    the same seed extended with the check parameters. Because the
    pipeline is deterministic, a key collision-free hit may skip both the
    transformation *and* the re-verification of the pass — the paper's
    separate-compilation story (Lem. 6: per-module certificates compose)
    made executable.

    Stores are two-level: an in-memory table (per process) in front of an
    optional on-disk directory shared across processes
    ([set_default_dir]). Disk entries are [Marshal]-encoded and trusted:
    a cache directory is as trusted as the build tree, exactly like
    ccache's. All operations are domain-safe: the table is
    mutex-protected and disk writes go through a unique temp file plus
    atomic [rename]. *)

type outcome = [ `Hit | `Miss | `Off ]

let pp_outcome ppf = function
  | `Hit -> Fmt.string ppf "hit"
  | `Miss -> Fmt.string ppf "miss"
  | `Off -> Fmt.string ppf "off"

(* ------------------------------------------------------------------ *)
(* Content hashing                                                     *)
(* ------------------------------------------------------------------ *)

(** Content hash of any marshalable value (MD5 of its marshaled bytes),
    in hex. Only ever applied to pure-data IR programs and key tuples —
    never to values containing closures. *)
let digest (v : 'a) : string =
  Digest.to_hex (Digest.string (Marshal.to_string v []))

(** Derive a namespaced key from a seed hash: [key ~seed ~pass] is the
    content address of "the output of [pass] on the unit whose
    compilation context hashes to [seed]". *)
let key ~seed ~pass = Digest.to_hex (Digest.string (seed ^ ":" ^ pass))

(* ------------------------------------------------------------------ *)
(* The global disk-backing switch                                      *)
(* ------------------------------------------------------------------ *)

let dir_lock = Mutex.create ()
let dir : string option ref = ref None

(** Enable ([Some dir]) or disable ([None]) disk persistence for every
    store, current and future. *)
let set_default_dir d =
  Mutex.lock dir_lock;
  dir := d;
  Mutex.unlock dir_lock

let default_dir () =
  Mutex.lock dir_lock;
  let d = !dir in
  Mutex.unlock dir_lock;
  d

(* ------------------------------------------------------------------ *)
(* Stores                                                              *)
(* ------------------------------------------------------------------ *)

type 'v store = {
  s_name : string;  (** namespaces keys; the on-disk subdirectory *)
  tbl : (string, 'v) Hashtbl.t;
  lock : Mutex.t;
  hits : int Atomic.t;
  disk_hits : int Atomic.t;
      (** subset of [hits] served by the disk tier (memory missed) *)
  misses : int Atomic.t;
}

type stats = { name : string; hits : int; disk_hits : int; misses : int }

let pp_stats ppf s =
  Fmt.pf ppf "%-14s %4d hit%s (%d from disk), %4d miss%s" s.name s.hits
    (if s.hits = 1 then "" else "s")
    s.disk_hits s.misses
    (if s.misses = 1 then "" else "es")

(* registry of all stores, for aggregate stats / reset *)
type any_store = Any : 'v store -> any_store

let registry_lock = Mutex.create ()
let registry : any_store list ref = ref []

let store ~name () : 'v store =
  let s =
    {
      s_name = name;
      tbl = Hashtbl.create 64;
      lock = Mutex.create ();
      hits = Atomic.make 0;
      disk_hits = Atomic.make 0;
      misses = Atomic.make 0;
    }
  in
  Mutex.lock registry_lock;
  registry := Any s :: !registry;
  Mutex.unlock registry_lock;
  s

let stats (s : 'v store) =
  {
    name = s.s_name;
    hits = Atomic.get s.hits;
    disk_hits = Atomic.get s.disk_hits;
    misses = Atomic.get s.misses;
  }

let global_stats () : stats list =
  Mutex.lock registry_lock;
  let l = !registry in
  Mutex.unlock registry_lock;
  List.rev_map (fun (Any s) -> stats s) l

let reset_stats () =
  Mutex.lock registry_lock;
  let l = !registry in
  Mutex.unlock registry_lock;
  List.iter
    (fun (Any s) ->
      Atomic.set s.hits 0;
      Atomic.set s.disk_hits 0;
      Atomic.set s.misses 0)
    l

(** Drop every in-memory entry (disk entries survive); used by tests to
    exercise the persistent tier from a single process. *)
let clear_memory () =
  Mutex.lock registry_lock;
  let l = !registry in
  Mutex.unlock registry_lock;
  List.iter
    (fun (Any s) ->
      Mutex.lock s.lock;
      Hashtbl.reset s.tbl;
      Mutex.unlock s.lock)
    l

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)
(* ------------------------------------------------------------------ *)

let rec mkdirs d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let path_of s k =
  Option.map (fun d -> Filename.concat (Filename.concat d s.s_name) k)
    (default_dir ())

let disk_read : type v. v store -> string -> v option =
 fun s k ->
  match path_of s k with
  | None -> None
  | Some path -> (
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
      let v = try Some (Marshal.from_channel ic : v) with _ -> None in
      close_in_noerr ic;
      v)

let disk_write (s : 'v store) (k : string) (v : 'v) =
  match path_of s k with
  | None -> ()
  | Some path -> (
    try
      mkdirs (Filename.dirname path);
      let tmp =
        Fmt.str "%s.tmp.%d.%d" path (Unix.getpid ())
          (Domain.self () :> int)
      in
      let oc = open_out_bin tmp in
      Marshal.to_channel oc v [];
      close_out oc;
      Sys.rename tmp path
    with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)
(* ------------------------------------------------------------------ *)

let find_mem s k =
  Mutex.lock s.lock;
  let r = Hashtbl.find_opt s.tbl k in
  Mutex.unlock s.lock;
  r

let add_mem s k v =
  Mutex.lock s.lock;
  Hashtbl.replace s.tbl k v;
  Mutex.unlock s.lock

(** [find_or_add s k produce]: return the cached value for [k] (memory
    first, then disk) or run [produce], record the result in both tiers,
    and return it. Concurrent misses on the same key may each run
    [produce]; determinism of the producers makes that benign. *)
let find_or_add (s : 'v store) (k : string) (produce : unit -> 'v) :
    'v * outcome =
  match find_mem s k with
  | Some v ->
    Atomic.incr s.hits;
    (v, `Hit)
  | None -> (
    match disk_read s k with
    | Some v ->
      add_mem s k v;
      Atomic.incr s.hits;
      Atomic.incr s.disk_hits;
      (v, `Hit)
    | None ->
      let v = produce () in
      add_mem s k v;
      disk_write s k v;
      Atomic.incr s.misses;
      (v, `Miss))
