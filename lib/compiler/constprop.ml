(** ConstProp: RTL → RTL. Constant propagation by forward dataflow over
    the CFG. Listed as future work for CASCompCert (§8, "we would like to
    verify more optimization passes"); we implement it and subject it to
    the same footprint-preserving simulation checks as the Fig. 11 passes.

    The footprint of the optimized code can only shrink: folding an
    operation never adds a load, and turning a known conditional into a
    jump removes the (register-only) test. *)

open Cas_langs
module IMap = Rtl.IMap

(* Abstract values: Unknown ⊐ Const n. A missing register is Unknown. *)
type aval = Const of int

module AMap = Map.Make (Int)

type astate = aval AMap.t

let join (a : astate) (b : astate) : astate =
  AMap.merge
    (fun _ x y ->
      match (x, y) with
      | Some (Const n), Some (Const m) when n = m -> Some (Const n)
      | _ -> None)
    a b

let astate_equal a b = AMap.equal (fun (Const n) (Const m) -> n = m) a b

let eval_op (st : astate) (op : Rtl.op) : aval option =
  let reg r = AMap.find_opt r st in
  match op with
  | Rtl.Omove r -> reg r
  | Rtl.Oconst n -> Some (Const n)
  | Rtl.Oaddrglobal _ | Rtl.Oaddrstack _ -> None
  | Rtl.Obinop (op, a, b) -> (
    match (reg a, reg b) with
    | Some (Const x), Some (Const y) ->
      Option.map (fun n -> Const n) (Ops.const_binop op x y)
    | _ -> None)
  | Rtl.Obinop_imm (op, a, n) -> (
    match reg a with
    | Some (Const x) -> Option.map (fun v -> Const v) (Ops.const_binop op x n)
    | None -> None)
  | Rtl.Ounop (op, a) -> (
    match reg a with
    | Some (Const x) -> (
      match Ops.eval_unop op (Cas_base.Value.Vint x) with
      | Cas_base.Value.Vint n -> Some (Const n)
      | _ -> None)
    | None -> None)

let transfer (st : astate) (i : Rtl.instr) : astate =
  match i with
  | Rtl.Iop (op, d, _) -> (
    match eval_op st op with
    | Some v -> AMap.add d v st
    | None -> AMap.remove d st)
  | Rtl.Iload (d, _, _, _) -> AMap.remove d st
  | Rtl.Icall (_, _, Some d, _) -> AMap.remove d st
  | _ -> st

(** Compute the abstract state at the entry of every node. *)
let analyze (f : Rtl.func) : astate IMap.t =
  let in_states = ref IMap.empty in
  let worklist = Queue.create () in
  let update n st =
    let changed =
      match IMap.find_opt n !in_states with
      | None ->
        in_states := IMap.add n st !in_states;
        true
      | Some old ->
        let joined = join old st in
        if astate_equal joined old then false
        else begin
          in_states := IMap.add n joined !in_states;
          true
        end
    in
    if changed then Queue.add n worklist
  in
  update f.Rtl.entry AMap.empty;
  while not (Queue.is_empty worklist) do
    let n = Queue.pop worklist in
    match IMap.find_opt n f.Rtl.code with
    | None -> ()
    | Some i ->
      let st =
        Option.value ~default:AMap.empty (IMap.find_opt n !in_states)
      in
      let out = transfer st i in
      List.iter (fun s -> update s out) (Rtl.successors i)
  done;
  !in_states

let rewrite_op (st : astate) (op : Rtl.op) : Rtl.op =
  match eval_op st op with
  | Some (Const n) -> Rtl.Oconst n
  | None -> (
    (* strength-reduce one constant operand into immediate form *)
    match op with
    | Rtl.Obinop (bop, a, b) -> (
      match (AMap.find_opt a st, AMap.find_opt b st) with
      | _, Some (Const n) -> Rtl.Obinop_imm (bop, a, n)
      | Some (Const n), _
        when List.mem bop Ops.[ Oadd; Omul; Oand; Oor; Oxor; Oeq; One ] ->
        Rtl.Obinop_imm (bop, b, n)
      | _ -> op)
    | op -> op)

let tr_func (f : Rtl.func) : Rtl.func =
  let states = analyze f in
  let code =
    IMap.mapi
      (fun n i ->
        let st = Option.value ~default:AMap.empty (IMap.find_opt n states) in
        match i with
        | Rtl.Iop (op, d, succ) -> Rtl.Iop (rewrite_op st op, d, succ)
        | Rtl.Icond (r, n1, n2) -> (
          match AMap.find_opt r st with
          | Some (Const v) -> Rtl.Inop (if v <> 0 then n1 else n2)
          | None -> i)
        | i -> i)
      f.Rtl.code
  in
  { f with Rtl.code }

let compile (p : Rtl.program) : Rtl.program =
  { p with Rtl.funcs = List.map tr_func p.Rtl.funcs }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v_opt ~name:"ConstProp" ~lang:Rtl.lang compile
