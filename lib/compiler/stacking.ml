(** Stacking: Linear → Mach (Fig. 11). Abstract stack slots become
    concrete cells of the activation record; slot accesses become
    Mgetstack/Msetstack. The Allocation pass guarantees the slot
    discipline this pass expects (slots appear only in moves to/from
    registers); violations raise [Bad_linear].

    In the paper's proof effort (Fig. 13), Stacking was the most expensive
    pass to adapt, because of argument marshalling for cross-language
    linking — the same concern our fixed conventional-register calling
    convention resolves. *)

open Cas_langs

exception Bad_linear of string

let bad fmt = Fmt.kstr (fun s -> raise (Bad_linear s)) fmt

let max_slot (code : Linearl.instr list) : int =
  let m = ref (-1) in
  let loc = function Mreg.S i -> m := max !m i | Mreg.R _ -> () in
  let op o = List.iter loc (Mreg.gop_uses o) in
  List.iter
    (function
      | Linearl.Lop (o, d) ->
        op o;
        loc d
      | Linearl.Lload (d, _, r) ->
        loc d;
        loc r
      | Linearl.Lstore (r, _, s) ->
        loc r;
        loc s
      | Linearl.Lcall (_, args, dst) ->
        List.iter loc args;
        Option.iter loc dst
      | Linearl.Ltailcall (_, args) -> List.iter loc args
      | Linearl.Lcond (r, _) -> loc r
      | Linearl.Lreturn (Some r) -> loc r
      | Linearl.Lreturn None | Linearl.Llabel _ | Linearl.Lgoto _ -> ())
    code;
  !m

let as_reg what = function
  | Mreg.R r -> r
  | Mreg.S i -> bad "%s uses slot s%d directly" what i

let tr_instr (i : Linearl.instr) : Machl.instr =
  match i with
  | Linearl.Lop (Mreg.Gmove (Mreg.S i), Mreg.R r) -> Machl.Mgetstack (i, r)
  | Linearl.Lop (Mreg.Gmove (Mreg.R r), Mreg.S i) -> Machl.Msetstack (r, i)
  | Linearl.Lop (op, d) ->
    let op' = Mreg.map_gop (as_reg "operator") op in
    Machl.Mop (op', as_reg "operator destination" d)
  | Linearl.Lload (d, ofs, r) ->
    Machl.Mload (as_reg "load dest" d, ofs, as_reg "load addr" r)
  | Linearl.Lstore (r, ofs, s) ->
    Machl.Mstore (as_reg "store addr" r, ofs, as_reg "store src" s)
  | Linearl.Lcall (g, args, dst) ->
    let arity = List.length args in
    List.iteri
      (fun i l ->
        match (l, List.nth_opt Mreg.arg_regs i) with
        | Mreg.R r, Some conv when Mreg.equal r conv -> ()
        | _ -> bad "call argument %d of %s not in conventional register" i g)
      args;
    let has_res =
      match dst with
      | None -> false
      | Some (Mreg.R r) when Mreg.equal r Mreg.res_reg -> true
      | Some l -> bad "call result in %a" Mreg.pp_loc l
    in
    Machl.Mcall (g, arity, has_res)
  | Linearl.Ltailcall (g, args) ->
    List.iteri
      (fun i l ->
        match (l, List.nth_opt Mreg.arg_regs i) with
        | Mreg.R r, Some conv when Mreg.equal r conv -> ()
        | _ -> bad "tailcall argument %d of %s not conventional" i g)
      args;
    Machl.Mtailcall (g, List.length args)
  | Linearl.Llabel l -> Machl.Mlabel l
  | Linearl.Lgoto l -> Machl.Mgoto l
  | Linearl.Lcond (r, l) -> Machl.Mcond (as_reg "branch condition" r, l)
  | Linearl.Lreturn None -> Machl.Mreturn false
  | Linearl.Lreturn (Some (Mreg.R r)) when Mreg.equal r Mreg.res_reg ->
    Machl.Mreturn true
  | Linearl.Lreturn (Some l) -> bad "return value in %a" Mreg.pp_loc l

let tr_func (f : Linearl.func) : Machl.func =
  let arity = List.length f.Linearl.fparams in
  {
    Machl.fname = f.Linearl.fname;
    arity;
    stacksize = f.Linearl.stacksize;
    nslots = max_slot f.Linearl.code + 1;
    code = List.map tr_instr f.Linearl.code;
  }

let compile (p : Linearl.program) : Machl.program =
  { Machl.funcs = List.map tr_func p.Linearl.funcs; globals = p.Linearl.globals }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"Stacking" ~src:Linearl.lang ~tgt:Machl.lang compile
