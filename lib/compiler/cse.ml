(** CSE: RTL → RTL. Local value numbering over single-predecessor chains
    of the CFG: a pure operator applied to the same operands as an earlier
    instruction in the chain is replaced by a move from the register that
    already holds the value.

    Like ConstProp, this is one of the optimizations the paper defers
    (§8); it is register-only, so target footprints again only shrink —
    checked by the per-pass simulation tests. *)

open Cas_langs
module IMap = Rtl.IMap

type key = K of Rtl.op

(* Only pure, non-trivial operators are worth numbering. *)
let key_of = function
  | Rtl.Obinop _ | Rtl.Obinop_imm _ | Rtl.Ounop _ -> true
  | Rtl.Omove _ | Rtl.Oconst _ | Rtl.Oaddrglobal _ | Rtl.Oaddrstack _ -> false

let op_operands = function
  | Rtl.Omove r | Rtl.Obinop_imm (_, r, _) | Rtl.Ounop (_, r) -> [ r ]
  | Rtl.Obinop (_, a, b) -> [ a; b ]
  | Rtl.Oconst _ | Rtl.Oaddrglobal _ | Rtl.Oaddrstack _ -> []

let pred_counts (f : Rtl.func) : int IMap.t =
  IMap.fold
    (fun _ i acc ->
      List.fold_left
        (fun acc s ->
          IMap.update s
            (fun c -> Some (1 + Option.value ~default:0 c))
            acc)
        acc (Rtl.successors i))
    f.Rtl.code
    (IMap.singleton f.Rtl.entry 1)

let tr_func (f : Rtl.func) : Rtl.func =
  let preds = pred_counts f in
  let code = ref f.Rtl.code in
  let visited = Hashtbl.create 64 in
  (* avail: association list (key, reg) *)
  let invalidate d avail =
    List.filter (fun (K op, r) -> r <> d && not (List.mem d (op_operands op))) avail
  in
  let rec walk n avail =
    if Hashtbl.mem visited n then ()
    else begin
      Hashtbl.add visited n ();
      match IMap.find_opt n !code with
      | None -> ()
      | Some i ->
        let i, avail =
          match i with
          | Rtl.Iop (op, d, succ) when key_of op -> (
            match List.assoc_opt (K op) avail with
            | Some r when r <> d ->
              (Rtl.Iop (Rtl.Omove r, d, succ), invalidate d avail)
            | _ ->
              let avail = invalidate d avail in
              let avail =
                if List.mem d (op_operands op) then avail
                else (K op, d) :: avail
              in
              (i, avail))
          | Rtl.Iop (_, d, _) | Rtl.Iload (d, _, _, _) ->
            (i, invalidate d avail)
          | Rtl.Icall (_, _, Some d, _) -> (i, invalidate d avail)
          | i -> (i, avail)
        in
        code := IMap.add n i !code;
        List.iter
          (fun s ->
            (* continue the chain only into single-predecessor nodes *)
            let single = IMap.find_opt s preds = Some 1 in
            walk s (if single then avail else []))
          (Rtl.successors i)
    end
  in
  walk f.Rtl.entry [];
  { f with Rtl.code = !code }

let compile (p : Rtl.program) : Rtl.program =
  { p with Rtl.funcs = List.map tr_func p.Rtl.funcs }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v_opt ~name:"CSE" ~lang:Rtl.lang compile
