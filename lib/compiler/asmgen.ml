(** Asmgen: Mach → x86 assembly (Fig. 11). Three-address Mach operators
    are lowered to two-address x86 forms, falling back to the [Pbinop3]
    pseudo-instruction when the destination collides with the second
    operand of a non-commutative operator. Slot accesses become frame
    loads/stores relative to the stack pointer. *)

open Cas_langs

let commutative = Selection.commutative

let tr_op (op : Machl.op) (d : Mreg.t) : Asm.instr list =
  match op with
  | Mreg.Gmove s -> if Mreg.equal s d then [] else [ Asm.Pmov_rr (d, s) ]
  | Mreg.Gconst n -> [ Asm.Pmov_ri (d, n) ]
  | Mreg.Gaddrglobal g -> [ Asm.Plea_global (d, g) ]
  | Mreg.Gaddrstack ofs -> [ Asm.Plea_stack (d, ofs) ]
  | Mreg.Gbinop (bop, a, b) ->
    if Mreg.equal d a then [ Asm.Pbinop_rr (bop, d, b) ]
    else if Mreg.equal d b then
      if commutative bop then [ Asm.Pbinop_rr (bop, d, a) ]
      else [ Asm.Pbinop3 (bop, d, a, b) ]
    else [ Asm.Pmov_rr (d, a); Asm.Pbinop_rr (bop, d, b) ]
  | Mreg.Gbinop_imm (bop, a, n) ->
    if Mreg.equal d a then [ Asm.Pbinop_ri (bop, d, n) ]
    else [ Asm.Pmov_rr (d, a); Asm.Pbinop_ri (bop, d, n) ]
  | Mreg.Gunop (uop, a) ->
    if Mreg.equal d a then [ Asm.Punop_r (uop, d) ]
    else [ Asm.Pmov_rr (d, a); Asm.Punop_r (uop, d) ]

let tr_instr (f : Machl.func) (i : Machl.instr) : Asm.instr list =
  match i with
  | Machl.Mop (op, d) -> tr_op op d
  | Machl.Mload (d, ofs, r) -> [ Asm.Pload (d, r, ofs) ]
  | Machl.Mstore (r, ofs, s) -> [ Asm.Pstore (r, ofs, s) ]
  | Machl.Mgetstack (i, r) -> [ Asm.Pload_stack (r, f.Machl.stacksize + i) ]
  | Machl.Msetstack (r, i) -> [ Asm.Pstore_stack (f.Machl.stacksize + i, r) ]
  | Machl.Mcall (g, arity, res) -> [ Asm.Pcall (g, arity, res) ]
  | Machl.Mtailcall (g, arity) -> [ Asm.Ptailjmp (g, arity) ]
  | Machl.Mlabel l -> [ Asm.Plabel l ]
  | Machl.Mgoto l -> [ Asm.Pjmp l ]
  | Machl.Mcond (r, l) -> [ Asm.Pcmp_ri (r, 0); Asm.Pjcc (Asm.Cne, l) ]
  | Machl.Mreturn res -> [ Asm.Pret res ]

let tr_func (f : Machl.func) : Asm.func =
  {
    Asm.fname = f.Machl.fname;
    arity = f.Machl.arity;
    framesize = Machl.frame_size f;
    is_object = false;
    code = List.concat_map (tr_instr f) f.Machl.code;
  }

let compile (p : Machl.program) : Asm.program =
  { Asm.funcs = List.map tr_func p.Machl.funcs; globals = p.Machl.globals }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"Asmgen" ~src:Machl.lang ~tgt:Asm.lang compile
