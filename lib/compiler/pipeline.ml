(** The pass registry: the single authority on what the compiler is.

    Every pass module registers its first-class [Pass.t] into the typed
    chain [fig11] (the Fig. 11 pipeline, plus the ConstProp/CSE
    extensions); everything else — the driver, the per-pass simulation
    sweep, the bench harness, [casc compile] — is generic over this
    chain. Adding a pass means registering it here; no other layer
    changes.

    The chain is a heterogeneous cons-list indexed by source and target
    program types, so composition is checked by the type system exactly
    as CompCert checks it by [compose_passes]. Untyped consumers fold
    over it with first-class polymorphic records ([folder], [stepper]).

    [version] is the pipeline's content hash: the registered pass names
    in order, salted with a schema version bumped whenever a pass's
    semantics changes incompatibly. It is part of every certificate-cache
    key, so a rebuilt compiler never reuses stale artifacts. *)

type ('a, 'b) chain =
  | Nil : ('a, 'a) chain
  | Cons : ('a, 'b) Pass.t * ('b, 'c) chain -> ('a, 'c) chain

open Cas_langs

(** The registered pipeline: Clight down to x86 assembly. *)
let fig11 : (Clight.program, Asm.program) chain =
  Cons
    ( Simpllocals.pass,
      Cons
        ( Cshmgen.pass,
          Cons
            ( Cminorgen.pass,
              Cons
                ( Selection.pass,
                  Cons
                    ( Rtlgen.pass,
                      Cons
                        ( Tailcall.pass,
                          Cons
                            ( Renumber.pass,
                              Cons
                                ( Constprop.pass,
                                  Cons
                                    ( Cse.pass,
                                      Cons
                                        ( Deadcode.pass,
                                          Cons
                                            ( Allocation.pass,
                                              Cons
                                                ( Tunneling.pass,
                                                  Cons
                                                    ( Linearize.pass,
                                                      Cons
                                                        ( Cleanuplabels.pass,
                                                          Cons
                                                            ( Stacking.pass,
                                                              Cons
                                                                ( Asmgen.pass,
                                                                  Nil ) ) ) )
                                                ) ) ) ) ) ) ) ) ) ) ) )

(* ------------------------------------------------------------------ *)
(* Untyped views                                                       *)
(* ------------------------------------------------------------------ *)

(** Fold over the chain with a polymorphic step function. *)
type 'acc folder = { f : 'a 'b. 'acc -> ('a, 'b) Pass.t -> 'acc }

let fold (type s t) (folder : 'acc folder) (acc : 'acc) (c : (s, t) chain) :
    'acc =
  let rec go : type a b. 'acc -> (a, b) chain -> 'acc =
   fun acc -> function Nil -> acc | Cons (p, rest) -> go (folder.f acc p) rest
  in
  go acc c

(** Registry metadata for one pass. *)
type entry = {
  e_name : string;
  e_src : string;  (** source language name *)
  e_tgt : string;  (** target language name *)
  e_optimizing : bool;
}

let entries () : entry list =
  List.rev
    (fold
       {
         f =
           (fun acc p ->
             {
               e_name = Pass.name p;
               e_src = Pass.src_lang_name p;
               e_tgt = Pass.tgt_lang_name p;
               e_optimizing = Pass.optimizing p;
             }
             :: acc);
       }
       [] fig11)

(** Names and order of the pipeline stages, for reports (Fig. 11). *)
let names () = List.map (fun e -> e.e_name) (entries ())

let length () = List.length (names ())

(** Bump when a pass's semantics changes without renaming it; every
    certificate-cache key includes [version], so this invalidates all
    previously cached artifacts and verdicts. The tool version
    [Cas_base.Version.v] is part of the salt too, so artifacts cached by
    an older build are never served to a newer one (the same constant is
    stamped into witness JSON headers by [Cas_diag]). *)
let schema_version = "casc-pipeline-1"

let version =
  Cache.digest
    ( Cas_base.Version.v,
      schema_version,
      List.map (fun e -> (e.e_name, e.e_src, e.e_tgt, e.e_optimizing))
        (entries ()) )

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

(** A stepper decides how each pass executes (bare, cached, instrumented:
    the driver supplies it). *)
type stepper = { step : 'a 'b. ('a, 'b) Pass.t -> 'a -> 'b }

let run (type s t) (s : stepper) (c : (s, t) chain) (x : s) : t =
  let rec go : type a b. (a, b) chain -> a -> b =
   fun c x -> match c with Nil -> x | Cons (p, rest) -> go rest (s.step p x)
  in
  go c x

(** The bare stepper: no caching, no instrumentation. *)
let plain ?options () : stepper = { step = (fun p x -> Pass.run ?options p x) }
