(** First-class compilation passes.

    A [('a, 'b) t] packages one pass of Fig. 11: its name, the source and
    target language witnesses (the (tl, ge, π) side of the paper's
    per-pass simulation statements), the transformation itself, and a
    private certificate store memoizing its outputs under content-hash
    keys ([Cache]). The core types of the two languages are existential —
    consumers that need to *execute* a stage recover a language-typed
    module via [pack_src]/[pack_tgt] and the [Lang.modu] packing.

    The simulation-check hook is deliberately inverted: the checker lives
    above the compiler in the dependency graph ([Cascompcert.Simulation]),
    so a pass does not call the checker — it *admits* one, as a
    first-class polymorphic record ([checker]), and [check_sim] applies
    it to the pass's own language witnesses. The verification layer
    instantiates ['v] with its verdict record. *)

open Cas_base

type options = { optimize : bool  (** run Tailcall/ConstProp/CSE/Deadcode *) }

let default_options = { optimize = true }

type ('a, 'b) t =
  | Pass : {
      name : string;
      src_lang : ('a, 'sc) Lang.t;
      tgt_lang : ('b, 'tc) Lang.t;
      transform : options -> 'a -> 'b;
      optimizing : bool;
      store : 'b Cache.store;
    }
      -> ('a, 'b) t

(** A mandatory pass: runs under every [options]. *)
let v ~name ~src ~tgt (f : 'a -> 'b) : ('a, 'b) t =
  Pass
    {
      name;
      src_lang = src;
      tgt_lang = tgt;
      transform = (fun _ x -> f x);
      optimizing = false;
      store = Cache.store ~name ();
    }

(** An optimization pass (necessarily an endo-pass): the identity when
    [options.optimize] is off, mirroring the Fig. 11 optional stages. *)
let v_opt ~name ~lang (f : 'a -> 'a) : ('a, 'a) t =
  Pass
    {
      name;
      src_lang = lang;
      tgt_lang = lang;
      transform = (fun o x -> if o.optimize then f x else x);
      optimizing = true;
      store = Cache.store ~name ();
    }

let name (Pass p) = p.name
let optimizing (Pass p) = p.optimizing
let src_lang_name (Pass p) = p.src_lang.Lang.name
let tgt_lang_name (Pass p) = p.tgt_lang.Lang.name

(** Run the bare transformation (no caching, no instrumentation). *)
let run ?(options = default_options) (Pass p) x = p.transform options x

(** Run through the pass's certificate store: the output for [key] is
    computed at most once per store tier. [cache:false] bypasses the
    store entirely. *)
let run_cached ?(options = default_options) ~cache ~key (Pass p) x :
    'b * Cache.outcome =
  if not cache then (p.transform options x, `Off)
  else Cache.find_or_add p.store key (fun () -> p.transform options x)

let cache_stats (Pass p) = Cache.stats p.store
let pack_src (Pass p) x = Lang.Mod (p.src_lang, x)
let pack_tgt (Pass p) y = Lang.Mod (p.tgt_lang, y)

(** A simulation checker, supplied by the verification layer: given both
    language witnesses and both programs, produce a verdict ['v]. *)
type 'v checker = {
  check :
    'a 'c 'b 'd. ('a, 'c) Lang.t -> 'a -> ('b, 'd) Lang.t -> 'b -> 'v;
}

(** Apply a checker to this pass's source and target programs, with the
    pass's own language witnesses. *)
let check_sim (type a b) (Pass p : (a, b) t) (c : 'v checker) (x : a) (y : b)
    : 'v =
  c.check p.src_lang x p.tgt_lang y
