(** Allocation: RTL → LTL (Fig. 11). Graph-coloring register allocation
    over four allocatable registers (AX BX CX DX), with SI/DI reserved as
    reload/spill scratch registers. Spilled pseudo-registers live in
    abstract stack slots; this pass also lowers the calling convention:
    arguments are staged through fresh slots and loaded into the
    conventional registers ([Mreg.arg_regs] prefix), results return in AX.

    CompCert's allocator is translation-validated; ours is direct, and its
    correctness is checked by the same per-pass footprint-preserving
    simulation as every other pass. *)

open Cas_langs
module IMap = Rtl.IMap
module ISet = Set.Make (Int)

let allocatable = Mreg.[ AX; BX; CX; DX ]
let scratch1 = Mreg.SI
let scratch2 = Mreg.DI

type assignment = (int, Mreg.loc) Hashtbl.t

(* ------------------------------------------------------------------ *)
(* Interference graph and greedy coloring                               *)
(* ------------------------------------------------------------------ *)

let build_interference (f : Rtl.func) (live : Liveness.t) :
    (int, ISet.t) Hashtbl.t =
  let g : (int, ISet.t) Hashtbl.t = Hashtbl.create 64 in
  let ensure r =
    if not (Hashtbl.mem g r) then Hashtbl.add g r ISet.empty
  in
  let edge a b =
    if a <> b then begin
      ensure a;
      ensure b;
      Hashtbl.replace g a (ISet.add b (Hashtbl.find g a));
      Hashtbl.replace g b (ISet.add a (Hashtbl.find g b))
    end
  in
  List.iter ensure f.Rtl.fparams;
  IMap.iter
    (fun n i ->
      List.iter ensure (Rtl.uses i);
      match Rtl.defs i with
      | None -> ()
      | Some d ->
        ensure d;
        ISet.iter (fun r -> edge d r) (Liveness.live_out live n))
    f.Rtl.code;
  (* parameters are simultaneously live at entry *)
  let rec param_pairs = function
    | [] -> ()
    | p :: rest ->
      List.iter (edge p) rest;
      param_pairs rest
  in
  param_pairs f.Rtl.fparams;
  g

(** Pseudo-registers live across a call: the call sequence writes the
    conventional argument registers and the result register, so such
    values must live in stack slots (caller-save-everything policy). *)
let live_across_calls (f : Rtl.func) (live : Liveness.t) : ISet.t =
  IMap.fold
    (fun n i acc ->
      match i with
      | Rtl.Icall (_, _, dst, _) ->
        let out = Liveness.live_out live n in
        let out =
          match dst with Some d -> ISet.remove d out | None -> out
        in
        ISet.union acc out
      | _ -> acc)
    f.Rtl.code ISet.empty

(** Greedy coloring in decreasing-degree order; uncolorable nodes spill to
    fresh slots. Returns the assignment and the number of slots used. *)
let color ?(forced_slots = ISet.empty) (g : (int, ISet.t) Hashtbl.t) :
    assignment * int =
  let asn : assignment = Hashtbl.create 64 in
  let nodes =
    Hashtbl.fold (fun r adj acc -> (r, ISet.cardinal adj) :: acc) g []
    |> List.sort (fun (_, d1) (_, d2) -> compare d2 d1)
    |> List.map fst
  in
  let next_slot = ref 0 in
  List.iter
    (fun r ->
      let neighbours = try Hashtbl.find g r with Not_found -> ISet.empty in
      let taken =
        ISet.fold
          (fun n acc ->
            match Hashtbl.find_opt asn n with
            | Some (Mreg.R m) -> m :: acc
            | _ -> acc)
          neighbours []
      in
      match
        if ISet.mem r forced_slots then None
        else List.find_opt (fun m -> not (List.mem m taken)) allocatable
      with
      | Some m -> Hashtbl.add asn r (Mreg.R m)
      | None ->
        Hashtbl.add asn r (Mreg.S !next_slot);
        incr next_slot)
    nodes;
  (asn, !next_slot)

(* ------------------------------------------------------------------ *)
(* Code emission                                                        *)
(* ------------------------------------------------------------------ *)

type emitter = {
  mutable next_node : int;
  mutable out : Ltl.instr Ltl.IMap.t;
  mutable next_slot : int;  (** temp slots for call staging *)
}

let fresh_node em =
  let n = em.next_node in
  em.next_node <- n + 1;
  n

let fresh_slot em =
  let s = em.next_slot in
  em.next_slot <- s + 1;
  Mreg.S s

let set em n i = em.out <- Ltl.IMap.add n i em.out

(** Emit a single move src → dst, routing slot-to-slot moves through
    scratch1 (memory-to-memory moves do not exist on x86). Returns the
    entry node; the emitted code continues to [succ]. *)
let emit_move em (src : Mreg.loc) (dst : Mreg.loc) (succ : int) : int =
  match (src, dst) with
  | Mreg.S _, Mreg.S _ ->
    let n2 = fresh_node em in
    set em n2 (Ltl.Lop (Mreg.Gmove (Mreg.R scratch1), dst, succ));
    let n1 = fresh_node em in
    set em n1 (Ltl.Lop (Mreg.Gmove src, Mreg.R scratch1, n2));
    n1
  | _ ->
    let n = fresh_node em in
    set em n (Ltl.Lop (Mreg.Gmove src, dst, succ));
    n

let emit_moves em (moves : (Mreg.loc * Mreg.loc) list) (succ : int) : int =
  List.fold_right (fun (s, d) k -> emit_move em s d k) moves succ

(** Reload a used location into a register: if already a register, use it
    directly; if a slot, load into the given scratch. Returns
    (entry builder, register). *)
let reload em (l : Mreg.loc) (scratch : Mreg.t) (succ : int) :
    int option * Mreg.t =
  match l with
  | Mreg.R r -> (None, r)
  | Mreg.S _ ->
    let n = fresh_node em in
    set em n (Ltl.Lop (Mreg.Gmove l, Mreg.R scratch, succ));
    (Some n, scratch)

let loc_of asn r =
  match Hashtbl.find_opt asn r with
  | Some l -> l
  | None -> Mreg.R scratch1 (* unused register: arbitrary *)

(** Choose the register that will receive the computation of a def, and a
    possible spill move after it. *)
let def_reg em (dl : Mreg.loc) (succ : int) : Mreg.t * int =
  match dl with
  | Mreg.R r -> (r, succ)
  | Mreg.S _ ->
    let n = fresh_node em in
    set em n (Ltl.Lop (Mreg.Gmove (Mreg.R scratch1), dl, succ));
    (scratch1, n)

let conv_regs arity = List.filteri (fun i _ -> i < arity) Mreg.arg_regs

(** Stage call arguments: park each argument location in a fresh slot,
    then load the slots into the conventional registers. *)
let stage_args em (args : Mreg.loc list) (succ : int) : int =
  let tmps = List.map (fun _ -> fresh_slot em) args in
  let conv = conv_regs (List.length args) in
  let load_entry =
    emit_moves em
      (List.map2 (fun t r -> (t, Mreg.R r)) tmps conv)
      succ
  in
  emit_moves em (List.map2 (fun a t -> (a, t)) args tmps) load_entry

let tr_instr em asn (heads : int IMap.t) (n : Rtl.node) (i : Rtl.instr) : unit =
  let head = IMap.find n heads in
  let goto m = IMap.find m heads in
  let chain_to entry = set em head (Ltl.Lnop entry) in
  match i with
  | Rtl.Inop s -> set em head (Ltl.Lnop (goto s))
  | Rtl.Iop (Rtl.Omove r, d, s) ->
    (* move between arbitrary locations *)
    let entry = emit_move em (loc_of asn r) (loc_of asn d) (goto s) in
    chain_to entry
  | Rtl.Iop (op, d, s) -> (
    let dl = loc_of asn d in
    let dr, after = def_reg em dl (goto s) in
    match op with
    | Rtl.Omove _ -> assert false
    | Rtl.Oconst c ->
      let node = fresh_node em in
      set em node (Ltl.Lop (Mreg.Gconst c, Mreg.R dr, after));
      chain_to node
    | Rtl.Oaddrglobal g ->
      let node = fresh_node em in
      set em node (Ltl.Lop (Mreg.Gaddrglobal g, Mreg.R dr, after));
      chain_to node
    | Rtl.Oaddrstack ofs ->
      let node = fresh_node em in
      set em node (Ltl.Lop (Mreg.Gaddrstack ofs, Mreg.R dr, after));
      chain_to node
    | Rtl.Obinop (bop, a, b) ->
      let node = fresh_node em in
      let rb_entry, rb = reload em (loc_of asn b) scratch2 node in
      let pre_b = Option.value ~default:node rb_entry in
      let ra_entry, ra = reload em (loc_of asn a) scratch1 pre_b in
      set em node
        (Ltl.Lop (Mreg.Gbinop (bop, Mreg.R ra, Mreg.R rb), Mreg.R dr, after));
      chain_to (Option.value ~default:pre_b ra_entry)
    | Rtl.Obinop_imm (bop, a, imm) ->
      let node = fresh_node em in
      let ra_entry, ra = reload em (loc_of asn a) scratch1 node in
      set em node
        (Ltl.Lop (Mreg.Gbinop_imm (bop, Mreg.R ra, imm), Mreg.R dr, after));
      chain_to (Option.value ~default:node ra_entry)
    | Rtl.Ounop (uop, a) ->
      let node = fresh_node em in
      let ra_entry, ra = reload em (loc_of asn a) scratch1 node in
      set em node (Ltl.Lop (Mreg.Gunop (uop, Mreg.R ra), Mreg.R dr, after));
      chain_to (Option.value ~default:node ra_entry))
  | Rtl.Iload (d, ofs, r, s) ->
    let dl = loc_of asn d in
    let dr, after = def_reg em dl (goto s) in
    let node = fresh_node em in
    let ra_entry, ra = reload em (loc_of asn r) scratch1 node in
    set em node (Ltl.Lload (Mreg.R dr, ofs, Mreg.R ra, after));
    chain_to (Option.value ~default:node ra_entry)
  | Rtl.Istore (r, ofs, src, s) ->
    let node = fresh_node em in
    let rsrc_entry, rsrc = reload em (loc_of asn src) scratch2 node in
    let pre = Option.value ~default:node rsrc_entry in
    let ra_entry, ra = reload em (loc_of asn r) scratch1 pre in
    set em node (Ltl.Lstore (Mreg.R ra, ofs, Mreg.R rsrc, goto s));
    chain_to (Option.value ~default:pre ra_entry)
  | Rtl.Icall (g, args, dst, s) ->
    let after =
      match dst with
      | None -> goto s
      | Some d -> emit_move em (Mreg.R Mreg.res_reg) (loc_of asn d) (goto s)
    in
    let call = fresh_node em in
    set em call
      (Ltl.Lcall
         ( g,
           List.map (fun r -> Mreg.R r) (conv_regs (List.length args)),
           (match dst with None -> None | Some _ -> Some (Mreg.R Mreg.res_reg)),
           after ));
    let entry = stage_args em (List.map (loc_of asn) args) call in
    chain_to entry
  | Rtl.Itailcall (g, args) ->
    let call = fresh_node em in
    set em call
      (Ltl.Ltailcall (g, List.map (fun r -> Mreg.R r) (conv_regs (List.length args))));
    let entry = stage_args em (List.map (loc_of asn) args) call in
    chain_to entry
  | Rtl.Icond (r, s1, s2) ->
    let node = fresh_node em in
    let ra_entry, ra = reload em (loc_of asn r) scratch1 node in
    set em node (Ltl.Lcond (Mreg.R ra, goto s1, goto s2));
    chain_to (Option.value ~default:node ra_entry)
  | Rtl.Ireturn None -> set em head (Ltl.Lreturn None)
  | Rtl.Ireturn (Some r) ->
    let ret = fresh_node em in
    set em ret (Ltl.Lreturn (Some (Mreg.R Mreg.res_reg)));
    let entry = emit_move em (loc_of asn r) (Mreg.R Mreg.res_reg) ret in
    chain_to entry

let tr_func (f : Rtl.func) : Ltl.func =
  let live = Liveness.analyze f in
  let g = build_interference f live in
  let asn, nspill = color ~forced_slots:(live_across_calls f live) g in
  let em = { next_node = 1; out = Ltl.IMap.empty; next_slot = nspill } in
  (* reserve a head node for every RTL node *)
  let heads =
    IMap.fold (fun n _ acc -> IMap.add n (fresh_node em) acc) f.Rtl.code IMap.empty
  in
  IMap.iter (fun n i -> tr_instr em asn heads n i) f.Rtl.code;
  (* entry: params arrive in conventional registers; stage them through
     slots into their assigned locations *)
  let arity = List.length f.Rtl.fparams in
  let conv = conv_regs arity in
  let body_entry = IMap.find f.Rtl.entry heads in
  let tmps = List.map (fun _ -> fresh_slot em) f.Rtl.fparams in
  let into_locs =
    emit_moves em
      (List.map2 (fun t p -> (t, loc_of asn p)) tmps f.Rtl.fparams)
      body_entry
  in
  let entry =
    emit_moves em
      (List.map2 (fun r t -> (Mreg.R r, t)) conv tmps)
      into_locs
  in
  {
    Ltl.fname = f.Rtl.fname;
    fparams = List.map (fun r -> Mreg.R r) conv;
    stacksize = f.Rtl.stacksize;
    entry;
    code = em.out;
  }

let compile (p : Rtl.program) : Ltl.program =
  { Ltl.funcs = List.map tr_func p.Rtl.funcs; globals = p.Rtl.globals }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"Allocation" ~src:Rtl.lang ~tgt:Ltl.lang compile
