(** RTLgen: CminorSel → RTL (Fig. 11). Structured control is translated
    into a control-flow graph, built backwards from each statement's
    continuation node; temporaries become pseudo-registers. *)

open Cas_langs
module IMap = Rtl.IMap

type st = {
  mutable next_reg : int;
  mutable next_node : int;
  mutable code : Rtl.instr IMap.t;
  mutable temps : (string * Rtl.reg) list;
}

let fresh_reg st =
  let r = st.next_reg in
  st.next_reg <- r + 1;
  r

let temp_reg st x =
  match List.assoc_opt x st.temps with
  | Some r -> r
  | None ->
    let r = fresh_reg st in
    st.temps <- (x, r) :: st.temps;
    r

let reserve st =
  let n = st.next_node in
  st.next_node <- n + 1;
  n

let set_instr st n i = st.code <- IMap.add n i st.code

let add_instr st i =
  let n = reserve st in
  set_instr st n i;
  n

(** Translate an expression: returns the entry node of the code that
    leaves the value in the returned register and continues to [nd]. *)
let rec tr_expr st (e : Cminor.expr) (nd : Rtl.node) : Rtl.node * Rtl.reg =
  match e with
  | Cminor.Econst n ->
    let r = fresh_reg st in
    (add_instr st (Rtl.Iop (Rtl.Oconst n, r, nd)), r)
  | Cminor.Etemp x -> (nd, temp_reg st x)
  | Cminor.Eaddr_global g ->
    let r = fresh_reg st in
    (add_instr st (Rtl.Iop (Rtl.Oaddrglobal g, r, nd)), r)
  | Cminor.Eaddr_stack ofs ->
    let r = fresh_reg st in
    (add_instr st (Rtl.Iop (Rtl.Oaddrstack ofs, r, nd)), r)
  | Cminor.Eload e ->
    let r = fresh_reg st in
    let load = reserve st in
    let entry, ra = tr_expr st e load in
    set_instr st load (Rtl.Iload (r, 0, ra, nd));
    (entry, r)
  | Cminor.Eunop (op, a) ->
    let r = fresh_reg st in
    let opn = reserve st in
    let entry, ra = tr_expr st a opn in
    set_instr st opn (Rtl.Iop (Rtl.Ounop (op, ra), r, nd));
    (entry, r)
  | Cminor.Ebinop_imm (op, a, n) ->
    let r = fresh_reg st in
    let opn = reserve st in
    let entry, ra = tr_expr st a opn in
    set_instr st opn (Rtl.Iop (Rtl.Obinop_imm (op, ra, n), r, nd));
    (entry, r)
  | Cminor.Ebinop (op, a, b) ->
    let r = fresh_reg st in
    let opn = reserve st in
    let nb, rb = tr_expr st b opn in
    let na, ra = tr_expr st a nb in
    set_instr st opn (Rtl.Iop (Rtl.Obinop (op, ra, rb), r, nd));
    (na, r)

(** Evaluate [args] left-to-right into registers, continuing to the node
    built by [k] from the argument registers. *)
let tr_args st (args : Cminor.expr list) (k : Rtl.reg list -> Rtl.node) :
    Rtl.node =
  let rec go acc = function
    | [] -> k (List.rev acc)
    | e :: rest ->
      (* build the rest first (backwards), then this argument *)
      let later r = go (r :: acc) rest in
      let placeholder = reserve st in
      let entry, r = tr_expr st e placeholder in
      let rest_entry = later r in
      set_instr st placeholder (Rtl.Inop rest_entry);
      entry
  in
  go [] args

let rec tr_stmt st (s : Cminor.stmt) (nd : Rtl.node) : Rtl.node =
  match s with
  | Cminor.Sskip -> nd
  | Cminor.Sset (x, e) ->
    let rx = temp_reg st x in
    let mv = reserve st in
    let entry, re = tr_expr st e mv in
    set_instr st mv (Rtl.Iop (Rtl.Omove re, rx, nd));
    entry
  | Cminor.Sstore (a, e) ->
    let store = reserve st in
    let ne, re = tr_expr st e store in
    let na, ra = tr_expr st a ne in
    set_instr st store (Rtl.Istore (ra, 0, re, nd));
    na
  | Cminor.Scall (dst, g, args) ->
    let dreg = Option.map (temp_reg st) dst in
    tr_args st args (fun regs -> add_instr st (Rtl.Icall (g, regs, dreg, nd)))
  | Cminor.Sseq (a, b) -> tr_stmt st a (tr_stmt st b nd)
  | Cminor.Sif (e, a, b) ->
    let na = tr_stmt st a nd in
    let nb = tr_stmt st b nd in
    let cond = reserve st in
    let entry, re = tr_expr st e cond in
    set_instr st cond (Rtl.Icond (re, na, nb));
    entry
  | Cminor.Swhile (e, body) ->
    let head = reserve st in
    let body_entry = tr_stmt st body head in
    let cond = reserve st in
    let test_entry, re = tr_expr st e cond in
    set_instr st cond (Rtl.Icond (re, body_entry, nd));
    set_instr st head (Rtl.Inop test_entry);
    head
  | Cminor.Sreturn None -> add_instr st (Rtl.Ireturn None)
  | Cminor.Sreturn (Some e) ->
    let ret = reserve st in
    let entry, re = tr_expr st e ret in
    set_instr st ret (Rtl.Ireturn (Some re));
    entry

let tr_func (f : Cminor.func) : Rtl.func =
  let st = { next_reg = 0; next_node = 1; code = IMap.empty; temps = [] } in
  let params = List.map (temp_reg st) f.Cminor.fparams in
  let implicit_ret = add_instr st (Rtl.Ireturn None) in
  let entry = tr_stmt st f.Cminor.fbody implicit_ret in
  {
    Rtl.fname = f.Cminor.fname;
    fparams = params;
    stacksize = f.Cminor.stacksize;
    entry;
    code = st.code;
  }

let compile (p : Cminor.program) : Rtl.program =
  { Rtl.funcs = List.map tr_func p.Cminor.funcs; globals = p.Cminor.globals }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"RTLgen" ~src:Cminor.sel_lang ~tgt:Rtl.lang compile
