(** Deadcode: RTL → RTL. Pure instructions whose result is dead (not in
    the liveness live-out set) become no-ops. One more of the optimization
    passes the paper leaves as future work (§8); dead loads disappear, so
    target footprints shrink — the direction FPmatch permits.

    Note the care required: a dead *load* can be removed (reads shrink),
    but a dead *operation on registers* is footprint-free anyway; stores
    and calls are never removed. *)

open Cas_langs
module IMap = Rtl.IMap
module ISet = Liveness.ISet

let pure_def = function
  | Rtl.Iop (_, d, n) -> Some (d, n)
  | Rtl.Iload (d, _, _, n) -> Some (d, n)
  | _ -> None

(* One sweep exposes new dead code (removing a dead move kills its
   source's last use), so iterate to a fixpoint. *)
let rec tr_func (f : Rtl.func) : Rtl.func =
  let live = Liveness.analyze f in
  let changed = ref false in
  let code =
    IMap.mapi
      (fun n i ->
        match pure_def i with
        | Some (d, succ) when not (ISet.mem d (Liveness.live_out live n)) ->
          changed := true;
          Rtl.Inop succ
        | _ -> i)
      f.Rtl.code
  in
  if !changed then tr_func { f with Rtl.code } else f

let compile (p : Rtl.program) : Rtl.program =
  { p with Rtl.funcs = List.map tr_func p.Rtl.funcs }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v_opt ~name:"Deadcode" ~lang:Rtl.lang compile
