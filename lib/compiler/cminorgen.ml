(** Cminorgen: C#minor → Cminor (Fig. 11). The per-variable stack blocks
    are laid out as offsets into a single per-activation stack block. *)

open Cas_langs

type layout = (string * int) list  (** variable -> offset *)

let layout_of (f : Csharpminor.func) : layout * int =
  let ofs, lay =
    List.fold_left
      (fun (ofs, lay) (x, size) -> (ofs + size, (x, ofs) :: lay))
      (0, []) f.Csharpminor.fvars
  in
  (List.rev lay, ofs)

let rec tr_expr (lay : layout) (e : Csharpminor.expr) : Cminor.expr =
  match e with
  | Csharpminor.Econst n -> Cminor.Econst n
  | Csharpminor.Etemp x -> Cminor.Etemp x
  | Csharpminor.Eaddr_local x -> (
    match List.assoc_opt x lay with
    | Some ofs -> Cminor.Eaddr_stack ofs
    | None -> Cminor.Eaddr_global x (* unknown local: treat as global *))
  | Csharpminor.Eaddr_global x -> Cminor.Eaddr_global x
  | Csharpminor.Eload e -> Cminor.Eload (tr_expr lay e)
  | Csharpminor.Ebinop (op, a, b) ->
    Cminor.Ebinop (op, tr_expr lay a, tr_expr lay b)
  | Csharpminor.Eunop (op, a) -> Cminor.Eunop (op, tr_expr lay a)

let rec tr_stmt (lay : layout) (s : Csharpminor.stmt) : Cminor.stmt =
  match s with
  | Csharpminor.Sskip -> Cminor.Sskip
  | Csharpminor.Sset (x, e) -> Cminor.Sset (x, tr_expr lay e)
  | Csharpminor.Sstore (a, e) -> Cminor.Sstore (tr_expr lay a, tr_expr lay e)
  | Csharpminor.Scall (dst, g, args) ->
    Cminor.Scall (dst, g, List.map (tr_expr lay) args)
  | Csharpminor.Sseq (a, b) -> Cminor.Sseq (tr_stmt lay a, tr_stmt lay b)
  | Csharpminor.Sif (e, a, b) ->
    Cminor.Sif (tr_expr lay e, tr_stmt lay a, tr_stmt lay b)
  | Csharpminor.Swhile (e, s) -> Cminor.Swhile (tr_expr lay e, tr_stmt lay s)
  | Csharpminor.Sreturn None -> Cminor.Sreturn None
  | Csharpminor.Sreturn (Some e) -> Cminor.Sreturn (Some (tr_expr lay e))

let tr_func (f : Csharpminor.func) : Cminor.func =
  let lay, stacksize = layout_of f in
  {
    Cminor.fname = f.Csharpminor.fname;
    fparams = f.Csharpminor.fparams;
    stacksize;
    fbody = tr_stmt lay f.Csharpminor.fbody;
  }

let compile (p : Csharpminor.program) : Cminor.program =
  {
    Cminor.funcs = List.map tr_func p.Csharpminor.funcs;
    globals = p.Csharpminor.globals;
  }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"Cminorgen" ~src:Csharpminor.lang ~tgt:Cminor.lang compile
