(** Linearize: LTL → Linear (Fig. 11). CFG nodes are ordered depth-first
    from the entry; each node becomes a labelled instruction, with gotos
    inserted where the chosen order breaks fallthrough. Labels reuse the
    LTL node numbers; CleanupLabels removes the unreferenced ones. *)

open Cas_langs
module IMap = Ltl.IMap

let order (f : Ltl.func) : Ltl.node list =
  let visited = Hashtbl.create 64 in
  let acc = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      acc := n :: !acc;
      match IMap.find_opt n f.Ltl.code with
      | None -> ()
      | Some i ->
        (* visit fallthrough-successor last so it tends to follow us *)
        List.iter dfs (List.rev (Ltl.successors i))
    end
  in
  dfs f.Ltl.entry;
  List.rev !acc

let tr_func (f : Ltl.func) : Linearl.func =
  let nodes = order f in
  let buf = ref [] in
  let emit i = buf := i :: !buf in
  let rec emit_nodes = function
    | [] -> ()
    | n :: rest ->
      let next = match rest with n' :: _ -> Some n' | [] -> None in
      emit (Linearl.Llabel n);
      (match IMap.find_opt n f.Ltl.code with
      | None -> emit (Linearl.Lreturn None)
      | Some i -> (
        let goto_unless_next target =
          if next = Some target then () else emit (Linearl.Lgoto target)
        in
        match i with
        | Ltl.Lnop s -> goto_unless_next s
        | Ltl.Lop (op, d, s) ->
          emit (Linearl.Lop (op, d));
          goto_unless_next s
        | Ltl.Lload (d, ofs, r, s) ->
          emit (Linearl.Lload (d, ofs, r));
          goto_unless_next s
        | Ltl.Lstore (r, ofs, src, s) ->
          emit (Linearl.Lstore (r, ofs, src));
          goto_unless_next s
        | Ltl.Lcall (g, args, dst, s) ->
          emit (Linearl.Lcall (g, args, dst));
          goto_unless_next s
        | Ltl.Ltailcall (g, args) -> emit (Linearl.Ltailcall (g, args))
        | Ltl.Lcond (r, s1, s2) ->
          emit (Linearl.Lcond (r, s1));
          goto_unless_next s2
        | Ltl.Lreturn ro -> emit (Linearl.Lreturn ro)));
      emit_nodes rest
  in
  (* ensure the entry block comes first *)
  emit_nodes nodes;
  {
    Linearl.fname = f.Ltl.fname;
    fparams = f.Ltl.fparams;
    stacksize = f.Ltl.stacksize;
    code = List.rev !buf;
  }

let compile (p : Ltl.program) : Linearl.program =
  { Linearl.funcs = List.map tr_func p.Ltl.funcs; globals = p.Ltl.globals }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"Linearize" ~src:Ltl.lang ~tgt:Linearl.lang compile
