(** SimplLocals: Clight → Clight. Scalar local variables whose address is
    never taken are pulled out of memory into temporaries — CompCert's
    SimplLocals pass, which front-ends the pipeline of Fig. 11.

    This pass *shrinks* footprints (promoted variables stop generating
    loads and stores), the archetypal legal direction under FPmatch: the
    target may access less than the source. *)

open Cas_langs

module SSet = Set.Make (String)

let rec addressed_expr (e : Clight.expr) : SSet.t =
  match e with
  | Clight.Econst _ | Clight.Etemp _ | Clight.Evar _ | Clight.Eglob _ ->
    SSet.empty
  | Clight.Eaddrof x -> SSet.singleton x
  | Clight.Ederef e | Clight.Eunop (_, e) -> addressed_expr e
  | Clight.Ebinop (_, a, b) -> SSet.union (addressed_expr a) (addressed_expr b)

let rec addressed_stmt (s : Clight.stmt) : SSet.t =
  match s with
  | Clight.Sskip | Clight.Sreturn None -> SSet.empty
  | Clight.Sassign (l, e) ->
    let la =
      match l with
      | Clight.Lderef e -> addressed_expr e
      | Clight.Lvar _ | Clight.Lglob _ -> SSet.empty
    in
    SSet.union la (addressed_expr e)
  | Clight.Sset (_, e) | Clight.Sreturn (Some e) -> addressed_expr e
  | Clight.Scall (_, _, args) ->
    List.fold_left
      (fun acc e -> SSet.union acc (addressed_expr e))
      SSet.empty args
  | Clight.Sseq (a, b) -> SSet.union (addressed_stmt a) (addressed_stmt b)
  | Clight.Sif (e, a, b) ->
    SSet.union (addressed_expr e)
      (SSet.union (addressed_stmt a) (addressed_stmt b))
  | Clight.Swhile (e, s) -> SSet.union (addressed_expr e) (addressed_stmt s)

let rec promote_expr (promoted : SSet.t) (e : Clight.expr) : Clight.expr =
  match e with
  | Clight.Evar x when SSet.mem x promoted -> Clight.Etemp x
  | Clight.Econst _ | Clight.Etemp _ | Clight.Evar _ | Clight.Eglob _
  | Clight.Eaddrof _ ->
    e
  | Clight.Ederef e -> Clight.Ederef (promote_expr promoted e)
  | Clight.Eunop (op, e) -> Clight.Eunop (op, promote_expr promoted e)
  | Clight.Ebinop (op, a, b) ->
    Clight.Ebinop (op, promote_expr promoted a, promote_expr promoted b)

let rec promote_stmt (promoted : SSet.t) (s : Clight.stmt) : Clight.stmt =
  let pe = promote_expr promoted in
  match s with
  | Clight.Sskip -> s
  | Clight.Sassign (Clight.Lvar x, e) when SSet.mem x promoted ->
    Clight.Sset (x, pe e)
  | Clight.Sassign (l, e) ->
    let l =
      match l with
      | Clight.Lderef a -> Clight.Lderef (pe a)
      | l -> l
    in
    Clight.Sassign (l, pe e)
  | Clight.Sset (x, e) -> Clight.Sset (x, pe e)
  | Clight.Scall (dst, f, args) -> Clight.Scall (dst, f, List.map pe args)
  | Clight.Sseq (a, b) -> Clight.Sseq (promote_stmt promoted a, promote_stmt promoted b)
  | Clight.Sif (e, a, b) ->
    Clight.Sif (pe e, promote_stmt promoted a, promote_stmt promoted b)
  | Clight.Swhile (e, s) -> Clight.Swhile (pe e, promote_stmt promoted s)
  | Clight.Sreturn None -> s
  | Clight.Sreturn (Some e) -> Clight.Sreturn (Some (pe e))

let tr_func (f : Clight.func) : Clight.func =
  let addressed = addressed_stmt f.Clight.fbody in
  let promoted =
    List.filter_map
      (fun (x, size) ->
        if size = 1 && not (SSet.mem x addressed) then Some x else None)
      f.Clight.fvars
    |> SSet.of_list
  in
  {
    f with
    Clight.fvars =
      List.filter (fun (x, _) -> not (SSet.mem x promoted)) f.Clight.fvars;
    fbody = promote_stmt promoted f.Clight.fbody;
  }

let compile (p : Clight.program) : Clight.program =
  { p with Clight.funcs = List.map tr_func p.Clight.funcs }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"SimplLocals" ~src:Clight.lang ~tgt:Clight.lang compile
