(** Selection: Cminor → CminorSel (Fig. 11). Instruction selection on
    expressions: constant operands of binary operators are folded into the
    machine-friendly immediate form [Ebinop_imm] (commuting the operands
    of commutative operators when the constant is on the left), and
    constant subexpressions are evaluated.

    This is the pass whose correctness lemma appears as Fig. 12 in the
    paper ([sel_expr_correct]): the selected expression must evaluate to a
    related value *with a footprint included in the source's*. Our
    rewrites never introduce loads, so the footprint can only shrink. *)

open Cas_langs

let commutative = function
  | Ops.Oadd | Ops.Omul | Ops.Oand | Ops.Oor | Ops.Oxor | Ops.Oeq | Ops.One ->
    true
  | _ -> false

let rec sel_expr (e : Cminor.expr) : Cminor.expr =
  match e with
  | Cminor.Econst _ | Cminor.Etemp _ | Cminor.Eaddr_global _
  | Cminor.Eaddr_stack _ ->
    e
  | Cminor.Eload e -> Cminor.Eload (sel_expr e)
  | Cminor.Eunop (op, a) -> (
    let a = sel_expr a in
    match (op, a) with
    | op, Cminor.Econst n -> (
      match Ops.eval_unop op (Cas_base.Value.Vint n) with
      | Cas_base.Value.Vint m -> Cminor.Econst m
      | _ -> Cminor.Eunop (op, a))
    | _ -> Cminor.Eunop (op, a))
  | Cminor.Ebinop_imm (op, a, n) -> Cminor.Ebinop_imm (op, sel_expr a, n)
  | Cminor.Ebinop (op, a, b) -> (
    let a = sel_expr a in
    let b = sel_expr b in
    match (a, b) with
    | Cminor.Econst x, Cminor.Econst y -> (
      match Ops.const_binop op x y with
      | Some n -> Cminor.Econst n
      | None -> Cminor.Ebinop (op, a, b))
    | _, Cminor.Econst n -> Cminor.Ebinop_imm (op, a, n)
    | Cminor.Econst n, _ when commutative op -> Cminor.Ebinop_imm (op, b, n)
    | _ -> Cminor.Ebinop (op, a, b))

let rec sel_stmt (s : Cminor.stmt) : Cminor.stmt =
  match s with
  | Cminor.Sskip -> s
  | Cminor.Sset (x, e) -> Cminor.Sset (x, sel_expr e)
  | Cminor.Sstore (a, e) -> Cminor.Sstore (sel_expr a, sel_expr e)
  | Cminor.Scall (dst, g, args) -> Cminor.Scall (dst, g, List.map sel_expr args)
  | Cminor.Sseq (a, b) -> Cminor.Sseq (sel_stmt a, sel_stmt b)
  | Cminor.Sif (e, a, b) -> Cminor.Sif (sel_expr e, sel_stmt a, sel_stmt b)
  | Cminor.Swhile (e, s) -> Cminor.Swhile (sel_expr e, sel_stmt s)
  | Cminor.Sreturn None -> s
  | Cminor.Sreturn (Some e) -> Cminor.Sreturn (Some (sel_expr e))

let tr_func (f : Cminor.func) : Cminor.func =
  { f with Cminor.fbody = sel_stmt f.Cminor.fbody }

let compile (p : Cminor.program) : Cminor.program =
  { p with Cminor.funcs = List.map tr_func p.Cminor.funcs }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"Selection" ~src:Cminor.lang ~tgt:Cminor.sel_lang compile
