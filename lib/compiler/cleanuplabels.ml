(** CleanupLabels: Linear → Linear (Fig. 11). Labels not referenced by any
    goto or conditional branch are removed. *)

open Cas_langs

let referenced (code : Linearl.instr list) : (int, unit) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter
    (function
      | Linearl.Lgoto l | Linearl.Lcond (_, l) -> Hashtbl.replace t l ()
      | _ -> ())
    code;
  t

let tr_func (f : Linearl.func) : Linearl.func =
  let used = referenced f.Linearl.code in
  let code =
    List.filter
      (function
        | Linearl.Llabel l -> Hashtbl.mem used l
        | _ -> true)
      f.Linearl.code
  in
  { f with Linearl.code }

let compile (p : Linearl.program) : Linearl.program =
  { p with Linearl.funcs = List.map tr_func p.Linearl.funcs }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"CleanupLabels" ~src:Linearl.lang ~tgt:Linearl.lang compile
