(** Tailcall: RTL → RTL (Fig. 11). A call immediately followed by a return
    of its result, in a function with an empty stack frame, becomes a tail
    call: the caller's frame is reused.

    Observable effect: the call stack stays flat, which the examples can
    demonstrate, while event traces are preserved — the property the
    footprint-preserving simulation checks. *)

open Cas_langs
module IMap = Rtl.IMap

let returns_result (code : Rtl.instr IMap.t) (n : Rtl.node)
    (dst : Rtl.reg option) =
  match IMap.find_opt n code with
  | Some (Rtl.Ireturn ro) -> (
    match (dst, ro) with
    | Some d, Some r -> d = r
    | None, None -> true
    | None, Some _ | Some _, None -> false)
  | _ -> false

let tr_func (f : Rtl.func) : Rtl.func =
  if f.Rtl.stacksize <> 0 then f
  else
    let code =
      IMap.map
        (function
          | Rtl.Icall (g, args, dst, n) when returns_result f.Rtl.code n dst ->
            Rtl.Itailcall (g, args)
          | i -> i)
        f.Rtl.code
    in
    { f with Rtl.code }

let compile (p : Rtl.program) : Rtl.program =
  { p with Rtl.funcs = List.map tr_func p.Rtl.funcs }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v_opt ~name:"Tailcall" ~lang:Rtl.lang compile
