(** Renumber: RTL → RTL (Fig. 11). Reachable CFG nodes are renumbered
    consecutively in depth-first order from the entry; unreachable code is
    dropped. *)

open Cas_langs
module IMap = Rtl.IMap

let map_succs f = function
  | Rtl.Inop n -> Rtl.Inop (f n)
  | Rtl.Iop (op, d, n) -> Rtl.Iop (op, d, f n)
  | Rtl.Iload (d, ofs, r, n) -> Rtl.Iload (d, ofs, r, f n)
  | Rtl.Istore (r, ofs, s, n) -> Rtl.Istore (r, ofs, s, f n)
  | Rtl.Icall (g, args, dst, n) -> Rtl.Icall (g, args, dst, f n)
  | Rtl.Itailcall (g, args) -> Rtl.Itailcall (g, args)
  | Rtl.Icond (r, n1, n2) -> Rtl.Icond (r, f n1, f n2)
  | Rtl.Ireturn ro -> Rtl.Ireturn ro

let tr_func (f : Rtl.func) : Rtl.func =
  let mapping = Hashtbl.create 64 in
  let counter = ref 0 in
  let rec dfs n =
    if not (Hashtbl.mem mapping n) then begin
      incr counter;
      Hashtbl.add mapping n !counter;
      match IMap.find_opt n f.Rtl.code with
      | None -> ()
      | Some i -> List.iter dfs (Rtl.successors i)
    end
  in
  dfs f.Rtl.entry;
  let renum n = try Hashtbl.find mapping n with Not_found -> n in
  let code =
    IMap.fold
      (fun n i acc ->
        match Hashtbl.find_opt mapping n with
        | None -> acc (* unreachable *)
        | Some n' -> IMap.add n' (map_succs renum i) acc)
      f.Rtl.code IMap.empty
  in
  { f with Rtl.entry = renum f.Rtl.entry; code }

let compile (p : Rtl.program) : Rtl.program =
  { p with Rtl.funcs = List.map tr_func p.Rtl.funcs }

(** The registered first-class pass (see [Pass], [Pipeline]). *)
let pass = Pass.v ~name:"Renumber" ~src:Rtl.lang ~tgt:Rtl.lang compile
