(** The CASCompCert compilation driver, on top of the first-class pass
    manager: the Fig. 11 pipeline (plus the ConstProp/CSE extensions) is
    the registered chain [Pipeline.fig11]; the driver only decides *how*
    each pass executes — bare, or through the certificate cache with
    per-pass instrumentation.

    Separate compilation is content-addressed: a unit's compilation
    context hashes to [context_hash] = H(pipeline version, options,
    source unit), each pass output is memoized under
    [H(context, pass name)] ([Cache.key]), and unchanged units are all
    cache hits — including, one layer up ([Cascompcert.Framework]), their
    footprint-preserving simulation verdicts. [compile_all] builds
    independent units in parallel on OCaml 5 domains ([Cas_base.Pool]). *)

open Cas_base
open Cas_langs

type options = Pass.options = { optimize : bool  (** run Tailcall/ConstProp/CSE *) }

let default_options = Pass.default_options

(** Names and order of the pipeline stages, for reports (Fig. 11). *)
let pass_names = Pipeline.names ()

(** Content hash of one unit's compilation context: pipeline version,
    options, and the source unit itself. Every per-pass artifact key and
    every memoized simulation verdict derives from it. *)
let context_hash ?(options = default_options) (p : Clight.program) : string =
  Cache.digest (Pipeline.version, options, Cache.digest p)

(* ------------------------------------------------------------------ *)
(* Intermediate snapshots of one compilation unit                      *)
(* ------------------------------------------------------------------ *)

type artifacts = {
  clight : Clight.program;
  clight_simpl : Clight.program;
  csharpminor : Csharpminor.program;
  cminor : Cminor.program;
  cminorsel : Cminor.program;
  rtl : Rtl.program;
  rtl_tailcall : Rtl.program;
  rtl_renumber : Rtl.program;
  rtl_constprop : Rtl.program;
  rtl_cse : Rtl.program;
  rtl_deadcode : Rtl.program;
  ltl : Ltl.program;
  ltl_tunneled : Ltl.program;
  linear : Linearl.program;
  linear_clean : Linearl.program;
  mach : Machl.program;
  asm : Asm.program;
}

(** The record-shaped view of the pipeline, kept for tests, examples and
    IR printing. Each stage still executes through its registered
    [Pass.t] (and the certificate cache when [cache] is set); the stage
    order mirrors [Pipeline.fig11], which [test_driver] asserts. *)
let compile_artifacts ?(options = default_options) ?(cache = false)
    (p : Clight.program) : artifacts =
  let ctx = context_hash ~options p in
  let exec : type a b. (a, b) Pass.t -> a -> b =
   fun pass x ->
    fst
      (Pass.run_cached ~options ~cache
         ~key:(Cache.key ~seed:ctx ~pass:(Pass.name pass))
         pass x)
  in
  let clight = p in
  let clight_simpl = exec Simpllocals.pass clight in
  let csharpminor = exec Cshmgen.pass clight_simpl in
  let cminor = exec Cminorgen.pass csharpminor in
  let cminorsel = exec Selection.pass cminor in
  let rtl = exec Rtlgen.pass cminorsel in
  let rtl_tailcall = exec Tailcall.pass rtl in
  let rtl_renumber = exec Renumber.pass rtl_tailcall in
  let rtl_constprop = exec Constprop.pass rtl_renumber in
  let rtl_cse = exec Cse.pass rtl_constprop in
  let rtl_deadcode = exec Deadcode.pass rtl_cse in
  let ltl = exec Allocation.pass rtl_deadcode in
  let ltl_tunneled = exec Tunneling.pass ltl in
  let linear = exec Linearize.pass ltl_tunneled in
  let linear_clean = exec Cleanuplabels.pass linear in
  let mach = exec Stacking.pass linear_clean in
  let asm = exec Asmgen.pass mach in
  {
    clight;
    clight_simpl;
    csharpminor;
    cminor;
    cminorsel;
    rtl;
    rtl_tailcall;
    rtl_renumber;
    rtl_constprop;
    rtl_cse;
    rtl_deadcode;
    ltl;
    ltl_tunneled;
    linear;
    linear_clean;
    mach;
    asm;
  }

(** The whole compiler: Clight module in, x86 module out. *)
let compile ?options ?cache (p : Clight.program) : Asm.program =
  (compile_artifacts ?options ?cache p).asm

(* ------------------------------------------------------------------ *)
(* Instrumented, cached, generic compilation of one unit               *)
(* ------------------------------------------------------------------ *)

type pass_stat = {
  st_pass : string;
  st_wall_ns : float;  (** wall-clock spent in this pass (or cache probe) *)
  st_cache : Cache.outcome;
}

let pp_wall ppf ns =
  if ns > 1e9 then Fmt.pf ppf "%8.2f s " (ns /. 1e9)
  else if ns > 1e6 then Fmt.pf ppf "%8.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Fmt.pf ppf "%8.2f us" (ns /. 1e3)
  else Fmt.pf ppf "%8.0f ns" ns

let pp_pass_stat ppf st =
  Fmt.pf ppf "%-14s %a  %a" st.st_pass pp_wall st.st_wall_ns Cache.pp_outcome
    st.st_cache

type compiled = {
  c_asm : Asm.program;
  c_trace : (string * Lang.modu) list;
      (** the source module first, then every pass's output, packed with
          its language witness — the generic per-pass simulation sweep
          walks consecutive pairs of this list *)
  c_stats : pass_stat list;  (** one entry per pass, in pipeline order *)
  c_context : string;  (** [context_hash] of the unit *)
  c_asm_digest : string;  (** content hash of the final x86 module *)
}

(** Compile one unit generically over the registered chain, recording
    per-pass wall-clock, cache outcomes, and the packed stage trace.
    [cache] defaults to on: recompiling an unchanged unit is pure hits. *)
let compile_unit ?(options = default_options) ?(cache = true)
    (p : Clight.program) : compiled =
  let ctx = context_hash ~options p in
  let stats = ref [] in
  let trace = ref [ ("Clight", Lang.Mod (Clight.lang, p)) ] in
  let step : type a b. (a, b) Pass.t -> a -> b =
   fun pass x ->
    let t0 = Unix.gettimeofday () in
    let y, outcome =
      Pass.run_cached ~options ~cache
        ~key:(Cache.key ~seed:ctx ~pass:(Pass.name pass))
        pass x
    in
    let dt_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    stats :=
      { st_pass = Pass.name pass; st_wall_ns = dt_ns; st_cache = outcome }
      :: !stats;
    trace := (Pass.name pass, Pass.pack_tgt pass y) :: !trace;
    y
  in
  let asm = Pipeline.run { Pipeline.step } Pipeline.fig11 p in
  {
    c_asm = asm;
    c_trace = List.rev !trace;
    c_stats = List.rev !stats;
    c_context = ctx;
    c_asm_digest = Cache.digest asm;
  }

(** Compile independent units in parallel on [jobs] domains (the
    [Cas_base.Pool] used by the DPOR frontier). [jobs = 1] (the default)
    is the sequential, deterministic fallback; results are identical for
    any [jobs] because units are independent and the cache is
    domain-safe. *)
let compile_all ?options ?cache ?(jobs = 1) (units : Clight.program list) :
    compiled list =
  Pool.run ~jobs
    (List.map (fun u () -> compile_unit ?options ?cache u) units)

(** Hit/miss counters of every pass's certificate store (plus any other
    registered store, e.g. the simulation-verdict store). *)
let cache_stats () = Cache.global_stats ()
