(** The race predictor and data-race-freedom (Fig. 9, §5).

    [predict w t] computes the instrumented footprints (δ, d) the rules
    Predict-0 and Predict-1 derive for thread [t] in world [w]:
    - Predict-0: the footprint of any immediate next step of a thread that
      is outside atomic blocks, paired with bit 0;
    - Predict-1: when the next step enters an atomic block, the
      accumulated footprint of the silent run of the whole block, paired
      with bit 1. (Conflict is monotone in the footprint, so checking the
      maximal accumulated footprint covers every prefix the paper's τ*
      allows.)

    A world predicts a race when two distinct threads have conflicting
    instrumented footprints ((δ1,d1) ⌢ (δ2,d2), §5). DRF(P) then means no
    reachable world predicts a race. *)

open Cas_base

type prediction = Footprint.t * bool

(** Accumulated footprint of the atomic block entered by the given
    successor world (thread [tid] just performed EntAtom). Shared with
    the selection view of [Engine], which uses it to summarize whole
    blocks on their entry transitions. *)
let atomic_block_fp = Engine.atomic_block_fp

let predict ?(atomic_bound = 1000) (w : World.t) (tid : int) : prediction list =
  if World.dbit w tid then []
  else
    (* footprint-only stepping: the predictor never needs the successor
       worlds except through atomic entry, and it probes every live
       thread at every visited world *)
    List.filter_map
      (function
        | World.PEnter (fp, w') ->
          Some
            (Footprint.union fp (atomic_block_fp w' tid ~bound:atomic_bound), true)
        | World.PNext fp ->
          if Footprint.is_empty fp then None else Some (fp, false))
      (World.local_preds w tid)

(** Region-based prediction for the non-preemptive setting (§5, after
    Xiao et al.'s NP race notion): under non-preemptive scheduling a
    thread executes a whole *region* — the silent run up to its next
    switch point — without interruption, so NPDRF must compare the
    accumulated footprints of regions, not of single steps (single-step
    prediction would miss every race hidden inside a region, and
    DRF ⇔ NPDRF would fail). If the region ends by entering an atomic
    block, the block's own footprint is predicted separately with bit 1,
    as in Predict-1. *)
let predict_np ?(region_bound = 1000) (w : World.t) (tid : int) :
    prediction list =
  if World.dbit w tid then []
  else
    let preds = ref [] in
    let rec run w acc bound =
      if bound = 0 then preds := (acc, false) :: !preds
      else
        let succs = World.local_steps w tid in
        if succs = [] then preds := (acc, false) :: !preds
        else
          List.iter
            (function
              | World.LAbort -> preds := (acc, false) :: !preds
              | World.LNext (Msg.EntAtom, fp, w') ->
                let acc = Footprint.union acc fp in
                preds := (acc, false) :: !preds;
                preds :=
                  ( Footprint.union acc
                      (atomic_block_fp w' tid ~bound:region_bound),
                    true )
                  :: !preds
              | World.LNext (msg, fp, w') ->
                let acc = Footprint.union acc fp in
                if Msg.is_switch_point msg then preds := (acc, false) :: !preds
                else run w' acc (bound - 1))
            succs
    in
    run w Footprint.empty region_bound;
    !preds

(** Does world [w] predict a data race (the Race rule of Fig. 9)? Returns
    the witnessing threads and footprints if so. [predictor] selects
    single-step prediction (preemptive DRF) or region prediction
    (NPDRF). *)
let race_witness ?(predictor = fun w t -> predict w t) (w : World.t) :
    (int * prediction * int * prediction) option =
  let tids = World.live_tids w in
  let preds = List.map (fun t -> (t, predictor w t)) tids in
  let rec pairs = function
    | [] -> None
    | (t1, p1) :: rest ->
      let hit =
        List.find_map
          (fun (t2, p2) ->
            List.find_map
              (fun pr1 ->
                List.find_map
                  (fun pr2 ->
                    if Footprint.conflict_bits pr1 pr2 then
                      Some (t1, pr1, t2, pr2)
                    else None)
                  p2)
              p1)
          rest
      in
      (match hit with Some _ -> hit | None -> pairs rest)
  in
  pairs preds

let races (w : World.t) = Option.is_some (race_witness w)
let races_np (w : World.t) =
  Option.is_some (race_witness ~predictor:(fun w t -> predict_np w t) w)

type drf_report = {
  drf : bool;
  witness : (int * prediction * int * prediction) option;
  witness_world : World.t option;
      (** the racy world the witness was predicted at, for diagnostics *)
  stats : Explore.stats;
  engine_stats : Cas_mc.Stats.t option;
      (** full engine accounting when a [Cas_mc] engine ran the search *)
}

(** Total selection key for a race witness: the racy world's
    scheduler-independent fingerprint, then the rendered witness tuple.
    The engines visit worlds in an order that depends on the engine and,
    under [dpor-par], on domain interleaving — but the *set* of visited
    worlds is the same, so picking the minimal key makes the reported
    witness a function of the program alone, stable across engines and
    [--jobs] values. *)
let witness_key (w : World.t) ((t1, (d1, b1), t2, (d2, b2)) : int * prediction * int * prediction) : string =
  Fmt.str "%s|%d %a %b|%d %a %b" (World.fingerprint_nocur w) t1 Footprint.pp
    d1 b1 t2 Footprint.pp d2 b2

let pp_drf_report ppf r =
  match r.witness with
  | None -> Fmt.pf ppf "DRF (%a)" Explore.pp_stats r.stats
  | Some (t1, (d1, b1), t2, (d2, b2)) ->
    Fmt.pf ppf "RACE between T%d %a[%b] and T%d %a[%b] (%a)" t1 Footprint.pp d1
      b1 t2 Footprint.pp d2 b2 Explore.pp_stats r.stats

(** DRF of a loaded world under a given global semantics: explore the
    reachable worlds and apply the race predictor to each. Instantiated
    with [Preemptive.steps] this is DRF(P); with [Nonpreemptive.steps] it
    is NPDRF(P) (§5). *)
let check ?(max_worlds = 200_000) ?predictor ?recorder (step : Gsem.stepf)
    (w0 : World.t) : drf_report =
  let witness = ref None in
  let world = ref None in
  let stats =
    Explore.reachable ~max_worlds ?recorder step (Gsem.initials w0)
      ~visit:(fun w ->
        if !witness = None then
          match race_witness ?predictor w with
          | Some wt ->
            witness := Some wt;
            world := Some w
          | None -> ())
  in
  {
    drf = !witness = None;
    witness = !witness;
    witness_world = !world;
    stats;
    engine_stats = None;
  }

(** DRF(P) with a selectable exploration engine: [Naive] is [check] on
    the scheduler-explicit preemptive graph; the DPOR engines run the
    race predictor over the reduced thread-selection view (the predictor
    reads only thread states and memory — never [cur] — so its verdict
    is well-defined on selection worlds). *)
let drf ?max_worlds ?(engine = Engine.Naive) ?jobs ?recorder w0 =
  match engine with
  | Engine.Naive -> check ?max_worlds ?recorder Preemptive.steps w0
  | Engine.Dpor | Engine.Dpor_par ->
    (* Keep the candidate with the smallest [witness_key] over *all* racy
       worlds, not the first one visited: under [dpor-par] the visit
       order depends on domain scheduling, first-hit would make the
       reported witness (and everything downstream: capture, replay,
       shrink) flap across [--jobs] values. *)
    let best = ref None in
    let st =
      Engine.explore ~engine ?jobs ?max_worlds ?recorder w0 ~visit:(fun w ->
          match race_witness w with
          | None -> ()
          | Some wt ->
            let key = witness_key w wt in
            (match !best with
            | Some (key', _, _) when key' <= key -> ()
            | _ -> best := Some (key, wt, w)))
    in
    {
      drf = !best = None;
      witness = Option.map (fun (_, wt, _) -> wt) !best;
      witness_world = Option.map (fun (_, _, w) -> w) !best;
      stats = Explore.stats_of_mc st;
      engine_stats = Some st;
    }

let npdrf ?max_worlds w0 =
  check ?max_worlds
    ~predictor:(fun w t -> predict_np w t)
    Nonpreemptive.steps w0
