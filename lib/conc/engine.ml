(** Engine-parameterized exploration of interleaving worlds.

    The DPOR engines of [Cas_mc] need per-transition thread ids and
    footprints, and state keys independent of the scheduler choice. This
    module provides that *thread-selection view* of the preemptive
    semantics: explicit [Gsw] switch transitions disappear, a transition
    is "thread [t] takes one local step", worlds are keyed by
    [World.fingerprint_nocur], and footprints come straight from the
    local semantics (Fig. 4). If a thread holds the atomic bit, only it
    is schedulable — exactly the preemptive Switch side-condition d = 0.

    The naive engine keeps exploring the historical scheduler-explicit
    view ([Explore.world_system Preemptive.steps]), so its verdicts and
    world counts stay byte-compatible with earlier revisions; the DPOR
    engines explore the selection view. Both views have the same
    observable behaviours (event traces of completed executions, abort
    reachability, race predictions — all [cur]-independent), which the
    differential tests in [test/test_mc.ml] exercise.

    The non-preemptive semantics intentionally stays naive-only: an np
    world steps only through the region of its one current thread, so
    per-state scheduling choice — the branching DPOR prunes — is already
    collapsed by the np reduction itself (§3.3); DPOR would degenerate to
    plain DFS there. *)

open Cas_base

type t = Cas_mc.Engine.t = Naive | Dpor | Dpor_par

let of_string = Cas_mc.Engine.of_string
let to_string = Cas_mc.Engine.to_string
let pp = Cas_mc.Engine.pp
let all = Cas_mc.Engine.all

let label_of_msg : Msg.t -> Cas_mc.Mcsys.label = function
  | Msg.Evt e -> Cas_mc.Mcsys.Levt e
  | Msg.Tau | Msg.Ret _ | Msg.EntAtom | Msg.ExtAtom | Msg.Call _
  | Msg.TailCall _ ->
    Cas_mc.Mcsys.Ltau

(** Threads the selection view may schedule: the atomic-bit holder alone
    if there is one (at most one in any reachable preemptive world),
    every live thread otherwise. *)
let schedulable (w : World.t) : int list =
  let live = World.live_tids w in
  match List.filter (fun t -> World.dbit w t) live with
  | [] -> live
  | holders -> holders

(** Accumulated footprint of the atomic block thread [tid] is inside in
    [w] (as in Predict-1 of Fig. 9: conflict is monotone in the
    footprint, so the maximal accumulated footprint covers every prefix). *)
let atomic_block_fp (w : World.t) tid ~bound : Footprint.t =
  let rec go w acc bound =
    if bound = 0 then acc
    else
      let succs = World.local_steps w tid in
      List.fold_left
        (fun acc s ->
          match s with
          | World.LAbort -> acc
          | World.LNext (Msg.ExtAtom, fp, _) -> Footprint.union acc fp
          | World.LNext (_, fp, w') ->
            go w' (Footprint.union acc fp) (bound - 1))
        acc succs
  in
  go w Footprint.empty bound

(** The preemptive semantics as a footprint-instrumented selection
    system. Successor worlds keep [cur] pointing at the scheduled thread
    so world-predicates that read it behave as in the preemptive view
    (the fingerprint ignores it).

    Atomic blocks are summarized at their entry: the [EntAtom] transition
    carries the accumulated footprint of the whole block (bounded as in
    the race predictor), and the steps inside the block — taken while the
    thread holds the atomic bit, when no other thread is schedulable —
    carry an empty footprint. Without this, a conflict discovered against
    an in-block step would ask for a backtrack at a frame where only the
    block's owner was enabled (a no-op), and the opposite block order
    would never be explored; with it, block-vs-block and block-vs-access
    orderings hang off the entry transition, where every contender was
    still schedulable. *)
let selection_system : World.t Cas_mc.Mcsys.t =
  {
    Cas_mc.Mcsys.fingerprint = World.key_nocur;
    all_done = World.all_done;
    trans =
      (fun w ->
        List.concat_map
          (fun tid ->
            let in_block = World.dbit w tid in
            List.map
              (fun s ->
                match s with
                | World.LAbort ->
                  {
                    Cas_mc.Mcsys.tid;
                    label = Cas_mc.Mcsys.Ltau;
                    fp = Footprint.empty;
                    target = Cas_mc.Mcsys.Abort;
                  }
                | World.LNext (msg, fp, w') ->
                  let fp =
                    if in_block then Footprint.empty
                    else
                      match msg with
                      | Msg.EntAtom ->
                        Footprint.union fp
                          (atomic_block_fp w' tid ~bound:1000)
                      | _ -> fp
                  in
                  {
                    Cas_mc.Mcsys.tid;
                    label = label_of_msg msg;
                    fp;
                    target = Cas_mc.Mcsys.Next { w' with World.cur = tid };
                  })
              (World.local_steps w tid))
          (schedulable w));
  }

(** Engine-selected reachability from a loaded world. [visit] fires once
    per distinct world; with [Dpor]/[Dpor_par] the visited worlds are a
    representative subset keyed without the scheduler choice, so [visit]
    must compute [cur]-independent, order-insensitive facts (the race
    predictor is both). *)
let explore ?(engine = Naive) ?jobs ?max_worlds ?recorder (w0 : World.t)
    ~(visit : World.t -> unit) : Cas_mc.Stats.t =
  match engine with
  | Naive ->
    Cas_mc.Engine.reachable ~engine ?jobs ?max_worlds ?recorder
      (Explore.to_mc (Explore.world_system Preemptive.steps))
      (Gsem.initials w0) ~visit
  | Dpor | Dpor_par ->
    Cas_mc.Engine.reachable ~engine ?jobs ?max_worlds ?recorder
      selection_system [ w0 ] ~visit

(** Engine-selected trace enumeration from a loaded world. *)
let traces ?(engine = Naive) ?jobs ?max_steps ?max_paths ?recorder
    (w0 : World.t) : Explore.trace_result * Cas_mc.Stats.t =
  match engine with
  | Naive ->
    Cas_mc.Engine.traces ~engine ?jobs ?max_steps ?max_paths ?recorder
      (Explore.to_mc (Explore.world_system Preemptive.steps))
      (Gsem.initials w0)
  | Dpor | Dpor_par ->
    Cas_mc.Engine.traces ~engine ?jobs ?max_steps ?max_paths ?recorder
      selection_system [ w0 ]
