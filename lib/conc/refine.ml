(** Event-trace refinement ⊑ and equivalence ≈ (§3.2), decided on bounded
    trace sets produced by [Explore.traces].

    Because exploration cuts cycles and budgets, the comparison is
    bounded-sound: we compare (a) the sets of completed (Done) traces,
    (b) abort reachability, and (c) the prefix closures of all observed
    event sequences. Reports carry the completeness flags so callers can
    see when a verdict is conditional on the bound. *)

open Cas_base

type report = {
  holds : bool;
  lhs_complete : bool;
  rhs_complete : bool;
  missing : Explore.trace list;  (** lhs traces not matched in rhs *)
}

let pp_report ppf r =
  if r.holds then
    Fmt.pf ppf "holds%s"
      (if r.lhs_complete && r.rhs_complete then "" else " (bounded)")
  else
    Fmt.pf ppf "FAILS: unmatched traces %a"
      Fmt.(list ~sep:comma Explore.pp_trace)
      r.missing

let prefixes (es : Event.t list) : Event.t list list =
  let rec go acc pre = function
    | [] -> List.rev acc
    | e :: rest -> go ((List.rev (e :: pre)) :: acc) (e :: pre) rest
  in
  [] :: go [] [] es

let prefix_closure (ts : Explore.TraceSet.t) : Explore.TraceSet.t =
  List.fold_left
    (fun acc (es, _) ->
      List.fold_left
        (fun acc p -> Explore.TraceSet.add (p, Explore.SCut) acc)
        acc (prefixes es))
    Explore.TraceSet.empty
    (Explore.TraceSet.elements ts)

let done_traces ts =
  Explore.TraceSet.filter (fun (_, st) -> st = Explore.SDone) ts

let has_abort ts =
  Explore.TraceSet.elements ts |> List.exists (fun (_, st) -> st = Explore.SAbort)

(** [refines ~lhs ~rhs]: every behaviour of [lhs] is a behaviour of [rhs]
    (lhs ⊑ rhs — e.g. target ⊑ source for compiler correctness). *)
let refines ~(lhs : Explore.trace_result) ~(rhs : Explore.trace_result) : report
    =
  let ldone = done_traces lhs.traces and rdone = done_traces rhs.traces in
  let dones_ok = Explore.TraceSet.subset ldone rdone in
  let abort_ok = (not (has_abort lhs.traces)) || has_abort rhs.traces in
  let prefix_ok =
    Explore.TraceSet.subset (prefix_closure lhs.traces)
      (prefix_closure rhs.traces)
  in
  let missing =
    Explore.TraceSet.elements ldone
    |> List.filter (fun tr -> not (Explore.TraceSet.mem tr rdone))
  in
  {
    holds = dones_ok && abort_ok && prefix_ok;
    lhs_complete = lhs.complete;
    rhs_complete = rhs.complete;
    missing;
  }

(** [equiv a b]: trace-set equivalence ≈ up to the exploration bound. *)
let equiv (a : Explore.trace_result) (b : Explore.trace_result) : report =
  let r1 = refines ~lhs:a ~rhs:b in
  let r2 = refines ~lhs:b ~rhs:a in
  {
    holds = r1.holds && r2.holds;
    lhs_complete = a.complete;
    rhs_complete = b.complete;
    missing = r1.missing @ r2.missing;
  }

(** Convenience: load a program and enumerate its traces under a given
    global semantics. *)
let traces_of ?max_steps ?max_paths (step : Gsem.stepf) (p : Lang.prog) :
    (Explore.trace_result, World.load_error) result =
  match World.load p ~args:[] with
  | Error e -> Error e
  | Ok w0 -> Ok (Explore.traces ?max_steps ?max_paths step (Gsem.initials w0))

(** Like [traces_of] under the preemptive semantics, but with a
    selectable exploration engine (naive, DPOR, parallel DPOR). *)
let traces_of_pre ?engine ?jobs ?max_steps ?max_paths ?recorder
    (p : Lang.prog) :
    (Explore.trace_result * Cas_mc.Stats.t, World.load_error) result =
  match World.load p ~args:[] with
  | Error e -> Error e
  | Ok w0 ->
    Ok (Engine.traces ?engine ?jobs ?max_steps ?max_paths ?recorder w0)
