(** Bounded-exhaustive state-space exploration: the interface behind every
    empirical check in this reproduction (DRF, trace refinement, the
    preemptive/non-preemptive equivalence, and the TSO machine of §7.3).
    It is generic in the world type; [Cas_tso] instantiates it with
    store-buffer worlds. Worlds are memoized by canonical fingerprint.

    The engines themselves live in [Cas_mc]; this module keeps the
    historical [system]/[gsucc] interface (successor functions without
    footprints) and adapts it to [Cas_mc.Mcsys] with unknown thread ids —
    such systems are explorable only by the naive engine. Footprint-aware
    systems that the DPOR engines can reduce are built in
    [Cas_conc.Engine] and [Cas_tso]. *)

open Cas_base

(** A transition system over worlds of type ['w]. *)
type 'w gsucc = GNext of World.gmsg * 'w | GAbort

type 'w system = {
  fingerprint : 'w -> string;
  all_done : 'w -> bool;
  steps : 'w -> 'w gsucc list;
}

type stats = {
  visited : int;  (** distinct worlds reached *)
  transitions : int;
  truncated : bool;  (** hit the world cap — results are partial *)
  abort_reachable : bool;
}

let pp_stats ppf s =
  Fmt.pf ppf "%d worlds, %d transitions%s%s" s.visited s.transitions
    (if s.truncated then " (truncated)" else "")
    (if s.abort_reachable then " (abort reachable)" else "")

let stats_of_mc (s : Cas_mc.Stats.t) : stats =
  {
    visited = s.Cas_mc.Stats.worlds;
    transitions = s.Cas_mc.Stats.transitions;
    truncated = s.Cas_mc.Stats.truncated;
    abort_reachable = s.Cas_mc.Stats.abort_reachable;
  }

(** Adapt a successor-function system to the model-checking interface.
    Thread ids and footprints are unknown here (tid = -1, empty fp), so
    the result must only be explored naively — [Mcsys.dependent] would be
    vacuous on it. *)
let to_mc (sys : 'w system) : 'w Cas_mc.Mcsys.t =
  {
    Cas_mc.Mcsys.fingerprint = sys.fingerprint;
    all_done = sys.all_done;
    trans =
      (fun w ->
        List.map
          (fun s ->
            match s with
            | GAbort ->
              {
                Cas_mc.Mcsys.tid = -1;
                label = Cas_mc.Mcsys.Ltau;
                fp = Footprint.empty;
                target = Cas_mc.Mcsys.Abort;
              }
            | GNext (g, w') ->
              let label =
                match g with
                | World.Gevt e -> Cas_mc.Mcsys.Levt e
                | World.Gtau -> Cas_mc.Mcsys.Ltau
                | World.Gsw -> Cas_mc.Mcsys.Lsw
              in
              {
                Cas_mc.Mcsys.tid = -1;
                label;
                fp = Footprint.empty;
                target = Cas_mc.Mcsys.Next w';
              })
          (sys.steps w));
  }

(** Breadth-first reachability. [visit] is called once per distinct world.
    [recorder], when given, records the schedule spanning tree — note the
    adapted system carries no thread ids (every recorded step has
    tid = -1), so recordings of this view identify worlds, not threads. *)
let reachable_gen ?max_worlds ?recorder (sys : 'w system)
    (initials : 'w list) ~(visit : 'w -> unit) : stats =
  stats_of_mc
    (Cas_mc.Naive.reachable ?max_worlds ?recorder (to_mc sys) initials ~visit)

(* ------------------------------------------------------------------ *)
(* Trace enumeration                                                   *)
(* ------------------------------------------------------------------ *)

(** Termination status of an enumerated execution: [SDone] — all threads
    finished; [SAbort] — some thread aborted; [SCut] — the execution was
    cut at a cycle or at the step budget (a divergent or unfinished
    schedule). *)
type status = Cas_mc.Trace.status = SDone | SAbort | SCut

type trace = Cas_mc.Trace.t

let pp_status = Cas_mc.Trace.pp_status
let pp_trace = Cas_mc.Trace.pp
let trace_key = Cas_mc.Trace.key

module TraceSet = Cas_mc.Trace.Set

type trace_result = Cas_mc.Trace.result = {
  traces : TraceSet.t;
  complete : bool;
      (** false if the path/step budget was exhausted anywhere *)
}

(** Enumerate event traces along cycle-free schedule paths (depth-first,
    cutting when a world repeats on the current path — the continuation
    is a divergent schedule — or when budgets are exhausted). *)
let traces_gen ?max_steps ?max_paths (sys : 'w system) (initials : 'w list) :
    trace_result =
  fst (Cas_mc.Naive.traces ?max_steps ?max_paths (to_mc sys) initials)

(* ------------------------------------------------------------------ *)
(* Instantiation for the interleaving worlds of [World]                *)
(* ------------------------------------------------------------------ *)

let world_system (step : Gsem.stepf) : World.t system =
  {
    fingerprint = World.key;
    all_done = World.all_done;
    steps =
      (fun w ->
        List.map
          (function
            | Gsem.Abort -> GAbort
            | Gsem.Next (g, _, w') -> GNext (g, w'))
          (step w));
  }

let reachable ?max_worlds ?recorder (step : Gsem.stepf)
    (initials : World.t list) ~(visit : World.t -> unit) : stats =
  reachable_gen ?max_worlds ?recorder (world_system step) initials ~visit

let traces ?max_steps ?max_paths (step : Gsem.stepf) (initials : World.t list)
    : trace_result =
  traces_gen ?max_steps ?max_paths (world_system step) initials

(* ------------------------------------------------------------------ *)
(* Product search: event-property reachability                         *)
(* ------------------------------------------------------------------ *)

(** Breadth-first search over the product of the world graph with a
    user-supplied event automaton: [step_state] folds observable events
    into a monitor state, and the search reports whether a world with an
    [accept]ing monitor state is reachable. Unlike [traces_gen], this is
    memoized over (world, monitor-state) pairs, so properties of the
    event *language* (e.g. "two critical-section entries overlap") can be
    decided on graphs whose path trees are astronomically large. *)
let search (sys : 'w system) (initials : 'w list) ~(init : 's)
    ~(step_state : 's -> Event.t -> 's) ~(accept : 's -> bool)
    ~(state_fp : 's -> string) ?(max_worlds = 500_000) () : bool =
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let found = ref false in
  let push w st =
    let fp = sys.fingerprint w ^ "#" ^ state_fp st in
    if (not (Hashtbl.mem seen fp)) && Hashtbl.length seen < max_worlds then begin
      Hashtbl.add seen fp ();
      Queue.add (w, st) queue
    end
  in
  List.iter (fun w -> push w init) initials;
  while (not !found) && not (Queue.is_empty queue) do
    let w, st = Queue.pop queue in
    if accept st then found := true
    else
      List.iter
        (function
          | GAbort -> ()
          | GNext (gmsg, w') ->
            let st' =
              match gmsg with
              | World.Gevt e -> step_state st e
              | World.Gtau | World.Gsw -> st
            in
            if accept st' then found := true else push w' st')
        (sys.steps w)
  done;
  !found
