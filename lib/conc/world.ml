(** Global worlds W = (T, t, d, σ) and the Load rule (Fig. 7).

    A thread is a stack of existentially-packed cores — the call stack of
    the interaction semantics (footnote 5: the thread pool maps thread IDs
    to stacks of (tl, F, κ) since modules call each other's external
    functions). The world keeps per-thread atomic bits 𝕕 as in the
    non-preemptive semantics; the preemptive semantics uses the current
    thread's bit as its single d flag, the two views coinciding because a
    preemptive thread is never descheduled mid-atomic-block. *)

open Cas_base

module IMap = Map.Make (Int)

type thread = {
  tid : int;
  flist : Flist.t;
  stack : Lang.xcore list;  (** head = running frame; [] = terminated *)
  fhashes : (int * int) list;
      (** memoized [Lang.xcore_hash] of each frame, same order as [stack]:
          a step rehashes only the frame it replaced, so [key_nocur] never
          re-reads the unchanged frames or the other threads *)
}

type t = {
  threads : thread IMap.t;
  cur : int;
  dbits : bool IMap.t;
  mem : Memory.t;
  genv : Genv.t;
  modules : Lang.modu list;
}

(** Global messages o ::= τ | e | sw (Fig. 7). *)
type gmsg = Gtau | Gevt of Event.t | Gsw

let pp_gmsg ppf = function
  | Gtau -> Fmt.string ppf "tau"
  | Gevt e -> Event.pp ppf e
  | Gsw -> Fmt.string ppf "sw"

type load_error =
  | Incompatible_globals of string
  | Duplicate_fundef of string
      (** a function symbol defined by more than one module: resolution
          would silently pick one definition, so Load rejects it *)
  | Unresolved_entry of string
  | Not_closed

let pp_load_error ppf = function
  | Incompatible_globals n -> Fmt.pf ppf "incompatible declarations of %s" n
  | Duplicate_fundef f ->
    Fmt.pf ppf "duplicate definition of function %s across modules" f
  | Unresolved_entry f -> Fmt.pf ppf "unresolved entry %s" f
  | Not_closed -> Fmt.string ppf "initial memory is not closed"

(** The Load rule: link global environments, initialize memory, check
    closedness, partition the freelists, and create one core per entry. *)
let load (p : Lang.prog) ~(args : Value.t list list) : (t, load_error) result =
  match Lang.duplicate_def p.modules with
  | Some f -> Error (Duplicate_fundef f)
  | None ->
  match Lang.link_genv p with
  | Error n -> Error (Incompatible_globals n)
  | Ok genv ->
    let mem = Genv.init_memory genv in
    if not (Memory.closed mem) then Error Not_closed
    else
      let n = List.length p.entries in
      let flists = Flist.partition ~globals:(Genv.block_count genv) n in
      let rec build tid entries flists args acc =
        match (entries, flists, args) with
        | [], _, _ -> Ok acc
        | entry :: es, fl :: fls, a :: argss -> (
          match Lang.resolve ~genv p.modules ~entry ~args:a with
          | None -> Error (Unresolved_entry entry)
          | Some xc ->
            build (tid + 1) es fls argss
              (IMap.add tid
                 {
                   tid;
                   flist = fl;
                   stack = [ xc ];
                   fhashes = [ Lang.xcore_hash xc ];
                 }
                 acc))
        | _ -> assert false
      in
      let args =
        if args = [] then List.map (fun _ -> []) p.entries else args
      in
      (match build 1 p.entries flists args IMap.empty with
      | Error e -> Error e
      | Ok threads ->
        let dbits = IMap.map (fun _ -> false) threads in
        Ok { threads; cur = 1; dbits; mem; genv; modules = p.modules })

let thread_done t = t.stack = []
let live_tids w =
  IMap.fold (fun tid t acc -> if thread_done t then acc else tid :: acc) w.threads []
  |> List.rev

let all_done w = live_tids w = []
let dbit w tid = Option.value ~default:false (IMap.find_opt tid w.dbits)

(** Canonical fingerprint of everything but the scheduler choice [cur]:
    the state key of the thread-selection view used by the DPOR engines
    ([Cas_conc.Engine]), where the scheduled thread is part of the
    transition, not of the state. *)
let fingerprint_nocur w =
  let buf = Buffer.create 256 in
  IMap.iter
    (fun tid t ->
      Buffer.add_string buf (string_of_int tid);
      Buffer.add_string buf (if dbit w tid then "!" else ":");
      List.iter
        (fun xc ->
          Buffer.add_string buf (Lang.xcore_fingerprint xc);
          Buffer.add_char buf '/')
        t.stack;
      Buffer.add_char buf ';')
    w.threads;
  Buffer.add_string buf (Memory.fingerprint w.mem);
  Buffer.contents buf

let fingerprint w = string_of_int w.cur ^ "|" ^ fingerprint_nocur w

(** Cheap fixed-width state keys in the fingerprints' equivalence classes:
    per-thread memoized frame hashes plus the memory's incremental hash,
    folded into a 16-byte string. Collisions are ~2^-63 per state pair;
    [Fpmode.paranoid] falls back to the collision-free strings, and
    witness digests always use the string path ([Cas_diag]). *)
let key_stream w =
  let st = Hashx.create () in
  IMap.iter
    (fun tid t ->
      Hashx.int st tid;
      Hashx.bool st (dbit w tid);
      List.iter
        (fun (h1, h2) ->
          Hashx.int st h1;
          Hashx.int st h2)
        t.fhashes;
      Hashx.char st ';')
    w.threads;
  let mh1, mh2 = Memory.hash w.mem in
  Hashx.int st mh1;
  Hashx.int st mh2;
  st

let key_nocur w =
  if Fpmode.paranoid () then fingerprint_nocur w
  else Hashx.key_of (Hashx.out (key_stream w))

let key w =
  if Fpmode.paranoid () then fingerprint w
  else begin
    let st = key_stream w in
    Hashx.int st w.cur;
    Hashx.key_of (Hashx.out st)
  end

(* ------------------------------------------------------------------ *)
(* Local steps of one thread, with call/return linking                 *)
(* ------------------------------------------------------------------ *)

(** Result of one local step of a thread, before the scheduler decides
    about switching. The [Msg.t] is the local message that labelled the
    step (with [Call]/[TailCall]/[Ret] already resolved by the linker). *)
type local_succ =
  | LNext of Msg.t * Footprint.t * t
  | LAbort

let set_thread w (t : thread) = { w with threads = IMap.add t.tid t w.threads }

let set_top w (t : thread) (xc : Lang.xcore) =
  match (t.stack, t.fhashes) with
  | [], _ | _, [] -> invalid_arg "set_top: terminated thread"
  | _ :: rest, _ :: hrest ->
    set_thread w
      { t with stack = xc :: rest; fhashes = Lang.xcore_hash xc :: hrest }

(** Pop the top frame of [t], delivering [v] to the caller frame below (or
    terminating the thread). *)
let pop_frame w (t : thread) (v : Value.t) : t option =
  match t.stack with
  | [] -> None
  | _ :: [] -> Some (set_thread w { t with stack = []; fhashes = [] })
  | _ :: Lang.XCore (l, caller) :: rest -> (
    match l.after_external caller (Some v) with
    | None -> None
    | Some caller' ->
      let top = Lang.XCore (l, caller') in
      let hrest =
        match t.fhashes with _ :: _ :: hs -> hs | _ -> assert false
      in
      Some
        (set_thread w
           {
             t with
             stack = top :: rest;
             fhashes = Lang.xcore_hash top :: hrest;
           }))

(** All local successors of thread [tid] in world [w]. Handles the
    built-in [print] external, cross-module calls, tail calls, returns,
    and the atomic bits. *)
let local_steps (w : t) (tid : int) : local_succ list =
  match IMap.find_opt tid w.threads with
  | None -> []
  | Some t -> (
    match t.stack with
    | [] -> []
    | Lang.XCore (l, core) :: _ ->
      let succs = l.step t.flist core w.mem in
      if succs = [] then [ LAbort ]
      else
        List.map
          (function
            | Lang.Stuck_abort -> LAbort
            | Lang.Next (msg, fp, core', mem') -> (
              let w = { w with mem = mem' } in
              let w_top = set_top w t (Lang.XCore (l, core')) in
              match msg with
              | Msg.Tau | Msg.Evt _ -> LNext (msg, fp, w_top)
              | Msg.EntAtom ->
                LNext
                  (msg, fp, { w_top with dbits = IMap.add tid true w.dbits })
              | Msg.ExtAtom ->
                LNext
                  (msg, fp, { w_top with dbits = IMap.add tid false w.dbits })
              | Msg.Ret v -> (
                let t' =
                  match IMap.find_opt tid w_top.threads with
                  | Some t' -> t'
                  | None -> assert false
                in
                match pop_frame w_top t' v with
                | Some w' -> LNext (msg, fp, w')
                | None -> LAbort)
              | Msg.Call ("print", [ Value.Vint n ]) -> (
                (* built-in observable output *)
                match l.after_external core' None with
                | Some core'' ->
                  LNext
                    ( Msg.Evt (Event.Print n),
                      fp,
                      set_top w t (Lang.XCore (l, core'')) )
                | None -> LAbort)
              | Msg.Call (f, args) -> (
                match Lang.resolve ~genv:w.genv w.modules ~entry:f ~args with
                | Some callee ->
                  let t' =
                    match IMap.find_opt tid w_top.threads with
                    | Some t' -> t'
                    | None -> assert false
                  in
                  LNext
                    ( msg,
                      fp,
                      set_thread w_top
                        {
                          t' with
                          stack = callee :: t'.stack;
                          fhashes = Lang.xcore_hash callee :: t'.fhashes;
                        } )
                | None -> LAbort)
              | Msg.TailCall ("print", [ Value.Vint n ]) -> (
                (* tail-calling the built-in: the event fires and the
                   current frame returns to its caller *)
                let t' =
                  match IMap.find_opt tid w_top.threads with
                  | Some t' -> t'
                  | None -> assert false
                in
                match pop_frame w_top t' (Value.Vint 0) with
                | Some w' -> LNext (Msg.Evt (Event.Print n), fp, w')
                | None -> LAbort)
              | Msg.TailCall (f, args) -> (
                match Lang.resolve ~genv:w.genv w.modules ~entry:f ~args with
                | Some callee ->
                  let rest =
                    match t.stack with [] -> [] | _ :: r -> r
                  in
                  let hrest =
                    match t.fhashes with [] -> [] | _ :: r -> r
                  in
                  LNext
                    ( msg,
                      fp,
                      set_thread w
                        {
                          t with
                          stack = callee :: rest;
                          fhashes = Lang.xcore_hash callee :: hrest;
                        } )
                | None -> LAbort)))
          succs)

(** Footprint-only successors, for the race predictor's per-world probe
    ([Cas_conc.Race.predict]): runs the language step like [local_steps]
    but skips successor-world construction — the [set_top] frame surgery,
    frame rehashing, and thread-map updates — everywhere except atomic
    entry, where Predict-1 needs the successor to accumulate the block's
    footprint. Abort-bound steps are dropped exactly as the predictor
    drops [LAbort] (each arm mirrors the corresponding [local_steps]
    arm's failure condition), so the returned footprints are precisely
    those of the [LNext] successors [local_steps] would build. *)
type pred_succ = PNext of Footprint.t | PEnter of Footprint.t * t

let local_preds (w : t) (tid : int) : pred_succ list =
  match IMap.find_opt tid w.threads with
  | None -> []
  | Some t -> (
    match t.stack with
    | [] -> []
    | Lang.XCore (l, core) :: _ ->
      (* would the [Ret]/tail-print pop succeed? (cf. [pop_frame]) *)
      let pop_ok v =
        match t.stack with
        | [] -> false
        | [ _ ] -> true
        | _ :: Lang.XCore (lc, c) :: _ -> lc.after_external c (Some v) <> None
      in
      List.filter_map
        (function
          | Lang.Stuck_abort -> None
          | Lang.Next (msg, fp, core', mem') -> (
            match msg with
            | Msg.Tau | Msg.Evt _ | Msg.ExtAtom -> Some (PNext fp)
            | Msg.EntAtom ->
              let w = { w with mem = mem' } in
              let w_top = set_top w t (Lang.XCore (l, core')) in
              Some
                (PEnter (fp, { w_top with dbits = IMap.add tid true w.dbits }))
            | Msg.Ret v -> if pop_ok v then Some (PNext fp) else None
            | Msg.Call ("print", [ Value.Vint _ ]) ->
              if l.after_external core' None <> None then Some (PNext fp)
              else None
            | Msg.Call (f, args) ->
              if Lang.resolve ~genv:w.genv w.modules ~entry:f ~args <> None
              then Some (PNext fp)
              else None
            | Msg.TailCall ("print", [ Value.Vint _ ]) ->
              if pop_ok (Value.Vint 0) then Some (PNext fp) else None
            | Msg.TailCall (f, args) ->
              if Lang.resolve ~genv:w.genv w.modules ~entry:f ~args <> None
              then Some (PNext fp)
              else None))
        (l.step t.flist core w.mem))

let pp ppf w =
  Fmt.pf ppf "@[<v>cur=%d mem=%a@ %a@]" w.cur
    Fmt.(any "...")
    ()
    Fmt.(
      list ~sep:cut (fun ppf (tid, t) ->
          Fmt.pf ppf "T%d%s: %a" tid
            (if dbit w tid then " [atomic]" else "")
            (list ~sep:(any " <- ") Lang.pp_xcore)
            t.stack))
    (IMap.bindings w.threads)
