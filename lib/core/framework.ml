(** The verification framework of Fig. 2 (and its Fig. 3 extension lives
    in [Cas_tso.Objsim]), assembled as executable checks.

    Where the paper proves implications between semantic statements
    (numbered 1–8 in Fig. 2), we check each statement on a concrete
    program: DRF by exhaustive race prediction, ≈/⊑ by bounded trace-set
    comparison, the module-local simulation by lockstep co-execution, and
    det(tl) along target runs. A [run] therefore returns one report per
    arrow of Fig. 2, which the test-suite asserts and the bench harness
    times. *)

open Cas_base
open Cas_langs
open Cas_conc

type step_report = {
  id : string;  (** which arrow/premise of Fig. 2 *)
  label : string;
  ok : bool;
  detail : string;
}

let pp_step ppf r =
  Fmt.pf ppf "[%s] %-42s %s%s" r.id r.label
    (if r.ok then "ok" else "FAIL")
    (if r.detail = "" then "" else " — " ^ r.detail)

type input = {
  name : string;
  clients : Clight.program list;
  objects : Cimp.program list;  (** compiled by the identity translation *)
  entries : string list;
}

type bounds = {
  max_steps : int;
  max_paths : int;
  max_worlds : int;
}

let default_bounds = { max_steps = 3000; max_paths = 120_000; max_worlds = 120_000 }

let source_prog (i : input) : Lang.prog =
  Lang.prog
    (List.map (fun c -> Lang.Mod (Clight.lang, c)) i.clients
    @ List.map (fun o -> Lang.Mod (Cimp.lang, o)) i.objects)
    i.entries

(** The compilation of Fig. 3 step 1: CompCert on clients, IdTrans on
    objects. *)
let target_prog ?options (i : input) : Lang.prog =
  Lang.prog
    (List.map
       (fun c -> Lang.Mod (Asm.lang, Cas_compiler.Driver.compile ?options c))
       i.clients
    @ List.map (fun o -> Lang.Mod (Cimp.lang, o)) i.objects)
    i.entries

type run = {
  input_name : string;
  reports : step_report list;
  all_ok : bool;
}

let pp_run ppf r =
  Fmt.pf ppf "@[<v2>%s:%s@ %a@]" r.input_name
    (if r.all_ok then "" else " (FAILURES)")
    Fmt.(list ~sep:cut pp_step)
    r.reports

let traces_or_empty b step p =
  match Refine.traces_of ~max_steps:b.max_steps ~max_paths:b.max_paths step p with
  | Ok t -> t
  | Error _ -> { Explore.traces = Explore.TraceSet.empty; complete = false }

(** Execute the whole Fig. 2 pipeline on one program. *)
let check_fig2 ?(bounds = default_bounds) ?options (i : input) : run =
  let reports = ref [] in
  let report id label ok detail =
    reports := { id; label; ok; detail } :: !reports
  in
  let b = bounds in
  let src = source_prog i in
  let tgt = target_prog ?options i in
  (* premise: DRF of the source, preemptive *)
  (match World.load src ~args:[] with
  | Error e ->
    report "pre" "source loads" false (Fmt.str "%a" World.pp_load_error e)
  | Ok w_src -> (
    match World.load tgt ~args:[] with
    | Error e ->
      report "pre" "target loads" false (Fmt.str "%a" World.pp_load_error e)
    | Ok w_tgt ->
      let drf_src = Race.drf ~max_worlds:b.max_worlds w_src in
      report "pre" "DRF(S1 ∥ ... ∥ Sn)" drf_src.Race.drf
        (Fmt.str "%a" Explore.pp_stats drf_src.Race.stats);
      let npdrf_src = Race.npdrf ~max_worlds:b.max_worlds w_src in
      report "6" "DRF(S) => NPDRF(S)"
        (not drf_src.Race.drf || npdrf_src.Race.drf)
        "";
      let npdrf_tgt = Race.npdrf ~max_worlds:b.max_worlds w_tgt in
      report "7" "NPDRF preserved by compilation" npdrf_tgt.Race.drf
        (Fmt.str "%a" Explore.pp_stats npdrf_tgt.Race.stats);
      let drf_tgt = Race.drf ~max_worlds:b.max_worlds w_tgt in
      report "8" "NPDRF(C) => DRF(C)"
        (not npdrf_tgt.Race.drf || drf_tgt.Race.drf)
        (Fmt.str "%a" Explore.pp_stats drf_tgt.Race.stats);
      (* trace sets under the four semantics *)
      let s_pre = traces_or_empty b Preemptive.steps src in
      let s_np = traces_or_empty b Nonpreemptive.steps src in
      let t_pre = traces_or_empty b Preemptive.steps tgt in
      let t_np = traces_or_empty b Nonpreemptive.steps tgt in
      let eq1 = Refine.equiv s_pre s_np in
      report "1" "S1 ∥...∥ Sn ≈ S1 |...| Sn (Lem. 9)" eq1.Refine.holds
        (Fmt.str "%a" Refine.pp_report eq1);
      let eq2 = Refine.equiv t_pre t_np in
      report "2" "C1 ∥...∥ Cn ≈ C1 |...| Cn (Lem. 9)" eq2.Refine.holds
        (Fmt.str "%a" Refine.pp_report eq2);
      let down = Refine.refines ~lhs:t_np ~rhs:s_np in
      report "5" "whole-program simulation (Lem. 6): C|... ⊑ S|..."
        down.Refine.holds
        (Fmt.str "%a" Refine.pp_report down);
      let up = Refine.refines ~lhs:s_np ~rhs:t_np in
      report "4" "flip with det(tl): S|... ⊑ C|..." up.Refine.holds
        (Fmt.str "%a" Refine.pp_report up);
      let final = Refine.refines ~lhs:t_pre ~rhs:s_pre in
      report "3" "semantics preservation: C ∥... ⊑ S ∥..." final.Refine.holds
        (Fmt.str "%a" Refine.pp_report final)));
  let reports = List.rev !reports in
  { input_name = i.name; reports; all_ok = List.for_all (fun r -> r.ok) reports }

(* ------------------------------------------------------------------ *)
(* Per-pass module-local simulation (Lem. 13 / Def. 10)                *)
(* ------------------------------------------------------------------ *)

type pass_sim_report = {
  pass : string;
  entry : string;
  outcome : Simulation.outcome;
  cached : bool;
      (** the verdict came from the certificate cache — no checker steps
          were executed for it in this run *)
  checker_steps : int;  (** steps executed by the checker in *this* run *)
}

let pp_pass_sim ppf r =
  Fmt.pf ppf "%-14s %-12s %a%s" r.pass r.entry Simulation.pp_outcome r.outcome
    (if r.cached then " (cached)" else "")

let sim_ok = function
  | Simulation.Sim_ok _ -> true
  | Simulation.Sim_inconclusive _ -> true (* bounded: no counterexample *)
  | Simulation.Sim_fail _ -> false

(** Per-function hit/miss aggregation of a certify report list: one row
    per function, in first-appearance order, with the verdict count, how
    many came from the cache (either tier) and the checker steps run.
    Shared by the [casc] CLI and the certification daemon, so both render
    the same rows for the same input. *)
let per_function_counts (reports : pass_sim_report list) :
    (string * (int * int * int)) list =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (r : pass_sim_report) ->
      let v, c, s =
        match Hashtbl.find_opt tbl r.entry with
        | Some x -> x
        | None ->
          order := r.entry :: !order;
          (0, 0, 0)
      in
      Hashtbl.replace tbl r.entry
        (v + 1, (c + if r.cached then 1 else 0), s + r.checker_steps))
    reports;
  List.rev_map (fun e -> (e, Hashtbl.find tbl e)) !order

(* Memoized per-pass simulation verdicts — the other half of the
   certificate cache, in two tiers.

   Function tier ("SimVerdict"): one verdict per (pass, function),
   keyed by the *body digests* of the function on both sides of the
   pass ([Lang.digest_fundef]) plus everything else the checker
   consumes: both sides' global declarations, the compilation options,
   the entry arguments and the checker bounds. This is sound because
   [Simulation.check_verdict] co-executes only the entry function —
   calls are cut at switch points and answered by the environment — so
   a verdict genuinely depends on nothing but the two bodies, the
   globals and those inputs. Editing one function of a module therefore
   re-runs the checker only for that function's path through the
   pipeline; every untouched function is a pure hit.

   Module tier ("SimModule"): the full sweep for one compilation unit,
   keyed by its context hash (pipeline version + options + source). A
   hit here skips even the per-function digesting.

   Only default-environment runs are memoized: a caller-supplied [env]
   is an arbitrary closure we cannot content-address. *)
let verdicts : Simulation.verdict Cas_compiler.Cache.store =
  Cas_compiler.Cache.store ~name:"SimVerdict" ()

let module_verdicts :
    (string * string * Simulation.verdict) list Cas_compiler.Cache.store =
  Cas_compiler.Cache.store ~name:"SimModule" ()

(** Check the footprint-preserving simulation between every consecutive
    pair of pipeline stages, for every function of the module, on the
    execution driven by [env]. This is the executable analogue of
    verifying each pass of Fig. 11 against Def. 10. The stage list comes
    from the registered pipeline ([Cas_compiler.Pipeline.fig11]) via the
    packed trace of [Driver.compile_unit], so a newly registered pass is
    certified without touching this module. [cache:false] forces
    re-checking. *)
let check_passes ?env ?max_switches ?tau_bound ?(cache = true) ?options
    (p : Clight.program) : pass_sim_report list =
  let open Cas_compiler in
  let c = Driver.compile_unit ?options ~cache p in
  let entries = List.map (fun f -> f.Clight.fname) p.Clight.funcs in
  let entry_arity e =
    match List.find_opt (fun f -> f.Clight.fname = e) p.Clight.funcs with
    | Some f -> List.length f.Clight.fparams
    | None -> 0
  in
  let args_of e = List.init (entry_arity e) (fun i -> Value.Vint (7 + i)) in
  let memoizable = cache && env = None in
  let rec stage_pairs = function
    | (_, m1) :: (((pname, m2) :: _) as rest) ->
      (pname, m1, m2) :: stage_pairs rest
    | _ -> []
  in
  (* Per-pass pairs, plus the whole compiler end to end (Lem. 13 /
     Correct(CompCert)). *)
  let pairs =
    stage_pairs c.Driver.c_trace
    @
    match (c.Driver.c_trace, List.rev c.Driver.c_trace) with
    | (_, first) :: _, (_, last) :: _ -> [ ("Compiler", first, last) ]
    | _ -> []
  in
  (* Function-tier hits recorded while producing the sweep, consulted
     when the reports are assembled below. *)
  let fn_hits : (string * string, bool) Hashtbl.t = Hashtbl.create 64 in
  let chk (pass, src_mod, tgt_mod) =
    let (Lang.Mod (src_lang, src_code)) = src_mod in
    let (Lang.Mod (tgt_lang, tgt_code)) = tgt_mod in
    let glbs =
      lazy
        (Cache.digest
           ( src_lang.Lang.globals_of src_code,
             tgt_lang.Lang.globals_of tgt_code ))
    in
    List.map
      (fun entry ->
        let run () =
          Simulation.check_verdict ~src:(src_lang, src_code)
            ~tgt:(tgt_lang, tgt_code) ~entry ~args:(args_of entry) ?env
            ?max_switches ?tau_bound ()
        in
        let v, hit =
          if not memoizable then (run (), `Off)
          else
            let key =
              Cache.digest
                ( "sim-fn",
                  pass,
                  Lang.digest_fundef src_mod entry,
                  Lang.digest_fundef tgt_mod entry,
                  Lazy.force glbs,
                  options,
                  args_of entry,
                  max_switches,
                  tau_bound )
            in
            Cache.find_or_add verdicts key run
        in
        Hashtbl.replace fn_hits (pass, entry) (hit = `Hit);
        (pass, entry, v))
      entries
  in
  let sweep () = List.concat_map chk pairs in
  let triples, module_hit =
    if not memoizable then (sweep (), `Off)
    else
      let key =
        Cache.digest (c.Driver.c_context, "sim-module", max_switches, tau_bound)
      in
      Cache.find_or_add module_verdicts key sweep
  in
  (* One source of truth for the stats: a verdict is [cached] iff it was
     served by either tier, and cached verdicts report 0 checker steps. *)
  List.map
    (fun (pass, entry, v) ->
      let cached =
        module_hit = `Hit
        || Option.value ~default:false (Hashtbl.find_opt fn_hits (pass, entry))
      in
      {
        pass;
        entry;
        outcome = v.Simulation.v_outcome;
        cached;
        checker_steps = (if cached then 0 else Simulation.verdict_steps v);
      })
    triples

(* ------------------------------------------------------------------ *)
(* Certificate composition at link time (Lem. 6, empirically)          *)
(* ------------------------------------------------------------------ *)

(** One module's contribution to the whole-program certificate: the
    end-to-end module-local simulation re-established (or fetched from
    the certificate cache) against the module's *linked* role. *)
type compose_module_report = {
  cm_module : string;  (** module name, e.g. the object file it came from *)
  cm_entry : string;
  cm_outcome : Simulation.outcome;
  cm_cached : bool;
  cm_steps : int;  (** checker steps executed in *this* run (0 if cached) *)
}

let pp_compose_module ppf r =
  Fmt.pf ppf "%-16s %-12s %a%s" r.cm_module r.cm_entry Simulation.pp_outcome
    r.cm_outcome
    (if r.cm_cached then " (cached)" else "")

(** The whole-program certificate produced by composing per-module
    certificates, as the linker checks it. The paper *proves* the linking
    lemma (Lem. 6): footprint-preserving module-local simulations
    compose into a whole-program simulation, provided each module's
    footprint stays confined to its own freelist and the shared globals.
    We check exactly those premises on the linked program:

    - [comp_modules]: each module's simulation re-validated (or reused
      from the certificate cache when the object is byte-identical);
    - [comp_confinement]: every step of every reachable world of the
      linked target touches only shared globals and the scheduled
      thread's freelist — the disjointness premise that makes the
      per-module footprints composable;
    - [comp_boundary]: the composed simulation itself, re-validated by
      co-executing the linked source and target programs and comparing
      their bounded trace sets (target ⊑ source, non-preemptive — the
      conclusion of Lem. 6 at the link boundary). *)
type compose_report = {
  comp_modules : compose_module_report list;
  comp_confinement : step_report;
  comp_boundary : step_report;
  comp_ok : bool;
}

let pp_compose ppf r =
  Fmt.pf ppf "@[<v>%a@ %a@ %a@]"
    Fmt.(list ~sep:cut pp_compose_module)
    r.comp_modules pp_step r.comp_confinement pp_step r.comp_boundary

(* Memoized link-time module verdicts: keyed by the caller (the linker
   keys them by object-file content digests), so relinking with an
   unchanged object re-delivers the verdict with zero checker steps. *)
let link_verdicts : Simulation.verdict Cas_compiler.Cache.store =
  Cas_compiler.Cache.store ~name:"LinkVerdict" ()

(** Footprint confinement of the linked program: explore the reachable
    worlds (preemptive, bounded by [max_worlds]) and verify that every
    enabled local step's footprint stays inside the shared global blocks
    plus the scheduled thread's own freelist. *)
let check_confinement ?(max_worlds = default_bounds.max_worlds)
    (tgt : Lang.prog) : step_report =
  let label = "footprints confined to freelists" in
  match World.load tgt ~args:[] with
  | Error e ->
    {
      id = "conf";
      label;
      ok = false;
      detail = Fmt.str "target loads: %a" World.pp_load_error e;
    }
  | Ok w0 ->
    let nglobals = Genv.block_count w0.World.genv in
    let violation = ref None in
    let check_world w =
      if !violation = None then
        List.iter
          (fun tid ->
            match World.IMap.find_opt tid w.World.threads with
            | None -> ()
            | Some t ->
              List.iter
                (function
                  | World.LAbort -> ()
                  | World.LNext (_, fp, _) ->
                    let confined =
                      Addr.Set.for_all
                        (fun (a : Addr.t) ->
                          a.Addr.block < nglobals
                          || Flist.owns_addr t.World.flist a)
                        (Footprint.locs fp)
                    in
                    if (not confined) && !violation = None then
                      violation := Some (tid, fp))
                (World.local_steps w tid))
          (World.live_tids w)
    in
    let st =
      Explore.reachable ~max_worlds Preemptive.steps (Gsem.initials w0)
        ~visit:check_world
    in
    (match !violation with
    | Some (tid, fp) ->
      {
        id = "conf";
        label;
        ok = false;
        detail =
          Fmt.str "thread %d escapes its freelist: %a" tid Footprint.pp fp;
      }
    | None ->
      {
        id = "conf";
        label;
        ok = true;
        detail = Fmt.str "%a" Explore.pp_stats st;
      })

(** Compose per-module certificates into a whole-program certificate on
    the linked program.

    [modules] pairs each module name with its source and target forms;
    [entries] are the linked program's thread entry points.
    [verdict_key], when it returns [Some k] for a module entry, memoizes
    that module's simulation verdict in the certificate cache under [k]
    (the linker passes content digests of the object file, making
    incremental relinks skip re-verification of unchanged modules). It
    receives the module's position in [modules] besides its name: names
    need not be unique (two objects may carry the same module name with
    disjoint exports), so a key derived from the name alone could serve
    one module another's verdict.
    [jobs > 1] fans the per-module checks out over OCaml 5 domains. *)
let compose_certificates ?(bounds = default_bounds) ?max_switches ?tau_bound
    ?(jobs = 1)
    ?(verdict_key =
      fun ~mod_index:_ ~mod_name:_ ~entry:_ -> (None : string option))
    ~(modules : (string * Lang.modu * Lang.modu) list)
    ~(entries : string list) () : compose_report =
  let module_task idx (name, src_mod, tgt_mod) () : compose_module_report list
      =
    match (src_mod, tgt_mod) with
    | Lang.Mod (sl, sc), Lang.Mod (tl, tc) ->
      List.map
        (fun (entry, arity) ->
          let args = List.init arity (fun i -> Value.Vint (7 + i)) in
          let run () =
            Simulation.check_verdict ~src:(sl, sc) ~tgt:(tl, tc) ~entry ~args
              ?max_switches ?tau_bound ()
          in
          let v, hit =
            match verdict_key ~mod_index:idx ~mod_name:name ~entry with
            | None -> (run (), `Off)
            | Some key -> Cas_compiler.Cache.find_or_add link_verdicts key run
          in
          let cached = hit = `Hit in
          {
            cm_module = name;
            cm_entry = entry;
            cm_outcome = v.Simulation.v_outcome;
            cm_cached = cached;
            cm_steps = (if cached then 0 else Simulation.verdict_steps v);
          })
        (Lang.defs tgt_mod)
  in
  let per_module =
    List.concat (Pool.run ~jobs (List.mapi module_task modules))
  in
  let src_prog = Lang.prog (List.map (fun (_, s, _) -> s) modules) entries in
  let tgt_prog = Lang.prog (List.map (fun (_, _, t) -> t) modules) entries in
  let confinement = check_confinement ~max_worlds:bounds.max_worlds tgt_prog in
  let boundary =
    let t_np = traces_or_empty bounds Nonpreemptive.steps tgt_prog in
    let s_np = traces_or_empty bounds Nonpreemptive.steps src_prog in
    let r = Refine.refines ~lhs:t_np ~rhs:s_np in
    {
      id = "link";
      label = "linked target ⊑ linked source (Lem. 6)";
      ok = r.Refine.holds;
      detail = Fmt.str "%a" Refine.pp_report r;
    }
  in
  let modules_ok =
    List.for_all (fun r -> sim_ok r.cm_outcome) per_module
  in
  {
    comp_modules = per_module;
    comp_confinement = confinement;
    comp_boundary = boundary;
    comp_ok = modules_ok && confinement.ok && boundary.ok;
  }
