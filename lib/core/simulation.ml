(** The footprint-preserving module-local simulation (Def. 2, Def. 3,
    Fig. 8), as an executable checker.

    The Coq development *proves* (sl, ge, γ) ≼_φ (tl, ge', π) for every
    compiler pass; we *check* it on concrete executions: source and target
    modules are co-executed between switch points (non-τ messages),
    accumulating footprints ∆ and δ, and at every switch point the checker
    verifies exactly the obligations of Def. 3:

    - the two sides emit the same message ι (values related by the
      dynamically-inferred address injection φ/β);
    - footprints stay in scope: ∆ ⊆ F ∪ S and δ ⊆ F ∪ µ.S;
    - FPmatch(µ, ∆, δ): shared-memory reads of the target come from
      source reads-or-writes, shared writes from source writes (Fig. 8);
    - the shared memories are related (the Inv of Fig. 8);
    - footprints are cleared after the switch point, and the environment
      may act (the Rely): the checker injects return values and shared
      writes on both sides.

    Because compiled code's stack layout differs from the source's, the
    address mapping φ is inferred on the fly as a partial bijection β,
    seeded with the identity on globals (the paper's ⌊φ⌋(ge) = ge'
    requirement instantiated to our pass pipeline, which preserves global
    layouts). *)

open Cas_base

type env_action = {
  ret : Value.t;  (** value returned for an external call *)
  perturb : (string * int * int) option;
      (** optional Rely write: (global, offset, value) on both sides *)
}

(** A deterministic environment script: action for the [i]-th external
    interaction. *)
type env = int -> env_action

let default_env i =
  { ret = Value.Vint (100 + i); perturb = None }

type failure = {
  at_switch : int;
  reason : string;
}

type outcome =
  | Sim_ok of { switches : int; steps_src : int; steps_tgt : int }
  | Sim_fail of failure
  | Sim_inconclusive of string
      (** e.g. divergence bound hit before the next switch point *)

let pp_outcome ppf = function
  | Sim_ok r ->
    Fmt.pf ppf "ok (%d switch points, %d src / %d tgt steps)" r.switches
      r.steps_src r.steps_tgt
  | Sim_fail f -> Fmt.pf ppf "FAIL at switch %d: %s" f.at_switch f.reason
  | Sim_inconclusive s -> Fmt.pf ppf "inconclusive: %s" s

(** A reusable certificate of one checker run: the outcome plus the work
    it took to establish it. Verdicts are pure data, so the certificate
    cache can memoize them ([Cascompcert.Framework]) — a cache hit
    re-delivers the verdict with zero checker steps executed, which is
    the per-module half of the paper's certified separate compilation. *)
type verdict = {
  v_outcome : outcome;
  v_switches : int;  (** switch points crossed before the checker stopped *)
  v_steps_src : int;  (** source-side small steps executed *)
  v_steps_tgt : int;  (** target-side small steps executed *)
}

let verdict_steps v = v.v_steps_src + v.v_steps_tgt

let pp_verdict ppf v =
  Fmt.pf ppf "%a [%d checker steps]" pp_outcome v.v_outcome (verdict_steps v)

(* ------------------------------------------------------------------ *)
(* Address correspondence β (the operational face of φ)                *)
(* ------------------------------------------------------------------ *)

type beta = {
  fwd : (Addr.t, Addr.t) Hashtbl.t;
  bwd : (Addr.t, Addr.t) Hashtbl.t;
}

let beta_create () = { fwd = Hashtbl.create 16; bwd = Hashtbl.create 16 }

(** Record/verify the correspondence a_src ↔ a_tgt, enforcing
    injectivity (wf(µ) in Fig. 8 requires µ.f injective). *)
let beta_match (b : beta) (src : Addr.t) (tgt : Addr.t) : bool =
  match (Hashtbl.find_opt b.fwd src, Hashtbl.find_opt b.bwd tgt) with
  | Some t, _ when not (Addr.equal t tgt) -> false
  | _, Some s when not (Addr.equal s src) -> false
  | Some _, Some _ -> true
  | _ ->
    Hashtbl.replace b.fwd src tgt;
    Hashtbl.replace b.bwd tgt src;
    true

let values_match b (v1 : Value.t) (v2 : Value.t) =
  match (v1, v2) with
  | Value.Vint a, Value.Vint c -> a = c
  | Value.Vptr a, Value.Vptr c -> beta_match b a c
  | Value.Vundef, Value.Vundef -> true
  | Value.Vundef, _ ->
    (* target may refine undef (e.g. an uninitialized temp materialized
       as a concrete register value); CompCert's Val.lessdef *)
    true
  | _ -> false

let msgs_match b (m1 : Msg.t) (m2 : Msg.t) =
  match (m1, m2) with
  | Msg.Tau, Msg.Tau | Msg.EntAtom, Msg.EntAtom | Msg.ExtAtom, Msg.ExtAtom ->
    true
  | Msg.Evt e1, Msg.Evt e2 -> Event.equal e1 e2
  | Msg.Ret v1, Msg.Ret v2 -> values_match b v1 v2
  | Msg.Call (f, a1), Msg.Call (g, a2)
  | Msg.TailCall (f, a1), Msg.TailCall (g, a2)
  | Msg.Call (f, a1), Msg.TailCall (g, a2)
  | Msg.TailCall (f, a1), Msg.Call (g, a2) ->
    (* a tail call is observationally a call whose return is forwarded *)
    String.equal f g
    && List.length a1 = List.length a2
    && List.for_all2 (values_match b) a1 a2
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Running one side to its next switch point                           *)
(* ------------------------------------------------------------------ *)

type 'core run_result =
  | Switch of Msg.t * Footprint.t * 'core * Memory.t * int
  | Run_abort
  | Run_nondet  (** target language must be deterministic (det(tl)) *)
  | Run_diverge

let run_to_switch (type code core) (lang : (code, core) Lang.t) fl core mem
    ~bound : core run_result =
  let rec go core mem acc steps =
    if steps > bound then Run_diverge
    else begin
      (* Under --paranoid-fp, cross-check the streamed hash against the
         fingerprint string on every core the checker visits. The checker
         co-executes every pipeline stage, so this sweeps all IRs. *)
      Lang.audit_core lang core;
      match lang.Lang.step fl core mem with
      | [] -> Run_abort
      | [ Lang.Stuck_abort ] -> Run_abort
      | [ Lang.Next (Msg.Tau, fp, core', mem') ] ->
        go core' mem' (Footprint.union acc fp) (steps + 1)
      | [ Lang.Next (msg, fp, core', mem') ] ->
        Switch (msg, Footprint.union acc fp, core', mem', steps + 1)
      | _ :: _ :: _ -> Run_nondet
    end
  in
  go core mem Footprint.empty 0

(* ------------------------------------------------------------------ *)
(* The checker                                                          *)
(* ------------------------------------------------------------------ *)

(** Check (sl, ge, γ) ≼ (tl, ge', π) on the execution determined by
    [entry], [args] and the environment script [env].

    Both modules are loaded with their own global environment (the passes
    preserve global declarations, so the block layouts coincide) and the
    same freelist. *)
let check_verdict (type code1 core1 code2 core2)
    ~(src : (code1, core1) Lang.t * code1)
    ~(tgt : (code2, core2) Lang.t * code2) ~(entry : string)
    ~(args : Value.t list) ?(env = default_env) ?(max_switches = 64)
    ?(tau_bound = 50_000) () : verdict =
  let src_lang, src_code = src in
  let tgt_lang, tgt_code = tgt in
  let steps_s_total = ref 0 and steps_t_total = ref 0 in
  let switches_seen = ref 0 in
  let outcome =
  let genv_of glb = Genv.link [ glb ] in
  match
    ( genv_of (src_lang.Lang.globals_of src_code),
      genv_of (tgt_lang.Lang.globals_of tgt_code) )
  with
  | Error n, _ | _, Error n ->
    Sim_inconclusive (Fmt.str "global linking failed on %s" n)
  | Ok genv_s, Ok genv_t -> (
    let mem_s0 = Genv.init_memory genv_s in
    let mem_t0 = Genv.init_memory genv_t in
    let nglobals = Genv.block_count genv_s in
    let fl = Flist.make ~offset:nglobals ~stride:1 in
    (* shared region S: the global blocks; identical on both sides *)
    let shared = Memory.dom mem_s0 in
    let in_scope fp =
      Addr.Set.for_all
        (fun a -> Addr.Set.mem a shared || Flist.owns_addr fl a)
        (Footprint.locs fp)
    in
    let beta = beta_create () in
    Addr.Set.iter (fun a -> ignore (beta_match beta a a)) shared;
    let shared_related mem_s mem_t =
      Addr.Set.for_all
        (fun a ->
          match (Memory.peek mem_s a, Memory.peek mem_t a) with
          | Some v1, Some v2 -> values_match beta v1 v2
          | None, None -> true
          | _ -> false)
        shared
    in
    let fpmatch (delta : Footprint.t) (d : Footprint.t) =
      (* FPmatch(µ, ∆, δ) with φ = id on S (Fig. 8) *)
      let s_rs = Addr.Set.inter (Footprint.rs_set d) shared in
      let s_ws = Addr.Set.inter (Footprint.ws_set d) shared in
      Addr.Set.subset s_rs
        (Addr.Set.union (Footprint.rs_set delta) (Footprint.ws_set delta))
      && Addr.Set.subset s_ws (Footprint.ws_set delta)
    in
    let perturb_mem genv mem (g, ofs, v) ~perm =
      match Genv.find_block genv g with
      | None -> mem
      | Some b -> (
        match Memory.store ~perm mem (Addr.make b ofs) (Value.Vint v) with
        | Ok m -> m
        | Error _ -> mem)
    in
    match
      ( src_lang.Lang.init_core ~genv:genv_s src_code ~entry ~args,
        tgt_lang.Lang.init_core ~genv:genv_t tgt_code ~entry ~args )
    with
    | None, None -> Sim_inconclusive "entry not defined in either module"
    | Some _, None ->
      Sim_fail { at_switch = 0; reason = "entry missing in target" }
    | None, Some _ ->
      Sim_fail { at_switch = 0; reason = "entry missing in source" }
    | Some c_s, Some c_t ->
      let rec loop c_s mem_s c_t mem_t switches =
        switches_seen := switches;
        if switches >= max_switches then
          Sim_ok
            {
              switches;
              steps_src = !steps_s_total;
              steps_tgt = !steps_t_total;
            }
        else
          match run_to_switch src_lang fl c_s mem_s ~bound:tau_bound with
          | Run_diverge ->
            Sim_inconclusive "source diverges before next switch point"
          | Run_nondet ->
            Sim_fail
              { at_switch = switches; reason = "source module nondeterministic" }
          | Run_abort ->
            (* source aborts: target is allowed anything (refinement) *)
            Sim_ok
              {
                switches;
                steps_src = !steps_s_total;
                steps_tgt = !steps_t_total;
              }
          | Switch (msg_s, delta, c_s', mem_s', n_s) -> (
            steps_s_total := !steps_s_total + n_s;
            match run_to_switch tgt_lang fl c_t mem_t ~bound:tau_bound with
            | Run_diverge ->
              Sim_fail
                {
                  at_switch = switches;
                  reason = "target diverges where source switches";
                }
            | Run_nondet ->
              Sim_fail
                {
                  at_switch = switches;
                  reason = "target language nondeterministic (det(tl) fails)";
                }
            | Run_abort ->
              Sim_fail
                { at_switch = switches; reason = "target aborts, source does not" }
            | Switch (msg_t, d, c_t', mem_t', n_t) ->
              steps_t_total := !steps_t_total + n_t;
              if not (msgs_match beta msg_s msg_t) then
                Sim_fail
                  {
                    at_switch = switches;
                    reason =
                      Fmt.str "messages differ: source %a, target %a" Msg.pp
                        msg_s Msg.pp msg_t;
                  }
              else if not (in_scope delta) then
                Sim_fail
                  {
                    at_switch = switches;
                    reason =
                      Fmt.str "source footprint out of scope: %a" Footprint.pp
                        delta;
                  }
              else if not (in_scope d) then
                Sim_fail
                  {
                    at_switch = switches;
                    reason =
                      Fmt.str "target footprint out of scope: %a" Footprint.pp d;
                  }
              else if not (fpmatch delta d) then
                Sim_fail
                  {
                    at_switch = switches;
                    reason =
                      Fmt.str "FPmatch fails: source %a, target %a"
                        Footprint.pp delta Footprint.pp d;
                  }
              else if not (shared_related mem_s' mem_t') then
                Sim_fail
                  {
                    at_switch = switches;
                    reason = "shared memories unrelated at switch point";
                  }
              else
                (* Switch point passed. Apply the environment (Rely), then
                   resume both sides with footprints cleared. *)
                let continue_after c_s c_t mem_s mem_t =
                  loop c_s mem_s c_t mem_t (switches + 1)
                in
                let finished () =
                  switches_seen := switches + 1;
                  Sim_ok
                    {
                      switches = switches + 1;
                      steps_src = !steps_s_total;
                      steps_tgt = !steps_t_total;
                    }
                in
                (* Run one side to its final Ret after the other side
                   tail-called away; the forwarded return value must be
                   the environment's. *)
                let expect_ret (type code core) (lang : (code, core) Lang.t)
                    core mem (ret : Value.t) ~side =
                  match lang.Lang.after_external core (Some ret) with
                  | None ->
                    Sim_fail
                      {
                        at_switch = switches;
                        reason = side ^ " cannot resume after call";
                      }
                  | Some core -> (
                    match run_to_switch lang fl core mem ~bound:tau_bound with
                    | Switch (Msg.Ret v, _, _, _, _)
                      when values_match beta v ret || values_match beta ret v
                      ->
                      finished ()
                    | Switch (m, _, _, _, _) ->
                      Sim_fail
                        {
                          at_switch = switches;
                          reason =
                            Fmt.str
                              "%s should forward the tail-callee's return \
                               but emitted %a"
                              side Msg.pp m;
                        }
                    | _ ->
                      Sim_fail
                        {
                          at_switch = switches;
                          reason =
                            side
                            ^ " diverges/aborts instead of forwarding the \
                               tail-callee's return";
                        })
                in
                (match (msg_s, msg_t) with
                | Msg.Ret _, _ -> finished ()
                | Msg.TailCall _, Msg.TailCall _ -> finished ()
                | Msg.Call _, Msg.TailCall _ ->
                  (* target reuses its frame; source must return the
                     callee's value unchanged *)
                  let act = env switches in
                  expect_ret src_lang c_s' mem_s' act.ret ~side:"source"
                | Msg.TailCall _, Msg.Call _ ->
                  let act = env switches in
                  expect_ret tgt_lang c_t' mem_t' act.ret ~side:"target"
                | Msg.Call _, Msg.Call _ -> (
                  let act = env switches in
                  let mem_s, mem_t =
                    match act.perturb with
                    | None -> (mem_s', mem_t')
                    | Some p ->
                      ( perturb_mem genv_s mem_s' p ~perm:Perm.Normal,
                        perturb_mem genv_t mem_t' p ~perm:Perm.Normal )
                  in
                  match
                    ( src_lang.Lang.after_external c_s' (Some act.ret),
                      tgt_lang.Lang.after_external c_t' (Some act.ret) )
                  with
                  | Some c_s, Some c_t -> continue_after c_s c_t mem_s mem_t
                  | _ ->
                    Sim_fail
                      {
                        at_switch = switches;
                        reason = "resume after external failed";
                      })
                | _ -> continue_after c_s' c_t' mem_s' mem_t')
          )
      in
      loop c_s mem_s0 c_t mem_t0 0)
  in
  {
    v_outcome = outcome;
    v_switches = !switches_seen;
    v_steps_src = !steps_s_total;
    v_steps_tgt = !steps_t_total;
  }

(** Check (sl, ge, γ) ≼ (tl, ge', π), outcome only (see [check_verdict]
    for the reusable certificate). *)
let check ~src ~tgt ~entry ~args ?env ?max_switches ?tau_bound () : outcome =
  (check_verdict ~src ~tgt ~entry ~args ?env ?max_switches ?tau_bound ())
    .v_outcome

(* ------------------------------------------------------------------ *)
(* Determinism of a module language on reachable cores — det(tl)       *)
(* ------------------------------------------------------------------ *)

let det_on_run (type code core) (lang : (code, core) Lang.t) fl core mem
    ~bound : bool =
  let rec go core mem steps =
    if steps > bound then true
    else
      match lang.Lang.step fl core mem with
      | [] | [ Lang.Stuck_abort ] -> true
      | [ Lang.Next (Msg.Ret _, _, _, _) ] -> true
      | [ Lang.Next (_, _, core', mem') ] -> go core' mem' (steps + 1)
      | _ :: _ :: _ -> false
  in
  go core mem 0

(* ------------------------------------------------------------------ *)
(* Reach-closedness — Def. 4                                           *)
(* ------------------------------------------------------------------ *)

type rc_violation = { rc_step : int; rc_reason : string }

let pp_rc_violation ppf v =
  Fmt.pf ppf "step %d: %s" v.rc_step v.rc_reason

(** Executable check of ReachClose(sl, ge, γ) (Def. 4): along an execution
    of the module — interleaved with environment steps satisfying the rely
    R (shared writes of non-pointer values, which preserve closedness) —
    every step's footprint must satisfy HG: ∆ ⊆ F ∪ S, and the shared
    region stays closed (no pointers from S into any freelist). The
    compilation correctness theorems assume source modules are
    reach-closed; this is the premise-side check. *)
let check_reach_close (type code core) (lang : (code, core) Lang.t)
    (code : code) ~(entry : string) ~(args : Value.t list)
    ?(env = default_env) ?(max_steps = 20_000) () : rc_violation list =
  match Genv.link [ lang.Lang.globals_of code ] with
  | Error n -> [ { rc_step = 0; rc_reason = "global linking failed on " ^ n } ]
  | Ok genv -> (
    let mem0 = Genv.init_memory genv in
    let fl = Flist.make ~offset:(Genv.block_count genv) ~stride:1 in
    let shared = Memory.dom mem0 in
    match lang.Lang.init_core ~genv code ~entry ~args with
    | None -> []
    | Some core ->
      let violations = ref [] in
      let record step reason =
        violations := { rc_step = step; rc_reason = reason } :: !violations
      in
      let check_hg step (fp : Footprint.t) mem' =
        if
          not
            (Addr.Set.for_all
               (fun a -> Addr.Set.mem a shared || Flist.owns_addr fl a)
               (Footprint.locs fp))
        then record step (Fmt.str "footprint out of scope: %a" Footprint.pp fp);
        if not (Memory.closed_on shared mem') then
          record step "shared region not closed (stack pointer escaped)"
      in
      let rec go core mem step ncalls =
        if step >= max_steps then ()
        else
          match lang.Lang.step fl core mem with
          | [] | Lang.Stuck_abort :: _ -> ()
          | Lang.Next (msg, fp, core', mem') :: _ -> (
            check_hg step fp mem';
            match msg with
            | Msg.Ret _ | Msg.TailCall _ -> ()
            | Msg.Call _ -> (
              (* rely step: the environment may write shared integers *)
              let act = env ncalls in
              let mem' =
                match act.perturb with
                | None -> mem'
                | Some (g, ofs, v) -> (
                  match Genv.find_block genv g with
                  | None -> mem'
                  | Some b -> (
                    match
                      Memory.store mem' (Addr.make b ofs) (Value.Vint v)
                    with
                    | Ok m -> m
                    | Error _ -> mem'))
              in
              match lang.Lang.after_external core' (Some act.ret) with
              | Some core'' -> go core'' mem' (step + 1) (ncalls + 1)
              | None -> ())
            | _ -> go core' mem' (step + 1) ncalls)
      in
      go core mem0 0 0;
      List.rev !violations)
