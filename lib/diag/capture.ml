(** Capture: turn a negative verdict into a schedule.

    Race capture threads a [Cas_mc.Recorder] through the chosen engine's
    exploration of the SC thread-selection view and, on a racy verdict,
    reconstructs the recorded spanning-tree path to the racy world.
    Deterministically — the racy world is chosen by minimal
    [Cas_conc.Race.witness_key] over every racy world visited, not by
    visit order — so the captured schedule is a function of the program
    and engine, stable across [--jobs] (satellite 1).

    Refinement and abort capture search the uniform [Sem.state] view
    directly (depth-first with on-path cycle cutting): a refinement
    failure arrives as an event trace the reference side cannot match
    ([Cas_tso.Objsim.guarantee_report.missing]), and the schedule
    realizing that trace must be rediscovered — trace sets do not retain
    schedules, by design. *)

open Cas_base

type race_capture = {
  rc_report : Cas_conc.Race.drf_report;
  rc_steps : Witness.step list;  (** [] when the program is DRF *)
  rc_verdict : Witness.verdict option;
}

(** Run the race predictor over the selection view with a recorder
    attached, and reconstruct the schedule to the minimal racy world.
    All three engines explore the same selection system here (the naive
    engine's historical scheduler-explicit view carries no thread ids,
    which a schedule needs). *)
let race ?(engine = Cas_mc.Engine.Naive) ?jobs ?max_worlds
    (w0 : Cas_conc.World.t) : race_capture =
  let recorder = Cas_mc.Recorder.create () in
  let best = ref None in
  (* witness step digests are [Sem.digest] of the recorder's child keys,
     so capture must explore under the full fingerprint strings, not the
     engines' fixed-width hash keys — recorded witnesses stay stable
     across the key representation *)
  let sys =
    {
      Cas_conc.Engine.selection_system with
      Cas_mc.Mcsys.fingerprint = Cas_conc.World.fingerprint_nocur;
    }
  in
  let st =
    Cas_mc.Engine.reachable ~engine ?jobs ?max_worlds ~recorder sys [ w0 ]
      ~visit:(fun w ->
        match Cas_conc.Race.race_witness w with
        | None -> ()
        | Some wt ->
          let key = Cas_conc.Race.witness_key w wt in
          (match !best with
          | Some (key', _, _) when key' <= key -> ()
          | _ -> best := Some (key, wt, w)))
  in
  let report witness witness_world =
    {
      Cas_conc.Race.drf = witness = None;
      witness;
      witness_world;
      stats = Cas_conc.Explore.stats_of_mc st;
      engine_stats = Some st;
    }
  in
  match !best with
  | None ->
    { rc_report = report None None; rc_steps = []; rc_verdict = None }
  | Some (_, ((t1, _, t2, _) as wt), w) ->
    let steps =
      match
        Cas_mc.Recorder.path recorder
          ~target:(Cas_conc.World.fingerprint_nocur w)
      with
      | None -> [] (* unreachable: every visited world is recorded *)
      | Some path ->
        List.map
          (fun ((s : Cas_mc.Recorder.step), child_fp) ->
            Sem.step_of_info
              {
                Sem.i_tid = s.Cas_mc.Recorder.r_tid;
                i_event = Sem.event_of_label s.Cas_mc.Recorder.r_label;
                i_fp = s.Cas_mc.Recorder.r_fp;
                i_flush = false;
                i_abort = false;
                i_dst = Sem.digest child_fp;
              })
          path
    in
    {
      rc_report = report (Some wt) (Some w);
      rc_steps = steps;
      rc_verdict = Some (Witness.Vrace (t1, t2));
    }

(* ------------------------------------------------------------------ *)
(* Schedule search on the uniform view                                 *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

(** Depth-first search for a schedule realizing the completed event
    trace [events] (a refinement counterexample), cutting cycles on the
    current path and bounding the depth. Candidate transitions whose
    emitted events stop being a prefix of the target are pruned, so the
    search visits only schedules compatible with the trace. *)
let schedule_for_events (s0 : Sem.state) ~(events : Event.t list)
    ?(max_steps = 4000) () : Witness.step list option =
  let rec go (s : Sem.state) on_path rev_steps pending depth =
    if s.Sem.s_done then if pending = [] then Some (List.rev rev_steps) else None
    else if depth >= max_steps then None
    else if SSet.mem s.Sem.s_digest on_path then None
    else
      let on_path = SSet.add s.Sem.s_digest on_path in
      List.find_map
        (fun ((i : Sem.info), target) ->
          match target with
          | None -> None (* abort: not this verdict *)
          | Some s' -> (
            match (i.Sem.i_event, pending) with
            | None, _ ->
              go s' on_path (Sem.step_of_info i :: rev_steps) pending
                (depth + 1)
            | Some e, e' :: pending' when Event.equal e e' ->
              go s' on_path (Sem.step_of_info i :: rev_steps) pending'
                (depth + 1)
            | Some _, _ -> None))
        (s.Sem.s_succ ())
  in
  go s0 SSet.empty [] events 0

(** Depth-first search for a schedule reaching an abort transition. *)
let schedule_to_abort (s0 : Sem.state) ?(max_steps = 4000) () :
    Witness.step list option =
  let rec go (s : Sem.state) on_path rev_steps depth =
    if s.Sem.s_done || depth >= max_steps || SSet.mem s.Sem.s_digest on_path
    then None
    else
      let succs = s.Sem.s_succ () in
      match
        List.find_opt (fun ((i : Sem.info), _) -> i.Sem.i_abort) succs
      with
      | Some (i, _) -> Some (List.rev (Sem.step_of_info i :: rev_steps))
      | None ->
        let on_path = SSet.add s.Sem.s_digest on_path in
        List.find_map
          (fun ((i : Sem.info), target) ->
            match target with
            | None -> None
            | Some s' ->
              go s' on_path (Sem.step_of_info i :: rev_steps) (depth + 1))
          succs
  in
  go s0 SSet.empty [] 0
