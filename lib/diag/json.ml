(** A minimal JSON tree, printer, and parser — just enough for witness
    files and Chrome trace exports. Deliberately dependency-free (the
    toolchain image carries no JSON library) and integer-only: nothing we
    serialize needs floats, and omitting them keeps round-trips exact. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_buffer b (j : t) =
  let rec go ind j =
    match j with
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int n -> Buffer.add_string b (string_of_int n)
    | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_string b "[";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '\n';
          Buffer.add_string b (String.make (ind + 2) ' ');
          go (ind + 2) x)
        xs;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make ind ' ');
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '\n';
          Buffer.add_string b (String.make (ind + 2) ' ');
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          go (ind + 2) v)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make ind ' ');
      Buffer.add_char b '}'
  in
  go 0 j

let to_string (j : t) : string =
  let b = Buffer.create 1024 in
  to_buffer b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Fmt.str "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Fmt.str "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Fmt.str "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> fail "bad \\u escape"
          | Some code ->
            (* our own output only \u-escapes control characters; decode
               the Latin-1 subset and reject the rest *)
            if code < 0x100 then Buffer.add_char b (Char.chr code)
            else fail "non-latin1 \\u escape")
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected number";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some c -> fail (Fmt.str "unexpected %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Fmt.str "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors (decoding helpers)                                        *)
(* ------------------------------------------------------------------ *)

exception Decode_error of string

let decode_fail fmt = Fmt.kstr (fun m -> raise (Decode_error m)) fmt

let member key = function
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> decode_fail "missing field %S" key)
  | _ -> decode_fail "expected object with field %S" key

let member_opt key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int_exn = function Int n -> n | _ -> decode_fail "expected int"
let to_str_exn = function Str s -> s | _ -> decode_fail "expected string"
let to_bool_exn = function Bool b -> b | _ -> decode_fail "expected bool"
let to_list_exn = function List l -> l | _ -> decode_fail "expected array"

(** Run a decoder, turning [Decode_error] into [Error]. *)
let decode (f : t -> 'a) (j : t) : ('a, string) result =
  try Ok (f j) with Decode_error m -> Error m
