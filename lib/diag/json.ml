(** A minimal JSON tree, printer, and parser — just enough for witness
    files and Chrome trace exports. Deliberately dependency-free (the
    toolchain image carries no JSON library) and integer-only: nothing we
    serialize needs floats, and omitting them keeps round-trips exact. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(* copy maximal runs of chars that need no escaping in one blit — string
   payloads (verdict texts, sources, object files) are the bulk of every
   frame, and almost none of their bytes escape *)
let escape b s =
  let n = String.length s in
  let flush start stop =
    if stop > start then Buffer.add_substring b s start (stop - start)
  in
  let rec go start i =
    if i >= n then flush start i
    else
      match String.unsafe_get s i with
      | '"' ->
        flush start i;
        Buffer.add_string b "\\\"";
        go (i + 1) (i + 1)
      | '\\' ->
        flush start i;
        Buffer.add_string b "\\\\";
        go (i + 1) (i + 1)
      | '\n' ->
        flush start i;
        Buffer.add_string b "\\n";
        go (i + 1) (i + 1)
      | '\r' ->
        flush start i;
        Buffer.add_string b "\\r";
        go (i + 1) (i + 1)
      | '\t' ->
        flush start i;
        Buffer.add_string b "\\t";
        go (i + 1) (i + 1)
      | c when Char.code c < 0x20 ->
        flush start i;
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c));
        go (i + 1) (i + 1)
      | _ -> go start (i + 1)
  in
  go 0 0

let to_buffer b (j : t) =
  let rec go ind j =
    match j with
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int n -> Buffer.add_string b (string_of_int n)
    | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_string b "[";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '\n';
          Buffer.add_string b (String.make (ind + 2) ' ');
          go (ind + 2) x)
        xs;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make ind ' ');
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '\n';
          Buffer.add_string b (String.make (ind + 2) ' ');
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          go (ind + 2) v)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make ind ' ');
      Buffer.add_char b '}'
  in
  go 0 j

let to_string (j : t) : string =
  let b = Buffer.create 1024 in
  to_buffer b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(** Typed parse failures, for callers that must react to *why* an input
    was rejected (the daemon rejects oversized and over-deep frames with
    a structured error instead of dying in a parser): *)
type parse_error =
  | Too_large of { size : int; limit : int }
      (** the input exceeds [max_size] bytes — rejected before scanning *)
  | Too_deep of { limit : int }
      (** array/object nesting exceeds [max_depth] — rejected without
          recursing further, so hostile inputs cannot overflow the stack *)
  | Syntax of { offset : int; msg : string }  (** malformed JSON *)

let pp_parse_error ppf = function
  | Too_large { size; limit } ->
    Fmt.pf ppf "input too large (%d bytes, limit %d)" size limit
  | Too_deep { limit } -> Fmt.pf ppf "nesting too deep (limit %d)" limit
  | Syntax { offset; msg } -> Fmt.pf ppf "%s at offset %d" msg offset

exception Parse_error of parse_error

(** Default limits of [parse_result]: far above anything we serialize,
    far below anything that could exhaust memory or stack. *)
let default_max_size = 64 * 1024 * 1024

let default_max_depth = 256

(** Parse with input-size and nesting-depth limits, never raising. This
    is the only parse entry point the daemon uses: every malformed,
    oversized, or adversarially nested frame comes back as a typed
    [Error]. *)
let parse_result ?(max_size = default_max_size)
    ?(max_depth = default_max_depth) (s : string) : (t, parse_error) result =
  let n = String.length s in
  if n > max_size then Error (Too_large { size = n; limit = max_size })
  else begin
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Syntax { offset = !pos; msg })) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      &&
      match String.unsafe_get s !pos with
      | ' ' | '\t' | '\n' | '\r' -> true
      | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Fmt.str "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Fmt.str "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    (* blit maximal escape-free runs instead of walking char by char —
       same acceptance (any raw byte except '"' and '\\' passes through,
       as before), just without an option allocation per byte *)
    let plain_run () =
      let start = !pos in
      while
        !pos < n
        &&
        match String.unsafe_get s !pos with '"' | '\\' -> false | _ -> true
      do
        incr pos
      done;
      if !pos > start then Buffer.add_substring b s start (!pos - start)
    in
    let rec go () =
      plain_run ();
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> fail "bad \\u escape"
          | Some code ->
            (* our own output only \u-escapes control characters; decode
               the Latin-1 subset and reject the rest *)
            if code < 0x100 then Buffer.add_char b (Char.chr code)
            else fail "non-latin1 \\u escape")
        | _ -> fail "bad escape");
        go ()
      | Some _ -> assert false (* plain_run stops only at '"' or '\\' *)
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected number";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value depth =
    skip_ws ();
    if depth > max_depth then raise (Parse_error (Too_deep { limit = max_depth }));
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some c -> fail (Fmt.str "unexpected %C" c)
  in
  try
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then
      Error (Syntax { offset = !pos; msg = "trailing garbage" })
    else Ok v
  with Parse_error e -> Error e
  end

(** The historical string-error entry point, now a thin wrapper: same
    syntax acceptance as before for every witness/trace file we have
    ever written, plus a deep safety net against stack exhaustion (no
    artifact of ours nests beyond a handful of levels). *)
let parse (s : string) : (t, string) result =
  match parse_result ~max_size:max_int ~max_depth:10_000 s with
  | Ok v -> Ok v
  | Error e -> Error (Fmt.str "%a" pp_parse_error e)

(* ------------------------------------------------------------------ *)
(* Accessors (decoding helpers)                                        *)
(* ------------------------------------------------------------------ *)

exception Decode_error of string

let decode_fail fmt = Fmt.kstr (fun m -> raise (Decode_error m)) fmt

let member key = function
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> decode_fail "missing field %S" key)
  | _ -> decode_fail "expected object with field %S" key

let member_opt key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int_exn = function Int n -> n | _ -> decode_fail "expected int"
let to_str_exn = function Str s -> s | _ -> decode_fail "expected string"
let to_bool_exn = function Bool b -> b | _ -> decode_fail "expected bool"
let to_list_exn = function List l -> l | _ -> decode_fail "expected array"

(** Run a decoder, turning [Decode_error] into [Error]. *)
let decode (f : t -> 'a) (j : t) : ('a, string) result =
  try Ok (f j) with Decode_error m -> Error m
