(** Counterexample witnesses: the serializable artifact every negative
    verdict produces (ISSUE 3 tentpole). A witness is self-contained — it
    embeds the mini-C source text and load parameters next to the
    schedule, so [casc replay W.json] needs nothing but the file — and
    versioned: the header carries [Cas_base.Version.v] plus a format
    number, so stale artifacts are detectable rather than misread.

    Each schedule step records the scheduled thread, the observable event
    (if any), the step footprint, whether it was a TSO buffer flush, and
    [s_dst]: the digest of the *target* world's scheduler-independent
    fingerprint. The digests make replay deterministic — when a thread
    has several enabled transitions, the recorded target digest selects
    the one the capture actually took (see [Replay]). *)

open Cas_base

type step = {
  s_tid : int;
  s_event : Event.t option;
  s_reads : Addr.t list;
  s_writes : Addr.t list;
  s_flush : bool;  (** a TSO store-buffer drain of [s_tid]'s buffer *)
  s_dst : string;  (** digest of the target world fingerprint; "" = any *)
}

type verdict =
  | Vrace of int * int  (** racy world reached; the two predicted tids *)
  | Vabort  (** an abort transition is reachable along the schedule *)
  | Vrefine of Event.t list
      (** the schedule realizes this completed event trace, which the
          reference side of a refinement check cannot produce *)

type semantics = Sc | Tso

type t = {
  version : string;  (** [Cas_base.Version.v] at capture time *)
  format : int;  (** witness format number, see [format_version] *)
  program : string;  (** mini-C source text, embedded *)
  entries : string list;
  with_lock : bool;  (** link the CImp lock object when reloading *)
  prog_hash : string;  (** MD5 of [program] *)
  semantics : semantics;
  engine : string;
  seed : int;
  verdict : verdict;
  steps : step list;
}

let format_version = 1

let hash_program src = Digest.to_hex (Digest.string src)

let make ~program ~entries ~with_lock ~semantics ~engine ~seed ~verdict steps
    =
  {
    version = Version.v;
    format = format_version;
    program;
    entries;
    with_lock;
    prog_hash = hash_program program;
    semantics;
    engine;
    seed;
    verdict;
    steps;
  }

(** Number of context switches in the schedule: adjacent steps executed
    by different threads (flushes count as steps of the buffer's owner). *)
let switches (w : t) : int =
  match w.steps with
  | [] -> 0
  | s0 :: rest ->
    fst
      (List.fold_left
         (fun (n, prev) s ->
           ((if s.s_tid = prev then n else n + 1), s.s_tid))
         (0, s0.s_tid) rest)

(** Events emitted along the schedule, in order. *)
let events (w : t) : Event.t list =
  List.filter_map (fun s -> s.s_event) w.steps

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let addr_to_json (a : Addr.t) = Json.Str (Addr.to_string a)

let addr_of_json j =
  let s = Json.to_str_exn j in
  match String.index_opt s '.' with
  | None -> Json.decode_fail "bad address %S" s
  | Some i -> (
    match
      ( int_of_string_opt (String.sub s 0 i),
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    with
    | Some b, Some o -> Addr.make b o
    | _ -> Json.decode_fail "bad address %S" s)

let event_to_json = function
  | Event.Print n -> Json.Obj [ ("print", Json.Int n) ]
  | Event.Out s -> Json.Obj [ ("out", Json.Str s) ]

let event_of_json j =
  match (Json.member_opt "print" j, Json.member_opt "out" j) with
  | Some n, _ -> Event.Print (Json.to_int_exn n)
  | _, Some s -> Event.Out (Json.to_str_exn s)
  | None, None -> Json.decode_fail "bad event"

let step_to_json (s : step) =
  Json.Obj
    (List.concat
       [
         [ ("tid", Json.Int s.s_tid) ];
         (match s.s_event with
         | None -> []
         | Some e -> [ ("event", event_to_json e) ]);
         (if s.s_reads = [] then []
          else [ ("reads", Json.List (List.map addr_to_json s.s_reads)) ]);
         (if s.s_writes = [] then []
          else [ ("writes", Json.List (List.map addr_to_json s.s_writes)) ]);
         (if s.s_flush then [ ("flush", Json.Bool true) ] else []);
         (if s.s_dst = "" then [] else [ ("dst", Json.Str s.s_dst) ]);
       ])

let step_of_json j =
  {
    s_tid = Json.to_int_exn (Json.member "tid" j);
    s_event = Option.map event_of_json (Json.member_opt "event" j);
    s_reads =
      (match Json.member_opt "reads" j with
      | None -> []
      | Some l -> List.map addr_of_json (Json.to_list_exn l));
    s_writes =
      (match Json.member_opt "writes" j with
      | None -> []
      | Some l -> List.map addr_of_json (Json.to_list_exn l));
    s_flush =
      (match Json.member_opt "flush" j with
      | Some b -> Json.to_bool_exn b
      | None -> false);
    s_dst =
      (match Json.member_opt "dst" j with
      | Some s -> Json.to_str_exn s
      | None -> "");
  }

let verdict_to_json = function
  | Vrace (t1, t2) ->
    Json.Obj
      [
        ("kind", Json.Str "race"); ("tid1", Json.Int t1); ("tid2", Json.Int t2);
      ]
  | Vabort -> Json.Obj [ ("kind", Json.Str "abort") ]
  | Vrefine es ->
    Json.Obj
      [
        ("kind", Json.Str "refine");
        ("trace", Json.List (List.map event_to_json es));
      ]

let verdict_of_json j =
  match Json.to_str_exn (Json.member "kind" j) with
  | "race" ->
    Vrace
      ( Json.to_int_exn (Json.member "tid1" j),
        Json.to_int_exn (Json.member "tid2" j) )
  | "abort" -> Vabort
  | "refine" ->
    Vrefine (List.map event_of_json (Json.to_list_exn (Json.member "trace" j)))
  | k -> Json.decode_fail "unknown verdict kind %S" k

let semantics_to_string = function Sc -> "sc" | Tso -> "tso"

let semantics_of_string = function
  | "sc" -> Sc
  | "tso" -> Tso
  | s -> Json.decode_fail "unknown semantics %S" s

let to_json (w : t) : Json.t =
  Json.Obj
    [
      ("version", Json.Str w.version);
      ("format", Json.Int w.format);
      ("program", Json.Str w.program);
      ("entries", Json.List (List.map (fun e -> Json.Str e) w.entries));
      ("with_lock", Json.Bool w.with_lock);
      ("prog_hash", Json.Str w.prog_hash);
      ("semantics", Json.Str (semantics_to_string w.semantics));
      ("engine", Json.Str w.engine);
      ("seed", Json.Int w.seed);
      ("verdict", verdict_to_json w.verdict);
      ("steps", Json.List (List.map step_to_json w.steps));
    ]

let of_json (j : Json.t) : (t, string) result =
  Json.decode
    (fun j ->
      let format = Json.to_int_exn (Json.member "format" j) in
      if format <> format_version then
        Json.decode_fail "unsupported witness format %d (expected %d)" format
          format_version;
      {
        version = Json.to_str_exn (Json.member "version" j);
        format;
        program = Json.to_str_exn (Json.member "program" j);
        entries =
          List.map Json.to_str_exn (Json.to_list_exn (Json.member "entries" j));
        with_lock = Json.to_bool_exn (Json.member "with_lock" j);
        prog_hash = Json.to_str_exn (Json.member "prog_hash" j);
        semantics = semantics_of_string (Json.to_str_exn (Json.member "semantics" j));
        engine = Json.to_str_exn (Json.member "engine" j);
        seed = Json.to_int_exn (Json.member "seed" j);
        verdict = verdict_of_json (Json.member "verdict" j);
        steps = List.map step_of_json (Json.to_list_exn (Json.member "steps" j));
      })
    j

let to_string (w : t) : string = Json.to_string (to_json w)

let of_string (s : string) : (t, string) result =
  match Json.parse s with Error e -> Error e | Ok j -> of_json j

let save (w : t) ~(file : string) : unit =
  let oc = open_out_bin file in
  output_string oc (to_string w);
  output_char oc '\n';
  close_out oc

let load ~(file : string) : (t, string) result =
  match
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s -> of_string s

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_verdict ppf = function
  | Vrace (t1, t2) -> Fmt.pf ppf "race between T%d and T%d" t1 t2
  | Vabort -> Fmt.pf ppf "abort reachable"
  | Vrefine es ->
    Fmt.pf ppf "unrefined trace [%a]" Fmt.(list ~sep:comma Event.pp) es

let pp ppf (w : t) =
  Fmt.pf ppf "witness v%s (%s, %s engine, %d steps, %d switches): %a"
    w.version
    (semantics_to_string w.semantics)
    w.engine (List.length w.steps) (switches w) pp_verdict w.verdict
