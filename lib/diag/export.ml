(** Witness export: Chrome trace-event JSON (loadable in Perfetto or
    chrome://tracing) and the human-readable [casc explain] rendering.

    The Chrome format is the "JSON array format" subset: one complete
    duration event ([ph:"X"]) per schedule step on the lane of its
    thread, metadata events naming the lanes, and an instant event
    ([ph:"i"]) marking the verdict at the end. Timestamps are synthetic —
    step index in microseconds — since a model-checking schedule has no
    wall-clock; what matters in the UI is the interleaving shape. *)

open Cas_base

let us_per_step = 10
let dur_us = 8

let step_name (s : Witness.step) =
  match s.Witness.s_event with
  | Some e -> Event.to_string e
  | None ->
    if s.Witness.s_flush then "flush"
    else if s.Witness.s_writes <> [] then "write"
    else if s.Witness.s_reads <> [] then "read"
    else "step"

let addr_list addrs =
  Json.Str (String.concat "," (List.map Addr.to_string addrs))

let step_event idx (s : Witness.step) =
  Json.Obj
    (List.concat
       [
         [
           ("name", Json.Str (step_name s));
           ("ph", Json.Str "X");
           ("pid", Json.Int 0);
           ("tid", Json.Int s.Witness.s_tid);
           ("ts", Json.Int (idx * us_per_step));
           ("dur", Json.Int dur_us);
           ( "cat",
             Json.Str
               (if s.Witness.s_flush then "flush"
                else if s.Witness.s_event <> None then "event"
                else "step") );
         ];
         [
           ( "args",
             Json.Obj
               (List.concat
                  [
                    (if s.Witness.s_reads = [] then []
                     else [ ("reads", addr_list s.Witness.s_reads) ]);
                    (if s.Witness.s_writes = [] then []
                     else [ ("writes", addr_list s.Witness.s_writes) ]);
                    (if s.Witness.s_dst = "" then []
                     else [ ("dst", Json.Str s.Witness.s_dst) ]);
                  ]) );
         ];
       ])

let thread_meta tid =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str (Fmt.str "T%d" tid)) ]);
    ]

let verdict_marker n (v : Witness.verdict) =
  let name = Fmt.str "%a" Witness.pp_verdict v in
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "i");
      ("pid", Json.Int 0);
      ( "tid",
        Json.Int
          (match v with Witness.Vrace (t1, _) -> t1 | _ -> 0) );
      ("ts", Json.Int (n * us_per_step));
      ("s", Json.Str "g");
    ]

(** The witness as a Chrome trace-event JSON document. *)
let chrome (w : Witness.t) : Json.t =
  let tids =
    List.sort_uniq Int.compare
      (List.map (fun (s : Witness.step) -> s.Witness.s_tid) w.Witness.steps)
  in
  let process_meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 0);
        ( "args",
          Json.Obj
            [
              ( "name",
                Json.Str
                  (Fmt.str "casc %s (%s)" w.Witness.engine
                     (Witness.semantics_to_string w.Witness.semantics)) );
            ] );
      ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          ((process_meta :: List.map thread_meta tids)
          @ List.mapi step_event w.Witness.steps
          @ [ verdict_marker (List.length w.Witness.steps) w.Witness.verdict ]
          ) );
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("version", Json.Str w.Witness.version);
            ("prog_hash", Json.Str w.Witness.prog_hash);
          ] );
    ]

let save_chrome (w : Witness.t) ~(file : string) : unit =
  let oc = open_out_bin file in
  output_string oc (Json.to_string (chrome w));
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* casc explain                                                        *)
(* ------------------------------------------------------------------ *)

let pp_fp ppf (s : Witness.step) =
  match (s.Witness.s_reads, s.Witness.s_writes) with
  | [], [] -> ()
  | rs, ws ->
    Fmt.pf ppf "  {%s%s}"
      (match rs with
      | [] -> ""
      | _ -> "r:" ^ String.concat "," (List.map Addr.to_string rs))
      (match ws with
      | [] -> ""
      | _ ->
        (if rs = [] then "w:" else " w:")
        ^ String.concat "," (List.map Addr.to_string ws))

(** Human-readable rendering of the interleaving: one line per step,
    indented by thread lane, context switches marked in the margin. *)
let explain ppf (w : Witness.t) =
  Fmt.pf ppf "%a@." Witness.pp w;
  Fmt.pf ppf "program %s, entries [%s]%s@." w.Witness.prog_hash
    (String.concat "; " w.Witness.entries)
    (if w.Witness.with_lock then " +lock" else "");
  let tids =
    List.sort_uniq Int.compare
      (List.map (fun (s : Witness.step) -> s.Witness.s_tid) w.Witness.steps)
  in
  let lane tid =
    let rec idx i = function
      | [] -> 0
      | t :: _ when t = tid -> i
      | _ :: r -> idx (i + 1) r
    in
    idx 0 tids
  in
  let prev = ref min_int in
  List.iteri
    (fun n (s : Witness.step) ->
      let sw = !prev <> min_int && !prev <> s.Witness.s_tid in
      prev := s.Witness.s_tid;
      Fmt.pf ppf "%4d %s %sT%d %s%s%a@." n
        (if sw then ">>" else "  ")
        (String.make (4 * lane s.Witness.s_tid) ' ')
        s.Witness.s_tid (step_name s)
        (if s.Witness.s_flush then " [flush]" else "")
        pp_fp s)
    w.Witness.steps;
  Fmt.pf ppf "==> %a after %d steps (%d context switches)@."
    Witness.pp_verdict w.Witness.verdict
    (List.length w.Witness.steps)
    (Witness.switches w)
