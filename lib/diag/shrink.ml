(** Schedule shrinking: ddmin-style minimization plus greedy run
    merging, with the permissive replay oracle ([Replay.exec]) deciding
    whether a candidate schedule still reproduces the witness verdict.

    Two phases, iterated under a shared attempt budget:

    - *drop* (ddmin, Zeller–Hildebrandt): remove chunks of steps at
      doubling granularity, keeping any candidate that still reproduces.
      Because [Replay.exec] re-derives the executed steps and stops as
      soon as the verdict is reached, accepted candidates also shed
      unreachable suffixes for free.
    - *merge*: hoist each run of consecutive same-thread steps to sit
      directly after the previous run of that thread, keeping the move
      when it reproduces with fewer context switches. This targets the
      metric that matters for a human reading the interleaving — the
      number of preemptions — which pure step-dropping does not.

    Every accepted candidate is the re-derived execution, so the final
    witness's footprints and target digests come from the semantics, not
    from editing — the shrunk witness strict-replays ([Replay.run]). *)

type report = {
  sh_witness : Witness.t;
  sh_orig_steps : int;
  sh_min_steps : int;
  sh_orig_switches : int;
  sh_min_switches : int;
  sh_attempts : int;  (** permissive executions spent *)
}

let pp_report ppf r =
  Fmt.pf ppf "shrunk %d -> %d steps, %d -> %d switches (%d attempts)"
    r.sh_orig_steps r.sh_min_steps r.sh_orig_switches r.sh_min_switches
    r.sh_attempts

let switches_of (steps : Witness.step list) : int =
  match steps with
  | [] -> 0
  | s0 :: rest ->
    fst
      (List.fold_left
         (fun (n, prev) (s : Witness.step) ->
           ((if s.Witness.s_tid = prev then n else n + 1), s.Witness.s_tid))
         (0, s0.Witness.s_tid)
         rest)

(* split [l] into [n] contiguous chunks of near-equal length *)
let chunks n l =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec go i l acc =
    if i >= n then List.rev acc
    else
      let k = base + if i < extra then 1 else 0 in
      let rec take k l pre =
        if k = 0 then (List.rev pre, l)
        else match l with [] -> (List.rev pre, []) | x :: r -> take (k - 1) r (x :: pre)
      in
      let c, rest = take k l [] in
      go (i + 1) rest (c :: acc)
  in
  go 0 l []

(* adjacent same-thread runs of a schedule *)
let runs (steps : Witness.step list) : Witness.step list list =
  List.fold_left
    (fun acc (s : Witness.step) ->
      match acc with
      | (r0 :: _ as run) :: rest when r0.Witness.s_tid = s.Witness.s_tid ->
        (s :: run) :: rest
      | _ -> [ s ] :: acc)
    [] steps
  |> List.rev_map List.rev

let run_tid = function
  | (s : Witness.step) :: _ -> s.Witness.s_tid
  | [] -> -1

(** Default candidate-execution budget; overridable per call (exposed on
    the CLI as [--shrink-budget] by [casc repro] and [casc fuzz]). *)
let default_max_attempts = 2000

(** Shrink [w] against initial state [s0]. [max_attempts] bounds the
    number of candidate executions (the step budget: each execution costs
    at most the schedule length in semantics steps). *)
let shrink ?(max_attempts = default_max_attempts) (s0 : Sem.state)
    (w : Witness.t) : report =
  let attempts = ref 0 in
  let exhausted () = !attempts >= max_attempts in
  (* run a candidate; [Some executed] iff it reproduces the verdict *)
  let try_steps steps : Witness.step list option =
    if exhausted () then None
    else begin
      incr attempts;
      let o = Replay.exec s0 { w with Witness.steps } in
      if o.Replay.ok then Some o.Replay.executed else None
    end
  in
  let orig_steps = List.length w.Witness.steps in
  let orig_switches = switches_of w.Witness.steps in
  match try_steps w.Witness.steps with
  | None ->
    (* the witness does not even execute permissively: leave it alone *)
    {
      sh_witness = w;
      sh_orig_steps = orig_steps;
      sh_min_steps = orig_steps;
      sh_orig_switches = orig_switches;
      sh_min_switches = orig_switches;
      sh_attempts = !attempts;
    }
  | Some baseline ->
    (* phase 1: ddmin over steps *)
    let rec ddmin steps n =
      let len = List.length steps in
      if len <= 1 || n > len || exhausted () then steps
      else
        let cs = chunks n steps in
        let complement i =
          List.concat (List.filteri (fun j _ -> j <> i) cs)
        in
        let rec try_removals i =
          if i >= List.length cs || exhausted () then None
          else
            match try_steps (complement i) with
            | Some executed when List.length executed < len -> Some executed
            | _ -> try_removals (i + 1)
        in
        (match try_removals 0 with
        | Some executed -> ddmin executed (max 2 (n - 1))
        | None -> if n >= len then steps else ddmin steps (min len (2 * n)))
    in
    let dropped = ddmin baseline 2 in
    (* phase 2: greedy run merging, to a fixpoint or budget *)
    let merge_pass steps : Witness.step list option =
      let rs = runs steps in
      let n = List.length rs in
      let cur_switches = switches_of steps in
      let rec try_hoist i =
        if i >= n || exhausted () then None
        else
          let tid = run_tid (List.nth rs i) in
          (* latest earlier run of the same thread, if any *)
          let j =
            List.fold_left
              (fun acc k -> if run_tid (List.nth rs k) = tid then Some k else acc)
              None
              (List.init i (fun k -> k))
          in
          match j with
          | Some j when j < i - 1 -> (
            let moved = List.nth rs i in
            let rest = List.filteri (fun k _ -> k <> i) rs in
            let candidate =
              List.concat
                (List.concat_map
                   (fun k ->
                     let r = List.nth rest k in
                     if k = j then [ r; moved ] else [ r ])
                   (List.init (n - 1) (fun k -> k)))
            in
            match try_steps candidate with
            | Some executed when switches_of executed < cur_switches ->
              Some executed
            | _ -> try_hoist (i + 1))
          | _ -> try_hoist (i + 1)
      in
      try_hoist 1
    in
    let rec merge_fix steps =
      match merge_pass steps with
      | Some steps' -> merge_fix steps'
      | None -> steps
    in
    let merged = merge_fix dropped in
    (* one more drop round: merging can strand now-removable steps *)
    let final = if exhausted () then merged else ddmin merged 2 in
    {
      sh_witness = { w with Witness.steps = final };
      sh_orig_steps = orig_steps;
      sh_min_steps = List.length final;
      sh_orig_switches = orig_switches;
      sh_min_switches = switches_of final;
      sh_attempts = !attempts;
    }
