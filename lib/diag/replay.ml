(** Deterministic replay: re-execute a witness schedule against the
    global semantics, checking each step against the recording.

    Strict mode ([run]) is the integrity check: every scheduled step must
    be matched by an enabled transition with the same thread, event, and
    footprint, and — when the witness carries target digests — the same
    target world. A mismatch is itself a finding: either the witness is
    stale (program or tool changed under it; the header hashes say which)
    or the semantics stopped being deterministic where it was, and the
    report says at which step and why.

    Permissive mode ([exec]) is the shrinking oracle: steps are matched
    by thread id with best-effort tie-breaking (target digest, then
    event + footprint, then event alone), so edited schedules — steps
    dropped, runs merged — still execute as long as each scheduled
    thread can move. [Shrink] only trusts it combined with the verdict
    check below.

    Verdict reproduction: [Vrace (t1, t2)] reproduces as soon as *any*
    visited world predicts a race between t1 and t2 (not only the last —
    this is what lets shrinking drop schedule suffixes); [Vabort]
    reproduces when an abort transition is enabled at the final world (or
    anywhere along it in permissive mode); [Vrefine es] reproduces when
    the schedule runs to completion emitting exactly [es]. *)

open Cas_base

type outcome = {
  ok : bool;  (** all steps matched and the verdict was reproduced *)
  steps_matched : int;
  verdict_reached : bool;
  events : Event.t list;  (** events emitted by the re-execution *)
  executed : Witness.step list;
      (** the steps actually executed, re-derived from the semantics (not
          copied from the input schedule) — shrinking rebuilds witnesses
          from these so digests and footprints stay authoritative *)
  detail : string;
}

(** Does [i] reproduce the recorded step [s] exactly? *)
let strict_match (s : Witness.step) (i : Sem.info) =
  (not i.Sem.i_abort)
  && i.Sem.i_tid = s.Witness.s_tid
  && (s.Witness.s_dst = "" || i.Sem.i_dst = s.Witness.s_dst)
  && Option.equal Event.equal i.Sem.i_event s.Witness.s_event
  && Footprint.equal i.Sem.i_fp (Sem.info_of_step s).Sem.i_fp

(** Match quality for permissive execution; 0 is "not usable". *)
let loose_score (s : Witness.step) (i : Sem.info) =
  if i.Sem.i_abort || i.Sem.i_tid <> s.Witness.s_tid then 0
  else if s.Witness.s_dst <> "" && i.Sem.i_dst = s.Witness.s_dst then 4
  else if
    Option.equal Event.equal i.Sem.i_event s.Witness.s_event
    && Footprint.equal i.Sem.i_fp (Sem.info_of_step s).Sem.i_fp
  then 3
  else if Option.equal Event.equal i.Sem.i_event s.Witness.s_event then 2
  else 1

type chooser =
  Witness.step ->
  (Sem.info * Sem.state option) list ->
  (Sem.info * Sem.state option) option

let strict_chooser : chooser =
 fun step candidates ->
  List.find_opt (fun (i, _) -> strict_match step i) candidates

(** Highest-scoring candidate; among equal scores the first wins (the
    semantics enumerates transitions deterministically). *)
let loose_chooser : chooser =
 fun step candidates ->
  let best =
    List.fold_left
      (fun acc ((i, _) as c) ->
        let sc = loose_score step i in
        match acc with
        | Some (sc', _) when sc' >= sc -> acc
        | _ -> if sc > 0 then Some (sc, c) else acc)
      None candidates
  in
  Option.map snd best

let run_with ~(choose : chooser) ~(any_point_abort : bool) (s0 : Sem.state)
    (w : Witness.t) : outcome =
  let race_pair =
    match w.Witness.verdict with
    | Witness.Vrace (t1, t2) -> Some (t1, t2)
    | _ -> None
  in
  let want_abort = w.Witness.verdict = Witness.Vabort in
  let finish ~ok ~n ~events ~executed detail =
    {
      ok;
      steps_matched = n;
      verdict_reached = ok;
      events = List.rev events;
      executed = List.rev executed;
      detail;
    }
  in
  let abort_enabled ?tid candidates =
    List.exists
      (fun ((i : Sem.info), _) ->
        i.Sem.i_abort
        && match tid with None -> true | Some t -> i.Sem.i_tid = t)
      candidates
  in
  let rec go (s : Sem.state) steps n events executed =
    match race_pair with
    | Some (t1, t2) when s.Sem.s_race t1 t2 ->
      finish ~ok:true ~n ~events ~executed
        (Fmt.str "race between T%d and T%d reproduced after %d steps" t1 t2 n)
    | _ -> (
      let candidates = lazy (s.Sem.s_succ ()) in
      match steps with
      | [] ->
        let ok =
          match w.Witness.verdict with
          | Witness.Vrace _ -> false (* would have finished above *)
          | Witness.Vabort -> abort_enabled (Lazy.force candidates)
          | Witness.Vrefine es ->
            s.Sem.s_done
            && List.length es = List.length events
            && List.for_all2 Event.equal es (List.rev events)
        in
        finish ~ok ~n ~events ~executed
          (if ok then Fmt.str "verdict reproduced after %d steps" n
           else "schedule executed but the verdict did not reproduce")
      | step :: rest -> (
        let candidates = Lazy.force candidates in
        (* a recorded abort step ends the schedule; in permissive mode any
           enabled abort of the scheduled thread ends it early *)
        if
          want_abort
          && (rest = [] || any_point_abort)
          && abort_enabled ~tid:step.Witness.s_tid candidates
        then
          finish ~ok:true ~n:(n + 1) ~events ~executed:(step :: executed)
            (Fmt.str "abort reproduced after %d steps" (n + 1))
        else
          match choose step candidates with
          | None ->
            finish ~ok:false ~n ~events ~executed
              (Fmt.str
                 "step %d: no enabled transition of T%d matches the \
                  recording (%d candidates)"
                 n step.Witness.s_tid (List.length candidates))
          | Some (i, None) ->
            finish ~ok:false ~n ~events ~executed
              (Fmt.str "step %d: T%d aborts where the recording continues" n
                 i.Sem.i_tid)
          | Some (i, Some s') ->
            let events =
              match i.Sem.i_event with Some e -> e :: events | None -> events
            in
            go s' rest (n + 1) events (Sem.step_of_info i :: executed)))
  in
  go s0 w.Witness.steps 0 [] []

(** Strict replay: thread + event + footprint + target digest. *)
let run (s0 : Sem.state) (w : Witness.t) : outcome =
  run_with ~choose:strict_chooser ~any_point_abort:false s0 w

(** Permissive replay for shrinking. *)
let exec (s0 : Sem.state) (w : Witness.t) : outcome =
  run_with ~choose:loose_chooser ~any_point_abort:true s0 w
