(** A uniform, replayable view of the global semantics: both the SC
    thread-selection system ([Cas_conc.Engine.selection_system]) and the
    x86-TSO machine ([Cas_tso.Tso.mc_system]) unfold into the same
    first-order [state] type, so replay, shrinking, and schedule search
    are written once and work on either.

    A [state] exposes exactly what the diagnosis algorithms need: the
    enabled transitions with their recorded-step view ([info]: thread,
    event, footprint, flush flag, target digest), terminality, and the
    race predicate restricted to a thread pair. World types stay hidden
    behind closures — [Cas_diag] never matches on a world. *)

open Cas_base

(** The witness-step view of one enabled transition. *)
type info = {
  i_tid : int;
  i_event : Event.t option;
  i_fp : Footprint.t;
  i_flush : bool;  (** a TSO buffer drain of thread [i_tid] *)
  i_abort : bool;  (** the transition aborts (it has no target state) *)
  i_dst : string;  (** digest of the target world fingerprint *)
}

type state = {
  s_done : bool;
  s_digest : string;  (** digest of this world's fingerprint *)
  s_race : int -> int -> bool;
      (** does this world predict a race between the given threads? *)
  s_succ : unit -> (info * state option) list;
      (** enabled transitions; [None] target iff [i_abort] *)
}

let digest fp = Digest.to_hex (Digest.string fp)

let info_of_step (s : Witness.step) : info =
  {
    i_tid = s.Witness.s_tid;
    i_event = s.Witness.s_event;
    i_fp =
      Footprint.union
        (Footprint.reads s.Witness.s_reads)
        (Footprint.writes s.Witness.s_writes);
    i_flush = s.Witness.s_flush;
    i_abort = false;
    i_dst = s.Witness.s_dst;
  }

let step_of_info (i : info) : Witness.step =
  {
    Witness.s_tid = i.i_tid;
    s_event = i.i_event;
    s_reads = Addr.Set.elements (Footprint.rs_set i.i_fp);
    s_writes = Addr.Set.elements (Footprint.ws_set i.i_fp);
    s_flush = i.i_flush;
    s_dst = i.i_dst;
  }

let event_of_label = function
  | Cas_mc.Mcsys.Levt e -> Some e
  | Cas_mc.Mcsys.Ltau | Cas_mc.Mcsys.Lsw -> None

(* ------------------------------------------------------------------ *)
(* SC: the preemptive thread-selection view                            *)
(* ------------------------------------------------------------------ *)

(** Race prediction restricted to a thread pair (the pairwise core of
    [Cas_conc.Race.race_witness]). *)
let sc_race_between (w : Cas_conc.World.t) t1 t2 =
  t1 <> t2
  && List.exists
       (fun p1 ->
         List.exists
           (fun p2 -> Footprint.conflict_bits p1 p2)
           (Cas_conc.Race.predict w t2))
       (Cas_conc.Race.predict w t1)

let of_world (w0 : Cas_conc.World.t) : state =
  let sys = Cas_conc.Engine.selection_system in
  let rec make w =
    {
      s_done = Cas_conc.World.all_done w;
      s_digest = digest (Cas_conc.World.fingerprint_nocur w);
      s_race = (fun t1 t2 -> sc_race_between w t1 t2);
      s_succ =
        (fun () ->
          List.map
            (fun (tr : Cas_conc.World.t Cas_mc.Mcsys.trans) ->
              match tr.Cas_mc.Mcsys.target with
              | Cas_mc.Mcsys.Abort ->
                ( {
                    i_tid = tr.Cas_mc.Mcsys.tid;
                    i_event = None;
                    i_fp = tr.Cas_mc.Mcsys.fp;
                    i_flush = false;
                    i_abort = true;
                    i_dst = "";
                  },
                  None )
              | Cas_mc.Mcsys.Next w' ->
                ( {
                    i_tid = tr.Cas_mc.Mcsys.tid;
                    i_event = event_of_label tr.Cas_mc.Mcsys.label;
                    i_fp = tr.Cas_mc.Mcsys.fp;
                    i_flush = false;
                    i_abort = false;
                    i_dst = digest (Cas_conc.World.fingerprint_nocur w');
                  },
                  Some (make w') ))
            (sys.Cas_mc.Mcsys.trans w));
    }
  in
  make w0

(* ------------------------------------------------------------------ *)
(* TSO: the store-buffer machine                                       *)
(* ------------------------------------------------------------------ *)

let of_tso (w0 : Cas_tso.Tso.world) : state =
  let sys = Cas_tso.Tso.mc_system in
  let rec make w =
    {
      s_done = Cas_tso.Tso.all_done w;
      s_digest = digest (Cas_tso.Tso.fingerprint_nocur w);
      s_race = (fun _ _ -> false);
      s_succ =
        (fun () ->
          List.map
            (fun (tr : Cas_tso.Tso.world Cas_mc.Mcsys.trans) ->
              match tr.Cas_mc.Mcsys.target with
              | Cas_mc.Mcsys.Abort ->
                ( {
                    i_tid = tr.Cas_mc.Mcsys.tid;
                    i_event = None;
                    i_fp = tr.Cas_mc.Mcsys.fp;
                    i_flush = false;
                    i_abort = true;
                    i_dst = "";
                  },
                  None )
              | Cas_mc.Mcsys.Next w' ->
                ( {
                    i_tid = tr.Cas_mc.Mcsys.tid;
                    i_event = event_of_label tr.Cas_mc.Mcsys.label;
                    i_fp = tr.Cas_mc.Mcsys.fp;
                    i_flush = Cas_tso.Tso.is_drain w w' tr.Cas_mc.Mcsys.tid;
                    i_abort = false;
                    i_dst = digest (Cas_tso.Tso.fingerprint_nocur w');
                  },
                  Some (make w') ))
            (sys.Cas_mc.Mcsys.trans w));
    }
  in
  make w0
