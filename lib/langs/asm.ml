(** x86-like assembly. This is the compilation target (Fig. 11) under
    sequentially-consistent semantics; [Cas_tso.Tso] reinterprets the same
    syntax under the x86-TSO store-buffer semantics (§7.3).

    Notable points:
    - [Plock_cmpxchg] is a lock-prefixed compare-exchange. Under SC it
      executes as a tiny atomic block: an [EntAtom] micro-step, the
      operation, then an [ExtAtom] micro-step, so the global semantics
      cannot preempt it — exactly how the paper's x86 instantiation
      generates atomic-block boundaries from lock-prefixed instructions.
    - A function marked [is_object] accesses pointer-addressed memory with
      the [Object] permission; hand-written synchronization modules (the
      spin lock of Fig. 10(b)) are object code, compiled client code never
      is. This implements the client/object data confinement of §7.1.
    - Flags are modelled as the last comparison's operand pair, consulted
      by [Pjcc]. *)

open Cas_base

type label = int
type cond = Ceq | Cne | Clt | Cle | Cgt | Cge

type instr =
  | Pmov_ri of Mreg.t * int
  | Pmov_rr of Mreg.t * Mreg.t  (** dst, src *)
  | Plea_global of Mreg.t * string
  | Plea_stack of Mreg.t * int
  | Pbinop_rr of Ops.binop * Mreg.t * Mreg.t  (** d := d op s *)
  | Pbinop_ri of Ops.binop * Mreg.t * int
  | Pbinop3 of Ops.binop * Mreg.t * Mreg.t * Mreg.t
      (** d := s1 op s2 — three-address ALU pseudo-instruction, used by
          Asmgen when the destination clashes with the second operand of a
          non-commutative operator (real x86 needs an lea/imul trick or a
          scratch register; see DESIGN.md) *)
  | Punop_r of Ops.unop * Mreg.t
  | Pload of Mreg.t * Mreg.t * int  (** d := [s + ofs] *)
  | Pstore of Mreg.t * int * Mreg.t  (** [d + ofs] := s *)
  | Pload_stack of Mreg.t * int  (** d := [sp + ofs] (frame access) *)
  | Pstore_stack of int * Mreg.t
  | Pcmp_rr of Mreg.t * Mreg.t
  | Pcmp_ri of Mreg.t * int
  | Pjcc of cond * label
  | Pjmp of label
  | Plabel of label
  | Pcall of string * int * bool  (** callee, arity, has-result *)
  | Ptailjmp of string * int
  | Pret of bool
  | Plock_cmpxchg of Mreg.t * Mreg.t
      (** lock cmpxchg [r1], r2: compare AX with [r1]; if equal store r2
          and set ZF, else load into AX and clear ZF *)
  | Pmfence

type func = {
  fname : string;
  arity : int;
  framesize : int;  (** whole activation record incl. spill area *)
  is_object : bool;
  code : instr list;
}

type program = { funcs : func list; globals : Genv.gvar list }

(* ------------------------------------------------------------------ *)
(* Pretty printing (AT&T-flavoured)                                    *)
(* ------------------------------------------------------------------ *)

let pp_cond ppf c =
  Fmt.string ppf
    (match c with
    | Ceq -> "e"
    | Cne -> "ne"
    | Clt -> "l"
    | Cle -> "le"
    | Cgt -> "g"
    | Cge -> "ge")

let pp_instr ppf =
  let r = Mreg.pp in
  function
  | Pmov_ri (d, n) -> Fmt.pf ppf "movl $%d, %%%a" n r d
  | Pmov_rr (d, s) -> Fmt.pf ppf "movl %%%a, %%%a" r s r d
  | Plea_global (d, g) -> Fmt.pf ppf "leal %s, %%%a" g r d
  | Plea_stack (d, ofs) -> Fmt.pf ppf "leal %d(%%sp), %%%a" ofs r d
  | Pbinop_rr (op, d, s) -> Fmt.pf ppf "%a %%%a, %%%a" Ops.pp_binop op r s r d
  | Pbinop_ri (op, d, n) -> Fmt.pf ppf "%a $%d, %%%a" Ops.pp_binop op n r d
  | Pbinop3 (op, d, s1, s2) ->
    Fmt.pf ppf "%a3 %%%a, %%%a, %%%a" Ops.pp_binop op r s1 r s2 r d
  | Punop_r (op, d) -> Fmt.pf ppf "%a %%%a" Ops.pp_unop op r d
  | Pload (d, s, ofs) -> Fmt.pf ppf "movl %d(%%%a), %%%a" ofs r s r d
  | Pstore (d, ofs, s) -> Fmt.pf ppf "movl %%%a, %d(%%%a)" r s ofs r d
  | Pload_stack (d, ofs) -> Fmt.pf ppf "movl %d(%%sp), %%%a" ofs r d
  | Pstore_stack (ofs, s) -> Fmt.pf ppf "movl %%%a, %d(%%sp)" r s ofs
  | Pcmp_rr (a, b) -> Fmt.pf ppf "cmpl %%%a, %%%a" r b r a
  | Pcmp_ri (a, n) -> Fmt.pf ppf "cmpl $%d, %%%a" n r a
  | Pjcc (c, l) -> Fmt.pf ppf "j%a L%d" pp_cond c l
  | Pjmp l -> Fmt.pf ppf "jmp L%d" l
  | Plabel l -> Fmt.pf ppf "L%d:" l
  | Pcall (f, n, _) -> Fmt.pf ppf "call %s # arity %d" f n
  | Ptailjmp (f, n) -> Fmt.pf ppf "jmp %s # tailcall arity %d" f n
  | Pret _ -> Fmt.string ppf "retl"
  | Plock_cmpxchg (a, s) -> Fmt.pf ppf "lock cmpxchgl %%%a, (%%%a)" r s r a
  | Pmfence -> Fmt.string ppf "mfence"

let pp_func ppf f =
  Fmt.pf ppf "@[<v2>%s: # arity %d, frame %d%s@ %a@]" f.fname f.arity
    f.framesize
    (if f.is_object then ", object" else "")
    Fmt.(list ~sep:cut pp_instr)
    f.code

(* ------------------------------------------------------------------ *)
(* SC semantics                                                        *)
(* ------------------------------------------------------------------ *)

type core = {
  fn : func;
  code : instr array;
  pc : int;
  regs : Value.t Mreg.Map.t;
  flags : (Value.t * Value.t) option;  (** operands of the last compare *)
  sp : int option;
  need_frame : bool;
  waiting : bool option;
  atomphase : int;  (** 0 normal, 1 inside lock prefix, 2 before ExtAtom *)
  genv : Genv.t;
}

let pp_core ppf c =
  Fmt.pf ppf "{%s pc=%d sp=%a atom=%d [%a] flags=%a%s}" c.fn.fname c.pc
    Fmt.(option ~none:(any "-") int)
    c.sp c.atomphase
    Fmt.(
      list ~sep:comma (fun ppf (r, v) ->
          Fmt.pf ppf "%a=%a" Mreg.pp r Value.pp v))
    (Mreg.Map.bindings c.regs)
    Fmt.(
      option ~none:(any "-") (fun ppf (a, b) ->
          Fmt.pf ppf "(%a?%a)" Value.pp a Value.pp b))
    c.flags
    (match c.waiting with None -> "" | Some _ -> " <waiting>")

let reg_val c r = Option.value ~default:Value.Vundef (Mreg.Map.find_opt r c.regs)

let find_label code l =
  let n = Array.length code in
  let rec go i =
    if i >= n then None
    else match code.(i) with Plabel l' when l' = l -> Some i | _ -> go (i + 1)
  in
  go 0

let cond_to_binop = function
  | Ceq -> Ops.Oeq
  | Cne -> Ops.One
  | Clt -> Ops.Olt
  | Cle -> Ops.Ole
  | Cgt -> Ops.Ogt
  | Cge -> Ops.Oge

let eval_cond c cond =
  match c.flags with
  | None -> None
  | Some (a, b) -> (
    match Ops.eval_binop (cond_to_binop cond) a b with
    | Value.Vint n -> Some (n <> 0)
    | _ -> None)

let addr_plus v ofs =
  match v with
  | Value.Vptr a -> Some (Addr.make a.Addr.block (a.Addr.ofs + ofs))
  | _ -> None

let data_perm c = if c.fn.is_object then Perm.Object else Perm.Normal

let call_args c arity =
  List.filteri (fun i _ -> i < arity) Mreg.arg_regs |> List.map (reg_val c)

(** One SC step. Also reused (with [`Tso] mode) by the TSO machine for
    every instruction that does not touch memory. *)
let step (fl : Flist.t) (c : core) (m : Memory.t) : core Lang.succ list =
  if c.waiting <> None then []
  else if c.need_frame then
    let m', b, fp = Memory.alloc m fl ~size:c.fn.framesize ~perm:Perm.Normal in
    [ Lang.Next (Msg.Tau, fp, { c with need_frame = false; sp = Some b }, m') ]
  else if c.pc < 0 || c.pc >= Array.length c.code then []
  else
    let tau ?(fp = Footprint.empty) ?m:(m' = m) ?regs ?(flags = c.flags) pc =
      let regs = Option.value ~default:c.regs regs in
      [ Lang.Next (Msg.Tau, fp, { c with pc; regs; flags }, m') ]
    in
    let set d v pc = tau ~regs:(Mreg.Map.add d v c.regs) pc in
    let stack_addr ofs =
      match c.sp with
      | Some b when ofs >= 0 && ofs < c.fn.framesize -> Some (Addr.make b ofs)
      | _ -> None
    in
    let i = c.code.(c.pc) in
    match (i, c.atomphase) with
    | Plock_cmpxchg _, 0 ->
      [ Lang.Next (Msg.EntAtom, Footprint.empty, { c with atomphase = 1 }, m) ]
    | Plock_cmpxchg (ra, rs), 1 -> (
      match reg_val c ra with
      | Value.Vptr a -> (
        match Memory.load ~perm:(data_perm c) m a with
        | Ok old ->
          let ax = reg_val c Mreg.AX in
          let flags = Some (ax, old) in
          if Value.equal ax old then (
            match Memory.store ~perm:(data_perm c) m a (reg_val c rs) with
            | Ok m' ->
              [ Lang.Next
                  ( Msg.Tau,
                    Footprint.union (Footprint.read1 a) (Footprint.write1 a),
                    { c with atomphase = 2; flags },
                    m' ) ]
            | Error _ -> [ Lang.Stuck_abort ])
          else
            [ Lang.Next
                ( Msg.Tau,
                  Footprint.read1 a,
                  {
                    c with
                    atomphase = 2;
                    flags;
                    regs = Mreg.Map.add Mreg.AX old c.regs;
                  },
                  m ) ]
        | Error _ -> [ Lang.Stuck_abort ])
      | _ -> [ Lang.Stuck_abort ])
    | Plock_cmpxchg _, 2 ->
      [ Lang.Next
          ( Msg.ExtAtom,
            Footprint.empty,
            { c with atomphase = 0; pc = c.pc + 1 },
            m ) ]
    | Plock_cmpxchg _, _ -> [ Lang.Stuck_abort ]
    | _, phase when phase <> 0 -> [ Lang.Stuck_abort ]
    | Pmov_ri (d, n), _ -> set d (Value.Vint n) (c.pc + 1)
    | Pmov_rr (d, s), _ -> set d (reg_val c s) (c.pc + 1)
    | Plea_global (d, g), _ -> (
      match Genv.find_addr c.genv g with
      | Some a -> set d (Value.Vptr a) (c.pc + 1)
      | None -> [ Lang.Stuck_abort ])
    | Plea_stack (d, ofs), _ -> (
      match c.sp with
      | Some b -> set d (Value.Vptr (Addr.make b ofs)) (c.pc + 1)
      | None -> [ Lang.Stuck_abort ])
    | Pbinop_rr (op, d, s), _ ->
      set d (Ops.eval_binop op (reg_val c d) (reg_val c s)) (c.pc + 1)
    | Pbinop_ri (op, d, n), _ ->
      set d (Ops.eval_binop op (reg_val c d) (Value.Vint n)) (c.pc + 1)
    | Pbinop3 (op, d, s1, s2), _ ->
      set d (Ops.eval_binop op (reg_val c s1) (reg_val c s2)) (c.pc + 1)
    | Punop_r (op, d), _ -> set d (Ops.eval_unop op (reg_val c d)) (c.pc + 1)
    | Pload (d, s, ofs), _ -> (
      match addr_plus (reg_val c s) ofs with
      | Some a -> (
        match Memory.load ~perm:(data_perm c) m a with
        | Ok v ->
          tau ~fp:(Footprint.read1 a) ~regs:(Mreg.Map.add d v c.regs) (c.pc + 1)
        | Error _ -> [ Lang.Stuck_abort ])
      | None -> [ Lang.Stuck_abort ])
    | Pstore (d, ofs, s), _ -> (
      match addr_plus (reg_val c d) ofs with
      | Some a -> (
        match Memory.store ~perm:(data_perm c) m a (reg_val c s) with
        | Ok m' -> tau ~fp:(Footprint.write1 a) ~m:m' (c.pc + 1)
        | Error _ -> [ Lang.Stuck_abort ])
      | None -> [ Lang.Stuck_abort ])
    | Pload_stack (d, ofs), _ -> (
      match stack_addr ofs with
      | Some a -> (
        match Memory.load m a with
        | Ok v ->
          tau ~fp:(Footprint.read1 a) ~regs:(Mreg.Map.add d v c.regs) (c.pc + 1)
        | Error _ -> [ Lang.Stuck_abort ])
      | None -> [ Lang.Stuck_abort ])
    | Pstore_stack (ofs, s), _ -> (
      match stack_addr ofs with
      | Some a -> (
        match Memory.store m a (reg_val c s) with
        | Ok m' -> tau ~fp:(Footprint.write1 a) ~m:m' (c.pc + 1)
        | Error _ -> [ Lang.Stuck_abort ])
      | None -> [ Lang.Stuck_abort ])
    | Pcmp_rr (a, b), _ ->
      tau ~flags:(Some (reg_val c a, reg_val c b)) (c.pc + 1)
    | Pcmp_ri (a, n), _ ->
      tau ~flags:(Some (reg_val c a, Value.Vint n)) (c.pc + 1)
    | Pjcc (cond, l), _ -> (
      match eval_cond c cond with
      | None -> [ Lang.Stuck_abort ]
      | Some true -> (
        match find_label c.code l with
        | Some i -> tau i
        | None -> [ Lang.Stuck_abort ])
      | Some false -> tau (c.pc + 1))
    | Pjmp l, _ -> (
      match find_label c.code l with
      | Some i -> tau i
      | None -> [ Lang.Stuck_abort ])
    | Plabel _, _ -> tau (c.pc + 1)
    | Pcall (f, arity, has_res), _ ->
      [ Lang.Next
          ( Msg.Call (f, call_args c arity),
            Footprint.empty,
            { c with pc = c.pc + 1; waiting = Some has_res },
            m ) ]
    | Ptailjmp (f, arity), _ ->
      [ Lang.Next (Msg.TailCall (f, call_args c arity), Footprint.empty, c, m) ]
    | Pret has_res, _ ->
      let v = if has_res then reg_val c Mreg.AX else Value.Vundef in
      [ Lang.Next (Msg.Ret v, Footprint.empty, c, m) ]
    | Pmfence, _ -> tau (c.pc + 1)

let init_core ~genv (p : program) ~entry ~args : core option =
  match List.find_opt (fun f -> String.equal f.fname entry) p.funcs with
  | None -> None
  | Some f ->
    if List.length args <> f.arity || f.arity > List.length Mreg.arg_regs then
      None
    else
      let regs =
        List.fold_left2
          (fun regs r v -> Mreg.Map.add r v regs)
          Mreg.Map.empty
          (List.filteri (fun i _ -> i < f.arity) Mreg.arg_regs)
          args
      in
      Some
        {
          fn = f;
          code = Array.of_list f.code;
          pc = 0;
          regs;
          flags = None;
          sp = None;
          need_frame = f.framesize > 0;
          waiting = None;
          atomphase = 0;
          genv;
        }

let after_external (c : core) (ret : Value.t option) : core option =
  match c.waiting with
  | None -> None
  | Some has_res ->
    let regs =
      if has_res then
        Mreg.Map.add Mreg.res_reg
          (Option.value ~default:(Value.Vint 0) ret)
          c.regs
      else c.regs
    in
    Some { c with regs; waiting = None }

let fingerprint_core c = Fmt.str "%a" pp_core c

(* Streamed state hash in [fingerprint_core]'s classes: machine state only
   (registers, pc, sp, flags, atomic phase) — the code is static per
   function symbol, so like the printer we identify it by name. Hot under
   both the SC engine and [Cas_tso.Tso]. *)
let hash_core st c =
  Hashx.string st c.fn.fname;
  Hashx.int st c.pc;
  (match c.sp with
  | None -> Hashx.char st '-'
  | Some b ->
    Hashx.char st '@';
    Hashx.int st b);
  Hashx.int st c.atomphase;
  Mreg.Map.iter
    (fun r v ->
      Hashx.int st (Hashtbl.hash r);
      Hashx.char st '=';
      Hashx.int st (Value.hash v))
    c.regs;
  (match c.flags with
  | None -> Hashx.char st '-'
  | Some (a, b) ->
    Hashx.char st '?';
    Hashx.int st (Value.hash a);
    Hashx.int st (Value.hash b));
  Hashx.bool st (c.waiting <> None)

(* Instruction streamer, used only by [hash_fundef] (function body
   digests); [hash_core] stays machine-state-only. [Hashtbl.hash] is
   safe on [cond] and the operator enums because they are flat. *)
let hash_instr st = function
  | Pmov_ri (d, n) ->
    Hashx.char st 'a';
    Mreg.hash st d;
    Hashx.int st n
  | Pmov_rr (d, s) ->
    Hashx.char st 'b';
    Mreg.hash st d;
    Mreg.hash st s
  | Plea_global (d, g) ->
    Hashx.char st 'c';
    Mreg.hash st d;
    Hashx.string st g
  | Plea_stack (d, ofs) ->
    Hashx.char st 'd';
    Mreg.hash st d;
    Hashx.int st ofs
  | Pbinop_rr (op, d, s) ->
    Hashx.char st 'e';
    Hashx.int st (Hashtbl.hash op);
    Mreg.hash st d;
    Mreg.hash st s
  | Pbinop_ri (op, d, n) ->
    Hashx.char st 'f';
    Hashx.int st (Hashtbl.hash op);
    Mreg.hash st d;
    Hashx.int st n
  | Pbinop3 (op, d, s1, s2) ->
    Hashx.char st 'g';
    Hashx.int st (Hashtbl.hash op);
    Mreg.hash st d;
    Mreg.hash st s1;
    Mreg.hash st s2
  | Punop_r (op, d) ->
    Hashx.char st 'h';
    Hashx.int st (Hashtbl.hash op);
    Mreg.hash st d
  | Pload (d, s, ofs) ->
    Hashx.char st 'i';
    Mreg.hash st d;
    Mreg.hash st s;
    Hashx.int st ofs
  | Pstore (d, ofs, s) ->
    Hashx.char st 'j';
    Mreg.hash st d;
    Hashx.int st ofs;
    Mreg.hash st s
  | Pload_stack (d, ofs) ->
    Hashx.char st 'k';
    Mreg.hash st d;
    Hashx.int st ofs
  | Pstore_stack (ofs, s) ->
    Hashx.char st 'l';
    Hashx.int st ofs;
    Mreg.hash st s
  | Pcmp_rr (a, b) ->
    Hashx.char st 'm';
    Mreg.hash st a;
    Mreg.hash st b
  | Pcmp_ri (a, n) ->
    Hashx.char st 'n';
    Mreg.hash st a;
    Hashx.int st n
  | Pjcc (c, l) ->
    Hashx.char st 'o';
    Hashx.int st (Hashtbl.hash c);
    Hashx.int st l
  | Pjmp l ->
    Hashx.char st 'p';
    Hashx.int st l
  | Plabel l ->
    Hashx.char st 'q';
    Hashx.int st l
  | Pcall (f, n, has_res) ->
    Hashx.char st 'r';
    Hashx.string st f;
    Hashx.int st n;
    Hashx.bool st has_res
  | Ptailjmp (f, n) ->
    Hashx.char st 's';
    Hashx.string st f;
    Hashx.int st n
  | Pret has_res ->
    Hashx.char st 't';
    Hashx.bool st has_res
  | Plock_cmpxchg (a, s) ->
    Hashx.char st 'u';
    Mreg.hash st a;
    Mreg.hash st s
  | Pmfence -> Hashx.char st 'v'

let hash_fundef st (p : program) name =
  match List.find_opt (fun f -> String.equal f.fname name) p.funcs with
  | None -> ()
  | Some f ->
    Hashx.string st f.fname;
    Hashx.int st f.arity;
    Hashx.char st '|';
    Hashx.int st f.framesize;
    Hashx.bool st f.is_object;
    List.iter (hash_instr st) f.code

(** x86 with SC semantics — the "x86-SC" language of Fig. 3. *)
let lang : (program, core) Lang.t =
  {
    name = "x86-SC";
    init_core;
    step;
    after_external;
    fingerprint_core;
    hash_core;
    hash_fundef;
    pp_core;
    globals_of = (fun p -> p.globals);
    defs_of = (fun p -> List.map (fun f -> (f.fname, f.arity)) p.funcs);
  }
