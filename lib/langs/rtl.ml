(** RTL: control-flow graph of three-address instructions over an
    unbounded supply of pseudo-registers. The optimization passes
    (Tailcall, Renumber, ConstProp, CSE) work at this level, as in
    CompCert (Fig. 11). *)

open Cas_base

module IMap = Map.Make (Int)

type node = int
type reg = int

type op =
  | Omove of reg
  | Oconst of int
  | Oaddrglobal of string
  | Oaddrstack of int
  | Obinop of Ops.binop * reg * reg
  | Obinop_imm of Ops.binop * reg * int
  | Ounop of Ops.unop * reg

type instr =
  | Inop of node
  | Iop of op * reg * node  (** dst := op; goto node *)
  | Iload of reg * int * reg * node  (** dst := [r + ofs] *)
  | Istore of reg * int * reg * node  (** [r + ofs] := src *)
  | Icall of string * reg list * reg option * node
  | Itailcall of string * reg list
  | Icond of reg * node * node  (** if r ≠ 0 then n1 else n2 *)
  | Ireturn of reg option

type func = {
  fname : string;
  fparams : reg list;
  stacksize : int;
  entry : node;
  code : instr IMap.t;
}

type program = { funcs : func list; globals : Genv.gvar list }

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_reg ppf r = Fmt.pf ppf "x%d" r

let pp_op ppf = function
  | Omove r -> pp_reg ppf r
  | Oconst n -> Fmt.int ppf n
  | Oaddrglobal s -> Fmt.pf ppf "&%s" s
  | Oaddrstack ofs -> Fmt.pf ppf "sp+%d" ofs
  | Obinop (op, a, b) -> Fmt.pf ppf "%a %a %a" pp_reg a Ops.pp_binop op pp_reg b
  | Obinop_imm (op, a, n) -> Fmt.pf ppf "%a %a %d" pp_reg a Ops.pp_binop op n
  | Ounop (op, a) -> Fmt.pf ppf "%a%a" Ops.pp_unop op pp_reg a

let pp_instr ppf = function
  | Inop n -> Fmt.pf ppf "nop -> %d" n
  | Iop (op, d, n) -> Fmt.pf ppf "%a := %a -> %d" pp_reg d pp_op op n
  | Iload (d, ofs, r, n) -> Fmt.pf ppf "%a := [%a+%d] -> %d" pp_reg d pp_reg r ofs n
  | Istore (r, ofs, s, n) -> Fmt.pf ppf "[%a+%d] := %a -> %d" pp_reg r ofs pp_reg s n
  | Icall (f, args, dst, n) ->
    Fmt.pf ppf "%a%s(%a) -> %d"
      Fmt.(option (fun ppf r -> Fmt.pf ppf "%a := " pp_reg r))
      dst f
      Fmt.(list ~sep:comma pp_reg)
      args n
  | Itailcall (f, args) ->
    Fmt.pf ppf "tailcall %s(%a)" f Fmt.(list ~sep:comma pp_reg) args
  | Icond (r, n1, n2) -> Fmt.pf ppf "if %a -> %d else %d" pp_reg r n1 n2
  | Ireturn None -> Fmt.string ppf "return"
  | Ireturn (Some r) -> Fmt.pf ppf "return %a" pp_reg r

let pp_func ppf f =
  Fmt.pf ppf "@[<v2>%s(%a) [stack %d, entry %d]:@ %a@]" f.fname
    Fmt.(list ~sep:comma pp_reg)
    f.fparams f.stacksize f.entry
    Fmt.(
      list ~sep:cut (fun ppf (n, i) -> Fmt.pf ppf "%4d: %a" n pp_instr i))
    (IMap.bindings f.code)

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

type core = {
  fn : func;
  pc : node;
  regs : Value.t IMap.t;
  sp : int option;
  need_frame : bool;
  waiting : reg option option;
  genv : Genv.t;
}

let pp_core ppf c =
  Fmt.pf ppf "{%s pc=%d sp=%a [%a]%s}" c.fn.fname c.pc
    Fmt.(option ~none:(any "-") int)
    c.sp
    Fmt.(list ~sep:comma (fun ppf (r, v) -> Fmt.pf ppf "x%d=%a" r Value.pp v))
    (IMap.bindings c.regs)
    (match c.waiting with None -> "" | Some _ -> " <waiting>")

let reg_val c r = Option.value ~default:Value.Vundef (IMap.find_opt r c.regs)

let eval_op c op : Value.t option =
  match op with
  | Omove r -> Some (reg_val c r)
  | Oconst n -> Some (Value.Vint n)
  | Oaddrglobal s ->
    Option.map (fun a -> Value.Vptr a) (Genv.find_addr c.genv s)
  | Oaddrstack ofs -> (
    match c.sp with
    | Some b -> Some (Value.Vptr (Addr.make b ofs))
    | None -> None)
  | Obinop (op, a, b) -> Some (Ops.eval_binop op (reg_val c a) (reg_val c b))
  | Obinop_imm (op, a, n) ->
    Some (Ops.eval_binop op (reg_val c a) (Value.Vint n))
  | Ounop (op, a) -> Some (Ops.eval_unop op (reg_val c a))

let addr_plus v ofs =
  match v with
  | Value.Vptr a -> Some (Addr.make a.block (a.ofs + ofs))
  | _ -> None

let step (fl : Flist.t) (c : core) (m : Memory.t) : core Lang.succ list =
  if c.waiting <> None then []
  else if c.need_frame then
    let m', b, fp = Memory.alloc m fl ~size:c.fn.stacksize ~perm:Perm.Normal in
    [ Lang.Next (Msg.Tau, fp, { c with need_frame = false; sp = Some b }, m') ]
  else
    match IMap.find_opt c.pc c.fn.code with
    | None -> []
    | Some i -> (
      let tau ?(fp = Footprint.empty) ?m:(m' = m) ?regs pc =
        let regs = Option.value ~default:c.regs regs in
        [ Lang.Next (Msg.Tau, fp, { c with pc; regs }, m') ]
      in
      match i with
      | Inop n -> tau n
      | Iop (op, d, n) -> (
        match eval_op c op with
        | Some v -> tau ~regs:(IMap.add d v c.regs) n
        | None -> [ Lang.Stuck_abort ])
      | Iload (d, ofs, r, n) -> (
        match addr_plus (reg_val c r) ofs with
        | Some a -> (
          match Memory.load m a with
          | Ok v -> tau ~fp:(Footprint.read1 a) ~regs:(IMap.add d v c.regs) n
          | Error _ -> [ Lang.Stuck_abort ])
        | None -> [ Lang.Stuck_abort ])
      | Istore (r, ofs, s, n) -> (
        match addr_plus (reg_val c r) ofs with
        | Some a -> (
          match Memory.store m a (reg_val c s) with
          | Ok m' -> tau ~fp:(Footprint.write1 a) ~m:m' n
          | Error _ -> [ Lang.Stuck_abort ])
        | None -> [ Lang.Stuck_abort ])
      | Icall (f, args, dst, n) ->
        [ Lang.Next
            ( Msg.Call (f, List.map (reg_val c) args),
              Footprint.empty,
              { c with pc = n; waiting = Some dst },
              m ) ]
      | Itailcall (f, args) ->
        [ Lang.Next
            ( Msg.TailCall (f, List.map (reg_val c) args),
              Footprint.empty,
              c,
              m ) ]
      | Icond (r, n1, n2) ->
        if Value.is_true (reg_val c r) then tau n1 else tau n2
      | Ireturn ro ->
        let v = match ro with None -> Value.Vundef | Some r -> reg_val c r in
        [ Lang.Next (Msg.Ret v, Footprint.empty, c, m) ])

let init_core ~genv (p : program) ~entry ~args : core option =
  match List.find_opt (fun f -> String.equal f.fname entry) p.funcs with
  | None -> None
  | Some f ->
    if List.length f.fparams <> List.length args then None
    else
      let regs =
        List.fold_left2
          (fun regs r v -> IMap.add r v regs)
          IMap.empty f.fparams args
      in
      Some
        {
          fn = f;
          pc = f.entry;
          regs;
          sp = None;
          need_frame = f.stacksize > 0;
          waiting = None;
          genv;
        }

let after_external (c : core) (ret : Value.t option) : core option =
  match c.waiting with
  | None -> None
  | Some dst ->
    let regs =
      match dst with
      | None -> c.regs
      | Some r -> IMap.add r (Option.value ~default:(Value.Vint 0) ret) c.regs
    in
    Some { c with regs; waiting = None }

let fingerprint_core c = Fmt.str "%a" pp_core c

(* Streamed state hash in [fingerprint_core]'s classes: printed fields
   only ([need_frame]/[genv] stay out, [waiting] contributes its
   outermost option). One tag char per constructor keeps the token
   stream injective on the syntax without building the string. *)
let hash_op st = function
  | Omove r ->
    Hashx.char st 'm';
    Hashx.int st r
  | Oconst n ->
    Hashx.char st 'c';
    Hashx.int st n
  | Oaddrglobal s ->
    Hashx.char st 'g';
    Hashx.string st s
  | Oaddrstack ofs ->
    Hashx.char st 's';
    Hashx.int st ofs
  | Obinop (op, a, b) ->
    Hashx.char st 'b';
    Hashx.int st (Hashtbl.hash op);
    Hashx.int st a;
    Hashx.int st b
  | Obinop_imm (op, a, n) ->
    Hashx.char st 'i';
    Hashx.int st (Hashtbl.hash op);
    Hashx.int st a;
    Hashx.int st n
  | Ounop (op, a) ->
    Hashx.char st 'u';
    Hashx.int st (Hashtbl.hash op);
    Hashx.int st a

let hash_instr st = function
  | Inop n ->
    Hashx.char st '0';
    Hashx.int st n
  | Iop (op, d, n) ->
    Hashx.char st '1';
    hash_op st op;
    Hashx.int st d;
    Hashx.int st n
  | Iload (d, ofs, r, n) ->
    Hashx.char st '2';
    Hashx.int st d;
    Hashx.int st ofs;
    Hashx.int st r;
    Hashx.int st n
  | Istore (r, ofs, s, n) ->
    Hashx.char st '3';
    Hashx.int st r;
    Hashx.int st ofs;
    Hashx.int st s;
    Hashx.int st n
  | Icall (f, args, dst, n) ->
    Hashx.char st '4';
    Hashx.string st f;
    List.iter (Hashx.int st) args;
    (match dst with
    | None -> Hashx.char st '-'
    | Some d ->
      Hashx.char st '=';
      Hashx.int st d);
    Hashx.int st n
  | Itailcall (f, args) ->
    Hashx.char st '5';
    Hashx.string st f;
    List.iter (Hashx.int st) args
  | Icond (r, n1, n2) ->
    Hashx.char st '6';
    Hashx.int st r;
    Hashx.int st n1;
    Hashx.int st n2
  | Ireturn None -> Hashx.char st '7'
  | Ireturn (Some r) ->
    Hashx.char st 'R';
    Hashx.int st r

let hash_core st c =
  Hashx.string st c.fn.fname;
  Hashx.int st c.pc;
  (match c.sp with
  | None -> Hashx.char st '-'
  | Some b ->
    Hashx.char st '@';
    Hashx.int st b);
  IMap.iter
    (fun r v ->
      Hashx.int st r;
      Hashx.char st '=';
      Hashx.int st (Value.hash v))
    c.regs;
  Hashx.bool st (c.waiting <> None)

let hash_fundef st (p : program) name =
  match List.find_opt (fun f -> String.equal f.fname name) p.funcs with
  | None -> ()
  | Some f ->
    Hashx.string st f.fname;
    List.iter (Hashx.int st) f.fparams;
    Hashx.char st '|';
    Hashx.int st f.stacksize;
    Hashx.int st f.entry;
    IMap.iter
      (fun n i ->
        Hashx.int st n;
        Hashx.char st ':';
        hash_instr st i)
      f.code

let lang : (program, core) Lang.t =
  {
    name = "RTL";
    init_core;
    step;
    after_external;
    fingerprint_core;
    hash_core;
    hash_fundef;
    pp_core;
    globals_of = (fun p -> p.globals);
    defs_of =
      (fun p ->
        List.map (fun f -> (f.fname, List.length f.fparams)) p.funcs);
  }

(** Successors of an instruction — shared by the dataflow analyses of the
    optimization passes. *)
let successors = function
  | Inop n | Iop (_, _, n) | Iload (_, _, _, n) | Istore (_, _, _, n)
  | Icall (_, _, _, n) ->
    [ n ]
  | Icond (_, n1, n2) -> [ n1; n2 ]
  | Itailcall _ | Ireturn _ -> []

(** Registers read by an instruction. *)
let uses = function
  | Inop _ -> []
  | Iop (op, _, _) -> (
    match op with
    | Omove r | Obinop_imm (_, r, _) | Ounop (_, r) -> [ r ]
    | Obinop (_, a, b) -> [ a; b ]
    | Oconst _ | Oaddrglobal _ | Oaddrstack _ -> [])
  | Iload (_, _, r, _) -> [ r ]
  | Istore (r, _, s, _) -> [ r; s ]
  | Icall (_, args, _, _) | Itailcall (_, args) -> args
  | Icond (r, _, _) -> [ r ]
  | Ireturn None -> []
  | Ireturn (Some r) -> [ r ]

(** Register defined by an instruction, if any. *)
let defs = function
  | Iop (_, d, _) | Iload (d, _, _, _) -> Some d
  | Icall (_, _, Some d, _) -> Some d
  | _ -> None
