(** Mini-Clight: the client source language (§7.1), a structured C subset
    in the style of CompCert Clight.

    - Temporaries ([Etemp]/[Sset]) are register-like and never in memory.
    - Declared local variables ([fvars]) are stack-allocated: one block per
      variable, drawn from the thread's freelist at function entry exactly
      as in the paper's instantiation (core carries the index of the next
      block to allocate). They are addressable ([Eaddrof]), which supports
      the cross-module pointer example (2.1) of the paper.
    - Function calls are interaction-semantics calls: [Scall] emits a
      [Msg.Call] resolved by the global linker, whether the callee is in
      the same module, another Clight module, a CImp object, or compiled
      assembly. [print] is an external with an observable event. *)

open Cas_base

module SMap = Map.Make (String)

type expr =
  | Econst of int
  | Etemp of string
  | Evar of string  (** read a stack local (cell 0) *)
  | Eglob of string  (** read a global (cell 0) *)
  | Eaddrof of string  (** &x: local if declared, else global *)
  | Ederef of expr  (** *e, pointer load *)
  | Ebinop of Ops.binop * expr * expr
  | Eunop of Ops.unop * expr

type lhs =
  | Lvar of string
  | Lglob of string
  | Lderef of expr

type stmt =
  | Sskip
  | Sassign of lhs * expr
  | Sset of string * expr  (** temp = e *)
  | Scall of string option * string * expr list
  | Sseq of stmt * stmt
  | Sif of expr * stmt * stmt
  | Swhile of expr * stmt
  | Sreturn of expr option

type func = {
  fname : string;
  fparams : string list;  (** received as temporaries *)
  fvars : (string * int) list;  (** stack-allocated locals and their sizes *)
  fbody : stmt;
}

type program = { funcs : func list; globals : Genv.gvar list }

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let rec pp_expr ppf = function
  | Econst n -> Fmt.int ppf n
  | Etemp x -> Fmt.pf ppf "%s" x
  | Evar x -> Fmt.pf ppf "%s" x
  | Eglob x -> Fmt.pf ppf "%s" x
  | Eaddrof x -> Fmt.pf ppf "&%s" x
  | Ederef e -> Fmt.pf ppf "*(%a)" pp_expr e
  | Ebinop (op, a, b) ->
    Fmt.pf ppf "(%a %a %a)" pp_expr a Ops.pp_binop op pp_expr b
  | Eunop (op, a) -> Fmt.pf ppf "(%a%a)" Ops.pp_unop op pp_expr a

let pp_lhs ppf = function
  | Lvar x | Lglob x -> Fmt.string ppf x
  | Lderef e -> Fmt.pf ppf "*(%a)" pp_expr e

let rec pp_stmt ppf = function
  | Sskip -> Fmt.string ppf "skip"
  | Sassign (l, e) -> Fmt.pf ppf "%a = %a" pp_lhs l pp_expr e
  | Sset (x, e) -> Fmt.pf ppf "%s = %a" x pp_expr e
  | Scall (None, f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args
  | Scall (Some x, f, args) ->
    Fmt.pf ppf "%s = %s(%a)" x f Fmt.(list ~sep:comma pp_expr) args
  | Sseq (a, b) -> Fmt.pf ppf "%a; %a" pp_stmt a pp_stmt b
  | Sif (e, a, b) ->
    Fmt.pf ppf "if (%a) {%a} else {%a}" pp_expr e pp_stmt a pp_stmt b
  | Swhile (e, s) -> Fmt.pf ppf "while (%a) {%a}" pp_expr e pp_stmt s
  | Sreturn None -> Fmt.string ppf "return"
  | Sreturn (Some e) -> Fmt.pf ppf "return %a" pp_expr e

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

type kont = Kstop | Kseq of stmt * kont | Kwhile of expr * stmt * kont

type core = {
  fn : func;
  blocks : int SMap.t;  (** local variable -> allocated block *)
  temps : Value.t SMap.t;
  pending : (string * int) list;  (** locals still to allocate at entry *)
  cur : stmt;
  k : kont;
  waiting : string option option;
      (** [Some dst] when blocked at an external call *)
  genv : Genv.t;
}

let rec pp_kont ppf = function
  | Kstop -> Fmt.string ppf "."
  | Kseq (s, k) -> Fmt.pf ppf "%a;; %a" pp_stmt s pp_kont k
  | Kwhile (e, s, k) ->
    Fmt.pf ppf "loop(%a,%a);; %a" pp_expr e pp_stmt s pp_kont k

let pp_core ppf c =
  Fmt.pf ppf "{%s env=[%a] tmp=[%a] %a | %a%s}" c.fn.fname
    Fmt.(list ~sep:comma (fun ppf (x, b) -> Fmt.pf ppf "%s@%d" x b))
    (SMap.bindings c.blocks)
    Fmt.(list ~sep:comma (fun ppf (x, v) -> Fmt.pf ppf "%s=%a" x Value.pp v))
    (SMap.bindings c.temps) pp_stmt c.cur pp_kont c.k
    (match c.waiting with None -> "" | Some _ -> " <waiting>")

exception Fault

(** Resolve &x: locals shadow globals. *)
let addr_of_var c x =
  match SMap.find_opt x c.blocks with
  | Some b -> Some (Addr.make b 0)
  | None -> Genv.find_addr c.genv x

(** Big-step pure-with-loads expression evaluation, accumulating the read
    footprint. Raises [Fault] on memory errors (undefined behaviour). *)
let eval c m e : Value.t * Footprint.t =
  let fp = ref Footprint.empty in
  let load a =
    match Memory.load m a with
    | Ok v ->
      fp := Footprint.union !fp (Footprint.read1 a);
      v
    | Error _ -> raise Fault
  in
  let rec go = function
    | Econst n -> Value.Vint n
    | Etemp x -> Option.value ~default:Value.Vundef (SMap.find_opt x c.temps)
    | Evar x | Eglob x -> (
      match addr_of_var c x with Some a -> load a | None -> raise Fault)
    | Eaddrof x -> (
      match addr_of_var c x with Some a -> Value.Vptr a | None -> raise Fault)
    | Ederef e -> (
      match go e with Value.Vptr a -> load a | _ -> raise Fault)
    | Ebinop (op, a, b) ->
      let va = go a in
      let vb = go b in
      Ops.eval_binop op va vb
    | Eunop (op, a) -> Ops.eval_unop op (go a)
  in
  let v = go e in
  (v, !fp)

let lhs_addr c m l : Addr.t * Footprint.t =
  match l with
  | Lvar x | Lglob x -> (
    match addr_of_var c x with Some a -> (a, Footprint.empty) | None -> raise Fault)
  | Lderef e -> (
    match eval c m e with
    | Value.Vptr a, fp -> (a, fp)
    | _ -> raise Fault)

let step (fl : Flist.t) (c : core) (m : Memory.t) : core Lang.succ list =
  if c.waiting <> None then []
  else
    match c.pending with
    | (x, size) :: rest ->
      (* Function-entry stack allocation, one block per step. *)
      let m', b, fp = Memory.alloc m fl ~size ~perm:Perm.Normal in
      [ Lang.Next
          ( Msg.Tau,
            fp,
            { c with pending = rest; blocks = SMap.add x b c.blocks },
            m' ) ]
    | [] -> (
      let tau ?(fp = Footprint.empty) ?m:(m' = m) cur k temps =
        [ Lang.Next (Msg.Tau, fp, { c with cur; k; temps }, m') ]
      in
      try
        match (c.cur, c.k) with
        | Sskip, Kstop ->
          [ Lang.Next (Msg.Ret Value.Vundef, Footprint.empty, c, m) ]
        | Sskip, Kseq (s, k) -> tau s k c.temps
        | Sskip, Kwhile (e, s, k) -> tau (Swhile (e, s)) k c.temps
        | Sset (x, e), k ->
          let v, fp = eval c m e in
          tau ~fp Sskip k (SMap.add x v c.temps)
        | Sassign (l, e), k -> (
          let a, fp1 = lhs_addr c m l in
          let v, fp2 = eval c m e in
          match Memory.store m a v with
          | Ok m' ->
            let fp =
              Footprint.union (Footprint.union fp1 fp2) (Footprint.write1 a)
            in
            tau ~fp ~m:m' Sskip k c.temps
          | Error _ -> [ Lang.Stuck_abort ])
        | Scall (dst, f, args), k ->
          let vs, fps =
            List.fold_left
              (fun (vs, fps) e ->
                let v, fp = eval c m e in
                (v :: vs, Footprint.union fps fp))
              ([], Footprint.empty) args
          in
          [ Lang.Next
              ( Msg.Call (f, List.rev vs),
                fps,
                { c with cur = Sskip; k; waiting = Some dst },
                m ) ]
        | Sseq (a, b), k -> tau a (Kseq (b, k)) c.temps
        | Sif (e, a, b), k ->
          let v, fp = eval c m e in
          if Value.is_true v then tau ~fp a k c.temps else tau ~fp b k c.temps
        | Swhile (e, s), k ->
          let v, fp = eval c m e in
          if Value.is_true v then tau ~fp s (Kwhile (e, s, k)) c.temps
          else tau ~fp Sskip k c.temps
        | Sreturn eo, _ ->
          let v, fp =
            match eo with
            | None -> (Value.Vundef, Footprint.empty)
            | Some e -> eval c m e
          in
          [ Lang.Next (Msg.Ret v, fp, c, m) ]
      with Fault -> [ Lang.Stuck_abort ])

let init_core ~genv (p : program) ~entry ~args : core option =
  match List.find_opt (fun f -> String.equal f.fname entry) p.funcs with
  | None -> None
  | Some f ->
    if List.length f.fparams <> List.length args then None
    else
      let temps =
        List.fold_left2
          (fun env x v -> SMap.add x v env)
          SMap.empty f.fparams args
      in
      Some
        {
          fn = f;
          blocks = SMap.empty;
          temps;
          pending = f.fvars;
          cur = f.fbody;
          k = Kstop;
          waiting = None;
          genv;
        }

let after_external (c : core) (ret : Value.t option) : core option =
  match c.waiting with
  | None -> None
  | Some dst ->
    let temps =
      match dst with
      | None -> c.temps
      | Some x ->
        SMap.add x (Option.value ~default:(Value.Vint 0) ret) c.temps
    in
    Some { c with temps; waiting = None }

let fingerprint_core c = Fmt.str "%a" pp_core c

(* Streamed state hash, in [fingerprint_core]'s equivalence classes (so
   [pending]/[genv] stay out, and [waiting] contributes only its
   outermost option, exactly as printed). Clight cores are rehashed on
   every client-code step of the exploration engines. *)
let rec hash_expr st = function
  | Econst n ->
    Hashx.char st 'c';
    Hashx.int st n
  | Etemp x ->
    Hashx.char st 't';
    Hashx.string st x
  | Evar x ->
    Hashx.char st 'v';
    Hashx.string st x
  | Eglob x ->
    Hashx.char st 'g';
    Hashx.string st x
  | Eaddrof x ->
    Hashx.char st '&';
    Hashx.string st x
  | Ederef e ->
    Hashx.char st '*';
    hash_expr st e
  | Ebinop (op, a, b) ->
    Hashx.char st 'b';
    Hashx.int st (Hashtbl.hash op);
    hash_expr st a;
    hash_expr st b
  | Eunop (op, a) ->
    Hashx.char st 'u';
    Hashx.int st (Hashtbl.hash op);
    hash_expr st a

let hash_lhs st = function
  | Lvar x ->
    Hashx.char st 'V';
    Hashx.string st x
  | Lglob x ->
    Hashx.char st 'G';
    Hashx.string st x
  | Lderef e ->
    Hashx.char st 'D';
    hash_expr st e

let rec hash_stmt st = function
  | Sskip -> Hashx.char st '0'
  | Sassign (l, e) ->
    Hashx.char st '1';
    hash_lhs st l;
    hash_expr st e
  | Sset (x, e) ->
    Hashx.char st '2';
    Hashx.string st x;
    hash_expr st e
  | Scall (dst, f, args) ->
    Hashx.char st '3';
    (match dst with
    | None -> Hashx.char st '-'
    | Some x ->
      Hashx.char st '=';
      Hashx.string st x);
    Hashx.string st f;
    List.iter (hash_expr st) args
  | Sseq (a, b) ->
    Hashx.char st '4';
    hash_stmt st a;
    hash_stmt st b
  | Sif (e, a, b) ->
    Hashx.char st '5';
    hash_expr st e;
    hash_stmt st a;
    hash_stmt st b
  | Swhile (e, s) ->
    Hashx.char st '6';
    hash_expr st e;
    hash_stmt st s
  | Sreturn None -> Hashx.char st '7'
  | Sreturn (Some e) ->
    Hashx.char st 'R';
    hash_expr st e

let rec hash_kont st = function
  | Kstop -> Hashx.char st '.'
  | Kseq (s, k) ->
    Hashx.char st 'S';
    hash_stmt st s;
    hash_kont st k
  | Kwhile (e, s, k) ->
    Hashx.char st 'W';
    hash_expr st e;
    hash_stmt st s;
    hash_kont st k

let hash_core st c =
  Hashx.string st c.fn.fname;
  SMap.iter
    (fun x b ->
      Hashx.string st x;
      Hashx.char st '@';
      Hashx.int st b)
    c.blocks;
  Hashx.char st '|';
  SMap.iter
    (fun x v ->
      Hashx.string st x;
      Hashx.char st '=';
      Hashx.int st (Value.hash v))
    c.temps;
  Hashx.char st '|';
  hash_stmt st c.cur;
  Hashx.char st '|';
  hash_kont st c.k;
  Hashx.bool st (c.waiting <> None)

let hash_fundef st (p : program) name =
  match List.find_opt (fun f -> String.equal f.fname name) p.funcs with
  | None -> ()
  | Some f ->
    Hashx.string st f.fname;
    List.iter
      (fun x ->
        Hashx.char st ',';
        Hashx.string st x)
      f.fparams;
    Hashx.char st '|';
    List.iter
      (fun (x, size) ->
        Hashx.string st x;
        Hashx.char st '@';
        Hashx.int st size)
      f.fvars;
    Hashx.char st '|';
    hash_stmt st f.fbody

let lang : (program, core) Lang.t =
  {
    name = "Clight";
    init_core;
    step;
    after_external;
    fingerprint_core;
    hash_core;
    hash_fundef;
    pp_core;
    globals_of = (fun p -> p.globals);
    defs_of =
      (fun p ->
        List.map (fun f -> (f.fname, List.length f.fparams)) p.funcs);
  }
