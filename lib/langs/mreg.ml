(** Machine registers of our x86-like target, and locations (registers or
    abstract spill slots) used from LTL down to Linear. *)

open Cas_base

type t = AX | BX | CX | DX | SI | DI

let all = [ AX; BX; CX; DX; SI; DI ]

(** Registers used to pass arguments at calls, in order; the result comes
    back in [AX]. *)
let arg_regs = [ AX; BX; CX; DX; SI; DI ]

let res_reg = AX

let to_string = function
  | AX -> "ax"
  | BX -> "bx"
  | CX -> "cx"
  | DX -> "dx"
  | SI -> "si"
  | DI -> "di"

let pp ppf r = Fmt.string ppf (to_string r)
let compare = Stdlib.compare
let equal a b = compare a b = 0

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

(** Locations: a machine register or an abstract stack slot (LTL/Linear).
    The Stacking pass maps slots to concrete frame offsets. *)
type loc = R of t | S of int

let pp_loc ppf = function
  | R r -> pp ppf r
  | S i -> Fmt.pf ppf "s%d" i

let compare_loc = Stdlib.compare

module LocMap = Stdlib.Map.Make (struct
  type nonrec t = loc

  let compare = compare_loc
end)

(** Generic operator form over any register/location type, shared by LTL,
    Linear, Mach and reused via instantiation. *)
type 'r gop =
  | Gmove of 'r
  | Gconst of int
  | Gaddrglobal of string
  | Gaddrstack of int
  | Gbinop of Ops.binop * 'r * 'r
  | Gbinop_imm of Ops.binop * 'r * int
  | Gunop of Ops.unop * 'r

let pp_gop pp_r ppf = function
  | Gmove r -> pp_r ppf r
  | Gconst n -> Fmt.int ppf n
  | Gaddrglobal s -> Fmt.pf ppf "&%s" s
  | Gaddrstack ofs -> Fmt.pf ppf "sp+%d" ofs
  | Gbinop (op, a, b) -> Fmt.pf ppf "%a %a %a" pp_r a Ops.pp_binop op pp_r b
  | Gbinop_imm (op, a, n) -> Fmt.pf ppf "%a %a %d" pp_r a Ops.pp_binop op n
  | Gunop (op, a) -> Fmt.pf ppf "%a%a" Ops.pp_unop op pp_r a

(** Evaluate a generic operator. [read] looks up a register/location,
    [glob] resolves global symbols, [sp ofs] resolves stack addresses
    (None when no frame). *)
let eval_gop ~read ~glob ~sp op : Value.t option =
  match op with
  | Gmove r -> Some (read r)
  | Gconst n -> Some (Value.Vint n)
  | Gaddrglobal s -> glob s
  | Gaddrstack ofs -> sp ofs
  | Gbinop (op, a, b) -> Some (Ops.eval_binop op (read a) (read b))
  | Gbinop_imm (op, a, n) -> Some (Ops.eval_binop op (read a) (Value.Vint n))
  | Gunop (op, a) -> Some (Ops.eval_unop op (read a))

let gop_uses = function
  | Gmove r | Gbinop_imm (_, r, _) | Gunop (_, r) -> [ r ]
  | Gbinop (_, a, b) -> [ a; b ]
  | Gconst _ | Gaddrglobal _ | Gaddrstack _ -> []

let map_gop f = function
  | Gmove r -> Gmove (f r)
  | Gconst n -> Gconst n
  | Gaddrglobal s -> Gaddrglobal s
  | Gaddrstack ofs -> Gaddrstack ofs
  | Gbinop (op, a, b) -> Gbinop (op, f a, f b)
  | Gbinop_imm (op, a, n) -> Gbinop_imm (op, f a, n)
  | Gunop (op, a) -> Gunop (op, f a)

(* Hash streamers shared by the location-based IRs (LTL, Linear, Mach):
   one tag char per constructor, so the token stream is injective on the
   syntax. [Hashtbl.hash] is safe on [t] and [Ops.binop]/[Ops.unop]
   because they are flat enums — never use it on recursive structures. *)

let hash st (r : t) = Hashx.int st (Hashtbl.hash r)

let hash_loc st = function
  | R r ->
    Hashx.char st 'r';
    hash st r
  | S i ->
    Hashx.char st 's';
    Hashx.int st i

let hash_gop hash_r st = function
  | Gmove r ->
    Hashx.char st 'm';
    hash_r st r
  | Gconst n ->
    Hashx.char st 'c';
    Hashx.int st n
  | Gaddrglobal s ->
    Hashx.char st 'g';
    Hashx.string st s
  | Gaddrstack ofs ->
    Hashx.char st 'a';
    Hashx.int st ofs
  | Gbinop (op, a, b) ->
    Hashx.char st 'b';
    Hashx.int st (Hashtbl.hash op);
    hash_r st a;
    hash_r st b
  | Gbinop_imm (op, a, n) ->
    Hashx.char st 'i';
    Hashx.int st (Hashtbl.hash op);
    hash_r st a;
    Hashx.int st n
  | Gunop (op, a) ->
    Hashx.char st 'u';
    Hashx.int st (Hashtbl.hash op);
    hash_r st a
