(** LTL: RTL after register allocation — same CFG shape, but operands are
    locations (machine registers or abstract spill slots). Slots live in
    the abstract location set, not memory; the Stacking pass later places
    them in the activation record. *)

open Cas_base

module IMap = Map.Make (Int)

type node = int
type loc = Mreg.loc
type op = loc Mreg.gop

type instr =
  | Lnop of node
  | Lop of op * loc * node
  | Lload of loc * int * loc * node  (** dst := [addr + ofs] *)
  | Lstore of loc * int * loc * node  (** [addr + ofs] := src *)
  | Lcall of string * loc list * loc option * node
  | Ltailcall of string * loc list
  | Lcond of loc * node * node
  | Lreturn of loc option

type func = {
  fname : string;
  fparams : loc list;
  stacksize : int;
  entry : node;
  code : instr IMap.t;
}

type program = { funcs : func list; globals : Genv.gvar list }

let pp_instr ppf =
  let pp_loc = Mreg.pp_loc in
  function
  | Lnop n -> Fmt.pf ppf "nop -> %d" n
  | Lop (op, d, n) ->
    Fmt.pf ppf "%a := %a -> %d" pp_loc d (Mreg.pp_gop pp_loc) op n
  | Lload (d, ofs, r, n) ->
    Fmt.pf ppf "%a := [%a+%d] -> %d" pp_loc d pp_loc r ofs n
  | Lstore (r, ofs, s, n) ->
    Fmt.pf ppf "[%a+%d] := %a -> %d" pp_loc r ofs pp_loc s n
  | Lcall (f, args, dst, n) ->
    Fmt.pf ppf "%a%s(%a) -> %d"
      Fmt.(option (fun ppf l -> Fmt.pf ppf "%a := " pp_loc l))
      dst f
      Fmt.(list ~sep:comma pp_loc)
      args n
  | Ltailcall (f, args) ->
    Fmt.pf ppf "tailcall %s(%a)" f Fmt.(list ~sep:comma Mreg.pp_loc) args
  | Lcond (r, n1, n2) -> Fmt.pf ppf "if %a -> %d else %d" pp_loc r n1 n2
  | Lreturn None -> Fmt.string ppf "return"
  | Lreturn (Some l) -> Fmt.pf ppf "return %a" pp_loc l

let pp_func ppf f =
  Fmt.pf ppf "@[<v2>%s(%a) [stack %d, entry %d]:@ %a@]" f.fname
    Fmt.(list ~sep:comma Mreg.pp_loc)
    f.fparams f.stacksize f.entry
    Fmt.(list ~sep:cut (fun ppf (n, i) -> Fmt.pf ppf "%4d: %a" n pp_instr i))
    (IMap.bindings f.code)

type core = {
  fn : func;
  pc : node;
  locs : Value.t Mreg.LocMap.t;
  sp : int option;
  need_frame : bool;
  waiting : loc option option;
  genv : Genv.t;
}

let pp_core ppf c =
  Fmt.pf ppf "{%s pc=%d sp=%a [%a]%s}" c.fn.fname c.pc
    Fmt.(option ~none:(any "-") int)
    c.sp
    Fmt.(
      list ~sep:comma (fun ppf (l, v) ->
          Fmt.pf ppf "%a=%a" Mreg.pp_loc l Value.pp v))
    (Mreg.LocMap.bindings c.locs)
    (match c.waiting with None -> "" | Some _ -> " <waiting>")

let loc_val c l = Option.value ~default:Value.Vundef (Mreg.LocMap.find_opt l c.locs)

let eval_op c op =
  Mreg.eval_gop op ~read:(loc_val c)
    ~glob:(fun s -> Option.map (fun a -> Value.Vptr a) (Genv.find_addr c.genv s))
    ~sp:(fun ofs ->
      match c.sp with
      | Some b -> Some (Value.Vptr (Addr.make b ofs))
      | None -> None)

let addr_plus v ofs =
  match v with
  | Value.Vptr a -> Some (Addr.make a.Addr.block (a.Addr.ofs + ofs))
  | _ -> None

let step (fl : Flist.t) (c : core) (m : Memory.t) : core Lang.succ list =
  if c.waiting <> None then []
  else if c.need_frame then
    let m', b, fp = Memory.alloc m fl ~size:c.fn.stacksize ~perm:Perm.Normal in
    [ Lang.Next (Msg.Tau, fp, { c with need_frame = false; sp = Some b }, m') ]
  else
    match IMap.find_opt c.pc c.fn.code with
    | None -> []
    | Some i -> (
      let tau ?(fp = Footprint.empty) ?m:(m' = m) ?locs pc =
        let locs = Option.value ~default:c.locs locs in
        [ Lang.Next (Msg.Tau, fp, { c with pc; locs }, m') ]
      in
      match i with
      | Lnop n -> tau n
      | Lop (op, d, n) -> (
        match eval_op c op with
        | Some v -> tau ~locs:(Mreg.LocMap.add d v c.locs) n
        | None -> [ Lang.Stuck_abort ])
      | Lload (d, ofs, r, n) -> (
        match addr_plus (loc_val c r) ofs with
        | Some a -> (
          match Memory.load m a with
          | Ok v ->
            tau ~fp:(Footprint.read1 a) ~locs:(Mreg.LocMap.add d v c.locs) n
          | Error _ -> [ Lang.Stuck_abort ])
        | None -> [ Lang.Stuck_abort ])
      | Lstore (r, ofs, s, n) -> (
        match addr_plus (loc_val c r) ofs with
        | Some a -> (
          match Memory.store m a (loc_val c s) with
          | Ok m' -> tau ~fp:(Footprint.write1 a) ~m:m' n
          | Error _ -> [ Lang.Stuck_abort ])
        | None -> [ Lang.Stuck_abort ])
      | Lcall (f, args, dst, n) ->
        [ Lang.Next
            ( Msg.Call (f, List.map (loc_val c) args),
              Footprint.empty,
              { c with pc = n; waiting = Some dst },
              m ) ]
      | Ltailcall (f, args) ->
        [ Lang.Next
            (Msg.TailCall (f, List.map (loc_val c) args), Footprint.empty, c, m)
        ]
      | Lcond (r, n1, n2) ->
        if Value.is_true (loc_val c r) then tau n1 else tau n2
      | Lreturn lo ->
        let v = match lo with None -> Value.Vundef | Some l -> loc_val c l in
        [ Lang.Next (Msg.Ret v, Footprint.empty, c, m) ])

let init_core ~genv (p : program) ~entry ~args : core option =
  match List.find_opt (fun f -> String.equal f.fname entry) p.funcs with
  | None -> None
  | Some f ->
    if List.length f.fparams <> List.length args then None
    else
      let locs =
        List.fold_left2
          (fun locs l v -> Mreg.LocMap.add l v locs)
          Mreg.LocMap.empty f.fparams args
      in
      Some
        {
          fn = f;
          pc = f.entry;
          locs;
          sp = None;
          need_frame = f.stacksize > 0;
          waiting = None;
          genv;
        }

let after_external (c : core) (ret : Value.t option) : core option =
  match c.waiting with
  | None -> None
  | Some dst ->
    let locs =
      match dst with
      | None -> c.locs
      | Some l ->
        Mreg.LocMap.add l (Option.value ~default:(Value.Vint 0) ret) c.locs
    in
    Some { c with locs; waiting = None }

let fingerprint_core c = Fmt.str "%a" pp_core c

(* Streamed state hash in [fingerprint_core]'s classes: printed fields
   only ([need_frame]/[genv] stay out, [waiting] contributes its
   outermost option). Location and operator streamers are shared with
   Linear and Mach ([Mreg.hash_loc]/[Mreg.hash_gop]). *)
let hash_instr st = function
  | Lnop n ->
    Hashx.char st '0';
    Hashx.int st n
  | Lop (op, d, n) ->
    Hashx.char st '1';
    Mreg.hash_gop Mreg.hash_loc st op;
    Mreg.hash_loc st d;
    Hashx.int st n
  | Lload (d, ofs, r, n) ->
    Hashx.char st '2';
    Mreg.hash_loc st d;
    Hashx.int st ofs;
    Mreg.hash_loc st r;
    Hashx.int st n
  | Lstore (r, ofs, s, n) ->
    Hashx.char st '3';
    Mreg.hash_loc st r;
    Hashx.int st ofs;
    Mreg.hash_loc st s;
    Hashx.int st n
  | Lcall (f, args, dst, n) ->
    Hashx.char st '4';
    Hashx.string st f;
    List.iter (Mreg.hash_loc st) args;
    (match dst with
    | None -> Hashx.char st '-'
    | Some d ->
      Hashx.char st '=';
      Mreg.hash_loc st d);
    Hashx.int st n
  | Ltailcall (f, args) ->
    Hashx.char st '5';
    Hashx.string st f;
    List.iter (Mreg.hash_loc st) args
  | Lcond (r, n1, n2) ->
    Hashx.char st '6';
    Mreg.hash_loc st r;
    Hashx.int st n1;
    Hashx.int st n2
  | Lreturn None -> Hashx.char st '7'
  | Lreturn (Some l) ->
    Hashx.char st 'R';
    Mreg.hash_loc st l

let hash_core st c =
  Hashx.string st c.fn.fname;
  Hashx.int st c.pc;
  (match c.sp with
  | None -> Hashx.char st '-'
  | Some b ->
    Hashx.char st '@';
    Hashx.int st b);
  Mreg.LocMap.iter
    (fun l v ->
      Mreg.hash_loc st l;
      Hashx.char st '=';
      Hashx.int st (Value.hash v))
    c.locs;
  Hashx.bool st (c.waiting <> None)

let hash_fundef st (p : program) name =
  match List.find_opt (fun f -> String.equal f.fname name) p.funcs with
  | None -> ()
  | Some f ->
    Hashx.string st f.fname;
    List.iter (Mreg.hash_loc st) f.fparams;
    Hashx.char st '|';
    Hashx.int st f.stacksize;
    Hashx.int st f.entry;
    IMap.iter
      (fun n i ->
        Hashx.int st n;
        Hashx.char st ':';
        hash_instr st i)
      f.code

let lang : (program, core) Lang.t =
  {
    name = "LTL";
    init_core;
    step;
    after_external;
    fingerprint_core;
    hash_core;
    hash_fundef;
    pp_core;
    globals_of = (fun p -> p.globals);
    defs_of =
      (fun p ->
        List.map (fun f -> (f.fname, List.length f.fparams)) p.funcs);
  }

let successors = function
  | Lnop n | Lop (_, _, n) | Lload (_, _, _, n) | Lstore (_, _, _, n)
  | Lcall (_, _, _, n) ->
    [ n ]
  | Lcond (_, n1, n2) -> [ n1; n2 ]
  | Ltailcall _ | Lreturn _ -> []
