(** Mach: Linear after the Stacking pass. Abstract spill slots are now
    concrete cells of the activation record (one memory block per
    activation: stack data at offsets [0, stacksize), spill slots at
    [stacksize, stacksize + nslots)), and the calling convention is fixed:
    arguments travel in [Mreg.arg_regs], results in [Mreg.res_reg]. *)

open Cas_base

type op = Mreg.t Mreg.gop
type label = int

type instr =
  | Mop of op * Mreg.t
  | Mload of Mreg.t * int * Mreg.t
  | Mstore of Mreg.t * int * Mreg.t  (** [addr+ofs] := src *)
  | Mgetstack of int * Mreg.t  (** reg := slot i *)
  | Msetstack of Mreg.t * int  (** slot i := reg *)
  | Mcall of string * int * bool  (** callee, arity, has-result *)
  | Mtailcall of string * int
  | Mlabel of label
  | Mgoto of label
  | Mcond of Mreg.t * label
  | Mreturn of bool  (** whether AX carries a result *)

type func = {
  fname : string;
  arity : int;
  stacksize : int;
  nslots : int;
  code : instr list;
}

type program = { funcs : func list; globals : Genv.gvar list }

let pp_instr ppf =
  let pp_r = Mreg.pp in
  function
  | Mop (op, d) -> Fmt.pf ppf "%a := %a" pp_r d (Mreg.pp_gop pp_r) op
  | Mload (d, ofs, r) -> Fmt.pf ppf "%a := [%a+%d]" pp_r d pp_r r ofs
  | Mstore (r, ofs, s) -> Fmt.pf ppf "[%a+%d] := %a" pp_r r ofs pp_r s
  | Mgetstack (i, r) -> Fmt.pf ppf "%a := slot(%d)" pp_r r i
  | Msetstack (r, i) -> Fmt.pf ppf "slot(%d) := %a" i pp_r r
  | Mcall (f, n, res) -> Fmt.pf ppf "call %s/%d%s" f n (if res then " ->ax" else "")
  | Mtailcall (f, n) -> Fmt.pf ppf "tailcall %s/%d" f n
  | Mlabel l -> Fmt.pf ppf "L%d:" l
  | Mgoto l -> Fmt.pf ppf "goto L%d" l
  | Mcond (r, l) -> Fmt.pf ppf "if %a goto L%d" pp_r r l
  | Mreturn res -> Fmt.pf ppf "return%s" (if res then " ax" else "")

let pp_func ppf f =
  Fmt.pf ppf "@[<v2>%s/%d [stack %d, slots %d]:@ %a@]" f.fname f.arity
    f.stacksize f.nslots
    Fmt.(list ~sep:cut pp_instr)
    f.code

type core = {
  fn : func;
  code : instr array;
  pc : int;
  regs : Value.t Mreg.Map.t;
  sp : int option;  (** frame block (stack data + spill area) *)
  need_frame : bool;
  waiting : bool option;  (** [Some has_result] while blocked at a call *)
  genv : Genv.t;
}

let pp_core ppf c =
  Fmt.pf ppf "{%s pc=%d sp=%a [%a]%s}" c.fn.fname c.pc
    Fmt.(option ~none:(any "-") int)
    c.sp
    Fmt.(
      list ~sep:comma (fun ppf (r, v) ->
          Fmt.pf ppf "%a=%a" Mreg.pp r Value.pp v))
    (Mreg.Map.bindings c.regs)
    (match c.waiting with None -> "" | Some _ -> " <waiting>")

let reg_val c r = Option.value ~default:Value.Vundef (Mreg.Map.find_opt r c.regs)
let frame_size f = f.stacksize + f.nslots

let find_label code l =
  let n = Array.length code in
  let rec go i =
    if i >= n then None
    else match code.(i) with Mlabel l' when l' = l -> Some i | _ -> go (i + 1)
  in
  go 0

let eval_op c op =
  Mreg.eval_gop op ~read:(reg_val c)
    ~glob:(fun s -> Option.map (fun a -> Value.Vptr a) (Genv.find_addr c.genv s))
    ~sp:(fun ofs ->
      match c.sp with
      | Some b -> Some (Value.Vptr (Addr.make b ofs))
      | None -> None)

let addr_plus v ofs =
  match v with
  | Value.Vptr a -> Some (Addr.make a.Addr.block (a.Addr.ofs + ofs))
  | _ -> None

let call_args c arity = List.filteri (fun i _ -> i < arity) Mreg.arg_regs |> List.map (reg_val c)

let step (fl : Flist.t) (c : core) (m : Memory.t) : core Lang.succ list =
  if c.waiting <> None then []
  else if c.need_frame then
    let m', b, fp =
      Memory.alloc m fl ~size:(frame_size c.fn) ~perm:Perm.Normal
    in
    [ Lang.Next (Msg.Tau, fp, { c with need_frame = false; sp = Some b }, m') ]
  else if c.pc < 0 || c.pc >= Array.length c.code then []
  else
    let tau ?(fp = Footprint.empty) ?m:(m' = m) ?regs pc =
      let regs = Option.value ~default:c.regs regs in
      [ Lang.Next (Msg.Tau, fp, { c with pc; regs }, m') ]
    in
    let slot_addr i =
      match c.sp with
      | Some b when i >= 0 && i < c.fn.nslots ->
        Some (Addr.make b (c.fn.stacksize + i))
      | _ -> None
    in
    match c.code.(c.pc) with
    | Mlabel _ -> tau (c.pc + 1)
    | Mgoto l -> (
      match find_label c.code l with
      | Some i -> tau i
      | None -> [ Lang.Stuck_abort ])
    | Mcond (r, l) ->
      if Value.is_true (reg_val c r) then
        match find_label c.code l with
        | Some i -> tau i
        | None -> [ Lang.Stuck_abort ]
      else tau (c.pc + 1)
    | Mop (op, d) -> (
      match eval_op c op with
      | Some v -> tau ~regs:(Mreg.Map.add d v c.regs) (c.pc + 1)
      | None -> [ Lang.Stuck_abort ])
    | Mload (d, ofs, r) -> (
      match addr_plus (reg_val c r) ofs with
      | Some a -> (
        match Memory.load m a with
        | Ok v ->
          tau ~fp:(Footprint.read1 a) ~regs:(Mreg.Map.add d v c.regs) (c.pc + 1)
        | Error _ -> [ Lang.Stuck_abort ])
      | None -> [ Lang.Stuck_abort ])
    | Mstore (r, ofs, s) -> (
      match addr_plus (reg_val c r) ofs with
      | Some a -> (
        match Memory.store m a (reg_val c s) with
        | Ok m' -> tau ~fp:(Footprint.write1 a) ~m:m' (c.pc + 1)
        | Error _ -> [ Lang.Stuck_abort ])
      | None -> [ Lang.Stuck_abort ])
    | Mgetstack (i, r) -> (
      match slot_addr i with
      | Some a -> (
        match Memory.load m a with
        | Ok v ->
          tau ~fp:(Footprint.read1 a) ~regs:(Mreg.Map.add r v c.regs) (c.pc + 1)
        | Error _ -> [ Lang.Stuck_abort ])
      | None -> [ Lang.Stuck_abort ])
    | Msetstack (r, i) -> (
      match slot_addr i with
      | Some a -> (
        match Memory.store m a (reg_val c r) with
        | Ok m' -> tau ~fp:(Footprint.write1 a) ~m:m' (c.pc + 1)
        | Error _ -> [ Lang.Stuck_abort ])
      | None -> [ Lang.Stuck_abort ])
    | Mcall (f, arity, has_res) ->
      [ Lang.Next
          ( Msg.Call (f, call_args c arity),
            Footprint.empty,
            { c with pc = c.pc + 1; waiting = Some has_res },
            m ) ]
    | Mtailcall (f, arity) ->
      [ Lang.Next (Msg.TailCall (f, call_args c arity), Footprint.empty, c, m) ]
    | Mreturn has_res ->
      let v = if has_res then reg_val c Mreg.res_reg else Value.Vundef in
      [ Lang.Next (Msg.Ret v, Footprint.empty, c, m) ]

let init_core ~genv (p : program) ~entry ~args : core option =
  match List.find_opt (fun f -> String.equal f.fname entry) p.funcs with
  | None -> None
  | Some f ->
    if List.length args <> f.arity || f.arity > List.length Mreg.arg_regs then
      None
    else
      let regs =
        List.fold_left2
          (fun regs r v -> Mreg.Map.add r v regs)
          Mreg.Map.empty
          (List.filteri (fun i _ -> i < f.arity) Mreg.arg_regs)
          args
      in
      Some
        {
          fn = f;
          code = Array.of_list f.code;
          pc = 0;
          regs;
          sp = None;
          need_frame = frame_size f > 0;
          waiting = None;
          genv;
        }

let after_external (c : core) (ret : Value.t option) : core option =
  match c.waiting with
  | None -> None
  | Some has_res ->
    let regs =
      if has_res then
        Mreg.Map.add Mreg.res_reg
          (Option.value ~default:(Value.Vint 0) ret)
          c.regs
      else c.regs
    in
    Some { c with regs; waiting = None }

let fingerprint_core c = Fmt.str "%a" pp_core c

(* Streamed state hash in [fingerprint_core]'s classes: printed fields
   only (the derived [code] array, [need_frame] and [genv] stay out,
   [waiting] contributes its outermost option). *)
let hash_instr st = function
  | Mop (op, d) ->
    Hashx.char st '1';
    Mreg.hash_gop Mreg.hash st op;
    Mreg.hash st d
  | Mload (d, ofs, r) ->
    Hashx.char st '2';
    Mreg.hash st d;
    Hashx.int st ofs;
    Mreg.hash st r
  | Mstore (r, ofs, s) ->
    Hashx.char st '3';
    Mreg.hash st r;
    Hashx.int st ofs;
    Mreg.hash st s
  | Mgetstack (i, r) ->
    Hashx.char st 'g';
    Hashx.int st i;
    Mreg.hash st r
  | Msetstack (r, i) ->
    Hashx.char st 's';
    Mreg.hash st r;
    Hashx.int st i
  | Mcall (f, arity, has_res) ->
    Hashx.char st '4';
    Hashx.string st f;
    Hashx.int st arity;
    Hashx.bool st has_res
  | Mtailcall (f, arity) ->
    Hashx.char st '5';
    Hashx.string st f;
    Hashx.int st arity
  | Mlabel l ->
    Hashx.char st 'L';
    Hashx.int st l
  | Mgoto l ->
    Hashx.char st 'G';
    Hashx.int st l
  | Mcond (r, l) ->
    Hashx.char st '6';
    Mreg.hash st r;
    Hashx.int st l
  | Mreturn has_res ->
    Hashx.char st '7';
    Hashx.bool st has_res

let hash_core st c =
  Hashx.string st c.fn.fname;
  Hashx.int st c.pc;
  (match c.sp with
  | None -> Hashx.char st '-'
  | Some b ->
    Hashx.char st '@';
    Hashx.int st b);
  Mreg.Map.iter
    (fun r v ->
      Mreg.hash st r;
      Hashx.char st '=';
      Hashx.int st (Value.hash v))
    c.regs;
  Hashx.bool st (c.waiting <> None)

let hash_fundef st (p : program) name =
  match List.find_opt (fun f -> String.equal f.fname name) p.funcs with
  | None -> ()
  | Some f ->
    Hashx.string st f.fname;
    Hashx.int st f.arity;
    Hashx.char st '|';
    Hashx.int st f.stacksize;
    Hashx.int st f.nslots;
    List.iter (hash_instr st) f.code

let lang : (program, core) Lang.t =
  {
    name = "Mach";
    init_core;
    step;
    after_external;
    fingerprint_core;
    hash_core;
    hash_fundef;
    pp_core;
    globals_of = (fun p -> p.globals);
    defs_of = (fun p -> List.map (fun f -> (f.fname, f.arity)) p.funcs);
  }
