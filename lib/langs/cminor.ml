(** Cminor (and CminorSel): per-function stack frames. The per-variable
    blocks of C#minor are collapsed into a single stack block per
    activation, addressed by [Eaddr_stack] offsets (the Cminorgen pass).

    The operator-selected dialect CminorSel of Fig. 11 is folded into the
    same syntax: [Ebinop_imm] is the machine-friendly immediate form the
    Selection pass introduces. A plain Cminor program simply does not use
    it. *)

open Cas_base

module SMap = Map.Make (String)

type expr =
  | Econst of int
  | Etemp of string
  | Eaddr_global of string
  | Eaddr_stack of int  (** sp + ofs within this activation's frame *)
  | Eload of expr
  | Ebinop of Ops.binop * expr * expr
  | Ebinop_imm of Ops.binop * expr * int  (** CminorSel selected form *)
  | Eunop of Ops.unop * expr

type stmt =
  | Sskip
  | Sset of string * expr
  | Sstore of expr * expr
  | Scall of string option * string * expr list
  | Sseq of stmt * stmt
  | Sif of expr * stmt * stmt
  | Swhile of expr * stmt
  | Sreturn of expr option

type func = {
  fname : string;
  fparams : string list;
  stacksize : int;  (** frame cells; 0 means no frame block is allocated *)
  fbody : stmt;
}

type program = { funcs : func list; globals : Genv.gvar list }

let rec pp_expr ppf = function
  | Econst n -> Fmt.int ppf n
  | Etemp x -> Fmt.string ppf x
  | Eaddr_global x -> Fmt.pf ppf "&&%s" x
  | Eaddr_stack ofs -> Fmt.pf ppf "sp+%d" ofs
  | Eload e -> Fmt.pf ppf "[%a]" pp_expr e
  | Ebinop (op, a, b) ->
    Fmt.pf ppf "(%a %a %a)" pp_expr a Ops.pp_binop op pp_expr b
  | Ebinop_imm (op, a, n) ->
    Fmt.pf ppf "(%a %a# %d)" pp_expr a Ops.pp_binop op n
  | Eunop (op, a) -> Fmt.pf ppf "(%a%a)" Ops.pp_unop op pp_expr a

let rec pp_stmt ppf = function
  | Sskip -> Fmt.string ppf "skip"
  | Sset (x, e) -> Fmt.pf ppf "%s = %a" x pp_expr e
  | Sstore (e1, e2) -> Fmt.pf ppf "[%a] = %a" pp_expr e1 pp_expr e2
  | Scall (None, f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args
  | Scall (Some x, f, args) ->
    Fmt.pf ppf "%s = %s(%a)" x f Fmt.(list ~sep:comma pp_expr) args
  | Sseq (a, b) -> Fmt.pf ppf "%a; %a" pp_stmt a pp_stmt b
  | Sif (e, a, b) ->
    Fmt.pf ppf "if (%a) {%a} else {%a}" pp_expr e pp_stmt a pp_stmt b
  | Swhile (e, s) -> Fmt.pf ppf "while (%a) {%a}" pp_expr e pp_stmt s
  | Sreturn None -> Fmt.string ppf "return"
  | Sreturn (Some e) -> Fmt.pf ppf "return %a" pp_expr e

type kont = Kstop | Kseq of stmt * kont | Kwhile of expr * stmt * kont

type core = {
  fn : func;
  sp : int option;  (** stack block, once allocated *)
  temps : Value.t SMap.t;
  need_frame : bool;
  cur : stmt;
  k : kont;
  waiting : string option option;
  genv : Genv.t;
}

let rec pp_kont ppf = function
  | Kstop -> Fmt.string ppf "."
  | Kseq (s, k) -> Fmt.pf ppf "%a;; %a" pp_stmt s pp_kont k
  | Kwhile (e, s, k) ->
    Fmt.pf ppf "loop(%a,%a);; %a" pp_expr e pp_stmt s pp_kont k

let pp_core ppf c =
  Fmt.pf ppf "{%s sp=%a [%a] %a | %a%s}" c.fn.fname
    Fmt.(option ~none:(any "-") int)
    c.sp
    Fmt.(list ~sep:comma (fun ppf (x, v) -> Fmt.pf ppf "%s=%a" x Value.pp v))
    (SMap.bindings c.temps) pp_stmt c.cur pp_kont c.k
    (match c.waiting with None -> "" | Some _ -> " <waiting>")

exception Fault

let eval c m e : Value.t * Footprint.t =
  let fp = ref Footprint.empty in
  let rec go = function
    | Econst n -> Value.Vint n
    | Etemp x -> Option.value ~default:Value.Vundef (SMap.find_opt x c.temps)
    | Eaddr_global x -> (
      match Genv.find_addr c.genv x with
      | Some a -> Value.Vptr a
      | None -> raise Fault)
    | Eaddr_stack ofs -> (
      match c.sp with
      | Some b -> Value.Vptr (Addr.make b ofs)
      | None -> raise Fault)
    | Eload e -> (
      match go e with
      | Value.Vptr a -> (
        match Memory.load m a with
        | Ok v ->
          fp := Footprint.union !fp (Footprint.read1 a);
          v
        | Error _ -> raise Fault)
      | _ -> raise Fault)
    | Ebinop (op, a, b) ->
      let va = go a in
      let vb = go b in
      Ops.eval_binop op va vb
    | Ebinop_imm (op, a, n) -> Ops.eval_binop op (go a) (Value.Vint n)
    | Eunop (op, a) -> Ops.eval_unop op (go a)
  in
  let v = go e in
  (v, !fp)

let step (fl : Flist.t) (c : core) (m : Memory.t) : core Lang.succ list =
  if c.waiting <> None then []
  else if c.need_frame then
    let m', b, fp = Memory.alloc m fl ~size:c.fn.stacksize ~perm:Perm.Normal in
    [ Lang.Next (Msg.Tau, fp, { c with need_frame = false; sp = Some b }, m') ]
  else
    let tau ?(fp = Footprint.empty) ?m:(m' = m) cur k temps =
      [ Lang.Next (Msg.Tau, fp, { c with cur; k; temps }, m') ]
    in
    try
      match (c.cur, c.k) with
      | Sskip, Kstop ->
        [ Lang.Next (Msg.Ret Value.Vundef, Footprint.empty, c, m) ]
      | Sskip, Kseq (s, k) -> tau s k c.temps
      | Sskip, Kwhile (e, s, k) -> tau (Swhile (e, s)) k c.temps
      | Sset (x, e), k ->
        let v, fp = eval c m e in
        tau ~fp Sskip k (SMap.add x v c.temps)
      | Sstore (e1, e2), k -> (
        let va, fp1 = eval c m e1 in
        let v, fp2 = eval c m e2 in
        match va with
        | Value.Vptr a -> (
          match Memory.store m a v with
          | Ok m' ->
            let fp =
              Footprint.union (Footprint.union fp1 fp2) (Footprint.write1 a)
            in
            tau ~fp ~m:m' Sskip k c.temps
          | Error _ -> [ Lang.Stuck_abort ])
        | _ -> [ Lang.Stuck_abort ])
      | Scall (dst, f, args), k ->
        let vs, fps =
          List.fold_left
            (fun (vs, fps) e ->
              let v, fp = eval c m e in
              (v :: vs, Footprint.union fps fp))
            ([], Footprint.empty) args
        in
        [ Lang.Next
            ( Msg.Call (f, List.rev vs),
              fps,
              { c with cur = Sskip; k; waiting = Some dst },
              m ) ]
      | Sseq (a, b), k -> tau a (Kseq (b, k)) c.temps
      | Sif (e, a, b), k ->
        let v, fp = eval c m e in
        if Value.is_true v then tau ~fp a k c.temps else tau ~fp b k c.temps
      | Swhile (e, s), k ->
        let v, fp = eval c m e in
        if Value.is_true v then tau ~fp s (Kwhile (e, s, k)) c.temps
        else tau ~fp Sskip k c.temps
      | Sreturn eo, _ ->
        let v, fp =
          match eo with
          | None -> (Value.Vundef, Footprint.empty)
          | Some e -> eval c m e
        in
        [ Lang.Next (Msg.Ret v, fp, c, m) ]
    with Fault -> [ Lang.Stuck_abort ]

let init_core ~genv (p : program) ~entry ~args : core option =
  match List.find_opt (fun f -> String.equal f.fname entry) p.funcs with
  | None -> None
  | Some f ->
    if List.length f.fparams <> List.length args then None
    else
      let temps =
        List.fold_left2
          (fun env x v -> SMap.add x v env)
          SMap.empty f.fparams args
      in
      Some
        {
          fn = f;
          sp = None;
          temps;
          need_frame = f.stacksize > 0;
          cur = f.fbody;
          k = Kstop;
          waiting = None;
          genv;
        }

let after_external (c : core) (ret : Value.t option) : core option =
  match c.waiting with
  | None -> None
  | Some dst ->
    let temps =
      match dst with
      | None -> c.temps
      | Some x -> SMap.add x (Option.value ~default:(Value.Vint 0) ret) c.temps
    in
    Some { c with temps; waiting = None }

let fingerprint_core c = Fmt.str "%a" pp_core c

(* Streamed state hash in [fingerprint_core]'s classes: printed fields
   only ([need_frame]/[genv] stay out, [waiting] contributes its
   outermost option). One tag char per constructor keeps the token
   stream injective on the syntax without building the string. *)
let rec hash_expr st = function
  | Econst n ->
    Hashx.char st 'c';
    Hashx.int st n
  | Etemp x ->
    Hashx.char st 't';
    Hashx.string st x
  | Eaddr_global x ->
    Hashx.char st 'g';
    Hashx.string st x
  | Eaddr_stack ofs ->
    Hashx.char st 's';
    Hashx.int st ofs
  | Eload e ->
    Hashx.char st '*';
    hash_expr st e
  | Ebinop (op, a, b) ->
    Hashx.char st 'b';
    Hashx.int st (Hashtbl.hash op);
    hash_expr st a;
    hash_expr st b
  | Ebinop_imm (op, a, n) ->
    Hashx.char st 'i';
    Hashx.int st (Hashtbl.hash op);
    hash_expr st a;
    Hashx.int st n
  | Eunop (op, a) ->
    Hashx.char st 'u';
    Hashx.int st (Hashtbl.hash op);
    hash_expr st a

let rec hash_stmt st = function
  | Sskip -> Hashx.char st '0'
  | Sset (x, e) ->
    Hashx.char st '1';
    Hashx.string st x;
    hash_expr st e
  | Sstore (e1, e2) ->
    Hashx.char st '2';
    hash_expr st e1;
    hash_expr st e2
  | Scall (dst, f, args) ->
    Hashx.char st '3';
    (match dst with
    | None -> Hashx.char st '-'
    | Some x ->
      Hashx.char st '=';
      Hashx.string st x);
    Hashx.string st f;
    List.iter (hash_expr st) args
  | Sseq (a, b) ->
    Hashx.char st '4';
    hash_stmt st a;
    hash_stmt st b
  | Sif (e, a, b) ->
    Hashx.char st '5';
    hash_expr st e;
    hash_stmt st a;
    hash_stmt st b
  | Swhile (e, s) ->
    Hashx.char st '6';
    hash_expr st e;
    hash_stmt st s
  | Sreturn None -> Hashx.char st '7'
  | Sreturn (Some e) ->
    Hashx.char st 'R';
    hash_expr st e

let rec hash_kont st = function
  | Kstop -> Hashx.char st '.'
  | Kseq (s, k) ->
    Hashx.char st 'S';
    hash_stmt st s;
    hash_kont st k
  | Kwhile (e, s, k) ->
    Hashx.char st 'W';
    hash_expr st e;
    hash_stmt st s;
    hash_kont st k

let hash_core st c =
  Hashx.string st c.fn.fname;
  (match c.sp with
  | None -> Hashx.char st '-'
  | Some b ->
    Hashx.char st '@';
    Hashx.int st b);
  SMap.iter
    (fun x v ->
      Hashx.string st x;
      Hashx.char st '=';
      Hashx.int st (Value.hash v))
    c.temps;
  Hashx.char st '|';
  hash_stmt st c.cur;
  Hashx.char st '|';
  hash_kont st c.k;
  Hashx.bool st (c.waiting <> None)

let hash_fundef st (p : program) name =
  match List.find_opt (fun f -> String.equal f.fname name) p.funcs with
  | None -> ()
  | Some f ->
    Hashx.string st f.fname;
    List.iter
      (fun x ->
        Hashx.char st ',';
        Hashx.string st x)
      f.fparams;
    Hashx.char st '|';
    Hashx.int st f.stacksize;
    hash_stmt st f.fbody

let lang : (program, core) Lang.t =
  {
    name = "Cminor";
    init_core;
    step;
    after_external;
    fingerprint_core;
    hash_core;
    hash_fundef;
    pp_core;
    globals_of = (fun p -> p.globals);
    defs_of =
      (fun p ->
        List.map (fun f -> (f.fname, List.length f.fparams)) p.funcs);
  }

(** The CminorSel instantiation: identical semantics, distinct language
    name so simulation reports distinguish the pipeline stages. *)
let sel_lang : (program, core) Lang.t = { lang with name = "CminorSel" }
