(** CImp: the simple imperative language used for source-level object
    (synchronization library) code (§7.1, Fig. 10(a)).

    Distinctive features:
    - atomic blocks ⟨C⟩, which emit [EntAtom]/[ExtAtom] messages so the
      global semantics disables preemption inside them;
    - [assert(B)], which aborts on falsity;
    - explicit loads [r := [e]] and stores [[e] := e'] — local variables
      are pure registers and never touch memory.

    Per §7.1, CImp may only access memory with the [Object] permission:
    object data is invisible to clients and vice versa, which is what
    confines the benign races of the optimized x86-TSO implementation. *)

open Cas_base

module SMap = Map.Make (String)

type expr =
  | Eint of int
  | Evar of string  (** register read *)
  | Eglob of string  (** address of a global, e.g. [L] *)
  | Ebinop of Ops.binop * expr * expr
  | Eunop of Ops.unop * expr

type stmt =
  | Sskip
  | Sassign of string * expr  (** r := e *)
  | Sload of string * expr  (** r := [e] *)
  | Sstore of expr * expr  (** [e1] := e2 *)
  | Sseq of stmt * stmt
  | Sif of expr * stmt * stmt
  | Swhile of expr * stmt
  | Satomic of stmt  (** ⟨s⟩ *)
  | Sassert of expr
  | Sprint of expr  (** print(e) — the built-in observable output *)
  | Sreturn of expr option

type func = { fname : string; fparams : string list; fbody : stmt }
type program = { funcs : func list; globals : Genv.gvar list }

(* ------------------------------------------------------------------ *)
(* Pretty printing (also used for core fingerprints)                   *)
(* ------------------------------------------------------------------ *)

let rec pp_expr ppf = function
  | Eint n -> Fmt.int ppf n
  | Evar x -> Fmt.string ppf x
  | Eglob g -> Fmt.pf ppf "%s" g
  | Ebinop (op, a, b) ->
    Fmt.pf ppf "(%a %a %a)" pp_expr a Ops.pp_binop op pp_expr b
  | Eunop (op, a) -> Fmt.pf ppf "(%a%a)" Ops.pp_unop op pp_expr a

let rec pp_stmt ppf = function
  | Sskip -> Fmt.string ppf "skip"
  | Sassign (x, e) -> Fmt.pf ppf "%s := %a" x pp_expr e
  | Sload (x, e) -> Fmt.pf ppf "%s := [%a]" x pp_expr e
  | Sstore (e1, e2) -> Fmt.pf ppf "[%a] := %a" pp_expr e1 pp_expr e2
  | Sseq (a, b) -> Fmt.pf ppf "%a; %a" pp_stmt a pp_stmt b
  | Sif (e, a, b) ->
    Fmt.pf ppf "if (%a) {%a} else {%a}" pp_expr e pp_stmt a pp_stmt b
  | Swhile (e, s) -> Fmt.pf ppf "while (%a) {%a}" pp_expr e pp_stmt s
  | Satomic s -> Fmt.pf ppf "<%a>" pp_stmt s
  | Sassert e -> Fmt.pf ppf "assert(%a)" pp_expr e
  | Sprint e -> Fmt.pf ppf "print(%a)" pp_expr e
  | Sreturn None -> Fmt.string ppf "return"
  | Sreturn (Some e) -> Fmt.pf ppf "return %a" pp_expr e

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

type kont =
  | Kstop
  | Kseq of stmt * kont
  | Kwhile of expr * stmt * kont
  | Kendatom of kont  (** pending [ExtAtom] *)

type core = {
  env : Value.t SMap.t;
  cur : stmt;
  k : kont;
  genv : Genv.t;
}

let rec pp_kont ppf = function
  | Kstop -> Fmt.string ppf "."
  | Kseq (s, k) -> Fmt.pf ppf "%a; %a" pp_stmt s pp_kont k
  | Kwhile (e, s, k) -> Fmt.pf ppf "loop(%a,%a); %a" pp_expr e pp_stmt s pp_kont k
  | Kendatom k -> Fmt.pf ppf ">; %a" pp_kont k

let pp_core ppf c =
  Fmt.pf ppf "{%a | %a | %a}"
    Fmt.(
      list ~sep:comma (fun ppf (x, v) -> Fmt.pf ppf "%s=%a" x Value.pp v))
    (SMap.bindings c.env) pp_stmt c.cur pp_kont c.k

(** Expression evaluation is pure: registers and global addresses only.
    All memory access goes through Sload/Sstore. *)
let rec eval genv env = function
  | Eint n -> Value.Vint n
  | Evar x -> Option.value ~default:Value.Vundef (SMap.find_opt x env)
  | Eglob g -> (
    match Genv.find_addr genv g with Some a -> Value.Vptr a | None -> Value.Vundef)
  | Ebinop (op, a, b) -> Ops.eval_binop op (eval genv env a) (eval genv env b)
  | Eunop (op, a) -> Ops.eval_unop op (eval genv env a)

let step (_fl : Flist.t) (c : core) (m : Memory.t) : core Lang.succ list =
  let tau ?(fp = Footprint.empty) cur k env =
    [ Lang.Next (Msg.Tau, fp, { c with cur; k; env }, m) ]
  in
  match (c.cur, c.k) with
  | Sskip, Kstop -> [ Lang.Next (Msg.Ret Value.Vundef, Footprint.empty, c, m) ]
  | Sskip, Kseq (s, k) -> tau s k c.env
  | Sskip, Kwhile (e, s, k) -> tau (Swhile (e, s)) k c.env
  | Sskip, Kendatom k ->
    [ Lang.Next (Msg.ExtAtom, Footprint.empty, { c with cur = Sskip; k }, m) ]
  | Sassign (x, e), k ->
    let v = eval c.genv c.env e in
    tau Sskip k (SMap.add x v c.env)
  | Sload (x, e), k -> (
    match eval c.genv c.env e with
    | Value.Vptr a -> (
      match Memory.load ~perm:Perm.Object m a with
      | Ok v ->
        tau ~fp:(Footprint.read1 a) Sskip k (SMap.add x v c.env)
      | Error _ -> [ Lang.Stuck_abort ])
    | _ -> [ Lang.Stuck_abort ])
  | Sstore (e1, e2), k -> (
    match eval c.genv c.env e1 with
    | Value.Vptr a -> (
      let v = eval c.genv c.env e2 in
      match Memory.store ~perm:Perm.Object m a v with
      | Ok m' ->
        [ Lang.Next
            (Msg.Tau, Footprint.write1 a, { c with cur = Sskip; k }, m') ]
      | Error _ -> [ Lang.Stuck_abort ])
    | _ -> [ Lang.Stuck_abort ])
  | Sseq (a, b), k -> tau a (Kseq (b, k)) c.env
  | Sif (e, a, b), k ->
    if Value.is_true (eval c.genv c.env e) then tau a k c.env else tau b k c.env
  | Swhile (e, s), k ->
    if Value.is_true (eval c.genv c.env e) then tau s (Kwhile (e, s, k)) c.env
    else tau Sskip k c.env
  | Satomic s, k ->
    [ Lang.Next
        (Msg.EntAtom, Footprint.empty, { c with cur = s; k = Kendatom k }, m) ]
  | Sassert e, k ->
    if Value.is_true (eval c.genv c.env e) then tau Sskip k c.env
    else [ Lang.Stuck_abort ]
  | Sprint e, k ->
    (* The world semantics handles [Call ("print", [Vint n])] itself and
       fires the [Print] event; [after_external] below resumes at the
       already-installed [Sskip]. A non-integer argument falls through
       to call resolution and aborts, like Clight's print. *)
    let v = eval c.genv c.env e in
    [ Lang.Next
        (Msg.Call ("print", [ v ]), Footprint.empty, { c with cur = Sskip; k }, m)
    ]
  | Sreturn eo, _ ->
    (* Returns are only legal outside atomic blocks; inside one, the
       program is stuck (= abort). *)
    let rec inside_atom = function
      | Kendatom _ -> true
      | Kseq (_, k) | Kwhile (_, _, k) -> inside_atom k
      | Kstop -> false
    in
    if inside_atom c.k then [ Lang.Stuck_abort ]
    else
      let v =
        match eo with None -> Value.Vundef | Some e -> eval c.genv c.env e
      in
      [ Lang.Next (Msg.Ret v, Footprint.empty, c, m) ]

let init_core ~genv (p : program) ~entry ~args : core option =
  match List.find_opt (fun f -> String.equal f.fname entry) p.funcs with
  | None -> None
  | Some f ->
    if List.length f.fparams <> List.length args then None
    else
      let env =
        List.fold_left2
          (fun env x v -> SMap.add x v env)
          SMap.empty f.fparams args
      in
      Some { env; cur = f.fbody; k = Kstop; genv }

let fingerprint_core c = Fmt.str "%a" pp_core c

(* Stream the same state [pp_core] prints — tagged per constructor so the
   stream is injective on the syntax — without building the string. CImp
   cores are rehashed on every object-code step of the exploration
   engines, so this is hot. *)
let rec hash_expr st = function
  | Eint n ->
    Hashx.char st 'i';
    Hashx.int st n
  | Evar x ->
    Hashx.char st 'v';
    Hashx.string st x
  | Eglob g ->
    Hashx.char st 'g';
    Hashx.string st g
  | Ebinop (op, a, b) ->
    Hashx.char st 'b';
    Hashx.int st (Hashtbl.hash op);
    hash_expr st a;
    hash_expr st b
  | Eunop (op, a) ->
    Hashx.char st 'u';
    Hashx.int st (Hashtbl.hash op);
    hash_expr st a

let rec hash_stmt st = function
  | Sskip -> Hashx.char st '0'
  | Sassign (x, e) ->
    Hashx.char st '1';
    Hashx.string st x;
    hash_expr st e
  | Sload (x, e) ->
    Hashx.char st '2';
    Hashx.string st x;
    hash_expr st e
  | Sstore (e1, e2) ->
    Hashx.char st '3';
    hash_expr st e1;
    hash_expr st e2
  | Sseq (a, b) ->
    Hashx.char st '4';
    hash_stmt st a;
    hash_stmt st b
  | Sif (e, a, b) ->
    Hashx.char st '5';
    hash_expr st e;
    hash_stmt st a;
    hash_stmt st b
  | Swhile (e, s) ->
    Hashx.char st '6';
    hash_expr st e;
    hash_stmt st s
  | Satomic s ->
    Hashx.char st '7';
    hash_stmt st s
  | Sassert e ->
    Hashx.char st '8';
    hash_expr st e
  | Sprint e ->
    Hashx.char st 'P';
    hash_expr st e
  | Sreturn None -> Hashx.char st '9'
  | Sreturn (Some e) ->
    Hashx.char st 'R';
    hash_expr st e

let rec hash_kont st = function
  | Kstop -> Hashx.char st '.'
  | Kseq (s, k) ->
    Hashx.char st 'S';
    hash_stmt st s;
    hash_kont st k
  | Kwhile (e, s, k) ->
    Hashx.char st 'W';
    hash_expr st e;
    hash_stmt st s;
    hash_kont st k
  | Kendatom k ->
    Hashx.char st '>';
    hash_kont st k

let hash_core st c =
  SMap.iter
    (fun x v ->
      Hashx.string st x;
      Hashx.char st '=';
      Hashx.int st (Value.hash v))
    c.env;
  Hashx.char st '|';
  hash_stmt st c.cur;
  Hashx.char st '|';
  hash_kont st c.k

let hash_fundef st (p : program) name =
  match List.find_opt (fun f -> String.equal f.fname name) p.funcs with
  | None -> ()
  | Some f ->
    Hashx.string st f.fname;
    List.iter
      (fun x ->
        Hashx.char st ',';
        Hashx.string st x)
      f.fparams;
    Hashx.char st '|';
    hash_stmt st f.fbody

let lang : (program, core) Lang.t =
  {
    name = "CImp";
    init_core;
    step;
    after_external =
      (* CImp makes no cross-module calls, so the only external to resume
         from is the built-in [print] (ret = None); [step] has already
         installed the continuation core. *)
      (fun c ret -> match ret with None -> Some c | Some _ -> None);
    fingerprint_core;
    hash_core;
    hash_fundef;
    pp_core;
    globals_of = (fun p -> p.globals);
    defs_of =
      (fun p ->
        List.map (fun f -> (f.fname, List.length f.fparams)) p.funcs);
  }

(* ------------------------------------------------------------------ *)
(* The abstract lock specification γ_lock of Fig. 10(a)                *)
(* ------------------------------------------------------------------ *)

(** [gamma_lock ~lock_var] is the CImp module implementing the abstract
    lock specification over global [lock_var] (initially 1 = free). *)
let gamma_lock ?(lock_var = "L") () : program =
  let l = Eglob lock_var in
  {
    globals = [ Genv.gvar ~perm:Perm.Object ~init:[ Genv.Iint 1 ] lock_var 1 ];
    funcs =
      [
        {
          fname = "lock";
          fparams = [];
          fbody =
            Sseq
              ( Sassign ("r", Eint 0),
                Sseq
                  ( Swhile
                      ( Ebinop (Ops.Oeq, Evar "r", Eint 0),
                        Satomic
                          (Sseq (Sload ("r", l), Sstore (l, Eint 0))) ),
                    Sreturn None ) );
        };
        {
          fname = "unlock";
          fparams = [];
          fbody =
            Sseq
              ( Satomic
                  (Sseq
                     ( Sload ("r", l),
                       Sseq
                         ( Sassert (Ebinop (Ops.Oeq, Evar "r", Eint 0)),
                           Sstore (l, Eint 1) ) )),
                Sreturn None );
        };
      ];
  }
