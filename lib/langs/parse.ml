(** Recursive-descent parsers for the two source-level languages:

    - [clight]: a mini-C surface syntax for client modules. All declared
      locals parse as stack variables; the SimplLocals pass then promotes
      the never-address-taken ones to temporaries, as in CompCert.
    - [cimp]: the object language, with [atomic { ... }] blocks,
      [assert(e)], explicit loads [[e]] and stores [[e] := e]. Globals
      declared [object int x;] carry the Object permission.

    Example mini-C module:
    {[
      int x = 0;
      void inc() {
        int tmp;
        lock();
        tmp = x;
        x = x + 1;
        unlock();
        print(tmp);
      }
    ]} *)

open Cas_base
module L = Lexer

exception Error = Lexer.Error

(* ------------------------------------------------------------------ *)
(* Shared expression-parsing machinery (precedence climbing)           *)
(* ------------------------------------------------------------------ *)

(* binary operator table: (token, op, precedence); higher binds tighter *)
let binops =
  [
    ("||", Ops.Oor, 1);
    (* logical or/and are modelled bitwise on 0/1 operands *)
    ("&&", Ops.Oand, 2);
    ("|", Ops.Oor, 3);
    ("^", Ops.Oxor, 4);
    ("&", Ops.Oand, 5);
    ("==", Ops.Oeq, 6);
    ("!=", Ops.One, 6);
    ("<", Ops.Olt, 7);
    ("<=", Ops.Ole, 7);
    (">", Ops.Ogt, 7);
    (">=", Ops.Oge, 7);
    ("<<", Ops.Oshl, 8);
    (">>", Ops.Oshr, 8);
    ("+", Ops.Oadd, 9);
    ("-", Ops.Osub, 9);
    ("*", Ops.Omul, 10);
    ("/", Ops.Odiv, 10);
    ("%", Ops.Omod, 10);
  ]

let peek_binop lx =
  match L.peek lx with
  | L.PUNCT s, _ -> List.find_opt (fun (t, _, _) -> t = s) binops
  | _ -> None

(* generic precedence climber over an abstract expression algebra *)
type 'e alg = {
  mk_binop : Ops.binop -> 'e -> 'e -> 'e;
  mk_unop : Ops.unop -> 'e -> 'e;
  parse_atom : L.t -> 'e;
}

let rec parse_unary alg lx : 'e =
  match L.peek lx with
  | L.PUNCT "-", _ ->
    ignore (L.next lx);
    alg.mk_unop Ops.Oneg (parse_unary alg lx)
  | L.PUNCT "!", _ ->
    ignore (L.next lx);
    alg.mk_unop Ops.Olognot (parse_unary alg lx)
  | L.PUNCT "~", _ ->
    ignore (L.next lx);
    alg.mk_unop Ops.Onot (parse_unary alg lx)
  | _ -> alg.parse_atom lx

let parse_expr_prec alg lx : 'e =
  let rec climb min_prec lhs =
    match peek_binop lx with
    | Some (_, op, prec) when prec >= min_prec ->
      ignore (L.next lx);
      let rhs = parse_unary alg lx in
      (* left-associative: climb the rhs with higher precedence *)
      let rhs = climb_rhs (prec + 1) rhs in
      climb min_prec (alg.mk_binop op lhs rhs)
    | _ -> lhs
  and climb_rhs min_prec rhs =
    match peek_binop lx with
    | Some (_, op, prec) when prec >= min_prec ->
      ignore (L.next lx);
      let rhs2 = parse_unary alg lx in
      let rhs2 = climb_rhs (prec + 1) rhs2 in
      climb_rhs min_prec (alg.mk_binop op rhs rhs2)
    | _ -> rhs
  in
  let lhs = parse_unary alg lx in
  climb 1 lhs

(* ------------------------------------------------------------------ *)
(* Mini-C (Clight)                                                     *)
(* ------------------------------------------------------------------ *)

module Mini_c = struct
  type ctx = {
    params : string list;
    locals : string list;  (** declared locals (stack vars at parse time) *)
  }

  let classify ctx x : Clight.expr =
    if List.mem x ctx.params then Clight.Etemp x
    else if List.mem x ctx.locals then Clight.Evar x
    else Clight.Eglob x

  let rec alg ctx : Clight.expr alg =
    {
      mk_binop = (fun op a b -> Clight.Ebinop (op, a, b));
      mk_unop = (fun op a -> Clight.Eunop (op, a));
      parse_atom = (fun lx -> atom ctx lx);
    }

  and atom ctx lx : Clight.expr =
    match L.next lx with
    | L.INT n, _ -> Clight.Econst n
    | L.PUNCT "(", _ ->
      let e = parse_expr_prec (alg ctx) lx in
      L.expect_punct lx ")";
      e
    | L.PUNCT "*", _ -> Clight.Ederef (parse_unary (alg ctx) lx)
    | L.PUNCT "&", _ ->
      let x = L.expect_ident lx in
      Clight.Eaddrof x
    | L.IDENT x, _ -> (
      (* array indexing sugar: a[e] = *(a_addr + e) *)
      match L.peek lx with
      | L.PUNCT "[", _ ->
        ignore (L.next lx);
        let idx = parse_expr_prec (alg ctx) lx in
        L.expect_punct lx "]";
        Clight.Ederef (Clight.Ebinop (Ops.Oadd, Clight.Eaddrof x, idx))
      | _ -> classify ctx x)
    | t, p ->
      raise (Error (Fmt.str "unexpected %a in expression" L.pp_token t, p))

  let parse_expr ctx lx = parse_expr_prec (alg ctx) lx

  let rec parse_block ctx lx : Clight.stmt =
    L.expect_punct lx "{";
    let s = parse_stmts ctx lx in
    L.expect_punct lx "}";
    s

  and parse_stmts ctx lx : Clight.stmt =
    match L.peek lx with
    | L.PUNCT "}", _ -> Clight.Sskip
    | _ ->
      let s = parse_stmt ctx lx in
      let rest = parse_stmts ctx lx in
      if rest = Clight.Sskip then s else Clight.Sseq (s, rest)

  and parse_stmt ctx lx : Clight.stmt =
    match L.peek lx with
    | L.KW "if", _ ->
      ignore (L.next lx);
      L.expect_punct lx "(";
      let e = parse_expr ctx lx in
      L.expect_punct lx ")";
      let s1 = parse_block ctx lx in
      let s2 =
        match L.peek lx with
        | L.KW "else", _ ->
          ignore (L.next lx);
          parse_block ctx lx
        | _ -> Clight.Sskip
      in
      Clight.Sif (e, s1, s2)
    | L.KW "while", _ ->
      ignore (L.next lx);
      L.expect_punct lx "(";
      let e = parse_expr ctx lx in
      L.expect_punct lx ")";
      Clight.Swhile (e, parse_block ctx lx)
    | L.KW "return", _ -> (
      ignore (L.next lx);
      if L.accept_punct lx ";" then Clight.Sreturn None
      else
        match L.peek lx with
        | L.IDENT f, _ when is_call lx ->
          (* return f(args); — sugar that the Tailcall pass recognizes *)
          ignore (L.next lx);
          L.expect_punct lx "(";
          let args = parse_args ctx lx in
          L.expect_punct lx ";";
          Clight.Sseq
            ( Clight.Scall (Some "$ret", f, args),
              Clight.Sreturn (Some (Clight.Etemp "$ret")) )
        | _ ->
          let e = parse_expr ctx lx in
          L.expect_punct lx ";";
          Clight.Sreturn (Some e))
    | L.PUNCT "{", _ -> parse_block ctx lx
    | L.PUNCT "*", _ ->
      ignore (L.next lx);
      let addr = parse_unary (alg ctx) lx in
      L.expect_punct lx "=";
      let e = parse_expr ctx lx in
      L.expect_punct lx ";";
      Clight.Sassign (Clight.Lderef addr, e)
    | L.IDENT x, _ -> (
      ignore (L.next lx);
      match L.peek lx with
      | L.PUNCT "(", _ ->
        ignore (L.next lx);
        let args = parse_args ctx lx in
        L.expect_punct lx ";";
        Clight.Scall (None, x, args)
      | L.PUNCT "[", _ ->
        (* a[e] = e'; *)
        ignore (L.next lx);
        let idx = parse_expr ctx lx in
        L.expect_punct lx "]";
        L.expect_punct lx "=";
        let e = parse_expr ctx lx in
        L.expect_punct lx ";";
        Clight.Sassign
          ( Clight.Lderef (Clight.Ebinop (Ops.Oadd, Clight.Eaddrof x, idx)),
            e )
      | L.PUNCT "=", _ -> (
        ignore (L.next lx);
        (* call-with-result or plain assignment *)
        match L.peek lx with
        | L.IDENT f, _ when is_call lx ->
          ignore (L.next lx);
          L.expect_punct lx "(";
          let args = parse_args ctx lx in
          L.expect_punct lx ";";
          (* results always land in temps/params or locals *)
          if List.mem x ctx.params then Clight.Scall (Some x, f, args)
          else if List.mem x ctx.locals then
            (* store the call result into the stack var via a temp *)
            Clight.Sseq
              ( Clight.Scall (Some ("$" ^ x), f, args),
                Clight.Sassign (Clight.Lvar x, Clight.Etemp ("$" ^ x)) )
          else
            Clight.Sseq
              ( Clight.Scall (Some ("$" ^ x), f, args),
                Clight.Sassign (Clight.Lglob x, Clight.Etemp ("$" ^ x)) )
        | _ ->
          let e = parse_expr ctx lx in
          L.expect_punct lx ";";
          if List.mem x ctx.params then Clight.Sset (x, e)
          else if List.mem x ctx.locals then Clight.Sassign (Clight.Lvar x, e)
          else Clight.Sassign (Clight.Lglob x, e))
      | t, p ->
        raise (Error (Fmt.str "unexpected %a after identifier" L.pp_token t, p))
      )
    | t, p -> raise (Error (Fmt.str "unexpected %a in statement" L.pp_token t, p))

  and is_call lx =
    (* lookahead: IDENT already peeked; need to know if '(' follows. We
       re-lex from a saved lexer state. *)
    let saved_off = lx.L.off and saved_line = lx.L.line and saved_bol = lx.L.bol in
    let saved_peek = lx.L.peeked in
    ignore (L.next lx);
    let result = match L.peek lx with L.PUNCT "(", _ -> true | _ -> false in
    lx.L.off <- saved_off;
    lx.L.line <- saved_line;
    lx.L.bol <- saved_bol;
    lx.L.peeked <- saved_peek;
    result

  and parse_args ctx lx : Clight.expr list =
    if L.accept_punct lx ")" then []
    else
      let rec go acc =
        let e = parse_expr ctx lx in
        if L.accept_punct lx "," then go (e :: acc)
        else begin
          L.expect_punct lx ")";
          List.rev (e :: acc)
        end
      in
      go []

  let parse_locals lx : (string * int) list =
    let rec go acc =
      match L.peek lx with
      | L.KW "int", _ ->
        ignore (L.next lx);
        let x = L.expect_ident lx in
        let size =
          if L.accept_punct lx "[" then begin
            match L.next lx with
            | L.INT n, _ ->
              L.expect_punct lx "]";
              n
            | t, p ->
              raise (Error (Fmt.str "expected array size, got %a" L.pp_token t, p))
          end
          else 1
        in
        L.expect_punct lx ";";
        go ((x, size) :: acc)
      | _ -> List.rev acc
    in
    go []

  let parse_program (src : string) : Clight.program =
    let lx = L.create src in
    let funcs = ref [] and globals = ref [] in
    let rec decls () =
      match L.peek lx with
      | L.EOF, _ -> ()
      | L.KW "object", _ ->
        ignore (L.next lx);
        L.expect lx (L.KW "int");
        let x = L.expect_ident lx in
        let init = if L.accept_punct lx "=" then
            match L.next lx with
            | L.INT n, _ -> [ Genv.Iint n ]
            | t, p -> raise (Error (Fmt.str "expected integer, got %a" L.pp_token t, p))
          else []
        in
        L.expect_punct lx ";";
        globals := Genv.gvar ~perm:Perm.Object ~init x 1 :: !globals;
        decls ()
      | L.KW kw, _ when kw = "int" || kw = "void" ->
        ignore (L.next lx);
        let name = L.expect_ident lx in
        if L.accept_punct lx "(" then begin
          (* function *)
          let params =
            if L.accept_punct lx ")" then []
            else
              let rec go acc =
                L.expect lx (L.KW "int");
                let p = L.expect_ident lx in
                if L.accept_punct lx "," then go (p :: acc)
                else begin
                  L.expect_punct lx ")";
                  List.rev (p :: acc)
                end
              in
              go []
          in
          L.expect_punct lx "{";
          let locals = parse_locals lx in
          let ctx = { params; locals = List.map fst locals } in
          let body = parse_stmts ctx lx in
          L.expect_punct lx "}";
          funcs :=
            { Clight.fname = name; fparams = params; fvars = locals; fbody = body }
            :: !funcs;
          decls ()
        end
        else begin
          (* global scalar or array *)
          let size, init =
            if L.accept_punct lx "[" then begin
              match L.next lx with
              | L.INT n, _ ->
                L.expect_punct lx "]";
                (n, [])
              | t, p ->
                raise
                  (Error (Fmt.str "expected array size, got %a" L.pp_token t, p))
            end
            else if L.accept_punct lx "=" then
              match L.next lx with
              | L.INT n, _ -> (1, [ Genv.Iint n ])
              | L.PUNCT "-", _ -> (
                match L.next lx with
                | L.INT n, _ -> (1, [ Genv.Iint (-n) ])
                | t, p ->
                  raise
                    (Error (Fmt.str "expected integer, got %a" L.pp_token t, p)))
              | t, p ->
                raise (Error (Fmt.str "expected integer, got %a" L.pp_token t, p))
            else (1, [])
          in
          L.expect_punct lx ";";
          globals := Genv.gvar ~init name size :: !globals;
          decls ()
        end
      | t, p ->
        raise (Error (Fmt.str "unexpected %a at top level" L.pp_token t, p))
    in
    decls ();
    { Clight.funcs = List.rev !funcs; globals = List.rev !globals }
end

(* ------------------------------------------------------------------ *)
(* CImp                                                                *)
(* ------------------------------------------------------------------ *)

module Cimp_parser = struct
  (* In CImp, bare identifiers are registers unless declared as globals;
     globals appear as addresses. We resolve against the declared global
     set. *)
  type ctx = { globals : string list }

  let rec alg ctx : Cimp.expr alg =
    {
      mk_binop = (fun op a b -> Cimp.Ebinop (op, a, b));
      mk_unop = (fun op a -> Cimp.Eunop (op, a));
      parse_atom = (fun lx -> atom ctx lx);
    }

  and atom ctx lx : Cimp.expr =
    match L.next lx with
    | L.INT n, _ -> Cimp.Eint n
    | L.PUNCT "(", _ ->
      let e = parse_expr_prec (alg ctx) lx in
      L.expect_punct lx ")";
      e
    | L.IDENT x, _ ->
      if List.mem x ctx.globals then Cimp.Eglob x else Cimp.Evar x
    | t, p ->
      raise (Error (Fmt.str "unexpected %a in CImp expression" L.pp_token t, p))

  let parse_expr ctx lx = parse_expr_prec (alg ctx) lx

  let rec parse_block ctx lx : Cimp.stmt =
    L.expect_punct lx "{";
    let s = parse_stmts ctx lx in
    L.expect_punct lx "}";
    s

  and parse_stmts ctx lx : Cimp.stmt =
    match L.peek lx with
    | L.PUNCT "}", _ -> Cimp.Sskip
    | _ ->
      let s = parse_stmt ctx lx in
      let rest = parse_stmts ctx lx in
      if rest = Cimp.Sskip then s else Cimp.Sseq (s, rest)

  and parse_stmt ctx lx : Cimp.stmt =
    match L.peek lx with
    | L.KW "atomic", _ ->
      ignore (L.next lx);
      Cimp.Satomic (parse_block ctx lx)
    | L.KW "assert", _ ->
      ignore (L.next lx);
      L.expect_punct lx "(";
      let e = parse_expr ctx lx in
      L.expect_punct lx ")";
      L.expect_punct lx ";";
      Cimp.Sassert e
    | L.KW "if", _ ->
      ignore (L.next lx);
      L.expect_punct lx "(";
      let e = parse_expr ctx lx in
      L.expect_punct lx ")";
      let s1 = parse_block ctx lx in
      let s2 =
        match L.peek lx with
        | L.KW "else", _ ->
          ignore (L.next lx);
          parse_block ctx lx
        | _ -> Cimp.Sskip
      in
      Cimp.Sif (e, s1, s2)
    | L.KW "while", _ ->
      ignore (L.next lx);
      L.expect_punct lx "(";
      let e = parse_expr ctx lx in
      L.expect_punct lx ")";
      Cimp.Swhile (e, parse_block ctx lx)
    | L.KW "return", _ ->
      ignore (L.next lx);
      if L.accept_punct lx ";" then Cimp.Sreturn None
      else begin
        let e = parse_expr ctx lx in
        L.expect_punct lx ";";
        Cimp.Sreturn (Some e)
      end
    | L.PUNCT "[", _ ->
      (* [e] := e; *)
      ignore (L.next lx);
      let addr = parse_expr ctx lx in
      L.expect_punct lx "]";
      L.expect_punct lx ":=";
      let e = parse_expr ctx lx in
      L.expect_punct lx ";";
      Cimp.Sstore (addr, e)
    | L.IDENT x, _ -> (
      ignore (L.next lx);
      if x = "print" && L.accept_punct lx "(" then begin
        (* print(e); — the built-in observable output, as in mini-C *)
        let e = parse_expr ctx lx in
        L.expect_punct lx ")";
        L.expect_punct lx ";";
        Cimp.Sprint e
      end
      else begin
        L.expect_punct lx ":=";
        match L.peek lx with
        | L.PUNCT "[", _ ->
          ignore (L.next lx);
          let addr = parse_expr ctx lx in
          L.expect_punct lx "]";
          L.expect_punct lx ";";
          Cimp.Sload (x, addr)
        | _ ->
          let e = parse_expr ctx lx in
          L.expect_punct lx ";";
          Cimp.Sassign (x, e)
      end)
    | t, p ->
      raise (Error (Fmt.str "unexpected %a in CImp statement" L.pp_token t, p))

  let parse_program (src : string) : Cimp.program =
    let lx = L.create src in
    let funcs = ref [] and globals = ref [] in
    let rec decls () =
      match L.peek lx with
      | L.EOF, _ -> ()
      | L.KW "object", _ ->
        ignore (L.next lx);
        L.expect lx (L.KW "int");
        let x = L.expect_ident lx in
        let init =
          if L.accept_punct lx "=" then
            match L.next lx with
            | L.INT n, _ -> [ Genv.Iint n ]
            | t, p ->
              raise (Error (Fmt.str "expected integer, got %a" L.pp_token t, p))
          else []
        in
        L.expect_punct lx ";";
        globals := Genv.gvar ~perm:Perm.Object ~init x 1 :: !globals;
        decls ()
      | L.KW kw, _ when kw = "void" || kw = "int" ->
        ignore (L.next lx);
        let name = L.expect_ident lx in
        L.expect_punct lx "(";
        let params =
          if L.accept_punct lx ")" then []
          else
            let rec go acc =
              (match L.peek lx with
              | L.KW "int", _ -> ignore (L.next lx)
              | _ -> ());
              let p = L.expect_ident lx in
              if L.accept_punct lx "," then go (p :: acc)
              else begin
                L.expect_punct lx ")";
                List.rev (p :: acc)
              end
            in
            go []
        in
        let ctx = { globals = List.map (fun g -> g.Genv.gname) !globals } in
        let body = parse_block ctx lx in
        funcs := { Cimp.fname = name; fparams = params; fbody = body } :: !funcs;
        decls ()
      | t, p ->
        raise (Error (Fmt.str "unexpected %a at CImp top level" L.pp_token t, p))
    in
    decls ();
    { Cimp.funcs = List.rev !funcs; globals = List.rev !globals }
end

(** Parse a mini-C client module. @raise Lexer.Error on syntax errors. *)
let clight = Mini_c.parse_program

(** Parse a CImp object module. @raise Lexer.Error on syntax errors. *)
let cimp = Cimp_parser.parse_program
