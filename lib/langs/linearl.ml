(** Linear: LTL after linearization — a sequence of instructions with
    explicit labels and gotos instead of a CFG. Operands are still
    locations (registers or abstract slots). *)

open Cas_base

type loc = Mreg.loc
type op = loc Mreg.gop
type label = int

type instr =
  | Lop of op * loc
  | Lload of loc * int * loc
  | Lstore of loc * int * loc
  | Lcall of string * loc list * loc option
  | Ltailcall of string * loc list
  | Llabel of label
  | Lgoto of label
  | Lcond of loc * label  (** branch to label when the location is true *)
  | Lreturn of loc option

type func = {
  fname : string;
  fparams : loc list;
  stacksize : int;
  code : instr list;
}

type program = { funcs : func list; globals : Genv.gvar list }

let pp_instr ppf =
  let pp_loc = Mreg.pp_loc in
  function
  | Lop (op, d) -> Fmt.pf ppf "%a := %a" pp_loc d (Mreg.pp_gop pp_loc) op
  | Lload (d, ofs, r) -> Fmt.pf ppf "%a := [%a+%d]" pp_loc d pp_loc r ofs
  | Lstore (r, ofs, s) -> Fmt.pf ppf "[%a+%d] := %a" pp_loc r ofs pp_loc s
  | Lcall (f, args, dst) ->
    Fmt.pf ppf "%a%s(%a)"
      Fmt.(option (fun ppf l -> Fmt.pf ppf "%a := " pp_loc l))
      dst f
      Fmt.(list ~sep:comma pp_loc)
      args
  | Ltailcall (f, args) ->
    Fmt.pf ppf "tailcall %s(%a)" f Fmt.(list ~sep:comma Mreg.pp_loc) args
  | Llabel l -> Fmt.pf ppf "L%d:" l
  | Lgoto l -> Fmt.pf ppf "goto L%d" l
  | Lcond (r, l) -> Fmt.pf ppf "if %a goto L%d" pp_loc r l
  | Lreturn None -> Fmt.string ppf "return"
  | Lreturn (Some l) -> Fmt.pf ppf "return %a" pp_loc l

let pp_func ppf f =
  Fmt.pf ppf "@[<v2>%s(%a) [stack %d]:@ %a@]" f.fname
    Fmt.(list ~sep:comma Mreg.pp_loc)
    f.fparams f.stacksize
    Fmt.(list ~sep:cut pp_instr)
    f.code

type core = {
  fn : func;
  code : instr array;
  pc : int;
  locs : Value.t Mreg.LocMap.t;
  sp : int option;
  need_frame : bool;
  waiting : loc option option;
  genv : Genv.t;
}

let pp_core ppf c =
  Fmt.pf ppf "{%s pc=%d sp=%a [%a]%s}" c.fn.fname c.pc
    Fmt.(option ~none:(any "-") int)
    c.sp
    Fmt.(
      list ~sep:comma (fun ppf (l, v) ->
          Fmt.pf ppf "%a=%a" Mreg.pp_loc l Value.pp v))
    (Mreg.LocMap.bindings c.locs)
    (match c.waiting with None -> "" | Some _ -> " <waiting>")

let loc_val c l = Option.value ~default:Value.Vundef (Mreg.LocMap.find_opt l c.locs)

let find_label code l =
  let n = Array.length code in
  let rec go i =
    if i >= n then None
    else match code.(i) with Llabel l' when l' = l -> Some i | _ -> go (i + 1)
  in
  go 0

let eval_op c op =
  Mreg.eval_gop op ~read:(loc_val c)
    ~glob:(fun s -> Option.map (fun a -> Value.Vptr a) (Genv.find_addr c.genv s))
    ~sp:(fun ofs ->
      match c.sp with
      | Some b -> Some (Value.Vptr (Addr.make b ofs))
      | None -> None)

let addr_plus v ofs =
  match v with
  | Value.Vptr a -> Some (Addr.make a.Addr.block (a.Addr.ofs + ofs))
  | _ -> None

let step (fl : Flist.t) (c : core) (m : Memory.t) : core Lang.succ list =
  if c.waiting <> None then []
  else if c.need_frame then
    let m', b, fp = Memory.alloc m fl ~size:c.fn.stacksize ~perm:Perm.Normal in
    [ Lang.Next (Msg.Tau, fp, { c with need_frame = false; sp = Some b }, m') ]
  else if c.pc < 0 || c.pc >= Array.length c.code then []
  else
    let tau ?(fp = Footprint.empty) ?m:(m' = m) ?locs pc =
      let locs = Option.value ~default:c.locs locs in
      [ Lang.Next (Msg.Tau, fp, { c with pc; locs }, m') ]
    in
    match c.code.(c.pc) with
    | Llabel _ -> tau (c.pc + 1)
    | Lgoto l -> (
      match find_label c.code l with
      | Some i -> tau i
      | None -> [ Lang.Stuck_abort ])
    | Lcond (r, l) ->
      if Value.is_true (loc_val c r) then
        match find_label c.code l with
        | Some i -> tau i
        | None -> [ Lang.Stuck_abort ]
      else tau (c.pc + 1)
    | Lop (op, d) -> (
      match eval_op c op with
      | Some v -> tau ~locs:(Mreg.LocMap.add d v c.locs) (c.pc + 1)
      | None -> [ Lang.Stuck_abort ])
    | Lload (d, ofs, r) -> (
      match addr_plus (loc_val c r) ofs with
      | Some a -> (
        match Memory.load m a with
        | Ok v ->
          tau ~fp:(Footprint.read1 a)
            ~locs:(Mreg.LocMap.add d v c.locs)
            (c.pc + 1)
        | Error _ -> [ Lang.Stuck_abort ])
      | None -> [ Lang.Stuck_abort ])
    | Lstore (r, ofs, s) -> (
      match addr_plus (loc_val c r) ofs with
      | Some a -> (
        match Memory.store m a (loc_val c s) with
        | Ok m' -> tau ~fp:(Footprint.write1 a) ~m:m' (c.pc + 1)
        | Error _ -> [ Lang.Stuck_abort ])
      | None -> [ Lang.Stuck_abort ])
    | Lcall (f, args, dst) ->
      [ Lang.Next
          ( Msg.Call (f, List.map (loc_val c) args),
            Footprint.empty,
            { c with pc = c.pc + 1; waiting = Some dst },
            m ) ]
    | Ltailcall (f, args) ->
      [ Lang.Next
          (Msg.TailCall (f, List.map (loc_val c) args), Footprint.empty, c, m)
      ]
    | Lreturn lo ->
      let v = match lo with None -> Value.Vundef | Some l -> loc_val c l in
      [ Lang.Next (Msg.Ret v, Footprint.empty, c, m) ]

let init_core ~genv (p : program) ~entry ~args : core option =
  match List.find_opt (fun f -> String.equal f.fname entry) p.funcs with
  | None -> None
  | Some f ->
    if List.length f.fparams <> List.length args then None
    else
      let locs =
        List.fold_left2
          (fun locs l v -> Mreg.LocMap.add l v locs)
          Mreg.LocMap.empty f.fparams args
      in
      Some
        {
          fn = f;
          code = Array.of_list f.code;
          pc = 0;
          locs;
          sp = None;
          need_frame = f.stacksize > 0;
          waiting = None;
          genv;
        }

let after_external (c : core) (ret : Value.t option) : core option =
  match c.waiting with
  | None -> None
  | Some dst ->
    let locs =
      match dst with
      | None -> c.locs
      | Some l ->
        Mreg.LocMap.add l (Option.value ~default:(Value.Vint 0) ret) c.locs
    in
    Some { c with locs; waiting = None }

let fingerprint_core c = Fmt.str "%a" pp_core c

(* Streamed state hash in [fingerprint_core]'s classes: printed fields
   only (the derived [code] array, [need_frame] and [genv] stay out,
   [waiting] contributes its outermost option). *)
let hash_instr st = function
  | Lop (op, d) ->
    Hashx.char st '1';
    Mreg.hash_gop Mreg.hash_loc st op;
    Mreg.hash_loc st d
  | Lload (d, ofs, r) ->
    Hashx.char st '2';
    Mreg.hash_loc st d;
    Hashx.int st ofs;
    Mreg.hash_loc st r
  | Lstore (r, ofs, s) ->
    Hashx.char st '3';
    Mreg.hash_loc st r;
    Hashx.int st ofs;
    Mreg.hash_loc st s
  | Lcall (f, args, dst) ->
    Hashx.char st '4';
    Hashx.string st f;
    List.iter (Mreg.hash_loc st) args;
    (match dst with
    | None -> Hashx.char st '-'
    | Some d ->
      Hashx.char st '=';
      Mreg.hash_loc st d)
  | Ltailcall (f, args) ->
    Hashx.char st '5';
    Hashx.string st f;
    List.iter (Mreg.hash_loc st) args
  | Llabel l ->
    Hashx.char st 'L';
    Hashx.int st l
  | Lgoto l ->
    Hashx.char st 'G';
    Hashx.int st l
  | Lcond (r, l) ->
    Hashx.char st '6';
    Mreg.hash_loc st r;
    Hashx.int st l
  | Lreturn None -> Hashx.char st '7'
  | Lreturn (Some l) ->
    Hashx.char st 'R';
    Mreg.hash_loc st l

let hash_core st c =
  Hashx.string st c.fn.fname;
  Hashx.int st c.pc;
  (match c.sp with
  | None -> Hashx.char st '-'
  | Some b ->
    Hashx.char st '@';
    Hashx.int st b);
  Mreg.LocMap.iter
    (fun l v ->
      Mreg.hash_loc st l;
      Hashx.char st '=';
      Hashx.int st (Value.hash v))
    c.locs;
  Hashx.bool st (c.waiting <> None)

let hash_fundef st (p : program) name =
  match List.find_opt (fun f -> String.equal f.fname name) p.funcs with
  | None -> ()
  | Some f ->
    Hashx.string st f.fname;
    List.iter (Mreg.hash_loc st) f.fparams;
    Hashx.char st '|';
    Hashx.int st f.stacksize;
    List.iter (hash_instr st) f.code

let lang : (program, core) Lang.t =
  {
    name = "Linear";
    init_core;
    step;
    after_external;
    fingerprint_core;
    hash_core;
    hash_fundef;
    pp_core;
    globals_of = (fun p -> p.globals);
    defs_of =
      (fun p ->
        List.map (fun f -> (f.fname, List.length f.fparams)) p.funcs);
  }
