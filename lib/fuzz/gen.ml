(** Sized, seeded random program generation (ISSUE 9 tentpole, part 1).

    Programs are generated as *source text* in the exact surface syntax
    [Cas_langs.Parse] accepts — the generator's contract with the rest
    of the fuzzer is "this string parses and is well-formed by
    construction", and determinism is checked at the byte level: the
    same [(seed, size)] pair yields the byte-identical string, because
    every choice is drawn from one splittable [Cas_base.Rng] stream and
    no global state is consulted.

    Well-formedness disciplines (so failures mean bugs, not generator
    noise):
    - every local/register is initialized before its first read;
    - loops run over a dedicated counter with a constant bound, so all
      generated programs terminate structurally;
    - memory accesses go only to declared scalars (never out of a
      declared array), so the only aborts are semantic ones the oracles
      must agree on;
    - thread entry functions are nullary, named [t1..tn], and listed as
      entries in that order, matching the world's tid assignment. *)

open Cas_base

type lang = Clight | Cimp

let lang_to_string = function Clight -> "clight" | Cimp -> "cimp"

let lang_of_string = function
  | "clight" -> Ok Clight
  | "cimp" -> Ok Cimp
  | s -> Error (Fmt.str "unknown fuzz language %S (clight|cimp)" s)

type t = {
  g_lang : lang;
  g_source : string;  (** parseable source text *)
  g_entries : string list;  (** thread entry functions, in tid order *)
  g_with_lock : bool;  (** link γ_lock when loading *)
}

(* ------------------------------------------------------------------ *)
(* Shared expression rendering                                         *)
(* ------------------------------------------------------------------ *)

(* every binop is parenthesized, so rendered text never depends on the
   parser's precedence table *)
let binops = [| "+"; "-"; "*"; "=="; "!="; "<"; "<="; "&"; "|"; "^" |]

(** Integer-valued expression over the given readable atoms. *)
let rec gen_expr rng ~depth ~(atoms : string array) : string =
  if depth <= 0 || Rng.int rng 3 = 0 then
    if Array.length atoms > 0 && Rng.bool rng then Rng.choose rng atoms
    else string_of_int (Rng.int rng 10)
  else
    let op = Rng.choose rng binops in
    let a = gen_expr rng ~depth:(depth - 1) ~atoms in
    let b = gen_expr rng ~depth:(depth - 1) ~atoms in
    Fmt.str "(%s %s %s)" a op b

(* ------------------------------------------------------------------ *)
(* mini-C (Clight surface)                                             *)
(* ------------------------------------------------------------------ *)

(* Statement generation emits lines into [buf] at [indent]; [fuel] is
   the size budget. Loops are never nested (each function has a single
   dedicated counter), and lock sections are never nested either. *)
let rec clight_stmts rng buf ~indent ~fuel ~atoms ~globals ~helpers
    ~with_lock ~in_lock ~loop_ok =
  if fuel <= 0 then ()
  else begin
    let pad = String.make indent ' ' in
    let stmt_kind = Rng.int rng 12 in
    let spent =
      match stmt_kind with
      | 0 | 1 ->
        (* local update *)
        Buffer.add_string buf
          (Fmt.str "%sr = %s;\n" pad (gen_expr rng ~depth:2 ~atoms));
        1
      | 2 | 3 ->
        (* shared write *)
        let g = Rng.choose rng globals in
        Buffer.add_string buf
          (Fmt.str "%s%s = %s;\n" pad g (gen_expr rng ~depth:2 ~atoms));
        1
      | 4 ->
        (* shared read-modify into the local *)
        let g = Rng.choose rng globals in
        Buffer.add_string buf
          (Fmt.str "%sr = (r + %s);\n" pad g);
        1
      | 5 ->
        Buffer.add_string buf
          (Fmt.str "%sprint(%s);\n" pad (gen_expr rng ~depth:1 ~atoms));
        1
      | 6 when Array.length helpers > 0 ->
        let h = Rng.choose rng helpers in
        Buffer.add_string buf
          (Fmt.str "%sr = %s(%s);\n" pad h (gen_expr rng ~depth:1 ~atoms));
        1
      | 7 ->
        let cond = gen_expr rng ~depth:1 ~atoms in
        Buffer.add_string buf (Fmt.str "%sif (%s) {\n" pad cond);
        clight_stmts rng buf ~indent:(indent + 2) ~fuel:(fuel / 2) ~atoms
          ~globals ~helpers ~with_lock ~in_lock ~loop_ok:false;
        Buffer.add_string buf (Fmt.str "%s} else {\n" pad);
        clight_stmts rng buf ~indent:(indent + 2) ~fuel:(fuel / 2) ~atoms
          ~globals ~helpers ~with_lock ~in_lock ~loop_ok:false;
        Buffer.add_string buf (Fmt.str "%s}\n" pad);
        2
      | 8 when loop_ok ->
        let bound = 1 + Rng.int rng 2 in
        Buffer.add_string buf (Fmt.str "%si = 0;\n" pad);
        Buffer.add_string buf (Fmt.str "%swhile (i < %d) {\n" pad bound);
        clight_stmts rng buf ~indent:(indent + 2) ~fuel:(fuel / 2) ~atoms
          ~globals ~helpers ~with_lock ~in_lock ~loop_ok:false;
        Buffer.add_string buf (Fmt.str "%s  i = (i + 1);\n" pad);
        Buffer.add_string buf (Fmt.str "%s}\n" pad);
        2
      | 9 when with_lock && not in_lock ->
        Buffer.add_string buf (Fmt.str "%slock();\n" pad);
        clight_stmts rng buf ~indent:(indent + 2) ~fuel:(fuel / 2) ~atoms
          ~globals ~helpers ~with_lock ~in_lock:true ~loop_ok:false;
        Buffer.add_string buf (Fmt.str "%sunlock();\n" pad);
        2
      | _ ->
        (* mixed shared/local arithmetic *)
        let g = Rng.choose rng globals in
        Buffer.add_string buf
          (Fmt.str "%s%s = (%s + r);\n" pad g (gen_expr rng ~depth:1 ~atoms));
        1
    in
    clight_stmts rng buf ~indent ~fuel:(fuel - spent) ~atoms ~globals
      ~helpers ~with_lock ~in_lock ~loop_ok
  end

let clight (rng : Rng.t) ~(size : int) : t =
  let size = max 1 size in
  let buf = Buffer.create 512 in
  let n_globals = 2 + Rng.int rng 2 in
  let n_threads = 1 + Rng.int rng 3 in
  let n_helpers = Rng.int rng 2 in
  let with_lock = Rng.int rng 4 = 0 in
  let globals = Array.init n_globals (fun i -> Fmt.str "g%d" i) in
  Array.iter
    (fun g -> Buffer.add_string buf (Fmt.str "int %s = 0;\n" g))
    globals;
  Buffer.add_char buf '\n';
  (* helpers are pure over their argument and locals: no shared traffic,
     so cross-module call depth varies without blowing up interleavings *)
  let helpers = Array.init n_helpers (fun i -> Fmt.str "h%d" i) in
  Array.iter
    (fun h ->
      let hr = Rng.split rng in
      Buffer.add_string buf (Fmt.str "int %s(int a) {\n" h);
      Buffer.add_string buf "  int x;\n";
      Buffer.add_string buf
        (Fmt.str "  x = %s;\n" (gen_expr hr ~depth:2 ~atoms:[| "a" |]));
      Buffer.add_string buf
        (Fmt.str "  return %s;\n" (gen_expr hr ~depth:2 ~atoms:[| "a"; "x" |]));
      Buffer.add_string buf "}\n\n")
    helpers;
  let entries = List.init n_threads (fun i -> Fmt.str "t%d" (i + 1)) in
  List.iter
    (fun name ->
      let tr = Rng.split rng in
      let atoms = Array.append [| "r"; "i" |] globals in
      Buffer.add_string buf (Fmt.str "void %s() {\n" name);
      Buffer.add_string buf "  int r;\n  int i;\n  r = 0;\n  i = 0;\n";
      clight_stmts tr buf ~indent:2 ~fuel:(1 + Rng.int tr size) ~atoms
        ~globals ~helpers ~with_lock ~in_lock:false ~loop_ok:true;
      Buffer.add_string buf "}\n\n")
    entries;
  { g_lang = Clight; g_source = Buffer.contents buf; g_entries = entries;
    g_with_lock = with_lock }

(* ------------------------------------------------------------------ *)
(* CImp                                                                *)
(* ------------------------------------------------------------------ *)

(* CImp registers are thread-private; shared traffic is explicit loads
   and stores on Object globals, optionally inside atomic blocks. *)
let rec cimp_stmts rng buf ~indent ~fuel ~globals ~in_atomic ~loop_ok =
  if fuel <= 0 then ()
  else begin
    let pad = String.make indent ' ' in
    let atoms = [| "r"; "s"; "i" |] in
    let stmt_kind = Rng.int rng 12 in
    let spent =
      match stmt_kind with
      | 0 | 1 ->
        Buffer.add_string buf
          (Fmt.str "%sr := %s;\n" pad (gen_expr rng ~depth:2 ~atoms));
        1
      | 2 | 3 ->
        let g = Rng.choose rng globals in
        Buffer.add_string buf
          (Fmt.str "%s[%s] := %s;\n" pad g (gen_expr rng ~depth:1 ~atoms));
        1
      | 4 | 5 ->
        let g = Rng.choose rng globals in
        let dst = Rng.choose rng [| "r"; "s" |] in
        Buffer.add_string buf (Fmt.str "%s%s := [%s];\n" pad dst g);
        1
      | 6 when not in_atomic ->
        (* atomic read-modify-write section *)
        let g = Rng.choose rng globals in
        Buffer.add_string buf (Fmt.str "%satomic {\n" pad);
        Buffer.add_string buf (Fmt.str "%s  s := [%s];\n" pad g);
        cimp_stmts rng buf ~indent:(indent + 2) ~fuel:(fuel / 2) ~globals
          ~in_atomic:true ~loop_ok:false;
        Buffer.add_string buf
          (Fmt.str "%s  [%s] := %s;\n" pad g (gen_expr rng ~depth:1 ~atoms));
        Buffer.add_string buf (Fmt.str "%s}\n" pad);
        2
      | 7 when not in_atomic ->
        Buffer.add_string buf
          (Fmt.str "%sprint(%s);\n" pad (gen_expr rng ~depth:1 ~atoms));
        1
      | 8 ->
        let cond = gen_expr rng ~depth:1 ~atoms in
        Buffer.add_string buf (Fmt.str "%sif (%s) {\n" pad cond);
        cimp_stmts rng buf ~indent:(indent + 2) ~fuel:(fuel / 2) ~globals
          ~in_atomic ~loop_ok:false;
        Buffer.add_string buf (Fmt.str "%s} else {\n" pad);
        cimp_stmts rng buf ~indent:(indent + 2) ~fuel:(fuel / 2) ~globals
          ~in_atomic ~loop_ok:false;
        Buffer.add_string buf (Fmt.str "%s}\n" pad);
        2
      | 9 when loop_ok && not in_atomic ->
        let bound = 1 + Rng.int rng 2 in
        Buffer.add_string buf (Fmt.str "%si := 0;\n" pad);
        Buffer.add_string buf (Fmt.str "%swhile (i < %d) {\n" pad bound);
        cimp_stmts rng buf ~indent:(indent + 2) ~fuel:(fuel / 2) ~globals
          ~in_atomic ~loop_ok:false;
        Buffer.add_string buf (Fmt.str "%s  i := (i + 1);\n" pad);
        Buffer.add_string buf (Fmt.str "%s}\n" pad);
        2
      | 10 when Rng.int rng 4 = 0 ->
        (* asserts over register arithmetic: may legitimately fail, in
           which case every oracle must agree on abort reachability *)
        Buffer.add_string buf
          (Fmt.str "%sassert((%s >= 0));\n" pad
             (gen_expr rng ~depth:1 ~atoms:[| "r"; "i" |]));
        1
      | _ ->
        Buffer.add_string buf
          (Fmt.str "%ss := (r + %s);\n" pad (gen_expr rng ~depth:1 ~atoms));
        1
    in
    cimp_stmts rng buf ~indent ~fuel:(fuel - spent) ~globals ~in_atomic
      ~loop_ok
  end

let cimp (rng : Rng.t) ~(size : int) : t =
  let size = max 1 size in
  let buf = Buffer.create 512 in
  let n_globals = 2 + Rng.int rng 2 in
  let n_threads = 1 + Rng.int rng 3 in
  let globals = Array.init n_globals (fun i -> Fmt.str "x%d" i) in
  Array.iter
    (fun g -> Buffer.add_string buf (Fmt.str "object int %s = 0;\n" g))
    globals;
  Buffer.add_char buf '\n';
  let entries = List.init n_threads (fun i -> Fmt.str "t%d" (i + 1)) in
  List.iter
    (fun name ->
      let tr = Rng.split rng in
      Buffer.add_string buf (Fmt.str "void %s() {\n" name);
      Buffer.add_string buf "  r := 0;\n  s := 0;\n  i := 0;\n";
      cimp_stmts tr buf ~indent:2 ~fuel:(1 + Rng.int tr size) ~globals
        ~in_atomic:false ~loop_ok:true;
      Buffer.add_string buf "  return;\n";
      Buffer.add_string buf "}\n\n")
    entries;
  { g_lang = Cimp; g_source = Buffer.contents buf; g_entries = entries;
    g_with_lock = false }

(** Generate the [i]th program of a campaign: one split per index off
    the campaign master stream, so program [i] is a function of
    [(seed, size, lang, i)] alone. *)
let program ~(lang : lang) (rng : Rng.t) ~(size : int) : t =
  match lang with Clight -> clight rng ~size | Cimp -> cimp rng ~size
