(** Differential fuzz campaigns (ISSUE 9 tentpole, part 3).

    [run] generates [count] programs from one seeded splittable stream
    and pushes each through the differential oracles:

    - engine oracle: [Race.drf] under [--engine naive] vs [dpor] must
      agree on the DRF verdict, and DPOR must visit no more worlds than
      the naive search (that is the whole point of the reduction); with
      [engine_par = Some jobs] a fourth lane runs [dpor-par] on [jobs]
      domains and must reproduce dpor's verdict *and* world count
      exactly (the visited-world set is steal-invariant);
    - compiler oracle (Clight campaigns, DRF programs only — racy
      source voids the compiler's guarantee, exactly as in the paper):
      the bounded trace sets of the source Clight world and the compiled
      Asm world must be ≈-equivalent;
    - fingerprint oracle: every [paranoid_every]-th program re-runs the
      naive search under [Fpmode] paranoid fingerprints and must
      reproduce the same verdict and world count with zero recorded
      hash collisions.

    Outcomes land in buckets (agree / verdict-divergence /
    world-count-divergence / crash / timeout). Every verdict divergence
    is auto-shrunk with [Cas_diag.Shrink] ddmin, back-translated to a
    standalone CImp repro by [Backtrans], written to [out_dir], and
    replayed on the spot — the report records whether the repro
    reproduces the recorded verdict.

    Determinism: the report is a pure function of (seed, count, size,
    budget, lang, flags). No wall-clock data is recorded, and the
    timeout bucket is budget-based (exploration truncation), so two
    runs of the same campaign emit byte-identical [--json] reports. *)

open Cas_base
module Witness = Cas_diag.Witness
module Json = Cas_diag.Json

type bucket = Agree | Verdict_div | World_div | Crash | Timeout

let bucket_name = function
  | Agree -> "agree"
  | Verdict_div -> "verdict-divergence"
  | World_div -> "world-count-divergence"
  | Crash -> "crash"
  | Timeout -> "timeout"

type case = {
  c_index : int;
  c_bucket : bucket;
  c_detail : string;
  c_source : string;  (** the generated program *)
  c_repro : string option;  (** back-translated repro file, if written *)
  c_replay : string option;  (** "reproduced" or the replay error *)
  c_shrink : (int * int) option;  (** witness steps before/after ddmin *)
}

type report = {
  r_seed : int;
  r_count : int;
  r_size : int;
  r_budget : int;
  r_lang : Gen.lang;
  r_inject : bool;
  r_engine_par : int option;  (** dpor-par lane domain count, if enabled *)
  r_agree : int;
  r_verdict_div : int;
  r_world_div : int;
  r_crash : int;
  r_timeout : int;
  r_drf : int;  (** programs both engines called DRF *)
  r_racy : int;  (** programs both engines called racy *)
  r_cases : case list;  (** every non-[Agree] case, in index order *)
}

(* ------------------------------------------------------------------ *)
(* Injection (the deliberately broken pass, under a test flag)         *)
(* ------------------------------------------------------------------ *)

(* Perturb the first [print] argument of the program fed to the
   *compiler only*: a minimal stand-in for a miscompiling pass, visible
   to the compiler oracle as a Print-event divergence. *)
let inject_print (p : Cas_langs.Clight.program) : Cas_langs.Clight.program =
  let open Cas_langs.Clight in
  let hit = ref false in
  let rec stmt = function
    | Scall (dst, "print", [ e ]) when not !hit ->
      hit := true;
      Scall (dst, "print", [ Ebinop (Cas_langs.Ops.Oadd, e, Econst 1) ])
    | Sseq (a, b) ->
      let a = stmt a in
      Sseq (a, stmt b)
    | Sif (e, a, b) ->
      let a = stmt a in
      Sif (e, a, stmt b)
    | Swhile (e, s) -> Swhile (e, stmt s)
    | s -> s
  in
  {
    p with
    funcs = List.map (fun f -> { f with fbody = stmt f.fbody }) p.funcs;
  }

(* ------------------------------------------------------------------ *)
(* Per-program oracles                                                 *)
(* ------------------------------------------------------------------ *)

type outcome = {
  o_bucket : bucket;
  o_detail : string;
  o_drf : bool option;  (** agreed verdict, when the engines agree *)
  o_witness : (Witness.t * Cas_diag.Sem.state) option;
      (** divergence evidence: a witness plus the semantics it shrinks
          against (which may be the perturbed compiled world) *)
}

let ok_outcome ~drf detail =
  { o_bucket = Agree; o_detail = detail; o_drf = Some drf; o_witness = None }

let load_prog (p : Lang.prog) : (Cas_conc.World.t, string) result =
  match Cas_conc.World.load p ~args:[] with
  | Ok w -> Ok w
  | Error e -> Error (Fmt.str "load: %a" Cas_conc.World.pp_load_error e)

let mods_with_lock ~with_lock m =
  if with_lock then
    [ m; Lang.Mod (Cas_langs.Cimp.lang, Cas_langs.Cimp.gamma_lock ()) ]
  else [ m ]

(** The engine + fingerprint oracles on one loaded source world.
    Returns the agreed report, or a divergence outcome. *)
let engine_oracle ~budget ~paranoid ~engine_par (g : Gen.t) w0 :
    (Cas_conc.Race.drf_report, outcome) result =
  let naive =
    Cas_conc.Race.drf ~max_worlds:budget ~engine:Cas_mc.Engine.Naive w0
  in
  let dpor =
    Cas_conc.Race.drf ~max_worlds:budget ~engine:Cas_mc.Engine.Dpor w0
  in
  let truncated (r : Cas_conc.Race.drf_report) =
    r.Cas_conc.Race.stats.Cas_conc.Explore.truncated
  in
  if truncated naive || truncated dpor then
    Error
      {
        o_bucket = Timeout;
        o_detail =
          Fmt.str "drf search truncated at %d worlds (naive %b, dpor %b)"
            budget (truncated naive) (truncated dpor);
        o_drf = None;
        o_witness = None;
      }
  else if naive.Cas_conc.Race.drf <> dpor.Cas_conc.Race.drf then begin
    (* engine disagreement: capture the racy side's schedule *)
    let racy_engine =
      if naive.Cas_conc.Race.drf then Cas_mc.Engine.Dpor
      else Cas_mc.Engine.Naive
    in
    let rc = Cas_diag.Capture.race ~engine:racy_engine ~max_worlds:budget w0 in
    let witness =
      match rc.Cas_diag.Capture.rc_verdict with
      | Some verdict ->
        Some
          ( Witness.make ~program:g.Gen.g_source ~entries:g.Gen.g_entries
              ~with_lock:g.Gen.g_with_lock ~semantics:Witness.Sc
              ~engine:(Cas_mc.Engine.to_string racy_engine)
              ~seed:0 ~verdict rc.Cas_diag.Capture.rc_steps,
            Cas_diag.Sem.of_world w0 )
      | None -> None
    in
    Error
      {
        o_bucket = Verdict_div;
        o_detail =
          Fmt.str "engine disagreement: naive says %s, dpor says %s"
            (if naive.Cas_conc.Race.drf then "DRF" else "racy")
            (if dpor.Cas_conc.Race.drf then "DRF" else "racy");
        o_drf = None;
        o_witness = witness;
      }
  end
  else if
    dpor.Cas_conc.Race.stats.Cas_conc.Explore.visited
    > naive.Cas_conc.Race.stats.Cas_conc.Explore.visited
  then
    Error
      {
        o_bucket = World_div;
        o_detail =
          Fmt.str "dpor visited %d worlds, naive only %d"
            dpor.Cas_conc.Race.stats.Cas_conc.Explore.visited
            naive.Cas_conc.Race.stats.Cas_conc.Explore.visited;
        o_drf = None;
        o_witness = None;
      }
  else
    let par_div =
      match engine_par with
      | None -> None
      | Some jobs ->
        let par =
          Cas_conc.Race.drf ~max_worlds:budget
            ~engine:Cas_mc.Engine.Dpor_par ~jobs w0
        in
        if par.Cas_conc.Race.drf <> dpor.Cas_conc.Race.drf then
          Some
            {
              o_bucket = Verdict_div;
              o_detail =
                Fmt.str "dpor-par(%d) disagreement: dpor says %s, par says %s"
                  jobs
                  (if dpor.Cas_conc.Race.drf then "DRF" else "racy")
                  (if par.Cas_conc.Race.drf then "DRF" else "racy");
              o_drf = None;
              o_witness = None;
            }
        else if
          par.Cas_conc.Race.stats.Cas_conc.Explore.visited
          <> dpor.Cas_conc.Race.stats.Cas_conc.Explore.visited
        then
          Some
            {
              o_bucket = World_div;
              o_detail =
                Fmt.str
                  "dpor-par(%d) visited %d worlds, dpor %d (steal-variant \
                   world set)"
                  jobs par.Cas_conc.Race.stats.Cas_conc.Explore.visited
                  dpor.Cas_conc.Race.stats.Cas_conc.Explore.visited;
              o_drf = None;
              o_witness = None;
            }
        else None
    in
    match par_div with
    | Some o -> Error o
    | None ->
  if paranoid then begin
    (* fingerprint spot-check: rerun the naive search under paranoid
       fingerprints; verdict, world count, and the collision audit must
       all come back clean *)
    Lang.audit_reset ();
    Fpmode.set_paranoid true;
    let pnaive =
      Fun.protect
        ~finally:(fun () -> Fpmode.set_paranoid false)
        (fun () ->
          Cas_conc.Race.drf ~max_worlds:budget ~engine:Cas_mc.Engine.Naive w0)
    in
    let collisions = Lang.audit_collisions () in
    if
      pnaive.Cas_conc.Race.drf <> naive.Cas_conc.Race.drf
      || pnaive.Cas_conc.Race.stats.Cas_conc.Explore.visited
         <> naive.Cas_conc.Race.stats.Cas_conc.Explore.visited
      || collisions <> []
    then
      Error
        {
          o_bucket = Verdict_div;
          o_detail =
            Fmt.str
              "paranoid-fp mismatch: verdict %b/%b, worlds %d/%d, %d \
               collisions"
              naive.Cas_conc.Race.drf pnaive.Cas_conc.Race.drf
              naive.Cas_conc.Race.stats.Cas_conc.Explore.visited
              pnaive.Cas_conc.Race.stats.Cas_conc.Explore.visited
              (List.length collisions);
          o_drf = None;
          o_witness = None;
        }
    else Ok naive
  end
  else Ok naive

(** The compiler oracle: bounded trace equivalence of the source Clight
    world against the compiled Asm world. Only called on DRF programs. *)
let compiler_oracle ~budget ~(g : Gen.t) ~src_w0 ~tgt_w0 : outcome =
  let explore w =
    Cas_conc.Explore.traces ~max_steps:2000 ~max_paths:budget
      Cas_conc.Preemptive.steps
      (Cas_conc.Gsem.initials w)
  in
  let src_tr = explore src_w0 and tgt_tr = explore tgt_w0 in
  if not (src_tr.Cas_conc.Explore.complete && tgt_tr.Cas_conc.Explore.complete)
  then
    {
      o_bucket = Timeout;
      o_detail =
        Fmt.str "trace enumeration truncated (src %b, tgt %b)"
          src_tr.Cas_conc.Explore.complete tgt_tr.Cas_conc.Explore.complete;
      o_drf = None;
      o_witness = None;
    }
  else
    let eq = Cas_conc.Refine.equiv src_tr tgt_tr in
    if eq.Cas_conc.Refine.holds then ok_outcome ~drf:true "drf, traces agree"
    else begin
      (* divergence evidence: an abort discrepancy, or the first done
         trace one side has and the other lacks; the schedule is
         rediscovered on whichever side exhibits it *)
      let module E = Cas_conc.Explore in
      let elems tr = E.TraceSet.elements tr.E.traces in
      let has_abort tr =
        List.exists (fun (_, st) -> st = E.SAbort) (elems tr)
      in
      let dones tr =
        List.filter (fun (_, st) -> st = E.SDone) (elems tr)
      in
      let evidence =
        if has_abort src_tr <> has_abort tgt_tr then
          let w = if has_abort src_tr then src_w0 else tgt_w0 in
          Some (Witness.Vabort, w, None)
        else
          let pick mine theirs w =
            List.find_map
              (fun ((es, _) as tr) ->
                if E.TraceSet.mem tr theirs.E.traces then None
                else Some (Witness.Vrefine es, w, Some es))
              (dones mine)
          in
          match pick src_tr tgt_tr src_w0 with
          | Some e -> Some e
          | None -> pick tgt_tr src_tr tgt_w0
      in
      match evidence with
      | None ->
        (* prefix-closure-only mismatch: report without a schedule *)
        {
          o_bucket = Verdict_div;
          o_detail = "source/target trace sets differ (prefix closure)";
          o_drf = None;
          o_witness = None;
        }
      | Some (verdict, w, events) ->
        let s0 = Cas_diag.Sem.of_world w in
        let steps =
          match events with
          | Some es ->
            Cas_diag.Capture.schedule_for_events s0 ~events:es ()
          | None -> Cas_diag.Capture.schedule_to_abort s0 ()
        in
        let witness =
          Option.map
            (fun steps ->
              ( Witness.make ~program:g.Gen.g_source ~entries:g.Gen.g_entries
                  ~with_lock:g.Gen.g_with_lock ~semantics:Witness.Sc
                  ~engine:"naive" ~seed:0 ~verdict steps,
                s0 ))
            steps
        in
        {
          o_bucket = Verdict_div;
          o_detail =
            Fmt.str "source/target divergence: %a" Witness.pp_verdict verdict;
          o_drf = None;
          o_witness = witness;
        }
    end

(* ------------------------------------------------------------------ *)
(* One program end to end                                              *)
(* ------------------------------------------------------------------ *)

let run_one ~budget ~paranoid ~inject ~engine_par (g : Gen.t) : outcome =
  match g.Gen.g_lang with
  | Gen.Cimp -> (
    match
      try Ok (Cas_langs.Parse.cimp g.Gen.g_source) with
      | Cas_langs.Lexer.Error (m, _) -> Error (Fmt.str "cimp parse: %s" m)
    with
    | Error e ->
      { o_bucket = Crash; o_detail = e; o_drf = None; o_witness = None }
    | Ok prog -> (
      let p =
        Lang.prog
          [ Lang.Mod (Cas_langs.Cimp.lang, prog) ]
          g.Gen.g_entries
      in
      match load_prog p with
      | Error e ->
        { o_bucket = Crash; o_detail = e; o_drf = None; o_witness = None }
      | Ok w0 -> (
        match engine_oracle ~budget ~paranoid ~engine_par g w0 with
        | Error o -> o
        | Ok rep ->
          ok_outcome ~drf:rep.Cas_conc.Race.drf
            (if rep.Cas_conc.Race.drf then "drf" else "racy"))))
  | Gen.Clight -> (
    match
      try Ok (Cas_langs.Parse.clight g.Gen.g_source) with
      | Cas_langs.Lexer.Error (m, _) -> Error (Fmt.str "clight parse: %s" m)
    with
    | Error e ->
      { o_bucket = Crash; o_detail = e; o_drf = None; o_witness = None }
    | Ok client -> (
      let src_p =
        Lang.prog
          (mods_with_lock ~with_lock:g.Gen.g_with_lock
             (Lang.Mod (Cas_langs.Clight.lang, client)))
          g.Gen.g_entries
      in
      match load_prog src_p with
      | Error e ->
        { o_bucket = Crash; o_detail = e; o_drf = None; o_witness = None }
      | Ok src_w0 -> (
        match engine_oracle ~budget ~paranoid ~engine_par g src_w0 with
        | Error o -> o
        | Ok rep ->
          if not rep.Cas_conc.Race.drf then
            (* racy source voids the compiler contract; the engines
               agreeing on the race verdict is the whole check *)
            ok_outcome ~drf:false "racy, engines agree"
          else begin
            let compiled =
              if inject then inject_print client else client
            in
            let tgt_p =
              Lang.prog
                (mods_with_lock ~with_lock:g.Gen.g_with_lock
                   (Lang.Mod
                      ( Cas_langs.Asm.lang,
                        Cas_compiler.Driver.compile compiled )))
                g.Gen.g_entries
            in
            match load_prog tgt_p with
            | Error e ->
              {
                o_bucket = Crash;
                o_detail = Fmt.str "compiled %s" e;
                o_drf = None;
                o_witness = None;
              }
            | Ok tgt_w0 -> compiler_oracle ~budget ~g ~src_w0 ~tgt_w0
          end)))

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let shrink_and_backtranslate ~shrink_budget ~out_dir ~index
    ((wit : Witness.t), (s0 : Cas_diag.Sem.state)) :
    (int * int) option * string option * string option =
  let sh = Cas_diag.Shrink.shrink ~max_attempts:shrink_budget s0 wit in
  let shrunk = sh.Cas_diag.Shrink.sh_witness in
  let shrink_info =
    Some (sh.Cas_diag.Shrink.sh_orig_steps, sh.Cas_diag.Shrink.sh_min_steps)
  in
  match Backtrans.of_witness shrunk with
  | Error e -> (shrink_info, None, Some (Fmt.str "back-translation: %s" e))
  | Ok repro -> (
    let replay =
      match Backtrans.replay repro with
      | Ok () -> "reproduced"
      | Error e -> e
    in
    match out_dir with
    | None -> (shrink_info, None, Some replay)
    | Some dir ->
      let file = Filename.concat dir (Fmt.str "repro-%04d.cimp" index) in
      let oc = open_out file in
      output_string oc repro.Backtrans.r_source;
      close_out oc;
      (shrink_info, Some file, Some replay))

type progress = index:int -> bucket -> unit

let run ?(size = 8) ?(budget = 20_000) ?(shrink_budget = 2_000)
    ?(paranoid_every = 50) ?(inject = false) ?engine_par ?out_dir
    ?(progress : progress option) ~seed ~count (lang : Gen.lang) : report =
  (match out_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  let master = Rng.make ~seed in
  let agree = ref 0
  and verdict_div = ref 0
  and world_div = ref 0
  and crash = ref 0
  and timeout = ref 0
  and drf = ref 0
  and racy = ref 0
  and cases = ref [] in
  for index = 0 to count - 1 do
    let prng = Rng.split master in
    let g = Gen.program ~lang prng ~size in
    let paranoid = paranoid_every > 0 && index mod paranoid_every = 0 in
    let o =
      try run_one ~budget ~paranoid ~inject ~engine_par g with
      | exn ->
        {
          o_bucket = Crash;
          o_detail = Fmt.str "exception: %s" (Printexc.to_string exn);
          o_drf = None;
          o_witness = None;
        }
    in
    (match o.o_bucket with
    | Agree ->
      incr agree;
      (match o.o_drf with
      | Some true -> incr drf
      | Some false -> incr racy
      | None -> ())
    | Verdict_div -> incr verdict_div
    | World_div -> incr world_div
    | Crash -> incr crash
    | Timeout -> incr timeout);
    (match progress with Some f -> f ~index o.o_bucket | None -> ());
    if o.o_bucket <> Agree then begin
      (* always keep the offending generated program itself *)
      (match out_dir with
      | Some dir ->
        let ext = match lang with Gen.Clight -> "c" | Gen.Cimp -> "cimp" in
        let file = Filename.concat dir (Fmt.str "case-%04d.%s" index ext) in
        let oc = open_out file in
        output_string oc g.Gen.g_source;
        close_out oc
      | None -> ());
      let shrink_info, repro, replay =
        match o.o_witness with
        | Some ws ->
          shrink_and_backtranslate ~shrink_budget ~out_dir ~index ws
        | None -> (None, None, None)
      in
      cases :=
        {
          c_index = index;
          c_bucket = o.o_bucket;
          c_detail = o.o_detail;
          c_source = g.Gen.g_source;
          c_repro = repro;
          c_replay = replay;
          c_shrink = shrink_info;
        }
        :: !cases
    end
  done;
  {
    r_seed = seed;
    r_count = count;
    r_size = size;
    r_budget = budget;
    r_lang = lang;
    r_inject = inject;
    r_engine_par = engine_par;
    r_agree = !agree;
    r_verdict_div = !verdict_div;
    r_world_div = !world_div;
    r_crash = !crash;
    r_timeout = !timeout;
    r_drf = !drf;
    r_racy = !racy;
    r_cases = List.rev !cases;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let report_to_json (r : report) : Json.t =
  Json.Obj
    [
      ("seed", Json.Int r.r_seed);
      ("count", Json.Int r.r_count);
      ("size", Json.Int r.r_size);
      ("budget", Json.Int r.r_budget);
      ("lang", Json.Str (Gen.lang_to_string r.r_lang));
      ("inject", Json.Bool r.r_inject);
      ( "engine_par",
        match r.r_engine_par with Some j -> Json.Int j | None -> Json.Null );
      ( "buckets",
        Json.Obj
          [
            ("agree", Json.Int r.r_agree);
            ("verdict_divergence", Json.Int r.r_verdict_div);
            ("world_count_divergence", Json.Int r.r_world_div);
            ("crash", Json.Int r.r_crash);
            ("timeout", Json.Int r.r_timeout);
          ] );
      ("drf", Json.Int r.r_drf);
      ("racy", Json.Int r.r_racy);
      ( "cases",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 ([
                    ("index", Json.Int c.c_index);
                    ("bucket", Json.Str (bucket_name c.c_bucket));
                    ("detail", Json.Str c.c_detail);
                    ("source", Json.Str c.c_source);
                  ]
                 @ (match c.c_shrink with
                   | Some (orig, min) ->
                     [
                       ( "shrink",
                         Json.Obj
                           [
                             ("orig_steps", Json.Int orig);
                             ("min_steps", Json.Int min);
                           ] );
                     ]
                   | None -> [])
                 @ (match c.c_repro with
                   | Some f -> [ ("repro", Json.Str f) ]
                   | None -> [])
                 @
                 match c.c_replay with
                 | Some s -> [ ("replay", Json.Str s) ]
                 | None -> []))
             r.r_cases) );
    ]

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "@[<v>fuzz campaign: seed %d, %d %s programs, budget %d%s%s@,\
     agree %d (drf %d, racy %d)@,\
     verdict-divergence %d, world-count-divergence %d, crash %d, timeout %d@]"
    r.r_seed r.r_count
    (Gen.lang_to_string r.r_lang)
    r.r_budget
    (if r.r_inject then " [inject]" else "")
    (match r.r_engine_par with
    | Some j -> Fmt.str " [dpor-par %d]" j
    | None -> "")
    r.r_agree r.r_drf r.r_racy r.r_verdict_div r.r_world_div r.r_crash
    r.r_timeout

(** Zero unexplained divergences: the acceptance gate for clean
    campaigns ([--inject] campaigns are expected to diverge). *)
let clean (r : report) : bool =
  r.r_verdict_div = 0 && r.r_world_div = 0 && r.r_crash = 0
