(** Witness back-translation (ISSUE 9 tentpole, part 2).

    Turns any SC [Cas_diag] witness into a *standalone CImp source
    program* that deterministically reproduces the recorded interaction
    — the SecurePtrs/definability idea made executable. The construction
    is a turn-variable scheduling scaffold:

    - the recorded observable actions (events, then the final race poise
      or abort) are numbered 0..K in schedule order;
    - one nullary CImp function per original thread, entries listed in
      tid order so the reloaded world's tids 1..n match the witness;
    - action [i] owned by thread [t] is compiled to: spin until
      [turn = i] (reading [turn] inside an atomic block), perform the
      action, then atomically advance [turn := i+1].

    Every access to [turn] sits inside an atomic block, and two accesses
    that are both inside atomic blocks never race under the predictor
    (Predict-1), so the scaffold itself is race-free and every
    interleaving yields the same turn-ordered behaviour:

    - [Vrefine es]: the actions are exactly [print] calls for [es]; all
      completed traces of the repro equal [es].
    - [Vabort]: the aborting thread's terminal action is [assert(0)].
    - [Vrace (a, b)]: threads [a] and [b] both wait for the *same* final
      turn [K] and then touch a dedicated [cell] global outside any
      atomic block — one write, one read — so the unique predicted race
      pair is exactly {a, b}.

    [replay] re-explores the emitted program from scratch and checks the
    recorded verdict is reproduced, which is what lets every divergence
    the fuzz driver finds grow the regression corpus as a self-checking
    artifact. *)

open Cas_base
module Witness = Cas_diag.Witness

type repro = {
  r_source : string;  (** standalone CImp source (with header comments) *)
  r_entries : string list;
  r_verdict : Witness.verdict;
}

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

type action =
  | Aprint of int
  | Arace_write
  | Arace_read
  | Aabort

(* negative literals: the CImp expression grammar has unary minus, but
   a parenthesized subtraction is unambiguous everywhere *)
let lit n = if n >= 0 then string_of_int n else Fmt.str "(0 - %d)" (-n)

let emit_action buf = function
  | Aprint n -> Buffer.add_string buf (Fmt.str "  print(%s);\n" (lit n))
  | Arace_write -> Buffer.add_string buf "  [cell] := 1;\n"
  | Arace_read -> Buffer.add_string buf "  w := [cell];\n"
  | Aabort -> Buffer.add_string buf "  assert(0);\n"

(* spin until [turn = i]; [w] is initialized off [i] so the first test
   is on a defined value *)
let emit_wait buf i =
  Buffer.add_string buf (Fmt.str "  w := %d;\n" (i + 1));
  Buffer.add_string buf (Fmt.str "  while ((w != %d)) {\n" i);
  Buffer.add_string buf "    atomic { w := [turn]; }\n";
  Buffer.add_string buf "  }\n"

let emit_advance buf i =
  Buffer.add_string buf (Fmt.str "  atomic { [turn] := %d; }\n" (i + 1))

let pp_verdict_header = function
  | Witness.Vrace (a, b) -> Fmt.str "race %d %d" a b
  | Witness.Vabort -> "abort"
  | Witness.Vrefine es ->
    let ns =
      List.map
        (function Event.Print n -> string_of_int n | Event.Out s -> s)
        es
    in
    String.concat " " ("refine" :: ns)

let of_witness (w : Witness.t) : (repro, string) result =
  if w.Witness.semantics <> Witness.Sc then
    Error "only SC witnesses can be back-translated"
  else begin
    let n = List.length w.Witness.entries in
    let in_range t = t >= 1 && t <= n in
    (* the observable actions, in schedule order *)
    let events =
      List.filter_map
        (fun (s : Witness.step) ->
          Option.map (fun e -> (s.Witness.s_tid, e)) s.Witness.s_event)
        w.Witness.steps
    in
    let bad_event =
      List.find_opt
        (fun (t, e) ->
          (not (in_range t)) || match e with Event.Out _ -> true | _ -> false)
        events
    in
    match bad_event with
    | Some (t, e) ->
      Error
        (Fmt.str "unsupported event %a on tid %d (not back-translatable)"
           Event.pp e t)
    | None -> (
      let print_actions =
        List.map
          (fun (t, e) ->
            match e with
            | Event.Print v -> (t, Aprint v)
            | Event.Out _ -> assert false)
          events
      in
      let k = List.length print_actions in
      (* terminal actions at index [k] never advance the turn *)
      let terminal =
        match w.Witness.verdict with
        | Witness.Vrefine _ -> Ok []
        | Witness.Vabort ->
          let t =
            match List.rev w.Witness.steps with
            | (s : Witness.step) :: _ -> s.Witness.s_tid
            | [] -> 1
          in
          if in_range t then Ok [ (t, Aabort) ]
          else Error (Fmt.str "aborting tid %d out of range" t)
        | Witness.Vrace (a, b) ->
          if a = b || (not (in_range a)) || not (in_range b) then
            Error (Fmt.str "race pair (%d, %d) not back-translatable" a b)
          else Ok [ (a, Arace_write); (b, Arace_read) ]
      in
      match terminal with
      | Error e -> Error e
      | Ok terminal ->
        let entries = List.init n (fun i -> Fmt.str "t%d" (i + 1)) in
        let has_race =
          match w.Witness.verdict with Witness.Vrace _ -> true | _ -> false
        in
        let buf = Buffer.create 512 in
        Buffer.add_string buf "// cas-fuzz repro (back-translated witness)\n";
        Buffer.add_string buf
          (Fmt.str "// entries: %s\n" (String.concat "," entries));
        Buffer.add_string buf
          (Fmt.str "// verdict: %s\n\n" (pp_verdict_header w.Witness.verdict));
        Buffer.add_string buf "object int turn = 0;\n";
        if has_race then Buffer.add_string buf "object int cell = 0;\n";
        Buffer.add_char buf '\n';
        List.iteri
          (fun i name ->
            let tid = i + 1 in
            Buffer.add_string buf (Fmt.str "void %s() {\n" name);
            List.iteri
              (fun idx (t, act) ->
                if t = tid then begin
                  emit_wait buf idx;
                  emit_action buf act;
                  emit_advance buf idx
                end)
              print_actions;
            List.iter
              (fun (t, act) ->
                if t = tid then begin
                  emit_wait buf k;
                  emit_action buf act
                end)
              terminal;
            Buffer.add_string buf "  return;\n}\n\n")
          entries;
        Ok
          {
            r_source = Buffer.contents buf;
            r_entries = entries;
            r_verdict = w.Witness.verdict;
          })
  end

(* ------------------------------------------------------------------ *)
(* Corpus file round-trip                                              *)
(* ------------------------------------------------------------------ *)

(** Parse a repro back out of its own source text: the header comments
    carry the entries and expected verdict, and the lexer skips comments
    so the full text is itself the loadable program. *)
let of_string (src : string) : (repro, string) result =
  let lines = String.split_on_char '\n' src in
  let find prefix =
    List.find_map
      (fun l ->
        if String.length l > String.length prefix
           && String.sub l 0 (String.length prefix) = prefix
        then
          Some
            (String.trim
               (String.sub l (String.length prefix)
                  (String.length l - String.length prefix)))
        else None)
      lines
  in
  match (find "// entries:", find "// verdict:") with
  | None, _ -> Error "missing '// entries:' header"
  | _, None -> Error "missing '// verdict:' header"
  | Some es, Some v -> (
    let entries =
      List.filter (fun s -> s <> "") (String.split_on_char ',' es)
    in
    let verdict =
      match String.split_on_char ' ' v with
      | [ "race"; a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b -> Ok (Witness.Vrace (a, b))
        | _ -> Error (Fmt.str "bad race header %S" v))
      | [ "abort" ] -> Ok Witness.Vabort
      | "refine" :: ns -> (
        let parsed = List.map int_of_string_opt ns in
        if List.for_all Option.is_some parsed then
          Ok
            (Witness.Vrefine
               (List.map (fun n -> Event.Print (Option.get n)) parsed))
        else Error (Fmt.str "bad refine header %S" v))
      | _ -> Error (Fmt.str "bad verdict header %S" v)
    in
    match verdict with
    | Error e -> Error e
    | Ok verdict -> Ok { r_source = src; r_entries = entries; r_verdict = verdict })

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let load_world (r : repro) : (Cas_conc.World.t, string) result =
  match
    try Ok (Cas_langs.Parse.cimp r.r_source) with
    | Cas_langs.Lexer.Error (msg, pos) ->
      Error (Fmt.str "repro parse: %s at %a" msg Cas_langs.Lexer.pp_pos pos)
  with
  | Error e -> Error e
  | Ok prog -> (
    let p =
      Lang.prog [ Lang.Mod (Cas_langs.Cimp.lang, prog) ] r.r_entries
    in
    match Cas_conc.World.load p ~args:[] with
    | Error e -> Error (Fmt.str "repro load: %a" Cas_conc.World.pp_load_error e)
    | Ok w0 -> Ok w0)

(** Re-explore the repro from scratch and check the recorded verdict is
    reproduced. [budget] bounds worlds (race search) and paths (trace
    enumeration). *)
let replay ?(budget = 100_000) (r : repro) : (unit, string) result =
  match load_world r with
  | Error e -> Error e
  | Ok w0 -> (
    match r.r_verdict with
    | Witness.Vrace (a, b) -> (
      let rep =
        Cas_conc.Race.drf ~max_worlds:budget ~engine:Cas_mc.Engine.Naive w0
      in
      match rep.Cas_conc.Race.witness with
      | None ->
        if rep.Cas_conc.Race.stats.Cas_conc.Explore.truncated then
          Error "race replay: exploration truncated before any race"
        else Error "race replay: repro is DRF"
      | Some (t1, _, t2, _) ->
        if (t1 = a && t2 = b) || (t1 = b && t2 = a) then Ok ()
        else
          Error
            (Fmt.str "race replay: expected pair (%d, %d), predicted (%d, %d)"
               a b t1 t2))
    | Witness.Vabort ->
      let tr =
        Cas_conc.Explore.traces ~max_steps:2000 ~max_paths:budget
          Cas_conc.Preemptive.steps
          (Cas_conc.Gsem.initials w0)
      in
      let aborts =
        List.exists
          (fun (_, st) -> st = Cas_conc.Explore.SAbort)
          (Cas_conc.Explore.TraceSet.elements tr.Cas_conc.Explore.traces)
      in
      if aborts then Ok () else Error "abort replay: no abort reachable"
    | Witness.Vrefine events ->
      let tr =
        Cas_conc.Explore.traces ~max_steps:2000 ~max_paths:budget
          Cas_conc.Preemptive.steps
          (Cas_conc.Gsem.initials w0)
      in
      let ts = Cas_conc.Explore.TraceSet.elements tr.Cas_conc.Explore.traces in
      let dones =
        List.filter (fun (_, st) -> st = Cas_conc.Explore.SDone) ts
      in
      let aborts =
        List.exists (fun (_, st) -> st = Cas_conc.Explore.SAbort) ts
      in
      if aborts then Error "refine replay: unexpected abort"
      else if dones = [] then Error "refine replay: no completed trace"
      else if
        List.for_all
          (fun (es, _) ->
            List.length es = List.length events
            && List.for_all2 Event.equal es events)
          dones
      then Ok ()
      else Error "refine replay: completed traces differ from recorded events")
