(** Canonical state store: a sharded hash table keyed by world
    fingerprint, with hit/miss/truncation accounting.

    Sharding serves the parallel frontier scheduler: each shard carries
    its own lock — and its own hit counter, folded on read — so domains
    insert concurrently with contention only on colliding shards. The global capacity is enforced with an atomic
    counter read under only the *shard* lock, so the cap is approximate
    under parallel insertion — but boundedly so. Precise over-admission
    bound: with [D] domains racing, at most [capacity + D - 1] keys are
    ever admitted. Proof sketch: an admission requires observing
    [count < capacity] before its own [incr]; once some [incr] makes
    [count = capacity] the counter never decreases, so every admission
    after that point must have loaded [count] before that [incr]
    committed — and at most [D - 1] *other* domains can each hold one
    such stale in-flight load (one insertion per domain at a time, each
    load is consumed by its own [incr]). Hence over-admission < D, it
    only affects where truncation is reported, never soundness.

    The [full] flag is *set-only* ([Atomic.set t.full true] on every
    refusal, no reset path exists), so once any insertion is refused,
    [truncated] reports [true] forever — concurrent admitting domains
    cannot lose the flag, which [test/test_mc.ml] hammers with a Pool
    of racing inserters. *)

type shard = {
  lock : Mutex.t;
  tbl : (string, unit) Hashtbl.t;
  mutable shits : int;
      (** hits on this shard, bumped under [lock] — hits are the common
          case in DPOR revisits, and a single global atomic would be the
          one cacheline every stealing domain fights over *)
}

type t = {
  shards : shard array;
  capacity : int;
  count : int Atomic.t;  (** distinct keys inserted (misses) *)
  full : bool Atomic.t;  (** an insertion was refused *)
}

let create ?(shards = 16) ~capacity () =
  {
    shards =
      Array.init (max 1 shards) (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 256; shits = 0 });
    capacity;
    count = Atomic.make 0;
    full = Atomic.make false;
  }

(** Insert a fingerprint. [`New]: first time seen; [`Seen]: already
    present (a hit); [`Full]: refused, the store reached capacity. *)
let add t key : [ `New | `Seen | `Full ] =
  let shard = t.shards.(Hashtbl.hash key mod Array.length t.shards) in
  Mutex.lock shard.lock;
  let r =
    if Hashtbl.mem shard.tbl key then begin
      shard.shits <- shard.shits + 1;
      `Seen
    end
    else if Atomic.get t.count >= t.capacity then `Full
    else begin
      Hashtbl.add shard.tbl key ();
      Atomic.incr t.count;
      `New
    end
  in
  Mutex.unlock shard.lock;
  (match r with `Full -> Atomic.set t.full true | `New | `Seen -> ());
  r

let mem t key =
  let shard = t.shards.(Hashtbl.hash key mod Array.length t.shards) in
  Mutex.lock shard.lock;
  let r = Hashtbl.mem shard.tbl key in
  Mutex.unlock shard.lock;
  r

let distinct t = Atomic.get t.count

(** Total hits, folded over the shards (each read under its lock, so
    the sum is exact once the exploration has joined). *)
let hits t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let h = s.shits in
      Mutex.unlock s.lock;
      acc + h)
    0 t.shards

let truncated t = Atomic.get t.full
